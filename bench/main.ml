(* Benchmark harness.

   Default: regenerate every table and figure of the paper's evaluation
   (one experiment module per artefact; see DESIGN.md's index) through
   the declarative job/executor layer — jobs are planned, deduplicated
   and batch-executed on a domain pool before any table renders.

     dune exec bench/main.exe                  # everything
     dune exec bench/main.exe -- quick         # skip the multi-minute sweeps
     dune exec bench/main.exe -- fig5 tab2     # selected experiments
     dune exec bench/main.exe -- -j 8 fig5     # 8 worker domains
     dune exec bench/main.exe -- --results-dir results fig5  # + JSONL
     dune exec bench/main.exe -- list          # available experiment ids
     dune exec bench/main.exe -- micro         # Bechamel component benches

   The micro mode measures the simulation substrate itself (cache ops,
   persist-buffer ops, executor steps, compilation) with one
   Bechamel Test.make per component. *)

module Experiments = Sweep_exp.Experiments
module Executor = Sweep_exp.Executor
module Results = Sweep_exp.Results

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the substrate.                         *)

let micro_tests () =
  let open Bechamel in
  let cache_ops =
    Test.make ~name:"cache:hit-path"
      (Staged.stage (fun () ->
           let cache = Sweep_mem.Cache.create ~size_bytes:4096 ~assoc:2 in
           let data = Array.make 16 0 in
           for addr = 0 to 63 do
             ignore (Sweep_mem.Cache.install cache (addr * 64) data)
           done;
           for addr = 0 to 63 do
             let li = Sweep_mem.Cache.find cache (addr * 64) in
             assert (li <> Sweep_mem.Cache.no_line);
             ignore (Sweep_mem.Cache.read_word cache li (addr * 64))
           done))
  in
  let buffer_ops =
    Test.make ~name:"persist-buffer:push/search/drain"
      (Staged.stage (fun () ->
           let pb = Sweepcache_core.Persist_buffer.create ~capacity:64 in
           let data = Array.make 16 7 in
           for k = 0 to 63 do
             Sweepcache_core.Persist_buffer.push pb ~base:(k * 64) ~data
           done;
           ignore (Sweepcache_core.Persist_buffer.search pb 1984);
           ignore (Sweepcache_core.Persist_buffer.entries_oldest_first pb);
           Sweepcache_core.Persist_buffer.clear pb))
  in
  let compile_quickstart =
    let ast =
      Sweep_workloads.Workload.program ~scale:0.05
        (Sweep_workloads.Registry.find "sha")
    in
    Test.make ~name:"compiler:sha@0.05"
      (Staged.stage (fun () ->
           ignore (Sweep_sim.Harness.compile Sweep_sim.Harness.Sweep ast)))
  in
  let sim_step =
    let ast =
      Sweep_workloads.Workload.program ~scale:0.05
        (Sweep_workloads.Registry.find "sha")
    in
    Test.make ~name:"simulator:sweep sha@0.05"
      (Staged.stage (fun () ->
           ignore
             (Sweep_sim.Harness.run Sweep_sim.Harness.Sweep
                ~power:Sweep_sim.Driver.Unlimited ast)))
  in
  let obs_disabled =
    (* The cost of an instrumentation site when no sink is installed:
       must stay a single branch (the zero-overhead claim in DESIGN.md). *)
    Test.make ~name:"obs:emit-disabled"
      (Staged.stage (fun () ->
           for i = 0 to 999 do
             if Sweep_obs.Sink.on () then
               Sweep_obs.Sink.emit ~ns:(float_of_int i)
                 (Sweep_obs.Event.Cache_miss { addr = i; write = false })
           done))
  in
  [ cache_ops; buffer_ops; compile_quickstart; sim_step; obs_disabled ]

let run_micro () =
  let open Bechamel in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) () in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let raw =
    Benchmark.all cfg instances
      (Test.make_grouped ~name:"substrate" (micro_tests ()))
  in
  List.iter
    (fun instance ->
      let results = Analyze.all ols instance raw in
      Hashtbl.iter
        (fun name est ->
          match Analyze.OLS.estimates est with
          | Some [ t ] -> Printf.printf "%-50s %14.1f ns/run\n" name t
          | _ -> Printf.printf "%-50s (no estimate)\n" name)
        results)
    instances

(* ------------------------------------------------------------------ *)

(* -j N / --results-dir DIR can appear anywhere; the rest are modes or
   experiment ids. *)
let rec parse_flags = function
  | "-j" :: n :: rest ->
    (match int_of_string_opt n with
     | Some n -> Executor.set_workers n
     | None ->
       Printf.eprintf "-j expects an integer, got %S\n" n;
       exit 2);
    parse_flags rest
  | "--results-dir" :: dir :: rest ->
    Results.set_dir (Some dir);
    parse_flags rest
  | x :: rest -> x :: parse_flags rest
  | [] -> []

let () =
  let args = parse_flags (List.tl (Array.to_list Sys.argv)) in
  match args with
  | [] ->
    Printf.printf "SweepCache reproduction — regenerating all tables/figures\n\n";
    Experiments.run_all ()
  | [ "quick" ] ->
    Printf.printf "SweepCache reproduction — quick set (heavy sweeps skipped)\n\n";
    Experiments.run_all ~include_heavy:false ()
  | [ "list" ] ->
    List.iter
      (fun e ->
        Printf.printf "%-10s %s%s\n" e.Experiments.name e.Experiments.title
          (if e.Experiments.heavy then " [heavy]" else ""))
      Experiments.all
  | [ "micro" ] -> run_micro ()
  | names ->
    let experiments =
      List.map
        (fun name ->
          match Experiments.find name with
          | Some e -> e
          | None ->
            Printf.eprintf "unknown experiment %S (try: list)\n" name;
            exit 2)
        names
    in
    (* One batched execute across the selection shares e.g. the NVP
       baselines between Fig 6 and Table 2. *)
    Experiments.run_many experiments
