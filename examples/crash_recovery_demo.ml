(* Crash-recovery walkthrough: drives the SweepCache machine by hand,
   injecting power failures at chosen instruction depths, and shows the
   recovery protocol at work — where execution rolls back to, what the
   NVM checkpoint slots held, and that the final memory image is always
   the one the program semantics demand (paper §3.4/§4.2).

     dune exec examples/crash_recovery_demo.exe
*)

module H = Sweep_sim.Harness
module Sweepcache = Sweepcache_core.Sweepcache
module Config = Sweep_machine.Config
module Cpu = Sweep_machine.Cpu
module Cost = Sweep_machine.Cost
module Nvm = Sweep_mem.Nvm
module Layout = Sweep_isa.Layout

let program =
  let open Sweep_lang.Dsl in
  program
    [ array "log" 256; scalar "events" 0 ]
    [
      func "main" []
        [
          for_ "k" (i 0) (i 256)
            [
              set "sample" ((v "k" * i 1103515245) + i 12345 land i 0xFFFF);
              st "log" (v "k") (v "sample");
              if_ (v "sample" land i 1 = i 1)
                [ setg "events" (g "events" + i 1) ]
                [];
            ];
          ret_unit;
        ];
    ]

let step_n t from n =
  let acc = Sweepcache.acc t in
  let now = ref from in
  for _ = 1 to n do
    if not (Sweepcache.halted t) then begin
      acc.Sweep_machine.Exec.Acc.now <- !now;
      Sweepcache.step t;
      now := !now +. acc.Sweep_machine.Exec.Acc.ns
    end
  done;
  !now

let run_to_completion t from =
  let acc = Sweepcache.acc t in
  let now = ref from in
  while not (Sweepcache.halted t) do
    acc.Sweep_machine.Exec.Acc.now <- !now;
    Sweepcache.step t;
    now := !now +. acc.Sweep_machine.Exec.Acc.ns
  done;
  now := !now +. (Sweepcache.drain t ~now_ns:!now).Cost.ns;
  !now

let () =
  print_endline "SweepCache crash-recovery walkthrough";
  print_endline "=====================================";
  let compiled = H.compile H.Sweep program in
  let expected = Sweep_lang.Interp.run program in
  let expected_events = Sweep_lang.Interp.scalar expected "events" in
  Printf.printf "program: %d static instructions, %d region boundaries\n\n"
    compiled.Sweep_compiler.Pipeline.stats.static_instrs
    compiled.Sweep_compiler.Pipeline.stats.boundaries;
  List.iter
    (fun depth ->
      let t = Sweepcache.create Config.default compiled.program in
      let layout = compiled.program.Sweep_isa.Program.layout in
      let nvm = Sweepcache.nvm t in
      (* Execute some way in, then pull the plug. *)
      let now = step_n t 0.0 depth in
      let pc_at_crash = (Sweepcache.cpu t).Cpu.pc in
      Sweepcache.on_power_failure t ~now_ns:now;
      let recovery_pc = Nvm.peek_word nvm layout.Layout.ckpt_pc in
      let cost = Sweepcache.on_reboot t ~now_ns:now in
      Printf.printf
        "crash after %5d instrs: pc was %4d, recovery jumps to %4d (slot), \
         recovery cost %.0f ns\n"
        depth pc_at_crash recovery_pc cost.Cost.ns;
      assert ((Sweepcache.cpu t).Cpu.pc = recovery_pc);
      (* Finish the run and check the final answer survived the crash. *)
      ignore (run_to_completion t (now +. cost.Cost.ns));
      let events =
        let _, base, _ =
          List.find (fun (n, _, _) -> n = "events") compiled.globals
        in
        Nvm.peek_word nvm base
      in
      Printf.printf "    -> completed; events = %d (expected %d) %s\n" events
        expected_events
        (if events = expected_events then "[consistent]" else "[BROKEN]"))
    [ 5; 60; 240; 900; 2500 ];
  print_endline "\nEvery crash point recovered to a region boundary and the";
  print_endline "final NVM image matched the crash-free semantics."
