(* Tests for the mini language: validator and reference interpreter. *)
open Sweep_lang.Ast
module Interp = Sweep_lang.Interp

let check = Alcotest.check

let wrap_main body = { globals = []; funcs = [ { fname = "main"; params = []; body } ] }

let expect_invalid name prog =
  match validate prog with
  | () -> Alcotest.failf "%s: expected Invalid" name
  | exception Invalid _ -> ()

let test_validate_missing_main () =
  expect_invalid "no main" { globals = []; funcs = [] }

let test_validate_main_params () =
  expect_invalid "main with params"
    { globals = []; funcs = [ { fname = "main"; params = [ "x" ]; body = [] } ] }

let test_validate_unknown_global () =
  expect_invalid "unknown scalar" (wrap_main [ Set_global ("nope", Int 1) ]);
  expect_invalid "unknown array" (wrap_main [ Store ("nope", Int 0, Int 1) ])

let test_validate_scalar_vs_array () =
  expect_invalid "array used as scalar"
    {
      globals = [ Array ("a", 4, [||]) ];
      funcs = [ { fname = "main"; params = []; body = [ Set_global ("a", Int 1) ] } ];
    }

let test_validate_unassigned_local () =
  expect_invalid "read of never-assigned local"
    (wrap_main [ Set_global ("g", Var "ghost") ])

let test_validate_arity () =
  expect_invalid "wrong arity"
    {
      globals = [];
      funcs =
        [
          { fname = "f"; params = [ "a" ]; body = [ Return None ] };
          { fname = "main"; params = []; body = [ Call_stmt ("f", []) ] };
        ];
    }

let test_validate_recursion () =
  expect_invalid "direct recursion"
    {
      globals = [];
      funcs =
        [
          { fname = "f"; params = []; body = [ Call_stmt ("f", []) ] };
          { fname = "main"; params = []; body = [] };
        ];
    };
  expect_invalid "mutual recursion"
    {
      globals = [];
      funcs =
        [
          { fname = "f"; params = []; body = [ Call_stmt ("g", []) ] };
          { fname = "g"; params = []; body = [ Call_stmt ("f", []) ] };
          { fname = "main"; params = []; body = [] };
        ];
    }

let test_validate_duplicates () =
  expect_invalid "dup global"
    {
      globals = [ Scalar ("x", 0); Scalar ("x", 1) ];
      funcs = [ { fname = "main"; params = []; body = [] } ];
    };
  expect_invalid "dup function"
    {
      globals = [];
      funcs =
        [
          { fname = "main"; params = []; body = [] };
          { fname = "main"; params = []; body = [] };
        ];
    }

let test_validate_bad_array_init () =
  expect_invalid "init longer than array"
    {
      globals = [ Array ("a", 2, [| 1; 2; 3 |]) ];
      funcs = [ { fname = "main"; params = []; body = [] } ];
    }

let run_scalar body expected =
  let prog =
    {
      globals = [ Scalar ("out", 0) ];
      funcs = [ { fname = "main"; params = []; body } ];
    }
  in
  let st = Interp.run prog in
  check Alcotest.int "out" expected (Interp.scalar st "out")

let test_interp_arith () =
  run_scalar [ Set_global ("out", Binop (Add, Int 2, Binop (Mul, Int 3, Int 4))) ] 14;
  run_scalar [ Set_global ("out", Binop (Div, Int 7, Int 0)) ] 0;
  run_scalar [ Set_global ("out", Binop (Lt, Int 1, Int 2)) ] 1;
  run_scalar [ Set_global ("out", Binop (Eq, Int 5, Int 6)) ] 0;
  run_scalar [ Set_global ("out", Binop (Shl, Int 1, Int 10)) ] 1024

let test_interp_control () =
  run_scalar
    [
      Assign ("x", Int 0);
      For ("k", Int 0, Int 10, [ Assign ("x", Binop (Add, Var "x", Var "k")) ]);
      Set_global ("out", Var "x");
    ]
    45;
  run_scalar
    [
      Assign ("x", Int 10);
      Assign ("acc", Int 0);
      While
        ( Binop (Gt, Var "x", Int 0),
          [
            Assign ("acc", Binop (Add, Var "acc", Var "x"));
            Assign ("x", Binop (Sub, Var "x", Int 1));
          ] );
      Set_global ("out", Var "acc");
    ]
    55;
  run_scalar
    [ If (Int 0, [ Set_global ("out", Int 1) ], [ Set_global ("out", Int 2) ]) ]
    2

let test_interp_for_reassign () =
  (* The loop body may move the loop variable; iteration resumes from the
     assigned value + 1 — matching the compiled code. *)
  run_scalar
    [
      Assign ("n", Int 0);
      For
        ( "k", Int 0, Int 10,
          [
            Assign ("n", Binop (Add, Var "n", Int 1));
            Assign ("k", Binop (Add, Var "k", Int 1));
          ] );
      Set_global ("out", Var "n");
    ]
    5

let test_interp_functions () =
  let prog =
    {
      globals = [ Scalar ("out", 0) ];
      funcs =
        [
          {
            fname = "square";
            params = [ "x" ];
            body = [ Return (Some (Binop (Mul, Var "x", Var "x"))) ];
          };
          {
            fname = "main";
            params = [];
            body = [ Set_global ("out", Call ("square", [ Int 9 ])) ];
          };
        ];
    }
  in
  check Alcotest.int "square 9" 81 (Interp.scalar (Interp.run prog) "out")

let test_interp_missing_return_yields_zero () =
  let prog =
    {
      globals = [ Scalar ("out", 7) ];
      funcs =
        [
          { fname = "noop"; params = []; body = [] };
          {
            fname = "main";
            params = [];
            body = [ Set_global ("out", Call ("noop", [])) ];
          };
        ];
    }
  in
  check Alcotest.int "fallthrough returns 0" 0
    (Interp.scalar (Interp.run prog) "out")

let test_interp_arrays () =
  let prog =
    {
      globals = [ Array ("a", 4, [| 10; 20 |]); Scalar ("out", 0) ];
      funcs =
        [
          {
            fname = "main";
            params = [];
            body =
              [
                Store ("a", Int 2, Int 30);
                Set_global
                  ( "out",
                    Binop
                      ( Add,
                        Load ("a", Int 0),
                        Binop (Add, Load ("a", Int 2), Load ("a", Int 3)) ) );
              ];
          };
        ];
    }
  in
  check Alcotest.int "zero-filled tail + store" 40
    (Interp.scalar (Interp.run prog) "out")

let test_interp_oob () =
  let prog =
    {
      globals = [ Array ("a", 4, [||]) ];
      funcs =
        [ { fname = "main"; params = []; body = [ Store ("a", Int 9, Int 1) ] } ];
    }
  in
  match Interp.run prog with
  | _ -> Alcotest.fail "expected out-of-bounds failure"
  | exception Invalid_argument _ -> ()

let test_interp_fuel () =
  let prog =
    wrap_main [ Assign ("x", Int 1); While (Var "x", [ Assign ("x", Int 1) ]) ]
  in
  match Interp.run ~fuel:1000 prog with
  | _ -> Alcotest.fail "expected Out_of_fuel"
  | exception Interp.Out_of_fuel -> ()

let test_globals_image_order () =
  let prog =
    {
      globals = [ Scalar ("z", 1); Array ("a", 2, [| 5 |]); Scalar ("b", 3) ];
      funcs = [ { fname = "main"; params = []; body = [] } ];
    }
  in
  let image = Interp.globals_image (Interp.run prog) in
  check
    (Alcotest.list Alcotest.string)
    "declaration order" [ "z"; "a"; "b" ]
    (List.map fst image)

let test_dsl_builds_valid () =
  (* The DSL's [program] validates on construction. *)
  ignore (Thelpers.tiny_program ())

let prop_interp_deterministic =
  QCheck2.Test.make ~name:"interp deterministic" ~count:40
    ~print:Gen.print_program Gen.gen_program (fun prog ->
      Thelpers.image_equal (Thelpers.interp_image prog) (Thelpers.interp_image prog))

let suite =
  [
    Alcotest.test_case "validate: missing main" `Quick test_validate_missing_main;
    Alcotest.test_case "validate: main params" `Quick test_validate_main_params;
    Alcotest.test_case "validate: unknown global" `Quick test_validate_unknown_global;
    Alcotest.test_case "validate: kind mismatch" `Quick test_validate_scalar_vs_array;
    Alcotest.test_case "validate: unassigned local" `Quick test_validate_unassigned_local;
    Alcotest.test_case "validate: arity" `Quick test_validate_arity;
    Alcotest.test_case "validate: recursion" `Quick test_validate_recursion;
    Alcotest.test_case "validate: duplicates" `Quick test_validate_duplicates;
    Alcotest.test_case "validate: array init" `Quick test_validate_bad_array_init;
    Alcotest.test_case "interp: arithmetic" `Quick test_interp_arith;
    Alcotest.test_case "interp: control flow" `Quick test_interp_control;
    Alcotest.test_case "interp: for reassign" `Quick test_interp_for_reassign;
    Alcotest.test_case "interp: functions" `Quick test_interp_functions;
    Alcotest.test_case "interp: implicit return" `Quick
      test_interp_missing_return_yields_zero;
    Alcotest.test_case "interp: arrays" `Quick test_interp_arrays;
    Alcotest.test_case "interp: out of bounds" `Quick test_interp_oob;
    Alcotest.test_case "interp: fuel" `Quick test_interp_fuel;
    Alcotest.test_case "interp: image order" `Quick test_globals_image_order;
    Alcotest.test_case "dsl validates" `Quick test_dsl_builds_valid;
  ]
  @ [ QCheck_alcotest.to_alcotest prop_interp_deterministic ]
