(* Small shared helpers for the test suites. *)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec scan i =
    if i + nn > nh then false
    else if String.sub haystack i nn = needle then true
    else scan (i + 1)
  in
  nn = 0 || scan 0

(* Run a program through the reference interpreter and return its global
   image as an association list. *)
let interp_image prog =
  Sweep_lang.Interp.globals_image (Sweep_lang.Interp.run prog)

let image_equal a b =
  List.length a = List.length b
  && List.for_all2 (fun (n1, d1) (n2, d2) -> n1 = n2 && d1 = d2) a b

(* A tiny deterministic program used by many unit tests: fills an array
   and folds it into a scalar through a helper function. *)
let tiny_program () =
  let open Sweep_lang.Dsl in
  program
    [ array "data" 32; scalar "acc" 0 ]
    [
      func "fold" [ "lo"; "hi" ]
        [
          set "s" (i 0);
          for_ "k" (v "lo") (v "hi") [ set "s" (v "s" + ld "data" (v "k")) ];
          ret (v "s");
        ];
      func "main" []
        [
          for_ "k" (i 0) (i 32) [ st "data" (v "k") (v "k" * v "k" + i 3) ];
          setg "acc" (call "fold" [ i 0; i 32 ]);
          ret_unit;
        ];
    ]

let run_design ?config ?options ?power design prog =
  let power = Option.value power ~default:Sweep_sim.Driver.Unlimited in
  Sweep_sim.Harness.run ?config ?options design ~power prog

let assert_consistent ?config ?options ?power design prog =
  let r = run_design ?config ?options ?power design prog in
  match Sweep_sim.Harness.check_against_interp r prog with
  | Ok () -> r
  | Error e -> Alcotest.failf "inconsistent final state: %s" e

let office_trace = lazy (Sweep_energy.Power_trace.make Sweep_energy.Power_trace.Rf_office)

let harvested ?(farads = 470e-9) () =
  Sweep_sim.Driver.harvested ~trace:(Lazy.force office_trace) ~farads ()
