(* Compiler tests: lowering/regalloc/emission correctness (differential
   against the interpreter), unrolling equivalence, region-formation
   invariants, and per-mode instrumentation. *)
module H = Sweep_sim.Harness
module Pipeline = Sweep_compiler.Pipeline
module Unroll = Sweep_compiler.Unroll
module Program = Sweep_isa.Program
module I = Sweep_isa.Instr

let check = Alcotest.check

let count_code prog pred =
  Array.fold_left (fun acc ins -> if pred ins then acc + 1 else acc) 0
    prog.Program.code

let test_tiny_program_runs () =
  List.iter
    (fun design ->
      ignore (Thelpers.assert_consistent design (Thelpers.tiny_program ())))
    H.all_designs

let test_plain_has_no_markers () =
  let c = H.compile H.Nvp (Thelpers.tiny_program ()) in
  check Alcotest.int "no region ends" 0
    (count_code c.Pipeline.program (fun ins -> ins = I.Region_end));
  check Alcotest.int "no fences" 0
    (count_code c.Pipeline.program (fun ins -> ins = I.Fence))

let test_sweep_has_regions_and_ckpts () =
  let c = H.compile H.Sweep (Thelpers.tiny_program ()) in
  Alcotest.(check bool) "has boundaries" true (c.Pipeline.stats.boundaries > 0);
  Alcotest.(check bool) "has ckpt stores" true (c.Pipeline.stats.ckpt_stores > 0);
  check Alcotest.int "region_end count matches stats" c.Pipeline.stats.boundaries
    (Program.region_end_count c.Pipeline.program)

let test_replay_instrumentation () =
  let c = H.compile H.Replay (Thelpers.tiny_program ()) in
  let clwbs =
    count_code c.Pipeline.program (fun ins ->
        match ins with I.Clwb _ | I.Clwb_abs _ -> true | _ -> false)
  in
  let stores = Program.static_store_count c.Pipeline.program in
  check Alcotest.int "one clwb per store" stores clwbs;
  Alcotest.(check bool) "fences present" true
    (count_code c.Pipeline.program (fun ins -> ins = I.Fence) > 0);
  check Alcotest.int "no checkpoint stores" 0 c.Pipeline.stats.ckpt_stores

let test_region_store_invariant () =
  List.iter
    (fun threshold ->
      let options = Pipeline.options ~store_threshold:threshold () in
      let c =
        Pipeline.compile ~options:{ options with Pipeline.mode = Pipeline.Sweep }
          (Thelpers.tiny_program ())
      in
      Alcotest.(check bool)
        (Printf.sprintf "max stores <= %d" threshold)
        true
        (c.Pipeline.stats.max_region_stores <= threshold))
    [ 24; 32; 64; 128 ]

let test_threshold_too_small_rejected () =
  let options = Pipeline.options ~store_threshold:10 () in
  Alcotest.(check bool) "threshold under reserve raises" true
    (match Pipeline.compile ~options (Thelpers.tiny_program ()) with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_static_counts_vs_plain () =
  let ast = Thelpers.tiny_program () in
  let plain = (H.compile H.Nvp ast).Pipeline.stats.static_instrs in
  let sweep = (H.compile H.Sweep ast).Pipeline.stats.static_instrs in
  let replay = (H.compile H.Replay ast).Pipeline.stats.static_instrs in
  Alcotest.(check bool) "sweep adds instructions" true (sweep > plain);
  Alcotest.(check bool) "replay adds instructions" true (replay > plain)

let test_unroll_reported () =
  let ast = Thelpers.tiny_program () in
  let c = H.compile H.Sweep ast in
  Alcotest.(check bool) "the two loops unroll" true
    (c.Pipeline.stats.unrolled_loops >= 1)

let test_unroll_off_changes_regions () =
  let ast = Thelpers.tiny_program () in
  let on = H.compile H.Sweep ast in
  let off =
    H.compile ~options:(Pipeline.options ~unroll:false ()) H.Sweep ast
  in
  check Alcotest.int "unroll off reports zero" 0 off.Pipeline.stats.unrolled_loops;
  Alcotest.(check bool) "unrolling changes the program" true
    (on.Pipeline.stats.static_instrs <> off.Pipeline.stats.static_instrs)

let test_globals_metadata () =
  let c = H.compile H.Nvp (Thelpers.tiny_program ()) in
  check
    (Alcotest.list Alcotest.string)
    "globals in order" [ "data"; "acc" ]
    (List.map (fun (n, _, _) -> n) c.Pipeline.globals);
  List.iter
    (fun (name, base, words) ->
      Alcotest.(check bool) (name ^ " sane extent") true
        (base >= Sweep_isa.Layout.default_data_base && words > 0))
    c.Pipeline.globals

let test_initial_data_loaded () =
  let open Sweep_lang.Dsl in
  let prog =
    program
      [ array_init "init" [| 7; 8; 9 |]; scalar "out" 5 ]
      [ func "main" [] [ setg "out" (g "out" + ld "init" (i 2)) ] ]
  in
  let r = Thelpers.assert_consistent H.Nvp prog in
  match H.final_globals r with
  | [ ("init", init); ("out", out) ] ->
    check (Alcotest.array Alcotest.int) "array image" [| 7; 8; 9 |] init;
    check Alcotest.int "scalar" 14 out.(0)
  | _ -> Alcotest.fail "unexpected globals"

(* Differential property: compiled code on the cache-free machine agrees
   with the reference interpreter for random programs. *)
let consistent design prog =
  let r = Thelpers.run_design design prog in
  match H.check_against_interp r prog with Ok () -> true | Error _ -> false

let prop_compile_matches_interp =
  QCheck2.Test.make ~name:"compiled NVP = interpreter" ~count:60
    ~print:Gen.print_program Gen.gen_program (consistent H.Nvp)

(* The same through the full Sweep pipeline (regions + checkpoints must
   not change semantics). *)
let prop_sweep_matches_interp =
  QCheck2.Test.make ~name:"compiled SweepCache = interpreter" ~count:60
    ~print:Gen.print_program Gen.gen_program (consistent H.Sweep)

let prop_unroll_preserves_semantics =
  QCheck2.Test.make ~name:"unroll preserves semantics" ~count:80
    ~print:Gen.print_program Gen.gen_program (fun prog ->
      let unrolled = Unroll.program ~threshold:64 ~max_factor:4 prog in
      Thelpers.image_equal (Thelpers.interp_image prog)
        (Thelpers.interp_image unrolled))

let prop_region_invariant_random =
  QCheck2.Test.make ~name:"random programs obey store threshold" ~count:40
    ~print:Gen.print_program Gen.gen_program (fun prog ->
      let c = H.compile H.Sweep prog in
      c.Pipeline.stats.max_region_stores <= 64)

let suite =
  [
    Alcotest.test_case "tiny program on all designs" `Quick test_tiny_program_runs;
    Alcotest.test_case "plain mode has no markers" `Quick test_plain_has_no_markers;
    Alcotest.test_case "sweep mode instruments" `Quick
      test_sweep_has_regions_and_ckpts;
    Alcotest.test_case "replay mode instruments" `Quick test_replay_instrumentation;
    Alcotest.test_case "store-threshold invariant" `Quick test_region_store_invariant;
    Alcotest.test_case "tiny threshold rejected" `Quick
      test_threshold_too_small_rejected;
    Alcotest.test_case "static counts ordering" `Quick test_static_counts_vs_plain;
    Alcotest.test_case "unrolling reported" `Quick test_unroll_reported;
    Alcotest.test_case "unrolling toggles" `Quick test_unroll_off_changes_regions;
    Alcotest.test_case "globals metadata" `Quick test_globals_metadata;
    Alcotest.test_case "initial data loaded" `Quick test_initial_data_loaded;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [
        prop_compile_matches_interp;
        prop_sweep_matches_interp;
        prop_unroll_preserves_semantics;
        prop_region_invariant_random;
      ]

(* ------------------------------------------------------------------ *)
(* Inlining (paper §5 future work).                                    *)

let test_inline_reduces_boundaries () =
  let ast =
    Sweep_workloads.Workload.program ~scale:0.1
      (Sweep_workloads.Registry.find "rijndaelenc")
  in
  let on =
    H.compile ~options:(Pipeline.options ~inline:true ()) H.Sweep ast
  in
  Alcotest.(check bool) "calls were inlined" true
    (on.Pipeline.stats.inlined_calls > 0);
  (* Inlining duplicates bodies, so *static* boundaries can grow; the
     benefit is dynamic: fewer boundary executions. *)
  let dynamic_regions options =
    let r = Thelpers.run_design ~options H.Sweep ast in
    (H.mstats r).Sweep_machine.Mstats.regions
  in
  Alcotest.(check bool) "fewer dynamic regions" true
    (dynamic_regions (Pipeline.options ~inline:true ())
    < dynamic_regions (Pipeline.options ()))

let test_inline_preserves_tiny () =
  let prog = Thelpers.tiny_program () in
  let inlined = Sweep_compiler.Inline.program prog in
  Alcotest.(check bool) "same semantics" true
    (Thelpers.image_equal (Thelpers.interp_image prog)
       (Thelpers.interp_image inlined))

let prop_inline_preserves_semantics =
  QCheck2.Test.make ~name:"inlining preserves semantics" ~count:80
    ~print:Gen.print_program Gen.gen_program (fun prog ->
      let inlined = Sweep_compiler.Inline.program prog in
      Thelpers.image_equal (Thelpers.interp_image prog)
        (Thelpers.interp_image inlined))

let prop_inline_then_compile_consistent =
  QCheck2.Test.make ~name:"inline+compile = interpreter" ~count:40
    ~print:Gen.print_program Gen.gen_program (fun prog ->
      let r =
        Thelpers.run_design ~options:(Pipeline.options ~inline:true ()) H.Sweep
          prog
      in
      match H.check_against_interp r prog with Ok () -> true | Error _ -> false)

let inline_suite =
  [
    Alcotest.test_case "inline reduces boundaries" `Quick
      test_inline_reduces_boundaries;
    Alcotest.test_case "inline preserves tiny" `Quick test_inline_preserves_tiny;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_inline_preserves_semantics; prop_inline_then_compile_consistent ]

let suite = suite @ inline_suite
