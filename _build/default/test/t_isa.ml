(* Tests for Sweep_isa: instruction semantics, layout, assembler. *)
module I = Sweep_isa.Instr
module Reg = Sweep_isa.Reg
module Layout = Sweep_isa.Layout
module Program = Sweep_isa.Program

let check = Alcotest.check

let test_binop_semantics () =
  check Alcotest.int "add" 7 (I.eval_binop I.Add 3 4);
  check Alcotest.int "sub" (-1) (I.eval_binop I.Sub 3 4);
  check Alcotest.int "mul" 12 (I.eval_binop I.Mul 3 4);
  check Alcotest.int "div" 2 (I.eval_binop I.Div 9 4);
  check Alcotest.int "div by zero" 0 (I.eval_binop I.Div 9 0);
  check Alcotest.int "rem" 1 (I.eval_binop I.Rem 9 4);
  check Alcotest.int "rem by zero" 0 (I.eval_binop I.Rem 9 0);
  check Alcotest.int "and" 0b100 (I.eval_binop I.And 0b110 0b101);
  check Alcotest.int "or" 0b111 (I.eval_binop I.Or 0b110 0b101);
  check Alcotest.int "xor" 0b011 (I.eval_binop I.Xor 0b110 0b101);
  check Alcotest.int "shl" 12 (I.eval_binop I.Shl 3 2);
  check Alcotest.int "shr" 3 (I.eval_binop I.Shr 12 2)

let test_cond_semantics () =
  Alcotest.(check bool) "lt" true (I.eval_cond I.Lt 1 2);
  Alcotest.(check bool) "le eq" true (I.eval_cond I.Le 2 2);
  Alcotest.(check bool) "gt" false (I.eval_cond I.Gt 1 2);
  Alcotest.(check bool) "ge" true (I.eval_cond I.Ge 2 2);
  Alcotest.(check bool) "eq" false (I.eval_cond I.Eq 1 2);
  Alcotest.(check bool) "ne" true (I.eval_cond I.Ne 1 2)

let test_defs_uses () =
  check (Alcotest.list Alcotest.int) "load defs" [ 3 ] (I.defs (I.Load (3, 4, 0)));
  check (Alcotest.list Alcotest.int) "load uses" [ 4 ] (I.uses (I.Load (3, 4, 0)));
  check (Alcotest.list Alcotest.int) "store defs" [] (I.defs (I.Store (3, 4, 0)));
  check (Alcotest.list Alcotest.int) "store uses" [ 3; 4 ]
    (I.uses (I.Store (3, 4, 0)));
  check (Alcotest.list Alcotest.int) "call defines link" [ Reg.link ]
    (I.defs (I.Call "f"));
  check (Alcotest.list Alcotest.int) "set defs" [ 1 ]
    (I.defs (I.Set (I.Lt, 1, 2, 3)));
  check (Alcotest.list Alcotest.int) "set uses" [ 2; 3 ]
    (I.uses (I.Set (I.Lt, 1, 2, 3)))

let test_is_store () =
  Alcotest.(check bool) "store" true (I.is_store (I.Store (0, 1, 0)));
  Alcotest.(check bool) "store_abs" true (I.is_store (I.Store_abs (0, 4)));
  Alcotest.(check bool) "clwb is not a store" false (I.is_store (I.Clwb (0, 0)));
  Alcotest.(check bool) "load is not" false (I.is_store (I.Load (0, 1, 0)))

let test_map_label () =
  let ins = I.Br (I.Eq, 0, 1, "target") in
  match I.map_label String.length ins with
  | I.Br (I.Eq, 0, 1, 6) -> ()
  | _ -> Alcotest.fail "map_label rewrote wrong"

let test_layout_basics () =
  check Alcotest.int "line base" 0x1240 (Layout.line_base 0x127F);
  check Alcotest.int "aligned stays" 0x1240 (Layout.line_base 0x1240);
  let layout = Layout.make ~data_limit:0x2000 in
  check Alcotest.int "slot 0" layout.Layout.ckpt_base (Layout.reg_slot layout 0);
  check Alcotest.int "slot 3"
    (layout.Layout.ckpt_base + 12)
    (Layout.reg_slot layout 3);
  (* The PC checkpoint shares the dead scratch register's slot so the
     whole array fits one cacheline. *)
  check Alcotest.int "pc slot in reg line"
    (Layout.line_base layout.Layout.ckpt_base)
    (Layout.line_base layout.Layout.ckpt_pc)

let test_layout_overflow () =
  Alcotest.check_raises "data collides with checkpoints"
    (Invalid_argument "Layout.make: data region collides with checkpoint array")
    (fun () -> ignore (Layout.make ~data_limit:(Layout.default_ckpt_base + 4)))

let test_reg_conventions () =
  check Alcotest.int "16 registers" 16 Reg.count;
  Alcotest.(check bool) "scratches not allocatable" true
    (not (List.mem Reg.scratch0 Reg.allocatable)
    && (not (List.mem Reg.scratch1 Reg.allocatable))
    && (not (List.mem Reg.scratch2 Reg.allocatable))
    && not (List.mem Reg.link Reg.allocatable));
  check Alcotest.string "name" "r15" (Reg.name Reg.link)

let assemble items =
  Program.assemble ~layout:(Layout.make ~data_limit:0x2000) ~entry:"main" items

let test_assemble_resolves () =
  let prog =
    assemble
      [
        Program.Label "main";
        Program.Ins (I.Movi (0, 5));
        Program.Ins (I.Jmp "end");
        Program.Label "mid";
        Program.Ins I.Nop;
        Program.Label "end";
        Program.Ins I.Halt;
      ]
  in
  check Alcotest.int "entry" 0 prog.Program.entry;
  (match prog.Program.code.(1) with
  | I.Jmp 3 -> ()
  | _ -> Alcotest.fail "jmp must resolve to index 3");
  check Alcotest.int "label_index mid" 2 (Program.label_index prog "mid")

let test_assemble_undefined () =
  Alcotest.check_raises "undefined label" (Program.Undefined_label "nope")
    (fun () -> ignore (assemble [ Program.Label "main"; Program.Ins (I.Jmp "nope") ]))

let test_assemble_duplicate () =
  Alcotest.check_raises "duplicate label" (Program.Duplicate_label "main")
    (fun () ->
      ignore
        (assemble [ Program.Label "main"; Program.Label "main"; Program.Ins I.Halt ]))

let test_static_counts () =
  let prog =
    assemble
      [
        Program.Label "main";
        Program.Ins (I.Store_abs (0, 4));
        Program.Ins I.Nop;
        Program.Ins I.Region_end;
        Program.Ins I.Halt;
      ]
  in
  check Alcotest.int "instr count excludes nop" 3
    (Program.static_instruction_count prog);
  check Alcotest.int "store count" 1 (Program.static_store_count prog);
  check Alcotest.int "region ends" 1 (Program.region_end_count prog)

let test_dump_contains_labels () =
  let prog = assemble [ Program.Label "main"; Program.Ins I.Halt ] in
  Alcotest.(check bool) "dump mentions main" true
    (Thelpers.contains (Program.dump prog) "main:")

let suite =
  [
    Alcotest.test_case "binop semantics" `Quick test_binop_semantics;
    Alcotest.test_case "cond semantics" `Quick test_cond_semantics;
    Alcotest.test_case "defs/uses" `Quick test_defs_uses;
    Alcotest.test_case "is_store" `Quick test_is_store;
    Alcotest.test_case "map_label" `Quick test_map_label;
    Alcotest.test_case "layout basics" `Quick test_layout_basics;
    Alcotest.test_case "layout overflow" `Quick test_layout_overflow;
    Alcotest.test_case "register conventions" `Quick test_reg_conventions;
    Alcotest.test_case "assemble resolves" `Quick test_assemble_resolves;
    Alcotest.test_case "assemble undefined" `Quick test_assemble_undefined;
    Alcotest.test_case "assemble duplicate" `Quick test_assemble_duplicate;
    Alcotest.test_case "static counts" `Quick test_static_counts;
    Alcotest.test_case "dump labels" `Quick test_dump_contains_labels;
  ]
