(* QCheck generators for random mini-language programs.

   The generated programs are total by construction: loop bounds are
   small constants, array indices are wrapped into bounds, locals are
   read only after being assigned, and there is no recursion.  They
   exercise the whole compiler (expressions, control flow, calls,
   register pressure) and feed the differential tests: interpreter vs
   simulated machine, with and without injected power failures. *)

open Sweep_lang.Ast
module Gen = QCheck2.Gen

let array_names = [ ("ga", 24); ("gb", 48) ]
let scalar_names = [ "gs"; "gt" ]

let small_int = Gen.int_range (-100) 100

(* Wrap an arbitrary expression into a valid index for [len]. *)
let bounded_index len e =
  Binop (Rem, Binop (And, e, Int 0x3FFFFFFF), Int len)

let gen_expr ~vars ~depth : expr Gen.t =
  let open Gen in
  let rec go depth =
    let leaves =
      [ (3, map (fun n -> Int n) small_int);
        (2, map (fun s -> Global s) (oneofl scalar_names)) ]
      @ (if vars = [] then [] else [ (4, map (fun v -> Var v) (oneofl vars)) ])
    in
    if depth <= 0 then frequency leaves
    else
      frequency
        (leaves
        @ [
            ( 4,
              let* op =
                oneofl
                  [ Add; Sub; Mul; Div; Rem; And; Or; Xor; Shl; Shr;
                    Lt; Le; Gt; Ge; Eq; Ne ]
              in
              let* a = go (depth - 1) in
              let+ b = go (depth - 1) in
              (* Shifts wider than the word make values explode; clamp. *)
              match op with
              | Shl | Shr -> Binop (op, a, Binop (And, b, Int 7))
              | _ -> Binop (op, a, b) );
            ( 2,
              let* name, len = oneofl array_names in
              let+ idx = go (depth - 1) in
              Load (name, bounded_index len idx) );
          ])
  in
  go depth

(* [readable] includes loop variables; [assignable] excludes them so a
   generated body can never move an enclosing loop counter (which would
   make the loop non-terminating). *)
let gen_stmts ~vars ~budget : stmt list Gen.t =
  let open Gen in
  let fresh_var readable = Printf.sprintf "x%d" (List.length readable) in
  let rec go ~readable ~assignable budget =
    if budget <= 0 then return []
    else
      let stmt_gen =
        frequency
          [
            ( 4,
              let* target =
                if assignable = [] then return (fresh_var readable)
                else oneof [ oneofl assignable; return (fresh_var readable) ]
              in
              let+ e = gen_expr ~vars:readable ~depth:3 in
              ( [ Assign (target, e) ],
                (if List.mem target readable then readable
                 else target :: readable),
                if List.mem target assignable then assignable
                else target :: assignable ) );
            ( 2,
              let* name, len = oneofl array_names in
              let* idx = gen_expr ~vars:readable ~depth:2 in
              let+ value = gen_expr ~vars:readable ~depth:3 in
              ( [ Store (name, bounded_index len idx, value) ],
                readable, assignable ) );
            ( 1,
              let* s = oneofl scalar_names in
              let+ e = gen_expr ~vars:readable ~depth:3 in
              ([ Set_global (s, e) ], readable, assignable) );
            ( 2,
              let* c = gen_expr ~vars:readable ~depth:2 in
              let* t = go ~readable ~assignable (budget / 3) in
              let+ e = go ~readable ~assignable (budget / 3) in
              ([ If (c, t, e) ], readable, assignable) );
            ( 2,
              let loop_var = fresh_var readable in
              let* n = int_range 1 9 in
              let+ body =
                go ~readable:(loop_var :: readable) ~assignable (budget / 3)
              in
              ([ For (loop_var, Int 0, Int n, body) ], readable, assignable) );
            ( 1,
              let* a = gen_expr ~vars:readable ~depth:2 in
              let+ b = gen_expr ~vars:readable ~depth:2 in
              ([ Call_stmt ("helper", [ a; b ]) ], readable, assignable) );
          ]
      in
      let* stmts, readable', assignable' = stmt_gen in
      let+ rest = go ~readable:readable' ~assignable:assignable' (budget - 1) in
      stmts @ rest
  in
  go ~readable:vars ~assignable:vars budget

(* A helper function exercising params, a loop and a return value. *)
let helper_fun =
  {
    fname = "helper";
    params = [ "p"; "q" ];
    body =
      [
        Assign ("acc", Var "p");
        For
          ( "k",
            Int 0,
            Binop (And, Var "q", Int 7),
            [
              Assign ("acc", Binop (Add, Var "acc", Load ("ga", Binop (Rem, Binop (And, Var "k", Int 0x3FFFFFFF), Int 24))));
              Store ("gb", Binop (Rem, Binop (And, Var "acc", Int 0x3FFFFFFF), Int 48), Var "k");
            ] );
        Set_global ("gs", Binop (Xor, Global "gs", Var "acc"));
        Return (Some (Var "acc"));
      ];
  }

let gen_program : program Gen.t =
  let open Gen in
  let* seed = int_range 0 1000 in
  let+ body = gen_stmts ~vars:[] ~budget:8 in
  let init name len =
    Array (name, len, Array.init len (fun k -> ((k * 37) + seed) land 0xFFFF))
  in
  let main_body =
    body
    @ [
        Assign ("r", Call ("helper", [ Global "gs"; Int 5 ]));
        Set_global ("gt", Binop (Add, Global "gt", Var "r"));
        Return None;
      ]
  in
  {
    globals =
      [ init "ga" 24; init "gb" 48; Scalar ("gs", seed); Scalar ("gt", 1) ];
    funcs = [ helper_fun; { fname = "main"; params = []; body = main_body } ];
  }

let print_program (_ : program) = "<program>"
