(* Workload-registry tests: the 26 benchmarks build, validate,
   interpret deterministically, and scale. *)
module W = Sweep_workloads.Workload
module Registry = Sweep_workloads.Registry
module Interp = Sweep_lang.Interp

let check = Alcotest.check

let test_registry_shape () =
  check Alcotest.int "26 benchmarks" 26 (List.length Registry.all);
  let media, mibench =
    List.partition (fun w -> w.W.suite = W.Mediabench) Registry.all
  in
  check Alcotest.int "16 Mediabench" 16 (List.length media);
  check Alcotest.int "10 MiBench" 10 (List.length mibench);
  check Alcotest.int "unique names" 26
    (List.length (List.sort_uniq compare (Registry.names ())))

let test_find () =
  check Alcotest.string "find sha" "sha" (Registry.find "sha").W.name;
  Alcotest.(check bool) "missing raises" true
    (match Registry.find "nonesuch" with
    | _ -> false
    | exception Not_found -> true)

let test_all_build_and_validate () =
  (* Workload.program validates through the DSL; small scale keeps data
     generation cheap. *)
  List.iter (fun w -> ignore (W.program ~scale:0.05 w)) Registry.all

let test_all_interpret () =
  List.iter
    (fun w ->
      let prog = W.program ~scale:0.05 w in
      let st = Interp.run prog in
      Alcotest.(check bool) (w.W.name ^ " does work") true (Interp.steps st > 50))
    Registry.all

let test_deterministic_build () =
  List.iter
    (fun w ->
      let a = Thelpers.interp_image (W.program ~scale:0.05 w) in
      let b = Thelpers.interp_image (W.program ~scale:0.05 w) in
      Alcotest.(check bool) (w.W.name ^ " deterministic") true
        (Thelpers.image_equal a b))
    Registry.all

let test_scale_changes_work () =
  let steps scale =
    Interp.steps (Interp.run (W.program ~scale (Registry.find "sha")))
  in
  Alcotest.(check bool) "bigger scale, more work" true (steps 0.3 > steps 0.1)

let test_scaled_helper () =
  check Alcotest.int "identity" 10 (W.scaled 1.0 10);
  check Alcotest.int "halved" 5 (W.scaled 0.5 10);
  check Alcotest.int "floor at 1" 1 (W.scaled 0.001 10)

let test_workloads_run_on_sweep () =
  (* End-to-end spot check at tiny scale for a representative subset. *)
  List.iter
    (fun name ->
      let prog = W.program ~scale:0.05 (Registry.find name) in
      ignore (Thelpers.assert_consistent Sweep_sim.Harness.Sweep prog))
    [ "adpcmenc"; "g721dec"; "gsmdec"; "jpegdec"; "pegwitenc"; "basicmath";
      "typeset"; "blowfishdec"; "rijndaelenc"; "mpeg2dec"; "susanc" ]

(* Every benchmark, compiled and crash-injected, must match the
   interpreter — the full-registry version of the sim suite's spot
   checks, at small scale. *)
let test_full_registry_crash_consistency () =
  List.iter
    (fun w ->
      let prog = W.program ~scale:0.08 w in
      List.iter
        (fun design ->
          let power = Thelpers.harvested ~farads:330e-9 () in
          let r = Sweep_sim.Harness.run design ~power prog in
          match Sweep_sim.Harness.check_against_interp r prog with
          | Ok () -> ()
          | Error e ->
            Alcotest.failf "%s on %s: %s" w.W.name
              (Sweep_sim.Harness.design_name design)
              e)
        [ Sweep_sim.Harness.Sweep; Sweep_sim.Harness.Replay;
          Sweep_sim.Harness.Nvsram ])
    Registry.all

let suite =
  [
    Alcotest.test_case "full registry crash consistency" `Slow
      test_full_registry_crash_consistency;
    Alcotest.test_case "registry shape" `Quick test_registry_shape;
    Alcotest.test_case "find" `Quick test_find;
    Alcotest.test_case "all build" `Quick test_all_build_and_validate;
    Alcotest.test_case "all interpret" `Quick test_all_interpret;
    Alcotest.test_case "deterministic builds" `Quick test_deterministic_build;
    Alcotest.test_case "scaling works" `Quick test_scale_changes_work;
    Alcotest.test_case "scaled helper" `Quick test_scaled_helper;
    Alcotest.test_case "subset runs on sweep" `Slow test_workloads_run_on_sweep;
  ]
