(* White-box tests of the register allocator via the code it emits:
   pressure spilling, call-crossing spills, and scratch discipline. *)
module H = Sweep_sim.Harness
module Pipeline = Sweep_compiler.Pipeline
module I = Sweep_isa.Instr
module Reg = Sweep_isa.Reg
open Sweep_lang.Dsl

let compile_plain prog = (H.compile H.Nvp prog).Pipeline.program

(* A program with more simultaneously-live scalars than allocatable
   registers: the allocator must spill, and the result must still be
   correct. *)
let pressure_program () =
  let names = List.init 20 (fun k -> Printf.sprintf "v%d" k) in
  let defs =
    List.mapi (fun k n -> set n (i Stdlib.((k * 17) + 3))) names
  in
  let total =
    List.fold_left (fun acc n -> acc + v n) (i 0) names
  in
  program
    [ scalar "out" 0 ]
    [ func "main" [] (defs @ [ setg "out" total ]) ]

let test_pressure_spills_and_runs () =
  let prog = pressure_program () in
  let compiled = H.compile H.Nvp prog in
  Alcotest.(check bool) "spills happened" true
    Stdlib.(compiled.Pipeline.stats.spills > 0);
  ignore (Thelpers.assert_consistent H.Nvp prog)

let test_no_reserved_registers_allocated () =
  (* Compiled code may only write r12–r14 through compiler-generated
     spill/PC sequences; plain mode must never define r14 at all, and
     the allocator must never hand out r15. *)
  let prog = compile_plain (pressure_program ()) in
  Array.iter
    (fun ins ->
      match (ins : int I.t) with
      | I.Call _ -> ()
      | _ ->
        List.iter
          (fun r ->
            if Stdlib.( = ) r Reg.scratch2 then
              Alcotest.fail "plain code defined the PC scratch";
            if Stdlib.( = ) r Reg.link then
              Alcotest.fail "allocator handed out link")
          (I.defs ins))
    prog.Sweep_isa.Program.code

let call_heavy_program () =
  program
    [ scalar "out" 0 ]
    [
      func "inc" [ "x" ] [ ret (v "x" + i 1) ];
      func "main" []
        [
          (* a and b live across many calls: must be memory-resident. *)
          set "a" (i 100);
          set "b" (i 200);
          set "c" (call "inc" [ v "a" ]);
          set "d" (call "inc" [ v "b" ]);
          set "e" (call "inc" [ v "c" + v "d" ]);
          setg "out" (v "a" + v "b" + v "e");
        ];
    ]

let test_call_crossing_values_survive () =
  (* Functional check that caller values survive callee clobbering. *)
  let r = Thelpers.assert_consistent H.Nvp (call_heavy_program ()) in
  match H.final_globals r with
  | [ ("out", out) ] -> Alcotest.(check int) "sum" 603 out.(0)
  | _ -> Alcotest.fail "unexpected globals"

let test_dce_drops_dead_loads () =
  let with_dead =
    program
      [ array "a" 8; scalar "out" 0 ]
      [
        func "main" []
          [
            set "dead" (ld "a" (i 3)); (* never used *)
            setg "out" (i 42);
          ];
      ]
  in
  let without =
    program
      [ array "a" 8; scalar "out" 0 ]
      [ func "main" [] [ setg "out" (i 42) ] ]
  in
  Alcotest.(check int) "dead load eliminated"
    (Sweep_isa.Program.static_instruction_count (compile_plain without))
    (Sweep_isa.Program.static_instruction_count (compile_plain with_dead))

let test_leaf_vs_nonleaf_returns () =
  let prog =
    program
      [ scalar "out" 0 ]
      [
        func "leaf" [ "x" ] [ ret (v "x" * i 2) ];
        func "outer" [ "x" ] [ ret (call "leaf" [ v "x" ]) ];
        func "main" [] [ setg "out" (call "outer" [ i 21 ]) ];
      ]
  in
  let compiled = compile_plain prog in
  (* Leaf functions return through the link register directly. *)
  let has_jmpr_link =
    Array.exists
      (fun ins -> Stdlib.( = ) ins (I.Jmp_reg Reg.link))
      compiled.Sweep_isa.Program.code
  in
  Alcotest.(check bool) "leaf returns via r15" true has_jmpr_link;
  let r = Thelpers.assert_consistent H.Nvp prog in
  match H.final_globals r with
  | [ ("out", out) ] -> Alcotest.(check int) "value" 42 out.(0)
  | _ -> Alcotest.fail "unexpected globals"

let prop_pressure_random =
  (* Random programs with an extra blob of live scalars still agree with
     the interpreter (stress for the spill paths). *)
  QCheck2.Test.make ~name:"regalloc under pressure" ~count:40
    ~print:Gen.print_program Gen.gen_program (fun prog ->
      let open Sweep_lang.Ast in
      let pressure_prefix =
        List.init 14 (fun k ->
            Assign (Printf.sprintf "__p%d" k, Int Stdlib.((k * 31) + 1)))
      in
      let pressure_suffix =
        [
          Set_global
            ( "gt",
              List.fold_left
                (fun acc k ->
                  Binop (Add, acc, Var (Printf.sprintf "__p%d" k)))
                (Global "gt")
                (List.init 14 Fun.id) );
        ]
      in
      let funcs =
        List.map
          (fun f ->
            if String.equal f.fname "main" then
              { f with body = pressure_prefix @ f.body @ pressure_suffix }
            else f)
          prog.funcs
      in
      let prog = { prog with funcs } in
      let r = Thelpers.run_design H.Sweep prog in
      match H.check_against_interp r prog with Ok () -> true | Error _ -> false)

let suite =
  [
    Alcotest.test_case "pressure spills" `Quick test_pressure_spills_and_runs;
    Alcotest.test_case "reserved registers" `Quick
      test_no_reserved_registers_allocated;
    Alcotest.test_case "call-crossing values" `Quick
      test_call_crossing_values_survive;
    Alcotest.test_case "dce drops dead loads" `Quick test_dce_drops_dead_loads;
    Alcotest.test_case "leaf/nonleaf returns" `Quick test_leaf_vs_nonleaf_returns;
  ]
  @ [ QCheck_alcotest.to_alcotest prop_pressure_random ]
