(* Experiment-harness tests: registry integrity, caching, and that the
   cheap experiments print without raising. *)
module C = Sweep_exp.Exp_common
module Experiments = Sweep_exp.Experiments
module H = Sweep_sim.Harness

let check = Alcotest.check

let test_registry_unique_names () =
  let names = List.map (fun e -> e.Experiments.name) Experiments.all in
  check Alcotest.int "unique" (List.length names)
    (List.length (List.sort_uniq compare names))

let test_registry_find () =
  Alcotest.(check bool) "fig5 exists" true (Experiments.find "fig5" <> None);
  Alcotest.(check bool) "unknown is none" true (Experiments.find "zzz" = None)

let test_subset_is_subset () =
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " in all") true (List.mem n C.all_names))
    C.subset_names

let test_run_is_cached () =
  let s = C.setting H.Nvp in
  let a = C.run ~scale:0.1 s ~power:Sweep_sim.Driver.Unlimited "sha" in
  let b = C.run ~scale:0.1 s ~power:Sweep_sim.Driver.Unlimited "sha" in
  Alcotest.(check bool) "same result object" true (a == b)

let test_speedup_positive () =
  let s = C.sweep_empty_bit in
  Alcotest.(check bool) "speedup > 1" true
    (C.speedup ~scale:0.1 s ~power:Sweep_sim.Driver.Unlimited "sha" > 1.0)

let test_settings_labels_distinct () =
  let labels = List.map (fun s -> s.C.label) C.fig5_settings in
  check Alcotest.int "distinct labels" (List.length labels)
    (List.length (List.sort_uniq compare labels))

let with_null_stdout f =
  (* The experiment printers write to stdout; keep test output clean. *)
  let saved = Unix.dup Unix.stdout in
  let null = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  flush stdout;
  Unix.dup2 null Unix.stdout;
  Fun.protect
    ~finally:(fun () ->
      flush stdout;
      Unix.dup2 saved Unix.stdout;
      Unix.close saved;
      Unix.close null)
    f

let test_cheap_experiments_print () =
  with_null_stdout (fun () ->
      Sweep_exp.Exp_tab1.run ();
      Sweep_exp.Exp_hwcost.run ())

let suite =
  [
    Alcotest.test_case "experiment names unique" `Quick test_registry_unique_names;
    Alcotest.test_case "experiment find" `Quick test_registry_find;
    Alcotest.test_case "subset valid" `Quick test_subset_is_subset;
    Alcotest.test_case "run cached" `Quick test_run_is_cached;
    Alcotest.test_case "speedup positive" `Quick test_speedup_positive;
    Alcotest.test_case "setting labels" `Quick test_settings_labels_distinct;
    Alcotest.test_case "tab1/hwcost print" `Quick test_cheap_experiments_print;
  ]
