(* White-box tests of the region-formation pass over hand-built machine
   CFGs: boundary placement, threshold splitting, and checkpoint-store
   selection (live-out ∩ redefined). *)
module Mcfg = Sweep_compiler.Mcfg
module Regions = Sweep_compiler.Regions
module I = Sweep_isa.Instr
module Reg = Sweep_isa.Reg
module Layout = Sweep_isa.Layout

let check = Alcotest.check
let layout = Layout.make ~data_limit:0x2000

let block ?(header = false) id items term =
  { Mcfg.id; items = List.map (fun i -> Mcfg.I i) items; term;
    is_loop_header = header }

let func name blocks =
  { Mcfg.name; entry = 0; blocks = Array.of_list blocks; is_leaf = true;
    link_slot = 0x1000 }

let run_regions ?(threshold = 64) f =
  Regions.run ~layout ~threshold ~instr_cap:2000 ~mode:`Sweep f

let count_region_ends (f : Mcfg.func) =
  Array.fold_left
    (fun acc (b : Mcfg.block) ->
      List.fold_left
        (fun acc item ->
          match item with Mcfg.I I.Region_end -> acc + 1 | _ -> acc)
        acc b.items)
    0 f.blocks

let items_of (f : Mcfg.func) id = f.Mcfg.blocks.(id).Mcfg.items

let ckpt_slots_in items =
  List.filter_map
    (fun item ->
      match item with
      | Mcfg.I (I.Store_abs (r, addr))
        when addr >= layout.Layout.ckpt_base
             && addr < layout.Layout.ckpt_base + 64
             && r <> Reg.scratch2 ->
        Some r
      | _ -> None)
    items

let test_straightline_gets_entry_and_exit () =
  let f =
    func "f" [ block 0 [ I.Movi (0, 1); I.Store_abs (0, 0x1100) ] Mcfg.Tret_leaf ]
  in
  let stats = run_regions f in
  (* Entry boundary + return boundary. *)
  check Alcotest.int "two boundaries" 2 stats.Regions.boundaries;
  check Alcotest.int "matches code" 2 (count_region_ends f)

let test_liveness_simple () =
  (* r0 defined in block 0, used by block 1's terminator: live across. *)
  let f =
    func "f"
      [
        block 0 [ I.Movi (0, 1); I.Movi (1, 2) ] (Mcfg.Tjmp 1);
        block 1 [] (Mcfg.Tbr (I.Eq, 0, 0, 1, 1));
      ]
  in
  let live_out = Mcfg.liveness f in
  Alcotest.(check bool) "r0 live out of b0" true (Mcfg.mask_mem live_out.(0) 0);
  Alcotest.(check bool) "r1 dead out of b0" false (Mcfg.mask_mem live_out.(0) 1)

let test_store_loop_header_boundary () =
  (* Loop whose body stores: the header gets a boundary. *)
  let f =
    func "f"
      [
        block 0 [ I.Movi (0, 0); I.Movi (1, 8) ] (Mcfg.Tjmp 1);
        block ~header:true 1 [] (Mcfg.Tbr (I.Lt, 0, 1, 2, 3));
        block 2 [ I.Store_abs (0, 0x1100); I.Bini (I.Add, 0, 0, 1) ] (Mcfg.Tjmp 1);
        block 3 [] Mcfg.Tret_leaf;
      ]
  in
  ignore (run_regions f);
  (* Checkpoint stores for the boundary precede the Region_end itself. *)
  let header_has_boundary =
    List.exists
      (fun item -> match item with Mcfg.I I.Region_end -> true | _ -> false)
      (items_of f 1)
  in
  Alcotest.(check bool) "boundary at store-loop header" true header_has_boundary

let test_storefree_loop_header_exempt () =
  let f =
    func "f"
      [
        block 0 [ I.Movi (0, 0); I.Movi (1, 8) ] (Mcfg.Tjmp 1);
        block ~header:true 1 [] (Mcfg.Tbr (I.Lt, 0, 1, 2, 3));
        block 2 [ I.Bini (I.Add, 0, 0, 1) ] (Mcfg.Tjmp 1);
        block 3 [ I.Store_abs (0, 0x1100) ] Mcfg.Tret_leaf;
      ]
  in
  ignore (run_regions f);
  let header_has_boundary =
    List.exists
      (fun item -> match item with Mcfg.I I.Region_end -> true | _ -> false)
      (items_of f 1)
  in
  Alcotest.(check bool) "no boundary at store-free header (footnote 6)" false
    header_has_boundary

let test_threshold_splits_store_run () =
  (* 30 consecutive stores with threshold 24: the path scan must split. *)
  let stores = List.init 30 (fun k -> I.Store_abs (0, 0x1100 + (4 * k))) in
  let f = func "f" [ block 0 (I.Movi (0, 7) :: stores) Mcfg.Tret_leaf ] in
  let stats = run_regions ~threshold:24 f in
  Alcotest.(check bool) "extra boundary inserted" true
    (stats.Regions.boundaries > 2);
  Alcotest.(check bool) "invariant holds" true
    (stats.Regions.max_region_stores <= 24)

let test_ckpt_only_live_and_dirty () =
  (* r0 live across the middle boundary but defined before the first one;
     r1 defined in the region ending at the boundary and live after.
     Only r1 (plus nothing else) needs a checkpoint there. *)
  let f =
    func "f"
      [
        block 0
          [
            I.Movi (0, 1);          (* r0 defined here *)
            I.Store_abs (0, 0x1100);
            I.Region_end;           (* manual boundary #1 *)
            I.Movi (1, 2);          (* r1 defined here *)
            I.Store_abs (1, 0x1104);
            I.Region_end;           (* manual boundary #2 *)
            I.Bin (I.Add, 2, 0, 1); (* r0 and r1 both used after *)
            I.Store_abs (2, 0x1108);
          ]
          Mcfg.Tret_leaf;
      ]
  in
  ignore (run_regions f);
  (* Collect checkpoint stores before the second manual boundary: walk
     items, take ckpts between the 2nd and 3rd Region_end (entry boundary
     is inserted at position 0 by the pass, making ours #2 and #3). *)
  let items = items_of f 0 in
  let segments =
    List.fold_left
      (fun (cur, segs) item ->
        match item with
        | Mcfg.I I.Region_end -> ([], List.rev cur :: segs)
        | _ -> (item :: cur, segs))
      ([], []) items
    |> fun (cur, segs) -> List.rev (List.rev cur :: segs)
  in
  (* segment before boundary #3 (index 2) ends with r1's region. *)
  let seg = List.nth segments 2 in
  let slots = ckpt_slots_in seg in
  Alcotest.(check bool) "r1 checkpointed" true (List.mem 1 slots);
  Alcotest.(check bool) "r0 not re-checkpointed" false (List.mem 0 slots)

let test_entry_region_checkpoints_link () =
  (* A leaf returning via r15: the entry boundary's region must
     checkpoint the link register (defined by the caller's Call). *)
  let f = func "f" [ block 0 [ I.Movi (0, 1) ] Mcfg.Tret_leaf ] in
  ignore (run_regions f);
  let items = items_of f 0 in
  let before_first_boundary =
    let rec take acc = function
      | Mcfg.I I.Region_end :: _ -> List.rev acc
      | item :: rest -> take (item :: acc) rest
      | [] -> List.rev acc
    in
    take [] items
  in
  Alcotest.(check bool) "link checkpointed at entry" true
    (List.mem Reg.link (ckpt_slots_in before_first_boundary))

let test_replay_mode_instrumentation () =
  let f =
    func "f" [ block 0 [ I.Movi (0, 1); I.Store_abs (0, 0x1100) ] Mcfg.Tret_leaf ]
  in
  let stats =
    Regions.run ~layout ~threshold:64 ~instr_cap:2000 ~mode:`Replay f
  in
  check Alcotest.int "one clwb" 1 stats.Regions.clwbs;
  check Alcotest.int "no ckpts" 0 stats.Regions.ckpt_stores;
  let has_fence =
    List.exists
      (fun item -> match item with Mcfg.I I.Fence -> true | _ -> false)
      (items_of f 0)
  in
  Alcotest.(check bool) "fence inserted" true has_fence

let test_tiny_threshold_rejected () =
  let f = func "f" [ block 0 [] Mcfg.Tret_leaf ] in
  Alcotest.(check bool) "reserve guard" true
    (match run_regions ~threshold:8 f with
    | _ -> false
    | exception Invalid_argument _ -> true)

let suite =
  [
    Alcotest.test_case "entry+exit boundaries" `Quick
      test_straightline_gets_entry_and_exit;
    Alcotest.test_case "liveness simple" `Quick test_liveness_simple;
    Alcotest.test_case "store-loop header boundary" `Quick
      test_store_loop_header_boundary;
    Alcotest.test_case "store-free header exempt" `Quick
      test_storefree_loop_header_exempt;
    Alcotest.test_case "threshold splits" `Quick test_threshold_splits_store_run;
    Alcotest.test_case "ckpt = live ∩ dirty" `Quick test_ckpt_only_live_and_dirty;
    Alcotest.test_case "entry checkpoints link" `Quick
      test_entry_region_checkpoints_link;
    Alcotest.test_case "replay instrumentation" `Quick
      test_replay_mode_instrumentation;
    Alcotest.test_case "tiny threshold rejected" `Quick test_tiny_threshold_rejected;
  ]
