test/t_baselines.ml: Alcotest Array List Option Sweep_compiler Sweep_energy Sweep_lang Sweep_machine Sweep_mem Sweep_sim Thelpers
