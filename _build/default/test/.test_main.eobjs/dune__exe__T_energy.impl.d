test/t_energy.ml: Alcotest Filename Fun List Sweep_energy Sys
