test/t_exp.ml: Alcotest Fun List Sweep_exp Sweep_sim Unix
