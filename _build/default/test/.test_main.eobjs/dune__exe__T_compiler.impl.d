test/t_compiler.ml: Alcotest Array Gen List Printf QCheck2 QCheck_alcotest Sweep_compiler Sweep_isa Sweep_lang Sweep_machine Sweep_sim Sweep_workloads Thelpers
