test/gen.ml: Array List Printf QCheck2 Sweep_lang
