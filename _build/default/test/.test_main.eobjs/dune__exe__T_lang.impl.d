test/t_lang.ml: Alcotest Gen List QCheck2 QCheck_alcotest Sweep_lang Thelpers
