test/t_machine.ml: Alcotest Array Hashtbl List Option Sweep_compiler Sweep_energy Sweep_isa Sweep_lang Sweep_machine Sweep_mem Sweep_sim
