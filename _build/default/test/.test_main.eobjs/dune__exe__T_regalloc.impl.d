test/t_regalloc.ml: Alcotest Array Fun Gen List Printf QCheck2 QCheck_alcotest Stdlib String Sweep_compiler Sweep_isa Sweep_lang Sweep_sim Thelpers
