test/t_isa.ml: Alcotest Array List String Sweep_isa Thelpers
