test/t_workloads.ml: Alcotest List Sweep_lang Sweep_sim Sweep_workloads Thelpers
