test/t_sim.ml: Alcotest Gen List Printf QCheck2 QCheck_alcotest Sweep_energy Sweep_lang Sweep_sim Sweep_workloads Thelpers
