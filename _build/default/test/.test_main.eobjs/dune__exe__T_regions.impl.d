test/t_regions.ml: Alcotest Array List Sweep_compiler Sweep_isa
