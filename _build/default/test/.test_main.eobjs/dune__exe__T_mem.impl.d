test/t_mem.ml: Alcotest Array Hashtbl List Option QCheck2 QCheck_alcotest Sweep_isa Sweep_mem
