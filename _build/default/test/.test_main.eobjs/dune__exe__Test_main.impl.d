test/test_main.ml: Alcotest T_baselines T_compiler T_core T_energy T_exp T_isa T_lang T_machine T_mem T_regalloc T_regions T_sim T_util T_workloads
