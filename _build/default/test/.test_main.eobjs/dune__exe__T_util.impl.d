test/t_util.ml: Alcotest Array Float Fun List QCheck2 QCheck_alcotest String Sweep_util Thelpers
