test/thelpers.ml: Alcotest Lazy List Option String Sweep_energy Sweep_lang Sweep_sim
