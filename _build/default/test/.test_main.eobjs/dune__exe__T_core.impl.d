test/t_core.ml: Alcotest Array Lazy List Printf Sweep_compiler Sweep_isa Sweep_machine Sweep_mem Sweep_sim Sweepcache_core Thelpers
