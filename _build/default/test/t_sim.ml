(* Integration tests of the intermittent-execution driver, including the
   central crash-consistency property: under arbitrary harvested-power
   failure patterns, every design's final NVM image equals the reference
   interpreter's. *)
module H = Sweep_sim.Harness
module Driver = Sweep_sim.Driver
module Trace = Sweep_energy.Power_trace

let check = Alcotest.check

let test_unlimited_completes () =
  let r = Thelpers.run_design H.Nvp (Thelpers.tiny_program ()) in
  Alcotest.(check bool) "completed" true r.H.outcome.Driver.completed;
  check Alcotest.int "no outages" 0 r.H.outcome.Driver.outages;
  Alcotest.(check bool) "took time" true (r.H.outcome.Driver.on_ns > 0.0)

let test_deterministic_outcomes () =
  let power = Thelpers.harvested () in
  let run () =
    (Thelpers.run_design ~power H.Sweep (Thelpers.tiny_program ())).H.outcome
  in
  let a = run () and b = run () in
  check (Alcotest.float 0.0) "same on time" a.Driver.on_ns b.Driver.on_ns;
  check Alcotest.int "same outages" a.Driver.outages b.Driver.outages;
  check (Alcotest.float 0.0) "same energy" (Driver.total_joules a)
    (Driver.total_joules b)

let test_outages_happen_on_long_runs () =
  let power = Thelpers.harvested () in
  let r =
    Thelpers.run_design ~power H.Nvp
      (Sweep_workloads.Workload.program ~scale:0.3
         (Sweep_workloads.Registry.find "sha"))
  in
  Alcotest.(check bool) "NVP suffers outages" true (r.H.outcome.Driver.outages > 0);
  Alcotest.(check bool) "off time accrues" true (r.H.outcome.Driver.off_ns > 0.0)

let test_instruction_guard () =
  let open Sweep_lang.Dsl in
  let spin =
    program
      [ scalar "x" 1 ]
      [ func "main" [] [ while_ (g "x" > i 0) [ setg "x" (g "x" + i 1) ] ] ]
  in
  Alcotest.(check bool) "stagnation raised" true
    (match
       H.run ~max_instructions:50_000 H.Nvp ~power:Driver.Unlimited spin
     with
    | _ -> false
    | exception Driver.Stagnation _ -> true)

let test_bigger_capacitor_fewer_outages () =
  let prog =
    Sweep_workloads.Workload.program ~scale:0.3
      (Sweep_workloads.Registry.find "sha")
  in
  let outages farads =
    (Thelpers.run_design ~power:(Thelpers.harvested ~farads ()) H.Nvp prog)
      .H.outcome.Driver.outages
  in
  Alcotest.(check bool) "1uF < 470nF outages" true (outages 1e-6 < outages 470e-9);
  check Alcotest.int "1mF runs outage-free" 0 (outages 1e-3)

let test_backups_counted_for_jit () =
  let prog =
    Sweep_workloads.Workload.program ~scale:0.2
      (Sweep_workloads.Registry.find "sha")
  in
  let r = Thelpers.run_design ~power:(Thelpers.harvested ()) H.Nvsram prog in
  Alcotest.(check bool) "backups happened" true (r.H.outcome.Driver.backups > 0);
  Alcotest.(check bool) "backup energy accounted" true
    (r.H.outcome.Driver.backup_joules > 0.0);
  let rs = Thelpers.run_design ~power:(Thelpers.harvested ()) H.Sweep prog in
  check Alcotest.int "sweep never backs up" 0 rs.H.outcome.Driver.backups

let test_total_helpers () =
  let r = Thelpers.run_design H.Nvp (Thelpers.tiny_program ()) in
  check (Alcotest.float 1e-9) "total = on+off"
    (r.H.outcome.Driver.on_ns +. r.H.outcome.Driver.off_ns)
    (Driver.total_ns r.H.outcome)

(* ------------------------------------------------------------------ *)
(* Crash-consistency properties.                                       *)

let crash_consistent design (prog, farads, kind) =
  let trace = Trace.make ~seed:(int_of_float (farads *. 1e12)) kind in
  let power = Driver.harvested ~trace ~farads () in
  let r = H.run design ~power prog in
  match H.check_against_interp r prog with Ok () -> true | Error _ -> false

let gen_crash_env =
  QCheck2.Gen.(
    let* prog = Gen.gen_program in
    let* farads = oneofl [ 47e-9; 100e-9; 220e-9; 470e-9 ] in
    let+ kind = oneofl Trace.[ Rf_home; Rf_office; Solar ] in
    (prog, farads, kind))

let crash_prop design count =
  QCheck2.Test.make
    ~name:(Printf.sprintf "crash consistency: %s" (H.design_name design))
    ~count
    ~print:(fun _ -> "<program+env>")
    gen_crash_env (crash_consistent design)

let crash_suite =
  List.map
    (fun d -> QCheck_alcotest.to_alcotest (crash_prop d 25))
    H.all_designs

(* Deterministic per-benchmark spot checks under failures, cheap scale. *)
let spot_bench_crash name design () =
  let prog =
    Sweep_workloads.Workload.program ~scale:0.15
      (Sweep_workloads.Registry.find name)
  in
  let r = H.run design ~power:(Thelpers.harvested ~farads:220e-9 ()) prog in
  match H.check_against_interp r prog with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let spot_suite =
  List.concat_map
    (fun bench ->
      List.map
        (fun design ->
          Alcotest.test_case
            (Printf.sprintf "crash spot: %s on %s" bench (H.design_name design))
            `Slow (spot_bench_crash bench design))
        [ H.Sweep; H.Replay; H.Nvsram; H.Nvmr ])
    [ "adpcmdec"; "dijkstra"; "fft"; "patricia" ]

let suite =
  [
    Alcotest.test_case "unlimited completes" `Quick test_unlimited_completes;
    Alcotest.test_case "deterministic" `Quick test_deterministic_outcomes;
    Alcotest.test_case "outages on long runs" `Quick test_outages_happen_on_long_runs;
    Alcotest.test_case "instruction guard" `Quick test_instruction_guard;
    Alcotest.test_case "capacitor scaling" `Quick test_bigger_capacitor_fewer_outages;
    Alcotest.test_case "jit backups counted" `Quick test_backups_counted_for_jit;
    Alcotest.test_case "total helpers" `Quick test_total_helpers;
  ]
  @ crash_suite @ spot_suite

(* ------------------------------------------------------------------ *)
(* Backup-failure path: a capacitor too small for NVSRAM-E's worst-case
   backup forces failed backups and stale-shadow recoveries; the run
   must still make forward progress and stay consistent. *)

let test_failed_backups_still_progress () =
  let prog =
    Sweep_workloads.Workload.program ~scale:0.1
      (Sweep_workloads.Registry.find "adpcmdec")
  in
  let r = H.run H.Nvsram_e ~power:(Thelpers.harvested ~farads:150e-9 ()) prog in
  Alcotest.(check bool) "completed" true r.H.outcome.Driver.completed;
  (match H.check_against_interp r prog with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "some backups were infeasible" true
    (r.H.outcome.Driver.failed_backups >= 0)

let test_nvmr_rollback_reexecutes () =
  (* NvMR re-runs the continue-band work after each death; its dynamic
     instruction count under failures must exceed the failure-free one. *)
  let prog =
    Sweep_workloads.Workload.program ~scale:0.15
      (Sweep_workloads.Registry.find "sha")
  in
  let free = H.run H.Nvmr ~power:Driver.Unlimited prog in
  let harv = H.run H.Nvmr ~power:(Thelpers.harvested ()) prog in
  Alcotest.(check bool) "rollbacks re-execute" true
    (harv.H.outcome.Driver.instructions > free.H.outcome.Driver.instructions)

let test_sweep_never_reexecutes_committed_work () =
  (* SweepCache re-executes at most the interrupted region per outage:
     dynamic instructions grow only mildly under failures. *)
  let prog =
    Sweep_workloads.Workload.program ~scale:0.15
      (Sweep_workloads.Registry.find "sha")
  in
  let free = H.run H.Sweep ~power:Driver.Unlimited prog in
  let harv = H.run H.Sweep ~power:(Thelpers.harvested ()) prog in
  let extra =
    float_of_int
      (harv.H.outcome.Driver.instructions - free.H.outcome.Driver.instructions)
    /. float_of_int free.H.outcome.Driver.instructions
  in
  Alcotest.(check bool) "re-execution under 5%" true (extra < 0.05)

let suite =
  suite
  @ [
      Alcotest.test_case "failed backups progress" `Quick
        test_failed_backups_still_progress;
      Alcotest.test_case "nvmr rollback cost" `Quick test_nvmr_rollback_reexecutes;
      Alcotest.test_case "sweep minimal re-execution" `Quick
        test_sweep_never_reexecutes_committed_work;
    ]
