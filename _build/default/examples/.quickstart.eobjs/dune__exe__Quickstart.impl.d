examples/quickstart.ml: Array Printf Stdlib Sweep_energy Sweep_lang Sweep_sim
