examples/design_space.ml: Array List Printf Sweep_compiler Sweep_energy Sweep_machine Sweep_sim Sweep_util Sweep_workloads Sys
