examples/sensor_logging.mli:
