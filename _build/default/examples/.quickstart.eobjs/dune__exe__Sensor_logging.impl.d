examples/sensor_logging.ml: Array List Printf Stdlib Sweep_energy Sweep_lang Sweep_sim Sweep_util
