examples/crash_recovery_demo.mli:
