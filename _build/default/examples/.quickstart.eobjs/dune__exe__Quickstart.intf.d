examples/quickstart.mli:
