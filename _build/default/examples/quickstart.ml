(* Quickstart: write a tiny program in the mini language, compile it with
   the SweepCache compiler, and run it on the SweepCache machine — first
   with unlimited power, then against a harvested RF trace with a 470 nF
   capacitor — checking the final memory image against the reference
   interpreter each time.

     dune exec examples/quickstart.exe
*)

open Sweep_lang.Dsl
module H = Sweep_sim.Harness
module Driver = Sweep_sim.Driver

(* A dot-product-with-saturation kernel: arrays, a loop, a helper
   function and a global accumulator. *)
let program =
  let n = 512 in
  program
    [
      array_init "xs" (Array.init n (fun k -> Stdlib.((k * 7) mod 100)));
      array_init "ys" (Array.init n (fun k -> Stdlib.((k * 13) mod 50)));
      scalar "dot" 0;
    ]
    [
      func "saturate" [ "x" ]
        [
          if_ (v "x" > i 1000000) [ ret (i 1000000) ] [];
          ret (v "x");
        ];
      func "main" []
        [
          set "acc" (i 0);
          for_ "k" (i 0) (i n)
            [ set "acc" (v "acc" + (ld "xs" (v "k") * ld "ys" (v "k"))) ];
          setg "dot" (call "saturate" [ v "acc" ]);
          ret_unit;
        ];
    ]

let report label (r : H.result) =
  let o = r.H.outcome in
  let verified =
    match H.check_against_interp r program with
    | Ok () -> "verified against the interpreter"
    | Error e -> "MISMATCH: " ^ e
  in
  Printf.printf
    "%-22s %8d instructions, %7.1f us on, %7.1f ms off, %3d outages — %s\n"
    label o.Driver.instructions (o.Driver.on_ns /. 1e3)
    (o.Driver.off_ns /. 1e6) o.Driver.outages verified

let () =
  print_endline "SweepCache quickstart";
  print_endline "=====================";
  (* 1. Continuous power. *)
  report "continuous power:" (H.run H.Sweep ~power:Driver.Unlimited program);
  (* 2. Harvested RF power: frequent power failures, recovered through
     region-level persistence. *)
  let trace = Sweep_energy.Power_trace.make Sweep_energy.Power_trace.Rf_office in
  let power = Driver.harvested ~trace ~farads:470e-9 () in
  report "RF-harvested power:" (H.run H.Sweep ~power program);
  (* 3. The cache-free baseline for comparison. *)
  let nvp = H.run H.Nvp ~power program in
  let sweep = H.run H.Sweep ~power program in
  Printf.printf
    "\nversus cache-free NVP on this kernel: %.1fx faster execution, and NVP\n\
     needed %d recharge cycles where SweepCache needed %d.\n"
    (nvp.H.outcome.Driver.on_ns /. sweep.H.outcome.Driver.on_ns)
    nvp.H.outcome.Driver.outages sweep.H.outcome.Driver.outages
