(* Design-space exploration through the public API: how do persist-buffer
   capacity (= the compiler's store threshold), cache size and the buffer
   search policy trade off for one workload?  The §4.5 discussion ("the
   size of the persist buffer is a trade-off") as a runnable script.

     dune exec examples/design_space.exe [workload]
*)

module H = Sweep_sim.Harness
module Driver = Sweep_sim.Driver
module Config = Sweep_machine.Config
module Pipeline = Sweep_compiler.Pipeline
module Mstats = Sweep_machine.Mstats
module Table = Sweep_util.Table

let () =
  let bench = if Array.length Sys.argv > 1 then Sys.argv.(1) else "fft" in
  let ast =
    Sweep_workloads.Workload.program ~scale:0.5
      (Sweep_workloads.Registry.find bench)
  in
  let trace = Sweep_energy.Power_trace.make Sweep_energy.Power_trace.Rf_office in
  let power = Driver.harvested ~trace ~farads:470e-9 () in
  let nvp = Driver.total_ns (H.run H.Nvp ~power ast).H.outcome in

  Printf.printf "Design space for %s (RFOffice, 470 nF; speedups over NVP)\n\n"
    bench;

  Printf.printf "1. Persist-buffer capacity (= compiler store threshold)\n";
  let t =
    Table.create [ "entries"; "speedup"; "regions"; "avg stores/region"; "eff %" ]
  in
  List.iter
    (fun entries ->
      let config = { Config.default with buffer_entries = entries } in
      let options = Pipeline.options ~store_threshold:entries () in
      let r = H.run ~config ~options H.Sweep ~power ast in
      let st = H.mstats r in
      let avg hist =
        let n = ref 0 and s = ref 0 in
        Array.iteri
          (fun v c ->
            n := !n + c;
            s := !s + (v * c))
          hist;
        if !n = 0 then 0.0 else float_of_int !s /. float_of_int !n
      in
      Table.add_row t
        [
          string_of_int entries;
          Table.float_cell (nvp /. Driver.total_ns r.H.outcome);
          string_of_int st.Mstats.regions;
          Table.float_cell (avg st.Mstats.region_store_hist);
          Table.float_cell (Mstats.parallelism_efficiency st);
        ])
    [ 24; 32; 64; 128; 256 ];
  Table.print t;

  Printf.printf "\n2. Cache size\n";
  let t = Table.create [ "cache"; "speedup"; "miss %" ] in
  List.iter
    (fun size ->
      let config = Config.with_cache Config.default ~size in
      let r = H.run ~config H.Sweep ~power ast in
      Table.add_row t
        [
          Printf.sprintf "%dB" size;
          Table.float_cell (nvp /. Driver.total_ns r.H.outcome);
          Table.float_cell (100.0 *. H.cache_miss_rate r);
        ])
    [ 512; 1024; 2048; 4096; 8192 ];
  Table.print t;

  Printf.printf "\n3. Buffer search policy and buffer count\n";
  let t = Table.create [ "variant"; "speedup" ] in
  List.iter
    (fun (label, config) ->
      let r = H.run ~config H.Sweep ~power ast in
      Table.add_row t
        [ label; Table.float_cell (nvp /. Driver.total_ns r.H.outcome) ])
    [
      ("empty-bit, dual buffer", Config.default);
      ("sequential search", Config.with_search Config.default Config.Nvm_search);
      ("single buffer", { Config.default with buffer_count = 1 });
    ];
  Table.print t
