(* Sensor-logging scenario: the kind of workload the paper's introduction
   motivates (tire-pressure sensing, health monitoring) — a battery-free
   node that filters a sensor stream, detects threshold events and keeps
   a compacted event log, all across power failures.

   Runs the same application on every architecture model and prints a
   comparison: wall-clock, outages, energy — the "which design should my
   wearable use?" table.

     dune exec examples/sensor_logging.exe
*)

open Sweep_lang.Dsl
module H = Sweep_sim.Harness
module Driver = Sweep_sim.Driver
module Table = Sweep_util.Table

let samples = 6000

let app =
  let raw =
    (* A noisy sensor trace with occasional spikes. *)
    let rng = Sweep_util.Rng.create 2026 in
    Array.init samples (fun k ->
        Stdlib.(
          let base = 500 + int_of_float (100.0 *. sin (float_of_int k /. 80.0)) in
          let noise = Sweep_util.Rng.int rng 41 - 20 in
          let spike = if Sweep_util.Rng.int rng 97 = 0 then 400 else 0 in
          base + noise + spike))
  in
  program
    [
      array_init "raw" raw;
      array "filtered" samples;
      array "event_log" 1024;      (* (index, magnitude) pairs *)
      scalar "event_count" 0;
      scalar "checksum" 0;
    ]
    [
      (* 8-tap moving average. *)
      func "filter" [ "k" ]
        [
          set "acc" (i 0);
          set "lo" (v "k" - i 7);
          if_ (v "lo" < i 0) [ set "lo" (i 0) ] [];
          set "cnt" (i 0);
          for_ "t" (v "lo") (v "k" + i 1)
            [
              set "acc" (v "acc" + ld "raw" (v "t"));
              set "cnt" (v "cnt" + i 1);
            ];
          ret (v "acc" / v "cnt");
        ];
      (* Record a threshold crossing, compacting the log when full. *)
      func "record_event" [ "k"; "magnitude" ]
        [
          if_ (g "event_count" >= i 512)
            [
              (* Compaction: keep every other event. *)
              for_ "t" (i 0) (i 256)
                [
                  st "event_log" (v "t" * i 2) (ld "event_log" (v "t" * i 4));
                  st "event_log"
                    ((v "t" * i 2) + i 1)
                    (ld "event_log" ((v "t" * i 4) + i 1));
                ];
              setg "event_count" (i 256);
            ]
            [];
          st "event_log" (g "event_count" * i 2) (v "k");
          st "event_log" ((g "event_count" * i 2) + i 1) (v "magnitude");
          setg "event_count" (g "event_count" + i 1);
          ret_unit;
        ];
      func "main" []
        [
          for_ "k" (i 0) (i samples)
            [
              set "f" (call "filter" [ v "k" ]);
              st "filtered" (v "k") (v "f");
              if_ (ld "raw" (v "k") - v "f" > i 150)
                [ callp "record_event" [ v "k"; ld "raw" (v "k") - v "f" ] ]
                [];
              setg "checksum" ((g "checksum" + v "f") land i 0xFFFFFF);
            ];
          ret_unit;
        ];
    ]

let () =
  print_endline "Battery-free sensor logger: architecture comparison";
  print_endline "(RFHome harvesting trace, 470 nF capacitor)\n";
  let trace = Sweep_energy.Power_trace.make Sweep_energy.Power_trace.Rf_home in
  let power = Driver.harvested ~trace ~farads:470e-9 () in
  let t =
    Table.create
      [ "design"; "total ms"; "on ms"; "outages"; "energy uJ"; "consistent" ]
  in
  let nvp_total = ref 0.0 in
  List.iter
    (fun design ->
      let r = H.run design ~power app in
      let o = r.H.outcome in
      (match design with
      | H.Nvp -> nvp_total := Driver.total_ns o
      | _ -> ());
      let ok =
        match H.check_against_interp r app with Ok () -> "yes" | Error _ -> "NO"
      in
      Table.add_row t
        [
          H.design_name design;
          Table.float_cell (Driver.total_ns o /. 1e6);
          Table.float_cell (o.Driver.on_ns /. 1e6);
          string_of_int o.Driver.outages;
          Table.float_cell (Driver.total_joules o *. 1e6);
          ok;
        ])
    H.all_designs;
  Table.print t;
  let sweep = H.run H.Sweep ~power app in
  Printf.printf
    "\nSweepCache finishes the logging run %.1fx faster than the cache-free node.\n"
    (!nvp_total /. Driver.total_ns sweep.H.outcome)
