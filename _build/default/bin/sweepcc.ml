(* sweepcc: inspect the SweepCache compiler's output for a benchmark —
   compilation statistics per mode, or the full disassembly listing.

     dune exec bin/sweepcc.exe -- sha
     dune exec bin/sweepcc.exe -- sha -m replay --dump
     dune exec bin/sweepcc.exe -- --list
*)

open Cmdliner
module H = Sweep_sim.Harness
module Pipeline = Sweep_compiler.Pipeline
module Table = Sweep_util.Table

let mode_assoc =
  [ ("plain", Pipeline.Plain); ("sweep", Pipeline.Sweep);
    ("replay", Pipeline.Replay) ]

let stats_row label (c : Pipeline.compiled) =
  [
    label;
    string_of_int c.stats.static_instrs;
    string_of_int c.stats.static_stores;
    string_of_int c.stats.boundaries;
    string_of_int c.stats.ckpt_stores;
    string_of_int c.stats.clwbs;
    string_of_int c.stats.spills;
    string_of_int c.stats.unrolled_loops;
    string_of_int c.stats.inlined_calls;
    string_of_int c.stats.max_region_stores;
  ]

let main list_benches bench mode threshold unroll inline dump =
  if list_benches then begin
    List.iter print_endline (Sweep_workloads.Registry.names ());
    0
  end
  else
    match bench with
    | None ->
      prerr_endline "a WORKLOAD argument is required (or --list)";
      2
    | Some bench ->
      (match Sweep_workloads.Registry.find bench with
      | exception Not_found ->
        Printf.eprintf "unknown workload %S (try --list)\n" bench;
        2
      | w ->
        let ast = Sweep_workloads.Workload.program w in
        let compile mode =
          Pipeline.compile
            ~options:
              (Pipeline.options ~mode ~store_threshold:threshold ~unroll
                 ~inline ())
            ast
        in
        (match mode with
        | Some m ->
          let c = compile m in
          if dump then print_string (Sweep_isa.Program.dump c.program)
          else begin
            let t = Table.create
                [ "mode"; "instrs"; "stores"; "regions"; "ckpts"; "clwbs";
                  "spills"; "unrolled"; "inlined"; "max stores/region" ]
            in
            let label =
              fst (List.find (fun (_, v) -> v = m) mode_assoc)
            in
            Table.add_row t (stats_row label c);
            Table.print t
          end
        | None ->
          let t = Table.create
              [ "mode"; "instrs"; "stores"; "regions"; "ckpts"; "clwbs";
                "spills"; "unrolled"; "inlined"; "max stores/region" ]
          in
          List.iter
            (fun (label, m) -> Table.add_row t (stats_row label (compile m)))
            mode_assoc;
          Table.print t);
        0)

let list_arg =
  Arg.(value & flag & info [ "list" ] ~doc:"List the available workloads.")

let bench_arg =
  Arg.(value & pos 0 (some string) None & info [] ~docv:"WORKLOAD")

let mode_arg =
  let mode_conv =
    Arg.conv
      ( (fun s ->
          match List.assoc_opt (String.lowercase_ascii s) mode_assoc with
          | Some m -> Ok (Some m)
          | None -> Error (`Msg ("unknown mode " ^ s))),
        fun fmt -> function
          | Some m ->
            Format.pp_print_string fmt
              (fst (List.find (fun (_, v) -> v = m) mode_assoc))
          | None -> Format.pp_print_string fmt "all" )
  in
  Arg.(value & opt mode_conv None
       & info [ "m"; "mode" ] ~docv:"MODE"
           ~doc:"Compilation mode: plain, sweep or replay (default: all three).")

let threshold_arg =
  Arg.(value & opt int 64
       & info [ "threshold" ] ~docv:"N"
           ~doc:"Store threshold / persist-buffer size.")

let unroll_arg =
  Arg.(value & opt bool true
       & info [ "unroll" ] ~docv:"BOOL" ~doc:"Enable loop unrolling.")

let inline_arg =
  Arg.(value & flag
       & info [ "inline" ]
           ~doc:"Enable small-function inlining (the paper's §5 extension).")

let dump_arg =
  Arg.(value & flag
       & info [ "dump" ] ~doc:"Print the disassembly instead of statistics \
                               (requires --mode).")

let cmd =
  let doc = "inspect SweepCache compilation of a workload" in
  let term =
    Term.(const main $ list_arg $ bench_arg $ mode_arg $ threshold_arg
          $ unroll_arg $ inline_arg $ dump_arg)
  in
  Cmd.v (Cmd.info "sweepcc" ~doc) term

let () = exit (Cmd.eval' cmd)
