lib/core/persist_buffer.ml: Array List
