lib/core/wbi_table.ml: Hashtbl List
