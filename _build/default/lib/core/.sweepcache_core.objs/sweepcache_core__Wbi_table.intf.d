lib/core/wbi_table.mli:
