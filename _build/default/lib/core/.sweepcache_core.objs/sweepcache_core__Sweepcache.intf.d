lib/core/sweepcache.mli: Sweep_isa Sweep_machine
