lib/core/sweepcache.ml: Array List Persist_buffer Sweep_energy Sweep_isa Sweep_machine Sweep_mem Wbi_table
