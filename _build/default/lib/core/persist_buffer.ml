type t = {
  capacity : int;
  mutable newest_first : (int * int array) list;
  mutable count : int;
  mutable peak : int;
}

exception Overflow

let create ~capacity =
  if capacity <= 0 then invalid_arg "Persist_buffer.create";
  { capacity; newest_first = []; count = 0; peak = 0 }

let capacity t = t.capacity
let count t = t.count
let is_empty t = t.count = 0

let push t ~base ~data =
  if t.count >= t.capacity then raise Overflow;
  t.newest_first <- (base, Array.copy data) :: t.newest_first;
  t.count <- t.count + 1;
  if t.count > t.peak then t.peak <- t.count

let search t base =
  let rec scan n = function
    | [] -> None
    | (b, data) :: rest ->
      if b = base then Some (data, n + 1) else scan (n + 1) rest
  in
  scan 0 t.newest_first

let entries_oldest_first t = List.rev t.newest_first

let clear t =
  t.newest_first <- [];
  t.count <- 0

let peak t = t.peak
