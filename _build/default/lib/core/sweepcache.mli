(** The SweepCache machine (paper §3–§4).

    Implements {!Sweep_machine.Machine_intf.S}:

    - a volatile write-back L1D whose in-region write-backs are
      quarantined in the active persist buffer (t-phase1);
    - region-end persistence: flush the region's dirty lines (found via
      the write-back-instructive table) into the buffer (t-phase2 /
      s-phase1 completion) and then DMA the buffer to its NVM home
      locations (t-phase3 / s-phase2) — both run on a background DMA
      engine while the next region executes speculatively out of the
      second buffer (region-level parallelism, §3.3);
    - per-buffer [phase1Complete]/[phase2Complete] status expressed as
      buffer states with completion timestamps, driving the three-case
      recovery protocol of §4.2;
    - write-after-write stalls for stores that hit a prior region's
      not-yet-flushed dirty line (§4.3);
    - empty-bit (or always-sequential, per config) buffer search on cache
      misses (§4.4).

    Persistence *energy* is charged when the work is scheduled; its
    *time* is tracked with completion timestamps, so a power failure at
    time T sees exactly the phase progress made by T.  Writes of a
    buffer's entries into NVM home locations happen (functionally) when
    phase 2 completes or when recovery re-drives it — re-driving is
    idempotent, matching the paper's "restart t-phase3" rule. *)

include Sweep_machine.Machine_intf.S

val buffer_peak : t -> int
(** Largest persist-buffer occupancy observed (must stay ≤ capacity — the
    compiler's threshold invariant). *)

val avg_buffer_fill_at_miss : t -> float
(** Average number of persist-buffer entries present when a load miss
    occurred — the paper reports 0.00012 entries per region; we report
    the per-miss analogue. *)

val pack : t -> Sweep_machine.Machine_intf.packed
(** Wrap an existing instance (keeps it inspectable alongside the packed
    view). *)

val packed :
  Sweep_machine.Config.t -> Sweep_isa.Program.t ->
  Sweep_machine.Machine_intf.packed
(** Convenience: create and pack in one step. *)
