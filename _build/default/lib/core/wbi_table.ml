type t = {
  seen : (int, unit) Hashtbl.t;
  mutable order : int list; (* reversed marking order *)
}

let create () = { seen = Hashtbl.create 64; order = [] }

let mark t base =
  if not (Hashtbl.mem t.seen base) then begin
    Hashtbl.replace t.seen base ();
    t.order <- base :: t.order
  end

let bases t = List.rev t.order
let count t = Hashtbl.length t.seen

let clear t =
  Hashtbl.reset t.seen;
  t.order <- []
