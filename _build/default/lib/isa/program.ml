type label = string

type item =
  | Label of label
  | Ins of label Instr.t

type meta = {
  functions : (string * label) list;
  initial_data : (int * int) list;
}

type t = {
  code : int Instr.t array;
  entry : int;
  labels : (label * int) list;
  layout : Layout.t;
  meta : meta;
}

exception Undefined_label of string
exception Duplicate_label of string

let empty_meta = { functions = []; initial_data = [] }

let assemble ?(meta = empty_meta) ~layout ~entry items =
  let table = Hashtbl.create 64 in
  (* First pass: instruction indices for every label. *)
  let count =
    List.fold_left
      (fun idx item ->
        match item with
        | Label l ->
          if Hashtbl.mem table l then raise (Duplicate_label l);
          Hashtbl.add table l idx;
          idx
        | Ins _ -> idx + 1)
      0 items
  in
  let resolve l =
    match Hashtbl.find_opt table l with
    | Some idx -> idx
    | None -> raise (Undefined_label l)
  in
  let code = Array.make (max count 1) (Instr.Halt : int Instr.t) in
  let fill idx item =
    match item with
    | Label _ -> idx
    | Ins ins ->
      code.(idx) <- Instr.map_label resolve ins;
      idx + 1
  in
  let filled = List.fold_left fill 0 items in
  assert (filled = count);
  let labels = Hashtbl.fold (fun l idx acc -> (l, idx) :: acc) table [] in
  let labels = List.sort (fun (_, a) (_, b) -> compare a b) labels in
  { code; entry = resolve entry; labels; layout; meta }

let label_index t l =
  match List.assoc_opt l t.labels with
  | Some idx -> idx
  | None -> raise Not_found

let static_instruction_count t =
  Array.fold_left
    (fun acc ins -> match ins with Instr.Nop -> acc | _ -> acc + 1)
    0 t.code

let static_store_count t =
  Array.fold_left
    (fun acc ins -> if Instr.is_store ins then acc + 1 else acc)
    0 t.code

let region_end_count t =
  Array.fold_left
    (fun acc ins -> match ins with Instr.Region_end -> acc + 1 | _ -> acc)
    0 t.code

let dump t =
  let buf = Buffer.create 4096 in
  let labels_at idx =
    List.filter_map (fun (l, i) -> if i = idx then Some l else None) t.labels
  in
  Array.iteri
    (fun idx ins ->
      List.iter (fun l -> Buffer.add_string buf (l ^ ":\n")) (labels_at idx);
      Buffer.add_string buf
        (Printf.sprintf "  %4d  %s\n" idx (Instr.to_string string_of_int ins)))
    t.code;
  Buffer.contents buf
