type binop =
  | Add | Sub | Mul | Div | Rem
  | And | Or | Xor | Shl | Shr

type cond = Eq | Ne | Lt | Le | Gt | Ge

type 'l t =
  | Movi of Reg.t * int
  | Movl of Reg.t * 'l
  | Mov of Reg.t * Reg.t
  | Bin of binop * Reg.t * Reg.t * Reg.t
  | Bini of binop * Reg.t * Reg.t * int
  | Set of cond * Reg.t * Reg.t * Reg.t
  | Load of Reg.t * Reg.t * int
  | Store of Reg.t * Reg.t * int
  | Load_abs of Reg.t * int
  | Store_abs of Reg.t * int
  | Br of cond * Reg.t * Reg.t * 'l
  | Jmp of 'l
  | Jmp_reg of Reg.t
  | Call of 'l
  | Clwb of Reg.t * int
  | Clwb_abs of int
  | Fence
  | Region_end
  | Nop
  | Halt

let map_label f = function
  | Movl (rd, l) -> Movl (rd, f l)
  | Br (c, a, b, l) -> Br (c, a, b, f l)
  | Jmp l -> Jmp (f l)
  | Call l -> Call (f l)
  | Movi (rd, i) -> Movi (rd, i)
  | Mov (rd, rs) -> Mov (rd, rs)
  | Bin (op, rd, a, b) -> Bin (op, rd, a, b)
  | Bini (op, rd, a, i) -> Bini (op, rd, a, i)
  | Set (c, rd, a, b) -> Set (c, rd, a, b)
  | Load (rd, rs, i) -> Load (rd, rs, i)
  | Store (rv, rs, i) -> Store (rv, rs, i)
  | Load_abs (rd, i) -> Load_abs (rd, i)
  | Store_abs (rv, i) -> Store_abs (rv, i)
  | Jmp_reg r -> Jmp_reg r
  | Clwb (rs, i) -> Clwb (rs, i)
  | Clwb_abs i -> Clwb_abs i
  | Fence -> Fence
  | Region_end -> Region_end
  | Nop -> Nop
  | Halt -> Halt

let eval_binop op a b =
  match op with
  | Add -> a + b
  | Sub -> a - b
  | Mul -> a * b
  | Div -> if b = 0 then 0 else a / b
  | Rem -> if b = 0 then 0 else a mod b
  | And -> a land b
  | Or -> a lor b
  | Xor -> a lxor b
  | Shl -> a lsl (b land 63)
  | Shr -> a lsr (b land 63)

let eval_cond c a b =
  match c with
  | Eq -> a = b
  | Ne -> a <> b
  | Lt -> a < b
  | Le -> a <= b
  | Gt -> a > b
  | Ge -> a >= b

let defs = function
  | Movi (rd, _) | Movl (rd, _) | Mov (rd, _)
  | Bin (_, rd, _, _) | Bini (_, rd, _, _) | Set (_, rd, _, _)
  | Load (rd, _, _) | Load_abs (rd, _) -> [ rd ]
  | Call _ -> [ Reg.link ]
  | Store _ | Store_abs _ | Br _ | Jmp _ | Jmp_reg _
  | Clwb _ | Clwb_abs _ | Fence | Region_end | Nop | Halt -> []

let uses = function
  | Mov (_, rs) -> [ rs ]
  | Bin (_, _, a, b) -> [ a; b ]
  | Bini (_, _, a, _) -> [ a ]
  | Set (_, _, a, b) -> [ a; b ]
  | Load (_, rs, _) -> [ rs ]
  | Store (rv, rs, _) -> [ rv; rs ]
  | Load_abs _ -> []
  | Store_abs (rv, _) -> [ rv ]
  | Br (_, a, b, _) -> [ a; b ]
  | Jmp_reg r -> [ r ]
  | Clwb (rs, _) -> [ rs ]
  | Movi _ | Movl _ | Jmp _ | Call _ | Clwb_abs _
  | Fence | Region_end | Nop | Halt -> []

let is_store = function Store _ | Store_abs _ -> true | _ -> false

let is_memory = function
  | Load _ | Store _ | Load_abs _ | Store_abs _ -> true
  | _ -> false

let binop_name = function
  | Add -> "add" | Sub -> "sub" | Mul -> "mul" | Div -> "div" | Rem -> "rem"
  | And -> "and" | Or -> "or" | Xor -> "xor" | Shl -> "shl" | Shr -> "shr"

let cond_name = function
  | Eq -> "eq" | Ne -> "ne" | Lt -> "lt" | Le -> "le" | Gt -> "gt" | Ge -> "ge"

let pp pp_label fmt i =
  let r = Reg.name in
  match i with
  | Movi (rd, v) -> Format.fprintf fmt "movi %s, %d" (r rd) v
  | Movl (rd, l) -> Format.fprintf fmt "movl %s, %a" (r rd) pp_label l
  | Mov (rd, rs) -> Format.fprintf fmt "mov %s, %s" (r rd) (r rs)
  | Bin (op, rd, a, b) ->
    Format.fprintf fmt "%s %s, %s, %s" (binop_name op) (r rd) (r a) (r b)
  | Bini (op, rd, a, v) ->
    Format.fprintf fmt "%si %s, %s, %d" (binop_name op) (r rd) (r a) v
  | Set (c, rd, a, b) ->
    Format.fprintf fmt "set%s %s, %s, %s" (cond_name c) (r rd) (r a) (r b)
  | Load (rd, rs, off) -> Format.fprintf fmt "ld %s, [%s+%d]" (r rd) (r rs) off
  | Store (rv, rs, off) -> Format.fprintf fmt "st %s, [%s+%d]" (r rv) (r rs) off
  | Load_abs (rd, a) -> Format.fprintf fmt "ld %s, [%d]" (r rd) a
  | Store_abs (rv, a) -> Format.fprintf fmt "st %s, [%d]" (r rv) a
  | Br (c, a, b, l) ->
    Format.fprintf fmt "b%s %s, %s, %a" (cond_name c) (r a) (r b) pp_label l
  | Jmp l -> Format.fprintf fmt "jmp %a" pp_label l
  | Jmp_reg rs -> Format.fprintf fmt "jmpr %s" (r rs)
  | Call l -> Format.fprintf fmt "call %a" pp_label l
  | Clwb (rs, off) -> Format.fprintf fmt "clwb [%s+%d]" (r rs) off
  | Clwb_abs a -> Format.fprintf fmt "clwb [%d]" a
  | Fence -> Format.pp_print_string fmt "fence"
  | Region_end -> Format.pp_print_string fmt "region_end"
  | Nop -> Format.pp_print_string fmt "nop"
  | Halt -> Format.pp_print_string fmt "halt"

let to_string label_to_string i =
  let pp_label fmt l = Format.pp_print_string fmt (label_to_string l) in
  Format.asprintf "%a" (pp pp_label) i
