let word_bytes = 4
let line_bytes = 64
let words_per_line = line_bytes / word_bytes
let nvm_bytes = 16 * 1024 * 1024

type t = {
  data_base : int;
  data_limit : int;
  ckpt_base : int;
  ckpt_pc : int;
}

let default_data_base = 0x1000
let default_ckpt_base = 0xF00000

let make ~data_limit =
  if data_limit > default_ckpt_base then
    invalid_arg "Layout.make: data region collides with checkpoint array";
  (* The PC checkpoint reuses the slot of the compiler-reserved scratch
     register that performs the PC save (it is never live at a region
     boundary, so its slot is otherwise dead).  This packs the whole
     checkpoint array into a single cacheline, halving per-region
     checkpoint write-back traffic. *)
  {
    data_base = default_data_base;
    data_limit;
    ckpt_base = default_ckpt_base;
    ckpt_pc = default_ckpt_base + (word_bytes * Reg.scratch2);
  }

let line_base addr = addr land lnot (line_bytes - 1)

let reg_slot t r = t.ckpt_base + (word_bytes * r)
