(** NVM address-space layout shared by the compiler and the machines.

    The main memory is byte-addressed NVM; all accesses are word (4-byte)
    aligned and a cacheline covers 16 words (64 B), matching the paper's
    configuration (Table 1: 16 MB ReRAM, 64 B blocks). *)

val word_bytes : int
(** 4. *)

val line_bytes : int
(** 64. *)

val words_per_line : int
(** 16. *)

val nvm_bytes : int
(** 16 MB. *)

type t = {
  data_base : int;  (** First byte of globals/frames placed by the compiler. *)
  data_limit : int; (** One past the last allocated data byte. *)
  ckpt_base : int;  (** Register-checkpoint slot array: slot r at
                        [ckpt_base + word_bytes * r] (§4.1). *)
  ckpt_pc : int;    (** Slot holding the recovery PC (a code index).
                        Shares the slot of {!Reg.scratch2}, which is never
                        live across a boundary, so the whole checkpoint
                        array fits one cacheline. *)
}

val default_data_base : int
(** Where compilers start allocating globals (0x1000). *)

val default_ckpt_base : int
(** Fixed checkpoint array location (high in NVM). *)

val make : data_limit:int -> t
(** Standard layout with the given data extent.  Raises [Invalid_argument]
    if the data region would collide with the checkpoint array. *)

val line_base : int -> int
(** Address of the first byte of the cacheline containing the address. *)

val reg_slot : t -> Reg.t -> int
(** Address of register [r]'s checkpoint slot. *)
