(** Assembled programs.

    The compiler emits a list of {!item}s with symbolic labels;
    {!assemble} resolves them into an executable instruction array.  The
    result also carries the memory {!Layout.t} and enough metadata for the
    instruction-count experiment (§6.5) and region statistics (Fig. 12). *)

type label = string

type item =
  | Label of label
  | Ins of label Instr.t

type meta = {
  functions : (string * label) list;
      (** Source-function name and its entry label, in layout order. *)
  initial_data : (int * int) list;
      (** [(byte address, word value)] pairs the loader writes into NVM
          before execution — workload input data. *)
}

type t = {
  code : int Instr.t array;
  entry : int;              (** Index of the first instruction of main. *)
  labels : (label * int) list;
  layout : Layout.t;
  meta : meta;
}

exception Undefined_label of string
exception Duplicate_label of string

val assemble :
  ?meta:meta -> layout:Layout.t -> entry:label -> item list -> t
(** Resolve labels to instruction indices.  Raises on unknown or duplicate
    labels. *)

val label_index : t -> label -> int
(** Raises [Not_found] for unknown labels. *)

val static_instruction_count : t -> int
(** Number of instructions excluding [Nop] padding — the §6.5 metric. *)

val static_store_count : t -> int

val region_end_count : t -> int

val dump : t -> string
(** Disassembly listing with label annotations, for [sweepcc]. *)
