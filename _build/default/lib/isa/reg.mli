(** Architectural registers and the calling convention.

    The simulated core has 16 general-purpose registers, mirroring the
    paper's fixed-size architectural register file that SweepCache's
    compiler checkpoints into a fixed NVM slot array (§4.1). *)

type t = int
(** Register number, [0 <= r < count]. *)

val count : int
(** Number of architectural registers (16). *)

val arg_regs : t list
(** Registers carrying the first function arguments (r0–r3). *)

val ret : t
(** Return-value register (r0). *)

val allocatable : t list
(** Registers available to the register allocator (r0–r11). *)

val scratch0 : t
(** Compiler-reserved scratch (r12): spill/checkpoint address moves. *)

val scratch1 : t
(** Second compiler-reserved scratch (r13). *)

val scratch2 : t
(** Third compiler-reserved scratch (r14). *)

val link : t
(** Link register (r15), written by [Call]. *)

val name : t -> string
(** "r0" … "r15". *)

val pp : Format.formatter -> t -> unit
