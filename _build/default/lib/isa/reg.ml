type t = int

let count = 16
let arg_regs = [ 0; 1; 2; 3 ]
let ret = 0
let allocatable = [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9; 10; 11 ]
let scratch0 = 12
let scratch1 = 13
let scratch2 = 14
let link = 15
let name r = "r" ^ string_of_int r
let pp fmt r = Format.pp_print_string fmt (name r)
