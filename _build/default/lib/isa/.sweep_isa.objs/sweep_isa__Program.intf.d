lib/isa/program.mli: Instr Layout
