lib/isa/layout.mli: Reg
