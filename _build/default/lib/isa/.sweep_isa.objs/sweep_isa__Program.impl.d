lib/isa/program.ml: Array Buffer Hashtbl Instr Layout List Printf
