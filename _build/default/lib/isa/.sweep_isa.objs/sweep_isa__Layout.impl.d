lib/isa/layout.ml: Reg
