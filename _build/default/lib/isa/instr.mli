(** The simulated instruction set.

    A small load/store RISC ISA, polymorphic in the branch-target type:
    ['l = string] while the compiler manipulates symbolic labels, and
    ['l = int] (instruction index) once {!Program.assemble} has resolved
    them.

    Two instructions exist purely for the intermittent-computing designs:

    - [Region_end] marks a region boundary (§3.1).  On SweepCache and
      ReplayCache machines it triggers region-level persistence; other
      designs treat it as a free marker.
    - [Clwb] is ReplayCache's per-store cacheline write-back (§2.2); it is
      a no-op elsewhere.

    Checkpoint stores (§4.1) are ordinary absolute stores ([Store_abs])
    into the register-slot array, so they flow through the cache and the
    persist buffer exactly as the paper requires. *)

type binop =
  | Add | Sub | Mul | Div | Rem
  | And | Or | Xor | Shl | Shr

type cond = Eq | Ne | Lt | Le | Gt | Ge

type 'l t =
  | Movi of Reg.t * int                  (** rd <- imm *)
  | Movl of Reg.t * 'l                   (** rd <- address of label (code index) *)
  | Mov of Reg.t * Reg.t                 (** rd <- rs *)
  | Bin of binop * Reg.t * Reg.t * Reg.t (** rd <- rs1 op rs2 *)
  | Bini of binop * Reg.t * Reg.t * int  (** rd <- rs op imm *)
  | Set of cond * Reg.t * Reg.t * Reg.t  (** rd <- (rs1 cond rs2) ? 1 : 0 *)
  | Load of Reg.t * Reg.t * int          (** rd <- M\[rs + imm\] *)
  | Store of Reg.t * Reg.t * int         (** M\[rs + imm\] <- rv *)
  | Load_abs of Reg.t * int              (** rd <- M\[imm\] *)
  | Store_abs of Reg.t * int             (** M\[imm\] <- rv *)
  | Br of cond * Reg.t * Reg.t * 'l      (** if rs1 cond rs2 then goto l *)
  | Jmp of 'l
  | Jmp_reg of Reg.t                     (** goto rs (function return) *)
  | Call of 'l                           (** link <- pc+1; goto l *)
  | Clwb of Reg.t * int                  (** write back line of M\[rs + imm\] *)
  | Clwb_abs of int                      (** write back line of M\[imm\] *)
  | Fence                                (** drain pending persists *)
  | Region_end                           (** region boundary marker *)
  | Nop
  | Halt

val map_label : ('a -> 'b) -> 'a t -> 'b t
(** Rewrite branch targets; used by the assembler. *)

val eval_binop : binop -> int -> int -> int
(** Integer semantics of [binop]; division/remainder by zero yield 0, as
    the simulated core traps nothing. *)

val eval_cond : cond -> int -> int -> bool

val defs : 'l t -> Reg.t list
(** Registers written by the instruction ([Call] defines the link
    register). *)

val uses : 'l t -> Reg.t list
(** Registers read by the instruction. *)

val is_store : 'l t -> bool
(** True for [Store]/[Store_abs] — the events counted against the persist
    buffer threshold during region formation. *)

val is_memory : 'l t -> bool
(** True for any data-memory access. *)

val pp : (Format.formatter -> 'l -> unit) -> Format.formatter -> 'l t -> unit

val to_string : ('l -> string) -> 'l t -> string
