(** Shared machinery for the paper-reproduction experiments.

    Each experiment module regenerates one table or figure of the paper's
    evaluation (see DESIGN.md's per-experiment index) by running workload
    × design × environment matrices through {!Sweep_sim.Harness} and
    printing rows with {!Sweep_util.Table}. *)

type setting = {
  design : Sweep_sim.Harness.design;
  label : string;                      (** column label *)
  config : Sweep_machine.Config.t;
  options : Sweep_compiler.Pipeline.options;
}

val setting :
  ?label:string ->
  ?config:Sweep_machine.Config.t ->
  ?options:Sweep_compiler.Pipeline.options ->
  Sweep_sim.Harness.design ->
  setting

val sweep_nvm_search : setting
(** SweepCache with always-sequential buffer search (§4.4). *)

val sweep_empty_bit : setting
(** SweepCache with the empty-bit bypass — the paper's default. *)

val fig5_settings : setting list
(** ReplayCache, NVSRAM, SweepCache/NVM-search, SweepCache/empty-bit —
    the Fig. 5–7 comparison set (NVP is the implicit baseline). *)

val rf_office : unit -> Sweep_energy.Power_trace.t
val rf_home : unit -> Sweep_energy.Power_trace.t
val trace_of : Sweep_energy.Power_trace.kind -> Sweep_energy.Power_trace.t
(** Traces are memoised — every experiment sees identical power. *)

val power : ?farads:float -> Sweep_energy.Power_trace.t -> Sweep_sim.Driver.power
(** Harvested power with the paper's default 470 nF capacitor. *)

val all_names : string list
(** The 26 benchmark names, paper order. *)

val subset_names : string list
(** A 10-benchmark subset spanning the suite's behaviours, used by the
    multi-dimensional sweeps (capacitor/cache-size/propagation) to keep
    the harness runtime sane; printed in each affected table's header. *)

type summary = {
  outcome : Sweep_sim.Driver.outcome;
  mstats : Sweep_machine.Mstats.t;
  miss_rate : float;
  nvm_writes : int;
}
(** What the experiments keep from a run.  The full machine (with its
    16 MB NVM image) is dropped immediately — hundreds of cached runs
    would otherwise exhaust memory. *)

val run :
  ?scale:float ->
  setting ->
  power:Sweep_sim.Driver.power ->
  string ->
  summary
(** Run one benchmark under one setting; summaries are memoised on
    (setting label, design, power identity, benchmark, scale) so that
    e.g. Fig. 6 and Table 2 share NVP runs. *)

val nvp_time : ?scale:float -> power:Sweep_sim.Driver.power -> string -> float
(** Total (on+off) ns of the NVP baseline for the benchmark. *)

val speedup :
  ?scale:float -> setting -> power:Sweep_sim.Driver.power -> string -> float
(** NVP total time / setting total time. *)

val geomean : float list -> float
