module H = Sweep_sim.Harness
module Driver = Sweep_sim.Driver
module Trace = Sweep_energy.Power_trace
module Config = Sweep_machine.Config
module Pipeline = Sweep_compiler.Pipeline

type setting = {
  design : H.design;
  label : string;
  config : Config.t;
  options : Pipeline.options;
}

let setting ?label ?(config = Config.default)
    ?(options = Pipeline.default_options) design =
  let label = Option.value label ~default:(H.design_name design) in
  { design; label; config; options }

let sweep_nvm_search =
  setting ~label:"Sweep/NVMsearch"
    ~config:(Config.with_search Config.default Config.Nvm_search)
    H.Sweep

let sweep_empty_bit = setting ~label:"Sweep/EmptyBit" H.Sweep

let fig5_settings =
  [ setting H.Replay; setting H.Nvsram; sweep_nvm_search; sweep_empty_bit ]

let trace_cache : (Trace.kind, Trace.t) Hashtbl.t = Hashtbl.create 4

let trace_of kind =
  match Hashtbl.find_opt trace_cache kind with
  | Some t -> t
  | None ->
    let t = Trace.make kind in
    Hashtbl.replace trace_cache kind t;
    t

let rf_office () = trace_of Trace.Rf_office
let rf_home () = trace_of Trace.Rf_home

let power ?(farads = 470e-9) trace = Driver.harvested ~trace ~farads ()

let all_names =
  List.map (fun w -> w.Sweep_workloads.Workload.name) Sweep_workloads.Registry.all

let subset_names =
  [
    "adpcmdec"; "gsmdec"; "jpegenc"; "sha"; "susans"; "dijkstra"; "fft";
    "typeset"; "blowfishenc"; "rijndaelenc";
  ]

let power_key = function
  | Driver.Unlimited -> "unlimited"
  | Driver.Harvested { trace; capacitor_farads; v_max; v_min } ->
    Printf.sprintf "%s/%g/%g/%g"
      (Trace.kind_name (Trace.kind trace))
      capacitor_farads v_max v_min

type summary = {
  outcome : Driver.outcome;
  mstats : Sweep_machine.Mstats.t;
  miss_rate : float;
  nvm_writes : int;
}

let cache : (string, summary) Hashtbl.t = Hashtbl.create 256

let run ?(scale = 1.0) s ~power bench =
  let key =
    Printf.sprintf "%s|%s|%s|%s|%g" s.label (H.design_name s.design)
      (power_key power) bench scale
  in
  match Hashtbl.find_opt cache key with
  | Some r -> r
  | None ->
    let w = Sweep_workloads.Registry.find bench in
    let ast = Sweep_workloads.Workload.program ~scale w in
    let r =
      H.run ~config:s.config ~options:s.options s.design ~power ast
    in
    let summary =
      {
        outcome = r.H.outcome;
        mstats = H.mstats r;
        miss_rate = H.cache_miss_rate r;
        nvm_writes = H.nvm_writes r;
      }
    in
    Hashtbl.replace cache key summary;
    summary

let total r = Driver.total_ns r.outcome

let nvp_time ?scale ~power bench = total (run ?scale (setting H.Nvp) ~power bench)

let speedup ?scale s ~power bench =
  nvp_time ?scale ~power bench /. total (run ?scale s ~power bench)

let geomean = Sweep_util.Stats.geomean
