(** Registry of all paper-reproduction experiments. *)

type t = {
  name : string;        (** CLI id, e.g. "fig5" *)
  title : string;       (** what it regenerates *)
  heavy : bool;         (** multi-minute sweeps (excluded from "quick") *)
  run : unit -> unit;   (** prints the table(s) to stdout *)
}

val all : t list

val find : string -> t option

val run_all : ?include_heavy:bool -> unit -> unit
(** Run every experiment in DESIGN.md order. *)
