type t = {
  name : string;
  title : string;
  heavy : bool;
  run : unit -> unit;
}

let all =
  [
    { name = "tab1"; title = "Table 1: simulation configuration";
      heavy = false; run = Exp_tab1.run };
    { name = "fig5"; title = "Fig 5: speedups, no power failure";
      heavy = false; run = Exp_fig5.run };
    { name = "fig6"; title = "Fig 6: speedups, RFHome trace";
      heavy = false; run = Exp_outage.run_rfhome };
    { name = "fig7"; title = "Fig 7: speedups, RFOffice trace";
      heavy = false; run = Exp_outage.run_rfoffice };
    { name = "tab2"; title = "Table 2: power outages vs capacitor";
      heavy = true; run = Exp_capacitor.run_table2 };
    { name = "fig8"; title = "Fig 8: speedups vs cache size";
      heavy = true; run = Exp_cache_size.run };
    { name = "fig9"; title = "Fig 9: speedups vs capacitor size";
      heavy = true; run = Exp_capacitor.run_fig9 };
    { name = "fig10"; title = "Fig 10: speedups vs power trace";
      heavy = false; run = Exp_traces.run };
    { name = "fig11"; title = "Fig 11: propagation-delay sensitivity";
      heavy = true; run = Exp_propagation.run };
    { name = "fig12"; title = "Fig 12: region size / store count CDFs";
      heavy = false; run = Exp_regions.run_fig12 };
    { name = "threshold"; title = "S6.4: store-threshold sensitivity";
      heavy = true; run = Exp_regions.run_threshold };
    { name = "par"; title = "S6.3/S4.4: parallelism efficiency, empty-bit";
      heavy = false; run = Exp_parallelism.run };
    { name = "icount"; title = "S6.5: instruction counts";
      heavy = false; run = Exp_instcount.run };
    { name = "fig13"; title = "S6.6/Fig 13: energy breakdown";
      heavy = false; run = Exp_energy.run };
    { name = "fig14"; title = "Fig 14: SweepCache vs NvMR";
      heavy = true; run = Exp_nvmr.run };
    { name = "fig15"; title = "Fig 15: cache miss rates";
      heavy = false; run = Exp_missrate.run };
    { name = "fig16"; title = "Fig 16: NVM writes";
      heavy = false; run = Exp_nvmwrites.run };
    { name = "hwcost"; title = "S6.9: hardware costs";
      heavy = false; run = Exp_hwcost.run };
    { name = "ablation"; title = "Extensions: dual-buffer, Vmin, degradation, unroll";
      heavy = true; run = Exp_ablation.run };
  ]

let find name = List.find_opt (fun e -> e.name = name) all

let run_all ?(include_heavy = true) () =
  List.iter
    (fun e -> if include_heavy || not e.heavy then e.run ())
    all
