lib/exp/exp_instcount.ml: Exp_common List Printf Sweep_compiler Sweep_sim Sweep_util Sweep_workloads
