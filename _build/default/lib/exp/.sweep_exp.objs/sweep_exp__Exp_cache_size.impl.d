lib/exp/exp_cache_size.ml: Exp_common List Printf Sweep_machine Sweep_sim Sweep_util
