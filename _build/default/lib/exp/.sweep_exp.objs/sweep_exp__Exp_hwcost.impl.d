lib/exp/exp_hwcost.ml: Printf Sweep_isa Sweep_machine Sweep_util
