lib/exp/exp_capacitor.ml: Exp_common List Printf Sweep_sim Sweep_util
