lib/exp/exp_nvmwrites.ml: Exp_common List Printf Sweep_energy Sweep_sim Sweep_util
