lib/exp/exp_fig5.ml: Exp_common List Printf Sweep_sim Sweep_util Sweep_workloads
