lib/exp/exp_common.ml: Hashtbl List Option Printf Sweep_compiler Sweep_energy Sweep_machine Sweep_sim Sweep_util Sweep_workloads
