lib/exp/exp_nvmr.ml: Exp_capacitor Exp_common List Printf Sweep_sim Sweep_util
