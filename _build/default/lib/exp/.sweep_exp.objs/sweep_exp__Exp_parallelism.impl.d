lib/exp/exp_parallelism.ml: Exp_common List Printf Sweep_compiler Sweep_machine Sweep_sim Sweep_util Sweep_workloads Sweepcache_core
