lib/exp/exp_ablation.ml: Exp_common Exp_regions List Printf Sweep_compiler Sweep_energy Sweep_machine Sweep_sim Sweep_util
