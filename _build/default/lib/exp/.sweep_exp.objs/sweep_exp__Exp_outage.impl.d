lib/exp/exp_outage.ml: Exp_common Exp_fig5 Printf Sweep_energy
