lib/exp/exp_tab1.ml: Printf Sweep_energy Sweep_util
