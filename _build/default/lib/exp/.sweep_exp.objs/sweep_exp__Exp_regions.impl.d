lib/exp/exp_regions.ml: Array Exp_common List Printf Sweep_compiler Sweep_machine Sweep_sim Sweep_util
