lib/exp/exp_common.mli: Sweep_compiler Sweep_energy Sweep_machine Sweep_sim
