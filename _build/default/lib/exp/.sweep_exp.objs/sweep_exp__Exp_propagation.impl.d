lib/exp/exp_propagation.ml: Exp_capacitor Exp_common List Printf Sweep_energy Sweep_machine Sweep_sim Sweep_util
