lib/exp/exp_missrate.ml: Exp_common List Printf Sweep_energy Sweep_sim Sweep_util
