lib/exp/exp_traces.ml: Exp_common List Printf Sweep_energy Sweep_sim Sweep_util
