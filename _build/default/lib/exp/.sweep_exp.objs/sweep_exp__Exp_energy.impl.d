lib/exp/exp_energy.ml: Exp_common List Printf Sweep_sim Sweep_util
