lib/exp/experiments.mli:
