type t = {
  v_backup : float option;
  v_restore : float;
  t_phl_ns : float;
  t_plh_ns : float;
  i_quiescent_a : float;
  v_supply : float;
}

let jit ~v_backup ~v_restore =
  {
    v_backup = Some v_backup;
    v_restore;
    t_phl_ns = 1_500.0;
    t_plh_ns = 10_300.0;
    (* Two-threshold monitor (>=20 uA, S2.2) plus the standby draw of the
       backup/restore signal logic and NVFF controller the paper counts
       as JIT hardware complexity. *)
    i_quiescent_a = 40.0e-6;
    v_supply = 3.0;
  }

let sweep ~v_restore =
  {
    v_backup = None;
    v_restore;
    t_phl_ns = 0.0;
    t_plh_ns = 1_100.0;
    i_quiescent_a = 12.0e-6;
    v_supply = 3.0;
  }

let quiescent_power_w t = t.i_quiescent_a *. t.v_supply

let with_delays t ~t_phl_ns ~t_plh_ns = { t with t_phl_ns; t_plh_ns }

let with_thresholds t ?v_backup ~v_restore () =
  let v_backup = match v_backup with Some v -> Some v | None -> t.v_backup in
  { t with v_backup; v_restore }
