type t = {
  clock_hz : float;
  nvm_read_ns : float;
  nvm_write_ns : float;
  cache_hit_cycles : int;
  e_cycle : float;
  e_stall_cycle : float;
  e_cache_access : float;
  e_nvm_read : float;
  e_nvm_write : float;
  e_nvm_line_write : float;
  e_dma_line : float;
  e_line_backup : float;
  e_line_restore : float;
  e_reg_backup : float;
  e_reg_restore : float;
  backup_line_ns : float;
  backup_reg_ns : float;
  buffer_search_ns : float;
  e_buffer_search : float;
  dma_line_ns : float;
  clwb_drain_ns : float;
}

(* Calibration notes (see DESIGN.md, substitutions).

   Energy follows a constant-active-power model: e_cycle = e_stall_cycle
   = 3 pJ at 1 GHz is a 3 mW system whenever it is on, with small
   per-event extras for NVM and cache activity.  This is what makes
   energy track runtime, which in turn reproduces the paper's Table 2:
   the faster a design finishes, the fewer charge cycles it needs.
   Usable capacitor energy between 3.5 V and a design's stop voltage at
   470 nF is ~0.5–1.0 uJ, i.e. bursts of a few thousand cache-free
   instructions — the same regime as the paper.

   dma_line_ns < clwb_drain_ns < nvm_write_ns quantifies persist
   coalescing: SweepCache drains a whole region's lines as one scheduled
   DMA batch across banks; ReplayCache writes one scattered line per
   store; a synchronous write-back pays the full latency. *)
let default =
  {
    clock_hz = 1.0e9;
    nvm_read_ns = 20.0;
    nvm_write_ns = 120.0;
    cache_hit_cycles = 1;
    e_cycle = 30.0e-12;
    e_stall_cycle = 30.0e-12;
    e_cache_access = 2.0e-12;
    e_nvm_read = 50.0e-12;
    e_nvm_write = 150.0e-12;
    e_nvm_line_write = 400.0e-12;
    e_dma_line = 60.0e-12;
    e_line_backup = 1.5e-9;
    e_line_restore = 0.8e-9;
    e_reg_backup = 200.0e-12;
    e_reg_restore = 100.0e-12;
    backup_line_ns = 120.0;
    backup_reg_ns = 4.0;
    buffer_search_ns = 10.0;
    e_buffer_search = 5.0e-12;
    dma_line_ns = 6.0;
    clwb_drain_ns = 40.0;
  }

let cycle_ns t = 1.0e9 /. t.clock_hz
let nvm_read_cycles t = int_of_float (ceil (t.nvm_read_ns /. cycle_ns t))
let nvm_write_cycles t = int_of_float (ceil (t.nvm_write_ns /. cycle_ns t))
