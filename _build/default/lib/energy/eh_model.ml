module E = Energy_config

let worst_case_store_joules (e : E.t) =
  let stall_ns = e.nvm_write_ns +. e.nvm_read_ns +. E.cycle_ns e in
  (stall_ns /. E.cycle_ns e *. e.e_stall_cycle)
  +. e.e_nvm_line_write +. e.e_nvm_read +. e.e_cache_access

let hit_instruction_joules (e : E.t) = e.e_cycle +. e.e_cache_access

let region_instr_cap ?(farads = 470e-9) ?(v_operating = 3.3) ?(v_min = 2.8)
    ?(energy = E.default) ~store_threshold () =
  let usable = 0.5 *. farads *. ((v_operating ** 2.0) -. (v_min ** 2.0)) in
  (* Half for execution, half for the recovery re-execution. *)
  let budget = usable /. 2.0 in
  let store_reserve =
    float_of_int store_threshold *. worst_case_store_joules energy
  in
  let rest = Float.max 0.0 (budget -. store_reserve) in
  max 64 (int_of_float (rest /. hit_instruction_joules energy))
