(** EH-model forward-progress budget (paper §4.1 "Forward Progress and
    I/O Functions", after San Miguel et al.'s EH model).

    A region must be executable — including its recovery re-execution —
    within one capacitor charge, or the program livelocks re-executing
    it forever.  The compiler therefore caps region length.  The budget
    splits the usable charge in half (execution + one recovery
    re-execution), reserves the worst case for the region's stores
    (every store an evicting miss), and spends the rest on hit-path
    instructions. *)

val region_instr_cap :
  ?farads:float ->
  ?v_operating:float ->
  ?v_min:float ->
  ?energy:Energy_config.t ->
  store_threshold:int ->
  unit ->
  int
(** Defaults: 470 nF, SweepCache's 3.3 V restore threshold, 2.8 V Vmin,
    {!Energy_config.default}.  The result is clamped to at least 64
    instructions (a region must be able to hold its own checkpoint
    stores). *)

val worst_case_store_joules : Energy_config.t -> float
(** Energy of the worst single store: an evicting miss — line write-back,
    line fetch, and the stall power for their latency. *)

val hit_instruction_joules : Energy_config.t -> float
(** Energy of a cache-hit instruction (cycle + cache access). *)
