(** Time and energy constants of the simulated platform.

    These stand in for the NVPsim power model the paper uses.  Absolute
    values are calibrated so that the *relative* behaviour matches the
    paper's setting: NVM accesses dominate both latency and energy; a JIT
    voltage detector draws noticeably more quiescent current than
    SweepCache's single-threshold comparator; and a 470 nF capacitor
    yields bursts of a few thousand cache-free instructions. *)

type t = {
  clock_hz : float;        (** Core clock (1 GHz, gem5-like in-order). *)
  nvm_read_ns : float;     (** Table 1: 20 ns. *)
  nvm_write_ns : float;    (** Table 1: 120 ns. *)
  cache_hit_cycles : int;  (** 1 cycle. *)
  e_cycle : float;         (** J per active core cycle. *)
  e_stall_cycle : float;   (** J per stall cycle (waiting on memory). *)
  e_cache_access : float;  (** J per SRAM cache access. *)
  e_nvm_read : float;      (** J per NVM read transaction. *)
  e_nvm_write : float;     (** J per NVM word write (NVP/WT stores). *)
  e_nvm_line_write : float;
      (** J per scattered single-line NVM write (clwb, synchronous
          eviction write-backs) — the write-amplification cost
          ReplayCache pays per store (§2.2, Fig. 16). *)
  e_dma_line : float;
      (** J per line inside a batched DMA transfer (SweepCache's
          persistence phases): bank scheduling makes a batch cheaper per
          line than scattered writes. *)
  e_line_backup : float;   (** NVSRAM: J to back one line into the NVM counterpart. *)
  e_line_restore : float;  (** NVSRAM: J to restore one line. *)
  e_reg_backup : float;    (** JIT: J per register checkpointed to NVFF. *)
  e_reg_restore : float;   (** J per register restored. *)
  backup_line_ns : float;  (** Time to back up / restore one line (parallel NVSRAM transfer). *)
  backup_reg_ns : float;   (** Time per register JIT backup/restore. *)
  buffer_search_ns : float;(** Sequential persist-buffer search, per entry (§4.4). *)
  e_buffer_search : float; (** J per searched buffer entry. *)
  dma_line_ns : float;
      (** Per-line time of SweepCache's batched DMA transfers (buffer
          flush and buffer→NVM move).  Lower than the raw write latency:
          the DMA streams a whole region's lines as one scheduled batch
          across NVM banks — the persist-coalescing advantage the paper
          credits SweepCache with. *)
  clwb_drain_ns : float;
      (** Per-line drain time of ReplayCache's clwb queue.  Scattered,
          one-at-a-time line writes cannot be batch-scheduled, so this
          sits between [dma_line_ns] and the raw write latency —
          ReplayCache "loses persist coalescing" (§2.2). *)
}

val default : t

val cycle_ns : t -> float
(** Nanoseconds per core cycle. *)

val nvm_read_cycles : t -> int
val nvm_write_cycles : t -> int
