type t = {
  farads : float;
  v_max : float;
  v_min : float;
  e_max : float;
  mutable energy : float;
}

let energy_of farads v = 0.5 *. farads *. v *. v

let create ~farads ~v_max ~v_min =
  if farads <= 0.0 || v_max <= v_min || v_min < 0.0 then
    invalid_arg "Capacitor.create";
  let e_max = energy_of farads v_max in
  { farads; v_max; v_min; e_max; energy = e_max }

let farads t = t.farads
let v_max t = t.v_max
let v_min t = t.v_min
let energy t = t.energy
let voltage t = sqrt (2.0 *. t.energy /. t.farads)
let energy_at t v = energy_of t.farads v

let set_voltage t v =
  t.energy <- Float.min t.e_max (energy_of t.farads v)

let consume t joules = t.energy <- Float.max 0.0 (t.energy -. joules)

let harvest t ~power_w ~dt_s =
  t.energy <- Float.min t.e_max (t.energy +. (power_w *. dt_s))

let above t v = t.energy >= energy_of t.farads v -. 1e-18

let usable_above t v = Float.max 0.0 (t.energy -. energy_of t.farads v)
