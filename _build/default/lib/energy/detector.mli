(** Voltage-detector / comparator model (§2.2, Table 1).

    JIT-checkpoint designs need a two-threshold detector (backup +
    restore) with long propagation delays and a 20 µA supply; SweepCache
    only needs a single-threshold comparator (restore) with 12 µA and a
    1.1 µs delay.  The quiescent draw is charged continuously — including
    while the system is off and charging — which is one source of
    SweepCache's energy advantage. *)

type t = {
  v_backup : float option;
      (** Backup threshold; [None] for SweepCache (no JIT backup). *)
  v_restore : float;  (** Reboot/restore threshold. *)
  t_phl_ns : float;   (** Backup-detection propagation delay. *)
  t_plh_ns : float;   (** Restore-detection propagation delay. *)
  i_quiescent_a : float;  (** Detector supply current. *)
  v_supply : float;       (** Nominal rail for quiescent power. *)
}

val jit : v_backup:float -> v_restore:float -> t
(** Two-threshold detector with the paper's 1.5 µs / 10.3 µs delays and
    20 µA draw. *)

val sweep : v_restore:float -> t
(** Single-threshold comparator: no backup threshold, 1.1 µs restore
    delay, 12 µA draw. *)

val quiescent_power_w : t -> float

val with_delays : t -> t_phl_ns:float -> t_plh_ns:float -> t
(** Override propagation delays (the Fig. 11 sensitivity study). *)

val with_thresholds : t -> ?v_backup:float -> v_restore:float -> unit -> t
(** Override thresholds (capacitor-degradation experiment). *)
