lib/energy/energy_config.mli:
