lib/energy/capacitor.mli:
