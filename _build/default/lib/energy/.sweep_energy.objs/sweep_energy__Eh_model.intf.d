lib/energy/eh_model.mli: Energy_config
