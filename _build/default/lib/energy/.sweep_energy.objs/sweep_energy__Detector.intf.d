lib/energy/detector.mli:
