lib/energy/power_trace.ml: Array Float Fun Hashtbl List Printf String Sweep_util
