lib/energy/energy_config.ml:
