lib/energy/power_trace.mli:
