lib/energy/eh_model.ml: Energy_config Float
