lib/energy/capacitor.ml: Float
