lib/energy/detector.ml:
