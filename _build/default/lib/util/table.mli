(** Plain-text table rendering for experiment output.

    Every figure/table reproduction prints through this module so the
    bench harness output has one consistent format. *)

type t

val create : string list -> t
(** [create headers] starts a table with the given column headers. *)

val add_row : t -> string list -> unit
(** Append a row; short rows are padded with empty cells. *)

val add_float_row : t -> string -> float list -> unit
(** [add_float_row t label xs] appends a row with a textual first cell
    followed by numbers formatted with two decimals. *)

val render : t -> string
(** Render with aligned columns and a header rule. *)

val print : t -> unit
(** [render] to stdout followed by a newline. *)

val float_cell : float -> string
(** Canonical numeric formatting used by [add_float_row] ("12.34";
    "inf"/"nan" spelled out). *)
