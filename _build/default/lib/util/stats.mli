(** Small statistics toolkit used by the experiment harness.

    The paper reports geometric-mean speedups, cumulative distributions
    (Fig. 12) and averages; these helpers centralise those computations. *)

val mean : float list -> float
(** Arithmetic mean; 0 for the empty list. *)

val geomean : float list -> float
(** Geometric mean; 0 for the empty list.  All inputs must be positive. *)

val stddev : float list -> float
(** Population standard deviation; 0 for fewer than two samples. *)

val percentile : float array -> float -> float
(** [percentile sorted p] with [p] in [\[0,100\]]; linear interpolation.
    [sorted] must be sorted ascending and non-empty. *)

val cdf_points : float list -> int -> (float * float) list
(** [cdf_points samples n] returns [n] evenly spaced
    [(value, cumulative_percent)] points of the empirical CDF — the form
    used to replot Fig. 12. *)

val ratio : float -> float -> float
(** [ratio a b] is [a /. b], tolerating [b = 0] by returning [infinity]
    (or [nan] when both are 0). *)

val clamp : lo:float -> hi:float -> float -> float
(** Clamp into a closed interval. *)
