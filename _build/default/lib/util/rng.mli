(** Deterministic pseudo-random number generation.

    All stochastic components of the simulator (power traces, workload
    inputs, property tests) draw from an explicit [Rng.t] so that every
    experiment is reproducible from a seed.  The generator is SplitMix64,
    which is small, fast and has well-understood statistical quality. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator.  Equal seeds give equal
    streams. *)

val copy : t -> t
(** [copy t] duplicates the state so two streams can diverge. *)

val split : t -> t
(** [split t] derives an independent generator from [t], advancing [t]. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin. *)

val gaussian : t -> float
(** Standard normal deviate (Box–Muller). *)

val exponential : t -> float -> float
(** [exponential t mean] draws from Exp with the given mean. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
