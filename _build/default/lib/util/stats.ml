let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let geomean = function
  | [] -> 0.0
  | xs ->
    let sum_logs = List.fold_left (fun acc x -> acc +. log x) 0.0 xs in
    exp (sum_logs /. float_of_int (List.length xs))

let stddev = function
  | [] | [ _ ] -> 0.0
  | xs ->
    let m = mean xs in
    let var = mean (List.map (fun x -> (x -. m) ** 2.0) xs) in
    sqrt var

let percentile sorted p =
  let n = Array.length sorted in
  assert (n > 0);
  if n = 1 then sorted.(0)
  else begin
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) in
    let hi = min (n - 1) (lo + 1) in
    let frac = rank -. float_of_int lo in
    sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))
  end

let cdf_points samples n =
  match samples with
  | [] -> []
  | _ ->
    let sorted = Array.of_list samples in
    Array.sort compare sorted;
    let point i =
      let p = float_of_int i /. float_of_int (n - 1) *. 100.0 in
      (percentile sorted p, p)
    in
    List.init n point

let ratio a b = if b = 0.0 then (if a = 0.0 then nan else infinity) else a /. b

let clamp ~lo ~hi x = if x < lo then lo else if x > hi then hi else x
