type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let s = int64 t in
  { state = s }

let int t bound =
  assert (bound > 0);
  (* Drop two top bits so the value fits OCaml's 63-bit int positively. *)
  let r = Int64.to_int (Int64.shift_right_logical (int64 t) 2) in
  r mod bound

let float t bound =
  (* 53 random bits scaled into [0, 1). *)
  let bits = Int64.to_float (Int64.shift_right_logical (int64 t) 11) in
  bits /. 9007199254740992.0 *. bound

let bool t = Int64.logand (int64 t) 1L = 1L

let gaussian t =
  let rec draw () =
    let u = (2.0 *. float t 1.0) -. 1.0 in
    let v = (2.0 *. float t 1.0) -. 1.0 in
    let s = (u *. u) +. (v *. v) in
    if s >= 1.0 || s = 0.0 then draw ()
    else u *. sqrt (-2.0 *. log s /. s)
  in
  draw ()

let exponential t mean =
  let u = 1.0 -. float t 1.0 in
  -.mean *. log u

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
