type t = { headers : string list; mutable rows : string list list }

let create headers = { headers; rows = [] }

let add_row t row = t.rows <- row :: t.rows

let float_cell x =
  if Float.is_nan x then "nan"
  else if Float.is_integer x && Float.abs x < 1e15 && Float.abs x >= 1000.0 then
    Printf.sprintf "%.0f" x
  else Printf.sprintf "%.2f" x

let add_float_row t label xs = add_row t (label :: List.map float_cell xs)

let render t =
  let rows = List.rev t.rows in
  let ncols =
    List.fold_left (fun acc r -> max acc (List.length r)) (List.length t.headers) rows
  in
  let pad row = row @ List.init (ncols - List.length row) (fun _ -> "") in
  let all = pad t.headers :: List.map pad rows in
  let width i =
    List.fold_left (fun acc row -> max acc (String.length (List.nth row i))) 0 all
  in
  let widths = List.init ncols width in
  let render_row row =
    let cells = List.map2 (fun cell w -> Printf.sprintf "%-*s" w cell) row widths in
    String.concat "  " cells
  in
  let rule = String.concat "  " (List.map (fun w -> String.make w '-') widths) in
  match all with
  | header :: body ->
    String.concat "\n" (render_row header :: rule :: List.map render_row body)
  | [] -> ""

let print t = print_endline (render t)
