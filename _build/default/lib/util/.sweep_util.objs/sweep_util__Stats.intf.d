lib/util/stats.mli:
