lib/util/rng.mli:
