lib/util/table.mli:
