lib/sim/harness.mli: Driver Result Sweep_compiler Sweep_isa Sweep_lang Sweep_machine
