lib/sim/harness.ml: Array Driver List Printf Sweep_baselines Sweep_compiler Sweep_isa Sweep_lang Sweep_machine Sweep_mem Sweepcache_core
