lib/sim/driver.ml: Printf Sweep_energy Sweep_machine
