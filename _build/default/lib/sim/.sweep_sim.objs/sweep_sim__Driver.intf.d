lib/sim/driver.mli: Sweep_energy Sweep_machine
