(** Set-associative volatile SRAM data cache with real data.

    The cache is a passive structure: machines orchestrate miss handling,
    write-backs and flushes themselves, because each design (WT, NVSRAM,
    ReplayCache, SweepCache) treats those events differently.  Lines carry
    a [dirty_region] tag — the id of the region whose store dirtied the
    line — which SweepCache's write-after-write rule needs (§4.3).

    Power failure wipes the cache ({!invalidate_all}); NVSRAM restores it
    from its nonvolatile counterpart by re-installing saved lines. *)

type line = {
  mutable valid : bool;
  mutable dirty : bool;
  mutable dirty_region : int;  (** region id of the dirtying store; -1 if clean *)
  mutable base : int;          (** line-aligned byte address *)
  mutable lru : int;           (** bigger = more recently used *)
  data : int array;            (** 16 words *)
}

type t

val create : size_bytes:int -> assoc:int -> t
(** [create ~size_bytes ~assoc]; [size_bytes] must be a multiple of
    [assoc * 64].  The paper default is 4 kB, 2-way. *)

val size_bytes : t -> int
val assoc : t -> int
val line_count : t -> int

val find : t -> int -> line option
(** [find t addr] returns the line containing [addr] if present (does not
    touch LRU or hit counters — use {!record_hit}/{!record_miss}). *)

val touch : t -> line -> unit
(** Mark a line most-recently-used. *)

val victim : t -> int -> line
(** The line to (re)use for a fill of [addr]'s set: an invalid way if one
    exists, else the LRU way.  The caller must write back the victim's
    data first if it is valid and dirty. *)

val install : t -> int -> int array -> line
(** [install t addr data] fills the victim way of [addr]'s set with the
    given line data (clean).  Returns the installed line.  The caller is
    responsible for having handled the previous occupant. *)

val read_word : line -> int -> int
(** [read_word line addr] for an address inside the line. *)

val write_word : line -> int -> int -> unit
(** Writes data only; dirtiness is the caller's concern. *)

val dirty_lines : t -> line list
(** All valid dirty lines, in set order. *)

val iter_lines : t -> (line -> unit) -> unit

val invalidate_all : t -> unit
(** Power failure: every line is lost. *)

val clean_all : t -> unit
(** Reset every dirty bit without touching data (SweepCache's post-flush
    state: "flushed data still remain in the cache", §4.2). *)

val record_hit : t -> unit
val record_miss : t -> unit
val hits : t -> int
val misses : t -> int
val accesses : t -> int
val miss_rate : t -> float
val reset_counters : t -> unit
