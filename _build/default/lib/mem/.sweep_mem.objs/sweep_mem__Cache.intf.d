lib/mem/cache.mli:
