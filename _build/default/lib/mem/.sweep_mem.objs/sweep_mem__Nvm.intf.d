lib/mem/nvm.mli:
