lib/mem/cache.ml: Array Layout List Sweep_isa
