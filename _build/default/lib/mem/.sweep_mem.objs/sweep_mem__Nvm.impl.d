lib/mem/nvm.ml: Array Layout Printf Sweep_isa
