(* Blowfish-style Feistel cipher: 16 rounds over 64-bit blocks with four
   256-entry S-boxes and an 18-entry P-array — MiBench's blowfish.
   S-box lookups dominate: scattered loads over 4 KB of tables. *)
open Sweep_lang.Dsl

let rounds = 16
let mask32 = 0xFFFFFFFF

let sbox seed =
  Data_gen.words ~seed 256 |> Array.map (fun x -> Stdlib.(x land mask32))

let p_array seed =
  Data_gen.words ~seed (Stdlib.( + ) rounds 2)
  |> Array.map (fun x -> Stdlib.(x land mask32))

(* Feistel F: combine the four S-box lookups of x's bytes. *)
let f_func =
  func "feistel" [ "x" ]
    [
      set "a" ((v "x" lsr i 24) land i 255);
      set "b" ((v "x" lsr i 16) land i 255);
      set "c" ((v "x" lsr i 8) land i 255);
      set "d" (v "x" land i 255);
      ret
        ((((ld "s0" (v "a") + ld "s1" (v "b")) land i mask32
          lxor ld "s2" (v "c"))
          + ld "s3" (v "d"))
        land i mask32);
    ]

let encrypt_block =
  func "crypt_block" [ "idx"; "dir" ]
    [
      set "l" (ld "data" (v "idx" * i 2));
      set "r" (ld "data" ((v "idx" * i 2) + i 1));
      for_ "rd" (i 0) (i rounds)
        [
          set "pi" (v "rd");
          if_ (v "dir" < i 0) [ set "pi" (i Stdlib.(rounds - 1) - v "rd") ] [];
          set "l" ((v "l" lxor ld "p" (v "pi")) land i mask32);
          set "r" ((v "r" lxor call "feistel" [ v "l" ]) land i mask32);
          set "tmp" (v "l");
          set "l" (v "r");
          set "r" (v "tmp");
        ];
      set "tmp" (v "l");
      set "l" (v "r");
      set "r" (v "tmp");
      if_ (v "dir" > i 0)
        [
          set "r" ((v "r" lxor ld "p" (i rounds)) land i mask32);
          set "l" ((v "l" lxor ld "p" (i Stdlib.(rounds + 1))) land i mask32);
        ]
        [
          set "r" ((v "r" lxor ld "p" (i Stdlib.(rounds + 1))) land i mask32);
          set "l" ((v "l" lxor ld "p" (i rounds)) land i mask32);
        ];
      st "data" (v "idx" * i 2) (v "l");
      st "data" ((v "idx" * i 2) + i 1) (v "r");
      ret_unit;
    ]

let build dir name scale =
  ignore name;
  let blocks = Workload.scaled scale 420 in
  let data =
    Data_gen.words ~seed:0xBF01 (Stdlib.( * ) blocks 2)
    |> Array.map (fun x -> Stdlib.(x land mask32))
  in
  program
    [
      array_init "data" data;
      array_init "s0" (sbox 0xB0);
      array_init "s1" (sbox 0xB1);
      array_init "s2" (sbox 0xB2);
      array_init "s3" (sbox 0xB3);
      array_init "p" (p_array 0xB4);
    ]
    [
      f_func;
      encrypt_block;
      func "main" []
        [
          for_ "blk" (i 0) (i blocks)
            [ callp "crypt_block" [ v "blk"; i dir ] ];
          ret_unit;
        ];
    ]

let enc = Workload.make "blowfishenc" Workload.Mibench (build 1 "enc")
let dec = Workload.make "blowfishdec" Workload.Mibench (build (-1) "dec")
