(* GSM 06.10-style frame coder: per 160-sample frame, short-term
   autocorrelation + reflection coefficients (encoder) and long-term
   prediction with a lag search; the decoder runs the synthesis filter.
   Dominated by windowed multiply-accumulate scans, like MediaBench's
   gsm. *)
open Sweep_lang.Dsl

let frame = 160
let lags = 8

let globals n data =
  [
    array_init "speech" data;
    array "out" n;
    array "acf" (Stdlib.( + ) lags 1);
    array "refl" lags;
    array "ltp_hist" 128;
    array "grids" (Stdlib.( + ) (Stdlib.( / ) n 40) 4);
    scalar "ltp_lag" 40;
    scalar "ltp_gain" 64;
  ]

(* Autocorrelation of one frame for lags 0..8. *)
let autocorr =
  func "autocorr" [ "base" ]
    [
      for_ "lag" (i 0) (i Stdlib.(lags + 1))
        [
          set "acc" (i 0);
          for_ "t" (v "lag") (i frame)
            [
              set "acc"
                (v "acc"
                + (ld "speech" (v "base" + v "t")
                   * ld "speech" (v "base" + v "t" - v "lag")
                  / i 1024));
            ];
          st "acf" (v "lag") (v "acc");
        ];
      ret_unit;
    ]

(* Schur-like recursion reduced to a fixed-point ratio per lag. *)
let reflection =
  func "reflection" []
    [
      set "energy" (ld "acf" (i 0) + i 1);
      for_ "k" (i 0) (i lags)
        [
          set "r" (ld "acf" (v "k" + i 1) * i 256 / v "energy");
          if_ (v "r" > i 255) [ set "r" (i 255) ] [];
          if_ (v "r" < i (-255)) [ set "r" (i (-255)) ] [];
          st "refl" (v "k") (v "r");
          set "energy" (v "energy" - (v "r" * v "r" * v "energy" / i 65536) + i 1);
        ];
      ret_unit;
    ]

(* Long-term-prediction lag search over the history buffer. *)
let ltp_search =
  func "ltp_search" [ "base" ]
    [
      set "best" (i 0);
      set "best_lag" (i 40);
      for_ "lag" (i 40) (i 120)
        [
          set "corr" (i 0);
          for_ "t" (i 0) (i 32)
            [
              set "corr"
                (v "corr"
                + (ld "speech" (v "base" + v "t")
                   * ld "ltp_hist" ((v "t" + v "lag") % i 128)
                  / i 4096));
            ];
          if_ (v "corr" > v "best")
            [ set "best" (v "corr"); set "best_lag" (v "lag") ]
            [];
        ];
      setg "ltp_lag" (v "best_lag");
      ret (v "best_lag");
    ]

(* RPE grid selection: of the four 3:1 decimation grids of a 40-sample
   subframe, pick the one with maximum energy (GSM 06.10 §4.2.14). *)
let rpe_grid =
  func "rpe_grid" [ "base" ]
    [
      set "best" (i (-1));
      set "best_g" (i 0);
      for_ "grid" (i 0) (i 4)
        [
          set "energy" (i 0);
          for_ "t" (i 0) (i 13)
            [
              set "x" (ld "speech" (v "base" + v "grid" + (v "t" * i 3)));
              set "energy" (v "energy" + (v "x" * v "x" / i 256));
            ];
          if_ (v "energy" > v "best")
            [ set "best" (v "energy"); set "best_g" (v "grid") ]
            [];
        ];
      ret (v "best_g");
    ]

let encode_frame =
  func "encode_frame" [ "base" ]
    [
      callp "autocorr" [ v "base" ];
      callp "reflection" [];
      set "lag" (call "ltp_search" [ v "base" ]);
      (* Grid decision per 40-sample subframe. *)
      for_ "sub" (i 0) (i 4)
        [
          set "grid" (call "rpe_grid" [ v "base" + (v "sub" * i 40) ]);
          st "grids" ((v "base" / i 40) + v "sub") (v "grid");
        ];
      (* Residual coding: subtract the LTP estimate, emit quantised
         residual, refresh the history ring. *)
      for_ "t" (i 0) (i frame)
        [
          set "s" (ld "speech" (v "base" + v "t"));
          set "est"
            (g "ltp_gain" * ld "ltp_hist" ((v "t" + v "lag") % i 128) / i 256);
          set "res" ((v "s" - v "est") / i 8);
          st "out" (v "base" + v "t") (v "res");
          st "ltp_hist" (v "t" % i 128) (v "s");
        ];
      ret_unit;
    ]

let decode_frame =
  func "decode_frame" [ "base" ]
    [
      for_ "t" (i 0) (i frame)
        [
          set "res" (ld "speech" (v "base" + v "t") * i 8);
          set "est"
            (g "ltp_gain" * ld "ltp_hist" ((v "t" + g "ltp_lag") % i 128)
            / i 256);
          set "s" (v "res" + v "est");
          st "out" (v "base" + v "t") (v "s");
          st "ltp_hist" (v "t" % i 128) (v "s");
        ];
      (* Slowly adapt gain and lag from the reconstructed energy. *)
      set "energy" (i 0);
      for_ "t" (i 0) (i 32)
        [
          set "x" (ld "out" (v "base" + v "t"));
          set "energy" (v "energy" + (v "x" * v "x" / i 1024));
        ];
      if_ (v "energy" > i 4096)
        [ setg "ltp_gain" (g "ltp_gain" - i 1) ]
        [ setg "ltp_gain" (g "ltp_gain" + i 1) ];
      if_ (g "ltp_gain" < i 16) [ setg "ltp_gain" (i 16) ] [];
      if_ (g "ltp_gain" > i 128) [ setg "ltp_gain" (i 128) ] [];
      setg "ltp_lag" ((g "ltp_lag" + i 7) % i 80 + i 40);
      ret_unit;
    ]

let main_loop frames =
  func "main" []
    [
      for_ "f" (i 0) (i frames)
        [ callp "work_frame" [ v "f" * i frame ] ];
      ret_unit;
    ]

let build_enc scale =
  let frames = Workload.scaled scale 10 in
  let n = Stdlib.( * ) frames frame in
  let data = Data_gen.samples ~seed:0x65A1 n in
  program (globals n data)
    [
      autocorr;
      reflection;
      ltp_search;
      rpe_grid;
      { encode_frame with fname = "work_frame" };
      main_loop frames;
    ]

let build_dec scale =
  let frames = Workload.scaled scale 28 in
  let n = Stdlib.( * ) frames frame in
  let data = Data_gen.samples ~seed:0x65A2 n in
  program (globals n data)
    [ { decode_frame with fname = "work_frame" }; main_loop frames ]

let enc = Workload.make "gsmenc" Workload.Mediabench build_enc
let dec = Workload.make "gsmdec" Workload.Mediabench build_dec
