(* SHA-1-style digest: 16-word blocks, 80-word message schedule, five
   chaining variables.  Register-pressure-heavy with a hot store loop
   (the schedule), like MiBench's sha. *)
open Sweep_lang.Dsl

let mask = 0xFFFFFFFF

let rotl x n =
  ((x lsl i n) lor (x lsr i (Stdlib.( - ) 32 n))) land i mask

let build scale =
  let blocks = Workload.scaled scale 42 in
  let msg = Data_gen.words ~seed:0x5AA1 (Stdlib.( * ) blocks 16) in
  program
    [
      array_init "msg" msg;
      array "w" 80;
      scalar "h0" 0x67452301;
      scalar "h1" 0xEFCDAB89;
      scalar "h2" 0x98BADCFE;
      scalar "h3" 0x10325476;
      scalar "h4" 0xC3D2E1F0;
    ]
    [
      func "schedule" [ "base" ]
        [
          for_ "t" (i 0) (i 16)
            [ st "w" (v "t") (ld "msg" (v "base" + v "t")) ];
          for_ "t" (i 16) (i 80)
            [
              set "x"
                (ld "w" (v "t" - i 3)
                lxor ld "w" (v "t" - i 8)
                lxor ld "w" (v "t" - i 14)
                lxor ld "w" (v "t" - i 16));
              st "w" (v "t") (rotl (v "x") 1);
            ];
          ret_unit;
        ];
      func "digest_block" []
        [
          set "a" (g "h0");
          set "b" (g "h1");
          set "c" (g "h2");
          set "d" (g "h3");
          set "e" (g "h4");
          for_ "t" (i 0) (i 80)
            [
              if_ (v "t" < i 20)
                [
                  set "f" ((v "b" land v "c") lor (i mask lxor v "b" land v "d"));
                  set "k" (i 0x5A827999);
                ]
                [
                  if_ (v "t" < i 40)
                    [
                      set "f" (v "b" lxor v "c" lxor v "d");
                      set "k" (i 0x6ED9EBA1);
                    ]
                    [
                      if_ (v "t" < i 60)
                        [
                          set "f"
                            ((v "b" land v "c")
                            lor (v "b" land v "d")
                            lor (v "c" land v "d"));
                          set "k" (i 0x8F1BBCDC);
                        ]
                        [
                          set "f" (v "b" lxor v "c" lxor v "d");
                          set "k" (i 0xCA62C1D6);
                        ];
                    ];
                ];
              set "tmp"
                ((rotl (v "a") 5 + v "f" + v "e" + v "k" + ld "w" (v "t"))
                land i mask);
              set "e" (v "d");
              set "d" (v "c");
              set "c" (rotl (v "b") 30);
              set "b" (v "a");
              set "a" (v "tmp");
            ];
          setg "h0" ((g "h0" + v "a") land i mask);
          setg "h1" ((g "h1" + v "b") land i mask);
          setg "h2" ((g "h2" + v "c") land i mask);
          setg "h3" ((g "h3" + v "d") land i mask);
          setg "h4" ((g "h4" + v "e") land i mask);
          ret_unit;
        ];
      func "main" []
        [
          for_ "blk" (i 0) (i blocks)
            [
              callp "schedule" [ v "blk" * i 16 ];
              callp "digest_block" [];
            ];
          ret_unit;
        ];
    ]

let workload = Workload.make "sha" Workload.Mediabench build
