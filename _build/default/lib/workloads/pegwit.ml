(* Pegwit-style public-key operations reduced to their computational
   core: GF(2^31) polynomial multiplication (shift/xor ladder) and a
   square-and-multiply exponentiation keyed per message block, plus a
   keystream mix over the message — bit-twiddling heavy like
   MediaBench's pegwit. *)
open Sweep_lang.Dsl

let poly = 0x8000_0141 (* reduction polynomial (degree 31) *)
let mask31 = 0x7FFF_FFFF

(* Carry-less multiply modulo the field polynomial. *)
let gf_mul =
  func "gf_mul" [ "a"; "b" ]
    [
      set "acc" (i 0);
      set "x" (v "a");
      set "y" (v "b");
      for_ "bit" (i 0) (i 31)
        [
          if_ (v "y" land i 1 <> i 0) [ set "acc" (v "acc" lxor v "x") ] [];
          set "y" (v "y" lsr i 1);
          set "x" (v "x" lsl i 1);
          if_ (v "x" land i 0x8000_0000 <> i 0)
            [ set "x" (v "x" lxor i poly) ]
            [];
          set "x" (v "x" land i mask31);
        ];
      ret (v "acc" land i mask31);
    ]

(* Square-and-multiply: g^e in the multiplicative structure. *)
let gf_pow =
  func "gf_pow" [ "base"; "exp" ]
    [
      set "result" (i 1);
      set "b" (v "base");
      set "e" (v "exp");
      while_ (v "e" > i 0)
        [
          if_ (v "e" land i 1 <> i 0)
            [ set "result" (call "gf_mul" [ v "result"; v "b" ]) ]
            [];
          set "b" (call "gf_mul" [ v "b"; v "b" ]);
          set "e" (v "e" lsr i 1);
        ];
      ret (v "result");
    ]

(* Bitwise CRC-32 over a word, continuing a running remainder — the
   integrity tag pegwit computes over its output. *)
let crc_step =
  func "crc_step" [ "crc"; "word" ]
    [
      set "c" (v "crc" lxor v "word");
      for_ "bit" (i 0) (i 32)
        [
          if_ (v "c" land i 1 <> i 0)
            [ set "c" ((v "c" lsr i 1) lxor i 0xEDB88320) ]
            [ set "c" (v "c" lsr i 1) ];
        ];
      ret (v "c");
    ]

let build_common ~seed ~blocks ~exp_bits name =
  let n = Stdlib.( * ) blocks 4 in
  let msg = Data_gen.words ~seed n in
  ignore name;
  program
    [
      array_init "msg" msg;
      array "out" n;
      scalar "key" 0x2A6D_39E1;
      scalar "stream" 1;
      scalar "crc" 0xFFFFFFFF;
    ]
    [
      gf_mul;
      gf_pow;
      crc_step;
      func "main" []
        [
          for_ "blk" (i 0) (i blocks)
            [
              (* Fresh keystream element per block. *)
              set "e" ((g "key" lxor (v "blk" * i 2654435761)) land i exp_bits);
              setg "stream" (call "gf_pow" [ g "stream" lor i 2; v "e" lor i 1 ]);
              for_ "t" (i 0) (i 4)
                [
                  set "idx" ((v "blk" * i 4) + v "t");
                  set "c" (ld "msg" (v "idx") lxor g "stream");
                  st "out" (v "idx") (v "c");
                  setg "key"
                    ((g "key" lxor (v "c" * i 40503)) land i mask31);
                ];
              (* Integrity tag over the block just produced. *)
              for_ "t" (i 0) (i 4)
                [
                  setg "crc"
                    (call "crc_step"
                       [ g "crc"; ld "out" ((v "blk" * i 4) + v "t") ]);
                ];
            ];
          ret_unit;
        ];
    ]

let build_enc scale =
  build_common ~seed:0x9E61 ~blocks:(Workload.scaled scale 16) ~exp_bits:0xFF
    "enc"

let build_dec scale =
  build_common ~seed:0x9E62 ~blocks:(Workload.scaled scale 18) ~exp_bits:0x7F
    "dec"

let enc = Workload.make "pegwitenc" Workload.Mediabench build_enc
let dec = Workload.make "pegwitdec" Workload.Mediabench build_dec
