(* JPEG-style block codec: 8x8 integer DCT (encoder) / IDCT (decoder)
   with quantisation and zigzag reordering — MediaBench's jpeg.  Block
   scans with strided access and a table-driven inner loop. *)
open Sweep_lang.Dsl

let quant_table =
  [|
    16; 11; 10; 16; 24; 40; 51; 61; 12; 12; 14; 19; 26; 58; 60; 55; 14; 13;
    16; 24; 40; 57; 69; 56; 14; 17; 22; 29; 51; 87; 80; 62; 18; 22; 37; 56;
    68; 109; 103; 77; 24; 35; 55; 64; 81; 104; 113; 92; 49; 64; 78; 87; 103;
    121; 120; 101; 72; 92; 95; 98; 112; 100; 103; 99;
  |]

let zigzag =
  [|
    0; 1; 8; 16; 9; 2; 3; 10; 17; 24; 32; 25; 18; 11; 4; 5; 12; 19; 26; 33;
    40; 48; 41; 34; 27; 20; 13; 6; 7; 14; 21; 28; 35; 42; 49; 56; 57; 50;
    43; 36; 29; 22; 15; 23; 30; 37; 44; 51; 58; 59; 52; 45; 38; 31; 39; 46;
    53; 60; 61; 54; 47; 55; 62; 63;
  |]

(* 8-point integer cosine basis in Q8 (rounded 256*cos((2x+1)u*pi/16)/2). *)
let cos_q8 =
  [|
    91; 91; 91; 91; 91; 91; 91; 91;
    126; 106; 71; 25; -25; -71; -106; -126;
    118; 49; -49; -118; -118; -49; 49; 118;
    106; -25; -126; -71; 71; 126; 25; -106;
    91; -91; -91; 91; 91; -91; -91; 91;
    71; -126; 25; 106; -106; -25; 126; -71;
    49; -118; 118; -49; -49; 118; -118; 49;
    25; -71; 106; -126; 126; -106; 71; -25;
  |]

(* Forward 2-D DCT of the 8x8 block at [base] into tmp, then coef. *)
let fdct =
  func "fdct" [ "base" ]
    [
      (* Rows. *)
      for_ "y" (i 0) (i 8)
        [
          for_ "u" (i 0) (i 8)
            [
              set "acc" (i 0);
              for_ "x" (i 0) (i 8)
                [
                  set "acc"
                    (v "acc"
                    + (ld "pixels" (v "base" + (v "y" * i 8) + v "x")
                      * ld "cosq" ((v "u" * i 8) + v "x")));
                ];
              st "tmp" ((v "y" * i 8) + v "u") (v "acc" / i 256);
            ];
        ];
      (* Columns. *)
      for_ "u" (i 0) (i 8)
        [
          for_ "vv" (i 0) (i 8)
            [
              set "acc" (i 0);
              for_ "y" (i 0) (i 8)
                [
                  set "acc"
                    (v "acc"
                    + (ld "tmp" ((v "y" * i 8) + v "u")
                      * ld "cosq" ((v "vv" * i 8) + v "y")));
                ];
              st "coef" ((v "vv" * i 8) + v "u") (v "acc" / i 256);
            ];
        ];
      ret_unit;
    ]

let idct =
  func "idct" [ "base" ]
    [
      for_ "y" (i 0) (i 8)
        [
          for_ "x" (i 0) (i 8)
            [
              set "acc" (i 0);
              for_ "u" (i 0) (i 8)
                [
                  set "acc"
                    (v "acc"
                    + (ld "coef" ((v "y" * i 8) + v "u")
                      * ld "cosq" ((v "u" * i 8) + v "x")));
                ];
              st "tmp" ((v "y" * i 8) + v "x") (v "acc" / i 256);
            ];
        ];
      for_ "y" (i 0) (i 8)
        [
          for_ "x" (i 0) (i 8)
            [
              set "acc" (i 0);
              for_ "u" (i 0) (i 8)
                [
                  set "acc"
                    (v "acc"
                    + (ld "tmp" ((v "u" * i 8) + v "x")
                      * ld "cosq" ((v "u" * i 8) + v "y")));
                ];
              st "pixels" (v "base" + (v "y" * i 8) + v "x") (v "acc" / i 256);
            ];
        ];
      ret_unit;
    ]

let quant_zigzag =
  func "quant_zigzag" [ "base" ]
    [
      for_ "k" (i 0) (i 64)
        [
          set "src" (ld "zig" (v "k"));
          set "q" (ld "coef" (v "src") / ld "quant" (v "src"));
          st "stream" (v "base" + v "k") (v "q");
        ];
      ret_unit;
    ]

let dequant_unzigzag =
  func "dequant_unzigzag" [ "base" ]
    [
      for_ "k" (i 0) (i 64)
        [
          set "dst" (ld "zig" (v "k"));
          st "coef" (v "dst") (ld "stream" (v "base" + v "k") * ld "quant" (v "dst"));
        ];
      ret_unit;
    ]

(* Zero-run-length pack of one zigzagged block: (run, value) pairs with
   a 0xFF terminator — the entropy-coding stage's memory behaviour
   (sequential scan, data-dependent short writes). *)
let rle_pack =
  func "rle_pack" [ "src"; "dst" ]
    [
      set "w" (i 0);
      set "run" (i 0);
      for_ "k" (i 0) (i 64)
        [
          set "x" (ld "stream" (v "src" + v "k"));
          if_ (v "x" = i 0)
            [ set "run" (v "run" + i 1) ]
            [
              st "packed" (v "dst" + v "w") (v "run");
              st "packed" (v "dst" + v "w" + i 1) (v "x");
              set "w" (v "w" + i 2);
              set "run" (i 0);
            ];
        ];
      st "packed" (v "dst" + v "w") (i 0xFF);
      ret (v "w" + i 1);
    ]

let rle_unpack =
  func "rle_unpack" [ "src"; "dst" ]
    [
      for_ "k" (i 0) (i 64) [ st "stream" (v "dst" + v "k") (i 0) ];
      set "r" (i 0);
      set "k" (i 0);
      while_ ((ld "packed" (v "src" + v "r") <> i 0xFF) land (v "k" < i 64))
        [
          set "k" (v "k" + ld "packed" (v "src" + v "r"));
          if_ (v "k" < i 64)
            [
              st "stream" (v "dst" + v "k")
                (ld "packed" (v "src" + v "r" + i 1));
              set "k" (v "k" + i 1);
            ]
            [];
          set "r" (v "r" + i 2);
        ];
      ret_unit;
    ]

let globals ~pixels ~stream ~packed_len =
  [
    array_init "pixels" pixels;
    array "coef" 64;
    array "tmp" 64;
    array_init "stream" stream;
    array "packed" packed_len;
    array_init "quant" quant_table;
    array_init "zig" zigzag;
    array_init "cosq" cos_q8;
  ]

let build_enc scale =
  let blocks = Workload.scaled scale 28 in
  let n = Stdlib.( * ) blocks 64 in
  let data = Data_gen.bytes ~seed:0x17E6 n in
  program
    (globals ~pixels:data ~stream:(Array.make n 0)
       ~packed_len:(Stdlib.( * ) blocks 130))
    [
      fdct;
      quant_zigzag;
      rle_pack;
      func "main" []
        [
          for_ "b" (i 0) (i blocks)
            [
              callp "fdct" [ v "b" * i 64 ];
              callp "quant_zigzag" [ v "b" * i 64 ];
              set "len" (call "rle_pack" [ v "b" * i 64; v "b" * i 130 ]);
            ];
          ret_unit;
        ];
    ]

let build_dec scale =
  let blocks = Workload.scaled scale 28 in
  let n = Stdlib.( * ) blocks 64 in
  let stream =
    Array.map (fun x -> Stdlib.((x mod 64) - 32)) (Data_gen.bytes ~seed:0x2DEC n)
  in
  program
    (globals ~pixels:(Array.make n 0) ~stream
       ~packed_len:(Stdlib.( * ) blocks 130))
    [
      idct;
      dequant_unzigzag;
      rle_pack;
      rle_unpack;
      func "main" []
        [
          for_ "b" (i 0) (i blocks)
            [
              (* Entropy round-trip before reconstruction, as a decoder
                 parsing its input stream. *)
              set "len" (call "rle_pack" [ v "b" * i 64; v "b" * i 130 ]);
              callp "rle_unpack" [ v "b" * i 130; v "b" * i 64 ];
              callp "dequant_unzigzag" [ v "b" * i 64 ];
              callp "idct" [ v "b" * i 64 ];
            ];
          ret_unit;
        ];
    ]

let enc = Workload.make "jpegenc" Workload.Mediabench build_enc
let dec = Workload.make "jpegdec" Workload.Mediabench build_dec
