(** All workloads, in the paper's presentation order (Mediabench then
    MiBench — Fig. 5's x-axis). *)

val all : Workload.t list

val find : string -> Workload.t
(** Raises [Not_found]. *)

val names : unit -> string list
