(* Dijkstra single-source shortest paths over an adjacency matrix with
   linear-scan minimum extraction — MiBench's dijkstra.  Pointer-free but
   intensely load-heavy with poor locality on the matrix rows. *)
open Sweep_lang.Dsl

let infinity_w = 0x3FFFFFFF

let build scale =
  let nodes = Workload.scaled scale 56 in
  let sources = 4 in
  let matrix = Data_gen.graph_matrix ~seed:0xD1_57 ~nodes ~degree:6 in
  program
    [
      array_init "adj" matrix;
      array "dist" nodes;
      array "visited" nodes;
      scalar "total" 0;
    ]
    [
      func "relax_from" [ "u" ]
        [
          set "du" (ld "dist" (v "u"));
          for_ "w" (i 0) (i nodes)
            [
              set "e" (ld "adj" ((v "u" * i nodes) + v "w"));
              if_
                ((v "e" > i 0) land (v "du" + v "e" < ld "dist" (v "w")))
                [ st "dist" (v "w") (v "du" + v "e") ]
                [];
            ];
          ret_unit;
        ];
      func "extract_min" []
        [
          set "best" (i infinity_w);
          set "bestn" (i (-1));
          for_ "w" (i 0) (i nodes)
            [
              if_
                ((ld "visited" (v "w") = i 0)
                land (ld "dist" (v "w") < v "best"))
                [ set "best" (ld "dist" (v "w")); set "bestn" (v "w") ]
                [];
            ];
          ret (v "bestn");
        ];
      func "dijkstra" [ "src" ]
        [
          for_ "w" (i 0) (i nodes)
            [
              st "dist" (v "w") (i infinity_w);
              st "visited" (v "w") (i 0);
            ];
          st "dist" (v "src") (i 0);
          for_ "round" (i 0) (i nodes)
            [
              set "u" (call "extract_min" []);
              if_ (v "u" >= i 0)
                [
                  st "visited" (v "u") (i 1);
                  callp "relax_from" [ v "u" ];
                ]
                [];
            ];
          (* Checksum of reachable distances. *)
          set "acc" (i 0);
          for_ "w" (i 0) (i nodes)
            [
              if_ (ld "dist" (v "w") < i infinity_w)
                [ set "acc" (v "acc" + ld "dist" (v "w")) ]
                [];
            ];
          ret (v "acc");
        ];
      func "main" []
        [
          for_ "s" (i 0) (i sources)
            [
              setg "total"
                (g "total" + call "dijkstra" [ v "s" * i 7 % i nodes ]);
            ];
          ret_unit;
        ];
    ]

let workload = Workload.make "dijkstra" Workload.Mibench build
