(* Fixed-point radix-2 decimation-in-time FFT and inverse FFT with a
   quarter-wave sine table — MiBench's fft/ifft.  Bit-reversal
   permutation plus butterfly passes with strided access. *)
open Sweep_lang.Dsl

let size = 256 (* power of two *)
let log2_size = 8
let fx = 16384 (* Q14 twiddle scale *)

(* Quarter-wave table: sin_q14[k] = round(fx * sin(pi/2 * k / (size/4))). *)
let sine_table =
  Array.init
    (Stdlib.( + ) (Stdlib.( / ) size 4) 1)
    (fun k ->
      let theta =
        Float.pi /. 2.0 *. float_of_int k /. float_of_int (Stdlib.( / ) size 4)
      in
      int_of_float (Float.round (float_of_int fx *. sin theta)))

(* sin(2*pi*k/size) for k in [0, size/2) via the quarter-wave table. *)
let sin_func =
  func "sin_fx" [ "k" ]
    [
      set "q" (v "k" % i size);
      if_ (v "q" < i Stdlib.(size / 4)) [ ret (ld "sines" (v "q")) ] [];
      if_ (v "q" < i Stdlib.(size / 2))
        [ ret (ld "sines" (i Stdlib.(size / 2) - v "q")) ]
        [];
      if_
        (v "q" < i Stdlib.(3 * size / 4))
        [ ret (i 0 - ld "sines" (v "q" - i Stdlib.(size / 2))) ]
        [];
      ret (i 0 - ld "sines" (i size - v "q"));
    ]

let cos_func =
  func "cos_fx" [ "k" ] [ ret (call "sin_fx" [ v "k" + i Stdlib.(size / 4) ]) ]

let bit_reverse =
  func "bit_reverse" []
    [
      for_ "k" (i 0) (i size)
        [
          set "x" (v "k");
          set "r" (i 0);
          for_ "b" (i 0) (i log2_size)
            [
              set "r" ((v "r" lsl i 1) lor (v "x" land i 1));
              set "x" (v "x" lsr i 1);
            ];
          if_ (v "r" > v "k")
            [
              set "tr" (ld "re" (v "k"));
              st "re" (v "k") (ld "re" (v "r"));
              st "re" (v "r") (v "tr");
              set "ti" (ld "im" (v "k"));
              st "im" (v "k") (ld "im" (v "r"));
              st "im" (v "r") (v "ti");
            ]
            [];
        ];
      ret_unit;
    ]

(* One full FFT: [dir] = 1 forward, -1 inverse (twiddle conjugation). *)
let fft_func =
  func "fft" [ "dir" ]
    [
      callp "bit_reverse" [];
      set "span" (i 1);
      while_ (v "span" < i size)
        [
          set "step" (i size / (v "span" * i 2));
          for_ "j" (i 0) (v "span")
            [
              set "wr" (call "cos_fx" [ v "j" * v "step" ]);
              set "wi" (i 0 - (v "dir" * call "sin_fx" [ v "j" * v "step" ]));
              set "k" (v "j");
              while_ (v "k" < i size)
                [
                  set "l" (v "k" + v "span");
                  set "tr"
                    (((v "wr" * ld "re" (v "l")) - (v "wi" * ld "im" (v "l")))
                    / i fx);
                  set "ti"
                    (((v "wr" * ld "im" (v "l")) + (v "wi" * ld "re" (v "l")))
                    / i fx);
                  st "re" (v "l") (ld "re" (v "k") - v "tr");
                  st "im" (v "l") (ld "im" (v "k") - v "ti");
                  st "re" (v "k") (ld "re" (v "k") + v "tr");
                  st "im" (v "k") (ld "im" (v "k") + v "ti");
                  set "k" (v "k" + (v "span" * i 2));
                ];
            ];
          set "span" (v "span" * i 2);
        ];
      ret_unit;
    ]

let globals signal =
  [
    array_init "re" signal;
    array "im" size;
    array_init "sines" sine_table;
    scalar "energy" 0;
  ]

let signal seed =
  let noise = Data_gen.samples ~seed size in
  Array.map (fun s -> Stdlib.(s / 4)) noise

let sum_energy =
  [
    set "acc" (i 0);
    for_ "k" (i 0) (i size)
      [
        set "acc"
          (v "acc"
          + (((ld "re" (v "k") * ld "re" (v "k"))
             + (ld "im" (v "k") * ld "im" (v "k")))
            / i fx));
      ];
    setg "energy" (v "acc");
    ret_unit;
  ]

let build_fft scale =
  let rounds = Workload.scaled scale 4 in
  program
    (globals (signal 0xFF7A))
    [
      sin_func; cos_func; bit_reverse; fft_func;
      func "main" []
        (for_ "r" (i 0) (i rounds) [ callp "fft" [ i 1 ] ] :: sum_energy);
    ]

let build_ifft scale =
  let rounds = Workload.scaled scale 2 in
  program
    (globals (signal 0xFF7B))
    [
      sin_func; cos_func; bit_reverse; fft_func;
      func "main" []
        (for_ "r" (i 0) (i rounds)
           [ callp "fft" [ i 1 ]; callp "fft" [ i (-1) ] ]
        :: sum_energy);
    ]

let fft = Workload.make "fft" Workload.Mibench build_fft
let ifft = Workload.make "ifft" Workload.Mibench build_ifft
