(* SUSAN image kernels (MiBench): smoothing (susans), edge response
   (susane) and corner response (susanc) over a greyscale image using
   USAN-style brightness-similarity windows. *)
open Sweep_lang.Dsl

let width = 96
let height = 28

let globals img =
  [
    array_init "img" img;
    array "out" (Stdlib.( * ) width height);
    scalar "threshold" 20;
    scalar "found" 0;
  ]

(* Brightness similarity (hard threshold, like SUSAN's LUT). *)
let similar =
  func "similar" [ "a"; "b" ]
    [
      set "d" (v "a" - v "b");
      if_ (v "d" < i 0) [ set "d" (i 0 - v "d") ] [];
      if_ (v "d" <= g "threshold") [ ret (i 1) ] [ ret (i 0) ];
    ]

(* 3x3-weighted smoothing restricted to USAN-similar pixels. *)
let smooth_main =
  func "main" []
    [
      for_ "y" (i 1) (i Stdlib.(height - 1))
        [
          for_ "x" (i 1) (i Stdlib.(width - 1))
            [
              set "c" (ld "img" ((v "y" * i width) + v "x"));
              set "sum" (i 0);
              set "cnt" (i 0);
              for_ "dy" (i 0) (i 3)
                [
                  for_ "dx" (i 0) (i 3)
                    [
                      set "p"
                        (ld "img"
                           (((v "y" + v "dy" - i 1) * i width)
                           + v "x" + v "dx" - i 1));
                      if_ (call "similar" [ v "c"; v "p" ] <> i 0)
                        [ set "sum" (v "sum" + v "p"); set "cnt" (v "cnt" + i 1) ]
                        [];
                    ];
                ];
              st "out" ((v "y" * i width) + v "x") (v "sum" / v "cnt");
            ];
        ];
      ret_unit;
    ]

(* USAN area in a 5x5 window; edge response = area deficit. *)
let usan_area =
  func "usan_area" [ "x"; "y" ]
    [
      set "c" (ld "img" ((v "y" * i width) + v "x"));
      set "area" (i 0);
      for_ "dy" (i 0) (i 5)
        [
          for_ "dx" (i 0) (i 5)
            [
              set "p"
                (ld "img"
                   (((v "y" + v "dy" - i 2) * i width) + v "x" + v "dx" - i 2));
              set "area" (v "area" + call "similar" [ v "c"; v "p" ]);
            ];
        ];
      ret (v "area");
    ]

let edge_main =
  func "main" []
    [
      for_ "y" (i 2) (i Stdlib.(height - 2))
        [
          for_ "x" (i 2) (i Stdlib.(width - 2))
            [
              set "area" (call "usan_area" [ v "x"; v "y" ]);
              (* Geometric threshold 3/4 of the window. *)
              set "resp" (i 18 - v "area");
              if_ (v "resp" < i 0) [ set "resp" (i 0) ] [];
              st "out" ((v "y" * i width) + v "x") (v "resp");
              if_ (v "resp" > i 0) [ setg "found" (g "found" + i 1) ] [];
            ];
        ];
      ret_unit;
    ]

let corner_main =
  func "main" []
    [
      for_ "y" (i 2) (i Stdlib.(height - 2))
        [
          for_ "x" (i 2) (i Stdlib.(width - 2))
            [
              set "area" (call "usan_area" [ v "x"; v "y" ]);
              (* Corners demand a much smaller USAN. *)
              set "resp" (i 12 - v "area");
              if_ (v "resp" < i 0) [ set "resp" (i 0) ] [];
              if_ (v "resp" > i 0)
                [
                  (* Centroid test: reject responses centred on the nucleus. *)
                  set "cx" (i 0);
                  set "cy" (i 0);
                  set "c" (ld "img" ((v "y" * i width) + v "x"));
                  for_ "dy" (i 0) (i 5)
                    [
                      for_ "dx" (i 0) (i 5)
                        [
                          set "p"
                            (ld "img"
                               (((v "y" + v "dy" - i 2) * i width)
                               + v "x" + v "dx" - i 2));
                          if_ (call "similar" [ v "c"; v "p" ] <> i 0)
                            [
                              set "cx" (v "cx" + v "dx" - i 2);
                              set "cy" (v "cy" + v "dy" - i 2);
                            ]
                            [];
                        ];
                    ];
                  if_ ((v "cx" * v "cx") + (v "cy" * v "cy") > i 4)
                    [
                      st "out" ((v "y" * i width) + v "x") (v "resp");
                      setg "found" (g "found" + i 1);
                    ]
                    [];
                ]
                [];
            ];
        ];
      ret_unit;
    ]

(* A synthetic image with smooth gradients plus blocky structure, so the
   USAN statistics resemble a natural scene rather than white noise. *)
let make_image seed =
  let noise = Data_gen.bytes ~seed (Stdlib.( * ) width height) in
  Array.init
    (Stdlib.( * ) width height)
    (fun idx ->
      Stdlib.(
        let x = idx mod width and y = idx / width in
        let block = if ((x / 12) + (y / 8)) mod 2 = 0 then 60 else 140 in
        let grad = (x * 2 / 3) + y in
        (block + grad + (noise.(idx) mod 16)) land 255))

let build_smooth scale =
  ignore scale;
  program (globals (make_image 0x5A51)) [ similar; smooth_main ]

let build_edge scale =
  ignore scale;
  program (globals (make_image 0x5A52)) [ similar; usan_area; edge_main ]

let build_corner scale =
  ignore scale;
  program (globals (make_image 0x5A53)) [ similar; usan_area; corner_main ]

let smoothing = Workload.make "susans" Workload.Mediabench build_smooth
let edges = Workload.make "susane" Workload.Mediabench build_edge
let corners = Workload.make "susanc" Workload.Mediabench build_corner
