(* MPEG-2-style motion codec: the encoder runs full-search SAD motion
   estimation over a +-4 window per macroblock; the decoder does motion
   compensation plus a residual add — MediaBench's mpeg2.  2-D strided
   scans with an accumulation-heavy kernel. *)
open Sweep_lang.Dsl

let width = 48
let mb = 8 (* macroblock side *)

let sad_func =
  func "sad" [ "cur"; "refb" ]
    [
      set "acc" (i 0);
      for_ "y" (i 0) (i mb)
        [
          for_ "x" (i 0) (i mb)
            [
              set "d"
                (ld "cur_frame" (v "cur" + (v "y" * i width) + v "x")
                - ld "ref_frame" (v "refb" + (v "y" * i width) + v "x"));
              if_ (v "d" < i 0) [ set "d" (i 0 - v "d") ] [];
              set "acc" (v "acc" + v "d");
            ];
        ];
      ret (v "acc");
    ]

(* Full search in a +-4 window around the co-located block. *)
let motion_search =
  func "motion_search" [ "bx"; "by" ]
    [
      set "best" (i 0x3FFFFFFF);
      set "bestmv" (i 0);
      set "cur" ((v "by" * i width * i mb) + (v "bx" * i mb));
      for_ "dy" (i 0) (i 7)
        [
          for_ "dx" (i 0) (i 7)
            [
              set "ry" ((v "by" * i mb) + v "dy" - i 3);
              set "rx" ((v "bx" * i mb) + v "dx" - i 3);
              if_
                ((v "ry" >= i 0)
                land (v "rx" >= i 0)
                land (v "ry" <= i Stdlib.(width - mb))
                land (v "rx" <= i Stdlib.(width - mb)))
                [
                  set "s" (call "sad" [ v "cur"; (v "ry" * i width) + v "rx" ]);
                  if_ (v "s" < v "best")
                    [
                      set "best" (v "s");
                      (* Window coordinates 0..8 pack positionally. *)
                      set "bestmv" ((v "dy" * i 16) + v "dx");
                    ]
                    [];
                ]
                [];
            ];
        ];
      st "mvs" ((v "by" * i Stdlib.(width / mb)) + v "bx") (v "bestmv");
      ret (v "best");
    ]

let compensate =
  func "compensate" [ "bx"; "by" ]
    [
      set "mv" (ld "mvs" ((v "by" * i Stdlib.(width / mb)) + v "bx"));
      set "dy" ((v "mv" / i 16) - i 3);
      set "dx" ((v "mv" % i 16) - i 3);
      set "ry" ((v "by" * i mb) + v "dy");
      set "rx" ((v "bx" * i mb) + v "dx");
      if_ (v "ry" < i 0) [ set "ry" (i 0) ] [];
      if_ (v "rx" < i 0) [ set "rx" (i 0) ] [];
      if_ (v "ry" > i Stdlib.(width - mb)) [ set "ry" (i Stdlib.(width - mb)) ] [];
      if_ (v "rx" > i Stdlib.(width - mb)) [ set "rx" (i Stdlib.(width - mb)) ] [];
      for_ "y" (i 0) (i mb)
        [
          for_ "x" (i 0) (i mb)
            [
              set "p"
                (ld "ref_frame" (((v "ry" + v "y") * i width) + v "rx" + v "x")
                + ld "resid" ((((v "by" * i mb) + v "y") * i width)
                              + (v "bx" * i mb) + v "x"));
              st "cur_frame"
                ((((v "by" * i mb) + v "y") * i width) + (v "bx" * i mb) + v "x")
                (v "p");
            ];
        ];
      ret_unit;
    ]

let blocks_per_side = Stdlib.(width / mb)

let build_enc scale =
  let frames = Workload.scaled scale 2 in
  let pixels = Stdlib.( * ) width width in
  let cur = Data_gen.bytes ~seed:0x3E91 pixels in
  let refd = Data_gen.bytes ~seed:0x3E92 pixels in
  program
    [
      array_init "cur_frame" cur;
      array_init "ref_frame" refd;
      array "mvs" (Stdlib.( * ) blocks_per_side blocks_per_side);
      scalar "total_sad" 0;
    ]
    [
      sad_func;
      motion_search;
      func "main" []
        [
          for_ "f" (i 0) (i frames)
            [
              for_ "by" (i 0) (i blocks_per_side)
                [
                  for_ "bx" (i 0) (i blocks_per_side)
                    [
                      set "s" (call "motion_search" [ v "bx"; v "by" ]);
                      setg "total_sad" (g "total_sad" + v "s");
                    ];
                ];
            ];
          ret_unit;
        ];
    ]

let build_dec scale =
  let frames = Workload.scaled scale 30 in
  let pixels = Stdlib.( * ) width width in
  let refd = Data_gen.bytes ~seed:0x3E93 pixels in
  let resid =
    Array.map (fun x -> Stdlib.((x mod 16) - 8)) (Data_gen.bytes ~seed:0x3E94 pixels)
  in
  let mvs =
    Array.map
      (fun x -> Stdlib.(((x mod 7) * 16) + (x / 7 mod 7)))
      (Data_gen.bytes ~seed:0x3E95 (Stdlib.( * ) blocks_per_side blocks_per_side))
  in
  program
    [
      array "cur_frame" pixels;
      array_init "ref_frame" refd;
      array_init "resid" resid;
      array_init "mvs" mvs;
    ]
    [
      compensate;
      func "main" []
        [
          for_ "f" (i 0) (i frames)
            [
              for_ "by" (i 0) (i blocks_per_side)
                [
                  for_ "bx" (i 0) (i blocks_per_side)
                    [ callp "compensate" [ v "bx"; v "by" ] ];
                ];
            ];
          ret_unit;
        ];
    ]

let enc = Workload.make "mpeg2enc" Workload.Mediabench build_enc
let dec = Workload.make "mpeg2dec" Workload.Mediabench build_dec
