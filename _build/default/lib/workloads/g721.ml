(* G.721-style ADPCM with an adaptive two-pole/six-zero-ish predictor,
   reduced to integer arithmetic: adaptive quantiser scale plus a small
   FIR history updated per sample — MediaBench's g721. *)
open Sweep_lang.Dsl

let taps = 6

let common_globals n data =
  [
    array_init "input" data;
    array "out" n;
    array "hist" taps;       (* reconstructed-difference history *)
    array "weights" taps;    (* adaptive FIR weights (Q8) *)
    scalar "scale" 32;       (* adaptive quantiser step *)
    scalar "sez" 0;
  ]

(* Signal estimate: FIR over the reconstruction history (Q8 weights). *)
let predict_func =
  func "predict" []
    [
      set "acc" (i 0);
      for_ "t" (i 0) (i taps)
        [ set "acc" (v "acc" + (ld "weights" (v "t") * ld "hist" (v "t"))) ];
      ret (v "acc" / i 256);
    ]

(* Update history and leaky adaptive weights from the new difference. *)
let update_func =
  func "update" [ "diff" ]
    [
      for_ "t" (i 0) (i Stdlib.(taps - 1))
        [
          set "j" (i Stdlib.(taps - 1) - v "t");
          st "hist" (v "j") (ld "hist" (v "j" - i 1));
          set "w" (ld "weights" (v "j"));
          set "w" (v "w" - (v "w" / i 128));
          if_
            (ld "hist" (v "j" - i 1) * v "diff" >= i 0)
            [ set "w" (v "w" + i 2) ]
            [ set "w" (v "w" - i 2) ];
          st "weights" (v "j") (v "w");
        ];
      st "hist" (i 0) (v "diff");
      (* Adapt the quantiser scale toward the difference magnitude. *)
      set "mag" (v "diff");
      if_ (v "mag" < i 0) [ set "mag" (i 0 - v "mag") ] [];
      if_
        (v "mag" > g "scale" * i 3)
        [ setg "scale" (g "scale" + (g "scale" / i 8) + i 1) ]
        [ setg "scale" (g "scale" - (g "scale" / i 16)) ];
      if_ (g "scale" < i 4) [ setg "scale" (i 4) ] [];
      if_ (g "scale" > i 8192) [ setg "scale" (i 8192) ] [];
      ret_unit;
    ]

let enc_main n =
  func "main" []
    [
      for_ "k" (i 0) (i n)
        [
          set "est" (call "predict" []);
          set "d" (ld "input" (v "k") - v "est");
          (* 4-bit magnitude code relative to the adaptive scale. *)
          set "q" (v "d" * i 4 / g "scale");
          if_ (v "q" > i 7) [ set "q" (i 7) ] [];
          if_ (v "q" < i (-8)) [ set "q" (i (-8)) ] [];
          st "out" (v "k") (v "q" land i 15);
          set "rec" (v "q" * g "scale" / i 4);
          callp "update" [ v "rec" ];
        ];
      ret_unit;
    ]

let dec_main n =
  func "main" []
    [
      for_ "k" (i 0) (i n)
        [
          set "q" (ld "input" (v "k") land i 15);
          if_ (v "q" > i 7) [ set "q" (v "q" - i 16) ] [];
          set "rec" (v "q" * g "scale" / i 4);
          set "est" (call "predict" []);
          st "out" (v "k") (v "est" + v "rec");
          callp "update" [ v "rec" ];
        ];
      ret_unit;
    ]

let build_enc scale =
  let n = Workload.scaled scale 4200 in
  let data = Data_gen.samples ~seed:0x721A n in
  program (common_globals n data) [ predict_func; update_func; enc_main n ]

let build_dec scale =
  let n = Workload.scaled scale 4600 in
  let data = Data_gen.bytes ~seed:0x721B n in
  program (common_globals n data) [ predict_func; update_func; dec_main n ]

let enc = Workload.make "g721enc" Workload.Mediabench build_enc
let dec = Workload.make "g721dec" Workload.Mediabench build_dec
