lib/workloads/g721.ml: Data_gen Stdlib Sweep_lang Workload
