lib/workloads/patricia.ml: Array Data_gen Stdlib Sweep_lang Workload
