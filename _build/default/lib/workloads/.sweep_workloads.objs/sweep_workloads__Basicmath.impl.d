lib/workloads/basicmath.ml: Array Data_gen Stdlib Sweep_lang Workload
