lib/workloads/registry.ml: Adpcm Basicmath Blowfish Dijkstra Fft G721 Gsm Jpeg List Mpeg2 Patricia Pegwit Rijndael Sha Susan Typeset Workload
