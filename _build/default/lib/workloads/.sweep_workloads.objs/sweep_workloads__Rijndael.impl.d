lib/workloads/rijndael.ml: Array Data_gen Stdlib Sweep_lang Workload
