lib/workloads/adpcm.ml: Array Data_gen Stdlib Sweep_lang Workload
