lib/workloads/gsm.ml: Data_gen Stdlib Sweep_lang Workload
