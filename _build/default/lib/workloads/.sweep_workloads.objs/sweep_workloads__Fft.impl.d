lib/workloads/fft.ml: Array Data_gen Float Stdlib Sweep_lang Workload
