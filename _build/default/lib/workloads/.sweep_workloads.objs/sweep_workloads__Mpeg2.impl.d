lib/workloads/mpeg2.ml: Array Data_gen Stdlib Sweep_lang Workload
