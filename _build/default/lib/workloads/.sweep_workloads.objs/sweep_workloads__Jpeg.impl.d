lib/workloads/jpeg.ml: Array Data_gen Stdlib Sweep_lang Workload
