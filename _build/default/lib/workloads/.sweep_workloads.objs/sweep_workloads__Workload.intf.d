lib/workloads/workload.mli: Sweep_lang
