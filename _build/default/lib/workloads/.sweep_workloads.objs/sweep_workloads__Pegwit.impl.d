lib/workloads/pegwit.ml: Data_gen Stdlib Sweep_lang Workload
