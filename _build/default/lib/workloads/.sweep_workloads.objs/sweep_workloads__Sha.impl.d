lib/workloads/sha.ml: Data_gen Stdlib Sweep_lang Workload
