lib/workloads/workload.ml: Sweep_lang
