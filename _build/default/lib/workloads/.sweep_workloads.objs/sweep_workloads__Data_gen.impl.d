lib/workloads/data_gen.ml: Array Sweep_util
