lib/workloads/susan.ml: Array Data_gen Stdlib Sweep_lang Workload
