lib/workloads/dijkstra.ml: Data_gen Sweep_lang Workload
