lib/workloads/typeset.ml: Array Data_gen Stdlib Sweep_lang Workload
