lib/workloads/blowfish.ml: Array Data_gen Stdlib Sweep_lang Workload
