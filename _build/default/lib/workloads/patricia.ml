(* Patricia-style binary trie (MiBench's patricia): insert/lookup of
   32-bit keys in a bit-indexed trie stored in parallel arrays —
   pointer-chasing with data-dependent branches, the classic
   cache-unfriendly workload.  We keep 8-bit stride-1 levels (a plain
   binary trie over the top 16 bits, then a key list per leaf) so the
   structure is simple to verify while preserving the access pattern. *)
open Sweep_lang.Dsl

let depth = 16 (* bits walked per key *)

let build scale =
  let inserts = Workload.scaled scale 700 in
  let lookups = Workload.scaled scale 2200 in
  let capacity = Stdlib.( + ) (Stdlib.( * ) inserts (Stdlib.( + ) depth 1)) 4 in
  let keys =
    Data_gen.words ~seed:0xA70 inserts
    |> Array.map (fun k -> Stdlib.(k land 0xFFFFFFFF))
  in
  let probes =
    Data_gen.words ~seed:0xA71 lookups
    |> Array.mapi (fun idx p ->
           (* Half the probes hit inserted keys, half are random. *)
           Stdlib.(
             if idx mod 2 = 0 then keys.(idx mod inserts)
             else p land 0xFFFFFFFF))
  in
  program
    [
      array_init "keys" keys;
      array_init "probes" probes;
      array "left" capacity;   (* 0 = absent; node 1 is the root *)
      array "right" capacity;
      array "leaf_key" capacity;
      scalar "node_count" 2;
      scalar "hits" 0;
      scalar "misses" 0;
      scalar "inserted" 0;
    ]
    [
      (* Walk the top [depth] bits; allocate missing children. *)
      func "insert" [ "key" ]
        [
          set "node" (i 1);
          for_ "b" (i 0) (i depth)
            [
              set "bit" ((v "key" lsr (i 31 - v "b")) land i 1);
              if_ (v "bit" <> i 0)
                [ set "child" (ld "right" (v "node")) ]
                [ set "child" (ld "left" (v "node")) ];
              if_ (v "child" = i 0)
                [
                  set "child" (g "node_count");
                  setg "node_count" (g "node_count" + i 1);
                  if_ (v "bit" <> i 0)
                    [ st "right" (v "node") (v "child") ]
                    [ st "left" (v "node") (v "child") ];
                ]
                [];
              set "node" (v "child");
            ];
          if_ (ld "leaf_key" (v "node") = i 0)
            [
              st "leaf_key" (v "node") (v "key" lor i 1);
              setg "inserted" (g "inserted" + i 1);
            ]
            [];
          ret_unit;
        ];
      func "lookup" [ "key" ]
        [
          set "node" (i 1);
          set "b" (i 0);
          while_ (v "b" < i depth)
            [
              set "bit" ((v "key" lsr (i 31 - v "b")) land i 1);
              if_ (v "bit" <> i 0)
                [ set "node" (ld "right" (v "node")) ]
                [ set "node" (ld "left" (v "node")) ];
              if_ (v "node" = i 0) [ ret (i 0) ] [];
              set "b" (v "b" + i 1);
            ];
          if_ (ld "leaf_key" (v "node") = (v "key" lor i 1))
            [ ret (i 1) ]
            [ ret (i 0) ];
        ];
      func "main" []
        [
          for_ "k" (i 0) (i inserts)
            [ callp "insert" [ ld "keys" (v "k") ] ];
          for_ "q" (i 0) (i lookups)
            [
              if_
                (call "lookup" [ ld "probes" (v "q") ] <> i 0)
                [ setg "hits" (g "hits" + i 1) ]
                [ setg "misses" (g "misses" + i 1) ];
            ];
          ret_unit;
        ];
    ]

let workload = Workload.make "patricia" Workload.Mibench build
