module Rng = Sweep_util.Rng

let words ~seed n =
  let rng = Rng.create seed in
  Array.init n (fun _ -> Rng.int rng 0x3FFFFFFF)

let bytes ~seed n =
  let rng = Rng.create seed in
  Array.init n (fun _ -> Rng.int rng 256)

let samples ~seed n =
  let rng = Rng.create seed in
  let x = ref 0 in
  Array.init n (fun _ ->
      x := !x + Rng.int rng 601 - 300;
      if !x > 32000 then x := 32000;
      if !x < -32000 then x := -32000;
      !x)

let graph_matrix ~seed ~nodes ~degree =
  let rng = Rng.create seed in
  let m = Array.make (nodes * nodes) 0 in
  for src = 0 to nodes - 1 do
    for _ = 1 to degree do
      let dst = Rng.int rng nodes in
      if dst <> src then m.((src * nodes) + dst) <- 1 + Rng.int rng 99
    done
  done;
  m
