(* Rijndael/AES-style rounds: SubBytes (S-box), ShiftRows, MixColumns
   (GF(2^8) xtime), AddRoundKey over 16-byte states — MiBench's rijndael.
   A small program with many short call-bounded regions: the paper notes
   SweepCache generates ~2x more regions than ReplayCache here, making it
   one of the two benchmarks where SweepCache does not win. *)
open Sweep_lang.Dsl

let rounds = 10

(* A bijective byte S-box: affine-ish scramble (not the real AES box,
   same access pattern). *)
let sbox_table =
  Array.init 256 (fun x ->
      Stdlib.(
        let y = (x * 7) land 255 in
        (y lxor (y lsr 4) lxor 0x63) land 255))

let sub_bytes =
  func "sub_bytes" []
    [
      for_ "t" (i 0) (i 16)
        [ st "state" (v "t") (ld "sbox" (ld "state" (v "t") land i 255)) ];
      ret_unit;
    ]

let shift_rows =
  func "shift_rows" []
    [
      (* Row r rotates left by r positions (column-major 4x4 state). *)
      for_ "r" (i 1) (i 4)
        [
          for_ "s" (i 0) (v "r")
            [
              set "tmp" (ld "state" (v "r"));
              for_ "c" (i 0) (i 3)
                [
                  st "state" ((v "c" * i 4) + v "r")
                    (ld "state" (((v "c" + i 1) * i 4) + v "r"));
                ];
              st "state" (i 12 + v "r") (v "tmp");
            ];
        ];
      ret_unit;
    ]

let xtime =
  func "xtime" [ "x" ]
    [
      set "y" (v "x" lsl i 1);
      if_ (v "y" land i 0x100 <> i 0) [ set "y" (v "y" lxor i 0x11B) ] [];
      ret (v "y" land i 255);
    ]

let mix_columns =
  func "mix_columns" []
    [
      for_ "c" (i 0) (i 4)
        [
          set "a0" (ld "state" (v "c" * i 4));
          set "a1" (ld "state" ((v "c" * i 4) + i 1));
          set "a2" (ld "state" ((v "c" * i 4) + i 2));
          set "a3" (ld "state" ((v "c" * i 4) + i 3));
          set "x0" (call "xtime" [ v "a0" ]);
          set "x1" (call "xtime" [ v "a1" ]);
          set "x2" (call "xtime" [ v "a2" ]);
          set "x3" (call "xtime" [ v "a3" ]);
          st "state" (v "c" * i 4)
            (v "x0" lxor (v "a1" lxor v "x1") lxor v "a2" lxor v "a3");
          st "state" ((v "c" * i 4) + i 1)
            (v "a0" lxor v "x1" lxor (v "a2" lxor v "x2") lxor v "a3");
          st "state" ((v "c" * i 4) + i 2)
            (v "a0" lxor v "a1" lxor v "x2" lxor (v "a3" lxor v "x3"));
          st "state" ((v "c" * i 4) + i 3)
            ((v "a0" lxor v "x0") lxor v "a1" lxor v "a2" lxor v "x3");
        ];
      ret_unit;
    ]

let add_round_key =
  func "add_round_key" [ "round" ]
    [
      for_ "t" (i 0) (i 16)
        [
          st "state" (v "t")
            (ld "state" (v "t") lxor ld "rkeys" ((v "round" * i 16) + v "t"));
        ];
      ret_unit;
    ]

let crypt_block ~inverse =
  func "crypt_block" [ "base" ]
    ([
       for_ "t" (i 0) (i 16)
         [ st "state" (v "t") (ld "data" (v "base" + v "t") land i 255) ];
       callp "add_round_key" [ i 0 ];
     ]
    @ [
        for_ "r" (i 1) (i (Stdlib.( + ) rounds 1))
          (if inverse then
             [
               callp "add_round_key" [ v "r" ];
               callp "mix_columns" [];
               callp "shift_rows" [];
               callp "sub_bytes" [];
             ]
           else
             [
               callp "sub_bytes" [];
               callp "shift_rows" [];
               callp "mix_columns" [];
               callp "add_round_key" [ v "r" ];
             ]);
      ]
    @ [
        for_ "t" (i 0) (i 16)
          [ st "data" (v "base" + v "t") (ld "state" (v "t")) ];
        setg "blocks_done" (g "blocks_done" + i 1);
        ret_unit;
      ])

let build ~inverse name scale =
  ignore name;
  let blocks = Workload.scaled scale 42 in
  let data = Data_gen.bytes ~seed:0xAE5 (Stdlib.( * ) blocks 16) in
  let round_keys = Data_gen.bytes ~seed:0xAE6 (Stdlib.( * ) (Stdlib.( + ) rounds 1) 16) in
  program
    [
      array_init "data" data;
      array "state" 16;
      array_init "sbox" sbox_table;
      array_init "rkeys" round_keys;
      scalar "blocks_done" 0;
    ]
    [
      sub_bytes;
      shift_rows;
      xtime;
      mix_columns;
      add_round_key;
      crypt_block ~inverse;
      func "main" []
        [
          for_ "blk" (i 0) (i blocks)
            [ callp "crypt_block" [ v "blk" * i 16 ] ];
          ret_unit;
        ];
    ]

let enc = Workload.make "rijndaelenc" Workload.Mibench (build ~inverse:false "enc")
let dec = Workload.make "rijndaeldec" Workload.Mibench (build ~inverse:true "dec")
