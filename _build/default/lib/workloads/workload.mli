(** Workload descriptors.

    Each entry names a paper benchmark (MiBench / MediaBench) and builds
    the mini-language program standing in for it; construction is lazy so
    registries are cheap.  [scale] controls the input size: 1.0 is the
    default used by the experiment harness (hundreds of thousands of
    cache-free dynamic instructions); tests use smaller scales. *)

type suite = Mediabench | Mibench

type t = {
  name : string;    (** paper benchmark name, e.g. "adpcmdec" *)
  suite : suite;
  build : float -> Sweep_lang.Ast.program;
      (** [build scale]; deterministic for a given scale. *)
}

val make : string -> suite -> (float -> Sweep_lang.Ast.program) -> t

val program : ?scale:float -> t -> Sweep_lang.Ast.program
(** [program w] is [w.build scale] (default 1.0). *)

val suite_name : suite -> string

val scaled : float -> int -> int
(** [scaled scale n] = [max 1 (int of scale×n)] — input-size helper used
    by the workload builders. *)
