(* IMA ADPCM coder/decoder: a predictor with step-size/index tables and
   4-bit codes — MediaBench's adpcm (rawcaudio/rawdaudio).  Table lookups
   plus a tight scalar predictor loop. *)
open Sweep_lang.Dsl

let step_table =
  [|
    7; 8; 9; 10; 11; 12; 13; 14; 16; 17; 19; 21; 23; 25; 28; 31; 34; 37; 41;
    45; 50; 55; 60; 66; 73; 80; 88; 97; 107; 118; 130; 143; 157; 173; 190;
    209; 230; 253; 279; 307; 337; 371; 408; 449; 494; 544; 598; 658; 724;
    796; 876; 963; 1060; 1166; 1282; 1411; 1552; 1707; 1878; 2066; 2272;
    2499; 2749; 3024; 3327; 3660; 4026; 4428; 4871; 5358; 5894; 6484; 7132;
    7845; 8630; 9493; 10442; 11487; 12635; 13899; 15289; 16818; 18500;
    20350; 22385; 24623; 27086; 29794; 32767;
  |]

let index_table = [| -1; -1; -1; -1; 2; 4; 6; 8; -1; -1; -1; -1; 2; 4; 6; 8 |]

let clamp_stmt var lo hi =
  [
    if_ (v var < i lo) [ set var (i lo) ] [];
    if_ (v var > i hi) [ set var (i hi) ] [];
  ]

(* One encode step: quantise (sample - predicted) into a 4-bit code and
   update predictor state. *)
let encode_func =
  func "enc_step" [ "sample" ]
    ([
       set "step" (ld "steps" (g "index"));
       set "diff" (v "sample" - g "predicted");
       set "code" (i 0);
       if_ (v "diff" < i 0) [ set "code" (i 8); set "diff" (i 0 - v "diff") ] [];
       if_ (v "diff" >= v "step")
         [ set "code" (v "code" lor i 4); set "diff" (v "diff" - v "step") ]
         [];
       set "half" (v "step" lsr i 1);
       if_ (v "diff" >= v "half")
         [ set "code" (v "code" lor i 2); set "diff" (v "diff" - v "half") ]
         [];
       set "quarter" (v "step" lsr i 2);
       if_ (v "diff" >= v "quarter") [ set "code" (v "code" lor i 1) ] [];
       (* Reconstruct like the decoder so the predictor tracks. *)
       set "delta" (v "step" lsr i 3);
       if_ (v "code" land i 4 <> i 0) [ set "delta" (v "delta" + v "step") ] [];
       if_ (v "code" land i 2 <> i 0)
         [ set "delta" (v "delta" + (v "step" lsr i 1)) ]
         [];
       if_ (v "code" land i 1 <> i 0)
         [ set "delta" (v "delta" + (v "step" lsr i 2)) ]
         [];
       if_ (v "code" land i 8 <> i 0)
         [ setg "predicted" (g "predicted" - v "delta") ]
         [ setg "predicted" (g "predicted" + v "delta") ];
       set "p" (g "predicted");
     ]
    @ clamp_stmt "p" (-32768) 32767
    @ [
        setg "predicted" (v "p");
        set "idx" (g "index" + ld "idxtab" (v "code"));
      ]
    @ clamp_stmt "idx" 0 88
    @ [ setg "index" (v "idx"); ret (v "code") ])

let decode_func =
  func "dec_step" [ "code" ]
    ([
       set "step" (ld "steps" (g "index"));
       set "delta" (v "step" lsr i 3);
       if_ (v "code" land i 4 <> i 0) [ set "delta" (v "delta" + v "step") ] [];
       if_ (v "code" land i 2 <> i 0)
         [ set "delta" (v "delta" + (v "step" lsr i 1)) ]
         [];
       if_ (v "code" land i 1 <> i 0)
         [ set "delta" (v "delta" + (v "step" lsr i 2)) ]
         [];
       if_ (v "code" land i 8 <> i 0)
         [ setg "predicted" (g "predicted" - v "delta") ]
         [ setg "predicted" (g "predicted" + v "delta") ];
       set "p" (g "predicted");
     ]
    @ clamp_stmt "p" (-32768) 32767
    @ [
        setg "predicted" (v "p");
        set "idx" (g "index" + ld "idxtab" (v "code"));
      ]
    @ clamp_stmt "idx" 0 88
    @ [ setg "index" (v "idx"); ret (v "p") ])

let globals n pcm =
  [
    array_init "steps" step_table;
    array_init "idxtab" index_table;
    array_init "pcm" pcm;
    array "out" n;
    scalar "predicted" 0;
    scalar "index" 0;
  ]

let build_enc scale =
  let n = Workload.scaled scale 9000 in
  let pcm = Data_gen.samples ~seed:0xADE1 n in
  program (globals n pcm)
    [
      encode_func;
      func "main" []
        [
          for_ "k" (i 0) (i n)
            [ st "out" (v "k") (call "enc_step" [ ld "pcm" (v "k") ]) ];
          ret_unit;
        ];
    ]

let build_dec scale =
  let n = Workload.scaled scale 11000 in
  let codes = Data_gen.bytes ~seed:0xADE2 n in
  let codes = Array.map (fun c -> Stdlib.(c land 15)) codes in
  program (globals n codes)
    [
      decode_func;
      func "main" []
        [
          for_ "k" (i 0) (i n)
            [ st "out" (v "k") (call "dec_step" [ ld "pcm" (v "k") ]) ];
          ret_unit;
        ];
    ]

let enc = Workload.make "adpcmenc" Workload.Mediabench build_enc
let dec = Workload.make "adpcmdec" Workload.Mediabench build_dec
