type suite = Mediabench | Mibench

type t = {
  name : string;
  suite : suite;
  build : float -> Sweep_lang.Ast.program;
}

let make name suite build = { name; suite; build }

let program ?(scale = 1.0) t = t.build scale

let suite_name = function Mediabench -> "Mediabench" | Mibench -> "Mibench"

let scaled scale n = max 1 (int_of_float (scale *. float_of_int n))
