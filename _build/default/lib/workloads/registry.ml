(* Paper presentation order: Mediabench then MiBench (Fig. 5's x-axis). *)
let all =
  [
    Adpcm.dec;
    Adpcm.enc;
    G721.dec;
    G721.enc;
    Gsm.dec;
    Gsm.enc;
    Jpeg.dec;
    Jpeg.enc;
    Mpeg2.dec;
    Mpeg2.enc;
    Pegwit.dec;
    Pegwit.enc;
    Sha.workload;
    Susan.smoothing;
    Susan.edges;
    Susan.corners;
    Dijkstra.workload;
    Basicmath.workload;
    Fft.fft;
    Fft.ifft;
    Typeset.workload;
    Blowfish.dec;
    Blowfish.enc;
    Patricia.workload;
    Rijndael.dec;
    Rijndael.enc;
  ]

let find name = List.find (fun w -> w.Workload.name = name) all

let names () = List.map (fun w -> w.Workload.name) all
