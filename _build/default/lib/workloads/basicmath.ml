(* MiBench basicmath: integer square roots, cube roots (Newton) and
   fixed-point degree/radian conversions over an input vector — ALU-bound
   with short data-dependent iteration counts. *)
open Sweep_lang.Dsl

let fx = 4096 (* Q12 fixed point *)
let pi_fx = 12868 (* pi in Q12 *)

let build scale =
  let n = Workload.scaled scale 1000 in
  let values = Data_gen.words ~seed:0xBA51 n in
  let values = Array.map (fun x -> Stdlib.(x land 0xFFFFF)) values in
  program
    [
      array_init "vals" values;
      array "roots" n;
      array "cubes" n;
      array "angles" n;
      scalar "checksum" 0;
    ]
    [
      func "isqrt" [ "x" ]
        [
          if_ (v "x" <= i 0) [ ret (i 0) ] [];
          (* Newton iteration; r decreases strictly while r*r > x, so the
             loop terminates at floor(sqrt x). *)
          set "r" (v "x");
          while_ (v "r" * v "r" > v "x")
            [ set "r" ((v "r" + (v "x" / v "r")) / i 2) ];
          ret (v "r");
        ];
      func "icbrt" [ "x" ]
        [
          if_ (v "x" <= i 0) [ ret (i 0) ] [];
          set "r" (i 1 + (v "x" lsr i 10));
          for_ "it" (i 0) (i 18)
            [
              set "r2" (v "r" * v "r");
              if_ (v "r2" > i 0)
                [ set "r" (((i 2 * v "r") + (v "x" / v "r2")) / i 3) ]
                [];
            ];
          ret (v "r");
        ];
      func "gcd" [ "a"; "b" ]
        [
          set "x" (v "a");
          set "y" (v "b");
          while_ (v "y" <> i 0)
            [
              set "t" (v "x" % v "y");
              set "x" (v "y");
              set "y" (v "t");
            ];
          ret (v "x");
        ];
      func "ilog2" [ "x" ]
        [
          set "r" (i 0);
          set "y" (v "x");
          while_ (v "y" > i 1)
            [ set "y" (v "y" lsr i 1); set "r" (v "r" + i 1) ];
          ret (v "r");
        ];
      func "deg_to_rad" [ "deg" ]
        [ ret (v "deg" * i pi_fx / i 180) ];
      func "rad_to_deg" [ "rad" ]
        [ ret (v "rad" * i 180 / i pi_fx) ];
      func "main" []
        [
          for_ "k" (i 0) (i n)
            [
              set "x" (ld "vals" (v "k"));
              set "s" (call "isqrt" [ v "x" ]);
              st "roots" (v "k") (v "s");
              set "c" (call "icbrt" [ v "x" ]);
              st "cubes" (v "k") (v "c");
              set "a" (call "deg_to_rad" [ v "x" % i 360 * i fx ]);
              set "b" (call "rad_to_deg" [ v "a" ]);
              st "angles" (v "k") (v "b" / i fx);
              set "gg" (call "gcd" [ v "x" + i 1; v "s" + i 1 ]);
              set "lg" (call "ilog2" [ v "x" + i 1 ]);
              setg "checksum"
                ((g "checksum" + v "s" + v "c" + v "b" + v "gg" + v "lg")
                land i 0xFFFFFFFF);
            ];
          ret_unit;
        ];
    ]

let workload = Workload.make "basicmath" Workload.Mibench build
