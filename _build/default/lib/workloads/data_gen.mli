(** Deterministic input-data generators shared by the workloads. *)

val words : seed:int -> int -> int array
(** [words ~seed n] — pseudo-random non-negative words. *)

val bytes : seed:int -> int -> int array
(** Values in [0, 255] — image pixels, message bytes. *)

val samples : seed:int -> int -> int array
(** Smooth-ish signed 16-bit audio-like samples (random walk), for the
    codec workloads. *)

val graph_matrix : seed:int -> nodes:int -> degree:int -> int array
(** Row-major adjacency matrix with ~[degree] random positive edge
    weights per node and 0 for "no edge". *)
