(* Typeset (MiBench consumer): greedy paragraph line breaking with
   justification badness, hyphenation scanning and a kerning table —
   branchy, table-driven text processing. *)
open Sweep_lang.Dsl

let line_width = 480

let build scale =
  let words_n = Workload.scaled scale 2600 in
  (* Word widths 40..200 units, synthetic "letters" for kerning. *)
  let raw = Data_gen.bytes ~seed:0x7E5E words_n in
  let widths = Array.map (fun b -> Stdlib.(40 + (b mod 161))) raw in
  let letters = Data_gen.bytes ~seed:0x7E5F words_n in
  let kern = Array.init 64 (fun k -> Stdlib.((k mod 7) - 3)) in
  program
    [
      array_init "widths" widths;
      array_init "letters" letters;
      array_init "kern" kern;
      array "line_of" words_n;
      array "badness" words_n;
      scalar "lines" 0;
      scalar "total_badness" 0;
    ]
    [
      (* Kerning between adjacent words from their boundary letters. *)
      func "kerning" [ "a"; "b" ]
        [ ret (ld "kern" (((v "a" lxor v "b") land i 63))) ];
      (* Badness of slack space left on a line (quadratic, capped). *)
      func "slack_badness" [ "slack" ]
        [
          set "s" (v "slack");
          if_ (v "s" < i 0) [ set "s" (i 0 - v "s") ] [];
          set "b" (v "s" * v "s" / i 64);
          if_ (v "b" > i 10000) [ set "b" (i 10000) ] [];
          ret (v "b");
        ];
      (* Try to split an overflowing word: scan for a feasible hyphen
         point (synthetic: any position where the letter code is even). *)
      func "hyphen_fit" [ "w"; "room" ]
        [
          set "width" (ld "widths" (v "w"));
          set "letter" (ld "letters" (v "w"));
          set "best" (i 0);
          for_ "cut" (i 1) (i 8)
            [
              set "part" (v "width" * v "cut" / i 8);
              if_
                ((v "part" <= v "room")
                land ((v "letter" lsr v "cut") land i 1 = i 0))
                [ set "best" (v "part") ]
                [];
            ];
          ret (v "best");
        ];
      func "main" []
        [
          set "cursor" (i 0);
          set "line" (i 0);
          set "prev_letter" (i 0);
          for_ "w" (i 0) (i words_n)
            [
              set "need"
                (ld "widths" (v "w")
                + call "kerning" [ v "prev_letter"; ld "letters" (v "w") ]);
              if_ (v "cursor" + v "need" > i line_width)
                [
                  (* Close the line: try hyphenation first. *)
                  set "room" (i line_width - v "cursor");
                  set "fit" (call "hyphen_fit" [ v "w"; v "room" ]);
                  set "slack" (v "room" - v "fit");
                  set "bad" (call "slack_badness" [ v "slack" ]);
                  st "badness" (v "line") (v "bad");
                  setg "total_badness" (g "total_badness" + v "bad");
                  set "line" (v "line" + i 1);
                  set "cursor" (ld "widths" (v "w") - v "fit");
                ]
                [ set "cursor" (v "cursor" + v "need") ];
              st "line_of" (v "w") (v "line");
              set "prev_letter" (ld "letters" (v "w"));
            ];
          setg "lines" (v "line" + i 1);
          ret_unit;
        ];
    ]

let workload = Workload.make "typeset" Workload.Mibench build
