type binop =
  | Add | Sub | Mul | Div | Rem
  | And | Or | Xor | Shl | Shr
  | Lt | Le | Gt | Ge | Eq | Ne

type expr =
  | Int of int
  | Var of string
  | Global of string
  | Load of string * expr
  | Binop of binop * expr * expr
  | Call of string * expr list

type stmt =
  | Assign of string * expr
  | Set_global of string * expr
  | Store of string * expr * expr
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | For of string * expr * expr * stmt list
  | Call_stmt of string * expr list
  | Return of expr option

type global =
  | Scalar of string * int
  | Array of string * int * int array

type func = {
  fname : string;
  params : string list;
  body : stmt list;
}

type program = {
  globals : global list;
  funcs : func list;
}

exception Invalid of string

let invalid fmt = Printf.ksprintf (fun s -> raise (Invalid s)) fmt

module Sset = Set.Make (String)

let global_name = function Scalar (n, _) -> n | Array (n, _, _) -> n

(* Locals assigned anywhere in a statement list (plus loop variables). *)
let rec assigned_in_stmts acc stmts = List.fold_left assigned_in_stmt acc stmts

and assigned_in_stmt acc = function
  | Assign (v, _) -> Sset.add v acc
  | For (v, _, _, body) -> assigned_in_stmts (Sset.add v acc) body
  | If (_, t, f) -> assigned_in_stmts (assigned_in_stmts acc t) f
  | While (_, body) -> assigned_in_stmts acc body
  | Set_global _ | Store _ | Call_stmt _ | Return _ -> acc

let validate prog =
  let scalars, arrays =
    List.fold_left
      (fun (s, a) g ->
        match g with
        | Scalar (n, _) -> (Sset.add n s, a)
        | Array (n, len, init) ->
          if len <= 0 then invalid "array %s has non-positive length" n;
          if Array.length init > len then
            invalid "array %s: initialiser longer than the array" n;
          (s, Sset.add n a))
      (Sset.empty, Sset.empty) prog.globals
  in
  let names = List.map global_name prog.globals in
  let dup l =
    let sorted = List.sort compare l in
    let rec find = function
      | a :: (b :: _ as rest) -> if a = b then Some a else find rest
      | _ -> None
    in
    find sorted
  in
  (match dup names with
  | Some n -> invalid "duplicate global %s" n
  | None -> ());
  (match dup (List.map (fun f -> f.fname) prog.funcs) with
  | Some n -> invalid "duplicate function %s" n
  | None -> ());
  let arity =
    List.fold_left
      (fun m f -> (f.fname, List.length f.params) :: m)
      [] prog.funcs
  in
  (match List.assoc_opt "main" arity with
  | None -> invalid "no main function"
  | Some 0 -> ()
  | Some _ -> invalid "main must take no parameters");
  (* Call graph for the recursion check. *)
  let calls = Hashtbl.create 16 in
  let note_call caller callee =
    let old = Option.value ~default:[] (Hashtbl.find_opt calls caller) in
    Hashtbl.replace calls caller (callee :: old)
  in
  let check_func f =
    let defined = assigned_in_stmts (Sset.of_list f.params) f.body in
    let check_call name args =
      match List.assoc_opt name arity with
      | None -> invalid "%s: call to undefined function %s" f.fname name
      | Some n ->
        if n <> List.length args then
          invalid "%s: %s expects %d arguments, got %d" f.fname name n
            (List.length args);
        if List.length args > List.length Sweep_isa.Reg.arg_regs then
          invalid "%s: %s has too many arguments (max %d)" f.fname name
            (List.length Sweep_isa.Reg.arg_regs);
        note_call f.fname name
    in
    let rec check_expr = function
      | Int _ -> ()
      | Var v ->
        if not (Sset.mem v defined) then
          invalid "%s: local %s is never assigned" f.fname v
      | Global g ->
        if not (Sset.mem g scalars) then
          invalid "%s: unknown global scalar %s" f.fname g
      | Load (arr, idx) ->
        if not (Sset.mem arr arrays) then
          invalid "%s: unknown array %s" f.fname arr;
        check_expr idx
      | Binop (_, a, b) -> check_expr a; check_expr b
      | Call (name, args) -> check_call name args; List.iter check_expr args
    in
    let rec check_stmt = function
      | Assign (_, e) -> check_expr e
      | Set_global (g, e) ->
        if not (Sset.mem g scalars) then
          invalid "%s: unknown global scalar %s" f.fname g;
        check_expr e
      | Store (arr, idx, v) ->
        if not (Sset.mem arr arrays) then
          invalid "%s: unknown array %s" f.fname arr;
        check_expr idx; check_expr v
      | If (c, t, e) -> check_expr c; List.iter check_stmt t; List.iter check_stmt e
      | While (c, body) -> check_expr c; List.iter check_stmt body
      | For (_, lo, hi, body) ->
        check_expr lo; check_expr hi; List.iter check_stmt body
      | Call_stmt (name, args) -> check_call name args; List.iter check_expr args
      | Return (Some e) -> check_expr e
      | Return None -> ()
    in
    List.iter check_stmt f.body
  in
  List.iter check_func prog.funcs;
  (* Recursion check: DFS for a cycle in the call graph. *)
  let rec reachable seen name =
    if List.mem name seen then
      invalid "recursion detected through %s (static frames forbid it)" name;
    let callees = Option.value ~default:[] (Hashtbl.find_opt calls name) in
    List.iter (reachable (name :: seen)) (List.sort_uniq compare callees)
  in
  List.iter (fun f -> reachable [] f.fname) prog.funcs

let binop_of_arith = function
  | Add -> Some Sweep_isa.Instr.Add
  | Sub -> Some Sweep_isa.Instr.Sub
  | Mul -> Some Sweep_isa.Instr.Mul
  | Div -> Some Sweep_isa.Instr.Div
  | Rem -> Some Sweep_isa.Instr.Rem
  | And -> Some Sweep_isa.Instr.And
  | Or -> Some Sweep_isa.Instr.Or
  | Xor -> Some Sweep_isa.Instr.Xor
  | Shl -> Some Sweep_isa.Instr.Shl
  | Shr -> Some Sweep_isa.Instr.Shr
  | Lt | Le | Gt | Ge | Eq | Ne -> None

let cond_of_cmp = function
  | Lt -> Some Sweep_isa.Instr.Lt
  | Le -> Some Sweep_isa.Instr.Le
  | Gt -> Some Sweep_isa.Instr.Gt
  | Ge -> Some Sweep_isa.Instr.Ge
  | Eq -> Some Sweep_isa.Instr.Eq
  | Ne -> Some Sweep_isa.Instr.Ne
  | Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | Shr -> None
