lib/lang/ast.ml: Array Hashtbl List Option Printf Set String Sweep_isa
