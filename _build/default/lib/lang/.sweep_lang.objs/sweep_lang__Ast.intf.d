lib/lang/ast.mli: Sweep_isa
