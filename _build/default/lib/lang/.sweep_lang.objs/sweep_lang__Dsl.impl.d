lib/lang/dsl.ml: Array Ast
