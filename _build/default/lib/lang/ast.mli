(** Abstract syntax of the mini workload language.

    This replaces the paper's C benchmarks (MiBench/MediaBench compiled
    with LLVM): a first-order imperative language with integer scalars,
    global integer arrays, structured control flow and non-recursive
    function calls.  It is small on purpose — the interesting machinery
    (region formation, liveness, checkpoint insertion) lives in the
    compiler, exactly as in the paper.

    Semantics: all values are OCaml [int]s; comparisons yield 0/1;
    division and remainder by zero yield 0 (matching
    {!Sweep_isa.Instr.eval_binop}, so the reference interpreter and the
    simulated machine agree bit-for-bit). *)

type binop =
  | Add | Sub | Mul | Div | Rem
  | And | Or | Xor | Shl | Shr
  | Lt | Le | Gt | Ge | Eq | Ne

type expr =
  | Int of int
  | Var of string                   (** function-local scalar or parameter *)
  | Global of string                (** global scalar (memory-resident) *)
  | Load of string * expr           (** [arr.(idx)] for a global array *)
  | Binop of binop * expr * expr
  | Call of string * expr list      (** call returning a value *)

type stmt =
  | Assign of string * expr         (** local scalar: defines on first use *)
  | Set_global of string * expr
  | Store of string * expr * expr   (** [arr.(idx) <- v] *)
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | For of string * expr * expr * stmt list
      (** [For (v, lo, hi, body)] iterates v = lo, lo+1, …, hi-1.  [hi] is
          evaluated once before the loop. *)
  | Call_stmt of string * expr list (** call for effect, result dropped *)
  | Return of expr option

type global =
  | Scalar of string * int                (** name, initial value *)
  | Array of string * int * int array
      (** name, length in words, initial prefix (rest zero-filled) *)

type func = {
  fname : string;
  params : string list;
  body : stmt list;
}

type program = {
  globals : global list;
  funcs : func list;  (** must include ["main"] with no parameters *)
}

exception Invalid of string
(** Raised by {!validate} with a description of the first problem. *)

val validate : program -> unit
(** Checks: [main] exists and takes no parameters; all referenced
    globals/arrays/functions exist with consistent kinds and arities;
    locals are assigned somewhere in their function (params count);
    no recursion (the compiler allocates static frames).  Raises
    {!Invalid} otherwise. *)

val binop_of_arith : binop -> Sweep_isa.Instr.binop option
(** Arithmetic operators map directly onto ISA binops; comparison
    operators return [None] (they lower to branches or set-like
    sequences). *)

val cond_of_cmp : binop -> Sweep_isa.Instr.cond option
(** The comparison subset, as ISA branch conditions. *)
