(** Embedded-DSL combinators for writing workloads.

    Workload files [open Sweep_lang.Dsl]; the arithmetic operators shadow
    the integer ones over {!Ast.expr} (use [Stdlib.( + )] for host-side
    arithmetic inside a workload definition). *)

open Ast

val i : int -> expr
(** Integer literal. *)

val v : string -> expr
(** Local scalar / parameter. *)

val g : string -> expr
(** Global scalar. *)

val ld : string -> expr -> expr
(** [ld arr idx] reads [arr.(idx)]. *)

val call : string -> expr list -> expr

val ( + ) : expr -> expr -> expr
val ( - ) : expr -> expr -> expr
val ( * ) : expr -> expr -> expr
val ( / ) : expr -> expr -> expr
val ( % ) : expr -> expr -> expr
val ( land ) : expr -> expr -> expr
val ( lor ) : expr -> expr -> expr
val ( lxor ) : expr -> expr -> expr
val ( lsl ) : expr -> expr -> expr
val ( lsr ) : expr -> expr -> expr
val ( < ) : expr -> expr -> expr
val ( <= ) : expr -> expr -> expr
val ( > ) : expr -> expr -> expr
val ( >= ) : expr -> expr -> expr
val ( = ) : expr -> expr -> expr
val ( <> ) : expr -> expr -> expr

val set : string -> expr -> stmt
(** Assign a local (defines it on first use). *)

val setg : string -> expr -> stmt
(** Assign a global scalar. *)

val st : string -> expr -> expr -> stmt
(** [st arr idx value] stores into a global array. *)

val if_ : expr -> stmt list -> stmt list -> stmt
val while_ : expr -> stmt list -> stmt
val for_ : string -> expr -> expr -> stmt list -> stmt
val callp : string -> expr list -> stmt
val ret : expr -> stmt
val ret_unit : stmt

val func : string -> string list -> stmt list -> func
val scalar : string -> int -> global
val array : string -> int -> global
(** Zero-initialised array. *)

val array_init : string -> int array -> global
(** Array whose length and contents come from the given data. *)

val program : global list -> func list -> program
(** Builds and {!Ast.validate}s the program. *)
