open Ast

type cell =
  | Cell_scalar of int ref
  | Cell_array of int array

type state = {
  cells : (string, cell) Hashtbl.t;
  order : string list;
  mutable steps : int;
}

exception Out_of_fuel

exception Returned of int
(* Internal: unwinds a function body on [Return]. *)

let eval_binop op a b =
  match op with
  | Add -> a + b
  | Sub -> a - b
  | Mul -> a * b
  | Div -> if b = 0 then 0 else a / b
  | Rem -> if b = 0 then 0 else a mod b
  | And -> a land b
  | Or -> a lor b
  | Xor -> a lxor b
  | Shl -> a lsl (b land 63)
  | Shr -> a lsr (b land 63)
  | Lt -> if a < b then 1 else 0
  | Le -> if a <= b then 1 else 0
  | Gt -> if a > b then 1 else 0
  | Ge -> if a >= b then 1 else 0
  | Eq -> if a = b then 1 else 0
  | Ne -> if a <> b then 1 else 0

let run ?(fuel = 50_000_000) prog =
  validate prog;
  let cells = Hashtbl.create 32 in
  let order =
    List.map
      (fun gl ->
        match gl with
        | Scalar (n, init) ->
          Hashtbl.replace cells n (Cell_scalar (ref init));
          n
        | Array (n, len, init) ->
          let a = Array.make len 0 in
          Array.blit init 0 a 0 (Array.length init);
          Hashtbl.replace cells n (Cell_array a);
          n)
      prog.globals
  in
  let state = { cells; order; steps = 0 } in
  let funcs = List.map (fun f -> (f.fname, f)) prog.funcs in
  let scalar_ref name =
    match Hashtbl.find_opt cells name with
    | Some (Cell_scalar r) -> r
    | _ -> raise Not_found
  in
  let array_cells name =
    match Hashtbl.find_opt cells name with
    | Some (Cell_array a) -> a
    | _ -> raise Not_found
  in
  let tick () =
    state.steps <- state.steps + 1;
    if state.steps > fuel then raise Out_of_fuel
  in
  let rec eval env = function
    | Int n -> n
    | Var v -> (
      match Hashtbl.find_opt env v with
      | Some x -> x
      | None -> 0 (* validated: assigned somewhere; read-before-write is 0 *))
    | Global gname -> !(scalar_ref gname)
    | Load (arr, idx) ->
      let a = array_cells arr in
      let k = eval env idx in
      if k < 0 || k >= Array.length a then
        invalid_arg (Printf.sprintf "interp: %s[%d] out of bounds" arr k);
      a.(k)
    | Binop (op, x, y) ->
      let a = eval env x in
      let b = eval env y in
      eval_binop op a b
    | Call (name, args) -> call name (List.map (eval env) args)
  and call name argvals =
    let f = List.assoc name funcs in
    let env = Hashtbl.create 8 in
    List.iter2 (fun p a -> Hashtbl.replace env p a) f.params argvals;
    match exec_list env f.body with
    | () -> 0
    | exception Returned r -> r
  and exec_list env stmts = List.iter (exec env) stmts
  and exec env stmt =
    tick ();
    match stmt with
    | Assign (v, e) -> Hashtbl.replace env v (eval env e)
    | Set_global (gname, e) -> scalar_ref gname := eval env e
    | Store (arr, idx, value) ->
      let a = array_cells arr in
      let k = eval env idx in
      if k < 0 || k >= Array.length a then
        invalid_arg (Printf.sprintf "interp: %s[%d] out of bounds" arr k);
      a.(k) <- eval env value
    | If (c, t, e) -> if eval env c <> 0 then exec_list env t else exec_list env e
    | While (c, body) ->
      while eval env c <> 0 do
        exec_list env body
      done
    | For (var, lo, hi, body) ->
      let lo = eval env lo in
      let hi = eval env hi in
      let k = ref lo in
      while !k < hi do
        Hashtbl.replace env var !k;
        exec_list env body;
        (* Body may reassign the loop variable; the next iteration
           continues from that value, matching the lowered code. *)
        k := Hashtbl.find env var + 1
      done
    | Call_stmt (name, args) -> ignore (call name (List.map (eval env) args))
    | Return (Some e) -> raise (Returned (eval env e))
    | Return None -> raise (Returned 0)
  in
  ignore (call "main" []);
  state

let scalar state name =
  match Hashtbl.find_opt state.cells name with
  | Some (Cell_scalar r) -> !r
  | _ -> raise Not_found

let array state name =
  match Hashtbl.find_opt state.cells name with
  | Some (Cell_array a) -> Array.copy a
  | _ -> raise Not_found

let globals_image state =
  List.map
    (fun name ->
      match Hashtbl.find state.cells name with
      | Cell_scalar r -> (name, [| !r |])
      | Cell_array a -> (name, Array.copy a))
    state.order

let steps state = state.steps
