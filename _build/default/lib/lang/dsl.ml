open Ast

let i n = Int n
let v name = Var name
let g name = Global name
let ld arr idx = Load (arr, idx)
let call name args = Call (name, args)

let ( + ) a b = Binop (Add, a, b)
let ( - ) a b = Binop (Sub, a, b)
let ( * ) a b = Binop (Mul, a, b)
let ( / ) a b = Binop (Div, a, b)
let ( % ) a b = Binop (Rem, a, b)
let ( land ) a b = Binop (And, a, b)
let ( lor ) a b = Binop (Or, a, b)
let ( lxor ) a b = Binop (Xor, a, b)
let ( lsl ) a b = Binop (Shl, a, b)
let ( lsr ) a b = Binop (Shr, a, b)
let ( < ) a b = Binop (Lt, a, b)
let ( <= ) a b = Binop (Le, a, b)
let ( > ) a b = Binop (Gt, a, b)
let ( >= ) a b = Binop (Ge, a, b)
let ( = ) a b = Binop (Eq, a, b)
let ( <> ) a b = Binop (Ne, a, b)

let set name e = Assign (name, e)
let setg name e = Set_global (name, e)
let st arr idx value = Store (arr, idx, value)
let if_ c t e = If (c, t, e)
let while_ c body = While (c, body)
let for_ var lo hi body = For (var, lo, hi, body)
let callp name args = Call_stmt (name, args)
let ret e = Return (Some e)
let ret_unit = Return None

let func fname params body = { fname; params; body }
let scalar name init = Scalar (name, init)
let array name len = Array (name, len, [||])
let array_init name data = Array (name, Array.length data, data)

let program globals funcs =
  let prog = { globals; funcs } in
  validate prog;
  prog
