(** Reference interpreter for the mini language.

    Executes the AST directly, with the same integer semantics as the
    simulated ISA.  Tests use it as the golden model: the final global
    state after interpretation must equal the final NVM image after
    compiling and simulating the same program — with or without injected
    power failures.  A step budget guards against accidental divergence in
    randomly generated programs. *)

type state
(** Final global state. *)

exception Out_of_fuel
(** The program exceeded the step budget. *)

val run : ?fuel:int -> Ast.program -> state
(** [run prog] interprets from [main].  [fuel] bounds the number of
    statements executed (default 50 million). *)

val scalar : state -> string -> int
(** Final value of a global scalar.  Raises [Not_found]. *)

val array : state -> string -> int array
(** Final contents of a global array (copy).  Raises [Not_found]. *)

val globals_image : state -> (string * int array) list
(** Every global as a name/value-array pair (scalars as 1-element
    arrays), in declaration order — convenient for whole-state
    comparison. *)

val steps : state -> int
(** Number of statements executed, a rough dynamic-size metric. *)
