(** Shared in-order instruction executor.

    Each design supplies its memory path as a {!mem_ops} record; the
    executor handles the ISA semantics, PC updates and base (1-cycle)
    timing, which are identical across designs.  Instruction fetch is a
    constant 1 cycle everywhere: the paper keeps the L1I as an NVM cache
    in every configuration, so fetch cost is common mode. *)

type mem_ops = {
  load : int -> float -> int * Cost.t;
      (** [load addr now_ns] *)
  store : int -> int -> float -> Cost.t;
      (** [store addr value now_ns] *)
  clwb : int -> float -> Cost.t;
      (** [clwb addr now_ns] — ReplayCache line write-back. *)
  fence : float -> Cost.t;
  region_end : float -> Cost.t;
}

val nop_region_ops : mem_ops -> mem_ops
(** Same memory path with free [clwb]/[fence]/[region_end] — for designs
    that run Plain-mode programs (the markers never appear, but totality
    is nice for tests that run instrumented code on them). *)

val step :
  Config.t ->
  Cpu.t ->
  Sweep_isa.Program.t ->
  Mstats.t ->
  mem_ops ->
  now_ns:float ->
  Cost.t
(** Execute the instruction at [cpu.pc].  Updates CPU state and counters;
    returns the time/energy consumed.  Does nothing when halted. *)
