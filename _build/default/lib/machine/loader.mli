(** Program loading: writes the initial data image and checkpoint-slot
    defaults into NVM without touching access counters. *)

val load : Sweep_mem.Nvm.t -> Sweep_isa.Program.t -> unit
(** Pokes every [initial_data] word, zeroes the register-checkpoint
    slots, and sets the checkpoint-PC slot to the program entry so a
    power failure before the first region boundary recovers to a clean
    start. *)
