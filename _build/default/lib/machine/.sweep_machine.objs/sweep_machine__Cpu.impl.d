lib/machine/cpu.ml: Array Sweep_isa
