lib/machine/config.mli: Sweep_energy
