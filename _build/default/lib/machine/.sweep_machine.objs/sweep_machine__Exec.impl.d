lib/machine/exec.ml: Array Config Cost Cpu Mstats Sweep_energy Sweep_isa
