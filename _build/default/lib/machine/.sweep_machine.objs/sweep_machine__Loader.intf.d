lib/machine/loader.mli: Sweep_isa Sweep_mem
