lib/machine/loader.ml: List Sweep_isa Sweep_mem
