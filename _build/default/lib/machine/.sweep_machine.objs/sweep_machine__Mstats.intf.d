lib/machine/mstats.mli:
