lib/machine/cost.ml: List
