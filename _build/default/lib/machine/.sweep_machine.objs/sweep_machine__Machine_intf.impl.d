lib/machine/machine_intf.ml: Config Cost Cpu Mstats Sweep_energy Sweep_isa Sweep_mem
