lib/machine/config.ml: Sweep_energy
