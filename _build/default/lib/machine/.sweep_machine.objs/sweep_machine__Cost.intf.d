lib/machine/cost.mli:
