lib/machine/mstats.ml: Array List
