lib/machine/cpu.mli:
