lib/machine/exec.mli: Config Cost Cpu Mstats Sweep_isa
