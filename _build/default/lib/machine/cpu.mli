(** Architectural core state: 16 registers and a program counter.

    Volatile — wiped by power failure; each design's recovery protocol is
    responsible for rebuilding it. *)

type t = {
  regs : int array;
  mutable pc : int;
  mutable halted : bool;
}

val create : entry:int -> t

val reset : t -> entry:int -> unit
(** Power failure: registers zeroed, pc at [entry], not halted.  (The
    entry value is irrelevant — recovery overwrites it — but a defined
    value keeps the simulator total.) *)

val snapshot : t -> int array * int
(** (registers copy, pc) — what JIT checkpointing saves. *)

val restore : t -> int array * int -> unit
