(** Time/energy cost of a simulated action. *)

type t = { ns : float; joules : float }

val zero : t
val make : ns:float -> joules:float -> t
val ( ++ ) : t -> t -> t
val sum : t list -> t
val scale : float -> t -> t
