module Layout = Sweep_isa.Layout

let load nvm (prog : Sweep_isa.Program.t) =
  List.iter
    (fun (addr, v) -> Sweep_mem.Nvm.poke_word nvm addr v)
    prog.meta.initial_data;
  let layout = prog.layout in
  for r = 0 to Sweep_isa.Reg.count - 1 do
    Sweep_mem.Nvm.poke_word nvm (Layout.reg_slot layout r) 0
  done;
  Sweep_mem.Nvm.poke_word nvm layout.ckpt_pc prog.entry
