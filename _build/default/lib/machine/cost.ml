type t = { ns : float; joules : float }

let zero = { ns = 0.0; joules = 0.0 }
let make ~ns ~joules = { ns; joules }
let ( ++ ) a b = { ns = a.ns +. b.ns; joules = a.joules +. b.joules }
let sum = List.fold_left ( ++ ) zero
let scale k c = { ns = k *. c.ns; joules = k *. c.joules }
