(** Lowering: mini-language AST → per-function TAC control-flow graphs.

    Calling convention (no recursion, static frames):
    - arguments are stored into the callee's parameter slots before the
      call; the callee's entry block loads them into virtual registers;
    - results travel through the callee's result slot;
    - loop headers are marked as such while the blocks are created, so no
      loop analysis is required downstream. *)

val program : Frame.t -> Sweep_lang.Ast.program -> Tac.func list
(** Validates the program, allocates globals and frames in [Frame.t], and
    lowers every function.  The result list preserves declaration order
    (with main first if declared first). *)
