(** Static data layout: globals, per-function frames, spill slots.

    The language forbids recursion, so every function gets a *static*
    frame in NVM: parameter slots (the calling convention passes arguments
    through memory), a result slot, a link-register save slot, and spill
    slots added by the register allocator.  Globals come first, arrays
    aligned to cacheline boundaries. *)

type t

val create : unit -> t

val add_globals : t -> Sweep_lang.Ast.global list -> unit
(** Allocate every global; records initial data for the loader. *)

val global_addr : t -> string -> int
(** Byte address of a scalar global or the base of an array. *)

val array_length : t -> string -> int
(** Declared length (words) of a global array. *)

val declare_func : t -> string -> arity:int -> unit
(** Allocate the function's frame (params, result, link). *)

val param_slot : t -> string -> int -> int
val result_slot : t -> string -> int
val link_slot : t -> string -> int

val alloc_spill : t -> string -> int
(** A fresh spill slot in the named function's frame. *)

val data_limit : t -> int
(** One past the last allocated byte (for {!Sweep_isa.Layout.make}). *)

val initial_data : t -> (int * int) list
(** Loader image: (byte address, word value) for all non-zero
    initialisers. *)

val globals_extent : t -> int * int
(** [lo, hi) byte bounds of the pure-globals area (excluding frames) —
    the region compared against the reference interpreter. *)

val global_names : t -> (string * int * int) list
(** [(name, base, words)] for every global, in declaration order; scalars
    have [words = 1]. *)
