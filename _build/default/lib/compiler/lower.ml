open Sweep_lang.Ast
module I = Sweep_isa.Instr

type builder = {
  frame : Frame.t;
  fname : string;
  mutable vregs : int;
  mutable blocks : Tac.block list; (* reversed *)
  mutable nblocks : int;
  mutable cur : Tac.block;
  env : (string, Tac.vreg) Hashtbl.t;
}

let fresh b =
  let v = b.vregs in
  b.vregs <- v + 1;
  v

let new_block ?(loop_header = false) b =
  let blk =
    { Tac.id = b.nblocks; instrs = []; term = Tac.Ret; is_loop_header = loop_header }
  in
  b.nblocks <- b.nblocks + 1;
  b.blocks <- blk :: b.blocks;
  blk

let emit b i = b.cur.instrs <- i :: b.cur.instrs

let set_term b t = b.cur.term <- t

let switch_to b blk = b.cur <- blk

let var_reg b name =
  match Hashtbl.find_opt b.env name with
  | Some v -> v
  | None ->
    let v = fresh b in
    Hashtbl.replace b.env name v;
    v

let word = Sweep_isa.Layout.word_bytes

(* Evaluate [e] into [target] if given, else into a fresh or existing
   vreg; returns the vreg holding the value. *)
let rec eval ?target b e =
  let into d = Option.value target ~default:d in
  match e with
  | Int n ->
    let d = into (fresh b) in
    emit b (Tac.Movi (d, n));
    d
  | Var x ->
    let v = var_reg b x in
    (match target with
    | None -> v
    | Some d ->
      if d <> v then emit b (Tac.Mov (d, v));
      d)
  | Global g ->
    let d = into (fresh b) in
    emit b (Tac.Load_abs (d, Frame.global_addr b.frame g));
    d
  | Load (arr, idx) ->
    let base = Frame.global_addr b.frame arr in
    let d = into (fresh b) in
    (match idx with
    | Int n -> emit b (Tac.Load_abs (d, base + (n * word)))
    | _ ->
      let vi = eval b idx in
      let t = fresh b in
      emit b (Tac.Bini (I.Shl, t, vi, 2));
      emit b (Tac.Load (d, t, base)));
    d
  | Binop (op, x, y) -> (
    match (Sweep_lang.Ast.binop_of_arith op, Sweep_lang.Ast.cond_of_cmp op) with
    | Some iop, _ -> (
      match (x, y) with
      | _, Int n when n >= 0 ->
        let va = eval b x in
        let d = into (fresh b) in
        emit b (Tac.Bini (iop, d, va, n));
        d
      | _ ->
        let va = eval b x in
        let vb = eval b y in
        let d = into (fresh b) in
        emit b (Tac.Bin (iop, d, va, vb));
        d)
    | None, Some cond ->
      let va = eval b x in
      let vb = eval b y in
      let d = into (fresh b) in
      emit b (Tac.Set (cond, d, va, vb));
      d
    | None, None -> assert false)
  | Call (f, args) ->
    lower_call b f args;
    let d = into (fresh b) in
    emit b (Tac.Load_abs (d, Frame.result_slot b.frame f));
    d

and lower_call b f args =
  List.iteri
    (fun i a ->
      let v = eval b a in
      emit b (Tac.Store_abs (v, Frame.param_slot b.frame f i)))
    args;
  emit b (Tac.Call f)

(* Lower a conditional jump on expression [c]: branch to [then_id] when
   true, [else_id] when false.  Top-level comparisons map straight onto
   branch conditions. *)
let lower_branch b c then_id else_id =
  match c with
  | Binop (op, x, y) when Sweep_lang.Ast.cond_of_cmp op <> None ->
    let cond = Option.get (Sweep_lang.Ast.cond_of_cmp op) in
    let va = eval b x in
    let vb = eval b y in
    set_term b (Tac.Br (cond, va, vb, then_id, else_id))
  | _ ->
    let v = eval b c in
    let z = fresh b in
    emit b (Tac.Movi (z, 0));
    set_term b (Tac.Br (I.Ne, v, z, then_id, else_id))

let rec lower_stmts b stmts = List.iter (lower_stmt b) stmts

and lower_stmt b stmt =
  match stmt with
  | Assign (x, e) ->
    let vx = var_reg b x in
    ignore (eval ~target:vx b e)
  | Set_global (g, e) ->
    let v = eval b e in
    emit b (Tac.Store_abs (v, Frame.global_addr b.frame g))
  | Store (arr, idx, value) ->
    let base = Frame.global_addr b.frame arr in
    (match idx with
    | Int n ->
      let vv = eval b value in
      emit b (Tac.Store_abs (vv, base + (n * word)))
    | _ ->
      let vi = eval b idx in
      let t = fresh b in
      emit b (Tac.Bini (I.Shl, t, vi, 2));
      let vv = eval b value in
      emit b (Tac.Store (vv, t, base)))
  | If (c, then_s, else_s) ->
    let then_blk = new_block b in
    let else_blk = new_block b in
    let join_blk = new_block b in
    lower_branch b c then_blk.id else_blk.id;
    switch_to b then_blk;
    lower_stmts b then_s;
    set_term b (Tac.Jmp join_blk.id);
    switch_to b else_blk;
    lower_stmts b else_s;
    set_term b (Tac.Jmp join_blk.id);
    switch_to b join_blk
  | While (c, body) ->
    let header = new_block ~loop_header:true b in
    let body_blk = new_block b in
    let exit_blk = new_block b in
    set_term b (Tac.Jmp header.id);
    switch_to b header;
    lower_branch b c body_blk.id exit_blk.id;
    switch_to b body_blk;
    lower_stmts b body;
    set_term b (Tac.Jmp header.id);
    switch_to b exit_blk
  | For (x, lo, hi, body) ->
    let vx = var_reg b x in
    ignore (eval ~target:vx b lo);
    let vhi = fresh b in
    ignore (eval ~target:vhi b hi);
    let header = new_block ~loop_header:true b in
    let body_blk = new_block b in
    let exit_blk = new_block b in
    set_term b (Tac.Jmp header.id);
    switch_to b header;
    set_term b (Tac.Br (I.Lt, vx, vhi, body_blk.id, exit_blk.id));
    switch_to b body_blk;
    lower_stmts b body;
    emit b (Tac.Bini (I.Add, vx, vx, 1));
    set_term b (Tac.Jmp header.id);
    switch_to b exit_blk
  | Call_stmt (f, args) -> lower_call b f args
  | Return e ->
    (match e with
    | Some e ->
      let v = eval b e in
      emit b (Tac.Store_abs (v, Frame.result_slot b.frame b.fname))
    | None -> ());
    set_term b Tac.Ret;
    (* Anything after a return in the same statement list is dead; park
       it in an unreachable block. *)
    let dead = new_block b in
    switch_to b dead

let rec has_call_stmts stmts = List.exists has_call_stmt stmts

and has_call_stmt = function
  | Assign (_, e) | Set_global (_, e) -> has_call_expr e
  | Store (_, i, v) -> has_call_expr i || has_call_expr v
  | If (c, t, e) -> has_call_expr c || has_call_stmts t || has_call_stmts e
  | While (c, body) -> has_call_expr c || has_call_stmts body
  | For (_, lo, hi, body) ->
    has_call_expr lo || has_call_expr hi || has_call_stmts body
  | Call_stmt _ -> true
  | Return (Some e) -> has_call_expr e
  | Return None -> false

and has_call_expr = function
  | Int _ | Var _ | Global _ -> false
  | Load (_, e) -> has_call_expr e
  | Binop (_, a, b) -> has_call_expr a || has_call_expr b
  | Call _ -> true

let lower_func frame (f : func) : Tac.func =
  let b =
    {
      frame;
      fname = f.fname;
      vregs = 0;
      blocks = [];
      nblocks = 0;
      cur = { Tac.id = -1; instrs = []; term = Tac.Ret; is_loop_header = false };
      env = Hashtbl.create 16;
    }
  in
  let entry = new_block b in
  switch_to b entry;
  (* Parameter prologue: load each argument from its frame slot. *)
  List.iteri
    (fun i p ->
      let v = var_reg b p in
      emit b (Tac.Load_abs (v, Frame.param_slot frame f.fname i)))
    f.params;
  lower_stmts b f.body;
  (* Fall-through return keeps the default [Ret] terminator. *)
  let blocks = Array.of_list (List.rev b.blocks) in
  Array.iter (fun blk -> blk.Tac.instrs <- List.rev blk.Tac.instrs) blocks;
  Array.iteri (fun i blk -> assert (blk.Tac.id = i)) blocks;
  {
    Tac.fname = f.fname;
    entry = entry.id;
    blocks;
    vreg_count = b.vregs;
    is_leaf = not (has_call_stmts f.body);
  }

let program frame (prog : program) =
  Sweep_lang.Ast.validate prog;
  Frame.add_globals frame prog.globals;
  List.iter
    (fun (f : func) ->
      Frame.declare_func frame f.fname ~arity:(List.length f.params))
    prog.funcs;
  List.map (lower_func frame) prog.funcs
