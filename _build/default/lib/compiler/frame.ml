open Sweep_isa

type entry = { base : int; words : int }

type frame = {
  params : int array;
  result : int;
  link : int;
  mutable spills : int list;
}

type t = {
  mutable cursor : int;
  globals : (string, entry) Hashtbl.t;
  mutable global_order : (string * entry) list; (* reversed *)
  frames : (string, frame) Hashtbl.t;
  mutable init : (int * int) list;
  mutable globals_hi : int;
}

let create () =
  {
    cursor = Layout.default_data_base;
    globals = Hashtbl.create 32;
    global_order = [];
    frames = Hashtbl.create 16;
    init = [];
    globals_hi = Layout.default_data_base;
  }

let align t boundary =
  let rem = t.cursor mod boundary in
  if rem <> 0 then t.cursor <- t.cursor + (boundary - rem)

let alloc_words t n =
  let base = t.cursor in
  t.cursor <- t.cursor + (n * Layout.word_bytes);
  if t.cursor > Layout.default_ckpt_base then
    failwith "Frame: data region overflow";
  base

let add_globals t globals =
  List.iter
    (fun gl ->
      match gl with
      | Sweep_lang.Ast.Scalar (name, init) ->
        let base = alloc_words t 1 in
        Hashtbl.replace t.globals name { base; words = 1 };
        t.global_order <- (name, { base; words = 1 }) :: t.global_order;
        if init <> 0 then t.init <- (base, init) :: t.init
      | Sweep_lang.Ast.Array (name, len, data) ->
        align t Layout.line_bytes;
        let base = alloc_words t len in
        Hashtbl.replace t.globals name { base; words = len };
        t.global_order <- (name, { base; words = len }) :: t.global_order;
        Array.iteri
          (fun i v ->
            if v <> 0 then
              t.init <- (base + (i * Layout.word_bytes), v) :: t.init)
          data)
    globals;
  t.globals_hi <- t.cursor

let find_global t name =
  match Hashtbl.find_opt t.globals name with
  | Some e -> e
  | None -> invalid_arg ("Frame: unknown global " ^ name)

let global_addr t name = (find_global t name).base
let array_length t name = (find_global t name).words

let declare_func t name ~arity =
  let params = Array.init arity (fun _ -> alloc_words t 1) in
  let result = alloc_words t 1 in
  let link = alloc_words t 1 in
  Hashtbl.replace t.frames name { params; result; link; spills = [] }

let find_frame t name =
  match Hashtbl.find_opt t.frames name with
  | Some f -> f
  | None -> invalid_arg ("Frame: unknown function " ^ name)

let param_slot t name i = (find_frame t name).params.(i)
let result_slot t name = (find_frame t name).result
let link_slot t name = (find_frame t name).link

let alloc_spill t name =
  let f = find_frame t name in
  let slot = alloc_words t 1 in
  f.spills <- slot :: f.spills;
  slot

let data_limit t = t.cursor
let initial_data t = t.init
let globals_extent t = (Layout.default_data_base, t.globals_hi)

let global_names t =
  List.rev_map (fun (name, e) -> (name, e.base, e.words)) t.global_order
