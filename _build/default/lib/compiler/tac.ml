type vreg = int

type instr =
  | Movi of vreg * int
  | Mov of vreg * vreg
  | Bin of Sweep_isa.Instr.binop * vreg * vreg * vreg
  | Bini of Sweep_isa.Instr.binop * vreg * vreg * int
  | Set of Sweep_isa.Instr.cond * vreg * vreg * vreg
  | Load of vreg * vreg * int
  | Load_abs of vreg * int
  | Store of vreg * vreg * int
  | Store_abs of vreg * int
  | Call of string

type term =
  | Jmp of int
  | Br of Sweep_isa.Instr.cond * vreg * vreg * int * int
  | Ret

type block = {
  id : int;
  mutable instrs : instr list;
  mutable term : term;
  mutable is_loop_header : bool;
}

type func = {
  fname : string;
  entry : int;
  mutable blocks : block array;
  mutable vreg_count : int;
  is_leaf : bool;
}

let defs = function
  | Movi (d, _) | Mov (d, _) | Bin (_, d, _, _) | Bini (_, d, _, _)
  | Set (_, d, _, _) | Load (d, _, _) | Load_abs (d, _) -> [ d ]
  | Call _ | Store _ | Store_abs _ -> []

let uses = function
  | Mov (_, s) -> [ s ]
  | Bin (_, _, a, b) | Set (_, _, a, b) -> [ a; b ]
  | Bini (_, _, a, _) -> [ a ]
  | Load (_, s, _) -> [ s ]
  | Store (v, s, _) -> [ v; s ]
  | Store_abs (v, _) -> [ v ]
  | Movi _ | Load_abs _ | Call _ -> []

let term_uses = function
  | Br (_, a, b, _, _) -> [ a; b ]
  | Jmp _ | Ret -> []

let succs = function
  | Jmp t -> [ t ]
  | Br (_, _, _, t, f) -> [ t; f ]
  | Ret -> []

let binop_name : Sweep_isa.Instr.binop -> string = function
  | Add -> "add" | Sub -> "sub" | Mul -> "mul" | Div -> "div" | Rem -> "rem"
  | And -> "and" | Or -> "or" | Xor -> "xor" | Shl -> "shl" | Shr -> "shr"

let pp_instr fmt i =
  let v n = "v" ^ string_of_int n in
  match i with
  | Movi (d, n) -> Format.fprintf fmt "%s <- %d" (v d) n
  | Mov (d, s) -> Format.fprintf fmt "%s <- %s" (v d) (v s)
  | Bin (op, d, a, b) ->
    Format.fprintf fmt "%s <- %s %s %s" (v d) (binop_name op) (v a) (v b)
  | Bini (op, d, a, n) ->
    Format.fprintf fmt "%s <- %s %s %d" (v d) (binop_name op) (v a) n
  | Set (_, d, a, b) -> Format.fprintf fmt "%s <- set(%s, %s)" (v d) (v a) (v b)
  | Load (d, s, off) -> Format.fprintf fmt "%s <- M[%s+%d]" (v d) (v s) off
  | Load_abs (d, a) -> Format.fprintf fmt "%s <- M[%d]" (v d) a
  | Store (x, s, off) -> Format.fprintf fmt "M[%s+%d] <- %s" (v s) off (v x)
  | Store_abs (x, a) -> Format.fprintf fmt "M[%d] <- %s" a (v x)
  | Call f -> Format.fprintf fmt "call %s" f

let pp_func fmt f =
  Format.fprintf fmt "func %s (entry b%d)@." f.fname f.entry;
  Array.iter
    (fun b ->
      Format.fprintf fmt "b%d%s:@." b.id
        (if b.is_loop_header then " [loop]" else "");
      List.iter (fun i -> Format.fprintf fmt "  %a@." pp_instr i) b.instrs;
      (match b.term with
      | Jmp t -> Format.fprintf fmt "  jmp b%d@." t
      | Br (_, a, bb, t, ff) ->
        Format.fprintf fmt "  br v%d,v%d -> b%d | b%d@." a bb t ff
      | Ret -> Format.fprintf fmt "  ret@."))
    f.blocks
