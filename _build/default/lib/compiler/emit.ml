module I = Sweep_isa.Instr
module Reg = Sweep_isa.Reg
module Program = Sweep_isa.Program

let emit_func (f : Mcfg.func) =
  let items = ref [] in
  let out it = items := it :: !items in
  let n = Array.length f.blocks in
  Array.iteri
    (fun idx (b : Mcfg.block) ->
      out (Program.Label (Mcfg.block_label f b.id));
      List.iter
        (fun item ->
          match item with
          | Mcfg.I ins -> out (Program.Ins ins)
          | Mcfg.L lbl -> out (Program.Label lbl))
        b.items;
      let label id = Mcfg.block_label f id in
      let falls_to id = idx + 1 < n && id = idx + 1 in
      match b.term with
      | Mcfg.Tjmp t -> if not (falls_to t) then out (Program.Ins (I.Jmp (label t)))
      | Mcfg.Tbr (c, a, rb, taken, fall) ->
        out (Program.Ins (I.Br (c, a, rb, label taken)));
        if not (falls_to fall) then out (Program.Ins (I.Jmp (label fall)))
      | Mcfg.Tret_leaf -> out (Program.Ins (I.Jmp_reg Reg.link))
      | Mcfg.Tret_nonleaf slot ->
        out (Program.Ins (I.Load_abs (Reg.scratch0, slot)));
        out (Program.Ins (I.Jmp_reg Reg.scratch0))
      | Mcfg.Thalt -> out (Program.Ins I.Halt))
    f.blocks;
  List.rev !items

let program frame ~main funcs =
  let ordered =
    (* Main first so the program entry is instruction-dense at the top;
       the entry label still drives execution, so order is cosmetic. *)
    let mains, rest = List.partition (fun f -> f.Mcfg.name = main) funcs in
    mains @ rest
  in
  let items = List.concat_map emit_func ordered in
  let layout = Sweep_isa.Layout.make ~data_limit:(Frame.data_limit frame) in
  let meta =
    {
      Program.functions = List.map (fun f -> (f.Mcfg.name, f.Mcfg.name)) ordered;
      initial_data = Frame.initial_data frame;
    }
  in
  Program.assemble ~meta ~layout ~entry:main items
