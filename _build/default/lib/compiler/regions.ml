module I = Sweep_isa.Instr
module Reg = Sweep_isa.Reg
module Layout = Sweep_isa.Layout
module ISet = Set.Make (Int)

type mode = [ `Sweep | `Replay ]

type stats = {
  boundaries : int;
  ckpt_stores : int;
  clwbs : int;
  max_region_stores : int;
}

(* Room reserved for the checkpoint stores of a region's ending boundary:
   at most all 16 registers plus the PC save. *)
let ckpt_reserve = Reg.count + 2

let preds_of (f : Mcfg.func) =
  let n = Array.length f.blocks in
  let preds = Array.make n [] in
  Array.iter
    (fun (b : Mcfg.block) ->
      List.iter (fun s -> preds.(s) <- b.id :: preds.(s)) (Mcfg.succs b.term))
    f.blocks;
  preds

(* Natural loop body of a header: header plus everything reachable
   backward from back-edge sources without passing through the header.
   Lowering numbers body blocks after their header, so a back edge is an
   edge b -> h with b.id > h.id. *)
let loop_body f preds header =
  let sources =
    Array.to_list f.Mcfg.blocks
    |> List.filter_map (fun (b : Mcfg.block) ->
           if b.id > header && List.mem header (Mcfg.succs b.term) then
             Some b.id
           else None)
  in
  let rec grow body = function
    | [] -> body
    | b :: rest ->
      if ISet.mem b body || b = header then grow body rest
      else grow (ISet.add b body) (preds.(b) @ rest)
  in
  grow (ISet.singleton header) sources

let body_has_store_or_call f body =
  ISet.exists
    (fun id ->
      List.exists
        (fun item ->
          match item with
          | Mcfg.I ins -> I.is_store ins || (match ins with I.Call _ -> true | _ -> false)
          | Mcfg.L _ -> false)
        f.Mcfg.blocks.(id).items)
    body

let boundary = Mcfg.I I.Region_end

(* ------------------------------------------------------------------ *)
(* Step 1: mandatory boundaries.                                       *)

let insert_mandatory (f : Mcfg.func) =
  let preds = preds_of f in
  let header_needs_boundary =
    Array.map
      (fun (b : Mcfg.block) ->
        b.is_loop_header
        && body_has_store_or_call f (loop_body f preds b.id))
      f.blocks
  in
  Array.iter
    (fun (b : Mcfg.block) ->
      (* Call sites need no boundaries of their own: the callee's entry
         and exit boundaries delimit them, and the path scan flows the
         caller's running counts conservatively through the call. *)
      let with_header =
        if b.id = f.entry || header_needs_boundary.(b.id) then
          boundary :: b.items
        else b.items
      in
      let with_return =
        match b.term with
        | Tret_leaf | Tret_nonleaf _ | Thalt -> with_header @ [ boundary ]
        | Tjmp _ | Tbr _ -> with_header
      in
      b.items <- with_return)
    f.blocks

(* ------------------------------------------------------------------ *)
(* Step 2: path-sensitive store / instruction counting.                *)

(* Scan a block given entry counts; insert a boundary before any item
   that would push a path over the limits.  Returns (items, exits,
   inserted, max_seen). *)
let scan_block ~store_limit ~instr_cap entry_s entry_n items =
  let rev = ref [] in
  let s = ref entry_s and n = ref entry_n in
  let inserted = ref false in
  let max_seen = ref entry_s in
  List.iter
    (fun item ->
      (match item with
      | Mcfg.L _ -> ()
      | Mcfg.I I.Region_end ->
        s := 0;
        n := 0
      | Mcfg.I ins ->
        let ds = if I.is_store ins then 1 else 0 in
        if !s + ds > store_limit || !n + 1 > instr_cap then begin
          rev := boundary :: !rev;
          inserted := true;
          s := 0;
          n := 0
        end;
        s := !s + ds;
        n := !n + 1;
        if !s > !max_seen then max_seen := !s);
      rev := item :: !rev)
    items;
  (List.rev !rev, (!s, !n + 2), !inserted, !max_seen)

let threshold_scan ~store_limit ~instr_cap (f : Mcfg.func) =
  let n = Array.length f.blocks in
  let preds = preds_of f in
  let exit_s = Array.make n 0 in
  let exit_n = Array.make n 0 in
  let overall_max = ref 0 in
  let rec iterate guard =
    if guard > 1_000 then failwith "Regions: threshold scan did not converge";
    let changed = ref false in
    Array.iter
      (fun (b : Mcfg.block) ->
        let entry_s, entry_n =
          List.fold_left
            (fun (s, m) p -> (max s exit_s.(p), max m exit_n.(p)))
            (0, 0) preds.(b.id)
        in
        let items, (es, en), inserted, max_seen =
          scan_block ~store_limit ~instr_cap entry_s entry_n b.items
        in
        if max_seen > !overall_max then overall_max := max_seen;
        if inserted then begin
          b.items <- items;
          changed := true
        end;
        if es <> exit_s.(b.id) || en <> exit_n.(b.id) then begin
          exit_s.(b.id) <- es;
          exit_n.(b.id) <- en;
          changed := true
        end)
      f.blocks;
    if !changed then iterate (guard + 1)
  in
  iterate 0;
  !overall_max

(* ------------------------------------------------------------------ *)
(* Step 3a (Sweep): checkpoint-store insertion at each boundary.

   A register needs a checkpoint store at a boundary only if it is
   live-out there AND may have been redefined since the previous
   boundary: registers untouched since their last checkpoint still have
   a current NVM slot (the paper places checkpoint stores "right after
   the last update point of the variables in each region" — an update
   point must exist).  The "possibly redefined" set comes from a forward
   dataflow that resets to empty at each boundary and unions defs. *)

(* Per-block mask of registers possibly redefined since the last
   boundary, at block entry (fixpoint over the CFG). *)
let dirty_defs_in (f : Mcfg.func) =
  let n = Array.length f.blocks in
  let entry_dirty = Array.make n 0 in
  (* Interprocedural conservatism: at function entry, everything may have
     been redefined since the caller's last boundary — in particular the
     link register, which the call itself just wrote. *)
  entry_dirty.(f.entry) <- Mcfg.all_regs_mask;
  let flow_block blk entry =
    List.fold_left
      (fun d item ->
        match item with
        | Mcfg.I I.Region_end -> 0
        | _ -> d lor Mcfg.item_defs_mask item)
      entry blk.Mcfg.items
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun (b : Mcfg.block) ->
        let exit_mask = flow_block b entry_dirty.(b.id) in
        List.iter
          (fun s ->
            let updated = entry_dirty.(s) lor exit_mask in
            if updated <> entry_dirty.(s) then begin
              entry_dirty.(s) <- updated;
              changed := true
            end)
          (Mcfg.succs b.term))
      f.blocks
  done;
  entry_dirty

(* live-after mask for every item position, in item order. *)
let live_after_per_item (blk : Mcfg.block) live_out =
  let after_items = live_out lor Mcfg.term_uses_mask blk.term in
  let rec go acc live = function
    | [] -> acc (* acc is in forward item order *)
    | item :: rest ->
      let live' =
        live land lnot (Mcfg.item_defs_mask item) lor Mcfg.item_uses_mask item
      in
      go ((item, live) :: acc) live' rest
  in
  go [] after_items (List.rev blk.items)

let insert_checkpoints ~(layout : Layout.t) (f : Mcfg.func) =
  let live_out = Mcfg.liveness f in
  let entry_dirty = dirty_defs_in f in
  let label_counter = ref 0 in
  let ckpt_count = ref 0 in
  Array.iter
    (fun (b : Mcfg.block) ->
      let annotated = live_after_per_item b live_out.(b.id) in
      let dirty = ref entry_dirty.(b.id) in
      let rebuilt =
        List.concat_map
          (fun (item, live_after) ->
            let dirty_here = !dirty in
            (match item with
            | Mcfg.I I.Region_end -> dirty := 0
            | _ -> dirty := !dirty lor Mcfg.item_defs_mask item);
            match item with
            | Mcfg.I I.Region_end ->
              let lbl =
                incr label_counter;
                Printf.sprintf "%s__r%d" f.name !label_counter
              in
              let saves =
                List.map
                  (fun r ->
                    incr ckpt_count;
                    Mcfg.I (I.Store_abs (r, Layout.reg_slot layout r)))
                  (Mcfg.regs_of_mask (live_after land dirty_here))
              in
              incr ckpt_count;
              saves
              @ [
                  Mcfg.I (I.Movl (Reg.scratch2, lbl));
                  Mcfg.I (I.Store_abs (Reg.scratch2, layout.ckpt_pc));
                  item;
                  Mcfg.L lbl;
                ]
            | _ -> [ item ])
          annotated
      in
      b.items <- rebuilt)
    f.blocks;
  !ckpt_count

(* ------------------------------------------------------------------ *)
(* Step 3b (Replay): clwb after every store, fence at every boundary.  *)

let insert_replay (f : Mcfg.func) =
  let clwbs = ref 0 in
  Array.iter
    (fun (b : Mcfg.block) ->
      b.items <-
        List.concat_map
          (fun item ->
            match item with
            | Mcfg.I (I.Store (_, rs, off)) ->
              incr clwbs;
              [ item; Mcfg.I (I.Clwb (rs, off)) ]
            | Mcfg.I (I.Store_abs (_, addr)) ->
              incr clwbs;
              [ item; Mcfg.I (I.Clwb_abs addr) ]
            | Mcfg.I I.Region_end -> [ Mcfg.I I.Fence; item ]
            | _ -> [ item ])
          b.items)
    f.blocks;
  !clwbs

(* ------------------------------------------------------------------ *)

let count_boundaries (f : Mcfg.func) =
  Array.fold_left
    (fun acc (b : Mcfg.block) ->
      List.fold_left
        (fun acc item ->
          match item with Mcfg.I I.Region_end -> acc + 1 | _ -> acc)
        acc b.items)
    0 f.blocks

(* Verification: recount with checkpoint stores included and no reserve;
   no insertion may be needed. *)
let verify ~threshold ~instr_cap (f : Mcfg.func) =
  let n = Array.length f.blocks in
  let preds = preds_of f in
  let exit_s = Array.make n 0 in
  let exit_n = Array.make n 0 in
  let overall_max = ref 0 in
  let rec iterate guard changed_prev =
    if guard > 1_000 then failwith "Regions: verification did not converge";
    let changed = ref false in
    Array.iter
      (fun (b : Mcfg.block) ->
        let entry_s, entry_n =
          List.fold_left
            (fun (s, m) p -> (max s exit_s.(p), max m exit_n.(p)))
            (0, 0) preds.(b.id)
        in
        let s = ref entry_s and ni = ref entry_n in
        List.iter
          (fun item ->
            match item with
            | Mcfg.L _ -> ()
            | Mcfg.I I.Region_end ->
              s := 0;
              ni := 0
            | Mcfg.I ins ->
              if I.is_store ins then incr s;
              incr ni;
              if !s > !overall_max then overall_max := !s;
              if !s > threshold then
                failwith
                  (Printf.sprintf
                     "Regions: %s has a path with %d stores (threshold %d)"
                     f.name !s threshold);
              (* The instruction cap is advisory headroom: checkpoints may
                 push a region slightly past it, which is fine as long as
                 the EH budget keeps a margin (it reserves 2x). *)
              ignore instr_cap)
          b.items;
        if !s <> exit_s.(b.id) || !ni + 2 <> exit_n.(b.id) then begin
          exit_s.(b.id) <- !s;
          exit_n.(b.id) <- !ni + 2;
          changed := true
        end)
      f.blocks;
    if !changed then iterate (guard + 1) !changed else ignore changed_prev
  in
  iterate 0 false;
  !overall_max

let run ~layout ~threshold ~instr_cap ~mode (f : Mcfg.func) =
  if threshold <= ckpt_reserve then
    invalid_arg "Regions.run: threshold must exceed the checkpoint reserve";
  insert_mandatory f;
  let store_limit = threshold - ckpt_reserve in
  ignore (threshold_scan ~store_limit ~instr_cap f);
  let ckpt_stores, clwbs =
    match mode with
    | `Sweep -> (insert_checkpoints ~layout f, 0)
    | `Replay -> (0, insert_replay f)
  in
  let max_region_stores = verify ~threshold ~instr_cap f in
  {
    boundaries = count_boundaries f;
    ckpt_stores;
    clwbs;
    max_region_stores;
  }
