module I = Sweep_isa.Instr
module Reg = Sweep_isa.Reg
module ISet = Set.Make (Int)

type result = {
  mfunc : Mcfg.func;
  spills : int;
}

(* ------------------------------------------------------------------ *)
(* Dead-code elimination on TAC: drop pure instructions whose result is
   never read.  Iterates because removing a use can kill its producer.  *)

let dce (f : Tac.func) =
  let changed = ref true in
  while !changed do
    changed := false;
    let used = Hashtbl.create 64 in
    let note v = Hashtbl.replace used v () in
    Array.iter
      (fun (b : Tac.block) ->
        List.iter (fun ins -> List.iter note (Tac.uses ins)) b.instrs;
        List.iter note (Tac.term_uses b.term))
      f.blocks;
    let pure ins =
      match (ins : Tac.instr) with
      | Movi _ | Mov _ | Bin _ | Bini _ | Set _ | Load _ | Load_abs _ -> true
      | Store _ | Store_abs _ | Call _ -> false
    in
    Array.iter
      (fun (b : Tac.block) ->
        let keep ins =
          if pure ins then
            match Tac.defs ins with
            | [ d ] when not (Hashtbl.mem used d) ->
              changed := true;
              false
            | _ -> true
          else true
        in
        b.instrs <- List.filter keep b.instrs)
      f.blocks
  done

(* ------------------------------------------------------------------ *)
(* Liveness over virtual registers (block granularity).                *)

let vliveness (f : Tac.func) =
  let n = Array.length f.blocks in
  let live_in = Array.make n ISet.empty in
  let live_out = Array.make n ISet.empty in
  let block_live_in blk out =
    let after = ISet.union out (ISet.of_list (Tac.term_uses blk.Tac.term)) in
    List.fold_left
      (fun live ins ->
        let live = List.fold_left (fun s d -> ISet.remove d s) live (Tac.defs ins) in
        List.fold_left (fun s u -> ISet.add u s) live (Tac.uses ins))
      after
      (List.rev blk.Tac.instrs)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    for i = n - 1 downto 0 do
      let blk = f.blocks.(i) in
      let out =
        List.fold_left
          (fun acc s -> ISet.union acc live_in.(s))
          ISet.empty (Tac.succs blk.term)
      in
      let inn = block_live_in blk out in
      if not (ISet.equal out live_out.(i)) || not (ISet.equal inn live_in.(i))
      then begin
        live_out.(i) <- out;
        live_in.(i) <- inn;
        changed := true
      end
    done
  done;
  (live_in, live_out)

(* ------------------------------------------------------------------ *)
(* Intervals.                                                          *)

type location = In_reg of Reg.t | In_slot of int

let build_intervals (f : Tac.func) =
  let starts = Array.make f.vreg_count max_int in
  let ends = Array.make f.vreg_count min_int in
  let occurrences = Array.make f.vreg_count 0 in
  let extend v p =
    if p < starts.(v) then starts.(v) <- p;
    if p > ends.(v) then ends.(v) <- p
  in
  let occur v p =
    extend v p;
    occurrences.(v) <- occurrences.(v) + 1
  in
  let live_in, live_out = vliveness f in
  let calls = ref [] in
  let pos = ref 0 in
  Array.iteri
    (fun bi (blk : Tac.block) ->
      let block_start = !pos in
      List.iter
        (fun ins ->
          let p = !pos in
          List.iter (fun v -> occur v p) (Tac.uses ins);
          List.iter (fun v -> occur v p) (Tac.defs ins);
          (match ins with Tac.Call _ -> calls := p :: !calls | _ -> ());
          incr pos)
        blk.instrs;
      let term_pos = !pos in
      List.iter (fun v -> occur v term_pos) (Tac.term_uses blk.term);
      incr pos;
      ISet.iter (fun v -> extend v block_start) live_in.(bi);
      ISet.iter (fun v -> extend v term_pos) live_out.(bi))
    f.blocks;
  (starts, ends, occurrences, List.rev !calls)

let allocate frame (f : Tac.func) =
  let starts, ends, occurrences, calls = build_intervals f in
  let crosses_call s e = List.exists (fun p -> s < p && e >= p) calls in
  let loc = Array.make (max f.vreg_count 1) (In_slot (-1)) in
  let spills = ref 0 in
  let spill v =
    loc.(v) <- In_slot (Frame.alloc_spill frame f.fname);
    incr spills
  in
  let intervals =
    List.filter (fun v -> starts.(v) <= ends.(v)) (List.init f.vreg_count Fun.id)
  in
  let intervals = List.sort (fun a b -> compare starts.(a) starts.(b)) intervals in
  let to_allocate =
    List.filter
      (fun v ->
        if crosses_call starts.(v) ends.(v) then begin
          spill v;
          false
        end
        else true)
      intervals
  in
  let free = ref Reg.allocatable in
  let active = ref [] in (* (endpos, vreg, reg), sorted by endpos asc *)
  let expire s =
    let expired, still = List.partition (fun (e, _, _) -> e < s) !active in
    List.iter (fun (_, _, r) -> free := r :: !free) expired;
    active := still
  in
  let add_active entry =
    active := List.sort (fun (a, _, _) (b, _, _) -> compare a b) (entry :: !active)
  in
  List.iter
    (fun v ->
      expire starts.(v);
      match !free with
      | r :: rest ->
        free := rest;
        loc.(v) <- In_reg r;
        add_active (ends.(v), v, r)
      | [] -> (
        (* Choose the victim with the fewest static occurrences (spill
           stores at defs inside loops would force region boundaries
           there; a rarely-touched value — typically a loop bound — costs
           only occasional reloads), breaking ties toward the furthest
           end. *)
        let weight w = (occurrences.(w), -ends.(w)) in
        let victim =
          List.fold_left
            (fun best (_, w, _) -> if weight w < weight best then w else best)
            v !active
        in
        if victim = v then spill v
        else begin
          let r =
            match List.find (fun (_, w, _) -> w = victim) !active with
            | _, _, r -> r
          in
          spill victim;
          loc.(v) <- In_reg r;
          active := List.filter (fun (_, w, _) -> w <> victim) !active;
          add_active (ends.(v), v, r)
        end))
    to_allocate;
  (loc, !spills)

(* ------------------------------------------------------------------ *)
(* Rewrite TAC into machine instructions.                              *)

let rewrite frame ~main (f : Tac.func) loc =
  let scr0 = Reg.scratch0 and scr1 = Reg.scratch1 in
  let link_slot = Frame.link_slot frame f.fname in
  let items = ref [] in
  let out i = items := Mcfg.I i :: !items in
  (* Bring the value of [v] into a register, using [scr] when spilled. *)
  let use scr v =
    match loc.(v) with
    | In_reg r -> r
    | In_slot s ->
      out (I.Load_abs (scr, s));
      scr
  in
  (* Target register for a definition; [finish] stores it if spilled. *)
  let def_target v = match loc.(v) with In_reg r -> r | In_slot _ -> scr0 in
  let def_finish v =
    match loc.(v) with
    | In_reg _ -> ()
    | In_slot s -> out (I.Store_abs (scr0, s))
  in
  let rewrite_instr (ins : Tac.instr) =
    match ins with
    | Movi (d, n) ->
      out (I.Movi (def_target d, n));
      def_finish d
    | Mov (d, s) -> (
      match (loc.(d), loc.(s)) with
      | In_reg rd, In_reg rs -> if rd <> rs then out (I.Mov (rd, rs))
      | In_reg rd, In_slot sl -> out (I.Load_abs (rd, sl))
      | In_slot dl, _ ->
        let rs = use scr0 s in
        out (I.Store_abs (rs, dl)))
    | Bin (op, d, a, b) ->
      let ra = use scr0 a in
      let rb = use scr1 b in
      out (I.Bin (op, def_target d, ra, rb));
      def_finish d
    | Bini (op, d, a, n) ->
      let ra = use scr0 a in
      out (I.Bini (op, def_target d, ra, n));
      def_finish d
    | Set (c, d, a, b) ->
      let ra = use scr0 a in
      let rb = use scr1 b in
      out (I.Set (c, def_target d, ra, rb));
      def_finish d
    | Load (d, s, off) ->
      let rs = use scr0 s in
      out (I.Load (def_target d, rs, off));
      def_finish d
    | Load_abs (d, a) ->
      out (I.Load_abs (def_target d, a));
      def_finish d
    | Store (v, s, off) ->
      let rv = use scr0 v in
      let rs = use scr1 s in
      out (I.Store (rv, rs, off))
    | Store_abs (v, a) ->
      let rv = use scr0 v in
      out (I.Store_abs (rv, a))
    | Call callee -> out (I.Call callee)
  in
  let rewrite_term (t : Tac.term) =
    match t with
    | Jmp b -> Mcfg.Tjmp b
    | Br (c, a, b, taken, fall) ->
      let ra = use scr0 a in
      let rb = use scr1 b in
      Mcfg.Tbr (c, ra, rb, taken, fall)
    | Ret ->
      if f.fname = main then Mcfg.Thalt
      else if f.is_leaf then Mcfg.Tret_leaf
      else Mcfg.Tret_nonleaf link_slot
  in
  let blocks =
    Array.map
      (fun (blk : Tac.block) ->
        items := [];
        (* Non-leaf prologue: save the link register into the frame. *)
        if blk.id = f.entry && not f.is_leaf then
          out (I.Store_abs (Reg.link, link_slot));
        List.iter rewrite_instr blk.instrs;
        let term = rewrite_term blk.term in
        {
          Mcfg.id = blk.id;
          items = List.rev !items;
          term;
          is_loop_header = blk.is_loop_header;
        })
      f.blocks
  in
  {
    Mcfg.name = f.fname;
    entry = f.entry;
    blocks;
    is_leaf = f.is_leaf;
    link_slot;
  }

let run frame ~main (f : Tac.func) =
  dce f;
  let loc, spills = allocate frame f in
  let mfunc = rewrite frame ~main f loc in
  { mfunc; spills }
