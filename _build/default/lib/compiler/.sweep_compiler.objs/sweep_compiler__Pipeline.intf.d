lib/compiler/pipeline.mli: Sweep_isa Sweep_lang
