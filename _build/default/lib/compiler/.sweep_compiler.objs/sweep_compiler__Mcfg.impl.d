lib/compiler/mcfg.ml: Array List Printf Sweep_isa
