lib/compiler/frame.ml: Array Hashtbl Layout List Sweep_isa Sweep_lang
