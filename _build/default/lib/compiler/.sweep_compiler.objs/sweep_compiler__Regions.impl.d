lib/compiler/regions.ml: Array Int List Mcfg Printf Set Sweep_isa
