lib/compiler/unroll.mli: Sweep_lang
