lib/compiler/regions.mli: Mcfg Sweep_isa
