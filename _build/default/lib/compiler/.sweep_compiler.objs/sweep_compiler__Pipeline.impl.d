lib/compiler/pipeline.ml: Emit Frame Inline List Lower Regalloc Regions Sweep_energy Sweep_isa Unroll
