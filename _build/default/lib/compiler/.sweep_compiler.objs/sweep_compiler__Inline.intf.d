lib/compiler/inline.mli: Sweep_lang
