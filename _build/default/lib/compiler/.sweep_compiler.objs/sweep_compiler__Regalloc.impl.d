lib/compiler/regalloc.ml: Array Frame Fun Hashtbl Int List Mcfg Set Sweep_isa Tac
