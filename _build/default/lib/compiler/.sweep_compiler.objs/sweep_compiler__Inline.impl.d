lib/compiler/inline.ml: Hashtbl List Option Printf Sweep_lang
