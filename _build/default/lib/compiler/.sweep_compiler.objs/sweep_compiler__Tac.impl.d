lib/compiler/tac.ml: Array Format List Sweep_isa
