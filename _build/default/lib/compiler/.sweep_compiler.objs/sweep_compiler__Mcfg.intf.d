lib/compiler/mcfg.mli: Sweep_isa
