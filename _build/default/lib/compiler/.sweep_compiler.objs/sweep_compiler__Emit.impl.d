lib/compiler/emit.ml: Array Frame List Mcfg Sweep_isa
