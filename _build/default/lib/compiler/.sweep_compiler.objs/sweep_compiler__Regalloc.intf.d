lib/compiler/regalloc.mli: Frame Mcfg Tac
