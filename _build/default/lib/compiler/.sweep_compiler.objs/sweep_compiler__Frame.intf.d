lib/compiler/frame.mli: Sweep_lang
