lib/compiler/lower.mli: Frame Sweep_lang Tac
