lib/compiler/unroll.ml: List Printf Sweep_lang
