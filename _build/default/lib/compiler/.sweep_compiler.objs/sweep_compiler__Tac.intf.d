lib/compiler/tac.mli: Format Sweep_isa
