lib/compiler/lower.ml: Array Frame Hashtbl List Option Sweep_isa Sweep_lang Tac
