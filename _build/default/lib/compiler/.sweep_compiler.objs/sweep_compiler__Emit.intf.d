lib/compiler/emit.mli: Frame Mcfg Sweep_isa
