(** Machine-level control-flow graph.

    After register allocation, code is expressed in real ISA instructions
    (with symbolic labels) but still organised as a CFG so that the region
    pass can traverse it, count stores along paths, and insert boundaries
    and checkpoint stores.  Emission then linearises it.

    Register liveness here is over the 16 physical registers, represented
    as an [int] bitmask.  A [Call] is modelled as defining *all* registers:
    the calling convention keeps nothing alive in registers across a call
    (the allocator spills every interval that crosses one), and this makes
    region live-out sets — hence checkpoint stores — minimal and sound. *)

type item =
  | I of string Sweep_isa.Instr.t  (** a real instruction *)
  | L of string                    (** a label attached to this point *)

type term =
  | Tjmp of int
  | Tbr of Sweep_isa.Instr.cond * Sweep_isa.Reg.t * Sweep_isa.Reg.t * int * int
      (** taken block, fallthrough block *)
  | Tret_leaf                      (** jmp_reg link *)
  | Tret_nonleaf of int            (** reload link from the slot, then jump *)
  | Thalt

type block = {
  id : int;
  mutable items : item list;       (** execution order *)
  mutable term : term;
  is_loop_header : bool;
}

type func = {
  name : string;
  entry : int;                     (** always block 0 *)
  blocks : block array;
  is_leaf : bool;
  link_slot : int;                 (** meaningful for non-leaf functions *)
}

val succs : term -> int list

val all_regs_mask : int
val mask_of : Sweep_isa.Reg.t -> int
val mask_mem : int -> Sweep_isa.Reg.t -> bool
val regs_of_mask : int -> Sweep_isa.Reg.t list

val item_defs_mask : item -> int
(** Registers defined; [Call] returns {!all_regs_mask}. *)

val item_uses_mask : item -> int

val term_uses_mask : term -> int

val liveness : func -> int array
(** [liveness f] returns per-block live-out masks (fixpoint). *)

val block_label : func -> int -> string
(** Emission label of a block ("name" for the entry block,
    "name__bN" otherwise). *)
