(** Three-address code over virtual registers.

    The lowering pass produces, per function, a control-flow graph of
    {!block}s whose instructions use an unbounded supply of virtual
    registers; {!Regalloc} later maps them onto the 12 allocatable
    physical registers.  Loop headers are marked during lowering (the
    lowerer creates them), so no loop-reconstruction analysis is
    needed. *)

type vreg = int

type instr =
  | Movi of vreg * int
  | Mov of vreg * vreg
  | Bin of Sweep_isa.Instr.binop * vreg * vreg * vreg
  | Bini of Sweep_isa.Instr.binop * vreg * vreg * int
  | Set of Sweep_isa.Instr.cond * vreg * vreg * vreg
  | Load of vreg * vreg * int        (** rd <- M\[rs + off\] *)
  | Load_abs of vreg * int
  | Store of vreg * vreg * int       (** M\[rs + off\] <- rv *)
  | Store_abs of vreg * int
  | Call of string
      (** Arguments were already stored into the callee's parameter slots
          by preceding [Store_abs]s; a result, if used, is read back from
          the callee's result slot by a following [Load_abs]. *)

type term =
  | Jmp of int                                     (** block id *)
  | Br of Sweep_isa.Instr.cond * vreg * vreg * int * int
      (** taken target, fallthrough target *)
  | Ret
      (** Return; a result, if any, was stored to the function's result
          slot by a preceding instruction. *)

type block = {
  id : int;
  mutable instrs : instr list;  (** in execution order *)
  mutable term : term;
  mutable is_loop_header : bool;
}

type func = {
  fname : string;
  entry : int;
  mutable blocks : block array;  (** index = block id *)
  mutable vreg_count : int;
  is_leaf : bool;                (** no calls in the body *)
}

val defs : instr -> vreg list
val uses : instr -> vreg list
val term_uses : term -> vreg list
val succs : term -> int list

val pp_instr : Format.formatter -> instr -> unit
val pp_func : Format.formatter -> func -> unit
