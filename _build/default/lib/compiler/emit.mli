(** Linearisation of machine CFGs into an assembled {!Sweep_isa.Program.t}.

    Functions are emitted in declaration order; within a function, blocks
    in id order with fall-through jump elision.  A function's entry block
    is labelled with the function name so calls resolve directly. *)

val program :
  Frame.t -> main:string -> Mcfg.func list -> Sweep_isa.Program.t
