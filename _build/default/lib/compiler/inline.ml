open Sweep_lang.Ast

let counter = ref 0
let site_counter = ref 0

let rec size_of_stmts stmts = List.fold_left (fun a s -> a + size_of_stmt s) 0 stmts

and size_of_stmt = function
  | Assign _ | Set_global _ | Store _ | Call_stmt _ | Return _ -> 1
  | If (_, t, e) -> 1 + size_of_stmts t + size_of_stmts e
  | While (_, b) | For (_, _, _, b) -> 2 + size_of_stmts b

(* Returns appearing anywhere except as the final top-level statement
   make a callee uninlinable (they would need control-flow surgery). *)
let rec has_inner_return stmts =
  match stmts with
  | [] -> false
  | [ Return _ ] -> false
  | s :: rest -> stmt_contains_return s || has_inner_return rest

and stmt_contains_return = function
  | Return _ -> true
  | If (_, t, e) -> has_inner_return' t || has_inner_return' e
  | While (_, b) | For (_, _, _, b) -> has_inner_return' b
  | Assign _ | Set_global _ | Store _ | Call_stmt _ -> false

and has_inner_return' stmts = List.exists stmt_contains_return stmts

let inlinable ~max_size (f : func) =
  f.fname <> "main"
  && size_of_stmts f.body <= max_size
  && not (has_inner_return f.body)

(* Rename the callee's locals (params included) apart from the caller's. *)
let rec rename_stmt table = function
  | Assign (v, e) -> Assign (rename_var table v, rename_expr table e)
  | Set_global (g, e) -> Set_global (g, rename_expr table e)
  | Store (a, idx, v) -> Store (a, rename_expr table idx, rename_expr table v)
  | If (c, t, e) ->
    If (rename_expr table c, List.map (rename_stmt table) t,
        List.map (rename_stmt table) e)
  | While (c, b) -> While (rename_expr table c, List.map (rename_stmt table) b)
  | For (v, lo, hi, b) ->
    For (rename_var table v, rename_expr table lo, rename_expr table hi,
         List.map (rename_stmt table) b)
  | Call_stmt (f, args) -> Call_stmt (f, List.map (rename_expr table) args)
  | Return e -> Return (Option.map (rename_expr table) e)

and rename_expr table = function
  | Int n -> Int n
  | Var v -> Var (rename_var table v)
  | Global g -> Global g
  | Load (a, idx) -> Load (a, rename_expr table idx)
  | Binop (op, a, b) -> Binop (op, rename_expr table a, rename_expr table b)
  | Call (f, args) -> Call (f, List.map (rename_expr table) args)

and rename_var table v =
  match Hashtbl.find_opt table v with
  | Some v' -> v'
  | None ->
    let v' = Printf.sprintf "__i%d_%s" !site_counter v in
    Hashtbl.replace table v v';
    v'

(* Expand one call: bind arguments to renamed parameters, splice the
   renamed body, and turn a trailing [Return e] into an assignment to
   [result] (when requested). *)
let expand (callee : func) args ~result =
  incr counter;
  incr site_counter;
  let table = Hashtbl.create 8 in
  let binds =
    List.map2 (fun p arg -> Assign (rename_var table p, arg)) callee.params args
  in
  let body = List.map (rename_stmt table) callee.body in
  let rec rewrite_tail acc = function
    | [ Return e ] ->
      let tail =
        match (result, e) with
        | Some x, Some e -> [ Assign (x, e) ]
        | Some x, None -> [ Assign (x, Int 0) ]
        | None, _ -> []
      in
      List.rev_append acc tail
    | [] -> (
      match result with
      | Some x -> List.rev (Assign (x, Int 0) :: acc)
      | None -> List.rev acc)
    | s :: rest -> rewrite_tail (s :: acc) rest
  in
  binds @ rewrite_tail [] body

let rec transform_stmts env stmts = List.concat_map (transform_stmt env) stmts

and transform_stmt env stmt =
  match stmt with
  | Assign (x, Call (f, args))
    when Hashtbl.mem env f
         && List.for_all (fun a -> not (expr_has_call a)) args ->
    expand (Hashtbl.find env f) args ~result:(Some x)
  | Call_stmt (f, args)
    when Hashtbl.mem env f
         && List.for_all (fun a -> not (expr_has_call a)) args ->
    expand (Hashtbl.find env f) args ~result:None
  | Set_global (g, Call (f, args))
    when Hashtbl.mem env f
         && List.for_all (fun a -> not (expr_has_call a)) args ->
    let tmp = Printf.sprintf "__ir%d" (!site_counter + 1) in
    expand (Hashtbl.find env f) args ~result:(Some tmp)
    @ [ Set_global (g, Var tmp) ]
  | If (c, t, e) -> [ If (c, transform_stmts env t, transform_stmts env e) ]
  | While (c, b) -> [ While (c, transform_stmts env b) ]
  | For (v, lo, hi, b) -> [ For (v, lo, hi, transform_stmts env b) ]
  | Assign _ | Set_global _ | Store _ | Call_stmt _ | Return _ -> [ stmt ]

and expr_has_call = function
  | Int _ | Var _ | Global _ -> false
  | Load (_, e) -> expr_has_call e
  | Binop (_, a, b) -> expr_has_call a || expr_has_call b
  | Call _ -> true

let one_round ~max_size (prog : program) =
  let env = Hashtbl.create 8 in
  List.iter
    (fun f -> if inlinable ~max_size f then Hashtbl.replace env f.fname f)
    prog.funcs;
  let funcs =
    List.map (fun f -> { f with body = transform_stmts env f.body }) prog.funcs
  in
  { prog with funcs }

let program ?(max_size = 16) ?(rounds = 3) prog =
  counter := 0;
  let rec go n prog =
    if n = 0 then prog
    else begin
      let before = !counter in
      let prog' = one_round ~max_size prog in
      if !counter = before then prog' else go (n - 1) prog'
    end
  in
  let result = go rounds prog in
  validate result;
  result

let inlined_calls () = !counter
