module I = Sweep_isa.Instr
module Reg = Sweep_isa.Reg

type item =
  | I of string I.t
  | L of string

type term =
  | Tjmp of int
  | Tbr of I.cond * Reg.t * Reg.t * int * int
  | Tret_leaf
  | Tret_nonleaf of int
  | Thalt

type block = {
  id : int;
  mutable items : item list;
  mutable term : term;
  is_loop_header : bool;
}

type func = {
  name : string;
  entry : int;
  blocks : block array;
  is_leaf : bool;
  link_slot : int;
}

let succs = function
  | Tjmp t -> [ t ]
  | Tbr (_, _, _, t, f) -> [ t; f ]
  | Tret_leaf | Tret_nonleaf _ | Thalt -> []

let all_regs_mask = (1 lsl Reg.count) - 1
let mask_of r = 1 lsl r
let mask_mem m r = m land (1 lsl r) <> 0

let regs_of_mask m =
  let rec go r acc =
    if r < 0 then acc
    else go (r - 1) (if mask_mem m r then r :: acc else acc)
  in
  go (Reg.count - 1) []

let mask_of_list rs = List.fold_left (fun acc r -> acc lor mask_of r) 0 rs

let item_defs_mask = function
  | L _ -> 0
  | I (I.Call _) -> all_regs_mask
  | I ins -> mask_of_list (I.defs ins)

let item_uses_mask = function
  | L _ -> 0
  | I (I.Call _) -> 0
  | I ins -> mask_of_list (I.uses ins)

let term_uses_mask = function
  | Tbr (_, a, b, _, _) -> mask_of a lor mask_of b
  | Tret_leaf -> mask_of Reg.link
  | Tjmp _ | Tret_nonleaf _ | Thalt -> 0

(* Backward dataflow: live_out(b) = U live_in(s); live_in from a reverse
   scan of the block's items and terminator. *)
let live_in_of_block blk live_out =
  let after_items = live_out lor term_uses_mask blk.term in
  List.fold_left
    (fun live item ->
      live land lnot (item_defs_mask item) lor item_uses_mask item)
    after_items
    (List.rev blk.items)

let liveness f =
  let n = Array.length f.blocks in
  let live_out = Array.make n 0 in
  let live_in = Array.make n 0 in
  let changed = ref true in
  while !changed do
    changed := false;
    for i = n - 1 downto 0 do
      let blk = f.blocks.(i) in
      let out =
        List.fold_left (fun acc s -> acc lor live_in.(s)) 0 (succs blk.term)
      in
      let inn = live_in_of_block blk out in
      if out <> live_out.(i) || inn <> live_in.(i) then begin
        live_out.(i) <- out;
        live_in.(i) <- inn;
        changed := true
      end
    done
  done;
  live_out

let block_label f id =
  if id = f.entry then f.name else Printf.sprintf "%s__b%d" f.name id
