(** Linear-scan register allocation, TAC → machine CFG.

    Virtual registers get single live intervals over a linearisation of
    the CFG (conservatively extended to block boundaries where the vreg is
    live).  Allocation uses the 12 allocatable registers; intervals that
    cross a call site are force-spilled because the convention has no
    callee-saved registers.  Spilled values live in per-function frame
    slots; each use/def is rewritten through the reserved scratch
    registers r12/r13.

    Also performs a small dead-code elimination on the TAC first (drops
    side-effect-free instructions whose destination is never read), which
    keeps the interval count honest. *)

type result = {
  mfunc : Mcfg.func;
  spills : int;  (** number of vregs that ended up in memory *)
}

val run : Frame.t -> main:string -> Tac.func -> result
(** Allocate and rewrite one function.  [main] names the program entry
    function, whose returns become [Thalt]. *)
