(** NVP with a write-through volatile cache (paper Fig. 1(b)).

    Loads hit the SRAM cache; every committed store pays the full NVM
    write latency (no write coalescing, no out-of-order pipeline to hide
    it — §2.2's "straightforward but naive" design).  JIT checkpointing
    covers only the register file; the cache needs no backup because NVM
    always holds every committed value. *)

include Sweep_machine.Machine_intf.S

val packed :
  Sweep_machine.Config.t -> Sweep_isa.Program.t ->
  Sweep_machine.Machine_intf.packed
