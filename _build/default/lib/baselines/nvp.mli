(** The cache-free nonvolatile processor (paper §2.1, Fig. 1(a)) — the
    speedup baseline of every figure.

    Every load/store goes straight to NVM; a voltage monitor triggers a
    JIT checkpoint of the register file into NVFFs at the backup
    threshold, and the system restores and resumes at the restore
    threshold. *)

include Sweep_machine.Machine_intf.S

val packed :
  Sweep_machine.Config.t -> Sweep_isa.Program.t ->
  Sweep_machine.Machine_intf.packed
