(** Costs shared by the JIT-checkpointing designs. *)

val reg_backup : Sweep_energy.Energy_config.t -> Sweep_machine.Cost.t
(** Checkpoint all registers plus the PC into NVFFs. *)

val reg_restore : Sweep_energy.Energy_config.t -> Sweep_machine.Cost.t

val lines_backup :
  Sweep_energy.Energy_config.t -> parallel:int -> int -> Sweep_machine.Cost.t
(** [lines_backup e ~parallel n]: back up [n] cachelines with the given
    transfer parallelism (NVSRAM's parallel data movement, §2.2). *)

val lines_restore :
  Sweep_energy.Energy_config.t -> parallel:int -> int -> Sweep_machine.Cost.t
