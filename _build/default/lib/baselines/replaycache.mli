(** ReplayCache (paper Fig. 1(d), §2.2) — the state-of-the-art baseline.

    A write-back volatile cache where the compiler follows every store
    with a [clwb] of its cacheline and fences at each region end, so a
    region's stores are persistent before the next region may reuse its
    registers.  JIT checkpointing covers the register file only; on
    recovery, the stores still pending at the failure are replayed
    sequentially (we charge the replay cost and re-apply the pending
    queue — see DESIGN.md on the store-integrity shortcut).

    Pending clwbs drain through a small background write queue; a full
    queue stalls the next clwb, and a fence stalls until the queue is
    empty — this is where ReplayCache loses persist coalescing (one
    64-byte NVM write per store, Fig. 16). *)

include Sweep_machine.Machine_intf.S

val packed :
  Sweep_machine.Config.t -> Sweep_isa.Program.t ->
  Sweep_machine.Machine_intf.packed
