(** NvMR-style memory renaming baseline (paper §6.7).

    Modelled as epochs delimited by JIT backups: between backups, dirty
    write-backs are quarantined in a persistent rename buffer (renamed
    NVM locations) so the epoch can be rolled back; cache misses consult
    the rename buffer before NVM.  A backup commits the epoch (drains the
    rename buffer to the home locations) and snapshots registers plus
    dirty cachelines.  Unlike the other JIT designs, NvMR keeps executing
    after a backup instead of waiting for the restore voltage — its
    defining advantage — and rolls back to the last backup if power dies
    first.  A full rename buffer forces an early backup.

    See DESIGN.md for what this keeps and drops relative to the real
    NvMR microarchitecture. *)

include Sweep_machine.Machine_intf.S

val packed :
  Sweep_machine.Config.t -> Sweep_isa.Program.t ->
  Sweep_machine.Machine_intf.packed
