lib/baselines/jit_common.ml: Sweep_energy Sweep_isa Sweep_machine
