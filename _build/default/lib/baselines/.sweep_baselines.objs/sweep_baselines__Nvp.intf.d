lib/baselines/nvp.mli: Sweep_isa Sweep_machine
