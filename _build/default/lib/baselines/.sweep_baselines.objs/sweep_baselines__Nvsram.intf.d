lib/baselines/nvsram.mli: Sweep_isa Sweep_machine
