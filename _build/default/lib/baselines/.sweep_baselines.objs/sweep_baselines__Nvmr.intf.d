lib/baselines/nvmr.mli: Sweep_isa Sweep_machine
