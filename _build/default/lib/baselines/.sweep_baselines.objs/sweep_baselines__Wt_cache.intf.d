lib/baselines/wt_cache.mli: Sweep_isa Sweep_machine
