lib/baselines/nvmr.ml: Array Jit_common List Sweep_energy Sweep_isa Sweep_machine Sweep_mem Sweepcache_core
