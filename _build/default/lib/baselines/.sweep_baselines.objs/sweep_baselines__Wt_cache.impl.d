lib/baselines/wt_cache.ml: Jit_common Sweep_energy Sweep_isa Sweep_machine Sweep_mem
