lib/baselines/jit_common.mli: Sweep_energy Sweep_machine
