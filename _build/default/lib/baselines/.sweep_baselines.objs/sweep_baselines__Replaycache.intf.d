lib/baselines/replaycache.mli: Sweep_isa Sweep_machine
