(** NVSRAM: a write-back volatile cache with a nonvolatile counterpart
    used as JIT-checkpoint storage (paper Fig. 1(c), §2.2).

    At the (raised) backup threshold, the design copies the register file
    and cachelines into the NVM counterpart with parallel transfers; on
    restore it reinstalls them (dirty lines come back dirty — their data
    exists only in the backup until eventually written back).

    {!Dirty} backs up only dirty cachelines (the paper's default NVSRAM,
    after Liu et al.); {!Entire} backs up the whole cache (NVSRAM-E in
    Figs. 15/16).  Both must reserve energy for the worst case, which is
    why their thresholds sit higher than NVP's (Table 1: 3.2/3.4). *)

module Dirty : sig
  include Sweep_machine.Machine_intf.S

  val packed :
    Sweep_machine.Config.t -> Sweep_isa.Program.t ->
    Sweep_machine.Machine_intf.packed
end

module Entire : sig
  include Sweep_machine.Machine_intf.S

  val packed :
    Sweep_machine.Config.t -> Sweep_isa.Program.t ->
    Sweep_machine.Machine_intf.packed
end
