module E = Sweep_energy.Energy_config
module Cost = Sweep_machine.Cost

let reg_count = float_of_int (Sweep_isa.Reg.count + 1)

let reg_backup (e : E.t) =
  Cost.make ~ns:(reg_count *. e.backup_reg_ns) ~joules:(reg_count *. e.e_reg_backup)

let reg_restore (e : E.t) =
  Cost.make ~ns:(reg_count *. e.backup_reg_ns) ~joules:(reg_count *. e.e_reg_restore)

let lines_backup (e : E.t) ~parallel n =
  let n = float_of_int n in
  let par = float_of_int (max 1 parallel) in
  Cost.make ~ns:(n /. par *. e.backup_line_ns) ~joules:(n *. e.e_line_backup)

let lines_restore (e : E.t) ~parallel n =
  let n = float_of_int n in
  let par = float_of_int (max 1 parallel) in
  Cost.make ~ns:(n /. par *. e.backup_line_ns) ~joules:(n *. e.e_line_restore)
