(* Observability-layer tests: sinks (null / ring / counting / filtered /
   JSONL / Chrome trace), the metrics registry, and the guarantee the
   rest of the stack relies on — identical event streams regardless of
   executor worker count. *)
module Obs = Sweep_obs
module Ev = Sweep_obs.Event
module Sink = Sweep_obs.Sink
module Ring = Sweep_obs.Ring
module Metrics = Sweep_obs.Metrics
module C = Sweep_exp.Exp_common
module Jobs = Sweep_exp.Jobs
module Executor = Sweep_exp.Executor
module Results = Sweep_exp.Results
module H = Sweep_sim.Harness

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Minimal JSON validator (no external JSON dependency): accepts the
   grammar the sinks emit and fails on anything malformed. *)

exception Bad_json of string

let validate_json s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at %d" msg !pos)) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') -> advance (); skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let parse_string () =
    expect '"';
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
        advance ();
        match peek () with
        | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') ->
          advance (); go ()
        | Some 'u' ->
          advance ();
          for _ = 1 to 4 do
            match peek () with
            | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
            | _ -> fail "bad \\u escape"
          done;
          go ()
        | _ -> fail "bad escape")
      | Some c when Char.code c < 0x20 -> fail "control char in string"
      | Some _ -> advance (); go ()
    in
    go ()
  in
  let parse_number () =
    let digits () =
      let any = ref false in
      let rec go () =
        match peek () with
        | Some '0' .. '9' -> any := true; advance (); go ()
        | _ -> ()
      in
      go ();
      if not !any then fail "expected digit"
    in
    (match peek () with Some '-' -> advance () | _ -> ());
    digits ();
    (match peek () with
    | Some '.' -> advance (); digits ()
    | _ -> ());
    match peek () with
    | Some ('e' | 'E') ->
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      digits ()
    | _ -> ()
  in
  let literal w =
    if !pos + String.length w <= n && String.sub s !pos (String.length w) = w
    then pos := !pos + String.length w
    else fail ("expected " ^ w)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> parse_string ()
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then advance ()
      else begin
        let rec members () =
          skip_ws ();
          parse_string ();
          skip_ws ();
          expect ':';
          parse_value ();
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); members ()
          | Some '}' -> advance ()
          | _ -> fail "expected , or }"
        in
        members ()
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then advance ()
      else begin
        let rec elements () =
          parse_value ();
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); elements ()
          | Some ']' -> advance ()
          | _ -> fail "expected , or ]"
        in
        elements ()
      end
    | Some 't' -> literal "true"
    | Some 'f' -> literal "false"
    | Some 'n' -> literal "null"
    | Some ('-' | '0' .. '9') -> parse_number ()
    | _ -> fail "unexpected character"
  in
  parse_value ();
  skip_ws ();
  if !pos <> n then fail "trailing garbage"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let tmp_path name =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "sweep_obs_test_%d_%s" (Unix.getpid ()) name)

(* ------------------------------------------------------------------ *)
(* Sinks                                                               *)

let test_null_sink_off () =
  Alcotest.(check bool) "off by default" false (Sink.on ());
  (* Emitting with no sink installed must be harmless. *)
  Sink.emit ~ns:0.0 Ev.Halt;
  Sink.flush ()

let test_with_sink_scoping () =
  let sink, count = Sink.counting () in
  Sink.with_sink sink (fun () ->
      Alcotest.(check bool) "on inside" true (Sink.on ());
      Sink.emit ~ns:1.0 Ev.Buffer_bypass;
      Sink.emit ~ns:2.0 (Ev.Voltage { volts = 3.1 }));
  Alcotest.(check bool) "off after" false (Sink.on ());
  check Alcotest.int "both counted" 2 (count ());
  (* with_sink clears even when the body raises. *)
  (try
     Sink.with_sink (fst (Sink.counting ())) (fun () -> failwith "boom")
   with Failure _ -> ());
  Alcotest.(check bool) "off after exception" false (Sink.on ())

let test_ring_sink () =
  let ring = Ring.create ~capacity:3 in
  let sink = Ring.sink ring in
  for i = 1 to 5 do
    sink.Sink.write ~ns:(float_of_int i) (Ev.Reboot { outage = i })
  done;
  check Alcotest.int "total" 5 (Ring.total ring);
  check Alcotest.int "length capped" 3 (Ring.length ring);
  check Alcotest.int "dropped" 2 (Ring.dropped ring);
  let kept = List.map (fun e -> e.Ring.event) (Ring.to_list ring) in
  check
    Alcotest.(list int)
    "oldest-first, newest kept" [ 3; 4; 5 ]
    (List.map (function Ev.Reboot { outage } -> outage | _ -> -1) kept);
  Ring.clear ring;
  check Alcotest.int "cleared" 0 (Ring.length ring);
  check Alcotest.int "clear resets total" 0 (Ring.total ring)

let test_filtered_sink () =
  let ring = Ring.create ~capacity:16 in
  let sink = Sink.filtered ~cats:[ Ev.Power ] (Ring.sink ring) in
  sink.Sink.write ~ns:0.0 (Ev.Power_down { volts = 2.8 });
  sink.Sink.write ~ns:1.0 Ev.Buffer_bypass;
  sink.Sink.write ~ns:2.0 (Ev.Reboot { outage = 1 });
  check Alcotest.int "only power kept" 2 (Ring.length ring)

let test_tee_sink () =
  let a, ca = Sink.counting () in
  let b, cb = Sink.counting () in
  let t = Sink.tee a b in
  t.Sink.write ~ns:0.0 Ev.Halt;
  t.Sink.write ~ns:1.0 Ev.Halt;
  check Alcotest.int "left" 2 (ca ());
  check Alcotest.int "right" 2 (cb ())

let test_jsonl_sink () =
  let path = tmp_path "events.jsonl" in
  let sink = Obs.Jsonl_sink.create path in
  Sink.with_sink sink (fun () ->
      Sink.emit ~ns:1.5 (Ev.Region_begin { seq = 1; buf = 0 });
      Sink.emit ~ns:2.5 (Ev.Job_done { key = "a\"b\\c"; elapsed_s = 0.25 });
      Sink.emit ~ns:3.5 (Ev.Backup { ok = false; joules = 1e-6 }));
  let lines =
    String.split_on_char '\n' (read_file path)
    |> List.filter (fun l -> l <> "")
  in
  Sys.remove path;
  check Alcotest.int "three lines" 3 (List.length lines);
  List.iter validate_json lines;
  Alcotest.(check bool) "name present" true
    (String.length (List.hd lines) > 0
    && String.sub (List.hd lines) 0 1 = "{")

let test_chrome_trace_valid_json () =
  let path = tmp_path "trace.json" in
  let sink = Obs.Chrome_trace.create path in
  Sink.with_sink sink (fun () ->
      Sink.emit ~ns:0.0 (Ev.Region_begin { seq = 1; buf = 0 });
      Sink.emit ~ns:50.0 (Ev.Cache_miss { addr = 4096; write = true });
      Sink.emit ~ns:80.0 (Ev.Waw_stall { seq = 1; ns = 12.0 });
      Sink.emit ~ns:100.0 (Ev.Region_end { seq = 1; buf = 0 });
      Sink.emit ~ns:100.0
        (Ev.Buf_phase
           { buf = 0; seq = 1; phase = Ev.Fill; start_ns = 0.0; end_ns = 100.0 });
      Sink.emit ~ns:100.0
        (Ev.Buf_phase
           {
             buf = 0;
             seq = 1;
             phase = Ev.Flush;
             start_ns = 100.0;
             end_ns = 140.0;
           });
      Sink.emit ~ns:150.0 (Ev.Power_down { volts = 2.79 });
      Sink.emit ~ns:5000.0 (Ev.Reboot { outage = 1 });
      Sink.emit ~ns:5000.0 (Ev.Voltage { volts = 3.3 });
      Sink.emit ~ns:5100.0 (Ev.Job_start { key = "k" });
      Sink.emit ~ns:5200.0 (Ev.Job_done { key = "k"; elapsed_s = 0.1 });
      Sink.emit ~ns:6000.0 Ev.Halt);
  let body = read_file path in
  Sys.remove path;
  validate_json body;
  let contains needle =
    let nl = String.length needle and bl = String.length body in
    let rec go i = i + nl <= bl && (String.sub body i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "has traceEvents" true (contains "\"traceEvents\"");
  Alcotest.(check bool) "region span" true (contains "region 1");
  Alcotest.(check bool) "buffer phase span" true (contains "fill");
  Alcotest.(check bool) "off span" true (contains "\"off\"");
  Alcotest.(check bool) "voltage counter" true (contains "capacitor V")

let test_chrome_trace_filter () =
  let path = tmp_path "trace_filtered.json" in
  let sink = Obs.Chrome_trace.create ~filter:[ Ev.Power ] path in
  Sink.with_sink sink (fun () ->
      Sink.emit ~ns:0.0 (Ev.Region_begin { seq = 1; buf = 0 });
      Sink.emit ~ns:1.0 (Ev.Power_down { volts = 2.8 }));
  let body = read_file path in
  Sys.remove path;
  validate_json body;
  let contains needle =
    let nl = String.length needle and bl = String.length body in
    let rec go i = i + nl <= bl && (String.sub body i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "power kept" true (contains "\"off\"");
  Alcotest.(check bool) "region dropped" false (contains "region 1")

let test_event_category_names () =
  List.iter
    (fun c ->
      check
        (Alcotest.option
           (Alcotest.testable
              (fun fmt c -> Format.pp_print_string fmt (Ev.category_name c))
              ( = )))
        "roundtrip" (Some c)
        (Ev.category_of_name (Ev.category_name c)))
    Ev.all_categories;
  Alcotest.(check bool) "unknown rejected" true
    (Ev.category_of_name "nonsense" = None)

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)

let test_metrics_counter_gauge () =
  Metrics.reset ();
  let c = Metrics.counter "t.count" in
  Metrics.inc c;
  Metrics.add c 4;
  check Alcotest.int "counter" 5 (Metrics.counter_value c);
  (* Same name returns the same instrument. *)
  Metrics.inc (Metrics.counter "t.count");
  check Alcotest.int "shared handle" 6 (Metrics.counter_value c);
  let g = Metrics.gauge "t.gauge" in
  Metrics.set g 2.0;
  Metrics.set_max g 1.0;
  check (Alcotest.float 0.0) "set_max keeps high water" 2.0
    (Metrics.gauge_value g);
  Metrics.set_max g 7.5;
  check (Alcotest.float 0.0) "set_max raises" 7.5 (Metrics.gauge_value g)

let test_metrics_labels_and_mismatch () =
  Metrics.reset ();
  let a = Metrics.counter ~labels:[ ("b", "2"); ("a", "1") ] "t.lbl" in
  let b = Metrics.counter ~labels:[ ("a", "1"); ("b", "2") ] "t.lbl" in
  Metrics.inc a;
  Metrics.inc b;
  (* Label order is canonicalised, so both handles hit one series. *)
  check Alcotest.int "canonical labels" 2 (Metrics.counter_value a);
  Alcotest.check_raises "kind mismatch"
    (Invalid_argument "Metrics: t.lbl{a=1,b=2} is not a gauge")
    (fun () -> ignore (Metrics.gauge ~labels:[ ("a", "1"); ("b", "2") ] "t.lbl"))

let test_metrics_histogram_snapshot_diff () =
  Metrics.reset ();
  let h = Metrics.histogram "t.hist" ~buckets:[| 1.0; 10.0 |] in
  Metrics.observe h 0.5;
  Metrics.observe h 5.0;
  Metrics.observe h 100.0;
  let before = Metrics.snapshot () in
  Metrics.observe h 0.25;
  let after = Metrics.snapshot () in
  let d = Metrics.diff ~before ~after in
  (match List.assoc_opt "t.hist" d with
  | Some (Metrics.Histo { count; sum; buckets }) ->
    check Alcotest.int "diff count" 1 count;
    check (Alcotest.float 1e-9) "diff sum" 0.25 sum;
    (match buckets with
    | (b1, n1) :: _ ->
      check (Alcotest.float 0.0) "first bound" 1.0 b1;
      check Alcotest.int "first bucket" 1 n1
    | [] -> Alcotest.fail "no buckets")
  | _ -> Alcotest.fail "histogram missing from diff");
  (* Reset zeroes values but keeps the registration alive. *)
  Metrics.reset ();
  Metrics.observe h 2.0;
  match List.assoc_opt "t.hist" (Metrics.snapshot ()) with
  | Some (Metrics.Histo { count; _ }) -> check Alcotest.int "post-reset" 1 count
  | _ -> Alcotest.fail "histogram lost by reset"

let test_metrics_disabled_guard () =
  Metrics.set_enabled false;
  Alcotest.(check bool) "disabled by default" false (Metrics.enabled ());
  Metrics.set_enabled true;
  Alcotest.(check bool) "enabled" true (Metrics.enabled ());
  Metrics.set_enabled false

let test_mstats_publish () =
  Metrics.reset ();
  let st = Sweep_machine.Mstats.create () in
  st.Sweep_machine.Mstats.instructions <- 42;
  st.Sweep_machine.Mstats.buffer_peak <- 7;
  Sweep_machine.Mstats.publish ~labels:[ ("design", "test") ] st;
  check Alcotest.int "published instr" 42
    (Metrics.counter_value
       (Metrics.counter ~labels:[ ("design", "test") ] "sim.instructions"));
  check (Alcotest.float 0.0) "published peak" 7.0
    (Metrics.gauge_value
       (Metrics.gauge ~labels:[ ("design", "test") ] "sim.buffer_peak"))

(* ------------------------------------------------------------------ *)
(* Worker-count independence: the same job matrix emits the same number
   of events at -j 1 and -j 4 (the simulation stream is per-job
   deterministic; only interleaving may differ). *)

let test_event_counts_j1_equals_j4 () =
  let matrix () =
    Jobs.matrix ~exp:"t_obs" ~scale:0.05
      [ C.setting H.Nvp; C.sweep_empty_bit ]
      [ "sha"; "dijkstra" ]
  in
  let count workers =
    Results.clear ();
    let sink, count = Sink.counting () in
    Sink.with_sink sink (fun () -> Executor.execute ~workers (matrix ()));
    count ()
  in
  let c1 = count 1 in
  let c4 = count 4 in
  Alcotest.(check bool) "events emitted" true (c1 > 0);
  check Alcotest.int "j1 = j4 event count" c1 c4;
  Results.clear ()

(* ------------------------------------------------------------------ *)
(* Results schema (v2): schema_version + ISO-8601 ts on every line.    *)

let test_results_schema_v2 () =
  let summary =
    {
      C.outcome =
        {
          Sweep_sim.Driver.completed = true;
          on_ns = 1.0;
          off_ns = 0.0;
          outages = 0;
          deaths = 0;
          backups = 0;
          failed_backups = 0;
          compute_joules = 0.0;
          backup_joules = 0.0;
          restore_joules = 0.0;
          quiescent_joules = 0.0;
          instructions = 1;
          injected_faults = 0;
        };
      mstats = Sweep_machine.Mstats.create ();
      miss_rate = 0.0;
      nvm_writes = 0;
    }
  in
  let line =
    Results.json_line ~ts:0.0 ~exp:"e" ~key:"k" ~design:"d" ~label:"l"
      ~power:"p" ~bench:"b" ~scale:1.0 ~elapsed_s:0.0 summary
  in
  validate_json line;
  let prefix = "{\"schema_version\":2,\"ts\":\"1970-01-01T00:00:00Z\"" in
  check Alcotest.string "v2 prefix" prefix
    (String.sub line 0 (String.length prefix));
  check Alcotest.string "epoch render" "2025-08-05T00:00:00Z"
    (Results.iso8601 1754352000.0)

(* ------------------------------------------------------------------ *)
(* Ring drain and event round-trip parsing.                            *)

let test_ring_drain_to_marks_truncation () =
  let ring = Ring.create ~capacity:3 in
  let sink = Ring.sink ring in
  for i = 1 to 5 do
    sink.Sink.write ~ns:(float_of_int i) (Ev.Reboot { outage = i })
  done;
  let drained = Ring.create ~capacity:16 in
  Ring.drain_to ring (Ring.sink drained);
  let events = List.map (fun e -> e.Ring.event) (Ring.to_list drained) in
  check Alcotest.int "dropped marker + retained window" 4 (List.length events);
  (match events with
  | Ev.Dropped { count } :: rest ->
    check Alcotest.int "dropped count" 2 count;
    check
      Alcotest.(list int)
      "window replayed oldest-first" [ 3; 4; 5 ]
      (List.map (function Ev.Reboot { outage } -> outage | _ -> -1) rest)
  | _ -> Alcotest.fail "first drained event must be Dropped");
  (* No wrap -> no marker. *)
  let small = Ring.create ~capacity:8 in
  (Ring.sink small).Sink.write ~ns:1.0 Ev.Halt;
  let out = Ring.create ~capacity:8 in
  Ring.drain_to small (Ring.sink out);
  check Alcotest.int "no marker when nothing dropped" 1 (Ring.length out)

let test_event_of_parts_roundtrip () =
  (* volts is rendered %.4f: use representable values. *)
  let events =
    [
      Ev.Region_begin { seq = 3; buf = 1 };
      Ev.Region_end { seq = 3; buf = 1 };
      Ev.Buf_phase
        { buf = 2; seq = 9; phase = Ev.Drain; start_ns = 10.0; end_ns = 32.5 };
      Ev.Buf_wait { buf = 0; ns = 12.0 };
      Ev.Waw_stall { seq = 4; ns = 7.25 };
      Ev.Buffer_search { scanned = 5; hit = true };
      Ev.Buffer_bypass;
      Ev.Cache_miss { addr = 4096; write = false };
      Ev.Cache_writeback { base = 64 };
      Ev.Power_down { volts = 2.8125 };
      Ev.Death { volts = 2.8125 };
      Ev.Reboot { outage = 7 };
      Ev.Backup { ok = false; joules = 1.5e-7 };
      Ev.Backup_lines { lines = 12 };
      Ev.Restore { joules = 2.5e-8 };
      Ev.Reexec { discarded = 166 };
      Ev.Replay { stores = 42 };
      Ev.Voltage { volts = 3.25 };
      Ev.Halt;
      Ev.Dropped { count = 99 };
      Ev.Job_start { key = "a|b" };
      Ev.Job_done { key = "a|b"; elapsed_s = 0.25 };
      Ev.Job_failed { key = "a|b"; error = "Driver.Stagnation(\"x\")" };
      Ev.Fault_inject { trigger = "instr"; detail = "instr 812 +1 nested" };
      Ev.Fault_torn { base = 4096; words = 7 };
      Ev.Fault_stuck { bit = 1; buf = 2; seq = 14 };
      Ev.Mark { name = "redo seq 3 (2 lines)"; cat = Ev.Buffer };
      Ev.Tune_round { strategy = "halving"; round = 2; points = 120; benches = 1 };
      Ev.Tune_eval { key = "tune:a|b"; cached = true };
      Ev.Tune_eval { key = "tune:a|b"; cached = false };
      Ev.Tune_frontier { size = 11; evals = 200 };
      Ev.Heartbeat
        { every = 1_000_000; instructions = 3_000_000; reboots = 4;
          nvm_writes = 512 };
      Ev.Tune_prune { key = "tune:a|b"; budget_ns = 1.25e9 };
      Ev.Job_retry { key = "a|b"; attempt = 2 };
      Ev.Cache_hit { key = "a|b" };
      Ev.Worker_spawn { worker = 3; pid = 4321 };
      Ev.Worker_dead { worker = 3; pid = 4321; reason = "heartbeat timeout" };
    ]
  in
  List.iter
    (fun ev ->
      let line = Obs.Jsonl_sink.render_line ~ns:123.0 ev in
      validate_json line;
      match Sweep_analyze.Trace_reader.parse_line line with
      | None -> Alcotest.fail ("unparseable: " ^ line)
      | Some { Sweep_analyze.Trace_reader.ns; event } ->
        check (Alcotest.float 0.0) "ns" 123.0 ns;
        if event <> ev then Alcotest.fail ("round-trip changed: " ^ line))
    events;
  (* Unknown tags and ill-typed payloads must not masquerade as events. *)
  check Alcotest.bool "unknown tag" true
    (Ev.of_parts ~tag:"warp_drive" ~name:"x" ~cat:"exec" ~args:[] = None);
  check Alcotest.bool "missing field" true
    (Ev.of_parts ~tag:"reboot" ~name:"reboot" ~cat:"power" ~args:[] = None);
  check Alcotest.bool "ill-typed field" true
    (Ev.of_parts ~tag:"reboot" ~name:"reboot" ~cat:"power"
       ~args:[ ("outage", Ev.Str "seven") ]
    = None)

(* Fault events must survive a capped ring: a --trace-cap window that
   happens to scroll past the crash would otherwise swallow the one
   event that explains the trace. *)
let test_ring_pins_fault_events () =
  let ring = Ring.create ~capacity:3 in
  let sink = Ring.sink ring in
  sink.Sink.write ~ns:1.0
    (Ev.Fault_inject { trigger = "instr"; detail = "instr 1" });
  for i = 2 to 8 do
    sink.Sink.write ~ns:(float_of_int i) (Ev.Reboot { outage = i })
  done;
  let drained = Ring.create ~capacity:16 in
  Ring.drain_to ring (Ring.sink drained);
  let events = List.map (fun e -> e.Ring.event) (Ring.to_list drained) in
  (match events with
  | Ev.Dropped { count } :: Ev.Fault_inject _ :: rest ->
    (* 5 events were evicted: 4 reboots lost + 1 fault preserved. *)
    check Alcotest.int "lost excludes pinned" 4 count;
    check Alcotest.int "window intact" 3 (List.length rest)
  | _ ->
    Alcotest.fail "expected Dropped marker then the pinned fault event");
  Ring.clear ring;
  check Alcotest.int "clear drops pinned" 0
    (List.length (Ring.pinned ring))

let test_sink_spy () =
  let seen = ref [] in
  check Alcotest.bool "off before spy" false (Sink.on ());
  let detach = Sink.spy (fun ~ns:_ ev -> seen := ev :: !seen) in
  check Alcotest.bool "spy turns sink on" true (Sink.on ());
  Sink.emit ~ns:1.0 Ev.Halt;
  Sink.emit ~ns:2.0 (Ev.Reboot { outage = 1 });
  detach ();
  Sink.emit ~ns:3.0 Ev.Halt;
  check Alcotest.bool "off after detach" false (Sink.on ());
  check Alcotest.int "observed while attached" 2 (List.length !seen)

let suite =
  [
    Alcotest.test_case "null sink off" `Quick test_null_sink_off;
    Alcotest.test_case "with_sink scoping" `Quick test_with_sink_scoping;
    Alcotest.test_case "ring sink" `Quick test_ring_sink;
    Alcotest.test_case "filtered sink" `Quick test_filtered_sink;
    Alcotest.test_case "tee sink" `Quick test_tee_sink;
    Alcotest.test_case "jsonl sink" `Quick test_jsonl_sink;
    Alcotest.test_case "chrome trace valid json" `Quick
      test_chrome_trace_valid_json;
    Alcotest.test_case "chrome trace filter" `Quick test_chrome_trace_filter;
    Alcotest.test_case "category names" `Quick test_event_category_names;
    Alcotest.test_case "metrics counter/gauge" `Quick
      test_metrics_counter_gauge;
    Alcotest.test_case "metrics labels" `Quick test_metrics_labels_and_mismatch;
    Alcotest.test_case "metrics histogram/diff" `Quick
      test_metrics_histogram_snapshot_diff;
    Alcotest.test_case "metrics enable guard" `Quick
      test_metrics_disabled_guard;
    Alcotest.test_case "mstats publish" `Quick test_mstats_publish;
    Alcotest.test_case "event counts j1=j4" `Quick
      test_event_counts_j1_equals_j4;
    Alcotest.test_case "results schema v2" `Quick test_results_schema_v2;
    Alcotest.test_case "ring drain_to truncation marker" `Quick
      test_ring_drain_to_marks_truncation;
    Alcotest.test_case "event of_parts round-trip" `Quick
      test_event_of_parts_roundtrip;
    Alcotest.test_case "ring pins fault events" `Quick
      test_ring_pins_fault_events;
    Alcotest.test_case "sink spy" `Quick test_sink_spy;
  ]
