(* Per-PC attribution profiler tests.

   The load-bearing property is conservation: the per-PC counters are
   an exact decomposition of the whole-run totals the simulator already
   reports.  Over the pinned 9-job bench matrix (the same design ×
   benchmark × harvested-power set `sweeptrace bench` gates on) we
   require, as exact integer identities per job:

     Σ count            = outcome.instructions
     Σ nvm + ckpt_nvm   = NVM write events across Driver.run
     Σ cache_misses     = cache misses across Driver.run
     Σ crashes          = outages (every power cycle strikes one PC)
     Σ reexec           = Attrib.total_reexec  ≤  Σ count

   plus serialisation properties: profiles are byte-deterministic,
   round-trip through the Profile_view reader, and self-diff clean. *)

module H = Sweep_sim.Harness
module Driver = Sweep_sim.Driver
module Profile = Sweep_sim.Profile
module Attrib = Sweep_obs.Attrib
module Pipeline = Sweep_compiler.Pipeline
module Program = Sweep_isa.Program
module Decoded = Sweep_isa.Decoded
module M = Sweep_machine.Machine_intf
module Nvm = Sweep_mem.Nvm
module Cache = Sweep_mem.Cache
module C = Sweep_exp.Exp_common
module Jobs = Sweep_exp.Jobs
module A = Sweep_analyze

let check = Alcotest.check

(* One bench-matrix job, instrumented by hand so the NVM / cache
   counters can be snapshotted after machine construction (program
   load writes NVM before Driver.run starts; attribution only covers
   the run). *)
let run_instrumented job =
  let s = job.Jobs.setting in
  let w = Sweep_workloads.Registry.find job.Jobs.bench in
  let ast = Sweep_workloads.Workload.program ~scale:job.Jobs.scale w in
  let compiled =
    H.compile ~options:s.C.options s.C.design ast
  in
  let m = H.machine ~config:s.C.config s.C.design compiled.Pipeline.program in
  let power = Jobs.to_power job.Jobs.power in
  let w0 = Nvm.write_events (M.nvm m) in
  let mi0 = match M.cache m with Some c -> Cache.misses c | None -> 0 in
  let at =
    Attrib.create
      ~len:(Array.length compiled.Pipeline.program.Program.code)
  in
  let outcome = Driver.run ~attrib:at m ~power in
  let w1 = Nvm.write_events (M.nvm m) in
  let mi1 = match M.cache m with Some c -> Cache.misses c | None -> 0 in
  (compiled, at, outcome, w1 - w0, mi1 - mi0)

let test_reconcile_bench_matrix () =
  List.iter
    (fun job ->
      let key = Jobs.key job in
      let compiled, at, outcome, nvm_delta, miss_delta =
        run_instrumented job
      in
      let tt = Attrib.totals at in
      check Alcotest.int
        (key ^ ": instructions")
        outcome.Driver.instructions tt.Attrib.t_instructions;
      check Alcotest.int
        (key ^ ": nvm writes")
        nvm_delta
        (tt.Attrib.t_nvm_writes + tt.Attrib.t_ckpt_nvm_writes);
      check Alcotest.int
        (key ^ ": cache misses")
        miss_delta tt.Attrib.t_cache_misses;
      check Alcotest.int
        (key ^ ": crashes = outages")
        outcome.Driver.outages tt.Attrib.t_crashes;
      check Alcotest.int
        (key ^ ": total_reexec")
        (Attrib.total_reexec at) tt.Attrib.t_reexec;
      Alcotest.(check bool)
        (key ^ ": reexec bounded by retirement")
        true
        (tt.Attrib.t_reexec >= 0
        && tt.Attrib.t_reexec <= tt.Attrib.t_instructions);
      (* The serialised rows must decompose the same totals: emitting
         only charged PCs may not drop counts. *)
      let p =
        Profile.make ~bench:job.Jobs.bench ~scale:job.Jobs.scale ~key
          compiled.Pipeline.program at
      in
      let sum f = List.fold_left (fun acc r -> acc + f r) 0 p.Profile.rows in
      check Alcotest.int
        (key ^ ": rows sum count")
        tt.Attrib.t_instructions
        (sum (fun r -> r.Profile.count));
      check Alcotest.int
        (key ^ ": rows sum nvm")
        (tt.Attrib.t_nvm_writes + tt.Attrib.t_ckpt_nvm_writes)
        (sum (fun r -> r.Profile.nvm_writes + r.Profile.ckpt_nvm_writes));
      check Alcotest.int
        (key ^ ": rows sum misses")
        tt.Attrib.t_cache_misses
        (sum (fun r -> r.Profile.cache_misses));
      check Alcotest.int
        (key ^ ": rows sum reexec")
        tt.Attrib.t_reexec
        (sum (fun r -> r.Profile.reexec));
      List.iter
        (fun r ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: pc %d forward >= 0" key r.Profile.pc)
            true (r.Profile.forward >= 0))
        p.Profile.rows)
    (A.Bench.jobs ())

(* Same job twice -> byte-identical JSON and folded output: profiles
   embed no wall-clock, host, or ordering nondeterminism. *)
let test_profile_deterministic () =
  let job = List.hd (A.Bench.jobs ()) in
  let render () =
    let compiled, at, _, _, _ = run_instrumented job in
    let p =
      Profile.make ~bench:job.Jobs.bench ~scale:job.Jobs.scale
        ~key:(Jobs.key job) compiled.Pipeline.program at
    in
    (Profile.to_json p, Profile.to_folded p)
  in
  let j1, f1 = render () in
  let j2, f2 = render () in
  check Alcotest.string "json byte-identical" j1 j2;
  check Alcotest.string "folded byte-identical" f1 f2;
  Alcotest.(check bool) "folded non-empty" true (String.length f1 > 0)

(* Writer -> Profile_view reader round-trip, report rendering, and a
   self-diff (which must be verdict-free at any threshold). *)
let test_profile_view_roundtrip () =
  let job = List.hd (A.Bench.jobs ()) in
  let compiled, at, _, _, _ = run_instrumented job in
  let p =
    Profile.make ~design:(H.design_name job.Jobs.setting.C.design)
      ~bench:job.Jobs.bench ~scale:job.Jobs.scale ~key:(Jobs.key job)
      compiled.Pipeline.program at
  in
  match A.Json.parse (Profile.to_json p) with
  | Error e -> Alcotest.fail ("profile JSON does not parse: " ^ e)
  | Ok j -> (
    match A.Profile_view.of_json j with
    | Error e -> Alcotest.fail ("Profile_view rejects own writer: " ^ e)
    | Ok v ->
      let tt = Attrib.totals at in
      check Alcotest.int "totals instructions survive"
        tt.Attrib.t_instructions v.A.Profile_view.totals.A.Profile_view.instructions;
      check Alcotest.int "row count survives"
        (List.length p.Profile.rows)
        (List.length v.A.Profile_view.rows);
      let report = A.Profile_view.render_report ~top:5 v in
      Alcotest.(check bool) "report renders" true (String.length report > 0);
      (match A.Profile_view.diff ~threshold_pct:0.0 v v with
      | Error e -> Alcotest.fail e
      | Ok d ->
        Alcotest.(check bool) "self-diff has no regressions" true
          (not (A.Diff.has_regressions d));
        Alcotest.(check bool) "self-diff has no improvements" true
          (A.Diff.improvements d = [])))

(* The decoded PC map: every PC resolves to a function, a label and an
   opcode name, and label offsets are consistent with the sweep (the
   PC at offset 0 of a label is where the label points). *)
let test_decoded_pc_map () =
  let ast =
    Sweep_workloads.Workload.program ~scale:0.05
      (Sweep_workloads.Registry.find "sha")
  in
  let compiled = H.compile H.Sweep ast in
  let prog = compiled.Pipeline.program in
  let dec = Decoded.compile prog in
  let len = Array.length prog.Program.code in
  Alcotest.(check bool) "program non-empty" true (len > 0);
  for pc = 0 to len - 1 do
    if Decoded.pc_op_name dec pc = "" then
      Alcotest.failf "pc %d has no op name" pc;
    if Decoded.pc_func dec pc = "" then
      Alcotest.failf "pc %d has no function" pc;
    if Decoded.pc_label_off dec pc < 0 then
      Alcotest.failf "pc %d has negative label offset" pc
  done;
  (* Labels can alias (an empty block's label shares its successor's
     PC) and the sweep keeps one of them — so self-resolution is only
     required where the label's PC is unique. *)
  let pc_unique lpc =
    List.length (List.filter (fun (_, p) -> p = lpc) prog.Program.labels) = 1
  in
  List.iter
    (fun (name, lpc) ->
      if lpc < len && pc_unique lpc then begin
        check Alcotest.string
          (Printf.sprintf "label %s at own pc" name)
          name
          (Decoded.pc_label dec lpc);
        check Alcotest.int
          (Printf.sprintf "label %s offset 0" name)
          0
          (Decoded.pc_label_off dec lpc)
      end)
    prog.Program.labels

(* A disabled profiler still measures re-execution in aggregate: its
   single slot accumulates instructions-since-commit, which note_crash
   harvests as the outage's discarded count (what Ev.Reexec reports in
   untraced-profile runs). *)
let test_disabled_attrib_counts_reexec () =
  let at = Attrib.disabled () in
  Alcotest.(check bool) "not armed" true (not (Attrib.armed at));
  (* simulate the hot loop's unconditional stores for 7 instructions *)
  for pc = 100 to 106 do
    let i = pc land at.Attrib.mask in
    at.Attrib.count.(i) <- at.Attrib.count.(i) + 1;
    if at.Attrib.stamp.(i) = at.Attrib.epoch then
      at.Attrib.delta.(i) <- at.Attrib.delta.(i) + 1
    else begin
      at.Attrib.stamp.(i) <- at.Attrib.epoch;
      at.Attrib.delta.(i) <- 1
    end
  done;
  check Alcotest.int "crash discards everything since commit" 7
    (Attrib.note_crash at ~pc:106);
  check Alcotest.int "nothing pending after the crash" 0
    (Attrib.note_crash at ~pc:106)

let suite =
  [
    Alcotest.test_case "bench matrix reconciles exactly" `Slow
      test_reconcile_bench_matrix;
    Alcotest.test_case "profile byte-deterministic" `Slow
      test_profile_deterministic;
    Alcotest.test_case "profile_view round-trip + self-diff" `Slow
      test_profile_view_roundtrip;
    Alcotest.test_case "decoded pc map" `Quick test_decoded_pc_map;
    Alcotest.test_case "disabled attrib still counts reexec" `Quick
      test_disabled_attrib_counts_reexec;
  ]
