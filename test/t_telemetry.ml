(* Live-telemetry tests: in-run heartbeats (determinism across worker
   counts), the OpenMetrics exporter (render/parse round-trip including
   label edge cases), the live status snapshot (schema + consistency),
   and the crash flight recorder (artifact written on a captured job
   failure, readable by the sweeptrace postmortem loader). *)

module Obs = Sweep_obs
module Ev = Sweep_obs.Event
module Sink = Sweep_obs.Sink
module Hb = Sweep_obs.Heartbeat
module Om = Sweep_obs.Openmetrics
module Metrics = Sweep_obs.Metrics
module C = Sweep_exp.Exp_common
module Jobs = Sweep_exp.Jobs
module Executor = Sweep_exp.Executor
module Results = Sweep_exp.Results
module Status = Sweep_exp.Status
module H = Sweep_sim.Harness
module Driver = Sweep_sim.Driver
module A = Sweep_analyze

let check = Alcotest.check

let with_tmp_dir f =
  let dir = Filename.temp_file "telemetry" ".d" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun name -> Sys.remove (Filename.concat dir name))
        (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () -> f dir)

(* ---------------- heartbeats ---------------- *)

(* Beats are a pure function of the simulation: same machine, same
   cadence -> same count, and the count matches the instruction total. *)
let test_heartbeat_driver_deterministic () =
  let run () =
    let ast =
      Sweep_workloads.Workload.program ~scale:0.05
        (Sweep_workloads.Registry.find "sha")
    in
    let compiled = H.compile H.Sweep ast in
    let m = H.machine H.Sweep compiled.Sweep_compiler.Pipeline.program in
    let hb = Hb.create ~every:10_000 () in
    let outcome = Driver.run ~heartbeat:hb m ~power:Driver.Unlimited in
    (Hb.beats hb, outcome.Driver.instructions)
  in
  let beats1, instrs1 = run () in
  let beats2, instrs2 = run () in
  check Alcotest.int "beats repeat" beats1 beats2;
  check Alcotest.int "instructions repeat" instrs1 instrs2;
  check Alcotest.int "beats = instrs / every" (instrs1 / 10_000) beats1;
  Alcotest.(check bool) "beats happened" true (beats1 > 0)

let small_matrix () =
  Jobs.matrix ~exp:"t" ~scale:0.05
    [ C.setting H.Nvp; C.setting H.Wt; C.sweep_empty_bit ]
    [ "sha"; "dijkstra" ]

(* Heartbeat events ride the sink from worker domains; their total
   count over a fixed matrix must not depend on the worker count. *)
let test_heartbeat_counts_j1_equals_j4 () =
  let count workers =
    Results.clear ();
    let beats = Atomic.make 0 in
    let detach =
      Sink.spy (fun ~ns:_ ev ->
          match ev with
          | Ev.Heartbeat _ -> Atomic.incr beats
          | _ -> ())
    in
    Fun.protect ~finally:detach (fun () ->
        Executor.execute ~workers
          ~config:(Executor.config ~heartbeat_every:2_000 ())
          (small_matrix ()));
    Atomic.get beats
  in
  let seq = count 1 in
  let par = count 4 in
  Alcotest.(check bool) "some beats" true (seq > 0);
  check Alcotest.int "heartbeat count j1 = j4" seq par

(* ---------------- OpenMetrics ---------------- *)

let sample_snapshot : Metrics.snapshot =
  [
    (* empty label set *)
    ("plain_counter", Metrics.Count 7);
    (* escaped label values: backslash, quote, newline *)
    ( "labelled{design=sweep,note=a\\b\"c\nd}",
      Metrics.Count 3 );
    ("some_gauge{k=v}", Metrics.Value 2.5);
    ( "lat_ns{design=nvp}",
      Metrics.Histo
        {
          count = 6;
          sum = 91.0;
          buckets = [ (10.0, 1); (100.0, 3); (infinity, 2) ];
        } );
  ]

let find_family fname families =
  List.find_opt (fun f -> f.Om.fname = fname) families

let test_openmetrics_roundtrip () =
  let text = Om.render sample_snapshot in
  match Om.lint text with
  | Error e -> Alcotest.fail ("lint rejected rendered text: " ^ e)
  | Ok families ->
    check Alcotest.int "family count" 4 (List.length families);
    (match find_family "plain_counter" families with
    | Some { Om.ftype = "counter"; samples = [ s ]; _ } ->
      check Alcotest.string "counter sample name" "plain_counter_total"
        s.Om.sname;
      check Alcotest.int "no labels" 0 (List.length s.Om.labels);
      check (Alcotest.float 0.0) "counter value" 7.0 s.Om.value
    | _ -> Alcotest.fail "plain_counter family wrong");
    (match find_family "labelled" families with
    | Some { samples = [ s ]; _ } ->
      (* escapes must decode back to the original label value *)
      check
        (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.string))
        "escaped labels decode"
        [ ("design", "sweep"); ("note", "a\\b\"c\nd") ]
        s.Om.labels
    | _ -> Alcotest.fail "labelled family wrong");
    (match find_family "lat_ns" families with
    | Some { ftype = "histogram"; samples; _ } ->
      (* cumulative buckets: 1, 4, 6; then sum and count *)
      let bucket le =
        List.find_opt
          (fun s ->
            s.Om.sname = "lat_ns_bucket"
            && List.assoc_opt "le" s.Om.labels = Some le)
          samples
      in
      let value = function
        | Some s -> s.Om.value
        | None -> Alcotest.fail "missing bucket"
      in
      check (Alcotest.float 0.0) "le=10" 1.0 (value (bucket "10"));
      check (Alcotest.float 0.0) "le=100 cumulative" 4.0 (value (bucket "100"));
      check (Alcotest.float 0.0) "le=+Inf" 6.0 (value (bucket "+Inf"));
      Alcotest.(check bool) "sum present" true
        (List.exists (fun s -> s.Om.sname = "lat_ns_sum") samples);
      Alcotest.(check bool) "count present" true
        (List.exists
           (fun s -> s.Om.sname = "lat_ns_count" && s.Om.value = 6.0)
           samples)
    | _ -> Alcotest.fail "histogram family wrong")

let test_openmetrics_lint_rejects () =
  let ok text = Result.is_ok (Om.lint text) in
  Alcotest.(check bool) "missing EOF" false
    (ok "# TYPE x counter\nx_total 1\n");
  Alcotest.(check bool) "sample without family" false
    (ok "y_total 1\n# EOF\n");
  Alcotest.(check bool) "duplicate TYPE" false
    (ok "# TYPE x counter\n# TYPE x counter\nx_total 1\n# EOF\n");
  Alcotest.(check bool) "non-cumulative histogram" false
    (ok
       "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} \
        3\nh_sum 9\nh_count 3\n# EOF\n");
  Alcotest.(check bool) "well-formed accepted" true
    (ok "# TYPE x counter\nx_total 1\n# EOF\n")

let test_openmetrics_exporter_writes () =
  with_tmp_dir (fun dir ->
      let path = Filename.concat dir "m.om" in
      Metrics.set_enabled true;
      Fun.protect
        ~finally:(fun () -> Metrics.set_enabled false)
        (fun () ->
          let c = Metrics.counter "telemetry_test_ticks" in
          Metrics.inc c;
          let ex = Om.exporter ~path ~interval_s:0.0 () in
          Om.tick ex;
          Alcotest.(check bool) "file written" true (Sys.file_exists path);
          let ic = open_in_bin path in
          let text =
            Fun.protect
              ~finally:(fun () -> close_in ic)
              (fun () -> really_input_string ic (in_channel_length ic))
          in
          match Om.lint text with
          | Error e -> Alcotest.fail ("exporter output rejected: " ^ e)
          | Ok families ->
            Alcotest.(check bool) "has the test counter" true
              (find_family "telemetry_test_ticks" families <> None)))

(* ---------------- status snapshot ---------------- *)

let test_status_schema_roundtrip () =
  with_tmp_dir (fun dir ->
      let path = Filename.concat dir "status.json" in
      let st = Status.create ~path ~interval_s:0.0 ~workers:2 () in
      Status.add_total st 3;
      Status.job_started st ~key:"job-a";
      Status.job_finished st ~key:"job-a" ~ok:true ~elapsed_s:0.5
        ~sim_ns:2.0e6;
      Status.job_started st ~key:"job-b";
      let hb = Hb.create ~every:1_000 () in
      Hb.fire hb ~sim_ns:1.0e6 ~instructions:5_000 ~reboots:2 ~nvm_writes:40;
      Status.beat st ~key:"job-b" hb;
      Status.write st;
      match A.Status_file.load path with
      | Error e -> Alcotest.fail e
      | Ok s ->
        check
          (Alcotest.list Alcotest.string)
          "internally consistent" [] (A.Status_file.validate s);
        check Alcotest.int "total" 3 s.A.Status_file.total;
        check Alcotest.int "done" 1 s.A.Status_file.done_;
        check Alcotest.int "queued" 1 s.A.Status_file.queued;
        check Alcotest.int "running" 1 s.A.Status_file.running_n;
        Alcotest.(check bool) "eta present after a finish" true
          (s.A.Status_file.eta_s <> None);
        (match s.A.Status_file.running with
        | [ r ] ->
          check Alcotest.string "running job" "job-b" r.A.Status_file.job;
          check Alcotest.int "beats" 1 r.A.Status_file.beats;
          check Alcotest.int "instructions" 5_000 r.A.Status_file.instructions;
          check Alcotest.int "reboots" 2 r.A.Status_file.reboots;
          (* sim_ns 1e6 vs mean finished 2e6 -> 0.5 *)
          (match r.A.Status_file.est_progress with
          | Some p -> check (Alcotest.float 1e-6) "est_progress" 0.5 p
          | None -> Alcotest.fail "expected est_progress")
        | rs ->
          Alcotest.failf "expected one running job, got %d" (List.length rs)))

let test_status_validate_catches () =
  with_tmp_dir (fun dir ->
      let path = Filename.concat dir "bad.json" in
      let oc = open_out path in
      output_string oc
        {|{"schema_version":2,"ts_s":1.0,"elapsed_s":1.0,"workers":1,"jobs":{"total":5,"queued":1,"running":0,"done":1,"failed":1,"retried":0,"pct_done":40.0},"eta_s":null,"throughput":{"instr_per_s":0},"running":[]}|};
      close_out oc;
      match A.Status_file.load path with
      | Error e -> Alcotest.fail e
      | Ok s ->
        Alcotest.(check bool) "counts that don't add up are flagged" true
          (A.Status_file.validate s <> []))

(* ETA edge cases.  The ETA divides by the finished-job count, scales
   by the queue and credits running time — each snapshot below pins
   one boundary of that arithmetic, and every one must still satisfy
   the reader's validate (no negative ETA, counts that add up). *)

(* Nothing finished yet: no mean job time exists, so eta_s must be
   null — not 0, not a guess from the running jobs' elapsed time. *)
let test_status_eta_zero_completed () =
  with_tmp_dir (fun dir ->
      let path = Filename.concat dir "status.json" in
      let st = Status.create ~path ~interval_s:0.0 ~workers:4 () in
      Status.add_total st 5;
      Status.job_started st ~key:"job-a";
      Status.job_started st ~key:"job-b";
      Status.write st;
      match A.Status_file.load path with
      | Error e -> Alcotest.fail e
      | Ok s ->
        check
          (Alcotest.list Alcotest.string)
          "validate clean" [] (A.Status_file.validate s);
        Alcotest.(check bool) "eta null before any job finishes" true
          (s.A.Status_file.eta_s = None);
        check Alcotest.int "running" 2 s.A.Status_file.running_n;
        check Alcotest.int "queued" 3 s.A.Status_file.queued)

(* Every job failed: done stays 0 but failures carry wall time, so the
   ETA estimate exists (failed jobs still teach the mean) and must be
   non-negative even though no simulated time was banked. *)
let test_status_eta_all_failed () =
  with_tmp_dir (fun dir ->
      let path = Filename.concat dir "status.json" in
      let st = Status.create ~path ~interval_s:0.0 ~workers:2 () in
      Status.add_total st 3;
      List.iter
        (fun key ->
          Status.job_started st ~key;
          Status.job_finished st ~key ~ok:false ~elapsed_s:0.25 ~sim_ns:0.0)
        [ "f1"; "f2" ];
      Status.write st;
      match A.Status_file.load path with
      | Error e -> Alcotest.fail e
      | Ok s ->
        check
          (Alcotest.list Alcotest.string)
          "validate clean" [] (A.Status_file.validate s);
        check Alcotest.int "done" 0 s.A.Status_file.done_;
        check Alcotest.int "failed" 2 s.A.Status_file.failed;
        (match s.A.Status_file.eta_s with
        | Some e -> Alcotest.(check bool) "eta >= 0" true (e >= 0.0)
        | None -> Alcotest.fail "failures alone should still yield an ETA"))

(* Snapshot whose only signal is heartbeats — a long-running first job
   beating away with nothing finished: est_progress must be null (no
   mean simulated time to compare against), eta null, validate clean. *)
let test_status_heartbeat_gap_only () =
  with_tmp_dir (fun dir ->
      let path = Filename.concat dir "status.json" in
      let st = Status.create ~path ~interval_s:0.0 ~workers:1 () in
      Status.add_total st 1;
      Status.job_started st ~key:"long-job";
      let hb = Hb.create ~every:1_000 () in
      Hb.fire hb ~sim_ns:5.0e6 ~instructions:9_000 ~reboots:1 ~nvm_writes:7;
      Hb.fire hb ~sim_ns:9.0e6 ~instructions:21_000 ~reboots:3 ~nvm_writes:19;
      Status.beat st ~key:"long-job" hb;
      Status.write st;
      match A.Status_file.load path with
      | Error e -> Alcotest.fail e
      | Ok s ->
        check
          (Alcotest.list Alcotest.string)
          "validate clean" [] (A.Status_file.validate s);
        Alcotest.(check bool) "eta null" true (s.A.Status_file.eta_s = None);
        (match s.A.Status_file.running with
        | [ r ] ->
          check Alcotest.int "beats" 2 r.A.Status_file.beats;
          check Alcotest.int "instructions" 21_000
            r.A.Status_file.instructions;
          Alcotest.(check bool)
            "est_progress null without a finished mean" true
            (r.A.Status_file.est_progress = None)
        | rs ->
          Alcotest.failf "expected one running job, got %d" (List.length rs)))

(* ---------------- crash flight recorder ---------------- *)

let test_flight_recorder_postmortem () =
  with_tmp_dir (fun dir ->
      Results.clear ();
      let fl = Obs.Flight.arm ~dir () in
      (* "nosuchbench" explodes inside compute (Not_found from the
         workload registry) — a captured failure, so execute returns
         normally and the flight recorder must have dumped. *)
      let bad =
        Jobs.job ~exp:"t" ~scale:0.05 (C.setting H.Nvp) ~power:Jobs.unlimited
          "nosuchbench"
      in
      let good =
        Jobs.job ~exp:"t" ~scale:0.05 (C.setting H.Nvp) ~power:Jobs.unlimited
          "sha"
      in
      let cfg = Executor.config ~flight:fl () in
      Executor.execute ~workers:1 ~config:cfg [ good; bad ];
      check Alcotest.int "one captured failure" 1
        (List.length (Results.failures ()));
      let path = Obs.Flight.path_for fl ~key:(Jobs.key bad) in
      Alcotest.(check bool) "artifact written" true (Sys.file_exists path);
      match A.Flight_file.load path with
      | Error e -> Alcotest.fail e
      | Ok pm ->
        check Alcotest.string "artifact names the job" (Jobs.key bad)
          pm.A.Flight_file.header.A.Flight_file.job;
        Alcotest.(check bool) "error recorded" true
          (pm.A.Flight_file.header.A.Flight_file.error <> "");
        check Alcotest.int "no malformed lines" 0 pm.A.Flight_file.malformed;
        (* the ring tail must contain the failure event itself *)
        Alcotest.(check bool) "Job_failed in the tail" true
          (List.exists
             (fun e ->
               match e.A.Trace_reader.event with
               | Ev.Job_failed { key; _ } -> key = Jobs.key bad
               | _ -> false)
             pm.A.Flight_file.entries);
        (* and the postmortem renderer must produce a report *)
        let text =
          A.Report.render A.Report.Text
            (A.Flight_file.report ~source:path pm)
        in
        Alcotest.(check bool) "report renders" true
          (String.length text > 0))

(* A failure with an armed sink: the artifact must tee, not steal —
   the installed sink still sees every event. *)
let test_flight_tee_preserves_sink () =
  with_tmp_dir (fun dir ->
      Results.clear ();
      let fl = Obs.Flight.arm ~dir () in
      let seen = Atomic.make 0 in
      let detach = Sink.spy (fun ~ns:_ _ -> Atomic.incr seen) in
      Fun.protect ~finally:detach (fun () ->
          let bad =
            Jobs.job ~exp:"t" ~scale:0.05 (C.setting H.Nvp)
              ~power:Jobs.unlimited "nosuchbench"
          in
          Executor.execute ~workers:1
            ~config:(Executor.config ~flight:fl ())
            [ bad ]);
      Alcotest.(check bool) "installed sink still saw events" true
        (Atomic.get seen > 0))

let suite =
  [
    Alcotest.test_case "heartbeat driver deterministic" `Quick
      test_heartbeat_driver_deterministic;
    Alcotest.test_case "heartbeat counts j1=j4" `Slow
      test_heartbeat_counts_j1_equals_j4;
    Alcotest.test_case "openmetrics round-trip" `Quick
      test_openmetrics_roundtrip;
    Alcotest.test_case "openmetrics lint rejects" `Quick
      test_openmetrics_lint_rejects;
    Alcotest.test_case "openmetrics exporter writes" `Quick
      test_openmetrics_exporter_writes;
    Alcotest.test_case "status schema round-trip" `Quick
      test_status_schema_roundtrip;
    Alcotest.test_case "status validate catches" `Quick
      test_status_validate_catches;
    Alcotest.test_case "status eta: zero completed" `Quick
      test_status_eta_zero_completed;
    Alcotest.test_case "status eta: all failed" `Quick
      test_status_eta_all_failed;
    Alcotest.test_case "status heartbeat-gap-only snapshot" `Quick
      test_status_heartbeat_gap_only;
    Alcotest.test_case "flight recorder postmortem" `Slow
      test_flight_recorder_postmortem;
    Alcotest.test_case "flight tee preserves sink" `Slow
      test_flight_tee_preserves_sink;
  ]
