(* Differential equivalence of the decoded fast path against the
   reference interpreter.

   The decoded-opstream refactor must be semantically invisible: for
   every workload and every design, running with
   [Config.reference_interp] set (the original match-on-constructors
   interpreter over [Program.t]) and with the decoded dispatch loop must
   produce byte-identical results — same final NVM data segment and
   checkpoint slots, same machine statistics, same outcome (times and
   energies compared exactly, not within a tolerance). *)

module H = Sweep_sim.Harness
module Config = Sweep_machine.Config
module Mstats = Sweep_machine.Mstats
module Nvm = Sweep_mem.Nvm
module M = Sweep_machine.Machine_intf
module Layout = Sweep_isa.Layout
module Driver = Sweep_sim.Driver

let check = Alcotest.check

(* Digest of the architecturally persistent state: the data segment the
   compiler laid out plus the register/PC checkpoint slots. *)
let nvm_digest (r : H.result) =
  let (M.Packed ((module MI), m)) = r.H.machine in
  let nvm = MI.nvm m in
  let layout = r.H.compiled.Sweep_compiler.Pipeline.program.Sweep_isa.Program.layout in
  let data = Nvm.image nvm ~lo:layout.Layout.data_base ~hi:layout.Layout.data_limit in
  let ckpt =
    Nvm.image nvm ~lo:layout.Layout.ckpt_base
      ~hi:(layout.Layout.ckpt_pc + Layout.word_bytes)
  in
  Digest.string (Marshal.to_string (data, ckpt) [])

let scale = 0.05

let check_pair name design =
  let ast =
    Sweep_workloads.Workload.program ~scale
      (Sweep_workloads.Registry.find name)
  in
  let run config = H.run ~config design ~power:Driver.Unlimited ast in
  let fast = run Config.default in
  let ref_ = run (Config.with_reference_interp Config.default) in
  let tag fmt = Printf.sprintf "%s/%s %s" (H.design_name design) name fmt in
  check Alcotest.bool (tag "completed") ref_.H.outcome.Driver.completed
    fast.H.outcome.Driver.completed;
  (* Outcome: every field, floats compared bit-for-bit. *)
  Alcotest.(check bool)
    (tag "outcome identical")
    true
    (ref_.H.outcome = fast.H.outcome);
  (* Machine statistics, including stall/persistence nanoseconds. *)
  let sf = H.mstats fast and sr = H.mstats ref_ in
  check Alcotest.int (tag "instructions") sr.Mstats.instructions
    sf.Mstats.instructions;
  check Alcotest.int (tag "loads") sr.Mstats.loads sf.Mstats.loads;
  check Alcotest.int (tag "stores") sr.Mstats.stores sf.Mstats.stores;
  check Alcotest.int (tag "regions") sr.Mstats.regions sf.Mstats.regions;
  check Alcotest.int (tag "buffer searches") sr.Mstats.buffer_searches
    sf.Mstats.buffer_searches;
  check Alcotest.int (tag "buffer hits") sr.Mstats.buffer_hits
    sf.Mstats.buffer_hits;
  check Alcotest.int (tag "buffer peak") sr.Mstats.buffer_peak
    sf.Mstats.buffer_peak;
  check (Alcotest.float 0.0) (tag "persistence_ns") sr.Mstats.f.Mstats.persistence_ns
    sf.Mstats.f.Mstats.persistence_ns;
  check (Alcotest.float 0.0) (tag "wait_ns") sr.Mstats.f.Mstats.wait_ns
    sf.Mstats.f.Mstats.wait_ns;
  check (Alcotest.float 0.0) (tag "waw_stall_ns") sr.Mstats.f.Mstats.waw_stall_ns
    sf.Mstats.f.Mstats.waw_stall_ns;
  (* Persistent memory image. *)
  check Alcotest.string (tag "nvm digest") (nvm_digest ref_) (nvm_digest fast)

let test_design design () =
  List.iter
    (fun name -> check_pair name design)
    (Sweep_workloads.Registry.names ())

let suite =
  List.map
    (fun d ->
      Alcotest.test_case
        ("decoded = reference: " ^ H.design_name d)
        `Slow (test_design d))
    H.all_designs
