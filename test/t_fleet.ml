(* Fleet simulation: spec validation, pure device derivation, sketch
   determinism, journalled resume, and the status cohort rollup. *)

module Spec = Sweep_fleet.Spec
module Device = Sweep_fleet.Device
module Sketch = Sweep_fleet.Sketch
module Runner = Sweep_fleet.Runner
module Jobs = Sweep_exp.Jobs
module C = Sweep_exp.Exp_common
module Driver = Sweep_sim.Driver
module Json = Sweep_analyze.Json

let check = Alcotest.check

let with_tmp_dir f =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "fleet-test-%d-%d" (Unix.getpid ()) (Random.bits ()))
  in
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      let rec rm p =
        if Sys.is_directory p then begin
          Array.iter (fun e -> rm (Filename.concat p e)) (Sys.readdir p);
          Unix.rmdir p
        end
        else Sys.remove p
      in
      rm dir)
    (fun () -> f dir)

let base_arm = Spec.default_arm

let spec =
  {
    Spec.name = "t";
    devices = 6;
    seed = 11;
    bench = "sha";
    scale = 0.02;
    design = Sweep_sim.Harness.Sweep;
    trace = Sweep_energy.Power_trace.Rf_office;
    v_max = 3.5;
    v_min = 2.8;
    jitter =
      { Spec.max_shift_steps = 50; amp_spread_permille = 200; max_drop_bp = 300 };
    arms =
      [
        { base_arm with Spec.arm_name = "base"; weight = 2 };
        { base_arm with Spec.arm_name = "bigcap"; weight = 1; farads = 940e-9 };
      ];
  }

(* ---------------- spec ---------------- *)

let rejects what s =
  Alcotest.(check bool) what true (Spec.validate s <> [])

let test_spec_validate () =
  check (Alcotest.list Alcotest.string) "base spec valid" [] (Spec.validate spec);
  rejects "zero devices" { spec with Spec.devices = 0 };
  rejects "unknown bench" { spec with Spec.bench = "nope" };
  rejects "zero scale" { spec with Spec.scale = 0.0 };
  rejects "inverted thresholds" { spec with Spec.v_max = 2.0 };
  rejects "amp spread 1000 (dead device)"
    { spec with Spec.jitter = { spec.Spec.jitter with Spec.amp_spread_permille = 1000 } };
  rejects "drop_bp beyond 10000"
    { spec with Spec.jitter = { spec.Spec.jitter with Spec.max_drop_bp = 10001 } };
  rejects "no arms" { spec with Spec.arms = [] };
  rejects "duplicate arm names"
    { spec with Spec.arms = [ base_arm; base_arm ] };
  rejects "zero weight"
    { spec with Spec.arms = [ { base_arm with Spec.weight = 0 } ] };
  rejects "bad geometry"
    { spec with Spec.arms = [ { base_arm with Spec.cache_bytes = 100 } ] };
  rejects "zero buffer entries"
    { spec with Spec.arms = [ { base_arm with Spec.buffer_entries = 0 } ] }

let test_spec_json_roundtrip () =
  match Json.parse (Spec.render spec) with
  | Error e -> Alcotest.fail e
  | Ok j -> (
    match Spec.of_json j with
    | Error e -> Alcotest.fail e
    | Ok spec' ->
      check Alcotest.string "render round-trips" (Spec.render spec)
        (Spec.render spec');
      check Alcotest.string "digest stable" (Spec.digest spec)
        (Spec.digest spec'))

let test_spec_json_rejects () =
  let parse s = Result.get_ok (Json.parse s) in
  let bad what s =
    Alcotest.(check bool) what true (Result.is_error (Spec.of_json (parse s)))
  in
  bad "missing schema_version" {|{"name":"t","devices":1,"seed":0,"bench":"sha"}|};
  bad "mistyped devices"
    {|{"schema_version":1,"name":"t","devices":"many","seed":0,"bench":"sha"}|};
  bad "unknown design"
    {|{"schema_version":1,"name":"t","devices":1,"seed":0,"bench":"sha","design":"vax"}|};
  bad "unknown trace"
    {|{"schema_version":1,"name":"t","devices":1,"seed":0,"bench":"sha","trace":"mains"}|};
  (* Absent optional fields take defaults. *)
  match
    Spec.of_json
      (parse {|{"schema_version":1,"name":"t","devices":2,"seed":3,"bench":"sha"}|})
  with
  | Error e -> Alcotest.fail e
  | Ok s ->
    check (Alcotest.float 0.0) "default scale" 1.0 s.Spec.scale;
    check Alcotest.int "default single arm" 1 (List.length s.Spec.arms)

(* ---------------- device ---------------- *)

let test_device_pure_and_bounded () =
  for id = 0 to spec.Spec.devices - 1 do
    let a = Device.instantiate spec ~id in
    let b = Device.instantiate spec ~id in
    Alcotest.(check bool) "instantiate is pure" true (a = b);
    Alcotest.(check bool) "shift within bound" true
      (a.Device.shift_steps >= 0 && a.Device.shift_steps <= 50);
    Alcotest.(check bool) "amplitude within spread" true
      (a.Device.amp_permille >= 800 && a.Device.amp_permille <= 1200);
    Alcotest.(check bool) "drop odds within bound" true
      (a.Device.drop_bp >= 0 && a.Device.drop_bp <= 300)
  done;
  Alcotest.check_raises "id out of range"
    (Invalid_argument "Device.instantiate: id 6 outside [0, 6)") (fun () ->
      ignore (Device.instantiate spec ~id:6))

let test_device_key_invariant () =
  (* The Jittered power spec's identity must match what the render-time
     power key derives from the materialised (tagged) trace — otherwise
     fleet jobs and their results would file under different keys. *)
  List.iter
    (fun id ->
      let d = Device.instantiate spec ~id in
      let p = Device.power spec d in
      check Alcotest.string "power_id = power_key of materialised trace"
        (Jobs.power_id p)
        (C.power_key (Jobs.to_power p));
      check Alcotest.string "job key matches device key"
        (Device.key spec d)
        (Jobs.key (Device.job spec d));
      check Alcotest.string "cohort recovered from key"
        d.Device.arm.Spec.arm_name
        (Device.cohort_of_key (Device.key spec d)))
    [ 0; 3; 5 ]

let test_census () =
  let per_arm, unique = Runner.census spec in
  check Alcotest.int "census covers every device" spec.Spec.devices
    (List.fold_left (fun a (_, n) -> a + n) 0 per_arm);
  Alcotest.(check bool) "censused arms are declared arms" true
    (List.for_all
       (fun (n, _) -> List.exists (fun a -> a.Spec.arm_name = n) spec.Spec.arms)
       per_arm);
  Alcotest.(check bool) "unique keys positive and bounded" true
    (unique >= 1 && unique <= spec.Spec.devices)

(* ---------------- sketch ---------------- *)

let outcome ~on_ns ~outages ~deaths ~instructions ~joules =
  {
    Driver.completed = true;
    on_ns;
    off_ns = 0.0;
    outages;
    deaths;
    backups = outages - deaths;
    failed_backups = 0;
    compute_joules = joules;
    backup_joules = 0.0;
    restore_joules = 0.0;
    quiescent_joules = 0.0;
    instructions;
    injected_faults = 0;
  }

let test_sketch_fold_and_quantiles () =
  let sk = Sketch.create () in
  (* 100 devices, reboot count = id / 10: a staircase with known
     quantiles (unit reboot bins are exact). *)
  for id = 0 to 99 do
    Sketch.fold_device sk ~id ~arm:"base" ~replay:"r"
      (outcome ~on_ns:1e6 ~outages:(id / 10) ~deaths:0 ~instructions:1000
         ~joules:1e-6)
  done;
  let g = sk.Sketch.total in
  check Alcotest.int "all folded" 100 g.Sketch.devices;
  check (Alcotest.option (Alcotest.float 1e-9)) "reboot p50"
    (Some 4.0)
    (Sketch.quantile g.Sketch.h_reboots 0.5);
  check (Alcotest.option (Alcotest.float 1e-9)) "reboot p99"
    (Some 9.0)
    (Sketch.quantile g.Sketch.h_reboots 0.99);
  check (Alcotest.option (Alcotest.float 1e-9)) "reboot mean"
    (Some 4.5)
    (Sketch.mean g.Sketch.h_reboots);
  (* Identical rates: every quantile collapses to the observed value. *)
  check (Alcotest.option (Alcotest.float 1e-3)) "rate p99 clamps to max"
    (Some 1e6)
    (Sketch.quantile g.Sketch.h_rate 0.99);
  check Alcotest.int "tail bounded" Sketch.tail_keep
    (List.length sk.Sketch.tails)

let test_sketch_failures_and_roundtrip () =
  let sk = Sketch.create () in
  for id = 0 to 39 do
    if id mod 2 = 0 then
      Sketch.fold_device sk ~id ~arm:"base" ~replay:"r"
        (outcome ~on_ns:1e6 ~outages:1 ~deaths:1 ~instructions:500
           ~joules:2e-6)
    else Sketch.fold_failure sk ~id ~arm:"base"
  done;
  check Alcotest.int "failures counted" 20 sk.Sketch.failed_total;
  check Alcotest.int "failed ids bounded" (min 20 Sketch.failed_keep)
    (List.length sk.Sketch.failed_ids);
  check Alcotest.int "resume cursor counts both" 40 (Sketch.devices sk);
  let g = Sketch.cohort sk "base" in
  check Alcotest.int "cohort successes" 20 g.Sketch.devices;
  check Alcotest.int "cohort failures" 20 g.Sketch.failed;
  check (Alcotest.option (Alcotest.float 1e-9)) "survival p50 of the dead"
    (Some 0.0)
    (Sketch.quantile g.Sketch.h_survival 0.5);
  match Sketch.parse (Sketch.render sk) with
  | Error e -> Alcotest.fail e
  | Ok sk' ->
    check Alcotest.string "sketch JSON round-trips byte-exactly"
      (Sketch.render sk) (Sketch.render sk')

(* ---------------- runner ---------------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let run_fleet ?workers ?kill_after ?chunk dir =
  Runner.run ?workers ?kill_after ?chunk ~dir spec

let test_runner_deterministic_across_parallelism () =
  with_tmp_dir (fun d1 ->
      with_tmp_dir (fun d2 ->
          let r1 = Result.get_ok (run_fleet ~workers:1 d1) in
          let r2 = Result.get_ok (run_fleet ~workers:4 d2) in
          check Alcotest.int "fresh run" 0 r1.Runner.resumed_from;
          check Alcotest.string "-j1 and -j4 byte-identical"
            (read_file r1.Runner.report_path)
            (read_file r2.Runner.report_path);
          check Alcotest.int "every device aggregated" spec.Spec.devices
            (Sketch.devices r1.Runner.state)))

let test_runner_kill_resume_identity () =
  with_tmp_dir (fun ref_dir ->
      with_tmp_dir (fun dir ->
          let reference = Result.get_ok (run_fleet ~workers:2 ref_dir) in
          (match run_fleet ~workers:2 ~chunk:2 ~kill_after:2 dir with
          | exception Runner.Interrupted { folded } ->
            check Alcotest.int "killed at the chunk boundary" 2 folded
          | _ -> Alcotest.fail "expected Interrupted");
          let resumed = Result.get_ok (run_fleet ~workers:2 ~chunk:2 dir) in
          check Alcotest.int "resumed from the journal" 2
            resumed.Runner.resumed_from;
          check Alcotest.string "kill/resume byte-identical"
            (read_file reference.Runner.report_path)
            (read_file resumed.Runner.report_path)))

let test_runner_rejects_foreign_journal () =
  with_tmp_dir (fun dir ->
      (match run_fleet ~workers:1 ~chunk:2 ~kill_after:2 dir with
      | exception Runner.Interrupted _ -> ()
      | _ -> Alcotest.fail "expected Interrupted");
      match Runner.run ~workers:1 ~dir { spec with Spec.seed = 12 } with
      | Error e ->
        Alcotest.(check bool) "digest mismatch reported" true
          (let lower = String.lowercase_ascii e in
           let has sub =
             let n = String.length lower and m = String.length sub in
             let rec at i = i + m <= n && (String.sub lower i m = sub || at (i + 1)) in
             at 0
           in
           has "digest")
      | Ok _ -> Alcotest.fail "foreign journal accepted")

(* ---------------- sharding balance ---------------- *)

let test_route_hash_balance () =
  (* 10k fleet job keys must spread evenly over 2/4/8 worker slots —
     FNV-1a over the canonical key is the supervisor's routing hash. *)
  let big = { spec with Spec.devices = 10_000 } in
  let keys =
    List.init 10_000 (fun id ->
        Device.key big (Device.instantiate big ~id))
  in
  List.iter
    (fun workers ->
      let counts = Array.make workers 0 in
      List.iter
        (fun k ->
          let slot = Sweep_exp.Supervisor.route_hash k mod workers in
          counts.(slot) <- counts.(slot) + 1)
        keys;
      let mean = 10_000 / workers in
      Array.iteri
        (fun slot n ->
          Alcotest.(check bool)
            (Printf.sprintf "%d workers: slot %d balanced (%d)" workers slot n)
            true
            (n >= mean / 2 && n <= mean * 3 / 2))
        counts)
    [ 2; 4; 8 ]

(* ---------------- status rollup ---------------- *)

let test_status_cohort_rollup () =
  with_tmp_dir (fun dir ->
      let path = Filename.concat dir "status.json" in
      let st =
        Sweep_exp.Status.create ~path ~interval_s:0.0
          ~rollup:Device.cohort_of_key ~max_running:2 ~workers:2 ()
      in
      let per_arm, _ = Runner.census spec in
      List.iter
        (fun (name, total) ->
          Sweep_exp.Status.declare_cohort st ~name ~total)
        per_arm;
      Sweep_exp.Status.add_total st spec.Spec.devices;
      let keys =
        List.init spec.Spec.devices (fun id ->
            Device.key spec (Device.instantiate spec ~id))
      in
      List.iteri
        (fun i k ->
          Sweep_exp.Status.job_started st ~key:k;
          if i < 4 then
            Sweep_exp.Status.job_finished st ~key:k ~ok:(i <> 0)
              ~elapsed_s:0.1 ~sim_ns:1e6)
        keys;
      Sweep_exp.Status.write st;
      match Sweep_analyze.Status_file.load path with
      | Error e -> Alcotest.fail e
      | Ok s ->
        check Alcotest.int "rollup schema"
          Sweep_exp.Status.rollup_schema_version
          s.Sweep_analyze.Status_file.schema_version;
        check (Alcotest.list Alcotest.string) "snapshot validates" []
          (Sweep_analyze.Status_file.validate s);
        check Alcotest.int "cohort rows" 2
          (List.length s.Sweep_analyze.Status_file.cohorts);
        let totals =
          List.fold_left
            (fun a c -> a + c.Sweep_analyze.Status_file.c_total)
            0 s.Sweep_analyze.Status_file.cohorts
        in
        check Alcotest.int "cohort totals cover the fleet" spec.Spec.devices
          totals;
        check Alcotest.int "done folded into cohorts" 3
          (List.fold_left
             (fun a c -> a + c.Sweep_analyze.Status_file.c_done)
             0 s.Sweep_analyze.Status_file.cohorts);
        check Alcotest.int "failure folded into cohorts" 1
          (List.fold_left
             (fun a c -> a + c.Sweep_analyze.Status_file.c_failed)
             0 s.Sweep_analyze.Status_file.cohorts);
        Alcotest.(check bool) "running list capped" true
          (List.length s.Sweep_analyze.Status_file.running <= 2))

(* ---------------- fleet view ---------------- *)

let test_fleet_view_roundtrip () =
  with_tmp_dir (fun dir ->
      let r = Result.get_ok (run_fleet ~workers:1 dir) in
      match Sweep_analyze.Fleet_view.load r.Runner.report_path with
      | Error e -> Alcotest.fail e
      | Ok v ->
        check Alcotest.string "fleet name" "t" v.Sweep_analyze.Fleet_view.name;
        check Alcotest.int "declared devices" spec.Spec.devices
          v.Sweep_analyze.Fleet_view.devices_declared;
        check Alcotest.string "digest embedded" (Spec.digest spec)
          v.Sweep_analyze.Fleet_view.spec_digest;
        let report =
          Sweep_analyze.Fleet_view.report ~source:r.Runner.report_path v
        in
        check Alcotest.int "four sections" 4
          (List.length report.Sweep_analyze.Report.sections);
        (* The view's bin read-back must agree with the sketch's. *)
        let sg = r.Runner.state.Sketch.total in
        let vg = v.Sweep_analyze.Fleet_view.total in
        check (Alcotest.option (Alcotest.float 1e-9)) "p90 agrees"
          (Sketch.quantile sg.Sketch.h_rate 0.9)
          (Sweep_analyze.Fleet_view.quantile
             vg.Sweep_analyze.Fleet_view.rate 0.9))

let suite =
  [
    Alcotest.test_case "spec validate" `Quick test_spec_validate;
    Alcotest.test_case "spec json roundtrip" `Quick test_spec_json_roundtrip;
    Alcotest.test_case "spec json rejects" `Quick test_spec_json_rejects;
    Alcotest.test_case "device purity" `Quick test_device_pure_and_bounded;
    Alcotest.test_case "device key invariant" `Quick test_device_key_invariant;
    Alcotest.test_case "census" `Quick test_census;
    Alcotest.test_case "sketch quantiles" `Quick test_sketch_fold_and_quantiles;
    Alcotest.test_case "sketch failures" `Quick
      test_sketch_failures_and_roundtrip;
    Alcotest.test_case "runner parallel determinism" `Quick
      test_runner_deterministic_across_parallelism;
    Alcotest.test_case "runner kill/resume" `Quick
      test_runner_kill_resume_identity;
    Alcotest.test_case "runner foreign journal" `Quick
      test_runner_rejects_foreign_journal;
    Alcotest.test_case "route hash balance" `Quick test_route_hash_balance;
    Alcotest.test_case "status cohort rollup" `Quick test_status_cohort_rollup;
    Alcotest.test_case "fleet view" `Quick test_fleet_view_roundtrip;
  ]
