(* Allocation-regression gate for the decoded hot path.

   With no event sink installed, the cycle loop — Exec.step dispatch,
   mem-ops, accumulator charging, and the driver's totals bookkeeping —
   must not allocate on the minor heap at all.  We run the same design
   at two workload scales and require the minor-allocation delta across
   Driver.run to stay below a small constant that does not grow with the
   instruction count (machine construction and the outcome record are
   allowed; per-instruction garbage is not). *)

module H = Sweep_sim.Harness
module Driver = Sweep_sim.Driver
module Pipeline = Sweep_compiler.Pipeline

(* Minor words allocated during one full Driver.run of [design] on
   sha@[scale], machine construction excluded.  Heartbeats stay armed:
   the amortised countdown (and the no-sink [fire] path, which only
   mutates the heartbeat's preallocated fields) must be alloc-free too,
   so telemetry-on sweeps keep the same throughput guarantee.  The
   per-PC attribution profiler is armed as well — its unconditional
   load-add-store accumulation (including the float counters and the
   epoch/stamp/delta re-execution bookkeeping) is part of the same
   zero-allocation contract. *)
let measure design scale =
  let ast =
    Sweep_workloads.Workload.program ~scale
      (Sweep_workloads.Registry.find "sha")
  in
  let compiled = H.compile design ast in
  let m = H.machine design compiled.Pipeline.program in
  let heartbeat = Sweep_obs.Heartbeat.create ~every:50_000 () in
  let attrib =
    Sweep_obs.Attrib.create
      ~len:(Array.length compiled.Pipeline.program.Sweep_isa.Program.code)
  in
  Gc.full_major ();
  let w0 = Gc.minor_words () in
  let outcome = Driver.run ~heartbeat ~attrib m ~power:Driver.Unlimited in
  let w1 = Gc.minor_words () in
  (w1 -. w0, outcome.Driver.instructions)

let check_design design =
  (* Warm-up run so one-time lazy initialisation is off the books. *)
  ignore (measure design 0.02);
  let small_words, small_instrs = measure design 0.02 in
  let big_words, big_instrs = measure design 0.1 in
  Alcotest.(check bool)
    (Printf.sprintf "%s: scales ran (%d -> %d instrs)" (H.design_name design)
       small_instrs big_instrs)
    true
    (big_instrs > small_instrs && small_instrs > 0);
  let per_instr = (big_words -. small_words) /. float_of_int (big_instrs - small_instrs) in
  if per_instr > 1e-3 then
    Alcotest.failf
      "%s hot loop allocates: %.4f minor words/instr (%.0f words over %d \
       instrs vs %.0f over %d)"
      (H.design_name design) per_instr big_words big_instrs small_words
      small_instrs

let test_nvp_zero_alloc () = check_design H.Nvp
let test_sweep_zero_alloc () = check_design H.Sweep
let test_replay_zero_alloc () = check_design H.Replay

let suite =
  [
    Alcotest.test_case "nvp hot loop alloc-free" `Slow test_nvp_zero_alloc;
    Alcotest.test_case "sweep hot loop alloc-free" `Slow test_sweep_zero_alloc;
    Alcotest.test_case "replay hot loop alloc-free" `Slow
      test_replay_zero_alloc;
  ]
