(* Trace-analysis subsystem tests: the JSON parser, the JSONL
   trace round-trip through a real simulation, Chrome B/E span balance
   when a power failure lands mid-region, the derived views, diff
   verdicts at the threshold boundary, and the bench history file. *)

module A = Sweep_analyze
module Json = Sweep_analyze.Json
module Obs = Sweep_obs
module Ev = Sweep_obs.Event
module Sink = Sweep_obs.Sink
module H = Sweep_sim.Harness
module Driver = Sweep_sim.Driver
module Trace = Sweep_energy.Power_trace

let check = Alcotest.check

let tmp_path name =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "sweep_analyze_test_%d_%s" (Unix.getpid ()) name)

(* A short intermittent run: small capacitor + RF-office harvesting
   kills the machine mid-region several times before completion. *)
let run_intermittent sink =
  let w = Sweep_workloads.Registry.find "sha" in
  let ast = Sweep_workloads.Workload.program ~scale:0.05 w in
  let power =
    Driver.harvested ~trace:(Trace.make Trace.Rf_office) ~farads:100e-9 ()
  in
  Sink.with_sink sink (fun () -> H.run H.Sweep ~power ast)

(* ------------------------------------------------------------------ *)
(* JSON parser                                                         *)

let test_json_parser () =
  let ok s =
    match Json.parse s with
    | Ok v -> v
    | Error e -> Alcotest.failf "parse %S: %s" s e
  in
  (match ok {|{"a":1,"b":[true,null,"x\n"],"c":{"d":-2.5e2}}|} with
  | Json.Obj fields ->
    check (Alcotest.option (Alcotest.float 0.0)) "num" (Some 1.0)
      (Option.bind (List.assoc_opt "a" fields) Json.to_float);
    (match List.assoc_opt "b" fields with
    | Some (Json.List [ Json.Bool true; Json.Null; Json.Str "x\n" ]) -> ()
    | _ -> Alcotest.fail "list payload");
    check
      (Alcotest.option (Alcotest.float 0.0))
      "nested" (Some (-250.0))
      (Option.bind (List.assoc_opt "c" fields) (Json.float_member "d"))
  | _ -> Alcotest.fail "expected object");
  List.iter
    (fun s ->
      match Json.parse s with
      | Ok _ -> Alcotest.failf "accepted malformed %S" s
      | Error _ -> ())
    [ "{"; "[1,]"; "{\"a\":}"; "tru"; "\"unterminated"; "1 2" ];
  (* render/parse round-trip *)
  let v =
    Json.Obj
      [
        ("s", Json.Str "a\"b\\c\nd");
        ("n", Json.Num 0.1);
        ("i", Json.Num 42.0);
        ("l", Json.List [ Json.Bool false; Json.Null ]);
      ]
  in
  check Alcotest.bool "render round-trips" true
    (Json.parse (Json.render v) = Ok v)

(* ------------------------------------------------------------------ *)
(* JSONL trace round-trip on a real run                                *)

let test_jsonl_trace_roundtrip_real_run () =
  let path = tmp_path "trace.jsonl" in
  let r = run_intermittent (Obs.Jsonl_sink.create path) in
  check Alcotest.bool "run saw power failures" true
    (r.H.outcome.Driver.deaths > 0);
  let entries, stats = A.Trace_reader.read_all path in
  Sys.remove path;
  check Alcotest.int "no malformed lines" 0 stats.A.Trace_reader.malformed;
  check Alcotest.int "nothing dropped" 0 stats.A.Trace_reader.dropped;
  check Alcotest.bool "events parsed" true (stats.A.Trace_reader.parsed > 0);
  check Alcotest.int "every line parsed" stats.A.Trace_reader.lines
    stats.A.Trace_reader.parsed;
  (* Re-render each parsed event: byte-identical line = true inverse. *)
  List.iter
    (fun { A.Trace_reader.ns; event } ->
      let line = Obs.Jsonl_sink.render_line ~ns event in
      match A.Trace_reader.parse_line line with
      | Some e2 when e2.A.Trace_reader.event = event -> ()
      | _ -> Alcotest.fail ("unstable round-trip: " ^ line))
    entries

(* ------------------------------------------------------------------ *)
(* Chrome B/E balance when power failure lands mid-region              *)

let test_chrome_spans_balanced_across_power_failure () =
  let path = tmp_path "trace.json" in
  let r = run_intermittent (Obs.Chrome_trace.create path) in
  check Alcotest.bool "run saw power failures" true
    (r.H.outcome.Driver.deaths > 0);
  let body =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  Sys.remove path;
  let events =
    match Json.parse body with
    | Ok j -> (
      match Json.list_member "traceEvents" j with
      | Some l -> l
      | None -> Alcotest.fail "no traceEvents array")
    | Error e -> Alcotest.fail ("chrome trace not JSON: " ^ e)
  in
  (* Per (pid, tid): every E closes a B, and nothing stays open. *)
  let depth : (float * float, int) Hashtbl.t = Hashtbl.create 8 in
  let b_count = ref 0 in
  List.iter
    (fun ev ->
      match Json.string_member "ph" ev with
      | Some ("B" | "E" as ph) ->
        let key =
          ( Option.value ~default:nan (Json.float_member "pid" ev),
            Option.value ~default:nan (Json.float_member "tid" ev) )
        in
        let d = Option.value ~default:0 (Hashtbl.find_opt depth key) in
        if ph = "B" then begin
          incr b_count;
          Hashtbl.replace depth key (d + 1)
        end
        else begin
          if d <= 0 then Alcotest.fail "E without matching B";
          Hashtbl.replace depth key (d - 1)
        end
      | _ -> ())
    events;
  check Alcotest.bool "spans present" true (!b_count > 0);
  Hashtbl.iter
    (fun _ d -> check Alcotest.int "all spans closed" 0 d)
    depth

(* ------------------------------------------------------------------ *)
(* Derived views on synthetic entries                                  *)

let entry ns event = { A.Trace_reader.ns; event }

let test_region_view_interruption () =
  (* Two completed regions, then a power failure cutting region 3 at
     the same ns (the driver's emit order for a hard death). *)
  let entries =
    [
      entry 0.0 (Ev.Region_begin { seq = 1; buf = 0 });
      entry 100.0 (Ev.Region_end { seq = 1; buf = 0 });
      entry 100.0 (Ev.Region_begin { seq = 2; buf = 1 });
      entry 250.0 (Ev.Region_end { seq = 2; buf = 1 });
      entry 250.0 (Ev.Region_begin { seq = 3; buf = 0 });
      entry 300.0 (Ev.Death { volts = 2.8 });
      entry 300.0 (Ev.Power_down { volts = 2.8 });
      entry 300.0 (Ev.Region_end { seq = 3; buf = 0 });
    ]
  in
  let v = A.Region_view.of_entries entries in
  check Alcotest.int "completed" 2 v.A.Region_view.completed;
  check Alcotest.int "interrupted" 1 v.A.Region_view.interrupted;
  check (Alcotest.float 0.0) "forward" 250.0 v.A.Region_view.forward_ns;
  check (Alcotest.float 0.0) "wasted" 50.0 v.A.Region_view.wasted_ns;
  check (Alcotest.float 0.0) "p50" 100.0 (A.Region_view.percentile v 50.0);
  check (Alcotest.float 0.0) "p100" 150.0 (A.Region_view.percentile v 100.0)

let test_power_view_recovery_cases () =
  let reboot_cycle ~down ~up ~outage marks =
    [
      entry down (Ev.Death { volts = 2.8 });
      entry down (Ev.Power_down { volts = 2.8 });
      entry up (Ev.Reboot { outage });
    ]
    @ List.map
        (fun name -> entry up (Ev.Mark { name; cat = Ev.Buffer }))
        marks
  in
  let entries =
    reboot_cycle ~down:100.0 ~up:200.0 ~outage:1
      [ "discard seq 4 (2 lines)" ]
    @ reboot_cycle ~down:300.0 ~up:450.0 ~outage:2 [] (* clean *)
    @ reboot_cycle ~down:500.0 ~up:600.0 ~outage:3
        [ "redo seq 9 (3 lines)"; "discard seq 10 (1 lines)" ]
    @ reboot_cycle ~down:700.0 ~up:800.0 ~outage:4 [] (* clean, at EOF *)
  in
  let v = A.Power_view.of_entries entries in
  check Alcotest.int "reboots" 4 v.A.Power_view.reboots;
  check (Alcotest.float 0.0) "off time" 450.0 v.A.Power_view.off_ns;
  check Alcotest.int "(0,0) buffers" 2 v.A.Power_view.discarded_buffers;
  check Alcotest.int "(0,0) lines" 3 v.A.Power_view.discarded_lines;
  check Alcotest.int "(1,0) buffers" 1 v.A.Power_view.redo_buffers;
  check Alcotest.int "(1,0) lines" 3 v.A.Power_view.redo_lines;
  (* The clean reboot followed by another power-down must survive the
     next cycle's accounting; the final one settles at end-of-trace. *)
  check Alcotest.int "(1,1) clean reboots" 2 v.A.Power_view.clean_reboots

let test_buffer_view_overlap_and_dead_time () =
  let phase buf seq phase start_ns end_ns =
    entry end_ns (Ev.Buf_phase { buf; seq; phase; start_ns; end_ns })
  in
  let entries =
    [
      (* buf 0: busy [0,100), dead 50, busy [150,200) *)
      phase 0 1 Ev.Fill 0.0 60.0;
      phase 0 1 Ev.Flush 60.0 80.0;
      phase 0 1 Ev.Drain 80.0 100.0;
      phase 0 3 Ev.Fill 150.0 200.0;
      (* buf 1: busy [80,160) -> overlaps buf 0 on [80,100) and [150,160) *)
      phase 1 2 Ev.Fill 80.0 160.0;
    ]
  in
  let v = A.Buffer_view.of_entries entries in
  (match v.A.Buffer_view.buffers with
  | [ b0; b1 ] ->
    check Alcotest.int "buf0 cycles" 2 b0.A.Buffer_view.cycles;
    check (Alcotest.float 0.0) "buf0 busy" 150.0 (A.Buffer_view.busy_ns b0);
    check (Alcotest.float 0.0) "buf0 dead" 50.0 b0.A.Buffer_view.dead_ns;
    check (Alcotest.float 0.0) "buf1 fill" 80.0 b1.A.Buffer_view.fill_ns
  | _ -> Alcotest.fail "expected two buffers");
  check (Alcotest.float 1e-9) "overlap" 30.0 v.A.Buffer_view.overlap_ns;
  check (Alcotest.float 1e-9) "union" 200.0 v.A.Buffer_view.busy_union_ns;
  let hist = A.Buffer_view.dead_time_histogram v in
  check Alcotest.int "one gap, <=100ns bucket" 1 (snd (List.hd hist))

(* ------------------------------------------------------------------ *)
(* Diff verdicts at the threshold boundary                             *)

let test_diff_threshold_boundary () =
  let run_of v = [ ("k", [ ("on_ns", v) ]) ] in
  let verdict base cur =
    match
      A.Diff.compare_runs ~threshold_pct:5.0 (run_of base) (run_of cur)
    with
    | Ok { A.Diff.deltas = [ d ]; _ } -> d.A.Diff.verdict
    | Ok _ -> Alcotest.fail "expected one delta"
    | Error e -> Alcotest.fail e
  in
  (* on_ns is lower-better; exactly +5% is NOT a regression (strictly
     beyond), +5.1% is, -5.1% is an improvement. *)
  check Alcotest.bool "at threshold" true
    (verdict 100.0 105.0 = A.Diff.Unchanged);
  check Alcotest.bool "just beyond" true
    (verdict 100.0 105.1 = A.Diff.Regression);
  check Alcotest.bool "just below" true
    (verdict 100.0 104.9 = A.Diff.Unchanged);
  check Alcotest.bool "improvement" true
    (verdict 100.0 94.9 = A.Diff.Improvement);
  (* higher-better flips the direction. *)
  let hb base cur =
    match
      A.Diff.compare_runs ~threshold_pct:5.0
        [ ("k", [ ("parallelism_eff", base) ]) ]
        [ ("k", [ ("parallelism_eff", cur) ]) ]
    with
    | Ok { A.Diff.deltas = [ d ]; _ } -> d.A.Diff.verdict
    | _ -> Alcotest.fail "expected one delta"
  in
  check Alcotest.bool "higher-better drop" true
    (hb 100.0 90.0 = A.Diff.Regression);
  check Alcotest.bool "higher-better gain" true
    (hb 100.0 110.0 = A.Diff.Improvement);
  (* Info fields never gate, whatever the delta. *)
  (match
     A.Diff.compare_runs ~threshold_pct:5.0
       [ ("k", [ ("backups", 1.0) ]) ]
       [ ("k", [ ("backups", 100.0) ]) ]
   with
  | Ok d ->
    check Alcotest.bool "info never gates" false (A.Diff.has_regressions d)
  | Error e -> Alcotest.fail e);
  (* Zero baseline: sentinel delta, still a verdict. *)
  (match
     A.Diff.compare_runs ~threshold_pct:5.0 (run_of 0.0) (run_of 1.0)
   with
  | Ok ({ A.Diff.deltas = [ d ]; _ } as t) ->
    check (Alcotest.float 0.0) "sentinel" A.Diff.zero_base_sentinel
      d.A.Diff.delta_pct;
    check Alcotest.bool "zero-base regression" true (A.Diff.has_regressions t)
  | _ -> Alcotest.fail "expected one delta");
  (* Disjoint keys are an error, not an empty success. *)
  (match
     A.Diff.compare_runs ~threshold_pct:5.0
       [ ("a", [ ("on_ns", 1.0) ]) ]
       [ ("b", [ ("on_ns", 1.0) ]) ]
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "no common keys must be an error")

(* ------------------------------------------------------------------ *)
(* Bench history file                                                  *)

let test_bench_history_roundtrip () =
  let path = tmp_path "BENCH.json" in
  if Sys.file_exists path then Sys.remove path;
  let e1 =
    { A.Bench.ts = "2026-08-05T00:00:00Z"; commit = "aaa";
      results = [ ("k", [ ("on_ns", 10.0); ("miss_rate", 0.01) ]) ];
      throughput = [] }
  in
  let e2 = { e1 with A.Bench.commit = "bbb";
                     results = [ ("k", [ ("on_ns", 12.0) ]) ];
                     throughput = [ ("k", 123456.0) ] } in
  (match A.Bench.append ~path e1 with
  | Ok 1 -> ()
  | Ok n -> Alcotest.failf "expected 1 entry, got %d" n
  | Error e -> Alcotest.fail e);
  (match A.Bench.append ~path e2 with
  | Ok 2 -> ()
  | _ -> Alcotest.fail "second append");
  (match A.Bench.load_entries path with
  | Ok [ r1; r2 ] ->
    check Alcotest.string "first commit" "aaa" r1.A.Bench.commit;
    check Alcotest.string "latest commit" "bbb" r2.A.Bench.commit;
    check
      (Alcotest.option (Alcotest.float 0.0))
      "values survive" (Some 10.0)
      (Option.bind
         (List.assoc_opt "k" r1.A.Bench.results)
         (List.assoc_opt "on_ns"))
  | Ok l -> Alcotest.failf "expected 2 entries, got %d" (List.length l)
  | Error e -> Alcotest.fail e);
  (match A.Bench.latest path with
  | Ok e ->
    check Alcotest.string "latest" "bbb" e.A.Bench.commit;
    check
      (Alcotest.option (Alcotest.float 0.0))
      "throughput survives" (Some 123456.0)
      (List.assoc_opt "k" e.A.Bench.throughput)
  | Error e -> Alcotest.fail e);
  (* Schema-v1 entries (no throughput member) still load. *)
  let oc = open_out path in
  output_string oc
    (Printf.sprintf
       "{\"schema_version\":1,\"matrix_id\":%S,\"entries\":[{\"ts\":\"t\",\
        \"commit\":\"v1c\",\"results\":{\"k\":{\"on_ns\":7}}}]}"
       A.Bench.matrix_id);
  close_out oc;
  (match A.Bench.latest path with
  | Ok e ->
    check Alcotest.string "v1 entry loads" "v1c" e.A.Bench.commit;
    check Alcotest.bool "v1 throughput empty" true (e.A.Bench.throughput = [])
  | Error e -> Alcotest.fail e);
  (* Diff.load autodetects the bench format and picks the last entry
     (the v1 file written just above). *)
  (match A.Diff.load path with
  | Ok [ ("k", fields) ] ->
    check
      (Alcotest.option (Alcotest.float 0.0))
      "bench as run" (Some 7.0)
      (List.assoc_opt "on_ns" fields)
  | Ok _ -> Alcotest.fail "unexpected run shape"
  | Error e -> Alcotest.fail e);
  (* A matrix mismatch must refuse to load. *)
  let oc = open_out path in
  output_string oc
    "{\"schema_version\":1,\"matrix_id\":\"other-matrix\",\"entries\":[]}";
  close_out oc;
  (match A.Bench.load_entries path with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "matrix mismatch must error");
  Sys.remove path

(* ------------------------------------------------------------------ *)
(* Report end-to-end                                                   *)

let test_report_on_real_trace () =
  let path = tmp_path "report_trace.jsonl" in
  let _ = run_intermittent (Obs.Jsonl_sink.create path) in
  (match A.Report.build ~trace_path:path () with
  | Error e -> Alcotest.fail e
  | Ok r ->
    check Alcotest.bool "no warnings on full trace" true
      (r.A.Report.warnings = []);
    check Alcotest.bool "sections present" true
      (List.length r.A.Report.sections >= 6);
    List.iter
      (fun f ->
        let body = A.Report.render f r in
        check Alcotest.bool "render non-empty" true
          (String.length body > 0))
      [ A.Report.Text; A.Report.Csv; A.Report.Markdown ]);
  Sys.remove path

let test_report_flags_truncation () =
  let path = tmp_path "truncated_trace.jsonl" in
  let ring = Obs.Ring.create ~capacity:50 in
  let _ = run_intermittent (Obs.Ring.sink ring) in
  let file_sink = Obs.Jsonl_sink.create path in
  Obs.Ring.drain_to ring file_sink;
  file_sink.Sink.close ();
  check Alcotest.bool "ring wrapped" true (Obs.Ring.dropped ring > 0);
  (match A.Report.build ~trace_path:path () with
  | Error e -> Alcotest.fail e
  | Ok r ->
    check Alcotest.bool "truncation warned" true
      (List.exists
         (fun w -> Thelpers.contains w "truncated")
         r.A.Report.warnings))
  ;
  Sys.remove path

let suite =
  [
    Alcotest.test_case "json parser" `Quick test_json_parser;
    Alcotest.test_case "jsonl trace round-trip (real run)" `Quick
      test_jsonl_trace_roundtrip_real_run;
    Alcotest.test_case "chrome spans balanced across power failure" `Quick
      test_chrome_spans_balanced_across_power_failure;
    Alcotest.test_case "region view interruption" `Quick
      test_region_view_interruption;
    Alcotest.test_case "power view recovery cases" `Quick
      test_power_view_recovery_cases;
    Alcotest.test_case "buffer view overlap/dead time" `Quick
      test_buffer_view_overlap_and_dead_time;
    Alcotest.test_case "diff threshold boundary" `Quick
      test_diff_threshold_boundary;
    Alcotest.test_case "bench history round-trip" `Quick
      test_bench_history_roundtrip;
    Alcotest.test_case "report on real trace" `Quick test_report_on_real_trace;
    Alcotest.test_case "report flags truncation" `Quick
      test_report_flags_truncation;
  ]
