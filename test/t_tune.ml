(* Tests for the design-space exploration layer: space enumeration,
   Pareto frontier, journal round-trip, and search determinism/resume. *)
module Space = Sweep_tune.Space
module Frontier = Sweep_tune.Frontier
module Journal = Sweep_tune.Journal
module Search = Sweep_tune.Search
module Results = Sweep_exp.Results

let check = Alcotest.check

(* ---------------- space ---------------- *)

let test_space_default () =
  let pts = Space.points Space.default in
  check Alcotest.int "pinned matrix size" 120 (List.length pts);
  Alcotest.(check bool) "all valid" true (List.for_all Space.valid pts);
  Alcotest.(check bool) "canonically sorted" true
    (List.sort Space.compare pts = pts);
  let ids = List.map Space.id pts in
  check Alcotest.int "ids injective" (List.length pts)
    (List.length (List.sort_uniq Stdlib.compare ids));
  Alcotest.(check bool) "paper point is in the matrix" true
    (List.exists (fun p -> Space.compare p Space.paper_point = 0) pts)

let test_space_validity () =
  Alcotest.(check bool) "paper point valid" true (Space.valid Space.paper_point);
  Alcotest.(check bool) "store cap above buffer rejected" false
    (Space.valid { Space.paper_point with Space.store_cap = 128 });
  Alcotest.(check bool) "store cap below checkpoint reserve rejected" false
    (Space.valid
       { Space.paper_point with Space.store_cap = Sweep_compiler.Regions.ckpt_reserve });
  Alcotest.(check bool) "broken geometry rejected" false
    (Space.valid { Space.paper_point with Space.cache_bytes = 1000 })

let test_space_json_roundtrip () =
  List.iter
    (fun p ->
      let line = "{" ^ Space.json_fields p ^ "}" in
      match Result.to_option (Sweep_analyze.Json.parse line) with
      | None -> Alcotest.fail ("unparseable: " ^ line)
      | Some j -> (
          match Space.of_json j with
          | None -> Alcotest.fail ("no point from: " ^ line)
          | Some p' ->
              check Alcotest.int (Space.id p) 0 (Space.compare p p')))
    (Space.points Space.default)

(* ---------------- frontier ---------------- *)

let entry ?(benches = [ "sha" ]) ~rt ~wr ~hw p =
  { Frontier.point = p; benches;
    objs = { Frontier.runtime_ns = rt; nvm_writes = wr; hw_bits = hw } }

let test_frontier_dominance () =
  let a = { Frontier.runtime_ns = 1.0; nvm_writes = 2.0; hw_bits = 3 } in
  let b = { Frontier.runtime_ns = 2.0; nvm_writes = 2.0; hw_bits = 3 } in
  Alcotest.(check bool) "a dominates b" true (Frontier.dominates a b);
  Alcotest.(check bool) "b does not dominate a" false (Frontier.dominates b a);
  Alcotest.(check bool) "no self-domination" false (Frontier.dominates a a);
  let c = { Frontier.runtime_ns = 0.5; nvm_writes = 9.0; hw_bits = 3 } in
  Alcotest.(check bool) "trade-off: neither dominates" false
    (Frontier.dominates a c || Frontier.dominates c a)

let test_frontier_insertion_order () =
  let p = Space.paper_point in
  let mk rt wr hw = entry ~rt ~wr ~hw
      { p with Space.buffer_entries = 64 + hw; store_cap = 24 } in
  let entries =
    [ mk 1.0 5.0 0; mk 2.0 4.0 1; mk 3.0 3.0 2; mk 4.0 2.0 3; mk 5.0 1.0 4;
      mk 6.0 6.0 5 (* dominated by everything cheaper *) ]
  in
  let members es =
    List.map Frontier.entry_line (Frontier.members (Frontier.of_entries es))
  in
  let base = members entries in
  check Alcotest.int "dominated entry pruned" 5 (List.length base);
  Alcotest.(check (list string)) "reverse insertion, same frontier" base
    (members (List.rev entries));
  let rot = List.tl entries @ [ List.hd entries ] in
  Alcotest.(check (list string)) "rotated insertion, same frontier" base
    (members rot)

(* ---------------- journal ---------------- *)

let sample_cell p bench =
  { Journal.point = p; bench; scale = 0.05; key = "k|" ^ bench;
    runtime_ns = 123.5; nvm_writes = 42; completed = true; failed = false;
    error = "" }

let with_tmp f =
  let path = Filename.temp_file "tune" ".jsonl" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let test_journal_roundtrip () =
  with_tmp (fun path ->
      let cells =
        [ sample_cell Space.paper_point "sha";
          { (sample_cell Space.paper_point "fft") with
            Journal.failed = true; completed = false;
            error = "Driver.Stagnation(\"x\")" } ]
      in
      let oc = open_out path in
      List.iter (Journal.append oc) cells;
      close_out oc;
      match Journal.load path with
      | Error e -> Alcotest.fail e
      | Ok (cells', warnings) ->
          Alcotest.(check (list string)) "no warnings" [] warnings;
          check Alcotest.int "cells preserved" 2 (List.length cells');
          Alcotest.(check bool) "lines identical" true
            (List.map Journal.line cells = List.map Journal.line cells'))

let test_journal_torn_line () =
  with_tmp (fun path ->
      let oc = open_out path in
      Journal.append oc (sample_cell Space.paper_point "sha");
      output_string oc "{\"schema_version\":1,\"key\":\"half";
      close_out oc;
      match Journal.load path with
      | Error e -> Alcotest.fail e
      | Ok (cells, warnings) ->
          check Alcotest.int "intact cell kept" 1 (List.length cells);
          check Alcotest.int "torn final line warned" 1 (List.length warnings))

let test_journal_corrupt_middle () =
  with_tmp (fun path ->
      let oc = open_out path in
      Journal.append oc (sample_cell Space.paper_point "sha");
      output_string oc "garbage\n";
      Journal.append oc (sample_cell Space.paper_point "fft");
      close_out oc;
      Alcotest.(check bool) "corrupt interior line is an error" true
        (match Journal.load path with Error _ -> true | Ok _ -> false))

let test_journal_missing_file () =
  match Journal.load "/nonexistent/tune-journal.jsonl" with
  | Ok ([], []) -> ()
  | _ -> Alcotest.fail "missing journal should load as empty"

(* ---------------- search ---------------- *)

let tiny_space =
  {
    Space.cache_bytes = [ 2048 ];
    assoc = [ 1 ];
    buffer_entries = [ 32; 64 ];
    store_cap = [ 24 ];
    max_unroll = [ 1; 4 ];
    farads = [ 1e-6 ];
    traces = [ Sweep_energy.Power_trace.Rf_office ];
  }

let params ?(strategy = Search.Grid) ?(ladder = [ [ "sha" ] ]) ?(budget = 16)
    ?early_stop () =
  {
    Search.space = tiny_space;
    strategy;
    budget;
    seed = 7;
    scale = 0.05;
    ladder;
    early_stop;
  }

let run_fresh ?workers ?kill_after params =
  Results.clear ();
  with_tmp (fun journal ->
      Sys.remove journal;
      Search.run ?workers ?kill_after ~journal params)

let frontier_lines (o : Search.outcome) =
  List.map Frontier.entry_line (Frontier.members o.Search.frontier)

let test_search_grid_deterministic () =
  match (run_fresh ~workers:1 (params ()), run_fresh ~workers:2 (params ())) with
  | Ok (o1, []), Ok (o2, []) ->
      check Alcotest.int "all cells scheduled" 4 o1.Search.scheduled;
      check Alcotest.int "all cells simulated" 4 o1.Search.executed;
      Alcotest.(check bool) "frontier non-empty" true
        (Frontier.size o1.Search.frontier > 0);
      Alcotest.(check (list string)) "workers do not change the frontier"
        (frontier_lines o1) (frontier_lines o2)
  | _ -> Alcotest.fail "search failed"

let test_search_budget_truncates () =
  match run_fresh ~workers:1 (params ~budget:2 ()) with
  | Ok (o, []) ->
      check Alcotest.int "budget respected" 2 o.Search.scheduled;
      let cands, worst = Search.plan (params ~budget:2 ()) in
      check Alcotest.int "plan matches" 2 (List.length cands);
      check Alcotest.int "worst case within budget" 2 worst
  | _ -> Alcotest.fail "search failed"

let test_search_halving_promotes () =
  let p =
    params ~strategy:Search.Halving ~ladder:[ [ "sha" ]; [ "dijkstra" ] ]
      ~budget:6 ()
  in
  match run_fresh ~workers:2 p with
  | Ok (o, []) ->
      (* rung 0: 4 points on sha; rung 1: best half (2) on dijkstra *)
      check Alcotest.int "budget exhausted" 6 o.Search.scheduled;
      check Alcotest.int "reached the top rung" 1 o.Search.tier;
      Alcotest.(check (list string)) "cumulative bench coverage"
        [ "dijkstra"; "sha" ] o.Search.tier_benches;
      Alcotest.(check bool) "frontier over survivors" true
        (Frontier.size o.Search.frontier >= 1
        && Frontier.size o.Search.frontier <= 2)
  | Ok (_, w) -> Alcotest.fail (String.concat "; " w)
  | Error e -> Alcotest.fail e

let test_search_resume_equivalence () =
  Results.clear ();
  with_tmp (fun journal ->
      Sys.remove journal;
      let p = params () in
      (* Uninterrupted reference run. *)
      let reference =
        match run_fresh ~workers:1 p with
        | Ok (o, []) -> frontier_lines o
        | _ -> Alcotest.fail "reference run failed"
      in
      (* Killed run: Interrupted escapes, journal keeps completed work. *)
      Results.clear ();
      (match Search.run ~workers:1 ~kill_after:1 ~journal p with
      | exception Search.Interrupted { executed } ->
          Alcotest.(check bool) "killed after at least one eval" true
            (executed >= 1)
      | Ok _ -> Alcotest.fail "kill_after did not fire"
      | Error e -> Alcotest.fail e);
      Alcotest.(check bool) "journal survives the kill" true
        (Sys.file_exists journal);
      (* Resume: nothing re-evaluated, identical frontier. *)
      Results.clear ();
      match Search.run ~workers:1 ~journal p with
      | Ok (o, []) ->
          check Alcotest.int "budget counts cached cells" 4 o.Search.scheduled;
          Alcotest.(check bool) "journal cells reused" true (o.Search.cached >= 1);
          Alcotest.(check (list string)) "resumed = uninterrupted" reference
            (frontier_lines o)
      | Ok (_, w) -> Alcotest.fail (String.concat "; " w)
      | Error e -> Alcotest.fail e)

(* ---------------- early stop ---------------- *)

let contains_sub s sub =
  let n = String.length sub in
  let rec go i =
    i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
  in
  go 0

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Seed the journal with a synthetic completed sha cell whose 1 ns
   runtime dominates everything: with early-stop on, every real cell's
   budget collapses to margin * 1 ns, so the whole space is pruned —
   deterministically, with no dependence on actual cell runtimes. *)
let test_early_stop_prunes () =
  Results.clear ();
  with_tmp (fun journal ->
      Sys.remove journal;
      let seed =
        {
          (sample_cell Space.paper_point "sha") with
          Journal.key = "synthetic|sha";
          runtime_ns = 1.0;
        }
      in
      let oc = open_out journal in
      Journal.append oc seed;
      close_out oc;
      let pruned = Atomic.make 0 in
      let detach =
        Sweep_obs.Sink.spy (fun ~ns:_ ev ->
            match ev with
            | Sweep_obs.Event.Tune_prune _ -> Atomic.incr pruned
            | _ -> ())
      in
      let result =
        Fun.protect ~finally:detach (fun () ->
            Search.run ~workers:1 ~journal (params ~early_stop:1.5 ()))
      in
      match result with
      | Ok (o, []) ->
          check Alcotest.int "all cells still executed" 4 o.Search.executed;
          check Alcotest.int "every cell emitted Tune_prune" 4
            (Atomic.get pruned);
          check Alcotest.int "frontier empty" 0
            (Frontier.size o.Search.frontier);
          check Alcotest.int "every point failed" 4
            (List.length o.Search.failed_points);
          Alcotest.(check bool) "failures say early-stopped" true
            (List.for_all
               (fun (_, e) -> contains_sub e "early-stopped")
               o.Search.failed_points);
          (match Journal.load journal with
          | Ok (cells, []) ->
              let real =
                List.filter
                  (fun c -> c.Journal.key <> "synthetic|sha")
                  cells
              in
              check Alcotest.int "real cells journalled" 4 (List.length real);
              Alcotest.(check bool)
                "pruned cells: incomplete, not failed, budget recorded" true
                (List.for_all
                   (fun c ->
                     (not c.Journal.completed)
                     && (not c.Journal.failed)
                     && contains_sub c.Journal.error "early-stopped")
                   real)
          | _ -> Alcotest.fail "journal reload failed")
      | Ok (_, w) -> Alcotest.fail (String.concat "; " w)
      | Error e -> Alcotest.fail e)

(* A space wide enough for two canonical chunks (24 cells over a
   16-cell chunk size), so chunk 2's budgets really derive from chunk
   1's journalled results.  The frontier and the journal bytes must be
   identical across worker counts and across a kill/resume. *)
let wide_params =
  {
    (params ~ladder:[ [ "sha"; "dijkstra" ] ] ~budget:24 ~early_stop:1.0 ()) with
    Search.space =
      {
        tiny_space with
        Space.max_unroll = [ 1; 2; 4 ];
        farads = [ 1e-6; 4.7e-7 ];
      };
  }

let test_early_stop_resume_equivalence () =
  let p = wide_params in
  let run_to_end ?kill_first workers =
    Results.clear ();
    with_tmp (fun journal ->
        Sys.remove journal;
        (match kill_first with
        | None -> ()
        | Some n -> (
            match Search.run ~workers ~kill_after:n ~journal p with
            | exception Search.Interrupted _ -> Results.clear ()
            | Ok _ -> Alcotest.fail "kill_after did not fire"
            | Error e -> Alcotest.fail e));
        match Search.run ~workers ~journal p with
        | Ok (o, []) -> (frontier_lines o, read_file journal, o)
        | Ok (_, w) -> Alcotest.fail (String.concat "; " w)
        | Error e -> Alcotest.fail e)
  in
  let f1, j1, o1 = run_to_end 1 in
  let f4, j4, _ = run_to_end 4 in
  let fr, jr, o_res = run_to_end ~kill_first:1 1 in
  check Alcotest.int "two chunks of cells" 24 o1.Search.executed;
  Alcotest.(check bool) "pruning was active" true
    (contains_sub j1 "early-stopped");
  Alcotest.(check bool) "frontier survives pruning" true
    (Frontier.size o1.Search.frontier > 0);
  Alcotest.(check (list string)) "frontier j1 = j4" f1 f4;
  check Alcotest.string "journal j1 = j4 (byte-identical)" j1 j4;
  Alcotest.(check bool) "resume reused the first chunk" true
    (o_res.Search.cached >= 16);
  Alcotest.(check (list string)) "frontier resumed = uninterrupted" f1 fr;
  check Alcotest.string "journal resumed = uninterrupted (byte-identical)" j1
    jr

(* The off switch is exact: early_stop = None must reproduce the
   non-early-stop search cell for cell. *)
let test_early_stop_off_is_identity () =
  let strip_params = { wide_params with Search.early_stop = None } in
  let run pp =
    Results.clear ();
    with_tmp (fun journal ->
        Sys.remove journal;
        match Search.run ~workers:1 ~journal pp with
        | Ok (o, []) -> (frontier_lines o, read_file journal)
        | Ok (_, w) -> Alcotest.fail (String.concat "; " w)
        | Error e -> Alcotest.fail e)
  in
  let f_off, j_off = run strip_params in
  let f_off2, j_off2 = run strip_params in
  Alcotest.(check (list string)) "frontier reproducible" f_off f_off2;
  check Alcotest.string "journal reproducible" j_off j_off2;
  Alcotest.(check bool) "no prune markers without early-stop" false
    (contains_sub j_off "early-stopped")

(* ---------------- analyze round-trip ---------------- *)

let test_tune_file_roundtrip () =
  Results.clear ();
  with_tmp (fun journal ->
      Sys.remove journal;
      match Search.run ~workers:1 ~journal (params ()) with
      | Ok (o, []) ->
          with_tmp (fun fpath ->
              Frontier.write_jsonl fpath o.Search.frontier;
              (match Sweep_analyze.Tune_file.load_frontier fpath with
              | Error e -> Alcotest.fail e
              | Ok (entries, warnings) ->
                  Alcotest.(check (list string)) "no frontier warnings" []
                    warnings;
                  check Alcotest.int "every member parsed"
                    (Frontier.size o.Search.frontier)
                    (List.length entries));
              match Sweep_analyze.Tune_file.load_journal journal with
              | Error e -> Alcotest.fail e
              | Ok (cells, warnings) ->
                  Alcotest.(check (list string)) "no journal warnings" []
                    warnings;
                  check Alcotest.int "every cell parsed" o.Search.executed
                    (List.length cells);
                  let report =
                    Sweep_analyze.Tune_file.report ~journal:cells
                      ~source:fpath
                      (match Sweep_analyze.Tune_file.load_frontier fpath with
                      | Ok (es, _) -> es
                      | Error _ -> [])
                  in
                  Alcotest.(check bool) "frontier + sensitivity sections" true
                    (List.length report.Sweep_analyze.Report.sections >= 2);
                  Alcotest.(check bool) "text render non-empty" true
                    (String.length
                       (Sweep_analyze.Report.render Sweep_analyze.Report.Text
                          report)
                    > 0))
      | Ok (_, w) -> Alcotest.fail (String.concat "; " w)
      | Error e -> Alcotest.fail e)

let suite =
  [
    Alcotest.test_case "space default matrix" `Quick test_space_default;
    Alcotest.test_case "space validity" `Quick test_space_validity;
    Alcotest.test_case "space json roundtrip" `Quick test_space_json_roundtrip;
    Alcotest.test_case "frontier dominance" `Quick test_frontier_dominance;
    Alcotest.test_case "frontier insertion order" `Quick
      test_frontier_insertion_order;
    Alcotest.test_case "journal roundtrip" `Quick test_journal_roundtrip;
    Alcotest.test_case "journal torn line" `Quick test_journal_torn_line;
    Alcotest.test_case "journal corrupt middle" `Quick
      test_journal_corrupt_middle;
    Alcotest.test_case "journal missing file" `Quick test_journal_missing_file;
    Alcotest.test_case "search grid deterministic" `Slow
      test_search_grid_deterministic;
    Alcotest.test_case "search budget truncates" `Slow
      test_search_budget_truncates;
    Alcotest.test_case "search halving promotes" `Slow
      test_search_halving_promotes;
    Alcotest.test_case "search resume equivalence" `Slow
      test_search_resume_equivalence;
    Alcotest.test_case "early stop prunes dominated cells" `Slow
      test_early_stop_prunes;
    Alcotest.test_case "early stop kill/resume equivalence" `Slow
      test_early_stop_resume_equivalence;
    Alcotest.test_case "early stop off is identity" `Slow
      test_early_stop_off_is_identity;
    Alcotest.test_case "tune file roundtrip" `Slow test_tune_file_roundtrip;
  ]
