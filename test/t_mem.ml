(* Tests for the NVM and cache models. *)
module Nvm = Sweep_mem.Nvm
module Cache = Sweep_mem.Cache
module Layout = Sweep_isa.Layout

let check = Alcotest.check

(* The word-index bounds asserts are off by default (hot path); keep
   them armed for the whole memory suite so layout bugs fail loudly. *)
let () = Cache.set_debug_checks true

let test_nvm_rw () =
  let nvm = Nvm.create () in
  Nvm.write_word nvm 0x100 42;
  check Alcotest.int "read back" 42 (Nvm.read_word nvm 0x100);
  check Alcotest.int "unwritten is zero" 0 (Nvm.read_word nvm 0x104)

let test_nvm_counters () =
  let nvm = Nvm.create () in
  Nvm.write_word nvm 0x40 1;
  Nvm.write_line nvm 0x80 (Array.make 16 9);
  ignore (Nvm.read_word nvm 0x40);
  ignore (Nvm.read_line nvm 0x80);
  check Alcotest.int "write events" 2 (Nvm.write_events nvm);
  check Alcotest.int "read events" 2 (Nvm.read_events nvm);
  check Alcotest.int "bytes" (4 + 64) (Nvm.bytes_written nvm);
  Nvm.reset_counters nvm;
  check Alcotest.int "reset" 0 (Nvm.write_events nvm)

let test_nvm_peek_poke_uncounted () =
  let nvm = Nvm.create () in
  Nvm.poke_word nvm 0x10 5;
  check Alcotest.int "poke visible" 5 (Nvm.peek_word nvm 0x10);
  check Alcotest.int "no events" 0 (Nvm.read_events nvm + Nvm.write_events nvm)

let test_nvm_alignment () =
  let nvm = Nvm.create () in
  Alcotest.(check bool) "unaligned word raises" true
    (match Nvm.read_word nvm 0x3 with
    | _ -> false
    | exception Invalid_argument _ -> true);
  Alcotest.(check bool) "unaligned line raises" true
    (match Nvm.read_line nvm 0x20 with
    | _ -> false
    | exception Invalid_argument _ -> true);
  Alcotest.(check bool) "out of range raises" true
    (match Nvm.read_word nvm Layout.nvm_bytes with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_nvm_line_word_agree () =
  let nvm = Nvm.create () in
  let data = Array.init 16 (fun k -> k * 11) in
  Nvm.write_line nvm 0x1000 data;
  check Alcotest.int "word 5 of line" 55 (Nvm.read_word nvm (0x1000 + 20))

let test_nvm_image () =
  let nvm = Nvm.create () in
  Nvm.poke_word nvm 0x100 1;
  Nvm.poke_word nvm 0x104 2;
  check (Alcotest.array Alcotest.int) "image" [| 1; 2 |]
    (Nvm.image nvm ~lo:0x100 ~hi:0x108)

let make_cache () = Cache.create ~size_bytes:1024 ~assoc:2

let test_cache_geometry () =
  let c = make_cache () in
  check Alcotest.int "line count" 16 (Cache.line_count c);
  check Alcotest.int "size" 1024 (Cache.size_bytes c);
  check Alcotest.int "assoc" 2 (Cache.assoc c);
  Alcotest.(check bool) "bad size raises" true
    (match Cache.create ~size_bytes:1000 ~assoc:2 with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_cache_install_find () =
  let c = make_cache () in
  let data = Array.init 16 (fun k -> k + 100) in
  let li = Cache.install c 0x2000 data in
  check Alcotest.int "read word" 103 (Cache.read_word c li 0x200C);
  let hit = Cache.find c 0x2004 in
  Alcotest.(check bool) "find same line" true (hit = li);
  Alcotest.(check bool) "other line misses" true
    (Cache.find c 0x4000 = Cache.no_line)

let test_cache_write_word () =
  let c = make_cache () in
  let li = Cache.install c 0 (Array.make 16 0) in
  Cache.write_word c li 8 77;
  check Alcotest.int "written" 77 (Cache.read_word c li 8)

let test_cache_lru_eviction () =
  let c = make_cache () in
  (* 8 sets: addresses 0, 0x2000 and 0x4000 all map to set 0. *)
  let l0 = Cache.install c 0x0 (Array.make 16 1) in
  let l1 = Cache.install c 0x2000 (Array.make 16 2) in
  Cache.touch c l0;
  (* l1 is now LRU; the next fill of set 0 must evict it. *)
  let victim = Cache.victim c 0x4000 in
  check Alcotest.int "victim is LRU" (Cache.line_addr c l1)
    (Cache.line_addr c victim);
  ignore (Cache.install c 0x4000 (Array.make 16 3));
  Alcotest.(check bool) "evicted line gone" true
    (Cache.find c 0x2000 = Cache.no_line);
  Alcotest.(check bool) "touched line survives" true
    (Cache.find c 0x0 <> Cache.no_line)

let test_cache_victim_prefers_invalid () =
  let c = make_cache () in
  ignore (Cache.install c 0x0 (Array.make 16 1));
  let victim = Cache.victim c 0x2000 in
  Alcotest.(check bool) "invalid way preferred" true (not (Cache.valid c victim))

let test_cache_dirty_tracking () =
  let c = make_cache () in
  let l0 = Cache.install c 0x0 (Array.make 16 0) in
  let _l1 = Cache.install c 0x40 (Array.make 16 0) in
  Cache.set_dirty c l0 ~region:7;
  check Alcotest.int "dirty region recorded" 7 (Cache.dirty_region c l0);
  check Alcotest.int "one dirty line" 1 (List.length (Cache.dirty_lines c));
  Cache.clean_all c;
  check Alcotest.int "clean_all clears" 0 (List.length (Cache.dirty_lines c));
  Alcotest.(check bool) "data survives clean" true
    (Cache.find c 0x0 <> Cache.no_line);
  Cache.invalidate_all c;
  Alcotest.(check bool) "invalidate drops" true
    (Cache.find c 0x0 = Cache.no_line)

let test_cache_counters () =
  let c = make_cache () in
  Cache.record_hit c;
  Cache.record_hit c;
  Cache.record_miss c;
  check Alcotest.int "hits" 2 (Cache.hits c);
  check Alcotest.int "misses" 1 (Cache.misses c);
  check (Alcotest.float 1e-9) "miss rate" (1.0 /. 3.0) (Cache.miss_rate c);
  Cache.reset_counters c;
  check (Alcotest.float 1e-9) "empty rate" 0.0 (Cache.miss_rate c)

let prop_cache_set_discipline =
  QCheck2.Test.make ~name:"cache: at most assoc lines per set" ~count:100
    QCheck2.Gen.(list_size (int_range 1 80) (int_range 0 255))
    (fun line_ids ->
      let c = make_cache () in
      List.iter
        (fun id -> ignore (Cache.install c (id * 64) (Array.make 16 id)))
        line_ids;
      (* Count lines per set. *)
      let sets = Hashtbl.create 16 in
      Cache.iter_lines c (fun li ->
          if Cache.valid c li then begin
            let set = Cache.line_addr c li / 64 mod 8 in
            Hashtbl.replace sets set
              (1 + Option.value ~default:0 (Hashtbl.find_opt sets set))
          end);
      Hashtbl.fold (fun _ n ok -> ok && n <= 2) sets true)

let prop_cache_find_returns_installed =
  QCheck2.Test.make ~name:"cache: find returns latest install" ~count:100
    QCheck2.Gen.(list_size (int_range 1 40) (int_range 0 31))
    (fun ids ->
      let c = make_cache () in
      let last = Hashtbl.create 8 in
      List.iteri
        (fun i id ->
          ignore (Cache.install c (id * 64) (Array.make 16 i));
          Hashtbl.replace last id i)
        ids;
      Hashtbl.fold
        (fun id stamp ok ->
          ok
          &&
          let li = Cache.find c (id * 64) in
          li = Cache.no_line (* may have been evicted *)
          || Cache.read_word c li (id * 64) = stamp)
        last true)

let suite =
  [
    Alcotest.test_case "nvm read/write" `Quick test_nvm_rw;
    Alcotest.test_case "nvm counters" `Quick test_nvm_counters;
    Alcotest.test_case "nvm peek/poke" `Quick test_nvm_peek_poke_uncounted;
    Alcotest.test_case "nvm alignment" `Quick test_nvm_alignment;
    Alcotest.test_case "nvm line/word agree" `Quick test_nvm_line_word_agree;
    Alcotest.test_case "nvm image" `Quick test_nvm_image;
    Alcotest.test_case "cache geometry" `Quick test_cache_geometry;
    Alcotest.test_case "cache install/find" `Quick test_cache_install_find;
    Alcotest.test_case "cache write word" `Quick test_cache_write_word;
    Alcotest.test_case "cache LRU" `Quick test_cache_lru_eviction;
    Alcotest.test_case "cache invalid preferred" `Quick
      test_cache_victim_prefers_invalid;
    Alcotest.test_case "cache dirty tracking" `Quick test_cache_dirty_tracking;
    Alcotest.test_case "cache counters" `Quick test_cache_counters;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_cache_set_discipline; prop_cache_find_returns_installed ]
