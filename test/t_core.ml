(* Tests for the SweepCache core: persist buffer, WBI table, and the
   machine's persistence/recovery protocol driven directly. *)
module Pb = Sweepcache_core.Persist_buffer
module Wbi = Sweepcache_core.Wbi_table
module Sweepcache = Sweepcache_core.Sweepcache
module M = Sweep_machine.Machine_intf
module Config = Sweep_machine.Config
module Cpu = Sweep_machine.Cpu
module Nvm = Sweep_mem.Nvm
module H = Sweep_sim.Harness
module Pipeline = Sweep_compiler.Pipeline
module Layout = Sweep_isa.Layout

let check = Alcotest.check
let line k = Array.make 16 k

let test_pb_fifo_and_search () =
  let pb = Pb.create ~capacity:4 in
  Alcotest.(check bool) "starts empty" true (Pb.is_empty pb);
  Pb.push pb ~base:0x100 ~data:(line 1);
  Pb.push pb ~base:0x200 ~data:(line 2);
  Pb.push pb ~base:0x100 ~data:(line 3);
  check Alcotest.int "count" 3 (Pb.count pb);
  (match Pb.search pb 0x100 with
  | Some (data, scanned) ->
    check Alcotest.int "youngest wins" 3 data.(0);
    check Alcotest.int "found first" 1 scanned
  | None -> Alcotest.fail "expected hit");
  (match Pb.search pb 0x200 with
  | Some (_, scanned) -> check Alcotest.int "second position" 2 scanned
  | None -> Alcotest.fail "expected hit");
  Alcotest.(check bool) "miss" true (Pb.search pb 0x300 = None)

let test_pb_oldest_first_order () =
  let pb = Pb.create ~capacity:4 in
  Pb.push pb ~base:0x100 ~data:(line 1);
  Pb.push pb ~base:0x100 ~data:(line 2);
  (match Pb.entries_oldest_first pb with
  | [ (_, d1); (_, d2) ] ->
    check Alcotest.int "older first" 1 d1.(0);
    check Alcotest.int "younger last (overwrites on drain)" 2 d2.(0)
  | _ -> Alcotest.fail "expected two entries")

let test_pb_overflow () =
  let pb = Pb.create ~capacity:2 in
  Pb.push pb ~base:0 ~data:(line 0);
  Pb.push pb ~base:64 ~data:(line 1);
  Alcotest.check_raises "third push overflows" Pb.Overflow (fun () ->
      Pb.push pb ~base:128 ~data:(line 2))

let test_pb_clear_and_peak () =
  let pb = Pb.create ~capacity:8 in
  Pb.push pb ~base:0 ~data:(line 0);
  Pb.push pb ~base:64 ~data:(line 1);
  Pb.clear pb;
  Alcotest.(check bool) "cleared" true (Pb.is_empty pb);
  check Alcotest.int "peak survives clear" 2 (Pb.peak pb)

let test_pb_data_copied () =
  let pb = Pb.create ~capacity:2 in
  let d = line 7 in
  Pb.push pb ~base:0 ~data:d;
  d.(0) <- 99;
  match Pb.search pb 0 with
  | Some (found, _) -> check Alcotest.int "snapshot isolated" 7 found.(0)
  | None -> Alcotest.fail "expected hit"

let test_wbi () =
  let w = Wbi.create () in
  Wbi.mark w 0x100;
  Wbi.mark w 0x200;
  Wbi.mark w 0x100;
  check Alcotest.int "dedup" 2 (Wbi.count w);
  check (Alcotest.list Alcotest.int) "marking order" [ 0x100; 0x200 ] (Wbi.bases w);
  Wbi.clear w;
  check Alcotest.int "cleared" 0 (Wbi.count w)

(* ------------------------------------------------------------------ *)
(* Protocol tests on a real compiled program, driving the machine by
   hand so failures land at chosen points. *)

let compiled_tiny = lazy (H.compile H.Sweep (Thelpers.tiny_program ()))

let fresh_machine () =
  Sweepcache.create Config.default (Lazy.force compiled_tiny).Pipeline.program

let step_n t n =
  let acc = Sweepcache.acc t in
  let consumed = ref 0.0 in
  for _ = 1 to n do
    if not (Sweepcache.halted t) then begin
      acc.Sweep_machine.Exec.Acc.now <- !consumed;
      Sweepcache.step t;
      consumed := !consumed +. acc.Sweep_machine.Exec.Acc.ns
    end
  done;
  !consumed

let test_recovery_case_00 () =
  (* Crash mid-way through the very first region: nothing committed, so
     recovery restores the entry PC and zeroed registers. *)
  let t = fresh_machine () in
  let prog = (Lazy.force compiled_tiny).Pipeline.program in
  let now = step_n t 3 in
  Sweepcache.on_power_failure t ~now_ns:now;
  ignore (Sweepcache.on_reboot t ~now_ns:(now +. 1.0));
  let cpu = Sweepcache.cpu t in
  check Alcotest.int "pc back at entry" prog.Sweep_isa.Program.entry cpu.Cpu.pc;
  Alcotest.(check bool) "not halted" false cpu.Cpu.halted

let test_recovery_restores_checkpointed_registers () =
  (* Run until a few regions committed; crash; the restored registers
     must equal the NVM checkpoint slots, and the PC the checkpoint PC. *)
  let t = fresh_machine () in
  let now = step_n t 400 in
  Sweepcache.on_power_failure t ~now_ns:now;
  ignore (Sweepcache.on_reboot t ~now_ns:(now +. 5.0));
  let cpu = Sweepcache.cpu t in
  let nvm = Sweepcache.nvm t in
  let layout = (Lazy.force compiled_tiny).Pipeline.program.Sweep_isa.Program.layout in
  check Alcotest.int "pc from slot"
    (Nvm.peek_word nvm layout.Layout.ckpt_pc)
    cpu.Cpu.pc;
  for r = 0 to Sweep_isa.Reg.count - 1 do
    if r <> Sweep_isa.Reg.scratch2 then
      check Alcotest.int
        (Printf.sprintf "r%d from slot" r)
        (Nvm.peek_word nvm (Layout.reg_slot layout r))
        cpu.Cpu.regs.(r)
  done

let test_crash_then_completion_is_consistent () =
  (* Crash at many different depths; after recovery, running to the end
     must still produce the interpreter's memory image. *)
  let prog_ast = Thelpers.tiny_program () in
  let expected = Thelpers.interp_image prog_ast in
  List.iter
    (fun depth ->
      let compiled = H.compile H.Sweep prog_ast in
      let t = Sweepcache.create Config.default compiled.Pipeline.program in
      let now = step_n t depth in
      Sweepcache.on_power_failure t ~now_ns:now;
      let c = Sweepcache.on_reboot t ~now_ns:(now +. 10.0) in
      let resume = now +. 10.0 +. c.Sweep_machine.Cost.ns in
      let acc = Sweepcache.acc t in
      let consumed = ref resume in
      let guard = ref 0 in
      while (not (Sweepcache.halted t)) && !guard < 5_000_000 do
        acc.Sweep_machine.Exec.Acc.now <- !consumed;
        Sweepcache.step t;
        consumed := !consumed +. acc.Sweep_machine.Exec.Acc.ns;
        incr guard
      done;
      Alcotest.(check bool) "finished" true (Sweepcache.halted t);
      ignore (Sweepcache.drain t ~now_ns:!consumed);
      let nvm = Sweepcache.nvm t in
      let actual =
        List.map
          (fun (name, base, words) ->
            ( name,
              Array.init words (fun k -> Nvm.peek_word nvm (base + (4 * k))) ))
          compiled.Pipeline.globals
      in
      if not (Thelpers.image_equal expected actual) then
        Alcotest.failf "inconsistent after crash at depth %d" depth)
    [ 1; 7; 42; 100; 333; 777; 1500 ]

let test_buffer_peak_bounded () =
  let r = Thelpers.assert_consistent H.Sweep (Thelpers.tiny_program ()) in
  let st = H.mstats r in
  Alcotest.(check bool) "peak within capacity" true
    (st.Sweep_machine.Mstats.buffer_peak
     <= Config.default.Config.buffer_entries)

let test_single_buffer_config_works () =
  let config = { Config.default with buffer_count = 1 } in
  ignore (Thelpers.assert_consistent ~config H.Sweep (Thelpers.tiny_program ()))

let test_nvm_search_config_works () =
  let config = Config.with_search Config.default Config.Nvm_search in
  ignore (Thelpers.assert_consistent ~config H.Sweep (Thelpers.tiny_program ()))

let test_region_persistence_writes_nvm () =
  (* After enough execution plus drain, checkpoint slots must hold data:
     region commits write through the persist buffer to NVM. *)
  let t = fresh_machine () in
  let now = step_n t 2000 in
  let _ = Sweepcache.drain t ~now_ns:now in
  let nvm = Sweepcache.nvm t in
  let layout = (Lazy.force compiled_tiny).Pipeline.program.Sweep_isa.Program.layout in
  Alcotest.(check bool) "pc slot updated beyond entry" true
    (Nvm.peek_word nvm layout.Layout.ckpt_pc
    <> (Lazy.force compiled_tiny).Pipeline.program.Sweep_isa.Program.entry)

let suite =
  [
    Alcotest.test_case "buffer fifo/search" `Quick test_pb_fifo_and_search;
    Alcotest.test_case "buffer drain order" `Quick test_pb_oldest_first_order;
    Alcotest.test_case "buffer overflow" `Quick test_pb_overflow;
    Alcotest.test_case "buffer clear/peak" `Quick test_pb_clear_and_peak;
    Alcotest.test_case "buffer copies data" `Quick test_pb_data_copied;
    Alcotest.test_case "wbi table" `Quick test_wbi;
    Alcotest.test_case "recovery case (0,0)" `Quick test_recovery_case_00;
    Alcotest.test_case "recovery restores slots" `Quick
      test_recovery_restores_checkpointed_registers;
    Alcotest.test_case "crash+resume consistent" `Quick
      test_crash_then_completion_is_consistent;
    Alcotest.test_case "buffer peak bounded" `Quick test_buffer_peak_bounded;
    Alcotest.test_case "single-buffer config" `Quick test_single_buffer_config_works;
    Alcotest.test_case "nvm-search config" `Quick test_nvm_search_config_works;
    Alcotest.test_case "persistence reaches NVM" `Quick
      test_region_persistence_writes_nvm;
  ]
