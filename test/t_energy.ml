(* Tests for the capacitor, power traces and detector models. *)
module Capacitor = Sweep_energy.Capacitor
module Trace = Sweep_energy.Power_trace
module Detector = Sweep_energy.Detector
module E = Sweep_energy.Energy_config

let check = Alcotest.check

let cap () = Capacitor.create ~farads:470e-9 ~v_max:3.5 ~v_min:2.8

let test_cap_initial () =
  let c = cap () in
  check (Alcotest.float 1e-6) "starts at vmax" 3.5 (Capacitor.voltage c);
  check (Alcotest.float 1e-12) "energy is half CV^2"
    (0.5 *. 470e-9 *. 3.5 *. 3.5)
    (Capacitor.energy c)

let test_cap_consume_harvest () =
  let c = cap () in
  let e0 = Capacitor.energy c in
  Capacitor.consume c 1e-7;
  check (Alcotest.float 1e-15) "consumed" (e0 -. 1e-7) (Capacitor.energy c);
  Capacitor.harvest c ~power_w:1e-3 ~dt_s:1e-4;
  check (Alcotest.float 1e-12) "harvest clamps at vmax" e0 (Capacitor.energy c)

let test_cap_floor () =
  let c = cap () in
  Capacitor.consume c 1.0;
  check (Alcotest.float 0.0) "floored at zero" 0.0 (Capacitor.energy c)

let test_cap_thresholds () =
  let c = cap () in
  Alcotest.(check bool) "above 3.4 initially" true (Capacitor.above c 3.4);
  Capacitor.set_voltage c 3.0;
  Alcotest.(check bool) "not above 3.2" false (Capacitor.above c 3.2);
  Alcotest.(check bool) "above 2.9" true (Capacitor.above c 2.9);
  check (Alcotest.float 1e-12) "usable above 2.8"
    (Capacitor.energy_at c 3.0 -. Capacitor.energy_at c 2.8)
    (Capacitor.usable_above c 2.8);
  check (Alcotest.float 0.0) "usable above current" 0.0
    (Capacitor.usable_above c 3.2)

let test_cap_voltage_roundtrip () =
  let c = cap () in
  Capacitor.set_voltage c 3.123;
  check (Alcotest.float 1e-9) "roundtrip" 3.123 (Capacitor.voltage c)

let test_cap_invalid () =
  Alcotest.(check bool) "bad args raise" true
    (match Capacitor.create ~farads:0.0 ~v_max:3.5 ~v_min:2.8 with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_trace_deterministic () =
  let a = Trace.make ~seed:9 Trace.Rf_home in
  let b = Trace.make ~seed:9 Trace.Rf_home in
  Alcotest.(check bool) "same seed same trace" true
    (List.for_all
       (fun t -> Trace.power a t = Trace.power b t)
       [ 0.0; 0.001; 0.5; 1.7; 42.0 ])

let test_trace_mean_power () =
  List.iter
    (fun kind ->
      let t = Trace.make kind in
      let mean = Trace.mean_power t in
      Alcotest.(check bool)
        (Trace.kind_name kind ^ " mean in ambient range")
        true
        (mean > 50e-6 && mean < 800e-6))
    Trace.all_kinds

let test_trace_burstiness_ordering () =
  let duty k = Trace.duty_cycle (Trace.make k) in
  Alcotest.(check bool) "RF bursty" true (duty Trace.Rf_office < 0.8);
  Alcotest.(check bool) "solar steady" true (duty Trace.Solar > 0.95);
  Alcotest.(check bool) "thermal steady" true (duty Trace.Thermal > 0.95)

let test_trace_wraps () =
  let t = Trace.make Trace.Thermal in
  check (Alcotest.float 1e-12) "wraps around" (Trace.power t 0.0)
    (Trace.power t 60.0)

let test_detector_kinds () =
  let jit = Detector.jit ~v_backup:2.9 ~v_restore:3.2 in
  let sweep = Detector.sweep ~v_restore:3.3 in
  Alcotest.(check bool) "jit has backup threshold" true
    (jit.Detector.v_backup = Some 2.9);
  Alcotest.(check bool) "sweep has none" true (sweep.Detector.v_backup = None);
  Alcotest.(check bool) "sweep draws less" true
    (Detector.quiescent_power_w sweep < Detector.quiescent_power_w jit);
  Alcotest.(check bool) "sweep restores faster" true
    (sweep.Detector.t_plh_ns < jit.Detector.t_plh_ns)

let test_detector_overrides () =
  let d = Detector.jit ~v_backup:2.9 ~v_restore:3.2 in
  let d' = Detector.with_delays d ~t_phl_ns:1.0 ~t_plh_ns:2.0 in
  check (Alcotest.float 0.0) "t_phl" 1.0 d'.Detector.t_phl_ns;
  let d'' = Detector.with_thresholds d ~v_backup:3.0 ~v_restore:3.3 () in
  Alcotest.(check bool) "backup bumped" true (d''.Detector.v_backup = Some 3.0);
  let d3 = Detector.with_thresholds d ~v_restore:3.25 () in
  Alcotest.(check bool) "backup kept" true (d3.Detector.v_backup = Some 2.9)

let test_energy_config_cycles () =
  let e = E.default in
  check (Alcotest.float 1e-12) "1ns cycle at 1GHz" 1.0 (E.cycle_ns e);
  check Alcotest.int "nvm read cycles" 20 (E.nvm_read_cycles e);
  check Alcotest.int "nvm write cycles" 120 (E.nvm_write_cycles e)

let test_energy_config_orderings () =
  let e = E.default in
  Alcotest.(check bool) "dma < clwb < line write latency story" true
    (e.E.dma_line_ns < e.E.clwb_drain_ns
    && e.E.clwb_drain_ns < e.E.nvm_write_ns);
  Alcotest.(check bool) "cache cheaper than NVM" true
    (e.E.e_cache_access < e.E.e_nvm_read)

let suite =
  [
    Alcotest.test_case "capacitor initial" `Quick test_cap_initial;
    Alcotest.test_case "capacitor consume/harvest" `Quick test_cap_consume_harvest;
    Alcotest.test_case "capacitor floor" `Quick test_cap_floor;
    Alcotest.test_case "capacitor thresholds" `Quick test_cap_thresholds;
    Alcotest.test_case "capacitor roundtrip" `Quick test_cap_voltage_roundtrip;
    Alcotest.test_case "capacitor invalid" `Quick test_cap_invalid;
    Alcotest.test_case "trace deterministic" `Quick test_trace_deterministic;
    Alcotest.test_case "trace mean power" `Quick test_trace_mean_power;
    Alcotest.test_case "trace burstiness" `Quick test_trace_burstiness_ordering;
    Alcotest.test_case "trace wraps" `Quick test_trace_wraps;
    Alcotest.test_case "detector kinds" `Quick test_detector_kinds;
    Alcotest.test_case "detector overrides" `Quick test_detector_overrides;
    Alcotest.test_case "energy cycles" `Quick test_energy_config_cycles;
    Alcotest.test_case "energy orderings" `Quick test_energy_config_orderings;
  ]

let test_eh_model () =
  let module Eh = Sweep_energy.Eh_model in
  let cap64 = Eh.region_instr_cap ~store_threshold:64 () in
  Alcotest.(check bool) "cap in a sane band" true (cap64 >= 500 && cap64 <= 20000);
  let cap128 = Eh.region_instr_cap ~store_threshold:128 () in
  Alcotest.(check bool) "bigger store reserve, smaller cap" true (cap128 < cap64);
  let tiny = Eh.region_instr_cap ~farads:10e-9 ~store_threshold:64 () in
  check Alcotest.int "floor at 64" 64 tiny;
  let big = Eh.region_instr_cap ~farads:10e-6 ~store_threshold:64 () in
  Alcotest.(check bool) "bigger capacitor, bigger cap" true (big > cap64);
  Alcotest.(check bool) "worst store dwarfs a hit" true
    (Eh.worst_case_store_joules E.default
    > 10.0 *. Eh.hit_instruction_joules E.default)

let suite = suite @ [ Alcotest.test_case "eh model" `Quick test_eh_model ]

let test_trace_csv_roundtrip () =
  let t = Trace.make ~seed:5 Trace.Rf_home in
  let path = Filename.temp_file "trace" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace.save_csv t path;
      let t' = Trace.load_csv ~kind:Trace.Rf_home path in
      check (Alcotest.float 1e-6) "mean preserved" (Trace.mean_power t)
        (Trace.mean_power t');
      List.iter
        (fun time ->
          check (Alcotest.float 1e-9) "samples preserved" (Trace.power t time)
            (Trace.power t' time))
        [ 0.0; 0.0123; 1.5; 12.25 ])

let test_trace_csv_rejects_garbage () =
  let path = Filename.temp_file "trace" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "not,a,trace\n";
      close_out oc;
      Alcotest.(check bool) "malformed raises" true
        (match Trace.load_csv path with
        | _ -> false
        | exception Failure _ -> true))

(* Charge/discharge boundary behaviour: the threshold crossings that
   drive backup/death/reboot decisions must be exact at the rails. *)
let test_cap_discharge_boundary () =
  let c = cap () in
  let usable = Capacitor.usable_above c 2.8 in
  Capacitor.consume c usable;
  check (Alcotest.float 1e-9) "discharge lands exactly on vmin" 2.8
    (Capacitor.voltage c);
  Alcotest.(check bool) "at vmin still counts as above" true
    (Capacitor.above c 2.8);
  check (Alcotest.float 0.0) "nothing usable at the boundary" 0.0
    (Capacitor.usable_above c 2.8);
  Capacitor.consume c 1e-9;
  Alcotest.(check bool) "one more joule-fraction crosses it" false
    (Capacitor.above c 2.8)

let test_cap_charge_boundary () =
  let c = cap () in
  Capacitor.set_voltage c 0.0;
  check (Alcotest.float 0.0) "empty at 0 V" 0.0 (Capacitor.energy c);
  (* charging is monotone... *)
  let prev = ref 0.0 in
  for _ = 1 to 100 do
    Capacitor.harvest c ~power_w:1e-4 ~dt_s:1e-3;
    Alcotest.(check bool) "voltage non-decreasing while charging" true
      (Capacitor.voltage c >= !prev);
    prev := Capacitor.voltage c
  done;
  (* ...and saturates exactly at vmax, however much is harvested *)
  Capacitor.harvest c ~power_w:1.0 ~dt_s:1.0;
  check (Alcotest.float 1e-9) "saturates at vmax" 3.5 (Capacitor.voltage c);
  check (Alcotest.float 1e-15) "energy clamped to the vmax energy"
    (Capacitor.energy_at c 3.5) (Capacitor.energy c);
  Capacitor.harvest c ~power_w:1.0 ~dt_s:1.0;
  check (Alcotest.float 1e-15) "further harvest is a no-op"
    (Capacitor.energy_at c 3.5) (Capacitor.energy c)

let test_detector_hysteresis () =
  let d = Detector.jit ~v_backup:2.9 ~v_restore:3.2 in
  Alcotest.(check bool) "restore sits above backup" true
    (d.Detector.v_restore > Option.get d.Detector.v_backup);
  (* Inside the band the capacitor trips backup but not restore: a dead
     system stays off until the restore threshold, not merely v_backup —
     the hysteresis that prevents reboot/death oscillation. *)
  let c = cap () in
  Capacitor.set_voltage c 3.0;
  Alcotest.(check bool) "band voltage is above backup" true
    (Capacitor.above c (Option.get d.Detector.v_backup));
  Alcotest.(check bool) "band voltage is below restore" false
    (Capacitor.above c d.Detector.v_restore);
  (* SweepCache's single-threshold comparator keeps its band against the
     capacitor's death floor instead. *)
  let s = Detector.sweep ~v_restore:3.3 in
  Alcotest.(check bool) "sweep restore above the death floor" true
    (s.Detector.v_restore > Capacitor.v_min c);
  let d' = Detector.with_thresholds d ~v_backup:3.0 ~v_restore:3.3 () in
  Alcotest.(check bool) "threshold override keeps the band" true
    (d'.Detector.v_restore > Option.get d'.Detector.v_backup)

let test_trace_csv_rejects_negative_time () =
  let path = Filename.temp_file "trace" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "time_s,power_w\n-0.1,0.001\n0.2,0.001\n";
      close_out oc;
      Alcotest.(check bool) "negative timestamp raises" true
        (match Trace.load_csv path with
        | _ -> false
        | exception Failure m ->
          Alcotest.(check bool) "message names the problem" true
            (String.length m > 0
            && String.sub m 0 (String.length "Power_trace") = "Power_trace");
          true))

let test_trace_csv_rejects_nonmonotonic_time () =
  let path = Filename.temp_file "trace" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "time_s,power_w\n0.0,0.001\n0.5,0.002\n0.5,0.001\n";
      close_out oc;
      Alcotest.(check bool) "repeated timestamp raises" true
        (match Trace.load_csv path with
        | _ -> false
        | exception Failure _ -> true))

let suite =
  suite
  @ [
      Alcotest.test_case "trace csv roundtrip" `Quick test_trace_csv_roundtrip;
      Alcotest.test_case "trace csv garbage" `Quick test_trace_csv_rejects_garbage;
      Alcotest.test_case "capacitor discharge boundary" `Quick
        test_cap_discharge_boundary;
      Alcotest.test_case "capacitor charge boundary" `Quick
        test_cap_charge_boundary;
      Alcotest.test_case "detector hysteresis" `Quick test_detector_hysteresis;
      Alcotest.test_case "trace csv negative time" `Quick
        test_trace_csv_rejects_negative_time;
      Alcotest.test_case "trace csv non-monotonic time" `Quick
        test_trace_csv_rejects_nonmonotonic_time;
    ]

(* ---------------- validated trace transforms (fleet jitter) ---------------- *)

let raises_failure f =
  match f () with _ -> false | exception Failure _ -> true

let test_transform_time_shift () =
  let t = Trace.make ~seed:3 Trace.Rf_office in
  let s = Trace.samples t in
  let n = Array.length s in
  let dt = Trace.sample_dt t in
  let shifted = Trace.time_shift t (7.0 *. dt) in
  let s' = Trace.samples shifted in
  Alcotest.(check bool) "rotated right by 7 steps" true
    (Array.for_all Fun.id (Array.init n (fun i -> s'.(i) = s.((i - 7 + n) mod n))));
  let zero = Trace.time_shift t 0.0 in
  Alcotest.(check bool) "zero shift is identity" true
    (Trace.samples zero = s);
  Alcotest.(check bool) "input not mutated" true (Trace.samples t == s);
  Alcotest.(check bool) "negative shift rejected" true
    (raises_failure (fun () -> Trace.time_shift t (-.dt)));
  Alcotest.(check bool) "nan shift rejected" true
    (raises_failure (fun () -> Trace.time_shift t Float.nan));
  Alcotest.(check bool) "infinite shift rejected" true
    (raises_failure (fun () -> Trace.time_shift t Float.infinity))

let test_transform_scale () =
  let t = Trace.make ~seed:3 Trace.Solar in
  let m = Trace.mean_power t in
  check (Alcotest.float 1e-12) "mean scales linearly" (m *. 1.25)
    (Trace.mean_power (Trace.scale t 1.25));
  check (Alcotest.float 0.0) "zero factor flattens" 0.0
    (Trace.mean_power (Trace.scale t 0.0));
  Alcotest.(check bool) "negative factor rejected" true
    (raises_failure (fun () -> Trace.scale t (-0.1)));
  Alcotest.(check bool) "nan factor rejected" true
    (raises_failure (fun () -> Trace.scale t Float.nan))

let test_transform_drop_samples () =
  let t = Trace.make ~seed:3 Trace.Rf_home in
  let s = Trace.samples t in
  let a = Trace.samples (Trace.drop_samples t ~seed:11 ~frac:0.3) in
  let b = Trace.samples (Trace.drop_samples t ~seed:11 ~frac:0.3) in
  let c = Trace.samples (Trace.drop_samples t ~seed:12 ~frac:0.3) in
  Alcotest.(check bool) "same seed same drops" true (a = b);
  Alcotest.(check bool) "different seed different drops" true (a <> c);
  Alcotest.(check bool) "drops only zero, never alter" true
    (Array.for_all Fun.id
       (Array.init (Array.length s) (fun i -> a.(i) = 0.0 || a.(i) = s.(i))));
  Alcotest.(check bool) "frac 0 is identity" true
    (Trace.samples (Trace.drop_samples t ~seed:11 ~frac:0.0) = s);
  Alcotest.(check bool) "frac 1 zeroes everything" true
    (Array.for_all (fun p -> p = 0.0)
       (Trace.samples (Trace.drop_samples t ~seed:11 ~frac:1.0)));
  Alcotest.(check bool) "frac below 0 rejected" true
    (raises_failure (fun () -> Trace.drop_samples t ~seed:1 ~frac:(-0.01)));
  Alcotest.(check bool) "frac above 1 rejected" true
    (raises_failure (fun () -> Trace.drop_samples t ~seed:1 ~frac:1.01));
  Alcotest.(check bool) "nan frac rejected" true
    (raises_failure (fun () -> Trace.drop_samples t ~seed:1 ~frac:Float.nan))

let test_transform_tags () =
  let t = Trace.make ~seed:3 Trace.Thermal in
  Alcotest.(check bool) "fresh trace untagged" true (Trace.tag t = None);
  let tagged = Trace.with_tag (Trace.scale t 0.9) "am900" in
  Alcotest.(check bool) "tag recorded" true (Trace.tag tagged = Some "am900")

let suite =
  suite
  @ [
      Alcotest.test_case "transform time_shift" `Quick test_transform_time_shift;
      Alcotest.test_case "transform scale" `Quick test_transform_scale;
      Alcotest.test_case "transform drop_samples" `Quick
        test_transform_drop_samples;
      Alcotest.test_case "transform tags" `Quick test_transform_tags;
    ]
