(* Per-baseline tests: functional equivalence plus each design's
   distinctive crash mechanics. *)
module H = Sweep_sim.Harness
module M = Sweep_machine.Machine_intf
module Config = Sweep_machine.Config
module Cpu = Sweep_machine.Cpu
module Pipeline = Sweep_compiler.Pipeline

let check = Alcotest.check

let all_consistent prog =
  List.iter (fun d -> ignore (Thelpers.assert_consistent d prog)) H.all_designs

let test_all_designs_tiny () = all_consistent (Thelpers.tiny_program ())

let test_all_designs_store_heavy () =
  let open Sweep_lang.Dsl in
  (* Streaming stores force evictions, write-backs, rename pushes and
     persist-buffer traffic in every design. *)
  all_consistent
    (program
       [ array "big" 4096; scalar "sum" 0 ]
       [
         func "main" []
           [
             for_ "k" (i 0) (i 4096) [ st "big" (v "k") (v "k" lxor i 0x5A5A) ];
             set "acc" (i 0);
             for_ "k" (i 0) (i 4096)
               [ set "acc" (v "acc" + ld "big" (v "k")) ];
             setg "sum" (v "acc");
           ];
       ])

let machine_of design =
  let compiled = H.compile design (Thelpers.tiny_program ()) in
  (compiled, H.machine design compiled.Pipeline.program)

let run_some m n =
  let acc = M.acc m in
  let now = ref 0.0 in
  for _ = 1 to n do
    if not (M.halted m) then begin
      acc.Sweep_machine.Exec.Acc.now <- !now;
      M.step m;
      now := !now +. acc.Sweep_machine.Exec.Acc.ns
    end
  done;
  !now

let finish m now0 =
  let acc = M.acc m in
  let now = ref now0 in
  let guard = ref 0 in
  while (not (M.halted m)) && !guard < 5_000_000 do
    acc.Sweep_machine.Exec.Acc.now <- !now;
    M.step m;
    now := !now +. acc.Sweep_machine.Exec.Acc.ns;
    incr guard
  done;
  ignore (M.drain m ~now_ns:!now);
  Alcotest.(check bool) "ran to completion" true (M.halted m)

let image compiled m =
  let nvm = M.nvm m in
  List.map
    (fun (name, base, words) ->
      (name, Array.init words (fun k -> Sweep_mem.Nvm.peek_word nvm (base + (4 * k)))))
    compiled.Pipeline.globals

(* JIT designs: backup then crash then reboot resumes exactly at the
   interruption point and completes correctly. *)
let test_jit_backup_resume design =
  let compiled, m = machine_of design in
  let now = run_some m 137 in
  (match M.jit_backup_cost m with
  | Some _ -> M.commit_jit_backup m ~now_ns:now
  | None -> Alcotest.fail "expected a JIT design");
  let pc_before = (M.cpu m).Cpu.pc in
  M.on_power_failure m ~now_ns:now;
  ignore (M.on_reboot m ~now_ns:(now +. 100.0));
  check Alcotest.int "resumes at backup point" pc_before (M.cpu m).Cpu.pc;
  finish m (now +. 200.0);
  Alcotest.(check bool) "final state correct" true
    (Thelpers.image_equal
       (Thelpers.interp_image (Thelpers.tiny_program ()))
       (image compiled m))

let test_nvp_backup_resume () = test_jit_backup_resume H.Nvp
let test_wt_backup_resume () = test_jit_backup_resume H.Wt
let test_nvsram_backup_resume () = test_jit_backup_resume H.Nvsram
let test_nvsram_e_backup_resume () = test_jit_backup_resume H.Nvsram_e
let test_replay_backup_resume () = test_jit_backup_resume H.Replay
let test_nvmr_backup_resume () = test_jit_backup_resume H.Nvmr

(* Crash without any backup: JIT designs restart from scratch and still
   produce the right answer (their stores are idempotent from a cold
   start only because nothing was persisted mid-run for NVP/WT designs
   via caches; ReplayCache replays cover the rest). *)
let test_crash_before_first_backup design =
  let compiled, m = machine_of design in
  let now = run_some m 9 in
  M.on_power_failure m ~now_ns:now;
  ignore (M.on_reboot m ~now_ns:(now +. 50.0));
  finish m (now +. 60.0);
  Alcotest.(check bool)
    (H.design_name design ^ " cold restart correct")
    true
    (Thelpers.image_equal
       (Thelpers.interp_image (Thelpers.tiny_program ()))
       (image compiled m))

let test_cold_restart_nvp () = test_crash_before_first_backup H.Nvp
let test_cold_restart_sweep () = test_crash_before_first_backup H.Sweep

let test_nvsram_restores_dirty_lines () =
  let _, m = machine_of H.Nvsram in
  let now = run_some m 200 in
  let cache = Option.get (M.cache m) in
  let dirty_before = List.length (Sweep_mem.Cache.dirty_lines cache) in
  M.commit_jit_backup m ~now_ns:now;
  M.on_power_failure m ~now_ns:now;
  check Alcotest.int "cache wiped" 0
    (List.length (Sweep_mem.Cache.dirty_lines cache));
  ignore (M.on_reboot m ~now_ns:(now +. 10.0));
  check Alcotest.int "dirty lines restored" dirty_before
    (List.length (Sweep_mem.Cache.dirty_lines cache))

let test_backup_cost_scales_with_dirty () =
  let _, m = machine_of H.Nvsram in
  let c0 = Option.get (M.jit_backup_cost m) in
  ignore (run_some m 300);
  let c1 = Option.get (M.jit_backup_cost m) in
  Alcotest.(check bool) "more dirty lines cost more" true
    (c1.Sweep_machine.Cost.joules > c0.Sweep_machine.Cost.joules)

let test_nvsram_e_backs_whole_cache () =
  let _, md = machine_of H.Nvsram in
  let _, me = machine_of H.Nvsram_e in
  ignore (run_some md 300);
  ignore (run_some me 300);
  let cd = Option.get (M.jit_backup_cost md) in
  let ce = Option.get (M.jit_backup_cost me) in
  Alcotest.(check bool) "entire-cache backup costs more" true
    (ce.Sweep_machine.Cost.joules >= cd.Sweep_machine.Cost.joules)

let test_sweep_has_no_jit () =
  let _, m = machine_of H.Sweep in
  Alcotest.(check bool) "no backup stage" true (M.jit_backup_cost m = None);
  Alcotest.(check bool) "does not continue after backup" true
    (not (M.continues_after_backup m))

let test_nvmr_continues () =
  let _, m = machine_of H.Nvmr in
  Alcotest.(check bool) "continues after backup" true
    (M.continues_after_backup m)

let test_detector_table1 () =
  let d design = M.detector (snd (machine_of design)) in
  let open Sweep_energy.Detector in
  Alcotest.(check bool) "NVP thresholds" true
    ((d H.Nvp).v_backup = Some 2.9 && (d H.Nvp).v_restore = 3.2);
  Alcotest.(check bool) "NVSRAM thresholds" true
    ((d H.Nvsram).v_backup = Some 3.2 && (d H.Nvsram).v_restore = 3.4);
  Alcotest.(check bool) "Sweep single threshold" true
    ((d H.Sweep).v_backup = None && (d H.Sweep).v_restore = 3.3)

let test_wt_memory_always_consistent () =
  (* Write-through: even an unbacked crash mid-run leaves NVM holding all
     committed stores; restart from scratch re-stores the same values. *)
  let compiled, m = machine_of H.Wt in
  ignore (run_some m 57);
  let nvm_then = image compiled m in
  M.on_power_failure m ~now_ns:1e6;
  let nvm_after = image compiled m in
  Alcotest.(check bool) "crash does not change NVM" true
    (Thelpers.image_equal nvm_then nvm_after)

let suite =
  [
    Alcotest.test_case "all designs: tiny" `Quick test_all_designs_tiny;
    Alcotest.test_case "all designs: store heavy" `Quick
      test_all_designs_store_heavy;
    Alcotest.test_case "nvp backup/resume" `Quick test_nvp_backup_resume;
    Alcotest.test_case "wt backup/resume" `Quick test_wt_backup_resume;
    Alcotest.test_case "nvsram backup/resume" `Quick test_nvsram_backup_resume;
    Alcotest.test_case "nvsram-e backup/resume" `Quick test_nvsram_e_backup_resume;
    Alcotest.test_case "replay backup/resume" `Quick test_replay_backup_resume;
    Alcotest.test_case "nvmr backup/resume" `Quick test_nvmr_backup_resume;
    Alcotest.test_case "nvp cold restart" `Quick test_cold_restart_nvp;
    Alcotest.test_case "sweep cold restart" `Quick test_cold_restart_sweep;
    Alcotest.test_case "nvsram dirty restore" `Quick test_nvsram_restores_dirty_lines;
    Alcotest.test_case "backup cost scales" `Quick test_backup_cost_scales_with_dirty;
    Alcotest.test_case "nvsram-e whole cache" `Quick test_nvsram_e_backs_whole_cache;
    Alcotest.test_case "sweep is JIT-free" `Quick test_sweep_has_no_jit;
    Alcotest.test_case "nvmr continues" `Quick test_nvmr_continues;
    Alcotest.test_case "detector thresholds" `Quick test_detector_table1;
    Alcotest.test_case "wt crash-consistent NVM" `Quick
      test_wt_memory_always_consistent;
  ]
