(* Tests for the shared machine layer: CPU state, the executor's ISA
   semantics and its constant-power cost accounting. *)
module Cpu = Sweep_machine.Cpu
module Exec = Sweep_machine.Exec
module Cost = Sweep_machine.Cost
module Config = Sweep_machine.Config
module Mstats = Sweep_machine.Mstats
module I = Sweep_isa.Instr
module Reg = Sweep_isa.Reg
module Program = Sweep_isa.Program
module Layout = Sweep_isa.Layout

let check = Alcotest.check

let test_cpu_lifecycle () =
  let cpu = Cpu.create ~entry:5 in
  check Alcotest.int "entry pc" 5 cpu.Cpu.pc;
  cpu.Cpu.regs.(3) <- 42;
  cpu.Cpu.pc <- 9;
  let snap = Cpu.snapshot cpu in
  cpu.Cpu.regs.(3) <- 0;
  Cpu.reset cpu ~entry:5;
  check Alcotest.int "reset zeroes" 0 cpu.Cpu.regs.(3);
  Cpu.restore cpu snap;
  check Alcotest.int "restored reg" 42 cpu.Cpu.regs.(3);
  check Alcotest.int "restored pc" 9 cpu.Cpu.pc;
  Alcotest.(check bool) "not halted after restore" false cpu.Cpu.halted

let test_cost_algebra () =
  let open Cost in
  let c = make ~ns:2.0 ~joules:3.0 ++ make ~ns:1.0 ~joules:0.5 in
  check (Alcotest.float 0.0) "ns" 3.0 c.ns;
  check (Alcotest.float 0.0) "joules" 3.5 c.joules;
  let s = scale 2.0 c in
  check (Alcotest.float 0.0) "scaled" 6.0 s.ns;
  check (Alcotest.float 0.0) "sum" 3.0 (sum [ c; zero ]).ns

(* A simple flat-memory ops record for executor tests: loads/stores hit a
   hashtable and charge a fixed per-op cost into [acc]. *)
let flat_mem acc =
  let mem = Hashtbl.create 16 in
  let ops =
    {
      Exec.load =
        (fun addr ->
          Exec.Acc.charge acc ~ns:10.0 ~joules:0.0;
          Option.value ~default:0 (Hashtbl.find_opt mem addr));
      store =
        (fun addr v ->
          Hashtbl.replace mem addr v;
          Exec.Acc.charge acc ~ns:20.0 ~joules:0.0);
      clwb = (fun _ -> ());
      fence = (fun () -> ());
      region_end = (fun () -> ());
    }
  in
  (mem, ops)

let assemble items =
  Program.assemble ~layout:(Layout.make ~data_limit:0x2000) ~entry:"main"
    (Program.Label "main" :: items)

(* Run through the decoded fast path (or the reference interpreter with
   [~reference:true]), summing each step's accumulator into a Cost. *)
let run_program ?(reference = false) items =
  let prog = assemble items in
  let dec = Sweep_isa.Decoded.compile prog in
  let cpu = Cpu.create ~entry:prog.Program.entry in
  let stats = Mstats.create () in
  let acc = Exec.Acc.create () in
  Exec.Acc.set_rates acc Config.default.Config.energy;
  let mem, ops = flat_mem acc in
  let total_ns = ref 0.0 and total_joules = ref 0.0 in
  let guard = ref 0 in
  while (not cpu.Cpu.halted) && !guard < 10_000 do
    if reference then Exec.step_reference cpu prog stats ops acc
    else Exec.step cpu dec stats ops acc;
    total_ns := !total_ns +. acc.Exec.Acc.ns;
    total_joules := !total_joules +. acc.Exec.Acc.joules;
    incr guard
  done;
  (cpu, mem, stats, Cost.make ~ns:!total_ns ~joules:!total_joules)

let ins l = List.map (fun x -> Program.Ins x) l

let test_exec_arith_and_branch () =
  let cpu, _, _, _ =
    run_program
      (ins
         [
           I.Movi (0, 10);
           I.Movi (1, 3);
           I.Bin (I.Sub, 2, 0, 1);
           I.Bini (I.Mul, 3, 2, 4);
           I.Set (I.Gt, 4, 3, 0);
           I.Br (I.Eq, 4, 4, "skip");
           I.Movi (5, 99);
         ]
      @ [ Program.Label "skip" ]
      @ ins [ I.Halt ])
  in
  check Alcotest.int "sub" 7 cpu.Cpu.regs.(2);
  check Alcotest.int "muli" 28 cpu.Cpu.regs.(3);
  check Alcotest.int "set" 1 cpu.Cpu.regs.(4);
  check Alcotest.int "branch taken skips" 0 cpu.Cpu.regs.(5)

let test_exec_memory () =
  let cpu, mem, stats, _ =
    run_program
      (ins
         [
           I.Movi (0, 0x100);
           I.Movi (1, 77);
           I.Store (1, 0, 8);
           I.Load (2, 0, 8);
           I.Store_abs (2, 0x200);
           I.Load_abs (3, 0x200);
           I.Halt;
         ])
  in
  check Alcotest.int "store+load" 77 cpu.Cpu.regs.(2);
  check Alcotest.int "abs roundtrip" 77 cpu.Cpu.regs.(3);
  check Alcotest.int "memory content" 77
    (Option.value ~default:0 (Hashtbl.find_opt mem 0x108));
  check Alcotest.int "stats loads" 2 stats.Mstats.loads;
  check Alcotest.int "stats stores" 2 stats.Mstats.stores

let test_exec_call_ret () =
  let prog_items =
    ins [ I.Call "fn"; I.Mov (1, 0); I.Halt ]
    @ [ Program.Label "fn" ]
    @ ins [ I.Movi (0, 5); I.Jmp_reg Reg.link ]
  in
  let cpu, _, _, _ = run_program prog_items in
  check Alcotest.int "returned value" 5 cpu.Cpu.regs.(1);
  Alcotest.(check bool) "halted" true cpu.Cpu.halted

let test_exec_movl () =
  let cpu, _, _, _ =
    run_program
      (ins [ I.Movl (0, "tag"); I.Jmp "tag" ]
      @ [ Program.Label "tag" ]
      @ ins [ I.Halt ])
  in
  check Alcotest.int "movl holds code index" 2 cpu.Cpu.regs.(0)

let test_exec_region_marker_counts () =
  let _, _, stats, _ =
    run_program (ins [ I.Nop; I.Region_end; I.Nop; I.Region_end; I.Halt ]) in
  check Alcotest.int "regions" 2 stats.Mstats.regions

let test_exec_cost_model () =
  let e = Config.default.Config.energy in
  let _, _, _, total = run_program (ins [ I.Movi (0, 1); I.Halt ]) in
  check (Alcotest.float 1e-9) "two base cycles" 2.0 total.Cost.ns;
  (* A load adds its ns plus stall power for that time. *)
  let _, _, _, with_load =
    run_program (ins [ I.Load_abs (0, 0x40); I.Halt ])
  in
  check (Alcotest.float 1e-9) "load latency added" 12.0 with_load.Cost.ns;
  let expected_joules =
    (2.0 *. e.Sweep_energy.Energy_config.e_cycle)
    +. (10.0 *. e.Sweep_energy.Energy_config.e_stall_cycle)
  in
  check (Alcotest.float 1e-18) "stall power charged" expected_joules
    with_load.Cost.joules

let test_exec_halted_is_free () =
  let prog = assemble (ins [ I.Halt ]) in
  let dec = Sweep_isa.Decoded.compile prog in
  let cpu = Cpu.create ~entry:0 in
  let stats = Mstats.create () in
  let acc = Exec.Acc.create () in
  Exec.Acc.set_rates acc Config.default.Config.energy;
  let _, ops = flat_mem acc in
  Exec.step cpu dec stats ops acc;
  Exec.step cpu dec stats ops acc;
  check (Alcotest.float 0.0) "halted step costs nothing" 0.0 acc.Exec.Acc.ns

(* The decoded fast path and the reference interpreter must agree
   bit-for-bit — registers, memory, stats and accumulated cost.  The
   full-matrix differential suite lives in t_equiv.ml; this is the
   executor-level smoke check. *)
let test_exec_reference_parity () =
  let items =
    ins
      [
        I.Movi (0, 0x100);
        I.Movi (1, 6);
        I.Bin (I.Mul, 2, 1, 1);
        I.Store (2, 0, 8);
        I.Load (3, 0, 8);
        I.Bini (I.Xor, 4, 3, 5);
        I.Set (I.Le, 5, 1, 3);
        I.Br (I.Ne, 5, 4, "end");
        I.Movi (6, 99);
      ]
    @ [ Program.Label "end" ]
    @ ins [ I.Region_end; I.Halt ]
  in
  let cpu_d, _, stats_d, cost_d = run_program items in
  let cpu_r, _, stats_r, cost_r = run_program ~reference:true items in
  check Alcotest.(array int) "regs equal" cpu_r.Cpu.regs cpu_d.Cpu.regs;
  check Alcotest.int "pc equal" cpu_r.Cpu.pc cpu_d.Cpu.pc;
  check Alcotest.int "instrs equal" stats_r.Mstats.instructions
    stats_d.Mstats.instructions;
  check Alcotest.int "regions equal" stats_r.Mstats.regions
    stats_d.Mstats.regions;
  check (Alcotest.float 0.0) "ns equal" cost_r.Cost.ns cost_d.Cost.ns;
  check (Alcotest.float 0.0) "joules equal" cost_r.Cost.joules
    cost_d.Cost.joules

(* Decoded.compile rejects malformed programs up front, so the cycle
   loop can use unchecked array reads. *)
let test_decoded_validation () =
  let good = assemble (ins [ I.Halt ]) in
  let bad_target = { good with Program.code = [| I.Jmp 99; I.Halt |] } in
  Alcotest.check_raises "jump target out of range"
    (Invalid_argument "Decoded.compile: instr 0: bad target 99") (fun () ->
      ignore (Sweep_isa.Decoded.compile bad_target))

let test_mstats_histograms () =
  let st = Mstats.create () in
  Mstats.note_instr st;
  Mstats.note_instr st;
  Mstats.note_store st;
  Mstats.note_region_end st;
  check Alcotest.int "region size recorded" 1 st.Mstats.region_size_hist.(2);
  check Alcotest.int "stores recorded" 1 st.Mstats.region_store_hist.(1);
  check Alcotest.int "counters reset" 0 st.Mstats.cur_region_instrs;
  Mstats.note_instr st;
  Mstats.reset_region_counters st;
  check Alcotest.int "partial region dropped" 0 st.Mstats.cur_region_instrs

let test_parallelism_efficiency () =
  let st = Mstats.create () in
  check (Alcotest.float 0.0) "no persistence = 100%" 100.0
    (Mstats.parallelism_efficiency st);
  st.Mstats.f.Mstats.persistence_ns <- 100.0;
  st.Mstats.f.Mstats.wait_ns <- 9.0;
  check (Alcotest.float 1e-9) "91%" 91.0 (Mstats.parallelism_efficiency st)

let test_parallelism_efficiency_edges () =
  (* Zero persistence with nonzero waits still reads 100%: the metric is
     a fraction of persistence time, not of wall time. *)
  let st = Mstats.create () in
  st.Mstats.f.Mstats.wait_ns <- 50.0;
  check (Alcotest.float 0.0) "zero persistence = 100%" 100.0
    (Mstats.parallelism_efficiency st);
  (* Fully serialised: every persisted nanosecond was waited on. *)
  st.Mstats.f.Mstats.persistence_ns <- 25.0;
  st.Mstats.f.Mstats.wait_ns <- 25.0;
  check (Alcotest.float 1e-9) "fully serialised = 0%" 0.0
    (Mstats.parallelism_efficiency st)

let test_hist_cdf_edges () =
  check
    Alcotest.(list (pair int (float 0.0)))
    "all-empty histogram" []
    (Mstats.hist_cdf (Array.make 64 0));
  check
    Alcotest.(list (pair int (float 0.0)))
    "zero-length histogram" [] (Mstats.hist_cdf [||]);
  (* A single populated bin jumps straight to 100%. *)
  let h = Array.make 8 0 in
  h.(3) <- 5;
  check
    Alcotest.(list (pair int (float 1e-9)))
    "single bin" [ (3, 100.0) ] (Mstats.hist_cdf h);
  (* Two bins: cumulative percents, empty prefix/suffix skipped. *)
  let h = Array.make 8 0 in
  h.(1) <- 1;
  h.(6) <- 3;
  check
    Alcotest.(list (pair int (float 1e-9)))
    "cumulative" [ (1, 25.0); (6, 100.0) ] (Mstats.hist_cdf h)

let test_loader () =
  let prog =
    Sweep_lang.Dsl.(
      program
        [ array_init "a" [| 1; 2 |] ]
        [ func "main" [] [ st "a" (i 0) (ld "a" (i 1)) ] ])
  in
  let c = Sweep_sim.Harness.compile Sweep_sim.Harness.Nvp prog in
  let nvm = Sweep_mem.Nvm.create () in
  Sweep_machine.Loader.load nvm c.Sweep_compiler.Pipeline.program;
  let layout = c.Sweep_compiler.Pipeline.program.Program.layout in
  check Alcotest.int "pc slot primed"
    c.Sweep_compiler.Pipeline.program.Program.entry
    (Sweep_mem.Nvm.peek_word nvm layout.Layout.ckpt_pc);
  let base =
    match c.Sweep_compiler.Pipeline.globals with
    | ("a", base, _) :: _ -> base
    | _ -> Alcotest.fail "missing global"
  in
  check Alcotest.int "initial data" 2 (Sweep_mem.Nvm.peek_word nvm (base + 4))

let suite =
  [
    Alcotest.test_case "cpu lifecycle" `Quick test_cpu_lifecycle;
    Alcotest.test_case "cost algebra" `Quick test_cost_algebra;
    Alcotest.test_case "exec arith/branch" `Quick test_exec_arith_and_branch;
    Alcotest.test_case "exec memory" `Quick test_exec_memory;
    Alcotest.test_case "exec call/ret" `Quick test_exec_call_ret;
    Alcotest.test_case "exec movl" `Quick test_exec_movl;
    Alcotest.test_case "exec region markers" `Quick test_exec_region_marker_counts;
    Alcotest.test_case "exec cost model" `Quick test_exec_cost_model;
    Alcotest.test_case "exec halted free" `Quick test_exec_halted_is_free;
    Alcotest.test_case "exec reference parity" `Quick
      test_exec_reference_parity;
    Alcotest.test_case "decoded validation" `Quick test_decoded_validation;
    Alcotest.test_case "mstats histograms" `Quick test_mstats_histograms;
    Alcotest.test_case "parallelism efficiency" `Quick test_parallelism_efficiency;
    Alcotest.test_case "parallelism efficiency edges" `Quick
      test_parallelism_efficiency_edges;
    Alcotest.test_case "hist_cdf edges" `Quick test_hist_cdf_edges;
    Alcotest.test_case "loader" `Quick test_loader;
  ]
