(* Supervision-layer tests: exit-code contract, wire-protocol framing
   (round-trip + torn-line robustness), the persistent result cache
   (hit/corruption/eviction, byte-identical serving), deterministic
   respawn backoff, and retry accounting in the status snapshot.

   End-to-end supervised execution (real worker processes, chaos
   kills) lives in CI's chaos job: workers re-exec the current binary,
   and the test runner is not a sweep binary, so process-level
   supervision cannot run in here. *)

module C = Sweep_exp.Exp_common
module Jobs = Sweep_exp.Jobs
module Results = Sweep_exp.Results
module Executor = Sweep_exp.Executor
module Status = Sweep_exp.Status
module Rcache = Sweep_exp.Rcache
module Wire = Sweep_exp.Wire
module Supervisor = Sweep_exp.Supervisor
module Exit_code = Sweep_exp.Exit_code
module A = Sweep_analyze

let check = Alcotest.check

let with_tmp_dir f =
  let dir = Filename.temp_file "super" ".d" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun name -> Sys.remove (Filename.concat dir name))
        (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () -> f dir)

(* One real summary, simulated once and shared by every cache test. *)
let the_summary =
  lazy
    (C.compute ~scale:0.05 C.sweep_empty_bit
       ~power:Sweep_sim.Driver.Unlimited "sha")

let small_matrix () =
  Jobs.matrix ~exp:"t" ~scale:0.05
    [ C.setting Sweep_sim.Harness.Nvp; C.sweep_empty_bit ]
    [ "sha"; "dijkstra" ]

(* ---------------- exit codes ---------------- *)

let test_exit_codes () =
  check Alcotest.int "clean" 0 Exit_code.clean;
  check Alcotest.int "job_failures" 1 Exit_code.job_failures;
  check Alcotest.int "degraded" 2 Exit_code.degraded;
  check Alcotest.int "interrupted" 3 Exit_code.interrupted;
  check Alcotest.int "usage (EX_USAGE)" 64 Exit_code.usage;
  check Alcotest.int "ok run" Exit_code.clean
    (Exit_code.of_run ~degraded:false ~failures:0);
  check Alcotest.int "failures -> 1" Exit_code.job_failures
    (Exit_code.of_run ~degraded:false ~failures:3);
  check Alcotest.int "degraded -> 2" Exit_code.degraded
    (Exit_code.of_run ~degraded:true ~failures:0);
  check Alcotest.int "degraded outranks failures" Exit_code.degraded
    (Exit_code.of_run ~degraded:true ~failures:5)

(* ---------------- wire protocol ---------------- *)

let test_wire_hex () =
  let all = String.init 256 Char.chr in
  check Alcotest.string "hex round-trip" all (Wire.of_hex (Wire.to_hex all));
  check Alcotest.string "hex of abc" "616263" (Wire.to_hex "abc")

let test_wire_to_worker_roundtrip () =
  let job = List.hd (small_matrix ()) in
  let frames =
    [
      Wire.Init { heartbeat_every = 50_000; attrib_dir = None };
      Wire.Init { heartbeat_every = 0; attrib_dir = Some "/tmp/a \"b\"" };
      Wire.Job { key = Jobs.key job; spec = job; sim_budget_ns = None };
      Wire.Job { key = Jobs.key job; spec = job; sim_budget_ns = Some 1.5e9 };
      Wire.Quit;
    ]
  in
  List.iter
    (fun f ->
      let line = Wire.line_of_to_worker f in
      Alcotest.(check bool) "single line" false (String.contains line '\n');
      match Wire.to_worker_of_line line with
      | None -> Alcotest.fail ("undecodable: " ^ line)
      | Some f' ->
        if f' <> f then Alcotest.fail ("round-trip changed: " ^ line))
    frames

let test_wire_from_worker_roundtrip () =
  let summary = Lazy.force the_summary in
  let frames =
    [
      Wire.Beat
        { key = "k|1"; instructions = 123_456; sim_ns = 1.5e9; reboots = 7;
          nvm_writes = 4096; beats = 3 };
      Wire.Done { key = "k|1"; elapsed_s = 0.125; summary };
      Wire.Failed
        { key = "k|1";
          error = "Failure(\"quotes \\\" and\nnewlines\tand \\\\ slashes\")";
          backtrace = "Raised at line 1\nCalled from line 2\n" };
    ]
  in
  List.iter
    (fun f ->
      let line = Wire.line_of_from_worker f in
      Alcotest.(check bool) "single line" false (String.contains line '\n');
      match Wire.from_worker_of_line line with
      | None -> Alcotest.fail ("undecodable: " ^ line)
      | Some f' ->
        if f' <> f then Alcotest.fail ("round-trip changed: " ^ line))
    frames

(* A worker killed mid-write leaves a torn final line; every prefix of
   a valid frame must decode to None, never crash or misparse. *)
let test_wire_torn_lines () =
  let summary = Lazy.force the_summary in
  let line =
    Wire.line_of_from_worker
      (Wire.Done { key = "k|1"; elapsed_s = 0.125; summary })
  in
  for len = 0 to min 300 (String.length line - 1) do
    match Wire.from_worker_of_line (String.sub line 0 len) with
    | None -> ()
    | Some _ -> Alcotest.fail (Printf.sprintf "prefix of %d decoded" len)
  done;
  check Alcotest.bool "garbage" true
    (Wire.from_worker_of_line "not json at all" = None);
  check Alcotest.bool "wrong shape" true
    (Wire.from_worker_of_line "{\"type\":\"warp\"}" = None);
  check Alcotest.bool "to_worker garbage" true
    (Wire.to_worker_of_line "{\"type\":\"job\"}" = None)

(* ---------------- result cache ---------------- *)

let bytes_of_summary (s : Results.summary) = Marshal.to_string s []

let entry_files dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".rce")
  |> List.map (Filename.concat dir)

let test_rcache_hit () =
  with_tmp_dir (fun dir ->
      let summary = Lazy.force the_summary in
      let rc = Rcache.create dir in
      let key = "job|key" and digest = "deadbeef" in
      check Alcotest.bool "cold miss" true
        (Rcache.find rc ~key ~digest = None);
      Rcache.store rc ~key ~digest ~elapsed_s:0.25 summary;
      (match Rcache.find rc ~key ~digest with
      | None -> Alcotest.fail "stored entry missed"
      | Some (s, elapsed_s) ->
        check (Alcotest.float 0.0) "elapsed_s preserved" 0.25 elapsed_s;
        check Alcotest.string "summary byte-identical"
          (bytes_of_summary summary) (bytes_of_summary s));
      (* Different digest for the same key must never alias. *)
      check Alcotest.bool "digest mismatch is a miss" true
        (Rcache.find rc ~key ~digest:"cafebabe" = None);
      let s = Rcache.stats rc in
      check Alcotest.int "hits" 1 s.Rcache.hits;
      check Alcotest.int "misses" 2 s.Rcache.misses;
      check Alcotest.int "corrupt" 0 s.Rcache.corrupt)

let corrupt_test ~label ~mangle =
  with_tmp_dir (fun dir ->
      let summary = Lazy.force the_summary in
      let rc = Rcache.create dir in
      let key = "job|key" and digest = "deadbeef" in
      Rcache.store rc ~key ~digest ~elapsed_s:0.25 summary;
      (match entry_files dir with
      | [ path ] -> mangle path
      | files ->
        Alcotest.fail (Printf.sprintf "%d entry files" (List.length files)));
      check Alcotest.bool (label ^ " is a miss") true
        (Rcache.find rc ~key ~digest = None);
      let s = Rcache.stats rc in
      check Alcotest.int (label ^ " counted corrupt") 1 s.Rcache.corrupt;
      check Alcotest.int (label ^ " leaves no entry") 0
        (List.length (entry_files dir));
      (* Re-store (the caller re-simulates) and the cache serves the
         same bytes again: corruption never taints later results. *)
      Rcache.store rc ~key ~digest ~elapsed_s:0.25 summary;
      match Rcache.find rc ~key ~digest with
      | None -> Alcotest.fail "re-stored entry missed"
      | Some (s2, _) ->
        check Alcotest.string "re-served bytes identical"
          (bytes_of_summary summary) (bytes_of_summary s2))

let test_rcache_truncated () =
  corrupt_test ~label:"truncation" ~mangle:(fun path ->
      let size = (Unix.stat path).Unix.st_size in
      let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
      Unix.ftruncate fd (size / 2);
      Unix.close fd)

let test_rcache_bitflip () =
  corrupt_test ~label:"bit flip" ~mangle:(fun path ->
      let ic = open_in_bin path in
      let n = in_channel_length ic in
      let b = Bytes.create n in
      really_input ic b 0 n;
      close_in ic;
      (* Flip one bit in the middle of the marshalled payload. *)
      let i = n / 2 in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x10));
      let oc = open_out_bin path in
      output_bytes oc b;
      close_out oc)

let test_rcache_header_garbage () =
  corrupt_test ~label:"garbled header" ~mangle:(fun path ->
      let oc = open_out_gen [ Open_wronly; Open_binary ] 0o644 path in
      output_string oc "XXXX";
      close_out oc)

let test_rcache_eviction () =
  with_tmp_dir (fun dir ->
      let summary = Lazy.force the_summary in
      let probe = Rcache.create dir in
      Rcache.store probe ~key:"probe" ~digest:"d" ~elapsed_s:0.1 summary;
      let entry_bytes =
        match entry_files dir with
        | [ path ] -> (Unix.stat path).Unix.st_size
        | _ -> Alcotest.fail "probe store"
      in
      List.iter Sys.remove (entry_files dir);
      (* Room for two entries; store four with distinct mtimes. *)
      let rc = Rcache.create ~max_bytes:((2 * entry_bytes) + 16) dir in
      List.iter
        (fun key ->
          Rcache.store rc ~key ~digest:"d" ~elapsed_s:0.1 summary;
          Unix.sleepf 0.02)
        [ "k0"; "k1"; "k2"; "k3" ];
      let s = Rcache.stats rc in
      check Alcotest.int "evictions" 2 s.Rcache.evictions;
      check Alcotest.int "two entries remain" 2
        (List.length (entry_files dir));
      let total =
        List.fold_left
          (fun acc p -> acc + (Unix.stat p).Unix.st_size)
          0 (entry_files dir)
      in
      Alcotest.(check bool) "directory bounded" true
        (total <= (2 * entry_bytes) + 16);
      (* Oldest evicted, newest kept. *)
      check Alcotest.bool "k0 evicted" true
        (Rcache.find rc ~key:"k0" ~digest:"d" = None);
      check Alcotest.bool "k3 kept" true
        (Rcache.find rc ~key:"k3" ~digest:"d" <> None))

let test_rcache_config_digest () =
  let d1 = Rcache.config_digest C.sweep_empty_bit in
  let d2 = Rcache.config_digest C.sweep_empty_bit in
  let d3 = Rcache.config_digest C.sweep_nvm_search in
  check Alcotest.string "digest stable" d1 d2;
  Alcotest.(check bool) "digest separates configs" true (d1 <> d3)

(* ---------------- deterministic backoff ---------------- *)

let test_backoff_deterministic () =
  let p = Supervisor.policy ~seed:7 ~workers:3 () in
  let schedule policy =
    List.concat_map
      (fun slot ->
        List.map
          (fun nth -> Supervisor.backoff_delay_s policy ~slot ~nth)
          [ 0; 1; 2; 3; 4; 5 ])
      [ 0; 1; 2 ]
  in
  let a = schedule p in
  check (Alcotest.list (Alcotest.float 0.0)) "identical across calls" a
    (schedule p);
  (* Pure in (seed, slot, nth): the worker count and every other policy
     knob are irrelevant, so -j / --workers cannot perturb it. *)
  let p8 =
    Supervisor.policy ~seed:7 ~workers:8 ~retries:9 ~worker_timeout_s:1.0
      ~respawn_budget:99 ()
  in
  check (Alcotest.list (Alcotest.float 0.0)) "independent of worker count" a
    (schedule p8);
  let pseed = Supervisor.policy ~seed:8 ~workers:3 () in
  Alcotest.(check bool) "seed changes the schedule" true (a <> schedule pseed);
  (* Exponential envelope with bounded jitter: base*2^nth <= delay <=
     1.5 * min(base*2^nth, max). *)
  List.iter
    (fun slot ->
      List.iter
        (fun nth ->
          let d = Supervisor.backoff_delay_s p ~slot ~nth in
          let base =
            Float.min p.Supervisor.backoff_max_s
              (p.Supervisor.backoff_base_s *. (2.0 ** float_of_int nth))
          in
          Alcotest.(check bool)
            (Printf.sprintf "slot %d nth %d in envelope" slot nth)
            true
            (d >= base && d <= 1.5 *. base))
        [ 0; 1; 2; 3; 4; 5; 10 ])
    [ 0; 1; 2 ];
  let d0 = Supervisor.backoff_delay_s p ~slot:0 ~nth:0 in
  let d5 = Supervisor.backoff_delay_s p ~slot:0 ~nth:5 in
  Alcotest.(check bool) "grows with nth" true (d5 > d0)

(* ---------------- status retry accounting ---------------- *)

let test_status_retried () =
  with_tmp_dir (fun dir ->
      let path = Filename.concat dir "status.json" in
      let st = Status.create ~path ~interval_s:0.0 ~workers:2 () in
      Status.add_total st 2;
      Status.job_started st ~key:"a";
      (* a's worker died: back to the queue, then runs again. *)
      Status.job_retried st ~key:"a";
      Status.job_started st ~key:"a";
      Status.job_finished st ~key:"a" ~ok:true ~elapsed_s:0.1 ~sim_ns:1e9;
      Status.job_started st ~key:"b";
      Status.job_finished st ~key:"b" ~ok:true ~elapsed_s:0.1 ~sim_ns:1e9;
      Status.write st;
      match A.Status_file.load path with
      | Error e -> Alcotest.fail e
      | Ok t ->
        check Alcotest.int "retried" 1 t.A.Status_file.retried;
        check Alcotest.int "done" 2 t.A.Status_file.done_;
        check Alcotest.int "queued" 0 t.A.Status_file.queued;
        check (Alcotest.list Alcotest.string) "internally consistent" []
          (A.Status_file.validate t))

(* ---------------- executor + cache integration ---------------- *)

(* A warm cache must change nothing but the work done: identical
   results-store snapshots and identical serialized result lines, with
   every job served from the cache on the second pass. *)
let test_executor_warm_cache_identity () =
  with_tmp_dir (fun dir ->
      let jobs = small_matrix () in
      let sweep rc =
        Results.clear ();
        Executor.execute ~workers:2 ~config:(Executor.config ~rcache:rc ())
          jobs;
        Results.snapshot ()
      in
      let rc1 = Rcache.create dir in
      let snap1 = sweep rc1 in
      let s1 = Rcache.stats rc1 in
      check Alcotest.int "cold pass misses all" (List.length jobs)
        s1.Rcache.misses;
      check Alcotest.int "cold pass hits none" 0 s1.Rcache.hits;
      let rc2 = Rcache.create dir in
      let snap2 = sweep rc2 in
      let s2 = Rcache.stats rc2 in
      check Alcotest.int "warm pass hits all" (List.length jobs)
        s2.Rcache.hits;
      check Alcotest.int "warm pass misses none" 0 s2.Rcache.misses;
      check Alcotest.int "same result count" (List.length snap1)
        (List.length snap2);
      List.iter2
        (fun (k1, sum1) (k2, sum2) ->
          check Alcotest.string "same key" k1 k2;
          check Alcotest.string ("summary bytes for " ^ k1)
            (bytes_of_summary sum1) (bytes_of_summary sum2);
          (* The line the JSONL sink would emit, pinned ts. *)
          let line s =
            Results.json_line ~ts:0.0 ~exp:"t" ~key:k1 ~design:"d" ~label:"l"
              ~power:"p" ~bench:"b" ~scale:0.05 ~elapsed_s:1.0 s
          in
          check Alcotest.string ("json line for " ^ k1) (line sum1)
            (line sum2))
        snap1 snap2;
      Results.clear ())

let suite =
  [
    Alcotest.test_case "exit-code contract" `Quick test_exit_codes;
    Alcotest.test_case "wire hex round-trip" `Quick test_wire_hex;
    Alcotest.test_case "wire to_worker round-trip" `Quick
      test_wire_to_worker_roundtrip;
    Alcotest.test_case "wire from_worker round-trip" `Quick
      test_wire_from_worker_roundtrip;
    Alcotest.test_case "wire torn lines decode to None" `Quick
      test_wire_torn_lines;
    Alcotest.test_case "rcache store/hit byte-identical" `Quick
      test_rcache_hit;
    Alcotest.test_case "rcache truncated entry" `Quick test_rcache_truncated;
    Alcotest.test_case "rcache bit-flipped entry" `Quick test_rcache_bitflip;
    Alcotest.test_case "rcache garbled header" `Quick
      test_rcache_header_garbage;
    Alcotest.test_case "rcache LRU eviction" `Quick test_rcache_eviction;
    Alcotest.test_case "rcache config digest" `Quick
      test_rcache_config_digest;
    Alcotest.test_case "backoff deterministic" `Quick
      test_backoff_deterministic;
    Alcotest.test_case "status retry accounting" `Quick test_status_retried;
    Alcotest.test_case "warm cache byte-identity" `Quick
      test_executor_warm_cache_identity;
  ]

(* `sweepexp cache stats` / `cache purge` maintenance surface. *)
let test_rcache_disk_stats_and_purge () =
  with_tmp_dir (fun dir ->
      let summary = Lazy.force the_summary in
      let rc = Rcache.create dir in
      check Alcotest.bool "empty cache stats" true
        (Rcache.disk_stats rc = (0, 0));
      List.iter
        (fun key -> Rcache.store rc ~key ~digest:"d" ~elapsed_s:0.1 summary)
        [ "a"; "b"; "c" ];
      let entries, bytes = Rcache.disk_stats rc in
      check Alcotest.int "three entries on disk" 3 entries;
      check Alcotest.bool "bytes counted" true (bytes > 0);
      let purged_entries, purged_bytes = Rcache.purge rc in
      check Alcotest.int "purge removes all" 3 purged_entries;
      check Alcotest.int "purge reports the bytes" bytes purged_bytes;
      check Alcotest.bool "cache now empty" true
        (Rcache.disk_stats rc = (0, 0));
      check Alcotest.bool "directory survives" true (Sys.is_directory dir);
      check Alcotest.int "no entry files left" 0
        (List.length (entry_files dir)))

let suite =
  suite
  @ [
      Alcotest.test_case "rcache disk stats + purge" `Quick
        test_rcache_disk_stats_and_purge;
    ]
