(* Differential crash-consistency checker tests: the §4.2 three-case
   recovery argument under adversarial crash placement — inside the
   phase-2 flush, mid-phase-3 DMA, and nested (crash during recovery
   itself) — plus the checker's own liveness (every --mutate mode must
   flip the verdict) and the executor's structured failure handling. *)

open Alcotest
module Check = Sweep_check.Check
module Progen = Sweep_check.Progen
module H = Sweep_sim.Harness
module Driver = Sweep_sim.Driver
module Fault = Sweep_sim.Fault
module Config = Sweep_machine.Config
module FM = Sweep_machine.Fault_model
module Executor = Sweep_exp.Executor
module Results = Sweep_exp.Results
module Jobs = Sweep_exp.Jobs
module C = Sweep_exp.Exp_common

let ast () = Check.ast_of_bench ~bench:"sha" ~scale:0.05
let config = Config.default
let torn = { FM.none with FM.torn_dma = true }

let scout_sweep ast =
  let compiled = H.compile H.Sweep ast in
  (compiled, Check.scout ~config H.Sweep compiled ~max_instructions:5_000_000)

(* ------------------------------------------------------------------ *)

let test_oracle_deterministic () =
  let ast = ast () in
  let compiled, s1 = scout_sweep ast in
  let _, s2 = scout_sweep ast in
  check int "total instructions stable" s1.Check.total_instructions
    s2.Check.total_instructions;
  check (list int) "boundaries stable" s1.Check.boundary_instrs
    s2.Check.boundary_instrs;
  check bool "has boundaries" true (s1.Check.boundary_instrs <> []);
  let o1 =
    Check.snapshot_oracle ~config H.Sweep compiled
      ~boundary_instrs:s1.Check.boundary_instrs
  in
  let o2 =
    Check.snapshot_oracle ~config H.Sweep compiled
      ~boundary_instrs:s2.Check.boundary_instrs
  in
  check (list string) "digests stable"
    (List.map (fun b -> b.Check.digest) o1.Check.boundaries)
    (List.map (fun b -> b.Check.digest) o2.Check.boundaries)

let take n l = List.filteri (fun i _ -> i < n) l

(* Crash inside the phase-2 flush (s-phase1 in flight): the buffer is
   neither cleanly Filling nor phase1-complete; recovery must discard
   it and land on the previous boundary. *)
let test_sweep_crash_in_flush () =
  let ast = ast () in
  let _, s = scout_sweep ast in
  check bool "scout found flush windows" true (s.Check.flush_instrs <> []);
  let faults =
    List.map Fault.at_instruction (take 3 s.Check.flush_instrs)
  in
  let r = Check.check_points ~fm:torn H.Sweep ast faults in
  check int "all fired" 0 r.Check.skipped;
  check (list string) "no divergence in flush crashes" []
    (List.map Check.pp_divergence r.Check.divergences)

(* Crash mid-phase-3 DMA: entries partially (and, with torn-dma, only
   partially per line) applied; the idempotent re-drive must heal. *)
let test_sweep_crash_mid_dma () =
  let ast = ast () in
  let _, s = scout_sweep ast in
  check bool "scout found drain windows" true (s.Check.drain_instrs <> []);
  let faults =
    List.map Fault.at_instruction (take 3 s.Check.drain_instrs)
  in
  let r = Check.check_points ~fm:torn H.Sweep ast faults in
  check int "all fired" 0 r.Check.skipped;
  check (list string) "no divergence in mid-DMA crashes" []
    (List.map Check.pp_divergence r.Check.divergences)

(* Nested: the re-drive itself is interrupted, twice.  §4.2's redo must
   be idempotent for this to converge. *)
let test_sweep_nested_crash () =
  let ast = ast () in
  let _, s = scout_sweep ast in
  let mid = s.Check.total_instructions / 2 in
  let faults =
    [ Fault.at_instruction ~nested:2 mid ]
    @ List.map (Fault.at_instruction ~nested:1) (take 2 s.Check.drain_instrs)
  in
  let r = Check.check_points ~fm:torn H.Sweep ast faults in
  check bool "nested crashes fired" true (r.Check.crashes >= 7);
  check (list string) "no divergence with nested crashes" []
    (List.map Check.pp_divergence r.Check.divergences)

(* NVSRAM under the same crash points (plus nested): its JIT shadow
   backup must restore exactly; the final-globals oracle decides. *)
let test_nvsram_crashes () =
  let ast = ast () in
  let _, s = scout_sweep ast in
  let total = s.Check.total_instructions in
  let faults =
    [
      Fault.at_instruction (max 1 (total / 4));
      Fault.at_instruction (max 1 (total / 2));
      Fault.at_instruction ~nested:2 (max 1 (3 * total / 4));
    ]
  in
  let r = Check.check_points H.Nvsram ast faults in
  check bool "crashes fired" true (r.Check.crashes >= 5);
  check (list string) "NVSRAM recovers" []
    (List.map Check.pp_divergence r.Check.divergences)

(* Event-triggered placement: kill at the Nth buf_phase event without
   knowing instruction indices (sequential spy path in the driver). *)
let test_event_triggered_fault () =
  let ast = ast () in
  let r =
    H.run ~config H.Sweep ~power:Driver.Unlimited
      ~fault:(Fault.at_event ~nth:5 "buf_phase")
      ast
  in
  check int "event fault fired" 1 r.H.outcome.Driver.injected_faults;
  (match H.check_against_interp r ast with
  | Ok () -> ()
  | Error e -> fail ("event-triggered crash diverged: " ^ e))

(* Every --mutate mode must flip the verdict: a checker that stays
   green under a deliberately broken recovery invariant is vacuous. *)
let mutation_detected fm design =
  let r =
    Check.check_cell ~fm ~bench:"sha" ~scale:0.08 ~max_points:8 ~stride:0
      ~nested_every:4 ~phase_points:true ~workers:1 design
      (Check.ast_of_bench ~bench:"sha" ~scale:0.08)
  in
  not (Check.ok r)

let test_mutations_detected () =
  check bool "skip-restore detected (Sweep)" true
    (mutation_detected { torn with FM.skip_restore = true } H.Sweep);
  check bool "stuck-phase1 detected" true
    (mutation_detected { torn with FM.stuck_phase1 = true } H.Sweep);
  check bool "stuck-phase2 detected" true
    (mutation_detected { torn with FM.stuck_phase2 = true } H.Sweep);
  check bool "skip-restore detected (NVSRAM)" true
    (mutation_detected { FM.none with FM.skip_restore = true } H.Nvsram)

(* ------------------------------------------------------------------ *)

let test_progen_deterministic () =
  let p1 = Progen.generate ~seed:42 in
  let p2 = Progen.generate ~seed:42 in
  check bool "same seed, same program" true (p1 = p2);
  let p3 = Progen.generate ~seed:43 in
  check bool "different seed, different program" true (p1 <> p3);
  (* Generated programs pass the checker (they are total and the
     machine recovers); keep it to one seed for test-suite speed. *)
  let r = Check.check_program ~max_points:4 ~nested_every:3 p1 in
  check (list string) "generated program checks out" []
    (List.map Check.pp_divergence r.Check.divergences)

let test_progen_render_and_shrink () =
  let p = Progen.generate ~seed:7 in
  let text = Progen.render p in
  let contains needle hay =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  check bool "render mentions main" true (contains "fn main" text);
  (* Shrinking with an always-failing predicate must reach the minimal
     main (epilogue only) and keep the program valid. *)
  let small = Progen.shrink ~still_failing:(fun _ -> true) p in
  Sweep_lang.Ast.validate small;
  let main_fn =
    List.find (fun f -> f.Sweep_lang.Ast.fname = "main")
      small.Sweep_lang.Ast.funcs
  in
  check int "shrunk to epilogue" 3 (List.length main_fn.Sweep_lang.Ast.body);
  (* A predicate that rejects everything leaves the program unchanged. *)
  let same = Progen.shrink ~still_failing:(fun _ -> false) p in
  check bool "no shrink when nothing keeps failing" true (same = p)

(* ------------------------------------------------------------------ *)

(* One bad job must not tear down a -j N sweep: it becomes a structured
   failure, the good jobs still produce summaries. *)
let test_executor_structured_failures () =
  Results.clear ();
  let good =
    Jobs.job ~exp:"t" ~scale:0.05 (C.setting H.Nvp) ~power:Jobs.unlimited
      "sha"
  in
  let bad =
    Jobs.job ~exp:"t" ~scale:0.05 (C.setting H.Nvp) ~power:Jobs.unlimited
      "no-such-bench"
  in
  Executor.execute ~workers:2 [ good; bad ];
  check bool "good job has a summary" true (Results.mem (Jobs.key good));
  (match Results.failures () with
  | [ f ] ->
    check string "failure keyed to the bad job" (Jobs.key bad) f.Results.key;
    check bool "error recorded" true (String.length f.Results.error > 0)
  | l -> fail (Printf.sprintf "expected 1 failure, got %d" (List.length l)));
  Results.clear ()

let suite =
  [
    test_case "oracle is deterministic" `Quick test_oracle_deterministic;
    test_case "crash inside phase-2 flush" `Quick test_sweep_crash_in_flush;
    test_case "crash mid-phase-3 DMA" `Quick test_sweep_crash_mid_dma;
    test_case "nested crash during recovery" `Quick test_sweep_nested_crash;
    test_case "NVSRAM crash recovery" `Quick test_nvsram_crashes;
    test_case "event-triggered fault" `Quick test_event_triggered_fault;
    test_case "mutations are detected" `Slow test_mutations_detected;
    test_case "progen determinism" `Quick test_progen_deterministic;
    test_case "progen render + shrink" `Quick test_progen_render_and_shrink;
    test_case "executor structured failures" `Quick
      test_executor_structured_failures;
  ]
