let () =
  Alcotest.run "sweepcache"
    [
      ("util", T_util.suite);
      ("isa", T_isa.suite);
      ("lang", T_lang.suite);
      ("compiler", T_compiler.suite);
      ("regions", T_regions.suite);
      ("regalloc", T_regalloc.suite);
      ("mem", T_mem.suite);
      ("energy", T_energy.suite);
      ("machine", T_machine.suite);
      ("core", T_core.suite);
      ("baselines", T_baselines.suite);
      ("equiv", T_equiv.suite);
      ("alloc", T_alloc.suite);
      ("sim", T_sim.suite);
      ("workloads", T_workloads.suite);
      ("exp", T_exp.suite);
      ("obs", T_obs.suite);
      ("analyze", T_analyze.suite);
      ("check", T_check.suite);
      ("tune", T_tune.suite);
      ("telemetry", T_telemetry.suite);
      ("super", T_super.suite);
      ("profile", T_profile.suite);
      ("fleet", T_fleet.suite);
    ]
