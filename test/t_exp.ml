(* Experiment-harness tests: registry integrity, caching, the job
   layer's key/dedup semantics, executor determinism across worker
   counts, the JSONL sink, and that the cheap experiments print without
   raising. *)
module C = Sweep_exp.Exp_common
module Experiments = Sweep_exp.Experiments
module Jobs = Sweep_exp.Jobs
module Executor = Sweep_exp.Executor
module Results = Sweep_exp.Results
module H = Sweep_sim.Harness
module Trace = Sweep_energy.Power_trace

let check = Alcotest.check

let test_registry_unique_names () =
  let names = List.map (fun e -> e.Experiments.name) Experiments.all in
  check Alcotest.int "unique" (List.length names)
    (List.length (List.sort_uniq compare names))

let test_registry_find () =
  Alcotest.(check bool) "fig5 exists" true (Experiments.find "fig5" <> None);
  Alcotest.(check bool) "unknown is none" true (Experiments.find "zzz" = None)

let test_subset_is_subset () =
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " in all") true (List.mem n C.all_names))
    C.subset_names

let test_run_is_cached () =
  let s = C.setting H.Nvp in
  let a = C.run ~scale:0.1 s ~power:Sweep_sim.Driver.Unlimited "sha" in
  let b = C.run ~scale:0.1 s ~power:Sweep_sim.Driver.Unlimited "sha" in
  Alcotest.(check bool) "same result object" true (a == b)

let test_speedup_positive () =
  let s = C.sweep_empty_bit in
  Alcotest.(check bool) "speedup > 1" true
    (C.speedup ~scale:0.1 s ~power:Sweep_sim.Driver.Unlimited "sha" > 1.0)

let test_settings_labels_distinct () =
  let labels = List.map (fun s -> s.C.label) C.fig5_settings in
  check Alcotest.int "distinct labels" (List.length labels)
    (List.length (List.sort_uniq compare labels))

let with_null_stdout f =
  (* The experiment printers write to stdout; keep test output clean. *)
  let saved = Unix.dup Unix.stdout in
  let null = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  flush stdout;
  Unix.dup2 null Unix.stdout;
  Fun.protect
    ~finally:(fun () ->
      flush stdout;
      Unix.dup2 saved Unix.stdout;
      Unix.close saved;
      Unix.close null)
    f

let test_cheap_experiments_print () =
  with_null_stdout (fun () ->
      Sweep_exp.Exp_tab1.run ();
      Sweep_exp.Exp_hwcost.run ())

(* ---- job layer ---- *)

let test_job_key_matches_run_key () =
  (* A declaratively-built job and the render-time lookup must agree on
     the key, or the render phase re-simulates everything. *)
  let s = C.setting H.Sweep in
  List.iter
    (fun spec ->
      let j = Jobs.job ~exp:"t" ~scale:0.25 s ~power:spec "sha" in
      check Alcotest.string "key bridge" (Jobs.key j)
        (C.run_key ~scale:0.25 s ~power:(Jobs.to_power spec) "sha"))
    [ Jobs.unlimited; Jobs.harvested Trace.Rf_office;
      Jobs.harvested ~farads:100e-9 ~v_min:1.8 Trace.Solar ]

let test_power_id_matches_power_key () =
  List.iter
    (fun spec ->
      check Alcotest.string "power bridge" (Jobs.power_id spec)
        (C.power_key (Jobs.to_power spec)))
    [ Jobs.unlimited; Jobs.harvested Trace.Rf_home;
      Jobs.harvested ~farads:4.7e-6 Trace.Thermal ]

let test_matrix_shape () =
  let settings = [ C.setting H.Nvp; C.sweep_empty_bit ] in
  let powers = [ Jobs.unlimited; Jobs.harvested Trace.Rf_office ] in
  let m = Jobs.matrix ~exp:"t" ~powers settings [ "sha"; "dijkstra" ] in
  check Alcotest.int "cross product" (2 * 2 * 2) (List.length m)

let test_dedup_drops_duplicates () =
  let s = C.setting H.Nvp in
  let a = Jobs.job ~exp:"first" s ~power:Jobs.unlimited "sha" in
  let b = Jobs.job ~exp:"second" s ~power:Jobs.unlimited "sha" in
  let c = Jobs.job ~exp:"first" s ~power:Jobs.unlimited "dijkstra" in
  let d = Jobs.dedup [ a; b; c; b ] in
  check Alcotest.int "two unique keys" 2 (List.length d);
  (* first occurrence wins, so its exp tag owns the JSONL line *)
  check Alcotest.string "first exp kept" "first" (List.hd d).Jobs.exp;
  check Alcotest.string "order kept" (Jobs.key c) (Jobs.key (List.nth d 1))

let small_matrix () =
  Jobs.matrix ~exp:"t" ~scale:0.05
    [ C.setting H.Nvp; C.setting H.Wt; C.sweep_empty_bit ]
    [ "sha"; "dijkstra" ]

let test_executor_determinism () =
  (* The store contents must be independent of worker count: run the
     same matrix at -j 1 and -j 4 and compare full snapshots. *)
  let snap workers =
    Results.clear ();
    Executor.execute ~workers (small_matrix ());
    Results.snapshot ()
  in
  let seq = snap 1 and par = snap 4 in
  check Alcotest.int "store size" (List.length seq) (List.length par);
  List.iter2
    (fun (k1, s1) (k2, s2) ->
      check Alcotest.string "same keys" k1 k2;
      Alcotest.(check bool) ("equal summary for " ^ k1) true (s1 = s2))
    seq par

let test_executor_skips_cached () =
  Results.clear ();
  Executor.execute ~workers:2 (small_matrix ());
  let before = Results.snapshot () in
  Executor.execute ~workers:2 (small_matrix ());
  let after = Results.snapshot () in
  check Alcotest.int "no growth" (List.length before) (List.length after);
  (* keep-first: the stored summaries are the same physical objects *)
  List.iter2
    (fun (_, s1) (_, s2) ->
      Alcotest.(check bool) "physically cached" true (s1 == s2))
    before after

let test_jsonl_sink () =
  let dir = Filename.temp_file "sweepexp" ".d" in
  Sys.remove dir;
  Results.set_dir (Some dir);
  Results.clear ();
  let jobs = small_matrix () in
  Fun.protect
    ~finally:(fun () -> Results.set_dir None)
    (fun () -> Executor.execute ~workers:2 jobs);
  let file = Filename.concat dir "t.jsonl" in
  Alcotest.(check bool) "file exists" true (Sys.file_exists file);
  let ic = open_in file in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  check Alcotest.int "one line per job" (List.length jobs)
    (List.length !lines);
  List.iter
    (fun l ->
      Alcotest.(check bool) "looks like a JSON object" true
        (String.length l > 2 && l.[0] = '{' && l.[String.length l - 1] = '}');
      Alcotest.(check bool) "has key field" true
        (let re = {|"key":|} in
         let rec find i =
           i + String.length re <= String.length l
           && (String.sub l i (String.length re) = re || find (i + 1))
         in
         find 0))
    !lines;
  List.iter (fun l -> Sys.remove (Filename.concat dir l))
    (Array.to_list (Sys.readdir dir));
  Unix.rmdir dir

let suite =
  [
    Alcotest.test_case "experiment names unique" `Quick test_registry_unique_names;
    Alcotest.test_case "experiment find" `Quick test_registry_find;
    Alcotest.test_case "subset valid" `Quick test_subset_is_subset;
    Alcotest.test_case "run cached" `Quick test_run_is_cached;
    Alcotest.test_case "speedup positive" `Quick test_speedup_positive;
    Alcotest.test_case "setting labels" `Quick test_settings_labels_distinct;
    Alcotest.test_case "tab1/hwcost print" `Quick test_cheap_experiments_print;
    Alcotest.test_case "job key matches run key" `Quick
      test_job_key_matches_run_key;
    Alcotest.test_case "power id matches power key" `Quick
      test_power_id_matches_power_key;
    Alcotest.test_case "matrix shape" `Quick test_matrix_shape;
    Alcotest.test_case "dedup" `Quick test_dedup_drops_duplicates;
    Alcotest.test_case "executor determinism j1=j4" `Slow
      test_executor_determinism;
    Alcotest.test_case "executor skips cached" `Slow
      test_executor_skips_cached;
    Alcotest.test_case "jsonl sink" `Slow test_jsonl_sink;
  ]
