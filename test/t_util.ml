(* Unit and property tests for Sweep_util. *)
module Rng = Sweep_util.Rng
module Stats = Sweep_util.Stats
module Table = Sweep_util.Table

let check = Alcotest.check

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  Alcotest.(check bool) "different seeds differ" true (Rng.int64 a <> Rng.int64 b)

let test_rng_split_independent () =
  let a = Rng.create 7 in
  let b = Rng.split a in
  Alcotest.(check bool) "split stream differs" true (Rng.int64 a <> Rng.int64 b)

let test_rng_copy () =
  let a = Rng.create 5 in
  ignore (Rng.int64 a);
  let b = Rng.copy a in
  check Alcotest.int64 "copies continue identically" (Rng.int64 a) (Rng.int64 b)

let prop_int_bounds =
  QCheck2.Test.make ~name:"Rng.int in [0, bound)" ~count:500
    QCheck2.Gen.(pair (int_range 0 1_000_000) (int_range 1 5000))
    (fun (seed, bound) ->
      let rng = Rng.create seed in
      let x = Rng.int rng bound in
      x >= 0 && x < bound)

let prop_float_bounds =
  QCheck2.Test.make ~name:"Rng.float in [0, bound)" ~count:500
    QCheck2.Gen.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Rng.create seed in
      let x = Rng.float rng 3.5 in
      x >= 0.0 && x < 3.5)

let test_gaussian_moments () =
  let rng = Rng.create 11 in
  let n = 20_000 in
  let sum = ref 0.0 and sq = ref 0.0 in
  for _ = 1 to n do
    let x = Rng.gaussian rng in
    sum := !sum +. x;
    sq := !sq +. (x *. x)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sq /. float_of_int n) -. (mean *. mean) in
  Alcotest.(check bool) "mean near 0" true (Float.abs mean < 0.05);
  Alcotest.(check bool) "variance near 1" true (Float.abs (var -. 1.0) < 0.1)

let test_exponential_mean () =
  let rng = Rng.create 13 in
  let n = 20_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Rng.exponential rng 2.5
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean near 2.5" true (Float.abs (mean -. 2.5) < 0.15)

let test_shuffle_permutes () =
  let rng = Rng.create 3 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 Fun.id) sorted

let test_mean_geomean () =
  check (Alcotest.float 1e-9) "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ]);
  check (Alcotest.float 1e-6) "geomean" 2.0 (Stats.geomean [ 1.0; 2.0; 4.0 ]);
  check (Alcotest.float 1e-9) "empty mean" 0.0 (Stats.mean []);
  check (Alcotest.float 1e-9) "empty geomean" 0.0 (Stats.geomean [])

let test_geomean_exact () =
  check (Alcotest.float 1e-9) "geomean of equal" 5.0
    (Stats.geomean [ 5.0; 5.0; 5.0 ]);
  check (Alcotest.float 1e-6) "geomean 2,8" 4.0 (Stats.geomean [ 2.0; 8.0 ])

let test_stddev () =
  check (Alcotest.float 1e-9) "stddev constant" 0.0 (Stats.stddev [ 4.0; 4.0 ]);
  check (Alcotest.float 1e-6) "stddev 0,2" 1.0 (Stats.stddev [ 0.0; 2.0 ])

let test_percentile () =
  let sorted = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  check (Alcotest.float 1e-9) "p0" 1.0 (Stats.percentile sorted 0.0);
  check (Alcotest.float 1e-9) "p100" 5.0 (Stats.percentile sorted 100.0);
  check (Alcotest.float 1e-9) "p50" 3.0 (Stats.percentile sorted 50.0);
  check (Alcotest.float 1e-9) "p25" 2.0 (Stats.percentile sorted 25.0)

let test_cdf_points_edges () =
  check
    Alcotest.(list (pair (float 0.0) (float 0.0)))
    "empty input" []
    (Stats.cdf_points [] 11);
  (* Singleton: every requested point is the lone sample, percents span
     0..100. *)
  let pts = Stats.cdf_points [ 42.0 ] 3 in
  check
    Alcotest.(list (pair (float 1e-9) (float 1e-9)))
    "singleton" [ (42.0, 0.0); (42.0, 50.0); (42.0, 100.0) ] pts

let prop_cdf_monotone =
  QCheck2.Test.make ~name:"cdf_points monotone" ~count:200
    QCheck2.Gen.(list_size (int_range 1 40) (float_range (-100.) 100.))
    (fun samples ->
      let pts = Stats.cdf_points samples 11 in
      let rec mono = function
        | (v1, p1) :: ((v2, p2) :: _ as rest) ->
          v1 <= v2 && p1 <= p2 && mono rest
        | _ -> true
      in
      mono pts)

let test_clamp () =
  check (Alcotest.float 0.0) "below" 1.0 (Stats.clamp ~lo:1.0 ~hi:2.0 0.0);
  check (Alcotest.float 0.0) "above" 2.0 (Stats.clamp ~lo:1.0 ~hi:2.0 9.0);
  check (Alcotest.float 0.0) "inside" 1.5 (Stats.clamp ~lo:1.0 ~hi:2.0 1.5)

let test_ratio () =
  check (Alcotest.float 0.0) "normal" 2.0 (Stats.ratio 4.0 2.0);
  Alcotest.(check bool) "div by zero" true (Stats.ratio 1.0 0.0 = infinity);
  Alcotest.(check bool) "0/0 is nan" true (Float.is_nan (Stats.ratio 0.0 0.0))

let test_table_render () =
  let t = Table.create [ "name"; "value" ] in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_float_row t "beta" [ 2.5 ];
  let s = Table.render t in
  Alcotest.(check bool) "has header" true
    (String.length s > 0 && String.sub s 0 4 = "name");
  Alcotest.(check bool) "has alpha row" true
    (Thelpers.contains s "alpha");
  Alcotest.(check bool) "formats float" true
    (Thelpers.contains s "2.50")

let test_table_pads_short_rows () =
  let t = Table.create [ "a"; "b"; "c" ] in
  Table.add_row t [ "only" ];
  (* Must not raise. *)
  ignore (Table.render t)

let test_float_cell () =
  Alcotest.(check string) "two decimals" "3.14" (Table.float_cell 3.14159);
  Alcotest.(check string) "nan spelled" "nan" (Table.float_cell Float.nan);
  Alcotest.(check string) "large integral" "12000" (Table.float_cell 12000.0)

let qsuite = List.map QCheck_alcotest.to_alcotest
    [ prop_int_bounds; prop_float_bounds; prop_cdf_monotone ]

let suite =
  [
    Alcotest.test_case "rng deterministic" `Quick test_rng_deterministic;
    Alcotest.test_case "rng seed sensitivity" `Quick test_rng_seed_sensitivity;
    Alcotest.test_case "rng split" `Quick test_rng_split_independent;
    Alcotest.test_case "rng copy" `Quick test_rng_copy;
    Alcotest.test_case "gaussian moments" `Quick test_gaussian_moments;
    Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
    Alcotest.test_case "shuffle permutes" `Quick test_shuffle_permutes;
    Alcotest.test_case "mean/geomean basics" `Quick test_mean_geomean;
    Alcotest.test_case "geomean exact" `Quick test_geomean_exact;
    Alcotest.test_case "stddev" `Quick test_stddev;
    Alcotest.test_case "percentile" `Quick test_percentile;
    Alcotest.test_case "cdf_points edges" `Quick test_cdf_points_edges;
    Alcotest.test_case "clamp" `Quick test_clamp;
    Alcotest.test_case "ratio" `Quick test_ratio;
    Alcotest.test_case "table render" `Quick test_table_render;
    Alcotest.test_case "table pads" `Quick test_table_pads_short_rows;
    Alcotest.test_case "float cell" `Quick test_float_cell;
  ]
  @ qsuite
