(* sweepsim: run a benchmark on an architecture model, with or without
   harvested power, and report the run statistics.

     dune exec bin/sweepsim.exe -- sha
     dune exec bin/sweepsim.exe -- dijkstra -d nvp -t rfhome --cap 100e-9
     dune exec bin/sweepsim.exe -- fft --all-designs --verify
*)

open Cmdliner
module H = Sweep_sim.Harness
module Driver = Sweep_sim.Driver
module Trace = Sweep_energy.Power_trace
module Config = Sweep_machine.Config
module Mstats = Sweep_machine.Mstats
module Table = Sweep_util.Table
module C = Sweep_exp.Exp_common
module Results = Sweep_exp.Results

let design_assoc =
  [
    ("nvp", H.Nvp); ("wt", H.Wt); ("nvsram", H.Nvsram);
    ("nvsram-e", H.Nvsram_e); ("replay", H.Replay); ("nvmr", H.Nvmr);
    ("sweep", H.Sweep);
  ]

let trace_assoc =
  [
    ("rfoffice", Some Trace.Rf_office); ("rfhome", Some Trace.Rf_home);
    ("solar", Some Trace.Solar); ("thermal", Some Trace.Thermal);
    ("none", None);
  ]

(* Parallel map across the selected designs; cell order is preserved so
   the printed table is identical at any -j. *)
let pmap ~j f xs =
  let n = List.length xs in
  if j <= 1 || n <= 1 then List.map f xs
  else begin
    let arr = Array.of_list xs in
    let out = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          out.(i) <- Some (f arr.(i));
          loop ()
        end
      in
      loop ()
    in
    let spawned = List.init (min j n - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join spawned;
    Array.to_list (Array.map Option.get out)
  end

let run_one bench design power config scale verify =
  let w = Sweep_workloads.Registry.find bench in
  let ast = Sweep_workloads.Workload.program ~scale w in
  let t0 = Unix.gettimeofday () in
  let r = H.run ~config design ~power ast in
  let elapsed_s = Unix.gettimeofday () -. t0 in
  let o = r.H.outcome in
  let st = H.mstats r in
  let design_name = H.design_name design in
  let summary =
    {
      C.outcome = o;
      mstats = st;
      miss_rate = H.cache_miss_rate r;
      nvm_writes = H.nvm_writes r;
    }
  in
  Results.emit ~exp:"sweepsim"
    ~key:
      (C.key_of ~label:design_name ~design:design_name
         ~power:(C.power_key power) ~bench ~scale)
    ~design:design_name ~label:design_name ~power:(C.power_key power) ~bench
    ~scale ~elapsed_s summary;
  let ok, verified =
    if not verify then (true, "")
    else
      match H.check_against_interp r ast with
      | Ok () -> (true, "consistent")
      | Error e -> (false, "INCONSISTENT: " ^ e)
  in
  ( ok,
    [
      design_name;
      string_of_int o.Driver.instructions;
      Table.float_cell (o.Driver.on_ns /. 1e6);
      Table.float_cell (o.Driver.off_ns /. 1e6);
      string_of_int o.Driver.outages;
      string_of_int o.Driver.backups;
      Table.float_cell (Driver.total_joules o *. 1e6);
      Table.float_cell (100.0 *. H.cache_miss_rate r);
      string_of_int st.Mstats.regions;
      Table.float_cell (Mstats.parallelism_efficiency st);
      verified;
    ] )

let main bench designs trace cap scale cache_size nvm_search verify j
    results_dir =
  (match Sweep_workloads.Registry.find bench with
  | exception Not_found ->
    Printf.eprintf "unknown workload %S; available:\n  %s\n" bench
      (String.concat ", " (Sweep_workloads.Registry.names ()));
    exit 2
  | _ -> ());
  Results.set_dir results_dir;
  let power =
    match trace with
    | None -> Driver.Unlimited
    | Some kind -> Driver.harvested ~trace:(Trace.make kind) ~farads:cap ()
  in
  let config =
    let c = Config.with_cache Config.default ~size:cache_size in
    if nvm_search then Config.with_search c Config.Nvm_search else c
  in
  let t =
    Table.create
      [
        "design"; "instrs"; "on ms"; "off ms"; "outages"; "backups";
        "energy uJ"; "miss %"; "regions"; "eff %"; "check";
      ]
  in
  let rows =
    pmap ~j (fun d -> run_one bench d power config scale verify) designs
  in
  List.iter (fun (_, row) -> Table.add_row t row) rows;
  Table.print t;
  (* --verify regressions must fail the process so CI can catch them. *)
  if List.for_all fst rows then 0 else 1

let bench_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"WORKLOAD"
         ~doc:"Benchmark name (see --list in sweepcc, e.g. sha, dijkstra).")

let designs_arg =
  let parse s =
    match List.assoc_opt (String.lowercase_ascii s) design_assoc with
    | Some d -> Ok [ d ]
    | None -> Error (`Msg ("unknown design " ^ s))
  in
  let design_conv =
    Arg.conv (parse, fun fmt ds ->
        Format.pp_print_string fmt
          (String.concat "," (List.map H.design_name ds)))
  in
  Arg.(value & opt design_conv [ H.Sweep ]
       & info [ "d"; "design" ] ~docv:"DESIGN"
           ~doc:"Architecture: nvp, wt, nvsram, nvsram-e, replay, nvmr, sweep.")

let all_designs_arg =
  Arg.(value & flag
       & info [ "all-designs" ] ~doc:"Run every architecture model.")

let trace_arg =
  let trace_conv =
    Arg.conv
      ( (fun s ->
          match List.assoc_opt (String.lowercase_ascii s) trace_assoc with
          | Some t -> Ok t
          | None -> Error (`Msg ("unknown trace " ^ s))),
        fun fmt t ->
          Format.pp_print_string fmt
            (match t with Some k -> Trace.kind_name k | None -> "none") )
  in
  Arg.(value & opt trace_conv (Some Trace.Rf_office)
       & info [ "t"; "trace" ] ~docv:"TRACE"
           ~doc:"Power trace: rfoffice, rfhome, solar, thermal, or none \
                 (continuous power).")

let cap_arg =
  Arg.(value & opt float 470e-9
       & info [ "cap" ] ~docv:"FARADS" ~doc:"Capacitor size (farads).")

let scale_arg =
  Arg.(value & opt float 1.0
       & info [ "scale" ] ~docv:"S" ~doc:"Workload input scale factor.")

let cache_arg =
  Arg.(value & opt int 4096
       & info [ "cache-size" ] ~docv:"BYTES" ~doc:"Data-cache size in bytes.")

let nvm_search_arg =
  Arg.(value & flag
       & info [ "nvm-search" ]
           ~doc:"Disable the empty-bit: always search the persist buffers.")

let verify_arg =
  Arg.(value & flag
       & info [ "verify" ]
           ~doc:"Check the final NVM image against the reference \
                 interpreter.  Exits 1 if any design is INCONSISTENT.")

let jobs_arg =
  Arg.(value & opt int 1
       & info [ "j"; "jobs" ] ~docv:"N"
           ~doc:"Run the selected designs on N worker domains.")

let results_dir_arg =
  Arg.(value & opt (some string) None
       & info [ "results-dir" ] ~docv:"DIR"
           ~doc:"Append one JSON line per design run to DIR/sweepsim.jsonl.")

let cmd =
  let doc = "simulate a workload on an intermittent-computing architecture" in
  let term =
    Term.(
      const (fun bench design all trace cap scale cache nvm_search verify j
                 results_dir ->
          let designs = if all then H.all_designs else design in
          main bench designs trace cap scale cache nvm_search verify j
            results_dir)
      $ bench_arg $ designs_arg $ all_designs_arg $ trace_arg $ cap_arg
      $ scale_arg $ cache_arg $ nvm_search_arg $ verify_arg $ jobs_arg
      $ results_dir_arg)
  in
  Cmd.v (Cmd.info "sweepsim" ~doc) term

let () = exit (Cmd.eval' cmd)
