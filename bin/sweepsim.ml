(* sweepsim: run a benchmark on an architecture model, with or without
   harvested power, and report the run statistics.

     dune exec bin/sweepsim.exe -- sha
     dune exec bin/sweepsim.exe -- dijkstra -d nvp -t rfhome --cap 100e-9
     dune exec bin/sweepsim.exe -- fft --all-designs --verify
*)

open Cmdliner
module H = Sweep_sim.Harness
module Driver = Sweep_sim.Driver
module Trace = Sweep_energy.Power_trace
module Config = Sweep_machine.Config
module Mstats = Sweep_machine.Mstats
module Table = Sweep_util.Table
module C = Sweep_exp.Exp_common
module Results = Sweep_exp.Results
module Executor = Sweep_exp.Executor
module Obs = Sweep_obs

let design_assoc =
  [
    ("nvp", H.Nvp); ("wt", H.Wt); ("nvsram", H.Nvsram);
    ("nvsram-e", H.Nvsram_e); ("replay", H.Replay); ("nvmr", H.Nvmr);
    ("sweep", H.Sweep);
  ]

let trace_assoc =
  [
    ("rfoffice", Some Trace.Rf_office); ("rfhome", Some Trace.Rf_home);
    ("solar", Some Trace.Solar); ("thermal", Some Trace.Thermal);
    ("none", None);
  ]

(* One-line fatal error, exit 1 — never an uncaught backtrace. *)
let die fmt =
  Printf.ksprintf
    (fun msg ->
      Printf.eprintf "sweepsim: %s\n" msg;
      exit 1)
    fmt

let run_one bench design power config scale verify fault profile
    heartbeat_every export attrib_out attrib_folded =
  let w = Sweep_workloads.Registry.find bench in
  let ast = Sweep_workloads.Workload.program ~scale w in
  (* Compile and build the machine outside the timed window so --profile
     measures the cycle loop itself, not AST construction. *)
  let compiled = H.compile design ast in
  let m = H.machine ~config design compiled.Sweep_compiler.Pipeline.program in
  let at =
    if attrib_out <> None || attrib_folded <> None then
      Some
        (Obs.Attrib.create
           ~len:
             (Array.length
                compiled.Sweep_compiler.Pipeline.program.Sweep_isa.Program.code))
    else None
  in
  let heartbeat =
    if heartbeat_every <= 0 then None
    else
      let observer =
        Option.map
          (fun ex _ -> Obs.Openmetrics.tick ex)
          export
      in
      Some (Obs.Heartbeat.create ?observer ~every:heartbeat_every ())
  in
  let g0 = Gc.quick_stat () in
  let t0 = Unix.gettimeofday () in
  let outcome = Driver.run ?fault ?heartbeat ?attrib:at m ~power in
  let elapsed_s = Unix.gettimeofday () -. t0 in
  let r = { H.design; outcome; machine = m; compiled; attrib = at } in
  if profile then begin
    (* One-shot hot-loop profile: wall time, simulated-instruction
       throughput, and GC pressure over the drive loop (compile and
       machine construction excluded).  Stderr so tables/JSON stay
       parseable. *)
    let g1 = Gc.quick_stat () in
    let o = r.H.outcome in
    let instrs = o.Driver.instructions in
    let minor = g1.Gc.minor_words -. g0.Gc.minor_words in
    let major = g1.Gc.major_words -. g0.Gc.major_words in
    Printf.eprintf
      "profile[%s/%s]: %.3f s wall, %d instrs, %.0f instr/s\n\
      \  minor %.0f words (%.4f w/instr), major %.0f words, \
       %d minor collections, %d major collections\n"
      (H.design_name design) bench elapsed_s instrs
      (float_of_int instrs /. (if elapsed_s > 0.0 then elapsed_s else 1e-9))
      minor
      (if instrs > 0 then minor /. float_of_int instrs else 0.0)
      major
      (g1.Gc.minor_collections - g0.Gc.minor_collections)
      (g1.Gc.major_collections - g0.Gc.major_collections)
  end;
  let o = r.H.outcome in
  let st = H.mstats r in
  let design_name = H.design_name design in
  if Obs.Metrics.enabled () then
    Mstats.publish ~labels:[ ("design", design_name); ("bench", bench) ] st;
  (match at with
  | Some at ->
    let p =
      Sweep_sim.Profile.make ~design:design_name ~bench ~scale
        ~key:
          (C.key_of ~label:design_name ~design:design_name
             ~power:(C.power_key power) ~bench ~scale)
        compiled.Sweep_compiler.Pipeline.program at
    in
    Option.iter
      (fun path ->
        Sweep_sim.Profile.write_json p ~path;
        Printf.eprintf "per-PC profile written to %s\n" path)
      attrib_out;
    Option.iter
      (fun path ->
        Sweep_sim.Profile.write_folded p ~path;
        Printf.eprintf "collapsed stacks written to %s\n" path)
      attrib_folded
  | None -> ());
  let summary =
    {
      C.outcome = o;
      mstats = st;
      miss_rate = H.cache_miss_rate r;
      nvm_writes = H.nvm_writes r;
    }
  in
  Results.emit ~exp:"sweepsim"
    ~key:
      (C.key_of ~label:design_name ~design:design_name
         ~power:(C.power_key power) ~bench ~scale)
    ~design:design_name ~label:design_name ~power:(C.power_key power) ~bench
    ~scale ~elapsed_s summary;
  let ok, verified =
    if not verify then (true, "")
    else
      match H.check_against_interp r ast with
      | Ok () -> (true, "consistent")
      | Error e -> (false, "INCONSISTENT: " ^ e)
  in
  ( ok,
    [
      design_name;
      string_of_int o.Driver.instructions;
      Table.float_cell (o.Driver.on_ns /. 1e6);
      Table.float_cell (o.Driver.off_ns /. 1e6);
      string_of_int o.Driver.outages;
      string_of_int o.Driver.backups;
      Table.float_cell (Driver.total_joules o *. 1e6);
      Table.float_cell (100.0 *. H.cache_miss_rate r);
      string_of_int st.Mstats.regions;
      Table.float_cell (Mstats.parallelism_efficiency st);
      verified;
    ] )

let parse_trace_filter spec =
  match spec with
  | None -> []
  | Some spec ->
    String.split_on_char ',' spec
    |> List.filter (fun s -> s <> "")
    |> List.map (fun s ->
           match Obs.Event.category_of_name (String.lowercase_ascii s) with
           | Some c -> c
           | None ->
             Printf.eprintf
               "unknown trace category %S; available: %s\n" s
               (String.concat ", "
                  (List.map Obs.Event.category_name Obs.Event.all_categories));
             exit 2)

let main bench designs trace cap volts scale cache_size assoc buffer_entries
    jitter nvm_search verify j results_dir trace_out trace_format trace_cap
    trace_filter metrics metrics_out fault fault_nested profile
    heartbeat_every metrics_export attrib_out attrib_folded =
  try
  (match Sweep_workloads.Registry.find bench with
  | exception Not_found ->
    Printf.eprintf "unknown workload %S; available:\n  %s\n" bench
      (String.concat ", " (Sweep_workloads.Registry.names ()));
    exit 2
  | _ -> ());
  if j < 1 then die "-j must be at least 1 (got %d)" j;
  if cap <= 0.0 then die "--cap must be positive (got %g)" cap;
  if scale <= 0.0 then die "--scale must be positive (got %g)" scale;
  if cache_size < 64 then die "--cache-size must be at least one line (64)";
  let v_max, v_min = volts in
  if v_min <= 0.0 || v_max <= v_min then
    die "--v-max must exceed --v-min > 0 (got %g / %g)" v_max v_min;
  if not (Config.valid_geometry ~size:cache_size ~assoc) then
    die
      "--cache-size %d with --assoc %d is not a valid geometry (size must \
       be a positive multiple of assoc * 64)"
      cache_size assoc;
  if buffer_entries < 1 then
    die "--buffer-entries must be at least 1 (got %d)" buffer_entries;
  let jshift, jamp, jdrop, jseed = jitter in
  if jshift < 0 then die "--jitter-shift-steps must be >= 0";
  if jamp < 0 then die "--jitter-amp-permille must be >= 0";
  if jdrop < 0 || jdrop > 10000 then
    die "--jitter-drop-bp must be in [0, 10000]";
  if jseed < 0 then die "--jitter-drop-seed must be >= 0";
  let jittered = jshift <> 0 || jamp <> 1000 || jdrop <> 0 || jseed <> 0 in
  (* The canonical fleet jitter pipeline (shift, then scale, then drop),
     so a `sweepfleet report` replay line reproduces its device's power
     trace bit-for-bit. *)
  let jitterize t =
    if not jittered then t
    else
      Sweep_exp.Jobs.apply_jitter t ~shift_steps:jshift ~amp_permille:jamp
        ~drop_bp:jdrop ~drop_seed:jseed
  in
  if trace_cap < 0 then die "--trace-cap must be >= 0 (got %d)" trace_cap;
  if trace_cap > 0 && trace_out = None then
    die "--trace-cap only makes sense with --trace FILE";
  if fault_nested < 0 then die "--fault-nested must be >= 0";
  if fault_nested > 0 && fault = None then
    die "--fault-nested only makes sense with --fault N";
  if (attrib_out <> None || attrib_folded <> None) && List.length designs > 1
  then
    die
      "--attrib/--attrib-folded write one profile file: select a single \
       design with -d";
  let fault =
    match fault with
    | None -> None
    | Some n when n < 1 -> die "--fault expects an instruction index >= 1"
    | Some n -> Some (Sweep_sim.Fault.at_instruction ~nested:fault_nested n)
  in
  Results.set_dir results_dir;
  if metrics || Option.is_some metrics_out || Option.is_some metrics_export
  then Obs.Metrics.set_enabled true;
  let export =
    Option.map (fun path -> Obs.Openmetrics.exporter ~path ()) metrics_export
  in
  (* Heartbeats default on when the exporter needs a pulse to flush to,
     off otherwise; --heartbeat-every overrides either way. *)
  let heartbeat_every =
    match heartbeat_every with
    | Some n -> n
    | None -> if export <> None then Obs.Heartbeat.default_every else 0
  in
  if heartbeat_every < 0 then die "--heartbeat-every must be >= 0";
  let filter = parse_trace_filter trace_filter in
  let power =
    match trace with
    | `Kind None ->
      if jittered then die "--jitter-* flags need a power trace (-t)";
      Driver.Unlimited
    | `Kind (Some kind) ->
      Driver.harvested ~v_max ~v_min ~trace:(jitterize (Trace.make kind))
        ~farads:cap ()
    | `Csv path -> (
      (* A measured trace fed back in: any load problem (missing file,
         malformed CSV) is a clean one-liner, not a backtrace. *)
      match Trace.load_csv path with
      | t -> Driver.harvested ~v_max ~v_min ~trace:(jitterize t) ~farads:cap ()
      | exception Sys_error msg -> die "cannot read power trace: %s" msg
      | exception Failure msg ->
        die "cannot parse power trace %s: %s" path msg)
  in
  let config =
    let c =
      Config.with_buffer_entries
        (Config.with_geometry Config.default ~size:cache_size ~assoc)
        buffer_entries
    in
    if nvm_search then Config.with_search c Config.Nvm_search else c
  in
  let t =
    Table.create
      [
        "design"; "instrs"; "on ms"; "off ms"; "outages"; "backups";
        "energy uJ"; "miss %"; "regions"; "eff %"; "check";
      ]
  in
  (* Tracing puts every design on the same simulated-ns timeline, so the
     runs must be sequential to keep the trace legible. *)
  let j =
    match trace_out with
    | Some _ when j > 1 ->
      Printf.eprintf
        "sweepsim: warning: --trace forces sequential execution — \
         ignoring -j %d and running with 1 worker\n"
        j;
      1
    | _ -> j
  in
  if Option.is_some trace_out && List.length designs > 1 then
    Printf.eprintf
      "sweepsim: tracing %d designs onto one timeline; pass -d to isolate \
       one\n"
      (List.length designs);
  let run_all () =
    Executor.map ~workers:j
      (fun d ->
        run_one bench d power config scale verify fault profile
          heartbeat_every export attrib_out attrib_folded)
      designs
  in
  let rows =
    match trace_out with
    | None -> run_all ()
    | Some path ->
      let file_sink =
        match trace_format with
        | `Chrome -> Obs.Chrome_trace.create path
        | `Jsonl -> Obs.Jsonl_sink.create path
      in
      let counted, count = Obs.Sink.counting () in
      let with_filter s =
        match filter with [] -> s | cats -> Obs.Sink.filtered ~cats s
      in
      let rows, dropped =
        if trace_cap > 0 then begin
          (* Bounded capture: keep the last N events in a ring, then
             replay the retained window (with its Dropped marker) into
             the file. *)
          let ring = Obs.Ring.create ~capacity:trace_cap in
          let rows =
            Obs.Sink.with_sink
              (with_filter (Obs.Sink.tee counted (Obs.Ring.sink ring)))
              run_all
          in
          Obs.Ring.drain_to ring file_sink;
          file_sink.Obs.Sink.close ();
          (rows, Obs.Ring.dropped ring)
        end
        else
          ( Obs.Sink.with_sink (with_filter (Obs.Sink.tee counted file_sink))
              run_all,
            0 )
      in
      let viewer =
        match trace_format with
        | `Chrome -> " (load in ui.perfetto.dev)"
        | `Jsonl -> " (analyze with sweeptrace report)"
      in
      if dropped > 0 then
        Printf.eprintf
          "trace written to %s%s: TRUNCATED — kept last %d of %d events \
           (%d dropped by --trace-cap)\n"
          path viewer
          (count () - dropped)
          (count ()) dropped
      else
        Printf.eprintf "trace written to %s%s: %d events\n" path viewer
          (count ());
      rows
  in
  List.iter (fun (_, row) -> Table.add_row t row) rows;
  Table.print t;
  if metrics then
    print_string (Obs.Metrics.render (Obs.Metrics.snapshot ()));
  (match metrics_out with
  | None -> ()
  | Some path ->
    Obs.Metrics.write_json path (Obs.Metrics.snapshot ());
    Printf.eprintf "metrics snapshot written to %s\n" path);
  (match (export, metrics_export) with
  | Some ex, Some path ->
    Obs.Openmetrics.flush ex;
    Printf.eprintf "OpenMetrics export written to %s\n" path
  | _ -> ());
  (* --verify regressions must fail the process so CI can catch them. *)
  if List.for_all fst rows then 0 else 1
  with Sys_error msg ->
    (* Unwritable --trace / --results-dir / --metrics-out and friends:
       one line on stderr, exit 1, no backtrace. *)
    Printf.eprintf "sweepsim: %s\n" msg;
    1

let bench_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"WORKLOAD"
         ~doc:"Benchmark name (see --list in sweepcc, e.g. sha, dijkstra).")

let designs_arg =
  let parse s =
    match List.assoc_opt (String.lowercase_ascii s) design_assoc with
    | Some d -> Ok [ d ]
    | None -> Error (`Msg ("unknown design " ^ s))
  in
  let design_conv =
    Arg.conv (parse, fun fmt ds ->
        Format.pp_print_string fmt
          (String.concat "," (List.map H.design_name ds)))
  in
  Arg.(value & opt design_conv [ H.Sweep ]
       & info [ "d"; "design" ] ~docv:"DESIGN"
           ~doc:"Architecture: nvp, wt, nvsram, nvsram-e, replay, nvmr, sweep.")

let all_designs_arg =
  Arg.(value & flag
       & info [ "all-designs" ] ~doc:"Run every architecture model.")

let trace_arg =
  let trace_conv =
    Arg.conv
      ( (fun s ->
          match List.assoc_opt (String.lowercase_ascii s) trace_assoc with
          | Some t -> Ok (`Kind t)
          | None ->
            (* Anything that looks like a file is a CSV trace; anything
               else is a typo'd kind name. *)
            if Filename.check_suffix s ".csv" || Sys.file_exists s then
              Ok (`Csv s)
            else
              Error
                (`Msg
                  ("unknown trace " ^ s
                 ^ " (rfoffice, rfhome, solar, thermal, none, or a .csv \
                    file)"))),
        fun fmt t ->
          Format.pp_print_string fmt
            (match t with
            | `Kind (Some k) -> Trace.kind_name k
            | `Kind None -> "none"
            | `Csv p -> p) )
  in
  Arg.(value & opt trace_conv (`Kind (Some Trace.Rf_office))
       & info [ "t"; "power-trace" ] ~docv:"TRACE"
           ~doc:"Power trace: rfoffice, rfhome, solar, thermal, none \
                 (continuous power), or a CSV file saved by \
                 $(b,Power_trace.save_csv).")

let cap_arg =
  Arg.(value & opt float 470e-9
       & info [ "cap" ] ~docv:"FARADS" ~doc:"Capacitor size (farads).")

let volts_term =
  let v_max =
    Arg.(value & opt float 3.5
         & info [ "v-max" ] ~docv:"VOLTS"
             ~doc:"Capacitor voltage at which execution starts (Table 1: \
                   3.5 V).")
  in
  let v_min =
    Arg.(value & opt float 2.8
         & info [ "v-min" ] ~docv:"VOLTS"
             ~doc:"Brown-out voltage at which execution dies (Table 1: \
                   2.8 V).")
  in
  Term.(const (fun mx mn -> (mx, mn)) $ v_max $ v_min)

let scale_arg =
  Arg.(value & opt float 1.0
       & info [ "scale" ] ~docv:"S" ~doc:"Workload input scale factor.")

let cache_arg =
  Arg.(value & opt int 4096
       & info [ "cache-size" ] ~docv:"BYTES" ~doc:"Data-cache size in bytes.")

let assoc_arg =
  Arg.(value & opt int 2
       & info [ "assoc" ] ~docv:"WAYS" ~doc:"Data-cache associativity.")

let buffer_entries_arg =
  Arg.(value & opt int 64
       & info [ "buffer-entries" ] ~docv:"N"
           ~doc:"Persist-buffer capacity in entries.")

(* The four knobs of the fleet's per-device power perturbation.  The
   defaults are the identity transform; `sweepfleet report` prints these
   flags per tail device so the device replays exactly. *)
let jitter_term =
  let shift =
    Arg.(value & opt int 0
         & info [ "jitter-shift-steps" ] ~docv:"N"
             ~doc:"Rotate the power trace by N 100-microsecond steps \
                   before simulating (fleet device replay).")
  in
  let amp =
    Arg.(value & opt int 1000
         & info [ "jitter-amp-permille" ] ~docv:"N"
             ~doc:"Scale every power sample by N/1000 (1000 = unity).")
  in
  let drop =
    Arg.(value & opt int 0
         & info [ "jitter-drop-bp" ] ~docv:"N"
             ~doc:"Zero out N basis points (N/10000) of samples, chosen \
                   by --jitter-drop-seed.")
  in
  let seed =
    Arg.(value & opt int 0
         & info [ "jitter-drop-seed" ] ~docv:"N"
             ~doc:"Seed for the --jitter-drop-bp sample choice.")
  in
  Term.(const (fun a b c d -> (a, b, c, d)) $ shift $ amp $ drop $ seed)

let nvm_search_arg =
  Arg.(value & flag
       & info [ "nvm-search" ]
           ~doc:"Disable the empty-bit: always search the persist buffers.")

let verify_arg =
  Arg.(value & flag
       & info [ "verify" ]
           ~doc:"Check the final NVM image against the reference \
                 interpreter.  Exits 1 if any design is INCONSISTENT.")

let jobs_arg =
  Arg.(value & opt int 1
       & info [ "j"; "jobs" ] ~docv:"N"
           ~doc:"Run the selected designs on N worker domains.")

let results_dir_arg =
  Arg.(value & opt (some string) None
       & info [ "results-dir" ] ~docv:"DIR"
           ~doc:"Append one JSON line per design run to DIR/sweepsim.jsonl.")

let trace_out_arg =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:"Write a Chrome trace-event / Perfetto JSON timeline of the \
                 run to FILE (open it at ui.perfetto.dev).  Forces -j 1.")

let trace_format_arg =
  let fmt_conv =
    Arg.conv
      ( (fun s ->
          match String.lowercase_ascii s with
          | "chrome" | "perfetto" -> Ok `Chrome
          | "jsonl" -> Ok `Jsonl
          | _ -> Error (`Msg ("unknown trace format " ^ s))),
        fun fmt f ->
          Format.pp_print_string fmt
            (match f with `Chrome -> "chrome" | `Jsonl -> "jsonl") )
  in
  Arg.(value & opt fmt_conv `Chrome
       & info [ "trace-format" ] ~docv:"FMT"
           ~doc:"Trace file format: $(b,chrome) (Perfetto timeline) or \
                 $(b,jsonl) (raw event log, the input of sweeptrace).")

let trace_cap_arg =
  Arg.(value & opt int 0
       & info [ "trace-cap" ] ~docv:"N"
           ~doc:"Keep only the last N trace events (0 = unbounded).  A \
                 truncated trace starts with a dropped-events marker and \
                 the run summary reports the dropped count.")

let trace_filter_arg =
  Arg.(value & opt (some string) None
       & info [ "trace-filter" ] ~docv:"CATS"
           ~doc:"Comma-separated event categories to keep in the trace: \
                 region, buffer, cache, power, exec, job.  Default: all.")

let metrics_arg =
  Arg.(value & flag
       & info [ "metrics" ]
           ~doc:"Enable the metrics registry and print it after the table \
                 (counters labelled by design and bench).")

let metrics_out_arg =
  Arg.(value & opt (some string) None
       & info [ "metrics-out" ] ~docv:"FILE"
           ~doc:"Enable the metrics registry and write a JSON snapshot to \
                 FILE after the run (readable by sweeptrace).")

let fault_arg =
  Arg.(value & opt (some int) None
       & info [ "fault" ] ~docv:"N"
           ~doc:"Inject an adversarial power failure after the N-th \
                 dynamic instruction (on top of whatever the power trace \
                 does).  The crash shows up as a fault event in --trace \
                 output and in sweeptrace report.")

let fault_nested_arg =
  Arg.(value & opt int 0
       & info [ "fault-nested" ] ~docv:"K"
           ~doc:"With --fault: re-crash K times during recovery itself \
                 (nested-crash coverage).")

let heartbeat_every_arg =
  Arg.(value & opt (some int) None
       & info [ "heartbeat-every" ] ~docv:"N"
           ~doc:"Emit an in-run heartbeat event every N simulated \
                 instructions (visible in --trace output; default: \
                 1000000 when --metrics-export is given, otherwise \
                 disabled; 0 disables).")

let metrics_export_arg =
  Arg.(value & opt (some string) None
       & info [ "metrics-export" ] ~docv:"FILE"
           ~doc:"Enable the metrics registry and periodically re-export \
                 it to FILE in OpenMetrics (Prometheus text) format \
                 (refreshed on every heartbeat, final flush at exit).")

let profile_arg =
  Arg.(value & flag
       & info [ "profile" ]
           ~doc:"Print a one-shot hot-loop profile per run to stderr: wall \
                 time, simulated-instruction throughput, and GC pressure \
                 (minor/major words and collections).")

let attrib_arg =
  Arg.(value & opt (some string) None
       & info [ "attrib" ] ~docv:"FILE"
           ~doc:"Arm per-PC attribution and write the schema-versioned \
                 profile table (simulated time, energy split, NVM wear, \
                 cache misses, stalls, re-executed vs. forward work per \
                 program counter) to FILE as JSON.  Requires a single \
                 design.  Analyze with $(b,sweeptrace profile).")

let attrib_folded_arg =
  Arg.(value & opt (some string) None
       & info [ "attrib-folded" ] ~docv:"FILE"
           ~doc:"With or without --attrib: write Brendan Gregg collapsed \
                 stacks (func;label+off;op weight, weighted by simulated \
                 ns) to FILE for flamegraph tooling.")

let cmd =
  let doc = "simulate a workload on an intermittent-computing architecture" in
  let term =
    Term.(
      const (fun bench design all trace cap volts scale cache assoc
                 buffer_entries jitter nvm_search verify j results_dir
                 trace_out trace_format trace_cap trace_filter metrics
                 metrics_out fault fault_nested profile heartbeat_every
                 metrics_export attrib_out attrib_folded ->
          let designs = if all then H.all_designs else design in
          main bench designs trace cap volts scale cache assoc buffer_entries
            jitter nvm_search verify j results_dir trace_out trace_format
            trace_cap trace_filter metrics metrics_out fault fault_nested
            profile heartbeat_every metrics_export attrib_out attrib_folded)
      $ bench_arg $ designs_arg $ all_designs_arg $ trace_arg $ cap_arg
      $ volts_term $ scale_arg $ cache_arg $ assoc_arg $ buffer_entries_arg
      $ jitter_term $ nvm_search_arg $ verify_arg $ jobs_arg
      $ results_dir_arg $ trace_out_arg $ trace_format_arg $ trace_cap_arg
      $ trace_filter_arg $ metrics_arg $ metrics_out_arg $ fault_arg
      $ fault_nested_arg $ profile_arg $ heartbeat_every_arg
      $ metrics_export_arg $ attrib_arg $ attrib_folded_arg)
  in
  Cmd.v (Cmd.info "sweepsim" ~doc) term

let () = exit (Cmd.eval' cmd)
