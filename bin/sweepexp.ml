(* sweepexp: regenerate the paper's tables and figures through the
   declarative job/executor layer.

     dune exec bin/sweepexp.exe                      # everything
     dune exec bin/sweepexp.exe -- quick             # skip heavy sweeps
     dune exec bin/sweepexp.exe -- fig5 tab2 -j 8    # selected, 8 workers
     dune exec bin/sweepexp.exe -- list              # available ids

   Experiments are planned first: the union of the selected experiments'
   job matrices is deduplicated and batch-executed on a domain pool
   (-j N, default the machine's recommended domain count), then each
   table renders from the shared results store — so output is
   byte-identical at any -j.  Every executed job also appends one JSON
   line to <results-dir>/<experiment>.jsonl. *)

open Cmdliner
module Experiments = Sweep_exp.Experiments
module Executor = Sweep_exp.Executor
module Results = Sweep_exp.Results
module Supervisor = Sweep_exp.Supervisor
module Rcache = Sweep_exp.Rcache
module Exit_code = Sweep_exp.Exit_code

let list_experiments () =
  List.iter
    (fun e ->
      Printf.printf "%-10s %s%s\n" e.Experiments.name e.Experiments.title
        (if e.Experiments.heavy then " [heavy]" else ""))
    Experiments.all

(* --list: the planning phase without the execution phase — every job
   key the selected experiments would schedule, after dedup, with the
   experiment that owns it.  sweeptune's `plan` command is the same idea
   for synthesized design points. *)
let list_keys experiments =
  List.iter
    (fun (exp, key) -> Printf.printf "%-10s %s\n" exp key)
    (Experiments.keys experiments);
  Printf.printf "%d job(s) after dedup\n" (List.length (Experiments.plan experiments))

let report_cache rc =
  let s = Rcache.stats rc in
  Printf.eprintf "result cache: %d hit(s), %d miss(es), %d evicted, %d corrupt\n%!"
    s.Rcache.hits s.Rcache.misses s.Rcache.evictions s.Rcache.corrupt

let main names j results_dir no_jsonl metrics metrics_out progress list_only
    status_file metrics_export flight_dir heartbeat_every attrib_dir workers
    retries worker_timeout respawn_budget supervise_seed chaos_kill_after
    cache_dir cache_max_bytes =
  try
  if j < 1 then begin
    Printf.eprintf "sweepexp: -j must be at least 1 (got %d)\n" j;
    exit Exit_code.usage
  end;
  if workers < 0 then begin
    Printf.eprintf "sweepexp: --workers must be >= 0 (got %d)\n" workers;
    exit Exit_code.usage
  end;
  Executor.set_workers j;
  if metrics || Option.is_some metrics_out || Option.is_some metrics_export
  then Sweep_obs.Metrics.set_enabled true;
  Results.set_dir (if no_jsonl then None else Some results_dir);
  (* Live telemetry: heartbeats default on as soon as something consumes
     them (a status file or a metrics exporter), off otherwise so plain
     runs keep the zero-telemetry hot loop. *)
  let status =
    Option.map
      (fun path -> Sweep_exp.Status.create ~path ~workers:j ())
      status_file
  in
  let export =
    Option.map
      (fun path -> Sweep_obs.Openmetrics.exporter ~path ())
      metrics_export
  in
  let flight = Option.map (fun dir -> Sweep_obs.Flight.arm ~dir ()) flight_dir in
  let heartbeat_every =
    match heartbeat_every with
    | Some n -> n
    | None ->
      if status <> None || export <> None then
        Sweep_obs.Heartbeat.default_every
      else 0
  in
  let rcache =
    Option.map
      (fun dir -> Rcache.create ?max_bytes:cache_max_bytes dir)
      cache_dir
  in
  let distribute =
    if workers = 0 then None
    else
      Some
        (Supervisor.policy ~retries ~worker_timeout_s:worker_timeout
           ~respawn_budget ~seed:supervise_seed ?chaos_kill_after ~workers ())
  in
  let config =
    Executor.config ~progress ~heartbeat_every ?status ?flight ?export
      ?attrib_dir ?rcache ?distribute ()
  in
  let dump_metrics () =
    Option.iter Sweep_obs.Openmetrics.flush export;
    match metrics_out with
    | None -> ()
    | Some path ->
      Sweep_obs.Metrics.write_json path (Sweep_obs.Metrics.snapshot ());
      Printf.eprintf "metrics snapshot written to %s\n" path
  in
  match names with
  | [ "list" ] ->
    list_experiments ();
    0
  | names -> (
    let selection =
      match names with
      | [] ->
        if not list_only then
          Printf.printf
            "SweepCache reproduction — regenerating all tables/figures (-j %d)\n\n"
            (Executor.workers ());
        Ok (Experiments.all)
      | [ "quick" ] ->
        if not list_only then
          Printf.printf
            "SweepCache reproduction — quick set (heavy sweeps skipped, -j %d)\n\n"
            (Executor.workers ());
        Ok (List.filter (fun e -> not e.Experiments.heavy) Experiments.all)
      | names ->
        let unknown =
          List.filter (fun n -> Experiments.find n = None) names
        in
        if unknown <> [] then Error unknown
        else
          Ok
            (List.map
               (fun n -> Option.get (Experiments.find n))
               names)
    in
    match selection with
    | Error unknown ->
      List.iter
        (fun n -> Printf.eprintf "unknown experiment %S (try: list)\n" n)
        unknown;
      Exit_code.usage
    | Ok experiments when list_only ->
      list_keys experiments;
      0
    | Ok experiments ->
      Experiments.run_many ~config experiments;
      Supervisor.shutdown ();
      if metrics then begin
        print_newline ();
        print_string
          (Sweep_obs.Metrics.render (Sweep_obs.Metrics.snapshot ()))
      end;
      dump_metrics ();
      Option.iter report_cache rcache;
      let sup = Supervisor.stats () in
      if sup.Supervisor.degraded then
        Printf.eprintf
          "sweepexp: degraded completion — respawn budget exhausted, \
           finished on surviving workers\n";
      let failures = Results.failures () in
      if failures <> [] then begin
        Printf.eprintf "\n%d job(s) failed:\n" (List.length failures);
        List.iter
          (fun f ->
            Printf.eprintf "  %s: %s\n" f.Results.key f.Results.error)
          failures
      end;
      Exit_code.of_run ~degraded:sup.Supervisor.degraded
        ~failures:(List.length failures))
  with Sys_error msg ->
    (* Unwritable --results-dir / --metrics-out: one line, exit 1. *)
    Printf.eprintf "sweepexp: %s\n" msg;
    1

let names_arg =
  Arg.(value & pos_all string []
       & info [] ~docv:"EXPERIMENT"
           ~doc:"Experiment ids (see $(b,list)); $(b,quick) for the \
                 non-heavy set; empty for everything.")

let jobs_arg =
  Arg.(value & opt int (Domain.recommended_domain_count ())
       & info [ "j"; "jobs" ] ~docv:"N"
           ~doc:"Worker domains for the batch-execute phase (default: \
                 the machine's recommended domain count; 1 = sequential).")

let results_dir_arg =
  Arg.(value & opt string "results"
       & info [ "results-dir" ] ~docv:"DIR"
           ~doc:"Directory receiving one <experiment>.jsonl per \
                 experiment (one JSON line per executed job).")

let no_jsonl_arg =
  Arg.(value & flag
       & info [ "no-jsonl" ] ~doc:"Disable the JSONL results sink.")

let metrics_arg =
  Arg.(value & flag
       & info [ "metrics" ]
           ~doc:"Enable the metrics registry (sim.*, driver.*, exp.* \
                 series) and dump it after the run.")

let metrics_out_arg =
  Arg.(value & opt (some string) None
       & info [ "metrics-out" ] ~docv:"FILE"
           ~doc:"Enable the metrics registry and write a JSON snapshot to \
                 FILE after the run (readable by sweeptrace).")

let progress_arg =
  Arg.(value & flag
       & info [ "progress" ]
           ~doc:"Print a [k/n] line to stderr as each job finishes.")

let list_arg =
  Arg.(value & flag
       & info [ "list" ]
           ~doc:"Plan only: print every deduplicated job key the selected \
                 experiments would execute (with the owning experiment) \
                 and exit without running anything.")

let status_file_arg =
  Arg.(value & opt (some string) None
       & info [ "status-file" ] ~docv:"FILE"
           ~doc:"Maintain an atomically-updated live status snapshot \
                 (queued/running/done/failed, per-job progress, ETA) at \
                 FILE while the run executes; enables heartbeats.")

let metrics_export_arg =
  Arg.(value & opt (some string) None
       & info [ "metrics-export" ] ~docv:"FILE"
           ~doc:"Enable the metrics registry and periodically re-export \
                 it to FILE in OpenMetrics (Prometheus text) format; \
                 enables heartbeats.")

let flight_dir_arg =
  Arg.(value & opt (some string) None
       & info [ "flight-dir" ] ~docv:"DIR"
           ~doc:"Arm the crash flight recorder: every captured job \
                 failure dumps a postmortem-*.jsonl artifact (recent \
                 events + metrics snapshot) into DIR, readable by \
                 $(b,sweeptrace postmortem).")

let heartbeat_every_arg =
  Arg.(value & opt (some int) None
       & info [ "heartbeat-every" ] ~docv:"N"
           ~doc:"Emit an in-run heartbeat every N simulated instructions \
                 (default: 1000000 when --status-file or \
                 --metrics-export is given, otherwise disabled; 0 \
                 disables).")

let attrib_dir_arg =
  Arg.(value & opt (some string) None
       & info [ "attrib-dir" ] ~docv:"DIR"
           ~doc:"Arm per-PC attribution for every executed job and write \
                 DIR/<job key>.attrib.json (+ .folded collapsed stacks) \
                 per job.  Profiles are byte-identical at any -j; \
                 analyze with $(b,sweeptrace profile).")

let workers_arg =
  Arg.(value & opt int 0
       & info [ "workers" ] ~docv:"N"
           ~doc:"Run jobs on N supervised worker $(i,processes) (the \
                 binary re-execs itself) instead of in-process domains: \
                 dead or hung workers are respawned with seeded backoff, \
                 in-flight jobs retry up to --retries times before \
                 quarantine, and results are byte-identical to \
                 $(b,--workers 0) (the default, in-process -j mode).")

let retries_arg =
  Arg.(value & opt int 2
       & info [ "retries" ] ~docv:"K"
           ~doc:"Extra attempts for a job whose worker died before \
                 quarantining it as a structured failure (supervised \
                 mode only).")

let worker_timeout_arg =
  Arg.(value & opt float 60.0
       & info [ "worker-timeout" ] ~docv:"SECONDS"
           ~doc:"SIGKILL a busy worker that has been silent (no \
                 heartbeat, no result) this long; 0 disables the \
                 liveness check (supervised mode only).")

let respawn_budget_arg =
  Arg.(value & opt int 8
       & info [ "respawn-budget" ] ~docv:"N"
           ~doc:"Total worker respawns allowed for the run; once \
                 exhausted the sweep finishes degraded on surviving \
                 workers (exit code 2).")

let supervise_seed_arg =
  Arg.(value & opt int 42
       & info [ "supervise-seed" ] ~docv:"SEED"
           ~doc:"Seed for the respawn backoff jitter and the chaos \
                 victim chooser (deterministic schedules).")

let chaos_kill_after_arg =
  Arg.(value & opt (some int) None
       & info [ "chaos-kill-after" ] ~docv:"N"
           ~doc:"Fault injection for tests: SIGKILL one seeded-chosen \
                 worker after N completed jobs (supervised mode only).")

let cache_dir_arg =
  Arg.(value & opt (some string) None
       & info [ "cache-dir" ] ~docv:"DIR"
           ~doc:"Persistent content-addressed result cache: jobs whose \
                 (key, config digest) is already cached skip simulation; \
                 executed jobs are stored back.  Entries are checksummed \
                 — corrupt or truncated ones are warned about and \
                 re-simulated, never served.")

let cache_max_bytes_arg =
  Arg.(value & opt (some int) None
       & info [ "cache-max-bytes" ] ~docv:"BYTES"
           ~doc:"Result-cache size bound; least-recently-used entries \
                 are evicted past it (default 268435456).")

(* ---------------- cache maintenance ---------------- *)

(* Offline maintenance of a --cache-dir: `cache stats` is a read-only
   stat pass, `cache purge` deletes every entry (the directory stays,
   and entries mid-write by a concurrent run survive). *)
let cache_action action dir =
  try
    let rc = Rcache.create dir in
    (match action with
    | `Stats ->
      let entries, bytes = Rcache.disk_stats rc in
      Printf.printf "%s: %d cached result(s), %d bytes\n" dir entries bytes
    | `Purge ->
      let entries, bytes = Rcache.purge rc in
      Printf.printf "%s: purged %d cached result(s), %d bytes\n" dir entries
        bytes);
    0
  with Sys_error msg ->
    Printf.eprintf "sweepexp: %s\n" msg;
    1

let cache_dir_pos =
  Arg.(required & pos 0 (some string) None
       & info [] ~docv:"DIR"
           ~doc:"Result-cache directory (what runs were given as \
                 $(b,--cache-dir)).")

let cache_cmd =
  let stats_cmd =
    Cmd.v
      (Cmd.info "stats" ~doc:"print entry count and on-disk size")
      Term.(const (cache_action `Stats) $ cache_dir_pos)
  in
  let purge_cmd =
    Cmd.v
      (Cmd.info "purge" ~doc:"delete every cached result")
      Term.(const (cache_action `Purge) $ cache_dir_pos)
  in
  Cmd.group
    (Cmd.info "cache" ~doc:"inspect or clear a persistent result cache")
    [ stats_cmd; purge_cmd ]

let doc = "regenerate the paper's tables and figures"

let cmd =
  let term =
    Term.(const main $ names_arg $ jobs_arg $ results_dir_arg $ no_jsonl_arg
          $ metrics_arg $ metrics_out_arg $ progress_arg $ list_arg
          $ status_file_arg $ metrics_export_arg $ flight_dir_arg
          $ heartbeat_every_arg $ attrib_dir_arg $ workers_arg $ retries_arg
          $ worker_timeout_arg $ respawn_budget_arg $ supervise_seed_arg
          $ chaos_kill_after_arg $ cache_dir_arg $ cache_max_bytes_arg)
  in
  Cmd.v (Cmd.info "sweepexp" ~doc) term

(* Positional arguments are experiment ids ("sweepexp tab1 fig5"), so
   `cache` can't be a cmdliner subcommand of the same group — it is
   dispatched on argv before cmdliner sees anything, like worker mode. *)
let cache_root = Cmd.group (Cmd.info "sweepexp" ~doc) [ cache_cmd ]

(* Hidden worker mode: when the supervisor re-execs this binary, hand
   the process to the frame loop before cmdliner ever sees argv. *)
let () =
  if Array.length Sys.argv > 1 && Sys.argv.(1) = Sweep_exp.Worker.argv_flag
  then exit (Sweep_exp.Worker.main ())
  else if Array.length Sys.argv > 1 && Sys.argv.(1) = "cache" then
    exit (Cmd.eval' cache_root)
  else exit (Cmd.eval' cmd)
