(* sweepexp: regenerate the paper's tables and figures through the
   declarative job/executor layer.

     dune exec bin/sweepexp.exe                      # everything
     dune exec bin/sweepexp.exe -- quick             # skip heavy sweeps
     dune exec bin/sweepexp.exe -- fig5 tab2 -j 8    # selected, 8 workers
     dune exec bin/sweepexp.exe -- list              # available ids

   Experiments are planned first: the union of the selected experiments'
   job matrices is deduplicated and batch-executed on a domain pool
   (-j N, default the machine's recommended domain count), then each
   table renders from the shared results store — so output is
   byte-identical at any -j.  Every executed job also appends one JSON
   line to <results-dir>/<experiment>.jsonl. *)

open Cmdliner
module Experiments = Sweep_exp.Experiments
module Executor = Sweep_exp.Executor
module Results = Sweep_exp.Results

let list_experiments () =
  List.iter
    (fun e ->
      Printf.printf "%-10s %s%s\n" e.Experiments.name e.Experiments.title
        (if e.Experiments.heavy then " [heavy]" else ""))
    Experiments.all

(* --list: the planning phase without the execution phase — every job
   key the selected experiments would schedule, after dedup, with the
   experiment that owns it.  sweeptune's `plan` command is the same idea
   for synthesized design points. *)
let list_keys experiments =
  List.iter
    (fun (exp, key) -> Printf.printf "%-10s %s\n" exp key)
    (Experiments.keys experiments);
  Printf.printf "%d job(s) after dedup\n" (List.length (Experiments.plan experiments))

let main names j results_dir no_jsonl metrics metrics_out progress list_only
    status_file metrics_export flight_dir heartbeat_every attrib_dir =
  try
  if j < 1 then begin
    Printf.eprintf "sweepexp: -j must be at least 1 (got %d)\n" j;
    exit 1
  end;
  Executor.set_workers j;
  if metrics || Option.is_some metrics_out || Option.is_some metrics_export
  then Sweep_obs.Metrics.set_enabled true;
  Results.set_dir (if no_jsonl then None else Some results_dir);
  (* Live telemetry: heartbeats default on as soon as something consumes
     them (a status file or a metrics exporter), off otherwise so plain
     runs keep the zero-telemetry hot loop. *)
  let status =
    Option.map
      (fun path -> Sweep_exp.Status.create ~path ~workers:j ())
      status_file
  in
  let export =
    Option.map
      (fun path -> Sweep_obs.Openmetrics.exporter ~path ())
      metrics_export
  in
  let flight = Option.map (fun dir -> Sweep_obs.Flight.arm ~dir ()) flight_dir in
  let heartbeat_every =
    match heartbeat_every with
    | Some n -> n
    | None ->
      if status <> None || export <> None then
        Sweep_obs.Heartbeat.default_every
      else 0
  in
  let config =
    Executor.config ~progress ~heartbeat_every ?status ?flight ?export
      ?attrib_dir ()
  in
  let dump_metrics () =
    Option.iter Sweep_obs.Openmetrics.flush export;
    match metrics_out with
    | None -> ()
    | Some path ->
      Sweep_obs.Metrics.write_json path (Sweep_obs.Metrics.snapshot ());
      Printf.eprintf "metrics snapshot written to %s\n" path
  in
  match names with
  | [ "list" ] ->
    list_experiments ();
    0
  | names -> (
    let selection =
      match names with
      | [] ->
        if not list_only then
          Printf.printf
            "SweepCache reproduction — regenerating all tables/figures (-j %d)\n\n"
            (Executor.workers ());
        Ok (Experiments.all)
      | [ "quick" ] ->
        if not list_only then
          Printf.printf
            "SweepCache reproduction — quick set (heavy sweeps skipped, -j %d)\n\n"
            (Executor.workers ());
        Ok (List.filter (fun e -> not e.Experiments.heavy) Experiments.all)
      | names ->
        let unknown =
          List.filter (fun n -> Experiments.find n = None) names
        in
        if unknown <> [] then Error unknown
        else
          Ok
            (List.map
               (fun n -> Option.get (Experiments.find n))
               names)
    in
    match selection with
    | Error unknown ->
      List.iter
        (fun n -> Printf.eprintf "unknown experiment %S (try: list)\n" n)
        unknown;
      2
    | Ok experiments when list_only ->
      list_keys experiments;
      0
    | Ok experiments ->
      Experiments.run_many ~config experiments;
      if metrics then begin
        print_newline ();
        print_string
          (Sweep_obs.Metrics.render (Sweep_obs.Metrics.snapshot ()))
      end;
      dump_metrics ();
      (match Results.failures () with
      | [] -> 0
      | failures ->
        Printf.eprintf "\n%d job(s) failed:\n" (List.length failures);
        List.iter
          (fun f ->
            Printf.eprintf "  %s: %s\n" f.Results.key f.Results.error)
          failures;
        1))
  with Sys_error msg ->
    (* Unwritable --results-dir / --metrics-out: one line, exit 1. *)
    Printf.eprintf "sweepexp: %s\n" msg;
    1

let names_arg =
  Arg.(value & pos_all string []
       & info [] ~docv:"EXPERIMENT"
           ~doc:"Experiment ids (see $(b,list)); $(b,quick) for the \
                 non-heavy set; empty for everything.")

let jobs_arg =
  Arg.(value & opt int (Domain.recommended_domain_count ())
       & info [ "j"; "jobs" ] ~docv:"N"
           ~doc:"Worker domains for the batch-execute phase (default: \
                 the machine's recommended domain count; 1 = sequential).")

let results_dir_arg =
  Arg.(value & opt string "results"
       & info [ "results-dir" ] ~docv:"DIR"
           ~doc:"Directory receiving one <experiment>.jsonl per \
                 experiment (one JSON line per executed job).")

let no_jsonl_arg =
  Arg.(value & flag
       & info [ "no-jsonl" ] ~doc:"Disable the JSONL results sink.")

let metrics_arg =
  Arg.(value & flag
       & info [ "metrics" ]
           ~doc:"Enable the metrics registry (sim.*, driver.*, exp.* \
                 series) and dump it after the run.")

let metrics_out_arg =
  Arg.(value & opt (some string) None
       & info [ "metrics-out" ] ~docv:"FILE"
           ~doc:"Enable the metrics registry and write a JSON snapshot to \
                 FILE after the run (readable by sweeptrace).")

let progress_arg =
  Arg.(value & flag
       & info [ "progress" ]
           ~doc:"Print a [k/n] line to stderr as each job finishes.")

let list_arg =
  Arg.(value & flag
       & info [ "list" ]
           ~doc:"Plan only: print every deduplicated job key the selected \
                 experiments would execute (with the owning experiment) \
                 and exit without running anything.")

let status_file_arg =
  Arg.(value & opt (some string) None
       & info [ "status-file" ] ~docv:"FILE"
           ~doc:"Maintain an atomically-updated live status snapshot \
                 (queued/running/done/failed, per-job progress, ETA) at \
                 FILE while the run executes; enables heartbeats.")

let metrics_export_arg =
  Arg.(value & opt (some string) None
       & info [ "metrics-export" ] ~docv:"FILE"
           ~doc:"Enable the metrics registry and periodically re-export \
                 it to FILE in OpenMetrics (Prometheus text) format; \
                 enables heartbeats.")

let flight_dir_arg =
  Arg.(value & opt (some string) None
       & info [ "flight-dir" ] ~docv:"DIR"
           ~doc:"Arm the crash flight recorder: every captured job \
                 failure dumps a postmortem-*.jsonl artifact (recent \
                 events + metrics snapshot) into DIR, readable by \
                 $(b,sweeptrace postmortem).")

let heartbeat_every_arg =
  Arg.(value & opt (some int) None
       & info [ "heartbeat-every" ] ~docv:"N"
           ~doc:"Emit an in-run heartbeat every N simulated instructions \
                 (default: 1000000 when --status-file or \
                 --metrics-export is given, otherwise disabled; 0 \
                 disables).")

let attrib_dir_arg =
  Arg.(value & opt (some string) None
       & info [ "attrib-dir" ] ~docv:"DIR"
           ~doc:"Arm per-PC attribution for every executed job and write \
                 DIR/<job key>.attrib.json (+ .folded collapsed stacks) \
                 per job.  Profiles are byte-identical at any -j; \
                 analyze with $(b,sweeptrace profile).")

let cmd =
  let doc = "regenerate the SweepCache paper's tables and figures" in
  let term =
    Term.(const main $ names_arg $ jobs_arg $ results_dir_arg $ no_jsonl_arg
          $ metrics_arg $ metrics_out_arg $ progress_arg $ list_arg
          $ status_file_arg $ metrics_export_arg $ flight_dir_arg
          $ heartbeat_every_arg $ attrib_dir_arg)
  in
  Cmd.v (Cmd.info "sweepexp" ~doc) term

let () = exit (Cmd.eval' cmd)
