(* sweepcheck: differential crash-consistency validation (§4.2).

     dune exec bin/sweepcheck.exe -- sweep                 # 9-job matrix, all designs
     dune exec bin/sweepcheck.exe -- sweep --stride 40 -j 4
     dune exec bin/sweepcheck.exe -- sweep --designs sweep,nvsram --mutate skip-restore
     dune exec bin/sweepcheck.exe -- fuzz --seed 7 --count 25 -o shrunk.txt

   [sweep] places crashes (exhaustively or strided) across every
   instruction of every (design, workload) cell, plus targeted points
   inside phase-2 flush and phase-3 DMA windows and nested
   crash-during-recovery points, and checks each recovered run against
   the golden-execution oracle.  Exit 1 on any divergence.

   [--mutate] deliberately breaks one recovery invariant so the sweep
   MUST go red — a true-positive check proving the checker is not
   silently green.  With a mutation the exit code is inverted: finding
   divergences is the pass.

   [fuzz] runs seeded random programs through the same checker and
   shrinks any failing case to a minimal program + crash point. *)

open Cmdliner
module Check = Sweep_check.Check
module Progen = Sweep_check.Progen
module H = Sweep_sim.Harness
module FM = Sweep_machine.Fault_model

let design_of_string s =
  let s = String.lowercase_ascii s in
  match s with
  | "nvp" -> Some H.Nvp
  | "wt" | "wt-vcache" -> Some H.Wt
  | "nvsram" -> Some H.Nvsram
  | "nvsram-e" | "nvsrame" -> Some H.Nvsram_e
  | "replay" | "replaycache" -> Some H.Replay
  | "nvmr" -> Some H.Nvmr
  | "sweep" | "sweepcache" -> Some H.Sweep
  | _ -> None

let mutate_of_string = function
  | "skip-restore" -> Some { FM.none with FM.skip_restore = true }
  | "stuck-phase1" -> Some { FM.none with FM.stuck_phase1 = true }
  | "stuck-phase2" -> Some { FM.none with FM.stuck_phase2 = true }
  | _ -> None

let die fmt =
  Printf.ksprintf
    (fun msg ->
      prerr_endline ("sweepcheck: " ^ msg);
      exit 1)
    fmt

let print_report ~label (r : Check.report) =
  Printf.printf
    "%s: %d cells, %d crash points (%d crashes incl. nested, %d never \
     fired), %d oracle boundaries\n"
    label r.Check.cells r.Check.points r.Check.crashes r.Check.skipped
    r.Check.oracle_boundaries;
  List.iter
    (fun d -> Printf.printf "  DIVERGENCE %s\n" (Check.pp_divergence d))
    (List.rev r.Check.divergences)

(* ----------------------------- sweep ------------------------------ *)

let sweep designs all_designs benches stride max_points nested_every no_torn
    mutate workers =
  let designs =
    if all_designs || designs = [] then H.all_designs
    else
      List.map
        (fun s ->
          match design_of_string s with
          | Some d -> d
          | None -> die "unknown design %S (try: %s)" s
                      (String.concat ", "
                         (List.map H.design_name H.all_designs)))
        designs
  in
  let benches =
    match benches with
    | [] -> Check.default_plan.Check.benches
    | l ->
      List.map
        (fun s ->
          match String.split_on_char '@' s with
          | [ b ] -> (b, 0.16)
          | [ b; sc ] -> (
            match float_of_string_opt sc with
            | Some sc when sc > 0.0 -> (b, sc)
            | _ -> die "bad scale in %S (want bench@scale)" s)
          | _ -> die "bad bench spec %S (want bench or bench@scale)" s)
        l
  in
  List.iter
    (fun (b, _) ->
      try ignore (Check.ast_of_bench ~bench:b ~scale:1.0)
      with Not_found -> die "unknown workload %S" b)
    benches;
  let mutation =
    match mutate with
    | None -> None
    | Some m -> (
      match mutate_of_string m with
      | Some fm -> Some fm
      | None ->
        die "unknown mutation %S (skip-restore | stuck-phase1 | stuck-phase2)"
          m)
  in
  let fm =
    match mutation with
    | Some m -> if no_torn then m else { m with FM.torn_dma = true }
    | None -> { FM.none with FM.torn_dma = not no_torn }
  in
  let plan =
    {
      Check.default_plan with
      Check.designs;
      benches;
      stride;
      max_points;
      nested_every;
      fm;
      workers;
    }
  in
  Printf.printf
    "crash sweep: %d designs x %d workloads, fault model [%s]%s\n%!"
    (List.length designs) (List.length benches) (FM.to_string fm)
    (if mutation <> None then "  (mutation active: expecting divergences)"
     else "");
  let report =
    Check.run_plan ~progress:(fun s -> Printf.printf "  checking %s\n%!" s) plan
  in
  print_report ~label:"sweep" report;
  match mutation with
  | None ->
    if Check.ok report then begin
      print_endline "PASS: every crashed run converged to the oracle";
      0
    end
    else begin
      print_endline "FAIL: state divergence(s) detected";
      1
    end
  | Some _ ->
    if Check.ok report then begin
      print_endline
        "FAIL: mutation went undetected — the checker is silently green";
      1
    end
    else begin
      print_endline "PASS: mutation detected (checker is live)";
      0
    end

(* ------------------------------ fuzz ------------------------------ *)

let fuzz seed count max_points nested_every out =
  let failing = ref None in
  (try
     for i = 0 to count - 1 do
       let s = seed + i in
       let ast = Progen.generate ~seed:s in
       Printf.printf "fuzz seed %d ...%!" s;
       let r = Check.check_program ~max_points ~nested_every ast in
       Printf.printf " %d points, %d crashes%s\n%!" r.Check.points
         r.Check.crashes
         (if Check.ok r then "" else " — FAILING");
       if not (Check.ok r) then begin
         failing := Some (s, ast, r);
         raise Exit
       end
     done
   with Exit -> ());
  match !failing with
  | None ->
    Printf.printf "fuzz: %d programs checked, no divergence\n" count;
    0
  | Some (s, ast, r) ->
    print_report ~label:(Printf.sprintf "fuzz seed %d" s) r;
    Printf.printf "shrinking seed %d ...\n%!" s;
    let still_failing p =
      match Check.check_program ~max_points ~nested_every p with
      | r -> not (Check.ok r)
      | exception _ -> false
    in
    let small = Progen.shrink ~still_failing ast in
    let final = Check.check_program ~max_points ~nested_every small in
    let doc =
      Printf.sprintf
        "sweepcheck fuzz failure\nseed: %d\n\ndivergences:\n%s\n\nprogram \
         (shrunk):\n%s"
        s
        (String.concat "\n"
           (List.map Check.pp_divergence final.Check.divergences))
        (Progen.render small)
    in
    (match out with
    | None -> print_string doc
    | Some path ->
      Out_channel.with_open_text path (fun oc -> output_string oc doc);
      Printf.printf "shrunk failing case written to %s\n" path);
    1

(* ---------------------------- cmdliner ---------------------------- *)

let designs_arg =
  Arg.(value & opt (list string) [] & info [ "designs" ] ~docv:"D1,D2"
         ~doc:"Designs to sweep (default: all).")

let all_designs_arg =
  Arg.(value & flag & info [ "all-designs" ] ~doc:"Sweep all designs.")

let benches_arg =
  Arg.(value & opt (list string) [] & info [ "benches" ] ~docv:"B[@S],..."
         ~doc:"Workloads as name or name\\@scale (default: the 9-job \
               sha/dijkstra/fft matrix).")

let stride_arg =
  Arg.(value & opt int 0 & info [ "stride" ] ~docv:"N"
         ~doc:"Crash every N-th instruction; 0 derives the stride from \
               $(b,--max-points).  1 is exhaustive.")

let max_points_arg =
  Arg.(value & opt int 24 & info [ "max-points" ] ~docv:"N"
         ~doc:"Strided crash points per (design, workload) cell.")

let nested_arg =
  Arg.(value & opt int 5 & info [ "nested" ] ~docv:"K"
         ~doc:"Every K-th point also re-crashes during recovery; 0 \
               disables nested crashes.")

let no_torn_arg =
  Arg.(value & flag & info [ "no-torn" ]
         ~doc:"Disable the torn-DMA fault model (partial line writes at \
               the crash).")

let mutate_arg =
  Arg.(value & opt (some string) None & info [ "mutate" ] ~docv:"M"
         ~doc:"Deliberately break one recovery invariant \
               (skip-restore | stuck-phase1 | stuck-phase2); the sweep \
               must then detect divergences or exit 1.")

let workers_arg =
  Arg.(value & opt int 1 & info [ "j"; "workers" ] ~docv:"N"
         ~doc:"Worker domains for the crash points of each cell.")

let sweep_cmd =
  let doc = "strided/exhaustive crash placement over the workload matrix" in
  Cmd.v (Cmd.info "sweep" ~doc)
    Term.(const sweep $ designs_arg $ all_designs_arg $ benches_arg
          $ stride_arg $ max_points_arg $ nested_arg $ no_torn_arg
          $ mutate_arg $ workers_arg)

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"First seed.")

let count_arg =
  Arg.(value & opt int 10 & info [ "count" ] ~docv:"N"
         ~doc:"Number of seeded random programs to check.")

let fuzz_points_arg =
  Arg.(value & opt int 12 & info [ "max-points" ] ~docv:"N"
         ~doc:"Crash points per generated program and design.")

let fuzz_nested_arg =
  Arg.(value & opt int 4 & info [ "nested" ] ~docv:"K"
         ~doc:"Every K-th point also re-crashes during recovery.")

let out_arg =
  Arg.(value & opt (some string) None & info [ "o"; "out" ] ~docv:"PATH"
         ~doc:"Write the shrunk failing case here (CI artifact).")

let fuzz_cmd =
  let doc = "seeded random programs with shrinking of failing crash points" in
  Cmd.v (Cmd.info "fuzz" ~doc)
    Term.(const fuzz $ seed_arg $ count_arg $ fuzz_points_arg
          $ fuzz_nested_arg $ out_arg)

let () =
  let doc = "differential crash-consistency checker for SweepCache" in
  let info = Cmd.info "sweepcheck" ~version:"dev" ~doc in
  exit (Cmd.eval' (Cmd.group info [ sweep_cmd; fuzz_cmd ]))
