(* sweepfleet: populations of jittered devices with streaming
   distribution aggregation.

     dune exec bin/sweepfleet.exe -- plan fleet.json
     dune exec bin/sweepfleet.exe -- plan fleet.json --device 17
     dune exec bin/sweepfleet.exe -- run fleet.json --out-dir fleet -j 4
     dune exec bin/sweepfleet.exe -- report fleet/fleet.json

   `run` simulates every device of the spec (each one the base job
   under a seeded private power perturbation and a weighted hardware
   cohort), folds the outcomes into fixed-bin distribution sketches in
   canonical device order, and writes <out-dir>/fleet.json.  The
   journal (<out-dir>/fleet.journal) advances in whole chunks, so a
   killed run resumes and converges to byte-identical output; output is
   also byte-identical at any -j and any --workers.

   Exit codes follow the experiment-stack contract: 0 clean, 1 job
   failures (supervisor quarantine), 2 degraded completion, 3
   interrupted (resumable), 64 usage.  A device whose simulation fails
   deterministically is a fleet statistic (counted and listed in the
   report), not a process failure. *)

open Cmdliner
module Fleet = Sweep_fleet
module A = Sweep_analyze
module Exit_code = Sweep_exp.Exit_code

let err fmt = Printf.ksprintf (fun s -> Printf.eprintf "sweepfleet: %s\n" s) fmt

let report_cache rc =
  let s = Sweep_exp.Rcache.stats rc in
  Printf.eprintf
    "result cache: %d hit(s), %d miss(es), %d evicted, %d corrupt\n"
    s.Sweep_exp.Rcache.hits s.Sweep_exp.Rcache.misses
    s.Sweep_exp.Rcache.evictions s.Sweep_exp.Rcache.corrupt

let format_conv =
  Arg.conv
    ( (fun s ->
        match A.Report.format_of_string (String.lowercase_ascii s) with
        | Some f -> Ok f
        | None -> Error (`Msg ("unknown format " ^ s))),
      fun fmt f ->
        Format.pp_print_string fmt
          (match f with
          | A.Report.Text -> "text"
          | A.Report.Csv -> "csv"
          | A.Report.Markdown -> "md") )

(* ---------------- plan ---------------- *)

let plan spec_path device =
  match Fleet.Spec.load spec_path with
  | Error e ->
    err "%s" e;
    Exit_code.usage
  | Ok spec -> (
    match device with
    | Some id ->
      if id < 0 || id >= spec.Fleet.Spec.devices then begin
        err "--device %d outside [0, %d)" id spec.Fleet.Spec.devices;
        Exit_code.usage
      end
      else begin
        let d = Fleet.Device.instantiate spec ~id in
        Printf.printf "device %d of fleet %s:\n" id spec.Fleet.Spec.name;
        Printf.printf "  cohort         %s\n"
          d.Fleet.Device.arm.Fleet.Spec.arm_name;
        Printf.printf "  shift_steps    %d\n" d.Fleet.Device.shift_steps;
        Printf.printf "  amp_permille   %d\n" d.Fleet.Device.amp_permille;
        Printf.printf "  drop_bp        %d\n" d.Fleet.Device.drop_bp;
        Printf.printf "  drop_seed      %d\n" d.Fleet.Device.drop_seed;
        Printf.printf "  job key        %s\n" (Fleet.Device.key spec d);
        Printf.printf "  replay         sweepsim %s\n"
          (Fleet.Device.replay_args spec d);
        0
      end
    | None ->
      let per_arm, unique = Fleet.Runner.census spec in
      Printf.printf
        "fleet %s: %d device(s), seed %d, bench %s (scale %g), design %s, \
         trace %s\n"
        spec.Fleet.Spec.name spec.Fleet.Spec.devices spec.Fleet.Spec.seed
        spec.Fleet.Spec.bench spec.Fleet.Spec.scale
        (Fleet.Spec.design_name spec.Fleet.Spec.design)
        (Sweep_energy.Power_trace.kind_name spec.Fleet.Spec.trace);
      List.iter
        (fun (name, n) -> Printf.printf "  cohort %-16s %d device(s)\n" name n)
        per_arm;
      Printf.printf "%d distinct job(s) to simulate\n" unique;
      0)

(* ---------------- run ---------------- *)

let run spec_path out_dir j kill_after chunk metrics metrics_out status_file
    metrics_export flight_dir attrib_dir workers retries worker_timeout
    respawn_budget supervise_seed chaos_kill_after cache_dir cache_max_bytes =
  if j < 1 then begin
    err "-j must be at least 1 (got %d)" j;
    Exit_code.usage
  end
  else if workers < 0 then begin
    err "--workers must be >= 0 (got %d)" workers;
    Exit_code.usage
  end
  else if chunk < 1 then begin
    err "--chunk must be at least 1 (got %d)" chunk;
    Exit_code.usage
  end
  else
    match Fleet.Spec.load spec_path with
    | Error e ->
      err "%s" e;
      Exit_code.usage
    | Ok spec ->
      Sweep_exp.Executor.set_workers j;
      if metrics || Option.is_some metrics_out
         || Option.is_some metrics_export
      then Sweep_obs.Metrics.set_enabled true;
      (* Live telemetry threaded into every chunk's Executor.execute;
         none of it touches the journal or the fleet.json bytes.  The
         status file runs in cohort-rollup mode so its size is
         O(cohorts), not O(devices). *)
      let status =
        Option.map
          (fun path ->
            Sweep_exp.Status.create ~path
              ~rollup:Fleet.Device.cohort_of_key ~workers:j ())
          status_file
      in
      let export =
        Option.map
          (fun path -> Sweep_obs.Openmetrics.exporter ~path ())
          metrics_export
      in
      let flight =
        Option.map (fun dir -> Sweep_obs.Flight.arm ~dir ()) flight_dir
      in
      let heartbeat_every =
        if status <> None || export <> None then
          Sweep_obs.Heartbeat.default_every
        else 0
      in
      let rcache =
        Option.map
          (fun dir -> Sweep_exp.Rcache.create ?max_bytes:cache_max_bytes dir)
          cache_dir
      in
      let distribute =
        if workers > 0 then
          Some
            (Sweep_exp.Supervisor.policy ~retries
               ~worker_timeout_s:worker_timeout ~respawn_budget
               ~seed:supervise_seed ?chaos_kill_after ~workers ())
        else None
      in
      let exec_config =
        if status = None && export = None && flight = None
           && heartbeat_every = 0 && attrib_dir = None && rcache = None
           && distribute = None
        then None
        else
          Some
            (Sweep_exp.Executor.config ~heartbeat_every ?status ?flight
               ?export ?attrib_dir ?rcache ?distribute ())
      in
      let dump_metrics () =
        Option.iter Sweep_obs.Openmetrics.flush export;
        (match metrics_out with
        | None -> ()
        | Some path ->
          Sweep_obs.Metrics.write_json path (Sweep_obs.Metrics.snapshot ());
          Printf.eprintf "metrics snapshot written to %s\n" path);
        if metrics then
          prerr_string
            (Sweep_obs.Metrics.render (Sweep_obs.Metrics.snapshot ()))
      in
      (try
         match
           Fleet.Runner.run ~workers:j ?exec_config ?kill_after ~chunk
             ~dir:out_dir spec
         with
         | Error e ->
           err "%s" e;
           1
         | Ok o ->
           let st = o.Fleet.Runner.state in
           let aggregated = Fleet.Sketch.devices st in
           if o.Fleet.Runner.resumed_from > 0 then
             Printf.eprintf "resumed from journalled device %d\n"
               o.Fleet.Runner.resumed_from;
           Printf.printf
             "sweepfleet: %s — %d device(s) aggregated (%d failed), report \
              written to %s\n"
             spec.Fleet.Spec.name aggregated st.Fleet.Sketch.failed_total
             o.Fleet.Runner.report_path;
           dump_metrics ();
           Sweep_exp.Supervisor.shutdown ();
           Option.iter report_cache rcache;
           let sup = Sweep_exp.Supervisor.stats () in
           if sup.Sweep_exp.Supervisor.degraded then
             err
               "degraded completion — respawn budget exhausted, finished on \
                surviving workers";
           Exit_code.of_run ~degraded:sup.Sweep_exp.Supervisor.degraded
             ~failures:sup.Sweep_exp.Supervisor.quarantined
       with
      | Fleet.Runner.Interrupted { folded } ->
        err "interrupted after device %d; journal %s is resumable" folded
          (Fleet.Runner.journal_path out_dir);
        dump_metrics ();
        Sweep_exp.Supervisor.shutdown ();
        Option.iter report_cache rcache;
        Exit_code.interrupted
      | Sys_error msg ->
        err "%s" msg;
        Sweep_exp.Supervisor.shutdown ();
        1)

(* ---------------- report ---------------- *)

let report fleet_path format out =
  match A.Fleet_view.load fleet_path with
  | Error e ->
    err "%s" e;
    Exit_code.usage
  | Ok t ->
    let body =
      A.Report.render format (A.Fleet_view.report ~source:fleet_path t)
    in
    (match out with
    | None -> print_string body
    | Some path ->
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_string oc body);
      Printf.eprintf "written to %s\n" path);
    0

(* ---------------- command line ---------------- *)

let spec_pos =
  Arg.(required & pos 0 (some file) None
       & info [] ~docv:"SPEC" ~doc:"Fleet specification JSON file.")

let device_arg =
  Arg.(value & opt (some int) None
       & info [ "device" ] ~docv:"ID"
           ~doc:"Print one device's derived parameters and exact sweepsim \
                 replay command line instead of the census.")

let out_dir_arg =
  Arg.(value & opt string "fleet"
       & info [ "out-dir" ] ~docv:"DIR"
           ~doc:"Directory for fleet.journal (the resumable checkpoint) \
                 and fleet.json (the aggregated report).")

let jobs_arg =
  Arg.(value & opt int (Domain.recommended_domain_count ())
       & info [ "j"; "jobs" ] ~docv:"N"
           ~doc:"Worker domains for device simulation (1 = sequential); \
                 does not affect output.")

let kill_after_arg =
  Arg.(value & opt (some int) None
       & info [ "kill-after" ] ~docv:"N"
           ~doc:"Abort (exit 3) at the first chunk boundary after N \
                 devices have been folded this run — the CI \
                 resume-equivalence crash injector.")

let chunk_arg =
  Arg.(value & opt int Sweep_fleet.Runner.default_chunk
       & info [ "chunk" ] ~docv:"N"
           ~doc:"Devices per executor batch / journal checkpoint \
                 (default 256); does not affect output.")

let metrics_arg =
  Arg.(value & flag
       & info [ "metrics" ]
           ~doc:"Enable the metrics registry (exp.*, sim.*) and dump it \
                 to stderr after the run.")

let metrics_out_arg =
  Arg.(value & opt (some string) None
       & info [ "metrics-out" ] ~docv:"FILE"
           ~doc:"Enable the metrics registry and write a JSON snapshot to \
                 FILE.")

let status_file_arg =
  Arg.(value & opt (some string) None
       & info [ "status-file" ] ~docv:"FILE"
           ~doc:"Maintain an atomically-updated live status snapshot at \
                 FILE while devices execute (cohort-rollup schema: \
                 per-cohort progress, capped running list, ETA); enables \
                 heartbeats.")

let metrics_export_arg =
  Arg.(value & opt (some string) None
       & info [ "metrics-export" ] ~docv:"FILE"
           ~doc:"Enable the metrics registry and periodically re-export \
                 it to FILE in OpenMetrics (Prometheus text) format; \
                 enables heartbeats.")

let flight_dir_arg =
  Arg.(value & opt (some string) None
       & info [ "flight-dir" ] ~docv:"DIR"
           ~doc:"Arm the crash flight recorder: every captured device \
                 failure dumps a postmortem-*.jsonl artifact into DIR \
                 (see $(b,sweeptrace postmortem)).")

let attrib_dir_arg =
  Arg.(value & opt (some string) None
       & info [ "attrib-dir" ] ~docv:"DIR"
           ~doc:"Arm per-PC attribution for every simulated device job \
                 and write DIR/<job key>.attrib.json (+ .folded).")

let workers_arg =
  Arg.(value & opt int 0
       & info [ "workers" ] ~docv:"N"
           ~doc:"Simulate devices in N supervised worker processes \
                 instead of in-process domains (0 = in-process, the \
                 default); does not affect output.")

let retries_arg =
  Arg.(value & opt int 2
       & info [ "retries" ] ~docv:"K"
           ~doc:"Supervised mode: re-run a device job up to K times after \
                 a worker death before quarantining it as a failure.")

let worker_timeout_arg =
  Arg.(value & opt float 60.0
       & info [ "worker-timeout" ] ~docv:"SECONDS"
           ~doc:"Supervised mode: kill a worker whose heartbeat gap \
                 exceeds SECONDS (0 disables the liveness check).")

let respawn_budget_arg =
  Arg.(value & opt int 8
       & info [ "respawn-budget" ] ~docv:"N"
           ~doc:"Supervised mode: total worker respawns allowed before \
                 the fleet degrades onto the survivors (exit 2).")

let supervise_seed_arg =
  Arg.(value & opt int 42
       & info [ "supervise-seed" ] ~docv:"N"
           ~doc:"Seed for the deterministic respawn backoff jitter and \
                 chaos-kill victim choice.")

let chaos_kill_after_arg =
  Arg.(value & opt (some int) None
       & info [ "chaos-kill-after" ] ~docv:"N"
           ~doc:"Fault injection: SIGKILL one seeded-random worker after \
                 N device jobs have completed — the CI supervision crash \
                 injector.")

let cache_dir_arg =
  Arg.(value & opt (some string) None
       & info [ "cache-dir" ] ~docv:"DIR"
           ~doc:"Persistent content-addressed result cache: devices whose \
                 job matches a cached entry are served without \
                 re-simulation.")

let cache_max_bytes_arg =
  Arg.(value & opt (some int) None
       & info [ "cache-max-bytes" ] ~docv:"BYTES"
           ~doc:"Size bound for --cache-dir; least-recently-used entries \
                 are evicted past it.")

let format_arg =
  Arg.(value & opt format_conv A.Report.Text
       & info [ "f"; "format" ] ~docv:"FMT"
           ~doc:"Report format: $(b,text), $(b,csv) or $(b,md).")

let out_arg =
  Arg.(value & opt (some string) None
       & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Write the report to FILE instead of stdout.")

let fleet_pos =
  Arg.(required & pos 0 (some file) None
       & info [] ~docv:"FLEET" ~doc:"fleet.json written by a run.")

let plan_cmd =
  let doc = "print the population census without running anything" in
  Cmd.v (Cmd.info "plan" ~doc) Term.(const plan $ spec_pos $ device_arg)

let run_cmd =
  let doc = "simulate the fleet and write the aggregated report" in
  Cmd.v
    (Cmd.info "run" ~doc)
    Term.(const run $ spec_pos $ out_dir_arg $ jobs_arg $ kill_after_arg
          $ chunk_arg $ metrics_arg $ metrics_out_arg $ status_file_arg
          $ metrics_export_arg $ flight_dir_arg $ attrib_dir_arg
          $ workers_arg $ retries_arg $ worker_timeout_arg
          $ respawn_budget_arg $ supervise_seed_arg $ chaos_kill_after_arg
          $ cache_dir_arg $ cache_max_bytes_arg)

let report_cmd =
  let doc = "render a fleet.json as distribution tables" in
  Cmd.v
    (Cmd.info "report" ~doc)
    Term.(const report $ fleet_pos $ format_arg $ out_arg)

let cmd =
  let doc = "fleet-scale simulation of jittered device populations" in
  Cmd.group (Cmd.info "sweepfleet" ~doc) [ plan_cmd; run_cmd; report_cmd ]

(* Hidden worker mode: the supervisor re-execs this same binary with a
   sentinel first argument; everything else is the cmdliner CLI. *)
let () =
  if Array.length Sys.argv > 1 && Sys.argv.(1) = Sweep_exp.Worker.argv_flag
  then exit (Sweep_exp.Worker.main ())
  else exit (Cmd.eval' cmd)
