(* sweeptrace: analyse the observability layer's artefacts.

     sweeptrace report trace.jsonl --format md
     sweeptrace report trace.jsonl --metrics m.json --results results/sweepsim.jsonl
     sweeptrace diff baseline.jsonl current.jsonl --threshold 5%
     sweeptrace bench --out BENCH_sweepcache.json --baseline BENCH_sweepcache.json

   `report` renders the derived views of one JSONL trace (regions,
   stalls, buffer occupancy, outage/recovery accounting); `diff`
   compares two runs with machine-readable verdicts (exit 1 on a
   regression beyond the threshold); `bench` runs the pinned workload
   matrix and appends a schema-versioned entry to the bench history
   file. *)

open Cmdliner
module A = Sweep_analyze

let read_err fmt = Printf.ksprintf (fun s -> Printf.eprintf "%s\n" s) fmt

let write_output out body =
  match out with
  | None -> print_string body
  | Some path ->
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc body);
    Printf.eprintf "written to %s\n" path

(* ---------------- report ---------------- *)

let report trace_path metrics_path results_path format out =
  match A.Report.build ?metrics_path ?results_path ~trace_path () with
  | Error e ->
    read_err "sweeptrace: %s" e;
    2
  | Ok r ->
    write_output out (A.Report.render format r);
    0

let trace_pos =
  Arg.(required & pos 0 (some file) None
       & info [] ~docv:"TRACE"
           ~doc:"JSONL trace (sweepsim --trace FILE --trace-format jsonl).")

let metrics_opt =
  Arg.(value & opt (some file) None
       & info [ "metrics" ] ~docv:"FILE"
           ~doc:"Metrics snapshot from --metrics-out to include.")

let results_opt =
  Arg.(value & opt (some file) None
       & info [ "results" ] ~docv:"FILE"
           ~doc:"Results JSONL (--results-dir output) to include.")

let format_opt =
  let fmt_conv =
    Arg.conv
      ( (fun s ->
          match A.Report.format_of_string (String.lowercase_ascii s) with
          | Some f -> Ok f
          | None -> Error (`Msg ("unknown format " ^ s))),
        fun fmt f ->
          Format.pp_print_string fmt
            (match f with
            | A.Report.Text -> "text"
            | A.Report.Csv -> "csv"
            | A.Report.Markdown -> "md") )
  in
  Arg.(value & opt fmt_conv A.Report.Text
       & info [ "f"; "format" ] ~docv:"FMT"
           ~doc:"Output format: $(b,text), $(b,csv) or $(b,md).")

let out_opt =
  Arg.(value & opt (some string) None
       & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Write to FILE instead of stdout.")

let report_cmd =
  let doc = "render the derived views of one JSONL trace" in
  Cmd.v
    (Cmd.info "report" ~doc)
    Term.(const report $ trace_pos $ metrics_opt $ results_opt $ format_opt
          $ out_opt)

(* ---------------- diff ---------------- *)

(* "5%" or "5" -> 5.0 *)
let threshold_conv =
  Arg.conv
    ( (fun s ->
        let s =
          if String.length s > 0 && s.[String.length s - 1] = '%' then
            String.sub s 0 (String.length s - 1)
          else s
        in
        match float_of_string_opt s with
        | Some f when f >= 0.0 -> Ok f
        | _ -> Error (`Msg ("bad threshold " ^ s))),
      fun fmt f -> Format.fprintf fmt "%g%%" f )

let threshold_opt =
  Arg.(value & opt threshold_conv 5.0
       & info [ "threshold" ] ~docv:"PCT"
           ~doc:"Regression threshold in percent (e.g. $(b,5%)).  A gated \
                 series must change strictly beyond this to produce a \
                 verdict.")

let diff base cur threshold json out =
  match A.Diff.diff_files ~threshold_pct:threshold base cur with
  | Error e ->
    read_err "sweeptrace: %s" e;
    2
  | Ok d ->
    write_output out
      (if json then A.Diff.render_json d ^ "\n" else A.Diff.render_text d);
    if A.Diff.has_regressions d then 1 else 0

let base_pos =
  Arg.(required & pos 0 (some file) None
       & info [] ~docv:"BASE"
           ~doc:"Baseline run: results JSONL, bench history file, or \
                 metrics snapshot.")

let cur_pos =
  Arg.(required & pos 1 (some file) None
       & info [] ~docv:"CURRENT" ~doc:"Current run (same formats).")

let json_flag =
  Arg.(value & flag
       & info [ "json" ] ~doc:"Emit the machine-readable verdict document.")

let diff_cmd =
  let doc = "compare two runs; exit 1 on a regression beyond the threshold" in
  Cmd.v
    (Cmd.info "diff" ~doc)
    Term.(const diff $ base_pos $ cur_pos $ threshold_opt $ json_flag
          $ out_opt)

(* ---------------- bench ---------------- *)

let detect_commit () =
  match Sys.getenv_opt "GITHUB_SHA" with
  | Some sha when sha <> "" -> sha
  | _ -> (
    try
      let ic = Unix.open_process_in "git rev-parse HEAD 2>/dev/null" in
      let line = try input_line ic with End_of_file -> "" in
      match (Unix.close_process_in ic, line) with
      | Unix.WEXITED 0, sha when sha <> "" -> sha
      | _ -> "unknown"
    with _ -> "unknown")

let bench out commit workers baseline threshold no_append no_throughput
    min_ips_ratio =
  let commit = match commit with Some c -> c | None -> detect_commit () in
  Printf.eprintf "sweeptrace bench: matrix %s (%d jobs), commit %s\n"
    A.Bench.matrix_id
    (List.length (A.Bench.jobs ()))
    commit;
  (* Read the baseline before appending: --out and --baseline are
     usually the same file, and the fresh entry must not become its own
     baseline. *)
  let base =
    match baseline with
    | None -> Ok None
    | Some path -> (
      match A.Bench.latest path with
      | Ok e -> Ok (Some (path, e))
      | Error e -> Error e)
  in
  match base with
  | Error e ->
    read_err "sweeptrace: %s" e;
    2
  | Ok base -> (
    let results = A.Bench.run ?workers () in
    (* Wall-clock throughput runs sequentially after the (possibly
       parallel) result matrix so the timing is not skewed by worker
       contention. *)
    let throughput =
      if no_throughput then [] else A.Bench.measure_throughput ()
    in
    if throughput <> [] then begin
      List.iter
        (fun (key, ips) ->
          Printf.eprintf "  %-60s %12.0f instr/s\n" key ips)
        throughput;
      Printf.eprintf "  %-60s %12.0f instr/s\n" "geomean"
        (A.Bench.geomean throughput)
    end;
    let entry =
      { A.Bench.ts = Sweep_exp.Results.iso8601 (Unix.gettimeofday ());
        commit; results; throughput }
    in
    let append_rc =
      if no_append then 0
      else
        match A.Bench.append ~path:out entry with
        | Ok n ->
          Printf.eprintf "appended entry %d to %s\n" n out;
          0
        | Error e ->
          read_err "sweeptrace: %s" e;
          2
    in
    (* Wall-clock throughput gate: a coarse geomean ratio against the
       baseline entry, not the exact-value diff — host timing is noisy,
       so only a drop below [min_ips_ratio] of the baseline fails. *)
    let throughput_rc =
      match base with
      | Some (path, b) when throughput <> [] && b.A.Bench.throughput <> [] ->
        let cur = A.Bench.geomean throughput in
        let old = A.Bench.geomean b.A.Bench.throughput in
        Printf.eprintf
          "  throughput vs baseline: %.0f / %.0f instr/s (%.2fx)\n" cur old
          (cur /. old);
        if cur < min_ips_ratio *. old then begin
          read_err
            "sweeptrace: throughput regression vs baseline %s: geomean \
             %.0f < %.0f×%.2f instr/s"
            path cur old min_ips_ratio;
          1
        end
        else 0
      | _ -> 0
    in
    if append_rc <> 0 then append_rc
    else
      match base with
      | None -> throughput_rc
      | Some (path, base) -> (
        match
          A.Diff.compare_runs ~threshold_pct:threshold
            base.A.Bench.results results
        with
        | Error e ->
          read_err "sweeptrace: %s" e;
          2
        | Ok d ->
          print_string (A.Diff.render_text d);
          if A.Diff.has_regressions d then begin
            read_err
              "sweeptrace: regression vs baseline %s (commit %s)" path
              base.A.Bench.commit;
            1
          end
          else throughput_rc))

let bench_out_opt =
  Arg.(value & opt string "BENCH_sweepcache.json"
       & info [ "out" ] ~docv:"FILE"
           ~doc:"Bench history file to append to.")

let commit_opt =
  Arg.(value & opt (some string) None
       & info [ "commit" ] ~docv:"SHA"
           ~doc:"Commit id stamped into the entry (default: \
                 \\$GITHUB_SHA, then git rev-parse HEAD).")

let bench_jobs_opt =
  Arg.(value & opt (some int) None
       & info [ "j"; "jobs" ] ~docv:"N" ~doc:"Worker domains.")

let baseline_opt =
  Arg.(value & opt (some file) None
       & info [ "baseline" ] ~docv:"FILE"
           ~doc:"Diff the fresh results against this bench history's \
                 latest entry; exit 1 on a regression.")

let no_append_flag =
  Arg.(value & flag
       & info [ "no-append" ]
           ~doc:"Run and (optionally) diff without writing the history \
                 file.")

let no_throughput_flag =
  Arg.(value & flag
       & info [ "no-throughput" ]
           ~doc:"Skip the sequential wall-clock throughput measurement.")

let min_ips_ratio_opt =
  Arg.(value & opt float 0.5
       & info [ "min-ips-ratio" ] ~docv:"R"
           ~doc:"Fail when the geomean instructions/second falls below R \
                 times the baseline entry's (wall-clock gate; coarse on \
                 purpose because host timing is noisy).")

let bench_cmd =
  let doc = "run the pinned workload matrix and append to the bench history" in
  Cmd.v
    (Cmd.info "bench" ~doc)
    Term.(const bench $ bench_out_opt $ commit_opt $ bench_jobs_opt
          $ baseline_opt $ threshold_opt $ no_append_flag
          $ no_throughput_flag $ min_ips_ratio_opt)

(* ---------------- tune ---------------- *)

(* Render sweeptune's artefacts (same code path as `sweeptune report`,
   here so trace analysis tooling covers every JSONL the repo emits). *)
let tune frontier_path journal_path format out =
  let journal =
    match journal_path with
    | None -> []
    | Some p -> (
        match A.Tune_file.load_journal p with
        | Ok (cells, warnings) ->
          List.iter (fun w -> Printf.eprintf "warning: %s\n" w) warnings;
          cells
        | Error e ->
          Printf.eprintf "warning: %s\n" e;
          [])
  in
  match A.Tune_file.load_frontier frontier_path with
  | Error e ->
    read_err "sweeptrace: %s" e;
    2
  | Ok (entries, warnings) ->
    List.iter (fun w -> Printf.eprintf "warning: %s\n" w) warnings;
    write_output out
      (A.Report.render format
         (A.Tune_file.report ~journal ~source:frontier_path entries));
    0

let frontier_pos =
  Arg.(required & pos 0 (some file) None
       & info [] ~docv:"FRONTIER"
           ~doc:"frontier.jsonl from a sweeptune explore run.")

let journal_opt =
  Arg.(value & opt (some file) None
       & info [ "journal" ] ~docv:"FILE"
           ~doc:"journal.jsonl to add per-axis sensitivity sections.")

let tune_cmd =
  let doc = "render a sweeptune frontier (and journal sensitivity)" in
  Cmd.v
    (Cmd.info "tune" ~doc)
    Term.(const tune $ frontier_pos $ journal_opt $ format_opt $ out_opt)

(* ---------------- profile ---------------- *)

(* Render one per-PC attribution profile (sweepsim --attrib /
   sweepexp --attrib-dir output), or diff two of them with the
   profile-specific direction map (exit 1 when any cost series
   regresses beyond the threshold). *)
let profile profile_path diff_path top threshold json out =
  match diff_path with
  | None -> (
    match A.Profile_view.load profile_path with
    | Error e ->
      read_err "sweeptrace: %s" e;
      2
    | Ok p ->
      write_output out (A.Profile_view.render_report ~top p);
      0)
  | Some cur_path -> (
    match
      A.Profile_view.diff_files ~threshold_pct:threshold profile_path
        cur_path
    with
    | Error e ->
      read_err "sweeptrace: %s" e;
      2
    | Ok d ->
      write_output out
        (if json then A.Diff.render_json d ^ "\n" else A.Diff.render_text d);
      if A.Diff.has_regressions d then 1 else 0)

let profile_pos =
  Arg.(required & pos 0 (some file) None
       & info [] ~docv:"PROFILE"
           ~doc:"Attribution profile JSON (sweepsim --attrib FILE, or a \
                 .attrib.json from sweepexp/sweeptune --attrib-dir).  With \
                 $(b,--diff) this is the baseline.")

let profile_diff_opt =
  Arg.(value & opt (some file) None
       & info [ "diff" ] ~docv:"CURRENT"
           ~doc:"Compare PROFILE (baseline) against CURRENT instead of \
                 rendering a report: per-PC and whole-run deltas with \
                 direction-aware verdicts (time/energy/wear/re-execution \
                 lower-better); exit 1 on a regression beyond \
                 $(b,--threshold).")

let top_opt =
  Arg.(value & opt int 10
       & info [ "top" ] ~docv:"N"
           ~doc:"Rows per top-N table in the report (default 10).")

let profile_cmd =
  let doc = "render or diff per-PC attribution profiles" in
  Cmd.v
    (Cmd.info "profile" ~doc)
    Term.(const profile $ profile_pos $ profile_diff_opt $ top_opt
          $ threshold_opt $ json_flag $ out_opt)

(* ---------------- postmortem ---------------- *)

let postmortem artifact_path tail format out =
  match A.Flight_file.load artifact_path with
  | Error e ->
    read_err "sweeptrace: %s" e;
    2
  | Ok pm ->
    write_output out
      (A.Report.render format
         (A.Flight_file.report ~tail ~source:artifact_path pm));
    0

let artifact_pos =
  Arg.(required & pos 0 (some file) None
       & info [] ~docv:"ARTIFACT"
           ~doc:"postmortem-*.jsonl written by the crash flight recorder \
                 (sweepexp/sweeptune --flight-dir).")

let tail_opt =
  Arg.(value & opt int 25
       & info [ "tail" ] ~docv:"N"
           ~doc:"Show the last N ring events (default 25).")

let postmortem_cmd =
  let doc = "render a crash flight-recorder artifact" in
  Cmd.v
    (Cmd.info "postmortem" ~doc)
    Term.(const postmortem $ artifact_pos $ tail_opt $ format_opt $ out_opt)

(* ---------------- lint ---------------- *)

(* Shape checks for the operational telemetry files CI uploads: the
   --status-file snapshot and the --metrics-export OpenMetrics text.
   Exit 1 on any problem so the CI step is a plain command. *)
let lint status_path openmetrics_path =
  if status_path = None && openmetrics_path = None then begin
    read_err "sweeptrace: lint needs --status and/or --openmetrics";
    2
  end
  else begin
    let problems = ref 0 in
    let problem fmt =
      Printf.ksprintf
        (fun s ->
          incr problems;
          Printf.eprintf "%s\n" s)
        fmt
    in
    (match status_path with
    | None -> ()
    | Some path -> (
      match A.Status_file.load path with
      | Error e -> problem "status: %s" e
      | Ok s ->
        List.iter (fun p -> problem "status: %s: %s" path p)
          (A.Status_file.validate s);
        Printf.printf
          "status: %s: ok (%d/%d jobs done, %d running, %d failed)\n" path
          s.A.Status_file.done_ s.A.Status_file.total
          s.A.Status_file.running_n s.A.Status_file.failed));
    (match openmetrics_path with
    | None -> ()
    | Some path -> (
      match
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      with
      | exception Sys_error e -> problem "openmetrics: %s" e
      | text -> (
        match Sweep_obs.Openmetrics.lint text with
        | Error e -> problem "openmetrics: %s: %s" path e
        | Ok families ->
          Printf.printf "openmetrics: %s: ok (%d families, %d samples)\n"
            path (List.length families)
            (List.fold_left
               (fun acc f ->
                 acc
                 + List.length f.Sweep_obs.Openmetrics.samples)
               0 families))));
    if !problems > 0 then 1 else 0
  end

let status_lint_opt =
  Arg.(value & opt (some file) None
       & info [ "status" ] ~docv:"FILE"
           ~doc:"status.json snapshot (--status-file) to validate.")

let openmetrics_lint_opt =
  Arg.(value & opt (some file) None
       & info [ "openmetrics" ] ~docv:"FILE"
           ~doc:"OpenMetrics text file (--metrics-export) to validate.")

let lint_cmd =
  let doc = "validate live-telemetry files (status.json, OpenMetrics)" in
  Cmd.v
    (Cmd.info "lint" ~doc)
    Term.(const lint $ status_lint_opt $ openmetrics_lint_opt)

(* ---------------- fleet ---------------- *)

let fleet fleet_path format out =
  match A.Fleet_view.load fleet_path with
  | Error e ->
    read_err "sweeptrace: %s" e;
    2
  | Ok t ->
    write_output out (A.Report.render format (A.Fleet_view.report ~source:fleet_path t));
    0

let fleet_pos =
  Arg.(required & pos 0 (some file) None
       & info [] ~docv:"FLEET"
           ~doc:"Aggregated fleet report (sweepfleet run's fleet.json).")

let fleet_cmd =
  let doc = "render a fleet.json: population distributions, cohorts, tails" in
  Cmd.v
    (Cmd.info "fleet" ~doc)
    Term.(const fleet $ fleet_pos $ format_opt $ out_opt)

(* ---------------- entry ---------------- *)

let cmd =
  let doc = "analyse SweepCache traces, metrics and results" in
  Cmd.group (Cmd.info "sweeptrace" ~doc)
    [ report_cmd; diff_cmd; bench_cmd; profile_cmd; tune_cmd;
      postmortem_cmd; lint_cmd; fleet_cmd ]

let () = exit (Cmd.eval' cmd)
