(* sweeptune: resumable design-space exploration over SweepCache's
   hardware and compiler knobs.

     dune exec bin/sweeptune.exe -- explore --budget 200 --seed 42 -j 4
     dune exec bin/sweeptune.exe -- explore --strategy random --budget 60
     dune exec bin/sweeptune.exe -- plan --strategy halving --budget 200
     dune exec bin/sweeptune.exe -- report tune/frontier.jsonl --journal tune/journal.jsonl

   `explore` searches the pinned design matrix (cache geometry,
   persist-buffer entries, region store cap, unroll factor, capacitor,
   power trace) under a budget of (point, bench) simulation cells,
   journalling every evaluated cell to <out-dir>/journal.jsonl and
   writing the Pareto frontier (geomean runtime x NVM writes x hardware
   bits) to <out-dir>/frontier.jsonl.  Interrupt it at any time: rerun
   with the same out-dir and it resumes from the journal, re-evaluating
   nothing and converging to the identical frontier.  Output is
   byte-identical at any -j. *)

open Cmdliner
module Tune = Sweep_tune
module A = Sweep_analyze
module Exit_code = Sweep_exp.Exit_code

let err fmt = Printf.ksprintf (fun s -> Printf.eprintf "sweeptune: %s\n" s) fmt

let report_cache rc =
  let s = Sweep_exp.Rcache.stats rc in
  Printf.eprintf
    "result cache: %d hit(s), %d miss(es), %d evicted, %d corrupt\n"
    s.Sweep_exp.Rcache.hits s.Sweep_exp.Rcache.misses
    s.Sweep_exp.Rcache.evictions s.Sweep_exp.Rcache.corrupt

let mkdir_p dir =
  let rec go d =
    if d <> "" && d <> "." && d <> "/" && not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ())
    end
  in
  go dir

let strategy_conv =
  Arg.conv
    ( (fun s ->
        match Tune.Search.strategy_of_name (String.lowercase_ascii s) with
        | Some st -> Ok st
        | None -> Error (`Msg ("unknown strategy " ^ s ^ " (grid|random|halving)"))),
      fun fmt st ->
        Format.pp_print_string fmt (Tune.Search.strategy_name st) )

let format_conv =
  Arg.conv
    ( (fun s ->
        match A.Report.format_of_string (String.lowercase_ascii s) with
        | Some f -> Ok f
        | None -> Error (`Msg ("unknown format " ^ s))),
      fun fmt f ->
        Format.pp_print_string fmt
          (match f with
          | A.Report.Text -> "text"
          | A.Report.Csv -> "csv"
          | A.Report.Markdown -> "md") )

(* Shared search parameter flags. *)
let budget_arg =
  Arg.(value & opt int Tune.Search.default_params.Tune.Search.budget
       & info [ "budget" ] ~docv:"N"
           ~doc:"Maximum (point, bench) simulation cells to schedule; \
                 journal-cached cells count too, so a resumed search \
                 stops exactly where an uninterrupted one would.")

let seed_arg =
  Arg.(value & opt int Tune.Search.default_params.Tune.Search.seed
       & info [ "seed" ] ~docv:"N"
           ~doc:"Search seed (drives $(b,random)'s shuffle).")

let strategy_arg =
  Arg.(value & opt strategy_conv Tune.Search.default_params.Tune.Search.strategy
       & info [ "strategy" ] ~docv:"S"
           ~doc:"$(b,grid) (canonical exhaustive walk), $(b,random) \
                 (seeded sample) or $(b,halving) (successive halving up \
                 the bench ladder; the default).")

let scale_arg =
  Arg.(value & opt float Tune.Search.default_params.Tune.Search.scale
       & info [ "scale" ] ~docv:"F"
           ~doc:"Workload scale for every cell (default 0.2).")

let params_of budget seed strategy scale =
  { Tune.Search.default_params with budget; seed; strategy; scale }

let check_params budget scale =
  if budget < 0 then begin
    err "--budget must be non-negative (got %d)" budget;
    false
  end
  else if scale <= 0.0 || scale > 1.0 then begin
    err "--scale must be in (0, 1] (got %g)" scale;
    false
  end
  else true

(* ---------------- explore ---------------- *)

let render_failed = function
  | [] -> ()
  | failed ->
      Printf.eprintf "%d point(s) excluded from the frontier:\n"
        (List.length failed);
      List.iter
        (fun (p, e) -> Printf.eprintf "  %s: %s\n" (Tune.Space.id p) e)
        failed

let explore budget seed strategy scale j out_dir kill_after metrics metrics_out
    format early_stop status_file metrics_export flight_dir attrib_dir workers
    retries worker_timeout respawn_budget supervise_seed chaos_kill_after
    cache_dir cache_max_bytes =
  if not (check_params budget scale) then Exit_code.usage
  else if j < 1 then begin
    err "-j must be at least 1 (got %d)" j;
    Exit_code.usage
  end
  else if workers < 0 then begin
    err "--workers must be >= 0 (got %d)" workers;
    Exit_code.usage
  end
  else if (match early_stop with Some m -> m < 1.0 | None -> false) then begin
    err "--early-stop margin must be >= 1 (got %g)"
      (Option.get early_stop);
    Exit_code.usage
  end
  else begin
    Sweep_exp.Executor.set_workers j;
    if metrics || Option.is_some metrics_out || Option.is_some metrics_export
    then Sweep_obs.Metrics.set_enabled true;
    let params =
      { (params_of budget seed strategy scale) with early_stop }
    in
    let journal = Filename.concat out_dir "journal.jsonl" in
    let frontier_path = Filename.concat out_dir "frontier.jsonl" in
    (* Live telemetry threaded into every chunk's Executor.execute; none
       of it touches the journal or the frontier bytes. *)
    let status =
      Option.map
        (fun path -> Sweep_exp.Status.create ~path ~workers:j ())
        status_file
    in
    let export =
      Option.map
        (fun path -> Sweep_obs.Openmetrics.exporter ~path ())
        metrics_export
    in
    let flight =
      Option.map (fun dir -> Sweep_obs.Flight.arm ~dir ()) flight_dir
    in
    let heartbeat_every =
      if status <> None || export <> None then
        Sweep_obs.Heartbeat.default_every
      else 0
    in
    let rcache =
      Option.map
        (fun dir -> Sweep_exp.Rcache.create ?max_bytes:cache_max_bytes dir)
        cache_dir
    in
    let distribute =
      if workers > 0 then
        Some
          (Sweep_exp.Supervisor.policy ~retries
             ~worker_timeout_s:worker_timeout ~respawn_budget
             ~seed:supervise_seed ?chaos_kill_after ~workers ())
      else None
    in
    let exec_config =
      if status = None && export = None && flight = None
         && heartbeat_every = 0 && attrib_dir = None && rcache = None
         && distribute = None
      then None
      else
        Some
          (Sweep_exp.Executor.config ~heartbeat_every ?status ?flight ?export
             ?attrib_dir ?rcache ?distribute ())
    in
    let dump_metrics () =
      Option.iter Sweep_obs.Openmetrics.flush export;
      (match metrics_out with
      | None -> ()
      | Some path ->
          Sweep_obs.Metrics.write_json path (Sweep_obs.Metrics.snapshot ());
          Printf.eprintf "metrics snapshot written to %s\n" path);
      if metrics then
        prerr_string (Sweep_obs.Metrics.render (Sweep_obs.Metrics.snapshot ()))
    in
    try
      mkdir_p out_dir;
      match
        Tune.Search.run ~workers:j ?kill_after ?exec_config ~journal params
      with
      | Error e ->
          err "%s" e;
          1
      | Ok (o, warnings) ->
          List.iter (fun w -> Printf.eprintf "warning: %s\n" w) warnings;
          Tune.Frontier.write_jsonl frontier_path o.Tune.Search.frontier;
          Printf.printf
            "sweeptune: %s search, budget %d — %d cell(s) scheduled \
             (%d simulated, %d from journal)\n"
            (Tune.Search.strategy_name strategy)
            budget o.Tune.Search.scheduled o.Tune.Search.executed
            o.Tune.Search.cached;
          Printf.printf
            "final tier: %d point(s) on benches [%s]; frontier written to %s\n\n"
            o.Tune.Search.tier_points
            (String.concat ", " o.Tune.Search.tier_benches)
            frontier_path;
          let journal_cells =
            match A.Tune_file.load_journal journal with
            | Ok (cells, _) -> cells
            | Error _ -> []
          in
          (match A.Tune_file.load_frontier frontier_path with
          | Error e ->
              err "%s" e;
              1
          | Ok (entries, fwarnings) ->
              List.iter (fun w -> Printf.eprintf "warning: %s\n" w) fwarnings;
              print_string
                (A.Report.render format
                   (A.Tune_file.report ~journal:journal_cells
                      ~source:frontier_path entries));
              render_failed o.Tune.Search.failed_points;
              dump_metrics ();
              Sweep_exp.Supervisor.shutdown ();
              Option.iter report_cache rcache;
              let sup = Sweep_exp.Supervisor.stats () in
              if sup.Sweep_exp.Supervisor.degraded then
                err "degraded completion — respawn budget exhausted, \
                     finished on surviving workers";
              (* Deterministically failing cells are a search outcome
                 (excluded from the frontier, exit 0, as always); only
                 jobs the supervisor quarantined after exhausting
                 worker-death retries count as job failures. *)
              Exit_code.of_run ~degraded:sup.Sweep_exp.Supervisor.degraded
                ~failures:sup.Sweep_exp.Supervisor.quarantined)
    with
    | Tune.Search.Interrupted { executed } ->
        err "interrupted after %d simulated cell(s); journal %s is \
             resumable" executed journal;
        dump_metrics ();
        Sweep_exp.Supervisor.shutdown ();
        Option.iter report_cache rcache;
        Exit_code.interrupted
    | Sys_error msg ->
        err "%s" msg;
        Sweep_exp.Supervisor.shutdown ();
        1
  end

(* ---------------- plan ---------------- *)

let plan budget seed strategy scale =
  if not (check_params budget scale) then Exit_code.usage
  else begin
    let params = params_of budget seed strategy scale in
    let cands, worst = Tune.Search.plan params in
    List.iter (fun p -> print_endline (Tune.Space.id p)) cands;
    Printf.printf
      "%d candidate point(s) (%s), worst case %d cell(s) within budget %d\n"
      (List.length cands)
      (Tune.Search.strategy_name strategy)
      worst budget;
    0
  end

(* ---------------- report ---------------- *)

let report frontier_path journal_path format out =
  let journal =
    match journal_path with
    | None -> []
    | Some p -> (
        match A.Tune_file.load_journal p with
        | Ok (cells, warnings) ->
            List.iter (fun w -> Printf.eprintf "warning: %s\n" w) warnings;
            cells
        | Error e ->
            Printf.eprintf "warning: %s\n" e;
            [])
  in
  match A.Tune_file.load_frontier frontier_path with
  | Error e ->
      err "%s" e;
      Exit_code.usage
  | Ok (entries, warnings) ->
      List.iter (fun w -> Printf.eprintf "warning: %s\n" w) warnings;
      let body =
        A.Report.render format
          (A.Tune_file.report ~journal ~source:frontier_path entries)
      in
      (match out with
      | None -> print_string body
      | Some path ->
          let oc = open_out path in
          Fun.protect
            ~finally:(fun () -> close_out oc)
            (fun () -> output_string oc body);
          Printf.eprintf "written to %s\n" path);
      0

(* ---------------- command line ---------------- *)

let jobs_arg =
  Arg.(value & opt int (Domain.recommended_domain_count ())
       & info [ "j"; "jobs" ] ~docv:"N"
           ~doc:"Worker domains for cell evaluation (1 = sequential); \
                 does not affect output.")

let out_dir_arg =
  Arg.(value & opt string "tune"
       & info [ "out-dir" ] ~docv:"DIR"
           ~doc:"Directory for journal.jsonl (the resumable checkpoint) \
                 and frontier.jsonl.")

let kill_after_arg =
  Arg.(value & opt (some int) None
       & info [ "kill-after" ] ~docv:"N"
           ~doc:"Abort (exit 3) at the first batch boundary after N \
                 cells have been simulated this run — the CI \
                 resume-equivalence crash injector.")

let metrics_arg =
  Arg.(value & flag
       & info [ "metrics" ]
           ~doc:"Enable the metrics registry (tune.*, exp.*, sim.*) and \
                 dump it to stderr after the run.")

let metrics_out_arg =
  Arg.(value & opt (some string) None
       & info [ "metrics-out" ] ~docv:"FILE"
           ~doc:"Enable the metrics registry and write a JSON snapshot \
                 to FILE.")

let format_arg =
  Arg.(value & opt format_conv A.Report.Text
       & info [ "f"; "format" ] ~docv:"FMT"
           ~doc:"Report format: $(b,text), $(b,csv) or $(b,md).")

let early_stop_arg =
  Arg.(value & opt (some float) None
       & info [ "early-stop" ] ~docv:"MARGIN"
           ~doc:"Kill dominated cells: gracefully stop any cell once its \
                 simulated time exceeds MARGIN times the best completed \
                 runtime journalled for the same bench (MARGIN >= 1, e.g. \
                 $(b,1.5)).  Budgets are frozen per execution chunk from \
                 journalled state only, so the journal and frontier stay \
                 byte-identical across -j and kill/resume.")

let status_file_arg =
  Arg.(value & opt (some string) None
       & info [ "status-file" ] ~docv:"FILE"
           ~doc:"Maintain an atomically-updated live status snapshot at \
                 FILE while cells execute; enables heartbeats.")

let metrics_export_arg =
  Arg.(value & opt (some string) None
       & info [ "metrics-export" ] ~docv:"FILE"
           ~doc:"Enable the metrics registry and periodically re-export \
                 it to FILE in OpenMetrics (Prometheus text) format; \
                 enables heartbeats.")

let flight_dir_arg =
  Arg.(value & opt (some string) None
       & info [ "flight-dir" ] ~docv:"DIR"
           ~doc:"Arm the crash flight recorder: every captured cell \
                 failure dumps a postmortem-*.jsonl artifact into DIR \
                 (see $(b,sweeptrace postmortem)).")

let out_arg =
  Arg.(value & opt (some string) None
       & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Write the report to FILE instead of stdout.")

let attrib_dir_arg =
  Arg.(value & opt (some string) None
       & info [ "attrib-dir" ] ~docv:"DIR"
           ~doc:"Arm per-PC attribution for every evaluated design point \
                 and write DIR/<job key>.attrib.json (+ .folded) per \
                 cell, so any frontier point can be explained with \
                 $(b,sweeptrace profile).")

let workers_arg =
  Arg.(value & opt int 0
       & info [ "workers" ] ~docv:"N"
           ~doc:"Evaluate cells in N supervised worker processes instead \
                 of in-process domains (0 = in-process, the default); \
                 does not affect output.")

let retries_arg =
  Arg.(value & opt int 2
       & info [ "retries" ] ~docv:"K"
           ~doc:"Supervised mode: re-run a cell up to K times after a \
                 worker death before quarantining it as a failure.")

let worker_timeout_arg =
  Arg.(value & opt float 60.0
       & info [ "worker-timeout" ] ~docv:"SECONDS"
           ~doc:"Supervised mode: kill a worker whose heartbeat gap \
                 exceeds SECONDS (0 disables the liveness check).")

let respawn_budget_arg =
  Arg.(value & opt int 8
       & info [ "respawn-budget" ] ~docv:"N"
           ~doc:"Supervised mode: total worker respawns allowed before \
                 the fleet degrades onto the survivors (exit 2).")

let supervise_seed_arg =
  Arg.(value & opt int 42
       & info [ "supervise-seed" ] ~docv:"N"
           ~doc:"Seed for the deterministic respawn backoff jitter and \
                 chaos-kill victim choice.")

let chaos_kill_after_arg =
  Arg.(value & opt (some int) None
       & info [ "chaos-kill-after" ] ~docv:"N"
           ~doc:"Fault injection: SIGKILL one seeded-random worker after \
                 N cells have completed — the CI supervision crash \
                 injector.")

let cache_dir_arg =
  Arg.(value & opt (some string) None
       & info [ "cache-dir" ] ~docv:"DIR"
           ~doc:"Persistent content-addressed result cache: cells whose \
                 design point, workload and simulator version match a \
                 cached entry are served without re-simulation.")

let cache_max_bytes_arg =
  Arg.(value & opt (some int) None
       & info [ "cache-max-bytes" ] ~docv:"BYTES"
           ~doc:"Size bound for --cache-dir; least-recently-used entries \
                 are evicted past it.")

let explore_cmd =
  let doc = "search the design space and write the Pareto frontier" in
  Cmd.v
    (Cmd.info "explore" ~doc)
    Term.(const explore $ budget_arg $ seed_arg $ strategy_arg $ scale_arg
          $ jobs_arg $ out_dir_arg $ kill_after_arg $ metrics_arg
          $ metrics_out_arg $ format_arg $ early_stop_arg $ status_file_arg
          $ metrics_export_arg $ flight_dir_arg $ attrib_dir_arg
          $ workers_arg $ retries_arg $ worker_timeout_arg
          $ respawn_budget_arg $ supervise_seed_arg $ chaos_kill_after_arg
          $ cache_dir_arg $ cache_max_bytes_arg)

let plan_cmd =
  let doc = "print the candidate points without running anything" in
  Cmd.v
    (Cmd.info "plan" ~doc)
    Term.(const plan $ budget_arg $ seed_arg $ strategy_arg $ scale_arg)

let frontier_pos =
  Arg.(required & pos 0 (some file) None
       & info [] ~docv:"FRONTIER" ~doc:"frontier.jsonl from an explore run.")

let journal_opt =
  Arg.(value & opt (some file) None
       & info [ "journal" ] ~docv:"FILE"
           ~doc:"journal.jsonl to add per-axis sensitivity sections.")

let report_cmd =
  let doc = "render a frontier (and journal sensitivity) as a report" in
  Cmd.v
    (Cmd.info "report" ~doc)
    Term.(const report $ frontier_pos $ journal_opt $ format_arg $ out_arg)

let cmd =
  let doc = "design-space exploration over SweepCache's knobs" in
  Cmd.group (Cmd.info "sweeptune" ~doc) [ explore_cmd; plan_cmd; report_cmd ]

(* Hidden worker mode: the supervisor re-execs this same binary with a
   sentinel first argument; everything else is the cmdliner CLI. *)
let () =
  if Array.length Sys.argv > 1 && Sys.argv.(1) = Sweep_exp.Worker.argv_flag
  then exit (Sweep_exp.Worker.main ())
  else exit (Cmd.eval' cmd)
