(** JSONL checkpoint of every evaluated (point, bench) cell.

    Each executed cell appends one line; an interrupted search resumes
    by loading the file and skipping every cell already present, so a
    killed-then-resumed exploration re-evaluates nothing and — because
    search decisions are a pure function of seed + cell results —
    converges to the identical frontier as an uninterrupted run.

    Lines carry no timestamps: with a fixed seed the journal itself is
    deterministic (cells are appended in canonical batch order), so CI
    can diff journals as well as frontiers.  Failed evaluations (e.g.
    {!Sweep_sim.Driver.Stagnation} on an infeasible point) are recorded
    too — a crash must not retry them forever. *)

type cell = {
  point : Space.point;
  bench : string;
  scale : float;
  key : string;          (** canonical job key ({!Space.job}) *)
  runtime_ns : float;    (** total on+off ns; 0 when [failed] *)
  nvm_writes : int;      (** 0 when [failed] *)
  completed : bool;      (** reached Halt within the driver's guards *)
  failed : bool;
  error : string;        (** "" unless [failed] *)
}

val schema_version : int

val line : cell -> string

val append : out_channel -> cell -> unit
(** One line, flushed — a kill after [append] returns leaves a loadable
    journal. *)

val load : string -> (cell list * string list, string) result
(** Cells in file order plus warnings.  A missing file is [Ok ([], [])].
    A torn final line (the crash wrote half a line) is dropped with a
    warning; a malformed line elsewhere is an error — the journal is
    corrupt, not merely truncated. *)
