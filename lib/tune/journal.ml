module Json = Sweep_analyze.Json

type cell = {
  point : Space.point;
  bench : string;
  scale : float;
  key : string;
  runtime_ns : float;
  nvm_writes : int;
  completed : bool;
  failed : bool;
  error : string;
}

let schema_version = 1

let line c =
  let js = Sweep_obs.Event.json_string in
  Printf.sprintf
    "{\"schema_version\":%d,\"key\":%s,%s,\"bench\":%s,\"scale\":%.17g,\
     \"runtime_ns\":%.17g,\"nvm_writes\":%d,\"completed\":%b,\"failed\":%b,\
     \"error\":%s}"
    schema_version (js c.key) (Space.json_fields c.point) (js c.bench) c.scale
    c.runtime_ns c.nvm_writes c.completed c.failed (js c.error)

let append oc c =
  output_string oc (line c);
  output_char oc '\n';
  flush oc

let cell_of_json j =
  let ( let* ) = Option.bind in
  let* point = Space.of_json j in
  let* key = Json.string_member "key" j in
  let* bench = Json.string_member "bench" j in
  let* scale = Json.float_member "scale" j in
  let* runtime_ns = Json.float_member "runtime_ns" j in
  let* nvm_writes = Json.int_member "nvm_writes" j in
  let* completed = Json.bool_member "completed" j in
  let* failed = Json.bool_member "failed" j in
  let* error = Json.string_member "error" j in
  Some { point; bench; scale; key; runtime_ns; nvm_writes; completed; failed; error }

let load path =
  if not (Sys.file_exists path) then Ok ([], [])
  else begin
    let ic = open_in path in
    let lines = ref [] in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        try
          while true do
            lines := input_line ic :: !lines
          done
        with End_of_file -> ());
    let lines = List.rev !lines in
    let n = List.length lines in
    let cells = ref [] and warnings = ref [] and error = ref None in
    List.iteri
      (fun idx raw ->
        let lineno = idx + 1 in
        if !error = None && String.trim raw <> "" then
          match Option.bind (Result.to_option (Json.parse raw)) cell_of_json with
          | Some cell -> cells := cell :: !cells
          | None when lineno = n ->
            (* Torn final line: the crash interrupted the write. *)
            warnings :=
              Printf.sprintf "journal: dropped torn final line %d" lineno
              :: !warnings
          | None ->
            error :=
              Some (Printf.sprintf "%s: malformed journal line %d" path lineno))
      lines;
    match !error with
    | Some e -> Error e
    | None -> Ok (List.rev !cells, List.rev !warnings)
  end
