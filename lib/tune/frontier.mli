(** Multi-objective Pareto frontier over evaluated design points.

    Three objectives, all lower-better: aggregate runtime (geomean of
    total simulated ns across the benches the point was evaluated on),
    NVM writes (summed over the same benches — endurance), and hardware
    cost in bits ({!Space.hw_bits}).  A point is kept iff no other
    evaluated point is at least as good on every objective and strictly
    better on one.  {!members} is sorted by a stable total order, so the
    frontier renders byte-identically whatever the insertion (worker)
    order, and two runs that evaluated the same set of points produce
    the identical frontier. *)

type objectives = {
  runtime_ns : float;
  nvm_writes : float;
  hw_bits : int;
}

type entry = {
  point : Space.point;
  benches : string list;  (** benches the aggregates cover, sorted *)
  objs : objectives;
}

val dominates : objectives -> objectives -> bool
(** [dominates a b] — [a] at least as good everywhere, better
    somewhere. *)

type t

val empty : t
val size : t -> int

val insert : t -> entry -> t
(** Drop the entry if dominated; otherwise add it and prune the members
    it dominates.  Entries must share bench coverage to be comparable —
    the search only inserts one tier. *)

val of_entries : entry list -> t

val members : t -> entry list
(** Sorted by (runtime, nvm writes, hw bits, point id). *)

val schema_version : int

val entry_line : entry -> string
(** One frontier JSONL line (no timestamp — frontier files are
    deterministic outputs, diffable across runs). *)

val write_jsonl : string -> t -> unit
(** {!members} one per line; byte-identical for equal frontiers. *)
