type objectives = {
  runtime_ns : float;
  nvm_writes : float;
  hw_bits : int;
}

type entry = {
  point : Space.point;
  benches : string list;
  objs : objectives;
}

let dominates a b =
  a.runtime_ns <= b.runtime_ns
  && a.nvm_writes <= b.nvm_writes
  && a.hw_bits <= b.hw_bits
  && (a.runtime_ns < b.runtime_ns
     || a.nvm_writes < b.nvm_writes
     || a.hw_bits < b.hw_bits)

type t = entry list (* non-dominated, unordered *)

let empty = []
let size = List.length

let insert t e =
  if List.exists (fun m -> dominates m.objs e.objs) t then t
  else e :: List.filter (fun m -> not (dominates e.objs m.objs)) t

let of_entries entries = List.fold_left insert empty entries

let order a b =
  let c = Float.compare a.objs.runtime_ns b.objs.runtime_ns in
  if c <> 0 then c
  else
    let c = Float.compare a.objs.nvm_writes b.objs.nvm_writes in
    if c <> 0 then c
    else
      let c = Stdlib.compare a.objs.hw_bits b.objs.hw_bits in
      if c <> 0 then c else Space.compare a.point b.point

let members t = List.sort order t

let schema_version = 1

let entry_line e =
  Printf.sprintf
    "{\"schema_version\":%d,\"id\":%s,%s,\"benches\":[%s],\
     \"runtime_ns\":%.17g,\"nvm_writes\":%.17g,\"hw_bits\":%d}"
    schema_version
    (Sweep_obs.Event.json_string (Space.id e.point))
    (Space.json_fields e.point)
    (String.concat ","
       (List.map Sweep_obs.Event.json_string (List.sort Stdlib.compare e.benches)))
    e.objs.runtime_ns e.objs.nvm_writes e.objs.hw_bits

let write_jsonl path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter
        (fun e ->
          output_string oc (entry_line e);
          output_char oc '\n')
        (members t))
