module Trace = Sweep_energy.Power_trace
module Config = Sweep_machine.Config
module Pipeline = Sweep_compiler.Pipeline
module Layout = Sweep_isa.Layout
module Jobs = Sweep_exp.Jobs
module Json = Sweep_analyze.Json

type point = {
  cache_bytes : int;
  assoc : int;
  buffer_entries : int;
  store_cap : int;
  max_unroll : int;
  farads : float;
  trace : Trace.kind;
}

let paper_point =
  {
    cache_bytes = 4096;
    assoc = 2;
    buffer_entries = 64;
    store_cap = 64;
    max_unroll = 4;
    farads = 470e-9;
    trace = Trace.Rf_office;
  }

type t = {
  cache_bytes : int list;
  assoc : int list;
  buffer_entries : int list;
  store_cap : int list;
  max_unroll : int list;
  farads : float list;
  traces : Trace.kind list;
}

(* The pinned matrix: every axis brackets the paper's choice.  Capacitors
   below 470 nF are excluded — the EH model cannot guarantee forward
   progress for 64-store regions there, and a Stagnation point teaches
   the frontier nothing.  Likewise store caps at or below the region
   former's checkpoint reserve (18 slots), which it rejects outright. *)
let default =
  {
    cache_bytes = [ 2048; 4096; 8192 ];
    assoc = [ 1; 2 ];
    buffer_entries = [ 32; 64; 128 ];
    store_cap = [ 24; 64 ];
    max_unroll = [ 1; 4 ];
    farads = [ 470e-9; 1e-6 ];
    traces = [ Trace.Rf_office ];
  }

let valid (p : point) =
  p.buffer_entries > 0 && p.max_unroll > 0
  && p.farads > 0.0
  && p.store_cap > Sweep_compiler.Regions.ckpt_reserve
  && p.store_cap <= p.buffer_entries
  && Config.valid_geometry ~size:p.cache_bytes ~assoc:p.assoc

let trace_index k =
  let rec find i = function
    | [] -> -1
    | k' :: rest -> if k' = k then i else find (i + 1) rest
  in
  find 0 Trace.all_kinds

let compare (a : point) (b : point) =
  let c = Stdlib.compare (a.cache_bytes, a.assoc) (b.cache_bytes, b.assoc) in
  if c <> 0 then c
  else
    let c =
      Stdlib.compare
        (a.buffer_entries, a.store_cap, a.max_unroll)
        (b.buffer_entries, b.store_cap, b.max_unroll)
    in
    if c <> 0 then c
    else
      let c = Stdlib.compare a.farads b.farads in
      if c <> 0 then c
      else Stdlib.compare (trace_index a.trace) (trace_index b.trace)

let points t =
  let acc = ref [] in
  List.iter
    (fun cache_bytes ->
      List.iter
        (fun assoc ->
          List.iter
            (fun buffer_entries ->
              List.iter
                (fun store_cap ->
                  List.iter
                    (fun max_unroll ->
                      List.iter
                        (fun farads ->
                          List.iter
                            (fun trace ->
                              let p =
                                { cache_bytes; assoc; buffer_entries;
                                  store_cap; max_unroll; farads; trace }
                              in
                              if valid p then acc := p :: !acc)
                            t.traces)
                        t.farads)
                    t.max_unroll)
                t.store_cap)
            t.buffer_entries)
        t.assoc)
    t.cache_bytes;
  List.sort_uniq compare !acc

let farads_label f =
  if f >= 1e-3 then Printf.sprintf "%gmF" (f /. 1e-3)
  else if f >= 1e-6 then Printf.sprintf "%guF" (f /. 1e-6)
  else Printf.sprintf "%gnF" (f /. 1e-9)

let label (p : point) =
  Printf.sprintf "tune:c%da%de%ds%du%d" p.cache_bytes p.assoc p.buffer_entries
    p.store_cap p.max_unroll

let id (p : point) =
  Printf.sprintf "c%da%de%ds%du%d-%s-%s" p.cache_bytes p.assoc p.buffer_entries
    p.store_cap p.max_unroll (farads_label p.farads)
    (Trace.kind_name p.trace)

let setting (p : point) =
  let config =
    Config.with_buffer_entries
      (Config.with_geometry Config.default ~size:p.cache_bytes ~assoc:p.assoc)
      p.buffer_entries
  in
  let options =
    Pipeline.options_for ~farads:p.farads ~store_threshold:p.store_cap
      ~max_unroll:p.max_unroll ()
  in
  Sweep_exp.Exp_common.setting ~label:(label p) ~config ~options
    Sweep_sim.Harness.Sweep

let power (p : point) = Jobs.harvested ~farads:p.farads p.trace

let job ?scale p bench = Jobs.job ~exp:"tune" ?scale (setting p) ~power:(power p) bench

(* Matches Exp_hwcost: the §6.9 accounting, extended with the cache SRAM
   itself since cache geometry is an axis here. *)
let hw_bits (p : point) =
  let lines = p.cache_bytes / Layout.line_bytes in
  let cache_bits = (p.cache_bytes * 8) + (32 * lines) in
  let buffer_count = Config.default.Config.buffer_count in
  let buffer_bits =
    buffer_count * p.buffer_entries * ((Layout.line_bytes * 8) + 32)
  in
  let control_bits = buffer_count + (2 * buffer_count) + (2 * lines) in
  cache_bits + buffer_bits + control_bits

let trace_of_name s =
  List.find_opt (fun k -> Trace.kind_name k = s) Trace.all_kinds

let json_fields (p : point) =
  Printf.sprintf
    "\"cache_bytes\":%d,\"assoc\":%d,\"buffer_entries\":%d,\"store_cap\":%d,\
     \"max_unroll\":%d,\"farads\":%.17g,\"trace\":%s"
    p.cache_bytes p.assoc p.buffer_entries p.store_cap p.max_unroll p.farads
    (Sweep_obs.Event.json_string (Trace.kind_name p.trace))

let of_json j =
  let ( let* ) = Option.bind in
  let* cache_bytes = Json.int_member "cache_bytes" j in
  let* assoc = Json.int_member "assoc" j in
  let* buffer_entries = Json.int_member "buffer_entries" j in
  let* store_cap = Json.int_member "store_cap" j in
  let* max_unroll = Json.int_member "max_unroll" j in
  let* farads = Json.float_member "farads" j in
  let* trace = Option.bind (Json.string_member "trace" j) trace_of_name in
  Some { cache_bytes; assoc; buffer_entries; store_cap; max_unroll; farads; trace }
