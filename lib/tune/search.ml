module Jobs = Sweep_exp.Jobs
module Executor = Sweep_exp.Executor
module Results = Sweep_exp.Results
module Metrics = Sweep_obs.Metrics
module Event = Sweep_obs.Event
module Sink = Sweep_obs.Sink
module Rng = Sweep_util.Rng

type strategy = Grid | Random | Halving

let strategy_name = function
  | Grid -> "grid"
  | Random -> "random"
  | Halving -> "halving"

let strategy_of_name = function
  | "grid" -> Some Grid
  | "random" -> Some Random
  | "halving" -> Some Halving
  | _ -> None

type params = {
  space : Space.t;
  strategy : strategy;
  budget : int;
  seed : int;
  scale : float;
  ladder : string list list;
  early_stop : float option;
}

let default_ladder =
  [ [ "sha" ]; [ "dijkstra"; "fft" ]; [ "adpcmdec"; "gsmdec"; "susans" ] ]

let default_params =
  {
    space = Space.default;
    strategy = Halving;
    budget = 200;
    seed = 42;
    scale = 0.2;
    ladder = default_ladder;
    early_stop = None;
  }

type outcome = {
  frontier : Frontier.t;
  tier : int;
  tier_benches : string list;
  tier_points : int;
  scheduled : int;
  executed : int;
  cached : int;
  failed_points : (Space.point * string) list;
}

exception Interrupted of { executed : int }

let m_scheduled = Metrics.counter "tune.cells_scheduled"
let m_executed = Metrics.counter "tune.cells_executed"
let m_cached = Metrics.counter "tune.cells_cached"
let m_pruned = Metrics.counter "tune.cells_pruned"
let m_rounds = Metrics.counter "tune.rounds"
let m_failed = Metrics.counter "tune.points_failed"
let m_frontier = Metrics.gauge "tune.frontier_size"
let wall_ns () = Unix.gettimeofday () *. 1e9

(* The ladder every strategy actually walks: [Halving] climbs the rungs,
   [Grid]/[Random] run the flattened ladder as a single rung.  Benches
   repeated across rungs are dropped — each rung lists only its fresh
   benches. *)
let rungs params =
  let dedup benches =
    List.fold_left
      (fun acc b -> if List.mem b acc then acc else acc @ [ b ])
      [] benches
  in
  match params.strategy with
  | Grid | Random -> [ dedup (List.concat params.ladder) ]
  | Halving ->
      let seen = ref [] in
      List.filter_map
        (fun rung ->
          let fresh =
            List.filter (fun b -> not (List.mem b !seen)) (dedup rung)
          in
          seen := !seen @ fresh;
          if fresh = [] then None else Some fresh)
        params.ladder

let initial_candidates params =
  let pts = Space.points params.space in
  match params.strategy with
  | Grid | Halving -> pts
  | Random ->
      let arr = Array.of_list pts in
      Rng.shuffle (Rng.create params.seed) arr;
      Array.to_list arr

let plan params =
  let rungs = rungs params in
  let cands = initial_candidates params in
  match params.strategy with
  | Grid | Random ->
      let per_point =
        match rungs with [ benches ] -> List.length benches | _ -> 1
      in
      let afford = if per_point = 0 then 0 else params.budget / per_point in
      let n = min afford (List.length cands) in
      (List.filteri (fun i _ -> i < n) cands, n * per_point)
  | Halving ->
      (* Worst case: every candidate survives every promotion until the
         budget runs dry. *)
      (cands, min params.budget (List.length cands * List.length (List.concat rungs)))

(* ------------------------------------------------------------------ *)
(* Evaluation context: journal-backed cell cache + budget accounting.  *)

type ctx = {
  params : params;
  cells : (string, Journal.cell) Hashtbl.t; (* job key -> result *)
  oc : out_channel;
  workers : int option;
  kill_after : int option;
  exec_config : Executor.config option;
  mutable scheduled : int;
  mutable executed : int;
  mutable cached : int;
  mutable round : int;
  scheduled_keys : (string, unit) Hashtbl.t;
}

let cell_key ctx p bench = Jobs.key (Space.job ~scale:ctx.params.scale p bench)

(* Journal checkpoint granularity: cells executed between journal
   flushes.  Large enough to keep the domain pool busy, small enough
   that a crash forfeits little work. *)
let chunk_cells = 16

let remaining ctx = ctx.params.budget - ctx.scheduled

(* Evaluate points x benches.  Points are re-sorted canonically so the
   journal (and every event stream) is independent of promotion order;
   cells already journalled are charged to the budget but not re-run. *)
let evaluate ctx points benches =
  let points = List.sort Space.compare points in
  let cells =
    List.concat_map
      (fun p -> List.map (fun b -> (p, b, cell_key ctx p b)) benches)
      points
  in
  ctx.round <- ctx.round + 1;
  if Metrics.enabled () then Metrics.inc m_rounds;
  if Sink.on () then
    Sink.emit ~ns:(wall_ns ())
      (Event.Tune_round
         {
           strategy = strategy_name ctx.params.strategy;
           round = ctx.round;
           points = List.length points;
           benches = List.length benches;
         });
  let missing =
    List.filter (fun (_, _, key) -> not (Hashtbl.mem ctx.cells key)) cells
  in
  let n_missing = List.length missing in
  ctx.scheduled <- ctx.scheduled + List.length cells;
  ctx.cached <- ctx.cached + (List.length cells - n_missing);
  if Metrics.enabled () then begin
    Metrics.add m_scheduled (List.length cells);
    Metrics.add m_cached (List.length cells - n_missing)
  end;
  (* Execute in canonical-order chunks, journalling after each, so a
     crash mid-rung loses at most one chunk and [kill_after] has chunk
     (not rung) granularity. *)
  let record budgets (p, bench, key) =
    let cell =
      match Results.find key with
      | Some s ->
          let completed = s.Results.outcome.Sweep_sim.Driver.completed in
          let error =
            match (completed, List.assoc_opt key budgets) with
            | false, Some b ->
                if Metrics.enabled () then Metrics.inc m_pruned;
                if Sink.on () then
                  Sink.emit ~ns:(wall_ns ())
                    (Event.Tune_prune { key; budget_ns = b });
                Printf.sprintf "early-stopped: dominated at %.17g ns budget" b
            | _ -> ""
          in
          {
            Journal.point = p;
            bench;
            scale = ctx.params.scale;
            key;
            runtime_ns = Sweep_sim.Driver.total_ns s.Results.outcome;
            nvm_writes = s.Results.nvm_writes;
            completed;
            failed = false;
            error;
          }
      | None ->
          let error =
            match
              List.find_opt
                (fun f -> f.Results.key = key)
                (Results.failures ())
            with
            | Some f -> f.Results.error
            | None -> "no result recorded"
          in
          {
            Journal.point = p;
            bench;
            scale = ctx.params.scale;
            key;
            runtime_ns = 0.0;
            nvm_writes = 0;
            completed = false;
            failed = true;
            error;
          }
    in
    Journal.append ctx.oc cell;
    Hashtbl.replace ctx.cells key cell
  in
  (* Early-stop budgets are frozen per chunk from journalled state only
     (best completed runtime per bench over [ctx.cells]), so they are
     identical across worker counts and kill/resume: within a chunk no
     cell's budget depends on another cell of the same chunk, and the
     journal advances in whole canonical chunks. *)
  let chunk_budgets chunk =
    match ctx.params.early_stop with
    | None -> []
    | Some margin ->
        let best = Hashtbl.create 8 in
        Hashtbl.iter
          (fun _ c ->
            if c.Journal.completed && not c.Journal.failed then
              match Hashtbl.find_opt best c.Journal.bench with
              | Some b when b <= c.Journal.runtime_ns -> ()
              | _ -> Hashtbl.replace best c.Journal.bench c.Journal.runtime_ns)
          ctx.cells;
        List.filter_map
          (fun (_, b, key) ->
            Option.map
              (fun best_ns -> (key, margin *. best_ns))
              (Hashtbl.find_opt best b))
          chunk
  in
  let rec chunks = function
    | [] -> ()
    | rest ->
        let chunk = List.filteri (fun i _ -> i < chunk_cells) rest in
        let rest = List.filteri (fun i _ -> i >= chunk_cells) rest in
        let budgets = chunk_budgets chunk in
        Executor.execute ?workers:ctx.workers ?config:ctx.exec_config
          ~budget:(fun j -> List.assoc_opt (Jobs.key j) budgets)
          (List.map
             (fun (p, b, _) -> Space.job ~scale:ctx.params.scale p b)
             chunk);
        List.iter (record budgets) chunk;
        ctx.executed <- ctx.executed + List.length chunk;
        if Metrics.enabled () then Metrics.add m_executed (List.length chunk);
        (match ctx.kill_after with
        | Some n when n >= 0 && ctx.executed >= n ->
            raise (Interrupted { executed = ctx.executed })
        | _ -> ());
        chunks rest
  in
  chunks missing;
  List.iter
    (fun (_, _, key) ->
      Hashtbl.replace ctx.scheduled_keys key ();
      let cached = not (List.exists (fun (_, _, k) -> k = key) missing) in
      if Sink.on () then
        Sink.emit ~ns:(wall_ns ()) (Event.Tune_eval { key; cached }))
    cells

(* ------------------------------------------------------------------ *)
(* Objectives and Pareto ranking over evaluated cells.                 *)

let geomean = function
  | [] -> 0.0
  | xs ->
      let n = float_of_int (List.length xs) in
      exp (List.fold_left (fun acc x -> acc +. log x) 0.0 xs /. n)

(* [Ok objs] when every (point, bench) cell succeeded; [Error why]
   carries the first failure (benches in ladder order). *)
let point_result ctx p benches =
  let rec collect acc = function
    | [] -> Ok (List.rev acc)
    | b :: rest -> (
        match Hashtbl.find_opt ctx.cells (cell_key ctx p b) with
        | None -> Error (Printf.sprintf "%s: not evaluated" b)
        | Some c when c.Journal.failed ->
            Error (Printf.sprintf "%s: %s" b c.Journal.error)
        | Some c when not c.Journal.completed ->
            let why =
              if c.Journal.error <> "" then c.Journal.error
              else "did not complete"
            in
            Error (Printf.sprintf "%s: %s" b why)
        | Some c -> collect (c :: acc) rest)
  in
  match collect [] benches with
  | Error _ as e -> e
  | Ok cells ->
      let runtimes = List.map (fun c -> c.Journal.runtime_ns) cells in
      let writes =
        List.fold_left (fun acc c -> acc +. float_of_int c.Journal.nvm_writes) 0.0 cells
      in
      Ok
        {
          Frontier.runtime_ns = geomean runtimes;
          nvm_writes = writes;
          hw_bits = Space.hw_bits p;
        }

(* Pareto ranks by frontier peeling: rank 0 is the frontier of the set,
   rank 1 the frontier of the remainder, and so on. *)
let pareto_ranks entries =
  let rec peel rank acc = function
    | [] -> acc
    | pool ->
        let front, rest =
          List.partition
            (fun (_, objs) ->
              not
                (List.exists
                   (fun (_, objs') -> Frontier.dominates objs' objs)
                   pool))
            pool
        in
        (* A pool of mutually-dominating duplicates cannot occur (objs
           include distinct hw bits), but guard against looping. *)
        let front, rest = if front = [] then (pool, []) else (front, rest) in
        peel (rank + 1)
          (acc @ List.map (fun (p, objs) -> (rank, p, objs)) front)
          rest
  in
  peel 0 [] entries

(* Successive-halving promotion: keep every rank-0 point, topped up to
   half the field by (rank, runtime, writes, point) order. *)
let promote ranked =
  let ordered =
    List.sort
      (fun (ra, pa, oa) (rb, pb, ob) ->
        let c = Stdlib.compare ra rb in
        if c <> 0 then c
        else
          let c = Float.compare oa.Frontier.runtime_ns ob.Frontier.runtime_ns in
          if c <> 0 then c
          else
            let c = Float.compare oa.Frontier.nvm_writes ob.Frontier.nvm_writes in
            if c <> 0 then c else Space.compare pa pb)
      ranked
  in
  let n = List.length ordered in
  let rank0 = List.length (List.filter (fun (r, _, _) -> r = 0) ordered) in
  let keep = max rank0 ((n + 1) / 2) in
  List.filteri (fun i _ -> i < keep) ordered
  |> List.map (fun (_, p, _) -> p)

let survivors ctx cands covered =
  List.filter_map
    (fun p ->
      match point_result ctx p covered with
      | Ok objs -> Some (p, objs)
      | Error _ -> None)
    cands

(* ------------------------------------------------------------------ *)

let failed_points ctx =
  Hashtbl.fold
    (fun key cell acc ->
      if
        Hashtbl.mem ctx.scheduled_keys key
        && (cell.Journal.failed || not cell.Journal.completed)
      then
        let err =
          if cell.Journal.failed || cell.Journal.error <> "" then
            Printf.sprintf "%s: %s" cell.Journal.bench cell.Journal.error
          else Printf.sprintf "%s: did not complete" cell.Journal.bench
        in
        (cell.Journal.point, err) :: acc
      else acc)
    ctx.cells []
  |> List.sort (fun (pa, ea) (pb, eb) ->
         let c = Space.compare pa pb in
         if c <> 0 then c else Stdlib.compare ea eb)
  |> List.fold_left
       (fun acc (p, e) ->
         match acc with
         | (p', _) :: _ when Space.compare p p' = 0 -> acc
         | _ -> (p, e) :: acc)
       []
  |> List.rev

let search ctx =
  let rungs = rungs ctx.params in
  let n_rungs = List.length rungs in
  let rec go k cands covered =
    if k >= n_rungs then (k - 1, cands, covered)
    else
      let fresh = List.nth rungs k in
      let cost = List.length fresh in
      let cands =
        if k = 0 then cands
        else
          promote
            (pareto_ranks (survivors ctx cands covered))
      in
      let afford = if cost = 0 then List.length cands else remaining ctx / cost in
      let n = min afford (List.length cands) in
      let cands = List.filteri (fun i _ -> i < n) cands in
      if cands = [] then (k - 1, [], covered)
      else begin
        evaluate ctx cands fresh;
        let covered = covered @ fresh in
        go (k + 1) cands covered
      end
  in
  let tier, cands, covered = go 0 (initial_candidates ctx.params) [] in
  let tier_benches = List.sort Stdlib.compare covered in
  let entries =
    if covered = [] then []
    else
      (* Recompute survivors at the final coverage: go's [cands] at an
         early-stop tier is the truncated-to-empty list, so fall back to
         every point evaluated on all covered benches. *)
      let pool =
        if cands <> [] then cands
        else
          Hashtbl.fold
            (fun _ c acc ->
              if List.exists (fun p -> Space.compare p c.Journal.point = 0) acc
              then acc
              else c.Journal.point :: acc)
            ctx.cells []
      in
      survivors ctx pool tier_benches
      |> List.map (fun (p, objs) ->
             { Frontier.point = p; benches = tier_benches; objs })
  in
  let frontier = Frontier.of_entries entries in
  if Metrics.enabled () then begin
    Metrics.set m_frontier (float_of_int (Frontier.size frontier));
    Metrics.add m_failed (List.length (failed_points ctx))
  end;
  if Sink.on () then
    Sink.emit ~ns:(wall_ns ())
      (Event.Tune_frontier
         { size = Frontier.size frontier; evals = ctx.scheduled });
  {
    frontier;
    tier;
    tier_benches;
    tier_points = List.length entries;
    scheduled = ctx.scheduled;
    executed = ctx.executed;
    cached = ctx.cached;
    failed_points = failed_points ctx;
  }

let run ?workers ?kill_after ?exec_config ~journal params =
  match Journal.load journal with
  | Error e -> Error e
  | Ok (cells0, warnings) ->
      let cells = Hashtbl.create 256 in
      List.iter
        (fun c ->
          if not (Hashtbl.mem cells c.Journal.key) then
            Hashtbl.add cells c.Journal.key c)
        cells0;
      let oc =
        open_out_gen [ Open_wronly; Open_append; Open_creat ] 0o644 journal
      in
      let ctx =
        {
          params;
          cells;
          oc;
          workers;
          kill_after;
          exec_config;
          scheduled = 0;
          executed = 0;
          cached = 0;
          round = 0;
          scheduled_keys = Hashtbl.create 256;
        }
      in
      Fun.protect
        ~finally:(fun () -> close_out ctx.oc)
        (fun () -> Ok (search ctx, warnings))
