(** Typed design space over SweepCache's hardware and compiler knobs.

    A {!point} is one candidate system: cache geometry, persist-buffer
    capacity, the compiler's region store cap and unroll factor, the
    capacitor, and the ambient power trace — everything the paper's §6
    sweeps by hand.  A {!t} is one list of candidate values per axis;
    {!points} is its cartesian product filtered by {!valid}, in a
    canonical order that every search strategy and report shares, so
    output is independent of worker count. *)

type point = {
  cache_bytes : int;   (** data-cache size; sets = bytes / (assoc * 64) *)
  assoc : int;         (** cache ways *)
  buffer_entries : int;(** persist-buffer capacity (the paper's 64×64 B) *)
  store_cap : int;     (** compiler region store threshold (§4.1) *)
  max_unroll : int;    (** loop-unroll factor cap; 1 disables unrolling *)
  farads : float;      (** storage capacitor *)
  trace : Sweep_energy.Power_trace.kind;  (** ambient power *)
}

val paper_point : point
(** The configuration the paper evaluates: 4 kB 2-way cache, 64-entry
    buffers, store cap 64, unroll 4, 470 nF, RFOffice. *)

type t = {
  cache_bytes : int list;
  assoc : int list;
  buffer_entries : int list;
  store_cap : int list;
  max_unroll : int list;
  farads : float list;
  traces : Sweep_energy.Power_trace.kind list;
}

val default : t
(** The pinned exploration matrix (120 valid points around
    {!paper_point}) that [sweeptune explore] searches by default. *)

val valid : point -> bool
(** Constraints that make a point simulable: the store cap must exceed
    the region former's checkpoint reserve
    ({!Sweep_compiler.Regions.ckpt_reserve}) and fit the persist buffer
    (a region's quarantined stores are sealed into one buffer), the
    cache geometry must be accepted by
    {!Sweep_machine.Config.valid_geometry}, and every knob positive. *)

val compare : point -> point -> int
(** Canonical total order (axis by axis); ties only between equal
    points. *)

val points : t -> point list
(** Valid cartesian product, sorted by {!compare} and deduplicated. *)

val id : point -> string
(** Compact stable identity, e.g. ["c4096a2e64s64u4-470nF-RFOffice"].
    Injective over valid points. *)

val label : point -> string
(** The {!Sweep_exp.Exp_common.setting} label (the non-power knobs);
    together with the job's power id it makes point×bench job keys
    unique. *)

val setting : point -> Sweep_exp.Exp_common.setting
(** SweepCache (empty-bit) setting for the point: machine config via
    {!Sweep_machine.Config.with_geometry}/[with_buffer_entries],
    compiler options via {!Sweep_compiler.Pipeline.options_for} (the
    EH-model instruction cap follows the capacitor axis). *)

val power : point -> Sweep_exp.Jobs.power_spec

val job : ?scale:float -> point -> string -> Sweep_exp.Jobs.t
(** The declarative job for one (point, bench) cell, tagged
    [exp:"tune"] — its key is what the journal and the results store
    dedup on. *)

val hw_bits : point -> int
(** Deterministic hardware-cost model (the Pareto cost axis): cache SRAM
    (data + 32-bit tag per line) + the two NVM-resident persist buffers
    (512 b data + 32 b address per entry) + SweepCache's control state
    (empty/phaseComplete bits and the two WBI tables), matching the
    §6.9 accounting. *)

val trace_of_name : string -> Sweep_energy.Power_trace.kind option
(** Inverse of {!Sweep_energy.Power_trace.kind_name}. *)

val json_fields : point -> string
(** The point as JSON object fields (no braces) — the journal/frontier
    line fragment. *)

val of_json : Sweep_analyze.Json.t -> point option
(** Rebuild a point from a decoded journal/frontier object (the fields
    {!json_fields} emits). *)
