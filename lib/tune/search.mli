(** Seeded search strategies over a {!Space}, evaluated on the
    {!Sweep_exp.Executor} domain pool.

    Three strategies:
    - [Grid] — canonical-order exhaustive walk; the budget truncates to
      the points whose full bench ladder fits.
    - [Random] — like [Grid] on a seeded shuffle of the points, for
      spaces too large to walk.
    - [Halving] — successive halving: every candidate is evaluated on
      the first (cheapest) bench rung; survivors — all Pareto-rank-0
      points, topped up to half the field by scalar runtime — are
      promoted to the next rung's additional benches, and so on up the
      ladder.  Shared cells dedup through {!Sweep_exp.Jobs} keys, so a
      point pays each bench at most once however often it is promoted.

    The budget counts {e scheduled} cells — journal-cached cells count
    too, so a resumed search walks the exact decision sequence of an
    uninterrupted one and converges to the identical frontier.  All
    ordering is canonical ({!Space.compare}); worker count affects
    wall-clock only. *)

type strategy = Grid | Random | Halving

val strategy_name : strategy -> string
val strategy_of_name : string -> strategy option

type params = {
  space : Space.t;
  strategy : strategy;
  budget : int;   (** max scheduled (point, bench) cells *)
  seed : int;     (** drives [Random]'s shuffle *)
  scale : float;  (** workload scale for every cell *)
  ladder : string list list;
      (** bench rungs, cheapest first; [Grid]/[Random] run the
          flattened ladder *)
  early_stop : float option;
      (** kill dominated cells: [Some margin] gracefully stops any cell
          once its simulated time exceeds [margin *.] the best completed
          runtime journalled for the same bench.  Budgets are frozen per
          execution chunk from journalled state only, so the decision
          sequence — and the journal — stays byte-identical across
          worker counts and kill/resume.  Stopped cells are journalled
          as [completed = false] with an ["early-stopped: ..."] error,
          emit {!Sweep_obs.Event.Tune_prune}, and are excluded from the
          frontier like any other incomplete cell.  [None] (the
          default) reproduces the non-early-stop search exactly. *)
}

val default_ladder : string list list
(** [[sha]; [dijkstra; fft]; [adpcmdec; gsmdec; susans]] — rung sizes
    1/2/3 from the 10-benchmark subset. *)

val default_params : params
(** Pinned matrix, [Halving], budget 200, seed 42, scale 0.2, no
    early stop. *)

type outcome = {
  frontier : Frontier.t;
  tier : int;                   (** deepest completed rung index *)
  tier_benches : string list;   (** cumulative benches at that tier *)
  tier_points : int;            (** candidates evaluated at that tier *)
  scheduled : int;              (** cells charged against the budget *)
  executed : int;               (** cells actually simulated this run *)
  cached : int;                 (** cells answered by the journal *)
  failed_points : (Space.point * string) list;
      (** points excluded from the frontier (Stagnation, guards), with
          the first error; canonical order *)
}

exception Interrupted of { executed : int }
(** Raised by [run] when [kill_after] fires (the CI resume-equivalence
    crash); the journal holds every batch completed so far. *)

val plan : params -> Space.point list * int
(** The strategy's initial candidate list (budget-truncated for
    [Grid]/[Random]) and the worst-case cell count — the dry run behind
    [sweeptune plan]. *)

val run :
  ?workers:int ->
  ?kill_after:int ->
  ?exec_config:Sweep_exp.Executor.config ->
  journal:string ->
  params ->
  (outcome * string list, string) result
(** Execute the search, resuming from [journal] if it exists and
    appending every newly executed cell to it.  [kill_after n] aborts
    (with {!Interrupted}) at the first batch boundary where at least
    [n] cells have been simulated {e this run}.  [exec_config] is
    passed to every {!Sweep_exp.Executor.execute} chunk (live status,
    heartbeats, flight recorder, metrics export).  [Error] is a
    corrupt journal or an unwritable path; warnings surface torn
    journal lines. *)
