(** Hardware fault models for crash-consistency validation.

    All knobs default to off ({!none}); machines must behave
    byte-identically to the un-faulted model when handed {!none}.
    [torn_dma] is a *fault the design must survive* (partial line
    writes during the phase-3 DMA are healed by the idempotent
    re-drive); the stuck-bit and skip-restore knobs are *mutations*
    that break a recovery invariant on purpose, so the differential
    checker can prove it detects real bugs. *)

type t = {
  torn_dma : bool;      (** tear the in-flight DMA line on injected crash *)
  stuck_phase1 : bool;  (** phase1Complete reads 1 even when flush was cut *)
  stuck_phase2 : bool;  (** phase2Complete reads 1 even when drain was cut *)
  skip_restore : bool;  (** reboot skips the register/PC checkpoint reload *)
}

val none : t
val is_none : t -> bool

val to_string : t -> string
(** ["none"] or a [+]-joined list such as ["torn-dma+skip-restore"]. *)
