(** Runtime counters shared by all machine designs.

    Region histograms feed the Fig. 12 CDFs; buffer-search counters feed
    the §4.4 empty-bit analysis; persistence/wait times feed the §6.3
    parallelism-efficiency metric. *)

type floats = {
  mutable persistence_ns : float;   (** ΣT_p: region persistence latency *)
  mutable wait_ns : float;          (** ΣT_wait: structural-hazard stalls *)
  mutable waw_stall_ns : float;     (** §4.3 write-after-write stalls *)
  mutable backup_joules : float;
  mutable restore_joules : float;
}
(** All-float (flat) so hot-path writes never box. *)

type t = {
  mutable instructions : int;
  mutable loads : int;
  mutable stores : int;
  mutable regions : int;            (** Region_end executions *)
  mutable buffer_searches : int;    (** misses that searched a persist buffer *)
  mutable buffer_bypasses : int;    (** misses that skipped it via empty-bit *)
  mutable buffer_hits : int;        (** misses served from the buffer *)
  f : floats;                       (** time/energy accumulators *)
  mutable backup_events : int;
  mutable restore_events : int;
  mutable replayed_stores : int;    (** ReplayCache recovery work *)
  mutable buffer_peak : int;        (** max persist-buffer occupancy seen *)
  region_size_hist : int array;     (** index = instruction count, capped *)
  region_store_hist : int array;    (** index = store count, capped *)
  mutable cur_region_instrs : int;
  mutable cur_region_stores : int;
}

val create : unit -> t

val note_instr : t -> unit
val note_load : t -> unit
val note_store : t -> unit

val note_region_end : t -> unit
(** Records the current region's size/store count in the histograms and
    resets the running counters. *)

val reset_region_counters : t -> unit
(** On power failure: the interrupted region's partial counts are
    dropped (it will re-execute). *)

val parallelism_efficiency : t -> float
(** ((ΣT_p − ΣT_wait) / ΣT_p) × 100; 100.0 when no persistence happened. *)

val publish : ?labels:(string * string) list -> t -> unit
(** Add this run's counters into the {!Sweep_obs.Metrics} registry
    (prefix [sim.]); counters accumulate across runs, per-run ratios go
    to histograms.  [labels] split the series. *)

val hist_cdf : int array -> (int * float) list
(** Cumulative distribution points (value, percent ≤ value) of a
    histogram, skipping empty prefix/suffix. *)
