(** Common interface implemented by every architecture model.

    The intermittent-execution driver ({!Sweep_sim.Driver}) talks to
    machines only through this signature, packed existentially in
    {!packed}. *)

module type S = sig
  type t

  val name : string

  val create : Config.t -> Sweep_isa.Program.t -> t
  (** Loads the program image into NVM (initial data, checkpoint-PC slot)
      and builds the design's volatile and nonvolatile structures. *)

  val cpu : t -> Cpu.t
  val nvm : t -> Sweep_mem.Nvm.t
  val cache : t -> Sweep_mem.Cache.t option
  val mstats : t -> Mstats.t

  val detector : t -> Sweep_energy.Detector.t
  (** The design's voltage detector (possibly overridden by config). *)

  val step : t -> unit
  (** Execute one instruction, leaving its cost in {!acc}.  The caller
      writes the current simulation time into [Acc.now] before stepping
      (passing it as a float argument would box it on every call). *)

  val acc : t -> Exec.Acc.t
  (** The machine's per-step cost accumulator.  Write [now] before and
      read [ns]/[joules] after each {!step}; the next step overwrites
      them.  Callers hoist this once before their cycle loop — the
      accumulator object is stable for the machine's lifetime. *)

  val halted : t -> bool

  val jit_backup_cost : t -> Cost.t option
  (** [Some cost] for JIT-checkpoint designs: what a backup would cost
      right now.  [None] for SweepCache (no JIT backup stage). *)

  val commit_jit_backup : t -> now_ns:float -> unit
  (** Perform the backup whose cost was just queried (the driver charges
      the cost and only commits when the energy sufficed). *)

  val continues_after_backup : bool
  (** NvMR keeps executing after a JIT backup instead of powering down. *)

  val on_power_failure : t -> now_ns:float -> unit
  (** Volatile state is lost.  Nonvolatile structures (NVM, persist
      buffers, backup shadows) survive. *)

  val on_reboot : t -> now_ns:float -> Cost.t
  (** Run the design's recovery protocol; returns its cost.  Afterwards
      the CPU holds a consistent architectural state and execution can
      resume via {!step}. *)

  val drain : t -> now_ns:float -> Cost.t
  (** Complete any background persistence after [Halt] (SweepCache's DMA
      queue, ReplayCache's pending clwbs) so the final NVM image is
      stable. *)
end

type packed = Packed : (module S with type t = 'a) * 'a -> packed

let name (Packed ((module M), _)) = M.name
let step (Packed ((module M), t)) = M.step t
let acc (Packed ((module M), t)) = M.acc t
let halted (Packed ((module M), t)) = M.halted t
let cpu (Packed ((module M), t)) = M.cpu t
let nvm (Packed ((module M), t)) = M.nvm t
let cache (Packed ((module M), t)) = M.cache t
let mstats (Packed ((module M), t)) = M.mstats t
let detector (Packed ((module M), t)) = M.detector t
let jit_backup_cost (Packed ((module M), t)) = M.jit_backup_cost t
let commit_jit_backup (Packed ((module M), t)) ~now_ns = M.commit_jit_backup t ~now_ns
let continues_after_backup (Packed ((module M), _)) = M.continues_after_backup
let on_power_failure (Packed ((module M), t)) ~now_ns = M.on_power_failure t ~now_ns
let on_reboot (Packed ((module M), t)) ~now_ns = M.on_reboot t ~now_ns
let drain (Packed ((module M), t)) ~now_ns = M.drain t ~now_ns
