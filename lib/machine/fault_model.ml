(* Hardware fault models for crash-consistency validation (checker
   only; every knob defaults to off so normal simulation and the bench
   baseline are untouched).

   [torn_dma] makes an injected power failure tear the in-flight
   persist-buffer DMA line: lines already past the DMA engine land
   whole, the line in flight lands as a prefix of its words.  Recovery
   must heal the tear by re-driving the buffer (full-line rewrites).

   [stuck_phase1] / [stuck_phase2] model a stuck-at-1
   phase1Complete / phase2Complete bit: recovery believes a phase
   finished that did not.  These are *mutations* — deliberate invariant
   breaks used to prove the differential checker is not silently green.

   [skip_restore] makes reboot skip reloading the checkpointed
   registers + PC (restart from program entry over persisted NVM
   state), the classic double-execution bug intermittent systems
   exist to prevent. *)

type t = {
  torn_dma : bool;
  stuck_phase1 : bool;
  stuck_phase2 : bool;
  skip_restore : bool;
}

let none =
  {
    torn_dma = false;
    stuck_phase1 = false;
    stuck_phase2 = false;
    skip_restore = false;
  }

let is_none t = t = none

let to_string t =
  if is_none t then "none"
  else
    String.concat "+"
      (List.filter_map
         (fun (on, name) -> if on then Some name else None)
         [
           (t.torn_dma, "torn-dma");
           (t.stuck_phase1, "stuck-phase1");
           (t.stuck_phase2, "stuck-phase2");
           (t.skip_restore, "skip-restore");
         ])
