module I = Sweep_isa.Instr
module D = Sweep_isa.Decoded
module E = Sweep_energy.Energy_config

(* Per-step cost accumulator.  All-float mutable records are flat
   (unboxed fields), so charging into one allocates nothing — unlike
   returning a fresh [Cost.t] per step.  The machine owns one [Acc.t];
   [step] resets it, the memory ops charge extra cost into it, and the
   caller reads the finalized totals after the call.

   The record also carries the simulation clock ([now]) and the
   finalization constants of the energy model: keeping every float the
   hot path touches inside one flat record means no float ever crosses a
   function boundary per step — the non-flambda compiler would box it
   there, and the cycle loop must stay allocation-free. *)
module Acc = struct
  type t = {
    mutable ns : float;
    mutable joules : float;
    mutable now : float;
        (** Simulation time at the start of the step; the driver writes
            it before calling [step], the memory ops read it. *)
    mutable cycle_ns : float;     (* finalization constants, set once *)
    mutable e_cycle : float;
    mutable e_stall_cycle : float;
  }

  let create () =
    {
      ns = 0.0;
      joules = 0.0;
      now = 0.0;
      cycle_ns = 0.0;
      e_cycle = 0.0;
      e_stall_cycle = 0.0;
    }

  let set_rates t (e : E.t) =
    t.cycle_ns <- E.cycle_ns e;
    t.e_cycle <- e.E.e_cycle;
    t.e_stall_cycle <- e.E.e_stall_cycle

  let charge t ~ns ~joules =
    t.ns <- t.ns +. ns;
    t.joules <- t.joules +. joules
end

(* The ops read the current simulation time from their machine's
   [Acc.now] rather than taking a float parameter — see above. *)
type mem_ops = {
  load : int -> int;
  store : int -> int -> unit;
  clwb : int -> unit;
  fence : unit -> unit;
  region_end : unit -> unit;
}

let nop_region_ops ops =
  {
    ops with
    clwb = (fun _ -> ());
    fence = (fun () -> ());
    region_end = (fun () -> ());
  }

(* Placeholder for two-phase machine construction: a machine record is
   created with [null_ops], then its real ops (closures over the
   machine) are patched in before anything steps. *)
let null_ops =
  {
    load = (fun _ -> 0);
    store = (fun _ _ -> ());
    clwb = (fun _ -> ());
    fence = (fun () -> ());
    region_end = (fun () -> ());
  }

(* Finalization shared by both interpreters.  [acc] holds the extra
   (memory-path) cost; add the 1-cycle base and the constant-active-
   power model: every nanosecond the core spends on an instruction —
   including memory stalls — burns stall power on top of the per-event
   energies the memory ops charged.  The grouping reproduces the old
   [base ++ { extra with joules = extra.joules +. time_power extra.ns }]
   bit-for-bit. *)
let[@inline] finalize (acc : Acc.t) =
  let extra_ns = acc.Acc.ns in
  if extra_ns = 0.0 then begin
    (* ALU/branch case: the stall term is exactly +0.0 (0/c*e with
       c > 0, e >= 0) and j +. 0.0 = j for the non-negative charge sum,
       so the general formula below reduces to this — minus the float
       division per instruction. *)
    acc.Acc.ns <- acc.Acc.cycle_ns;
    acc.Acc.joules <- acc.Acc.e_cycle +. acc.Acc.joules
  end
  else begin
    acc.Acc.ns <- acc.Acc.cycle_ns +. extra_ns;
    acc.Acc.joules <-
      acc.Acc.e_cycle
      +. (acc.Acc.joules
         +. (extra_ns /. acc.Acc.cycle_ns *. acc.Acc.e_stall_cycle))
  end

let step (cpu : Cpu.t) (dec : D.t) stats ops (acc : Acc.t) =
  if cpu.halted then begin
    acc.Acc.ns <- 0.0;
    acc.Acc.joules <- 0.0
  end
  else begin
    acc.Acc.ns <- 0.0;
    acc.Acc.joules <- 0.0;
    let regs = cpu.regs in
    let pc = cpu.pc in
    (* Operand indices were validated by Decoded.compile. *)
    let op = Array.unsafe_get dec.D.op pc in
    let x = Array.unsafe_get dec.D.x pc in
    let y = Array.unsafe_get dec.D.y pc in
    let z = Array.unsafe_get dec.D.z pc in
    Mstats.note_instr stats;
    let next = pc + 1 in
    (* Register accesses are unsafe for the same reason as the operand
       reads above: every register operand was checked against
       [Reg.count] by Decoded.compile, and [cpu.regs] always has exactly
       [Reg.count] slots, so the bounds checks would never fire. *)
    (* Opcode numbering from Sweep_isa.Decoded: 0-9 Bin, 10-19 Bini
       (Add Sub Mul Div Rem And Or Xor Shl Shr), 20-25 Set, 26-31 Br
       (Eq Ne Lt Le Gt Ge), then the op_* singletons in order. *)
    (match op with
    (* Bin *)
    | 0 ->
      Array.unsafe_set regs x (Array.unsafe_get regs y + Array.unsafe_get regs z);
      cpu.pc <- next
    | 1 ->
      Array.unsafe_set regs x (Array.unsafe_get regs y - Array.unsafe_get regs z);
      cpu.pc <- next
    | 2 ->
      Array.unsafe_set regs x (Array.unsafe_get regs y * Array.unsafe_get regs z);
      cpu.pc <- next
    | 3 ->
      let b = Array.unsafe_get regs z in
      Array.unsafe_set regs x (if b = 0 then 0 else Array.unsafe_get regs y / b);
      cpu.pc <- next
    | 4 ->
      let b = Array.unsafe_get regs z in
      Array.unsafe_set regs x (if b = 0 then 0 else Array.unsafe_get regs y mod b);
      cpu.pc <- next
    | 5 ->
      Array.unsafe_set regs x
        (Array.unsafe_get regs y land Array.unsafe_get regs z);
      cpu.pc <- next
    | 6 ->
      Array.unsafe_set regs x
        (Array.unsafe_get regs y lor Array.unsafe_get regs z);
      cpu.pc <- next
    | 7 ->
      Array.unsafe_set regs x
        (Array.unsafe_get regs y lxor Array.unsafe_get regs z);
      cpu.pc <- next
    | 8 ->
      Array.unsafe_set regs x
        (Array.unsafe_get regs y lsl (Array.unsafe_get regs z land 63));
      cpu.pc <- next
    | 9 ->
      Array.unsafe_set regs x
        (Array.unsafe_get regs y lsr (Array.unsafe_get regs z land 63));
      cpu.pc <- next
    (* Bini: z is the immediate *)
    | 10 -> Array.unsafe_set regs x (Array.unsafe_get regs y + z); cpu.pc <- next
    | 11 -> Array.unsafe_set regs x (Array.unsafe_get regs y - z); cpu.pc <- next
    | 12 -> Array.unsafe_set regs x (Array.unsafe_get regs y * z); cpu.pc <- next
    | 13 ->
      Array.unsafe_set regs x (if z = 0 then 0 else Array.unsafe_get regs y / z);
      cpu.pc <- next
    | 14 ->
      Array.unsafe_set regs x
        (if z = 0 then 0 else Array.unsafe_get regs y mod z);
      cpu.pc <- next
    | 15 -> Array.unsafe_set regs x (Array.unsafe_get regs y land z); cpu.pc <- next
    | 16 -> Array.unsafe_set regs x (Array.unsafe_get regs y lor z); cpu.pc <- next
    | 17 -> Array.unsafe_set regs x (Array.unsafe_get regs y lxor z); cpu.pc <- next
    | 18 ->
      Array.unsafe_set regs x (Array.unsafe_get regs y lsl (z land 63));
      cpu.pc <- next
    | 19 ->
      Array.unsafe_set regs x (Array.unsafe_get regs y lsr (z land 63));
      cpu.pc <- next
    (* Set *)
    | 20 ->
      Array.unsafe_set regs x
        (if Array.unsafe_get regs y = Array.unsafe_get regs z then 1 else 0);
      cpu.pc <- next
    | 21 ->
      Array.unsafe_set regs x
        (if Array.unsafe_get regs y <> Array.unsafe_get regs z then 1 else 0);
      cpu.pc <- next
    | 22 ->
      Array.unsafe_set regs x
        (if Array.unsafe_get regs y < Array.unsafe_get regs z then 1 else 0);
      cpu.pc <- next
    | 23 ->
      Array.unsafe_set regs x
        (if Array.unsafe_get regs y <= Array.unsafe_get regs z then 1 else 0);
      cpu.pc <- next
    | 24 ->
      Array.unsafe_set regs x
        (if Array.unsafe_get regs y > Array.unsafe_get regs z then 1 else 0);
      cpu.pc <- next
    | 25 ->
      Array.unsafe_set regs x
        (if Array.unsafe_get regs y >= Array.unsafe_get regs z then 1 else 0);
      cpu.pc <- next
    (* Br: x,y compared; z is the target *)
    | 26 ->
      cpu.pc <-
        (if Array.unsafe_get regs x = Array.unsafe_get regs y then z else next)
    | 27 ->
      cpu.pc <-
        (if Array.unsafe_get regs x <> Array.unsafe_get regs y then z else next)
    | 28 ->
      cpu.pc <-
        (if Array.unsafe_get regs x < Array.unsafe_get regs y then z else next)
    | 29 ->
      cpu.pc <-
        (if Array.unsafe_get regs x <= Array.unsafe_get regs y then z else next)
    | 30 ->
      cpu.pc <-
        (if Array.unsafe_get regs x > Array.unsafe_get regs y then z else next)
    | 31 ->
      cpu.pc <-
        (if Array.unsafe_get regs x >= Array.unsafe_get regs y then z else next)
    (* 32 Movi / 33 Movl *)
    | 32 | 33 -> Array.unsafe_set regs x z; cpu.pc <- next
    (* 34 Mov *)
    | 34 -> Array.unsafe_set regs x (Array.unsafe_get regs y); cpu.pc <- next
    (* 35 Load / 36 Load_abs *)
    | 35 ->
      Mstats.note_load stats;
      Array.unsafe_set regs x (ops.load (Array.unsafe_get regs y + z));
      cpu.pc <- next
    | 36 ->
      Mstats.note_load stats;
      Array.unsafe_set regs x (ops.load z);
      cpu.pc <- next
    (* 37 Store / 38 Store_abs *)
    | 37 ->
      Mstats.note_store stats;
      ops.store (Array.unsafe_get regs y + z) (Array.unsafe_get regs x);
      cpu.pc <- next
    | 38 ->
      Mstats.note_store stats;
      ops.store z (Array.unsafe_get regs x);
      cpu.pc <- next
    (* 39 Jmp / 40 Jmp_reg / 41 Call *)
    | 39 -> cpu.pc <- z
    | 40 -> cpu.pc <- Array.unsafe_get regs x
    | 41 ->
      Array.unsafe_set regs Sweep_isa.Reg.link next;
      cpu.pc <- z
    (* 42 Clwb / 43 Clwb_abs *)
    | 42 ->
      ops.clwb (Array.unsafe_get regs x + z);
      cpu.pc <- next
    | 43 ->
      ops.clwb z;
      cpu.pc <- next
    (* 44 Fence *)
    | 44 ->
      ops.fence ();
      cpu.pc <- next
    (* 45 Region_end *)
    | 45 ->
      ops.region_end ();
      Mstats.note_region_end stats;
      cpu.pc <- next
    (* 46 Nop *)
    | 46 -> cpu.pc <- next
    (* 47 Halt *)
    | _ ->
      cpu.halted <- true;
      if Sweep_obs.Sink.on () then
        Sweep_obs.Sink.emit ~ns:acc.Acc.now Sweep_obs.Event.Halt);
    finalize acc
  end

(* The legacy variant-matching interpreter, kept as the semantic
   reference: it reads the undecoded [Program.t] directly, so the
   differential suite can pin the decoded dispatch above against it
   ([Config.reference_interp] switches a machine over wholesale). *)
let step_reference (cpu : Cpu.t) (prog : Sweep_isa.Program.t) stats ops
    (acc : Acc.t) =
  if cpu.halted then begin
    acc.Acc.ns <- 0.0;
    acc.Acc.joules <- 0.0
  end
  else begin
    acc.Acc.ns <- 0.0;
    acc.Acc.joules <- 0.0;
    let regs = cpu.regs in
    let ins = prog.code.(cpu.pc) in
    Mstats.note_instr stats;
    let next = cpu.pc + 1 in
    (match ins with
    | I.Movi (rd, n) ->
      regs.(rd) <- n;
      cpu.pc <- next
    | I.Movl (rd, idx) ->
      regs.(rd) <- idx;
      cpu.pc <- next
    | I.Mov (rd, rs) ->
      regs.(rd) <- regs.(rs);
      cpu.pc <- next
    | I.Bin (op, rd, a, b) ->
      regs.(rd) <- I.eval_binop op regs.(a) regs.(b);
      cpu.pc <- next
    | I.Bini (op, rd, a, n) ->
      regs.(rd) <- I.eval_binop op regs.(a) n;
      cpu.pc <- next
    | I.Set (c, rd, a, b) ->
      regs.(rd) <- (if I.eval_cond c regs.(a) regs.(b) then 1 else 0);
      cpu.pc <- next
    | I.Load (rd, rs, off) ->
      Mstats.note_load stats;
      regs.(rd) <- ops.load (regs.(rs) + off);
      cpu.pc <- next
    | I.Load_abs (rd, addr) ->
      Mstats.note_load stats;
      regs.(rd) <- ops.load addr;
      cpu.pc <- next
    | I.Store (rv, rs, off) ->
      Mstats.note_store stats;
      ops.store (regs.(rs) + off) regs.(rv);
      cpu.pc <- next
    | I.Store_abs (rv, addr) ->
      Mstats.note_store stats;
      ops.store addr regs.(rv);
      cpu.pc <- next
    | I.Br (c, a, b, target) ->
      cpu.pc <- (if I.eval_cond c regs.(a) regs.(b) then target else next)
    | I.Jmp target -> cpu.pc <- target
    | I.Jmp_reg r -> cpu.pc <- regs.(r)
    | I.Call target ->
      regs.(Sweep_isa.Reg.link) <- next;
      cpu.pc <- target
    | I.Clwb (rs, off) ->
      ops.clwb (regs.(rs) + off);
      cpu.pc <- next
    | I.Clwb_abs addr ->
      ops.clwb addr;
      cpu.pc <- next
    | I.Fence ->
      ops.fence ();
      cpu.pc <- next
    | I.Region_end ->
      ops.region_end ();
      Mstats.note_region_end stats;
      cpu.pc <- next
    | I.Nop -> cpu.pc <- next
    | I.Halt ->
      cpu.halted <- true;
      if Sweep_obs.Sink.on () then
        Sweep_obs.Sink.emit ~ns:acc.Acc.now Sweep_obs.Event.Halt);
    finalize acc
  end
