module I = Sweep_isa.Instr
module E = Sweep_energy.Energy_config

type mem_ops = {
  load : int -> float -> int * Cost.t;
  store : int -> int -> float -> Cost.t;
  clwb : int -> float -> Cost.t;
  fence : float -> Cost.t;
  region_end : float -> Cost.t;
}

let nop_region_ops ops =
  {
    ops with
    clwb = (fun _ _ -> Cost.zero);
    fence = (fun _ -> Cost.zero);
    region_end = (fun _ -> Cost.zero);
  }

let step config (cpu : Cpu.t) (prog : Sweep_isa.Program.t) stats ops ~now_ns =
  if cpu.halted then Cost.zero
  else begin
    let e = config.Config.energy in
    let base = Cost.make ~ns:(E.cycle_ns e) ~joules:e.E.e_cycle in
    (* Constant-active-power model: every nanosecond the core spends on
       an instruction — including memory stalls — burns stall power on
       top of the per-event energies the memory ops report. *)
    let time_power extra_ns =
      extra_ns /. E.cycle_ns e *. e.E.e_stall_cycle
    in
    let regs = cpu.regs in
    let ins = prog.code.(cpu.pc) in
    Mstats.note_instr stats;
    let next = cpu.pc + 1 in
    let extra =
      match ins with
      | I.Movi (rd, n) ->
        regs.(rd) <- n;
        cpu.pc <- next;
        Cost.zero
      | I.Movl (rd, idx) ->
        regs.(rd) <- idx;
        cpu.pc <- next;
        Cost.zero
      | I.Mov (rd, rs) ->
        regs.(rd) <- regs.(rs);
        cpu.pc <- next;
        Cost.zero
      | I.Bin (op, rd, a, b) ->
        regs.(rd) <- I.eval_binop op regs.(a) regs.(b);
        cpu.pc <- next;
        Cost.zero
      | I.Bini (op, rd, a, n) ->
        regs.(rd) <- I.eval_binop op regs.(a) n;
        cpu.pc <- next;
        Cost.zero
      | I.Set (c, rd, a, b) ->
        regs.(rd) <- (if I.eval_cond c regs.(a) regs.(b) then 1 else 0);
        cpu.pc <- next;
        Cost.zero
      | I.Load (rd, rs, off) ->
        Mstats.note_load stats;
        let v, c = ops.load (regs.(rs) + off) now_ns in
        regs.(rd) <- v;
        cpu.pc <- next;
        c
      | I.Load_abs (rd, addr) ->
        Mstats.note_load stats;
        let v, c = ops.load addr now_ns in
        regs.(rd) <- v;
        cpu.pc <- next;
        c
      | I.Store (rv, rs, off) ->
        Mstats.note_store stats;
        let c = ops.store (regs.(rs) + off) regs.(rv) now_ns in
        cpu.pc <- next;
        c
      | I.Store_abs (rv, addr) ->
        Mstats.note_store stats;
        let c = ops.store addr regs.(rv) now_ns in
        cpu.pc <- next;
        c
      | I.Br (c, a, b, target) ->
        cpu.pc <- (if I.eval_cond c regs.(a) regs.(b) then target else next);
        Cost.zero
      | I.Jmp target ->
        cpu.pc <- target;
        Cost.zero
      | I.Jmp_reg r ->
        cpu.pc <- regs.(r);
        Cost.zero
      | I.Call target ->
        regs.(Sweep_isa.Reg.link) <- next;
        cpu.pc <- target;
        Cost.zero
      | I.Clwb (rs, off) ->
        let c = ops.clwb (regs.(rs) + off) now_ns in
        cpu.pc <- next;
        c
      | I.Clwb_abs addr ->
        let c = ops.clwb addr now_ns in
        cpu.pc <- next;
        c
      | I.Fence ->
        let c = ops.fence now_ns in
        cpu.pc <- next;
        c
      | I.Region_end ->
        let c = ops.region_end now_ns in
        Mstats.note_region_end stats;
        cpu.pc <- next;
        c
      | I.Nop ->
        cpu.pc <- next;
        Cost.zero
      | I.Halt ->
        cpu.halted <- true;
        if Sweep_obs.Sink.on () then
          Sweep_obs.Sink.emit ~ns:now_ns Sweep_obs.Event.Halt;
        Cost.zero
    in
    Cost.( ++ ) base
      { extra with Cost.joules = extra.Cost.joules +. time_power extra.Cost.ns }
  end
