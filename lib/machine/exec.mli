(** Shared in-order instruction executor over the decoded opstream.

    Each design supplies its memory path as a {!mem_ops} record; the
    executor handles the ISA semantics, PC updates and base (1-cycle)
    timing, which are identical across designs.  Instruction fetch is a
    constant 1 cycle everywhere: the paper keeps the L1I as an NVM cache
    in every configuration, so fetch cost is common mode.

    Costing convention: the machine owns an {!Acc.t}; {!step} zeroes it,
    memory ops {!Acc.charge} their extra cost into it (computing any
    composite internally so float grouping matches the legacy [Cost.t]
    chains bit-for-bit), and [step] finalizes base + stall power in
    place.  The accumulator also carries the simulation clock and the
    finalization constants, so no float value crosses a function
    boundary on the hot path: callers write [Acc.now] before stepping
    and read [Acc.ns]/[Acc.joules] after, and a steady-state step
    performs zero minor-heap allocation when sinks are off. *)

(** Flat (all-float, hence unboxed-field) per-step cost accumulator. *)
module Acc : sig
  type t = {
    mutable ns : float;      (** this step's total time, set by [step] *)
    mutable joules : float;  (** this step's total energy *)
    mutable now : float;
        (** Simulation time at the start of the step; the caller writes
            it before [step], memory ops read it. *)
    mutable cycle_ns : float;
        (** Finalization constants from the energy model, installed once
            at machine creation via {!set_rates}. *)
    mutable e_cycle : float;
    mutable e_stall_cycle : float;
  }

  val create : unit -> t

  val set_rates : t -> Sweep_energy.Energy_config.t -> unit
  (** Install the per-cycle base cost constants. *)

  val charge : t -> ns:float -> joules:float -> unit
  (** Add extra memory-path cost to the current step. *)
end

type mem_ops = {
  load : int -> int;
      (** [load addr] returns the value; charges into the acc. *)
  store : int -> int -> unit;  (** [store addr value] *)
  clwb : int -> unit;  (** [clwb addr] — ReplayCache line write-back. *)
  fence : unit -> unit;
  region_end : unit -> unit;
}

val nop_region_ops : mem_ops -> mem_ops
(** Same memory path with free [clwb]/[fence]/[region_end] — for designs
    that run Plain-mode programs (the markers never appear, but totality
    is nice for tests that run instrumented code on them). *)

val null_ops : mem_ops
(** Ops that charge nothing and load 0 — the placeholder machines use
    while tying the knot between the machine record and the closures
    over it. *)

val step :
  Cpu.t -> Sweep_isa.Decoded.t -> Mstats.t -> mem_ops -> Acc.t -> unit
(** Execute the instruction at [cpu.pc] from the decoded opstream.
    Updates CPU state and counters; leaves the step's total time/energy
    in the accumulator.  A halted machine costs exactly zero. *)

val step_reference :
  Cpu.t -> Sweep_isa.Program.t -> Mstats.t -> mem_ops -> Acc.t -> unit
(** The legacy variant-matching interpreter over the undecoded program,
    kept as the semantic reference for the differential equivalence
    suite.  Identical calling convention and costing. *)
