(* The time/energy accumulators live in their own all-float record: a
   mutable float field in the mixed record below would be boxed on
   every write, and persistence_ns/wait_ns are written at every region
   boundary on the hot path. *)
type floats = {
  mutable persistence_ns : float;
  mutable wait_ns : float;
  mutable waw_stall_ns : float;
  mutable backup_joules : float;
  mutable restore_joules : float;
}

type t = {
  mutable instructions : int;
  mutable loads : int;
  mutable stores : int;
  mutable regions : int;
  mutable buffer_searches : int;
  mutable buffer_bypasses : int;
  mutable buffer_hits : int;
  f : floats;
  mutable backup_events : int;
  mutable restore_events : int;
  mutable replayed_stores : int;
  mutable buffer_peak : int;
  region_size_hist : int array;
  region_store_hist : int array;
  mutable cur_region_instrs : int;
  mutable cur_region_stores : int;
}

let size_cap = 512
let store_cap = 128

let create () =
  {
    instructions = 0;
    loads = 0;
    stores = 0;
    regions = 0;
    buffer_searches = 0;
    buffer_bypasses = 0;
    buffer_hits = 0;
    f =
      {
        persistence_ns = 0.0;
        wait_ns = 0.0;
        waw_stall_ns = 0.0;
        backup_joules = 0.0;
        restore_joules = 0.0;
      };
    backup_events = 0;
    restore_events = 0;
    replayed_stores = 0;
    buffer_peak = 0;
    region_size_hist = Array.make (size_cap + 1) 0;
    region_store_hist = Array.make (store_cap + 1) 0;
    cur_region_instrs = 0;
    cur_region_stores = 0;
  }

let note_instr t =
  t.instructions <- t.instructions + 1;
  t.cur_region_instrs <- t.cur_region_instrs + 1

let note_load t = t.loads <- t.loads + 1

let note_store t =
  t.stores <- t.stores + 1;
  t.cur_region_stores <- t.cur_region_stores + 1

let note_region_end t =
  t.regions <- t.regions + 1;
  let size = min t.cur_region_instrs size_cap in
  let stores = min t.cur_region_stores store_cap in
  t.region_size_hist.(size) <- t.region_size_hist.(size) + 1;
  t.region_store_hist.(stores) <- t.region_store_hist.(stores) + 1;
  t.cur_region_instrs <- 0;
  t.cur_region_stores <- 0

let reset_region_counters t =
  t.cur_region_instrs <- 0;
  t.cur_region_stores <- 0

let parallelism_efficiency t =
  if t.f.persistence_ns <= 0.0 then 100.0
  else (t.f.persistence_ns -. t.f.wait_ns) /. t.f.persistence_ns *. 100.0

module Metrics = Sweep_obs.Metrics

(* Publish a run's counters into the global metrics registry.  Counters
   accumulate across runs (an unlabelled publish from every job yields
   whole-experiment totals); per-run quantities that do not sum land in
   histograms.  Labels split the series (e.g. per design/bench from
   sweepsim --metrics). *)
let publish ?(labels = []) t =
  let c name v = Metrics.add (Metrics.counter ~labels name) v in
  c "sim.instructions" t.instructions;
  c "sim.loads" t.loads;
  c "sim.stores" t.stores;
  c "sim.regions" t.regions;
  c "sim.buffer_searches" t.buffer_searches;
  c "sim.buffer_bypasses" t.buffer_bypasses;
  c "sim.buffer_hits" t.buffer_hits;
  c "sim.backup_events" t.backup_events;
  c "sim.restore_events" t.restore_events;
  c "sim.replayed_stores" t.replayed_stores;
  Metrics.set_max (Metrics.gauge ~labels "sim.buffer_peak")
    (float_of_int t.buffer_peak);
  Metrics.observe
    (Metrics.histogram ~labels "sim.parallelism_eff"
       ~buckets:[| 20.0; 40.0; 60.0; 70.0; 80.0; 90.0; 95.0; 99.0; 100.0 |])
    (parallelism_efficiency t)

let hist_cdf hist =
  let total = Array.fold_left ( + ) 0 hist in
  if total = 0 then []
  else begin
    let acc = ref 0 in
    let points = ref [] in
    Array.iteri
      (fun value count ->
        if count > 0 then begin
          acc := !acc + count;
          points :=
            (value, float_of_int !acc /. float_of_int total *. 100.0) :: !points
        end)
      hist;
    List.rev !points
  end
