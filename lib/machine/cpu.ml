module Metrics = Sweep_obs.Metrics

type t = {
  regs : int array;
  mutable pc : int;
  mutable halted : bool;
}

let m_resets = Metrics.counter "cpu.resets"
let m_restores = Metrics.counter "cpu.restores"

let create ~entry =
  { regs = Array.make Sweep_isa.Reg.count 0; pc = entry; halted = false }

let reset t ~entry =
  Array.fill t.regs 0 (Array.length t.regs) 0;
  t.pc <- entry;
  t.halted <- false;
  if Metrics.enabled () then Metrics.inc m_resets

let snapshot t = (Array.copy t.regs, t.pc)

let restore t (regs, pc) =
  Array.blit regs 0 t.regs 0 (Array.length regs);
  t.pc <- pc;
  t.halted <- false;
  if Metrics.enabled () then Metrics.inc m_restores
