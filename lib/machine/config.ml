type buffer_search = Empty_bit | Nvm_search

type t = {
  energy : Sweep_energy.Energy_config.t;
  cache_size_bytes : int;
  cache_assoc : int;
  buffer_entries : int;
  buffer_count : int;
  search : buffer_search;
  detector_override : Sweep_energy.Detector.t option;
  nvsram_parallel : int;
  replay_queue : int;
  rename_entries : int;
  faults : Fault_model.t;
  reference_interp : bool;
}

let default =
  {
    energy = Sweep_energy.Energy_config.default;
    cache_size_bytes = 4096;
    cache_assoc = 2;
    buffer_entries = 64;
    buffer_count = 2;
    search = Empty_bit;
    detector_override = None;
    nvsram_parallel = 8;
    replay_queue = 8;
    rename_entries = 64;
    faults = Fault_model.none;
    reference_interp = false;
  }

let with_cache t ~size = { t with cache_size_bytes = size }
let with_reference_interp t = { t with reference_interp = true }
let with_search t search = { t with search }
let with_detector t d = { t with detector_override = Some d }
let with_faults t faults = { t with faults }

let with_geometry t ~size ~assoc =
  { t with cache_size_bytes = size; cache_assoc = assoc }

let with_buffer_entries t entries = { t with buffer_entries = entries }

let valid_geometry ~size ~assoc =
  let line = Sweep_isa.Layout.line_bytes in
  size > 0 && assoc > 0 && size mod (assoc * line) = 0
