(** Per-machine configuration knobs (Table 1 plus model parameters). *)

type buffer_search = Empty_bit | Nvm_search
(** §4.4: with [Empty_bit], a load miss skips the persist-buffer search
    when the buffer's empty-bit says it holds nothing; with [Nvm_search]
    every miss pays the sequential search. *)

type t = {
  energy : Sweep_energy.Energy_config.t;
  cache_size_bytes : int;   (** default 4 kB *)
  cache_assoc : int;        (** default 2 *)
  buffer_entries : int;     (** persist-buffer capacity; default 64 *)
  buffer_count : int;       (** 2 (dual buffering); 1 for the ablation *)
  search : buffer_search;
  detector_override : Sweep_energy.Detector.t option;
      (** Replace a design's default detector (propagation-delay and
          threshold studies). *)
  nvsram_parallel : int;
      (** NVSRAM backs lines up with this much parallelism (§2.2's
          parallel transfer); default 8. *)
  replay_queue : int;
      (** ReplayCache pending-clwb queue depth; default 8. *)
  rename_entries : int;
      (** NvMR rename-buffer capacity; default 64. *)
  faults : Fault_model.t;
      (** Hardware fault models for the crash-consistency checker;
          {!Fault_model.none} (the default) leaves behaviour
          untouched. *)
  reference_interp : bool;
      (** Run the legacy variant interpreter ({!Sweep_machine.Exec}'s
          [step_reference]) instead of the decoded fast path — the
          differential equivalence suite's switch.  Default false. *)
}

val default : t

val with_cache : t -> size:int -> t
val with_reference_interp : t -> t
val with_search : t -> buffer_search -> t
val with_detector : t -> Sweep_energy.Detector.t -> t
val with_faults : t -> Fault_model.t -> t

val with_geometry : t -> size:int -> assoc:int -> t
(** Cache geometry as one knob (the design-space explorer's axis). *)

val with_buffer_entries : t -> int -> t
(** Persist-buffer capacity (must be >= the compiler's store
    threshold for SweepCache to be able to seal a region's stores). *)

val valid_geometry : size:int -> assoc:int -> bool
(** Whether {!Sweep_mem.Cache.create} would accept the pair — [size] a
    positive multiple of [assoc * line_bytes]. *)
