(* Per-PC profile serialisation: turn a run's {!Sweep_obs.Attrib}
   counters plus the program's label map into the schema-versioned
   JSON table that [sweepsim --attrib] / [sweepexp --attrib-dir] emit
   and [sweeptrace profile] reads, and into Brendan Gregg collapsed
   stacks ("func;label+off;op weight" lines) for flamegraph tooling.

   Everything here is deterministic: rows are in PC order, numbers
   print as %d / %.17g, and no wall-clock or host information is
   embedded — so profiles of the same job are byte-identical at any
   worker count. *)

module Attrib = Sweep_obs.Attrib
module Decoded = Sweep_isa.Decoded
module Program = Sweep_isa.Program

let schema_version = 1

type row = {
  pc : int;
  op : string;
  label : string;
  label_off : int;
  func : string;
  count : int;
  forward : int;  (** count - reexec: instructions that stuck *)
  reexec : int;
  crashes : int;
  ns : float;
  stall_ns : float;
  joules : float;
  backup_joules : float;
  restore_joules : float;
  ckpt_ns : float;
  nvm_writes : int;
  ckpt_nvm_writes : int;
  cache_misses : int;
}

type t = {
  design : string;
  bench : string;
  scale : float;
  key : string;
  totals : Attrib.totals;
  rows : row list;
}

let make ?(design = "") ?(bench = "") ?(scale = 1.0) ?(key = "") prog
    (at : Attrib.t) =
  if not (Attrib.armed at) then
    invalid_arg "Profile.make: attribution was not armed for this run";
  let len = Array.length prog.Program.code in
  if Attrib.length at <> len then
    invalid_arg
      (Printf.sprintf
         "Profile.make: counters cover %d PCs but the program has %d"
         (Attrib.length at) len);
  let dec = Decoded.compile prog in
  let rows = ref [] in
  for pc = len - 1 downto 0 do
    (* A row exists iff anything was ever charged to this PC — cold
       checkpoint costs can land on a PC that never retired (crash
       struck before its first completion). *)
    if
      at.Attrib.count.(pc) <> 0
      || at.Attrib.crashes.(pc) <> 0
      || at.Attrib.ckpt_nvm_writes.(pc) <> 0
      || at.Attrib.ckpt_ns.(pc) <> 0.0
      || at.Attrib.backup_joules.(pc) <> 0.0
      || at.Attrib.restore_joules.(pc) <> 0.0
    then
      rows :=
        {
          pc;
          op = Decoded.pc_op_name dec pc;
          label = Decoded.pc_label dec pc;
          label_off = Decoded.pc_label_off dec pc;
          func = Decoded.pc_func dec pc;
          count = at.Attrib.count.(pc);
          forward = at.Attrib.count.(pc) - at.Attrib.reexec.(pc);
          reexec = at.Attrib.reexec.(pc);
          crashes = at.Attrib.crashes.(pc);
          ns = at.Attrib.ns.(pc);
          stall_ns = at.Attrib.stall_ns.(pc);
          joules = at.Attrib.joules.(pc);
          backup_joules = at.Attrib.backup_joules.(pc);
          restore_joules = at.Attrib.restore_joules.(pc);
          ckpt_ns = at.Attrib.ckpt_ns.(pc);
          nvm_writes = at.Attrib.nvm_writes.(pc);
          ckpt_nvm_writes = at.Attrib.ckpt_nvm_writes.(pc);
          cache_misses = at.Attrib.cache_misses.(pc);
        }
        :: !rows
  done;
  { design; bench; scale; key; totals = Attrib.totals at; rows = !rows }

(* %.17g keeps parse/render round-trips exact; integral floats still
   carry enough digits that a reader can't confuse them with ints. *)
let fl = Printf.sprintf "%.17g"

let esc s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

let totals_json (tt : Attrib.totals) =
  Printf.sprintf
    "{\"instructions\":%d,\"reexec\":%d,\"forward\":%d,\"nvm_writes\":%d,\"ckpt_nvm_writes\":%d,\"cache_misses\":%d,\"crashes\":%d,\"ns\":%s,\"stall_ns\":%s,\"joules\":%s,\"backup_joules\":%s,\"restore_joules\":%s,\"ckpt_ns\":%s}"
    tt.Attrib.t_instructions tt.Attrib.t_reexec
    (tt.Attrib.t_instructions - tt.Attrib.t_reexec)
    tt.Attrib.t_nvm_writes tt.Attrib.t_ckpt_nvm_writes
    tt.Attrib.t_cache_misses tt.Attrib.t_crashes (fl tt.Attrib.t_ns)
    (fl tt.Attrib.t_stall_ns) (fl tt.Attrib.t_joules)
    (fl tt.Attrib.t_backup_joules)
    (fl tt.Attrib.t_restore_joules)
    (fl tt.Attrib.t_ckpt_ns)

let row_json r =
  Printf.sprintf
    "{\"pc\":%d,\"op\":%s,\"label\":%s,\"label_off\":%d,\"func\":%s,\"count\":%d,\"forward\":%d,\"reexec\":%d,\"crashes\":%d,\"ns\":%s,\"stall_ns\":%s,\"joules\":%s,\"backup_joules\":%s,\"restore_joules\":%s,\"ckpt_ns\":%s,\"nvm_writes\":%d,\"ckpt_nvm_writes\":%d,\"cache_misses\":%d}"
    r.pc (esc r.op) (esc r.label) r.label_off (esc r.func) r.count r.forward
    r.reexec r.crashes (fl r.ns) (fl r.stall_ns) (fl r.joules)
    (fl r.backup_joules) (fl r.restore_joules) (fl r.ckpt_ns) r.nvm_writes
    r.ckpt_nvm_writes r.cache_misses

let to_json t =
  let b = Buffer.create 4096 in
  Buffer.add_string b
    (Printf.sprintf
       "{\"schema_version\":%d,\"kind\":\"sweepcache-profile\",\"design\":%s,\"bench\":%s,\"scale\":%s,\"key\":%s,\"totals\":%s,\"rows\":[\n"
       schema_version (esc t.design) (esc t.bench) (fl t.scale) (esc t.key)
       (totals_json t.totals));
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_string b ",\n";
      Buffer.add_string b (row_json r))
    t.rows;
  Buffer.add_string b "\n]}\n";
  Buffer.contents b

(* Collapsed stacks, one line per PC: func;label+off;op <ns>.  The
   label+off frame makes every PC's stack unique, so flamegraph width
   is exact per-instruction time; rows whose rounded weight is zero
   are dropped (flamegraph.pl rejects zero-weight lines). *)
let to_folded t =
  let b = Buffer.create 4096 in
  List.iter
    (fun r ->
      let w = int_of_float (Float.round (r.ns +. r.ckpt_ns)) in
      if w > 0 then
        Buffer.add_string b
          (Printf.sprintf "%s;%s+%d;%s %d\n" r.func r.label r.label_off r.op w))
    t.rows;
  Buffer.contents b

let write path data =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc data)

let write_json t ~path = write path (to_json t)
let write_folded t ~path = write path (to_folded t)

let of_result ?(bench = "") ?(scale = 1.0) ?(key = "") (r : Harness.result) =
  match r.Harness.attrib with
  | None -> None
  | Some at ->
    Some
      (make
         ~design:(Harness.design_name r.Harness.design)
         ~bench ~scale ~key
         r.Harness.compiled.Sweep_compiler.Pipeline.program at)
