module Pipeline = Sweep_compiler.Pipeline
module Config = Sweep_machine.Config
module M = Sweep_machine.Machine_intf
module Nvm = Sweep_mem.Nvm
module Layout = Sweep_isa.Layout

type design =
  | Nvp
  | Wt
  | Nvsram
  | Nvsram_e
  | Replay
  | Nvmr
  | Sweep

let all_designs = [ Nvp; Wt; Nvsram; Nvsram_e; Replay; Nvmr; Sweep ]

let design_name = function
  | Nvp -> "NVP"
  | Wt -> "WT-VCache"
  | Nvsram -> "NVSRAM"
  | Nvsram_e -> "NVSRAM-E"
  | Replay -> "ReplayCache"
  | Nvmr -> "NvMR"
  | Sweep -> "SweepCache"

let compile_mode = function
  | Nvp | Wt | Nvsram | Nvsram_e | Nvmr -> Pipeline.Plain
  | Replay -> Pipeline.Replay
  | Sweep -> Pipeline.Sweep

let compile ?(options = Pipeline.default_options) design ast =
  Pipeline.compile ~options:{ options with Pipeline.mode = compile_mode design } ast

let machine ?(config = Config.default) design prog =
  match design with
  | Nvp -> Sweep_baselines.Nvp.packed config prog
  | Wt -> Sweep_baselines.Wt_cache.packed config prog
  | Nvsram -> Sweep_baselines.Nvsram.Dirty.packed config prog
  | Nvsram_e -> Sweep_baselines.Nvsram.Entire.packed config prog
  | Replay -> Sweep_baselines.Replaycache.packed config prog
  | Nvmr -> Sweep_baselines.Nvmr.packed config prog
  | Sweep -> Sweepcache_core.Sweepcache.packed config prog

type result = {
  design : design;
  outcome : Driver.outcome;
  machine : M.packed;
  compiled : Pipeline.compiled;
  attrib : Sweep_obs.Attrib.t option;
}

let run ?config ?options ?max_instructions ?max_sim_s ?sim_budget_ns ?fault
    ?after_recovery ?heartbeat ?(attrib = false) design ~power ast =
  let compiled = compile ?options design ast in
  let m = machine ?config design compiled.Pipeline.program in
  let at =
    if attrib then
      Some
        (Sweep_obs.Attrib.create
           ~len:(Array.length compiled.Pipeline.program.Sweep_isa.Program.code))
    else None
  in
  let outcome =
    Driver.run ?max_instructions ?max_sim_s ?sim_budget_ns ?fault
      ?after_recovery ?heartbeat ?attrib:at m ~power
  in
  { design; outcome; machine = m; compiled; attrib = at }

let mstats r = M.mstats r.machine

let cache_miss_rate r =
  match M.cache r.machine with
  | Some cache -> Sweep_mem.Cache.miss_rate cache
  | None -> 0.0

let nvm_writes r = Nvm.write_events (M.nvm r.machine)

let final_globals r =
  let nvm = M.nvm r.machine in
  List.map
    (fun (name, base, words) ->
      (name, Array.init words (fun i -> Nvm.peek_word nvm (base + (i * Layout.word_bytes)))))
    r.compiled.Pipeline.globals

let check_against_interp r ast =
  let expected = Sweep_lang.Interp.globals_image (Sweep_lang.Interp.run ast) in
  let actual = final_globals r in
  let rec compare_lists = function
    | [], [] -> Ok ()
    | (ename, edata) :: erest, (aname, adata) :: arest ->
      if ename <> aname then
        Error (Printf.sprintf "global order mismatch: %s vs %s" ename aname)
      else begin
        let n = Array.length edata in
        let rec scan i =
          if i >= n then compare_lists (erest, arest)
          else if edata.(i) <> adata.(i) then
            Error
              (Printf.sprintf "%s: %s[%d] = %d, expected %d"
                 (design_name r.design) ename i adata.(i) edata.(i))
          else scan (i + 1)
        in
        if Array.length adata <> n then
          Error (Printf.sprintf "%s: length mismatch" ename)
        else scan 0
      end
    | _ -> Error "global count mismatch"
  in
  compare_lists (expected, actual)
