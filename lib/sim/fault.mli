(** Injectable fault plans for {!Driver.run}.

    A plan kills the run at an exact execution point — the Nth dynamic
    instruction, or the Nth emission of a named {!Sweep_obs.Event} tag
    (e.g. ["buf_phase"] to land inside a persistence window) — rather
    than wherever the voltage model happens to cross Vmin.  [nested]
    adds that many immediate re-crashes right after each recovery
    completes, covering crash-during-recovery (the §4.2 re-drive must
    be idempotent). *)

type trigger =
  | At_instruction of int
      (** Fire after the Nth (1-based) dynamically executed
          instruction, counted across reboots. *)
  | At_event of { tag : string; nth : int }
      (** Fire at the end of the step during which the [nth] event with
          constructor tag [tag] is emitted.  Requires a sequential run
          (the driver taps the event stream via {!Sweep_obs.Sink.spy}). *)

type t = { trigger : trigger; nested : int }

val at_instruction : ?nested:int -> int -> t
val at_event : ?nested:int -> ?nth:int -> string -> t

val trigger_kind : trigger -> string
(** ["instr"] or ["event"] — the [Fault_inject] event's trigger field. *)

val describe : t -> string
(** Human-readable crash-point description, e.g. ["instr 812 +1 nested"]. *)
