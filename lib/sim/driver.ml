module M = Sweep_machine.Machine_intf
module Cost = Sweep_machine.Cost
module Exec = Sweep_machine.Exec
module Mstats = Sweep_machine.Mstats
module Capacitor = Sweep_energy.Capacitor
module Detector = Sweep_energy.Detector
module Trace = Sweep_energy.Power_trace
module Sink = Sweep_obs.Sink
module Ev = Sweep_obs.Event
module Hb = Sweep_obs.Heartbeat
module Attrib = Sweep_obs.Attrib
module Nvm = Sweep_mem.Nvm
module Cache = Sweep_mem.Cache
module Cpu = Sweep_machine.Cpu

(* Per-PC attribution rides both cycle loops branchlessly: the loops
   always index the counter arrays with [pc land at.mask] (-1 armed, 0
   disabled — see {!Sweep_obs.Attrib}), so a run without a profiler
   pays a handful of dead stores into a one-slot buffer instead of a
   branch.  A disabled sink still tracks the since-last-commit
   instruction count in its slot 0 (every PC aliases there), which is
   exactly the whole-run discarded-work total — so the [Ev.Reexec]
   counter track is live in every traced run, profiler armed or not.
   Cacheless designs attribute against a hoisted dummy cache whose
   miss counter never moves. *)
let dummy_cache () = Cache.create ~size_bytes:64 ~assoc:1

type power =
  | Unlimited
  | Harvested of {
      trace : Trace.t;
      capacitor_farads : float;
      v_max : float;
      v_min : float;
    }

let harvested ?(v_max = 3.5) ?(v_min = 2.8) ~trace ~farads () =
  Harvested { trace; capacitor_farads = farads; v_max; v_min }

type outcome = {
  completed : bool;
  on_ns : float;
  off_ns : float;
  outages : int;
  deaths : int;
  backups : int;
  failed_backups : int;
  compute_joules : float;
  backup_joules : float;
  restore_joules : float;
  quiescent_joules : float;
  instructions : int;
  injected_faults : int;
}

let total_ns o = o.on_ns +. o.off_ns

let total_joules o =
  o.compute_joules +. o.backup_joules +. o.restore_joules +. o.quiescent_joules

exception Stagnation of string

let ns_to_s ns = ns *. 1.0e-9

(* ------------------------------------------------------------------ *)
(* Fault-trigger bookkeeping shared by both power modes.  [watch]
   attaches a Sink spy for event triggers (sequential runs only) and
   returns a detach closure; [should_fire] is checked once per
   completed instruction. *)

type fault_watch = {
  fault : Fault.t option;
  mutable fired : bool;
  mutable event_pending : bool;
  mutable detach : (unit -> unit) option;
}

let watch_fault fault =
  let w = { fault; fired = false; event_pending = false; detach = None } in
  (match fault with
  | Some { Fault.trigger = Fault.At_event { tag; nth }; _ } ->
    let hits = ref 0 in
    w.detach <-
      Some
        (Sink.spy (fun ~ns:_ ev ->
             if (not w.fired) && (not w.event_pending) && Ev.tag ev = tag
             then begin
               incr hits;
               if !hits >= nth then w.event_pending <- true
             end))
  | Some _ | None -> ());
  w

let unwatch_fault w =
  Option.iter (fun d -> d ()) w.detach;
  w.detach <- None

let fault_to_fire w ~instructions =
  if w.fired then None
  else
    match w.fault with
    | None -> None
    | Some f -> (
      match f.Fault.trigger with
      | Fault.At_instruction n -> if instructions >= n then Some f else None
      | Fault.At_event _ -> if w.event_pending then Some f else None)

(* ------------------------------------------------------------------ *)

(* All-float mutable totals: mutating a float field of a flat float
   record writes in place, so the cycle loop allocates nothing.  (Float
   refs or a mixed record would box a fresh float per store.) *)
type utotals = {
  mutable u_now : float;
  mutable u_joules : float;
  mutable u_restore_joules : float;
}

let run_unlimited ?(max_instructions = 500_000_000) ?sim_budget_ns ?fault
    ?after_recovery ?heartbeat ?attrib m =
  let tt = { u_now = 0.0; u_joules = 0.0; u_restore_joules = 0.0 } in
  let acc = M.acc m in
  let at = match attrib with Some a -> a | None -> Attrib.disabled () in
  let cpu = M.cpu m in
  let nvm = M.nvm m in
  let mst = M.mstats m in
  let acache = match M.cache m with Some c -> c | None -> dummy_cache () in
  let instructions = ref 0 in
  let outages = ref 0 in
  let injected = ref 0 in
  let budget =
    match sim_budget_ns with Some b -> b | None -> Float.infinity
  in
  let hb = match heartbeat with Some h -> h | None -> Hb.disabled () in
  let w = watch_fault fault in
  Fun.protect ~finally:(fun () -> unwatch_fault w) @@ fun () ->
  (* One injected crash under unlimited power: no capacitor, so the
     off period is instantaneous — the machine's power-failure and
     recovery paths run, execution resumes at the recovered PC. *)
  let crash ~trigger ~detail =
    incr injected;
    incr outages;
    let pc0 = cpu.Cpu.pc in
    let w0 = Nvm.write_events nvm in
    let mi0 = Cache.misses acache in
    (* A JIT design never dies without its banked backup (the backup
       threshold sits above Vmin), so an adversarial crash still finds
       a fresh checkpoint: commit one at the crash point. *)
    if M.jit_backup_cost m <> None then begin
      M.commit_jit_backup m ~now_ns:tt.u_now;
      Attrib.note_commit at
    end;
    if Sink.on () then begin
      Sink.emit ~ns:tt.u_now (Ev.Fault_inject { trigger; detail });
      Sink.emit ~ns:tt.u_now (Ev.Power_down { volts = 0.0 })
    end;
    M.on_power_failure m ~now_ns:tt.u_now;
    let discarded = Attrib.note_crash at ~pc:pc0 in
    if Sink.on () then begin
      Sink.emit ~ns:tt.u_now (Ev.Reexec { discarded });
      Sink.emit ~ns:tt.u_now (Ev.Reboot { outage = !outages })
    end;
    let c = M.on_reboot m ~now_ns:tt.u_now in
    tt.u_now <- tt.u_now +. c.Cost.ns;
    tt.u_restore_joules <- tt.u_restore_joules +. c.Cost.joules;
    Attrib.note_cold at ~pc:pc0
      ~nvm_writes:(Nvm.write_events nvm - w0)
      ~cache_misses:(Cache.misses acache - mi0)
      ~ns:c.Cost.ns ~restore_joules:c.Cost.joules ();
    if Sink.on () then
      Sink.emit ~ns:tt.u_now (Ev.Restore { joules = c.Cost.joules });
    match after_recovery with Some f -> f ~now_ns:tt.u_now | None -> ()
  in
  while
    (not (M.halted m)) && !instructions < max_instructions
    && tt.u_now <= budget
  do
    (* Attribution pre-reads: the PC about to execute and the
       monotonic machine counters whose per-step deltas get charged to
       it.  All int reads except the stall total, which stays unboxed
       in a register (cmmgen unboxes float lets whose uses are float
       ops — same discipline as the loop totals below). *)
    let pc = cpu.Cpu.pc in
    let w0 = Nvm.write_events nvm in
    let mi0 = Cache.misses acache in
    let st0 = mst.Mstats.f.Mstats.wait_ns +. mst.Mstats.f.Mstats.waw_stall_ns in
    let rg0 = mst.Mstats.regions in
    acc.Exec.Acc.now <- tt.u_now;
    M.step m;
    tt.u_now <- tt.u_now +. acc.Exec.Acc.ns;
    tt.u_joules <- tt.u_joules +. acc.Exec.Acc.joules;
    incr instructions;
    (* Unconditional attribution stores ([i] = 0 when disabled): int
       adds, unboxed float adds, and the epoch/stamp/delta re-execution
       bookkeeping.  The epoch bump uses the step's region-count delta,
       so a retiring region boundary commits its own instruction. *)
    let i = pc land at.Attrib.mask in
    Array.unsafe_set at.Attrib.count i (Array.unsafe_get at.Attrib.count i + 1);
    Array.unsafe_set at.Attrib.ns i
      (Array.unsafe_get at.Attrib.ns i +. acc.Exec.Acc.ns);
    Array.unsafe_set at.Attrib.joules i
      (Array.unsafe_get at.Attrib.joules i +. acc.Exec.Acc.joules);
    Array.unsafe_set at.Attrib.nvm_writes i
      (Array.unsafe_get at.Attrib.nvm_writes i + (Nvm.write_events nvm - w0));
    Array.unsafe_set at.Attrib.cache_misses i
      (Array.unsafe_get at.Attrib.cache_misses i + (Cache.misses acache - mi0));
    Array.unsafe_set at.Attrib.stall_ns i
      (Array.unsafe_get at.Attrib.stall_ns i
      +. (mst.Mstats.f.Mstats.wait_ns +. mst.Mstats.f.Mstats.waw_stall_ns -. st0
         ));
    if Array.unsafe_get at.Attrib.stamp i = at.Attrib.epoch then
      Array.unsafe_set at.Attrib.delta i (Array.unsafe_get at.Attrib.delta i + 1)
    else begin
      Array.unsafe_set at.Attrib.stamp i at.Attrib.epoch;
      Array.unsafe_set at.Attrib.delta i 1
    end;
    at.Attrib.epoch <- at.Attrib.epoch + (mst.Mstats.regions - rg0);
    (* Amortized liveness beat: two machine ops per instruction, the
       rest on the cold [fire] path every [hb.every] instructions. *)
    hb.Hb.countdown <- hb.Hb.countdown - 1;
    if hb.Hb.countdown <= 0 then
      Hb.fire hb ~sim_ns:tt.u_now ~instructions:!instructions
        ~reboots:!outages ~nvm_writes:(Nvm.write_events nvm);
    match fault_to_fire w ~instructions:!instructions with
    | Some f ->
      w.fired <- true;
      crash ~trigger:(Fault.trigger_kind f.Fault.trigger)
        ~detail:(Fault.describe f);
      for _ = 1 to f.Fault.nested do
        crash ~trigger:"nested" ~detail:(Fault.describe f)
      done
    | None -> ()
  done;
  let completed = M.halted m in
  (* Running out of the simulated-time budget is a graceful partial
     stop (the early-stop path); only the instruction guard is an
     error.  A partial machine is left undrained. *)
  if (not completed) && tt.u_now <= budget then
    raise (Stagnation "instruction guard exceeded without Halt");
  if completed then begin
    let pc0 = cpu.Cpu.pc in
    let w0 = Nvm.write_events nvm in
    let d = M.drain m ~now_ns:tt.u_now in
    tt.u_now <- tt.u_now +. d.Cost.ns;
    tt.u_joules <- tt.u_joules +. d.Cost.joules;
    Attrib.note_cold at ~pc:pc0
      ~nvm_writes:(Nvm.write_events nvm - w0)
      ~ns:d.Cost.ns ~joules:d.Cost.joules ()
  end;
  {
    completed;
    on_ns = tt.u_now;
    off_ns = 0.0;
    outages = !outages;
    deaths = 0;
    backups = 0;
    failed_backups = 0;
    compute_joules = tt.u_joules;
    backup_joules = 0.0;
    restore_joules = tt.u_restore_joules;
    quiescent_joules = 0.0;
    instructions = !instructions;
    injected_faults = !injected;
  }

(* ------------------------------------------------------------------ *)

(* Same flat-float-record discipline as {!utotals}: every float the
   harvested loop mutates per instruction lives here, nested inside the
   mixed {!harv_state}. *)
type harv_totals = {
  mutable now : float; (* ns *)
  mutable on_ns : float;
  mutable off_ns : float;
  mutable compute_joules : float;
  mutable backup_joules : float;
  mutable restore_joules : float;
  mutable quiescent_joules : float;
  mutable trace_p : float;
      (* Cached [Trace.power] sample for the hot loop, valid while
         [now < trace_edge].  The trace is a 100 µs zero-order hold and
         steps advance time by nanoseconds, so the sample only changes
         every ~10⁴–10⁵ instructions; caching turns the per-instruction
         lookup (float divide, truncation, integer modulo, array load)
         into one float compare. *)
  mutable trace_edge : float;
      (* Conservative lower bound (ns) on the next sample boundary:
         always <= the true edge, so a stale sample is never used; -inf
         initially and whenever nothing is cached.  Cold paths advance
         [now] without touching it — [now] is monotonic, so crossing the
         bound just forces a recompute. *)
}

type harv_state = {
  m : M.packed;
  trace : Trace.t;
  cap : Capacitor.t;
  det : Detector.t;
  p_quiescent : float;
  at : Attrib.t;
  f : harv_totals;
  mutable outages : int;
  mutable deaths : int;
  mutable backups : int;
  mutable failed_backups : int;
  mutable instructions : int;
  mutable backup_armed : bool;
  mutable injected_faults : int;
}

(* Advance wall time by [ns] while powered on: harvest plus quiescent
   detector draw. *)
let pass_time_on s ns =
  if ns > 0.0 then begin
    let dt = ns_to_s ns in
    let pq = s.p_quiescent *. dt in
    Capacitor.consume s.cap pq;
    s.f.quiescent_joules <- s.f.quiescent_joules +. pq;
    Capacitor.harvest s.cap
      ~power_w:(Trace.power s.trace (ns_to_s s.f.now))
      ~dt_s:dt;
    s.f.now <- s.f.now +. ns;
    s.f.on_ns <- s.f.on_ns +. ns
  end

(* Dead/charging: integrate the trace at its own resolution until the
   voltage reaches [target]. *)
let charge_until s target ~max_off_s =
  let dt = 1.0e-4 in
  let waited = ref 0.0 in
  let steps = ref 0 in
  while (not (Capacitor.above s.cap target)) && !waited < max_off_s do
    (* Sample the recharge ramp sparsely for the voltage counter track. *)
    if Sink.on () && !steps mod 100 = 0 then
      Sink.emit ~ns:s.f.now (Ev.Voltage { volts = Capacitor.voltage s.cap });
    incr steps;
    (* Apply the net power over the step: harvesting and the detector
       draw are simultaneous, so clamping at Vmax must see the
       difference, not harvest-then-consume (which would cap a small
       capacitor's steady state a whole quiescent-step below Vmax). *)
    let p = Trace.power s.trace (ns_to_s s.f.now) in
    let net = p -. s.p_quiescent in
    if net >= 0.0 then Capacitor.harvest s.cap ~power_w:net ~dt_s:dt
    else Capacitor.consume s.cap (-.net *. dt);
    s.f.quiescent_joules <- s.f.quiescent_joules +. (s.p_quiescent *. dt);
    s.f.now <- s.f.now +. (dt *. 1.0e9);
    s.f.off_ns <- s.f.off_ns +. (dt *. 1.0e9);
    waited := !waited +. dt
  done;
  if not (Capacitor.above s.cap target) then
    raise
      (Stagnation
         (Printf.sprintf
            "charging stalled: harvest cannot reach %.2f V (detector draw %.0f uW)"
            target (s.p_quiescent *. 1.0e6)))

(* Propagation delay: time passes with quiescent draw only. *)
let propagation_delay s ns state =
  let dt = ns_to_s ns in
  let pq = s.p_quiescent *. dt in
  Capacitor.consume s.cap pq;
  s.f.quiescent_joules <- s.f.quiescent_joules +. pq;
  Capacitor.harvest s.cap
    ~power_w:(Trace.power s.trace (ns_to_s s.f.now))
    ~dt_s:dt;
  s.f.now <- s.f.now +. ns;
  match state with
  | `On -> s.f.on_ns <- s.f.on_ns +. ns
  | `Off -> s.f.off_ns <- s.f.off_ns +. ns

(* Power-down / charge / reboot sequence shared by JIT stops, hard
   deaths and injected faults.  [after_recovery] (the differential
   checker's hook) observes the machine right after every recovery. *)
let power_cycle ?after_recovery s ~max_off_s =
  s.outages <- s.outages + 1;
  let pc0 = (M.cpu s.m).Cpu.pc in
  let w0 = Nvm.write_events (M.nvm s.m) in
  let mi0 = match M.cache s.m with Some c -> Cache.misses c | None -> 0 in
  if Sink.on () then
    Sink.emit ~ns:s.f.now (Ev.Power_down { volts = Capacitor.voltage s.cap });
  M.on_power_failure s.m ~now_ns:s.f.now;
  let discarded = Attrib.note_crash s.at ~pc:pc0 in
  if Sink.on () then Sink.emit ~ns:s.f.now (Ev.Reexec { discarded });
  charge_until s s.det.Detector.v_restore ~max_off_s;
  propagation_delay s s.det.Detector.t_plh_ns `Off;
  if Sink.on () then begin
    Sink.emit ~ns:s.f.now (Ev.Reboot { outage = s.outages });
    Sink.emit ~ns:s.f.now (Ev.Voltage { volts = Capacitor.voltage s.cap })
  end;
  let c = M.on_reboot s.m ~now_ns:s.f.now in
  Capacitor.consume s.cap c.Cost.joules;
  s.f.restore_joules <- s.f.restore_joules +. c.Cost.joules;
  let mi1 = match M.cache s.m with Some c -> Cache.misses c | None -> 0 in
  Attrib.note_cold s.at ~pc:pc0
    ~nvm_writes:(Nvm.write_events (M.nvm s.m) - w0)
    ~cache_misses:(mi1 - mi0) ~ns:c.Cost.ns ~restore_joules:c.Cost.joules ();
  if Sink.on () then
    Sink.emit ~ns:s.f.now (Ev.Restore { joules = c.Cost.joules });
  pass_time_on s c.Cost.ns;
  s.backup_armed <- true;
  match after_recovery with Some f -> f ~now_ns:s.f.now | None -> ()

let try_backup s v_min =
  (* Detection propagation delay passes first (§2.2). *)
  propagation_delay s s.det.Detector.t_phl_ns `On;
  match M.jit_backup_cost s.m with
  | None -> assert false
  | Some cost ->
    let available = Capacitor.usable_above s.cap v_min in
    if cost.Cost.joules <= available then begin
      let pc0 = (M.cpu s.m).Cpu.pc in
      let w0 = Nvm.write_events (M.nvm s.m) in
      M.commit_jit_backup s.m ~now_ns:s.f.now;
      Attrib.note_commit s.at;
      Attrib.note_cold s.at ~pc:pc0
        ~nvm_writes:(Nvm.write_events (M.nvm s.m) - w0)
        ~ns:cost.Cost.ns ~backup_joules:cost.Cost.joules ();
      Capacitor.consume s.cap cost.Cost.joules;
      s.f.backup_joules <- s.f.backup_joules +. cost.Cost.joules;
      (M.mstats s.m).Mstats.backup_events <-
        (M.mstats s.m).Mstats.backup_events + 1;
      (M.mstats s.m).Mstats.f.Mstats.backup_joules <-
        (M.mstats s.m).Mstats.f.Mstats.backup_joules +. cost.Cost.joules;
      pass_time_on s cost.Cost.ns;
      s.backups <- s.backups + 1;
      if Sink.on () then
        Sink.emit ~ns:s.f.now (Ev.Backup { ok = true; joules = cost.Cost.joules });
      true
    end
    else begin
      s.failed_backups <- s.failed_backups + 1;
      if Sink.on () then
        Sink.emit ~ns:s.f.now (Ev.Backup { ok = false; joules = cost.Cost.joules });
      false
    end

let run_harvested ?(max_instructions = 500_000_000) ?(max_sim_s = 600.0)
    ?sim_budget_ns ?fault ?after_recovery ?heartbeat ?attrib m ~trace ~farads
    ~v_max ~v_min =
  let det = M.detector m in
  let s =
    {
      m;
      trace;
      cap = Capacitor.create ~farads ~v_max ~v_min;
      det;
      p_quiescent = Detector.quiescent_power_w det;
      at = (match attrib with Some a -> a | None -> Attrib.disabled ());
      f =
        {
          now = 0.0;
          on_ns = 0.0;
          off_ns = 0.0;
          compute_joules = 0.0;
          backup_joules = 0.0;
          restore_joules = 0.0;
          quiescent_joules = 0.0;
          trace_p = 0.0;
          trace_edge = Float.neg_infinity;
        };
      outages = 0;
      deaths = 0;
      backups = 0;
      failed_backups = 0;
      instructions = 0;
      backup_armed = true;
      injected_faults = 0;
    }
  in
  let acc = M.acc m in
  let at = s.at in
  let cpu = M.cpu m in
  let nvm = M.nvm m in
  let mst = M.mstats m in
  let acache = match M.cache m with Some c -> c | None -> dummy_cache () in
  let max_off_s = 120.0 in
  let has_jit = M.jit_backup_cost m <> None in
  (* Hot-loop flattening: the per-instruction block below does all its
     capacitor/trace arithmetic by direct field access on the flat
     [Capacitor.t] and the raw sample array.  Calling
     [Capacitor.consume]/[harvest]/[above] or [Trace.power] here would
     box their computed float arguments on every dynamic instruction
     (non-flambda), which used to cost ~11 minor words/instr and
     dominate harvested-mode wall-clock.  The voltage thresholds are
     hoisted as energies ([above t v] ⇔ [energy >= ½Cv² - 1e-18]); a
     missing backup threshold becomes -∞ so the comparison is always
     false, matching the [None -> false] arm it replaces.  Cold paths
     (outages, charging, backup) keep the readable module calls. *)
  let cap = s.cap in
  let tr_samples = Trace.samples trace and tr_dt = Trace.sample_dt trace in
  let tr_n = Array.length tr_samples in
  let p_quiescent = s.p_quiescent in
  let th_restore = Capacitor.energy_at cap det.Detector.v_restore -. 1e-18 in
  let th_vmin = Capacitor.energy_at cap v_min -. 1e-18 in
  let th_backup =
    match det.Detector.v_backup with
    | Some vb -> Capacitor.energy_at cap vb -. 1e-18
    | None -> Float.neg_infinity
  in
  let budget =
    match sim_budget_ns with Some b -> b | None -> Float.infinity
  in
  let hb = match heartbeat with Some h -> h | None -> Hb.disabled () in
  let w = watch_fault fault in
  (* An injected crash behaves like a death at the crash point, except a
     JIT design first banks the backup its detector would have banked
     (the backup threshold sits above Vmin, so a crash with no fresh
     checkpoint is physically impossible under the detector model). *)
  let inject s f ~trigger =
    s.injected_faults <- s.injected_faults + 1;
    if has_jit then begin
      match M.jit_backup_cost m with
      | Some cost ->
        let pc0 = (M.cpu m).Cpu.pc in
        let w0 = Nvm.write_events (M.nvm m) in
        M.commit_jit_backup m ~now_ns:s.f.now;
        Attrib.note_commit s.at;
        (* The inject path charges the backup's joules but not its ns
           (the outage swallows it); attribution mirrors that. *)
        Attrib.note_cold s.at ~pc:pc0
          ~nvm_writes:(Nvm.write_events (M.nvm m) - w0)
          ~backup_joules:cost.Cost.joules ();
        Capacitor.consume s.cap cost.Cost.joules;
        s.f.backup_joules <- s.f.backup_joules +. cost.Cost.joules;
        (M.mstats m).Mstats.backup_events <-
          (M.mstats m).Mstats.backup_events + 1;
        (M.mstats m).Mstats.f.Mstats.backup_joules <-
          (M.mstats m).Mstats.f.Mstats.backup_joules +. cost.Cost.joules;
        s.backups <- s.backups + 1;
        if Sink.on () then
          Sink.emit ~ns:s.f.now
            (Ev.Backup { ok = true; joules = cost.Cost.joules })
      | None -> ()
    end;
    if Sink.on () then
      Sink.emit ~ns:s.f.now
        (Ev.Fault_inject { trigger; detail = Fault.describe f });
    power_cycle ?after_recovery s ~max_off_s
  in
  Fun.protect ~finally:(fun () -> unwatch_fault w) @@ fun () ->
  while (not (M.halted m)) && s.f.now <= budget do
    if s.instructions > max_instructions then
      raise (Stagnation "instruction guard exceeded");
    if s.f.now *. 1.0e-9 > max_sim_s then
      raise (Stagnation "simulated-time guard exceeded");
    (* Re-arm the backup trigger once the voltage has recovered. *)
    if (not s.backup_armed) && cap.Capacitor.energy >= th_restore then
      s.backup_armed <- true;
    if has_jit && s.backup_armed && cap.Capacitor.energy < th_backup then begin
      s.backup_armed <- false;
      let ok = try_backup s v_min in
      if M.continues_after_backup m && ok then
        (* NvMR: keep running on the remaining charge. *)
        ()
      else
        (* Backup (or its failure) is followed by power-down. *)
        power_cycle ?after_recovery s ~max_off_s
    end
    else if cap.Capacitor.energy < th_vmin then begin
      (* Hard death: volatile state is lost. *)
      s.deaths <- s.deaths + 1;
      if Sink.on () then
        Sink.emit ~ns:s.f.now (Ev.Death { volts = Capacitor.voltage s.cap });
      power_cycle ?after_recovery s ~max_off_s
    end
    else begin
      (* Attribution pre-reads (see run_unlimited). *)
      let pc = cpu.Cpu.pc in
      let w0 = Nvm.write_events nvm in
      let mi0 = Cache.misses acache in
      let st0 =
        mst.Mstats.f.Mstats.wait_ns +. mst.Mstats.f.Mstats.waw_stall_ns
      in
      let rg0 = mst.Mstats.regions in
      acc.Exec.Acc.now <- s.f.now;
      M.step m;
      let step_ns = acc.Exec.Acc.ns and step_joules = acc.Exec.Acc.joules in
      let i = pc land at.Attrib.mask in
      Array.unsafe_set at.Attrib.count i
        (Array.unsafe_get at.Attrib.count i + 1);
      Array.unsafe_set at.Attrib.ns i
        (Array.unsafe_get at.Attrib.ns i +. step_ns);
      Array.unsafe_set at.Attrib.joules i
        (Array.unsafe_get at.Attrib.joules i +. step_joules);
      Array.unsafe_set at.Attrib.nvm_writes i
        (Array.unsafe_get at.Attrib.nvm_writes i + (Nvm.write_events nvm - w0));
      Array.unsafe_set at.Attrib.cache_misses i
        (Array.unsafe_get at.Attrib.cache_misses i
        + (Cache.misses acache - mi0));
      Array.unsafe_set at.Attrib.stall_ns i
        (Array.unsafe_get at.Attrib.stall_ns i
        +. (mst.Mstats.f.Mstats.wait_ns
           +. mst.Mstats.f.Mstats.waw_stall_ns -. st0));
      if Array.unsafe_get at.Attrib.stamp i = at.Attrib.epoch then
        Array.unsafe_set at.Attrib.delta i
          (Array.unsafe_get at.Attrib.delta i + 1)
      else begin
        Array.unsafe_set at.Attrib.stamp i at.Attrib.epoch;
        Array.unsafe_set at.Attrib.delta i 1
      end;
      at.Attrib.epoch <- at.Attrib.epoch + (mst.Mstats.regions - rg0);
      (* Capacitor.consume, inlined. *)
      let e = cap.Capacitor.energy -. step_joules in
      cap.Capacitor.energy <- (if e > 0.0 then e else 0.0);
      s.f.compute_joules <- s.f.compute_joules +. step_joules;
      (* pass_time_on, inlined: quiescent draw, then harvest at the
         pre-advance timestamp (same order as the function). *)
      if step_ns > 0.0 then begin
        let dt = step_ns *. 1.0e-9 in
        let pq = p_quiescent *. dt in
        let e = cap.Capacitor.energy -. pq in
        cap.Capacitor.energy <- (if e > 0.0 then e else 0.0);
        s.f.quiescent_joules <- s.f.quiescent_joules +. pq;
        (* Trace sample, from the cache while [now] stays inside the
           current 100 µs hold interval.  On a recompute: [now] never
           goes backwards from 0, so [idx] is non-negative and one [mod]
           reproduces [Trace.power]'s wraparound; the refreshed edge is
           shrunk by a relative 1e-6 (≫ any rounding error, ≪ the
           interval) so it can never land past the true boundary. *)
        if s.f.now >= s.f.trace_edge then begin
          let idx = int_of_float (s.f.now *. 1.0e-9 /. tr_dt) in
          s.f.trace_p <- Array.unsafe_get tr_samples (idx mod tr_n);
          s.f.trace_edge <-
            float_of_int (idx + 1) *. tr_dt *. 1.0e9 *. 0.999999
        end;
        let p = s.f.trace_p in
        let e = cap.Capacitor.energy +. (p *. dt) in
        cap.Capacitor.energy <-
          (if e < cap.Capacitor.e_max then e else cap.Capacitor.e_max);
        s.f.now <- s.f.now +. step_ns;
        s.f.on_ns <- s.f.on_ns +. step_ns
      end;
      s.instructions <- s.instructions + 1;
      (* Amortized liveness beat (compare + subtract per instruction;
         everything else is on the cold fire path). *)
      hb.Hb.countdown <- hb.Hb.countdown - 1;
      if hb.Hb.countdown <= 0 then
        Hb.fire hb ~sim_ns:s.f.now ~instructions:s.instructions
          ~reboots:s.outages ~nvm_writes:(Nvm.write_events nvm);
      (* Sparse voltage samples while executing keep the counter track
         legible without swamping the trace. *)
      if Sink.on () && s.instructions mod 5_000 = 0 then
        Sink.emit ~ns:s.f.now (Ev.Voltage { volts = Capacitor.voltage s.cap });
      match fault_to_fire w ~instructions:s.instructions with
      | Some f ->
        w.fired <- true;
        inject s f ~trigger:(Fault.trigger_kind f.Fault.trigger);
        for _ = 1 to f.Fault.nested do inject s f ~trigger:"nested" done
      | None -> ()
    end
  done;
  let completed = M.halted m in
  (* A budget stop leaves the machine undrained: the outcome reports
     partial progress with [completed = false]. *)
  if completed then begin
    let pc0 = cpu.Cpu.pc in
    let w0 = Nvm.write_events nvm in
    let d = M.drain m ~now_ns:s.f.now in
    Capacitor.consume s.cap d.Cost.joules;
    s.f.compute_joules <- s.f.compute_joules +. d.Cost.joules;
    Attrib.note_cold at ~pc:pc0
      ~nvm_writes:(Nvm.write_events nvm - w0)
      ~ns:d.Cost.ns ~joules:d.Cost.joules ();
    pass_time_on s d.Cost.ns
  end;
  {
    completed;
    on_ns = s.f.on_ns;
    off_ns = s.f.off_ns;
    outages = s.outages;
    deaths = s.deaths;
    backups = s.backups;
    failed_backups = s.failed_backups;
    compute_joules = s.f.compute_joules;
    backup_joules = s.f.backup_joules;
    restore_joules = s.f.restore_joules;
    quiescent_joules = s.f.quiescent_joules;
    instructions = s.instructions;
    injected_faults = s.injected_faults;
  }

module Metrics = Sweep_obs.Metrics

(* Accumulate a finished run's outcome into the global metrics registry. *)
let publish_outcome ?(labels = []) (o : outcome) =
  if Metrics.enabled () then begin
    let c name v = Metrics.add (Metrics.counter ~labels name) v in
    c "driver.runs" 1;
    c "driver.outages" o.outages;
    c "driver.deaths" o.deaths;
    c "driver.backups" o.backups;
    c "driver.failed_backups" o.failed_backups;
    c "driver.instructions" o.instructions;
    Metrics.observe
      (Metrics.histogram ~labels "driver.on_fraction_pct"
         ~buckets:[| 10.0; 25.0; 50.0; 75.0; 90.0; 95.0; 99.0; 100.0 |])
      (if total_ns o <= 0.0 then 100.0 else o.on_ns /. total_ns o *. 100.0)
  end

let run ?max_instructions ?max_sim_s ?sim_budget_ns ?fault ?after_recovery
    ?heartbeat ?attrib m ~power =
  let o =
    match power with
    | Unlimited ->
      run_unlimited ?max_instructions ?sim_budget_ns ?fault ?after_recovery
        ?heartbeat ?attrib m
    | Harvested { trace; capacitor_farads; v_max; v_min } ->
      run_harvested ?max_instructions ?max_sim_s ?sim_budget_ns ?fault
        ?after_recovery ?heartbeat ?attrib m ~trace ~farads:capacitor_farads
        ~v_max ~v_min
  in
  publish_outcome o;
  o
