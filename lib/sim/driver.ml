module M = Sweep_machine.Machine_intf
module Cost = Sweep_machine.Cost
module Mstats = Sweep_machine.Mstats
module Capacitor = Sweep_energy.Capacitor
module Detector = Sweep_energy.Detector
module Trace = Sweep_energy.Power_trace
module Sink = Sweep_obs.Sink
module Ev = Sweep_obs.Event

type power =
  | Unlimited
  | Harvested of {
      trace : Trace.t;
      capacitor_farads : float;
      v_max : float;
      v_min : float;
    }

let harvested ?(v_max = 3.5) ?(v_min = 2.8) ~trace ~farads () =
  Harvested { trace; capacitor_farads = farads; v_max; v_min }

type outcome = {
  completed : bool;
  on_ns : float;
  off_ns : float;
  outages : int;
  deaths : int;
  backups : int;
  failed_backups : int;
  compute_joules : float;
  backup_joules : float;
  restore_joules : float;
  quiescent_joules : float;
  instructions : int;
}

let total_ns o = o.on_ns +. o.off_ns

let total_joules o =
  o.compute_joules +. o.backup_joules +. o.restore_joules +. o.quiescent_joules

exception Stagnation of string

let ns_to_s ns = ns *. 1.0e-9

(* ------------------------------------------------------------------ *)

let run_unlimited ?(max_instructions = 500_000_000) m =
  let now = ref 0.0 in
  let joules = ref 0.0 in
  let instructions = ref 0 in
  while (not (M.halted m)) && !instructions < max_instructions do
    let c = M.step m ~now_ns:!now in
    now := !now +. c.Cost.ns;
    joules := !joules +. c.Cost.joules;
    incr instructions
  done;
  if not (M.halted m) then
    raise (Stagnation "instruction guard exceeded without Halt");
  let d = M.drain m ~now_ns:!now in
  now := !now +. d.Cost.ns;
  joules := !joules +. d.Cost.joules;
  {
    completed = true;
    on_ns = !now;
    off_ns = 0.0;
    outages = 0;
    deaths = 0;
    backups = 0;
    failed_backups = 0;
    compute_joules = !joules;
    backup_joules = 0.0;
    restore_joules = 0.0;
    quiescent_joules = 0.0;
    instructions = !instructions;
  }

(* ------------------------------------------------------------------ *)

type harv_state = {
  m : M.packed;
  trace : Trace.t;
  cap : Capacitor.t;
  det : Detector.t;
  p_quiescent : float;
  mutable now : float; (* ns *)
  mutable on_ns : float;
  mutable off_ns : float;
  mutable outages : int;
  mutable deaths : int;
  mutable backups : int;
  mutable failed_backups : int;
  mutable compute_joules : float;
  mutable backup_joules : float;
  mutable restore_joules : float;
  mutable quiescent_joules : float;
  mutable instructions : int;
  mutable backup_armed : bool;
}

(* Advance wall time by [ns] while powered on: harvest plus quiescent
   detector draw. *)
let pass_time_on s ns =
  if ns > 0.0 then begin
    let dt = ns_to_s ns in
    let pq = s.p_quiescent *. dt in
    Capacitor.consume s.cap pq;
    s.quiescent_joules <- s.quiescent_joules +. pq;
    Capacitor.harvest s.cap ~power_w:(Trace.power s.trace (ns_to_s s.now)) ~dt_s:dt;
    s.now <- s.now +. ns;
    s.on_ns <- s.on_ns +. ns
  end

(* Dead/charging: integrate the trace at its own resolution until the
   voltage reaches [target]. *)
let charge_until s target ~max_off_s =
  let dt = 1.0e-4 in
  let waited = ref 0.0 in
  let steps = ref 0 in
  while (not (Capacitor.above s.cap target)) && !waited < max_off_s do
    (* Sample the recharge ramp sparsely for the voltage counter track. *)
    if Sink.on () && !steps mod 100 = 0 then
      Sink.emit ~ns:s.now (Ev.Voltage { volts = Capacitor.voltage s.cap });
    incr steps;
    (* Apply the net power over the step: harvesting and the detector
       draw are simultaneous, so clamping at Vmax must see the
       difference, not harvest-then-consume (which would cap a small
       capacitor's steady state a whole quiescent-step below Vmax). *)
    let p = Trace.power s.trace (ns_to_s s.now) in
    let net = p -. s.p_quiescent in
    if net >= 0.0 then Capacitor.harvest s.cap ~power_w:net ~dt_s:dt
    else Capacitor.consume s.cap (-.net *. dt);
    s.quiescent_joules <- s.quiescent_joules +. (s.p_quiescent *. dt);
    s.now <- s.now +. (dt *. 1.0e9);
    s.off_ns <- s.off_ns +. (dt *. 1.0e9);
    waited := !waited +. dt
  done;
  if not (Capacitor.above s.cap target) then
    raise
      (Stagnation
         (Printf.sprintf
            "charging stalled: harvest cannot reach %.2f V (detector draw %.0f uW)"
            target (s.p_quiescent *. 1.0e6)))

(* Propagation delay: time passes with quiescent draw only. *)
let propagation_delay s ns state =
  let dt = ns_to_s ns in
  let pq = s.p_quiescent *. dt in
  Capacitor.consume s.cap pq;
  s.quiescent_joules <- s.quiescent_joules +. pq;
  Capacitor.harvest s.cap ~power_w:(Trace.power s.trace (ns_to_s s.now)) ~dt_s:dt;
  s.now <- s.now +. ns;
  match state with
  | `On -> s.on_ns <- s.on_ns +. ns
  | `Off -> s.off_ns <- s.off_ns +. ns

(* Power-down / charge / reboot sequence shared by JIT stops and hard
   deaths. *)
let power_cycle s ~max_off_s =
  s.outages <- s.outages + 1;
  if Sink.on () then
    Sink.emit ~ns:s.now (Ev.Power_down { volts = Capacitor.voltage s.cap });
  M.on_power_failure s.m ~now_ns:s.now;
  charge_until s s.det.Detector.v_restore ~max_off_s;
  propagation_delay s s.det.Detector.t_plh_ns `Off;
  if Sink.on () then begin
    Sink.emit ~ns:s.now (Ev.Reboot { outage = s.outages });
    Sink.emit ~ns:s.now (Ev.Voltage { volts = Capacitor.voltage s.cap })
  end;
  let c = M.on_reboot s.m ~now_ns:s.now in
  Capacitor.consume s.cap c.Cost.joules;
  s.restore_joules <- s.restore_joules +. c.Cost.joules;
  if Sink.on () then
    Sink.emit ~ns:s.now (Ev.Restore { joules = c.Cost.joules });
  pass_time_on s c.Cost.ns;
  s.backup_armed <- true

let try_backup s v_min =
  (* Detection propagation delay passes first (§2.2). *)
  propagation_delay s s.det.Detector.t_phl_ns `On;
  match M.jit_backup_cost s.m with
  | None -> assert false
  | Some cost ->
    let available = Capacitor.usable_above s.cap v_min in
    if cost.Cost.joules <= available then begin
      M.commit_jit_backup s.m ~now_ns:s.now;
      Capacitor.consume s.cap cost.Cost.joules;
      s.backup_joules <- s.backup_joules +. cost.Cost.joules;
      (M.mstats s.m).Mstats.backup_events <-
        (M.mstats s.m).Mstats.backup_events + 1;
      (M.mstats s.m).Mstats.backup_joules <-
        (M.mstats s.m).Mstats.backup_joules +. cost.Cost.joules;
      pass_time_on s cost.Cost.ns;
      s.backups <- s.backups + 1;
      if Sink.on () then
        Sink.emit ~ns:s.now (Ev.Backup { ok = true; joules = cost.Cost.joules });
      true
    end
    else begin
      s.failed_backups <- s.failed_backups + 1;
      if Sink.on () then
        Sink.emit ~ns:s.now (Ev.Backup { ok = false; joules = cost.Cost.joules });
      false
    end

let run_harvested ?(max_instructions = 500_000_000) ?(max_sim_s = 600.0) m
    ~trace ~farads ~v_max ~v_min =
  let det = M.detector m in
  let s =
    {
      m;
      trace;
      cap = Capacitor.create ~farads ~v_max ~v_min;
      det;
      p_quiescent = Detector.quiescent_power_w det;
      now = 0.0;
      on_ns = 0.0;
      off_ns = 0.0;
      outages = 0;
      deaths = 0;
      backups = 0;
      failed_backups = 0;
      compute_joules = 0.0;
      backup_joules = 0.0;
      restore_joules = 0.0;
      quiescent_joules = 0.0;
      instructions = 0;
      backup_armed = true;
    }
  in
  let max_off_s = 120.0 in
  let guards () =
    if s.instructions > max_instructions then
      raise (Stagnation "instruction guard exceeded");
    if ns_to_s s.now > max_sim_s then
      raise (Stagnation "simulated-time guard exceeded")
  in
  let has_jit = M.jit_backup_cost m <> None in
  while not (M.halted m) do
    guards ();
    (* Re-arm the backup trigger once the voltage has recovered. *)
    if (not s.backup_armed) && Capacitor.above s.cap det.Detector.v_restore then
      s.backup_armed <- true;
    let backup_wanted =
      has_jit && s.backup_armed
      &&
      match det.Detector.v_backup with
      | Some vb -> not (Capacitor.above s.cap vb)
      | None -> false
    in
    if backup_wanted then begin
      s.backup_armed <- false;
      let ok = try_backup s v_min in
      if M.continues_after_backup m && ok then
        (* NvMR: keep running on the remaining charge. *)
        ()
      else
        (* Backup (or its failure) is followed by power-down. *)
        power_cycle s ~max_off_s
    end
    else if not (Capacitor.above s.cap v_min) then begin
      (* Hard death: volatile state is lost. *)
      s.deaths <- s.deaths + 1;
      if Sink.on () then
        Sink.emit ~ns:s.now (Ev.Death { volts = Capacitor.voltage s.cap });
      power_cycle s ~max_off_s
    end
    else begin
      let c = M.step m ~now_ns:s.now in
      Capacitor.consume s.cap c.Cost.joules;
      s.compute_joules <- s.compute_joules +. c.Cost.joules;
      pass_time_on s c.Cost.ns;
      s.instructions <- s.instructions + 1;
      (* Sparse voltage samples while executing keep the counter track
         legible without swamping the trace. *)
      if Sink.on () && s.instructions mod 5_000 = 0 then
        Sink.emit ~ns:s.now (Ev.Voltage { volts = Capacitor.voltage s.cap })
    end
  done;
  let d = M.drain m ~now_ns:s.now in
  Capacitor.consume s.cap d.Cost.joules;
  s.compute_joules <- s.compute_joules +. d.Cost.joules;
  pass_time_on s d.Cost.ns;
  {
    completed = true;
    on_ns = s.on_ns;
    off_ns = s.off_ns;
    outages = s.outages;
    deaths = s.deaths;
    backups = s.backups;
    failed_backups = s.failed_backups;
    compute_joules = s.compute_joules;
    backup_joules = s.backup_joules;
    restore_joules = s.restore_joules;
    quiescent_joules = s.quiescent_joules;
    instructions = s.instructions;
  }

module Metrics = Sweep_obs.Metrics

(* Accumulate a finished run's outcome into the global metrics registry. *)
let publish_outcome ?(labels = []) (o : outcome) =
  if Metrics.enabled () then begin
    let c name v = Metrics.add (Metrics.counter ~labels name) v in
    c "driver.runs" 1;
    c "driver.outages" o.outages;
    c "driver.deaths" o.deaths;
    c "driver.backups" o.backups;
    c "driver.failed_backups" o.failed_backups;
    c "driver.instructions" o.instructions;
    Metrics.observe
      (Metrics.histogram ~labels "driver.on_fraction_pct"
         ~buckets:[| 10.0; 25.0; 50.0; 75.0; 90.0; 95.0; 99.0; 100.0 |])
      (if total_ns o <= 0.0 then 100.0 else o.on_ns /. total_ns o *. 100.0)
  end

let run ?max_instructions ?max_sim_s m ~power =
  let o =
    match power with
    | Unlimited -> run_unlimited ?max_instructions m
    | Harvested { trace; capacitor_farads; v_max; v_min } ->
      run_harvested ?max_instructions ?max_sim_s m ~trace
        ~farads:capacitor_farads ~v_max ~v_min
  in
  publish_outcome o;
  o
