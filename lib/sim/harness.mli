(** One-stop harness: compile a mini-language program for a design, run
    it under a power environment, and (optionally) check the final NVM
    image against the reference interpreter.

    This is the workhorse of both the test suite (crash-consistency
    properties) and the experiment harness (speedups, miss rates, energy
    breakdowns). *)

type design =
  | Nvp
  | Wt
  | Nvsram
  | Nvsram_e
  | Replay
  | Nvmr
  | Sweep

val all_designs : design list
(** In the paper's usual presentation order. *)

val design_name : design -> string

val compile_mode : design -> Sweep_compiler.Pipeline.mode
(** Plain for the JIT designs, Replay for ReplayCache, Sweep for
    SweepCache. *)

val compile :
  ?options:Sweep_compiler.Pipeline.options ->
  design ->
  Sweep_lang.Ast.program ->
  Sweep_compiler.Pipeline.compiled
(** Compiles with the design's mode (overriding [options.mode]). *)

val machine :
  ?config:Sweep_machine.Config.t ->
  design ->
  Sweep_isa.Program.t ->
  Sweep_machine.Machine_intf.packed

type result = {
  design : design;
  outcome : Driver.outcome;
  machine : Sweep_machine.Machine_intf.packed;
  compiled : Sweep_compiler.Pipeline.compiled;
  attrib : Sweep_obs.Attrib.t option;
      (** populated iff the run was started with [~attrib:true] *)
}

val run :
  ?config:Sweep_machine.Config.t ->
  ?options:Sweep_compiler.Pipeline.options ->
  ?max_instructions:int ->
  ?max_sim_s:float ->
  ?sim_budget_ns:float ->
  ?fault:Fault.t ->
  ?after_recovery:(now_ns:float -> unit) ->
  ?heartbeat:Sweep_obs.Heartbeat.t ->
  ?attrib:bool ->
  design ->
  power:Driver.power ->
  Sweep_lang.Ast.program ->
  result
(** [?fault]/[?after_recovery] are passed through to {!Driver.run} —
    adversarial crash injection and the differential checker's
    observation hook — as are [?sim_budget_ns] (graceful early-stop
    ceiling) and [?heartbeat] (live-telemetry beats).  [?attrib]
    (default false) arms a per-PC attribution profiler sized to the
    compiled program and returns it in the result for serialisation
    via {!Profile}. *)

val mstats : result -> Sweep_machine.Mstats.t
val cache_miss_rate : result -> float
val nvm_writes : result -> int

val final_globals :
  result -> (string * int array) list
(** The program's globals as read back from the machine's final NVM
    image. *)

val check_against_interp :
  result -> Sweep_lang.Ast.program -> (unit, string) Result.t
(** Compares {!final_globals} with the reference interpreter; the error
    describes the first mismatching global/index. *)
