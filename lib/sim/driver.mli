(** Intermittent-execution driver.

    Runs a machine either with unlimited power (the Fig. 5 setting) or
    against a capacitor charged by a power trace.  The driver owns the
    voltage state machine:

    - JIT designs back up when the voltage crosses their backup threshold
      (after the detector's propagation delay), then power down; a backup
      only commits if the energy left above Vmin covers its cost.
    - Every design dies at Vmin (volatile state lost) and reboots at its
      restore threshold after the restore propagation delay, paying its
      recovery cost.
    - NvMR ([continues_after_backup]) keeps executing after a backup
      until actual death, re-arming its backup trigger after recharge.
    - The detector's quiescent draw is charged continuously, on and off —
      a deliberate part of the energy story (§2.2). *)

type power =
  | Unlimited
  | Harvested of {
      trace : Sweep_energy.Power_trace.t;
      capacitor_farads : float;
      v_max : float;  (** Table 1: 3.5 *)
      v_min : float;  (** Table 1: 2.8 *)
    }

val harvested :
  ?v_max:float -> ?v_min:float -> trace:Sweep_energy.Power_trace.t ->
  farads:float -> unit -> power

type outcome = {
  completed : bool;
      (** reached [Halt] within the guards; [false] only for a graceful
          [?sim_budget_ns] partial stop (the machine is left undrained
          and all totals report partial progress) *)
  on_ns : float;          (** time spent executing (incl. stalls) *)
  off_ns : float;         (** time spent dead/charging *)
  outages : int;          (** power-down events (backup stops + deaths) *)
  deaths : int;           (** hard deaths at Vmin only *)
  backups : int;
  failed_backups : int;   (** backups that did not fit in the energy left *)
  compute_joules : float; (** instruction + memory energy *)
  backup_joules : float;
  restore_joules : float;
  quiescent_joules : float;
  instructions : int;
  injected_faults : int;  (** crashes injected by the [?fault] plan *)
}

val total_ns : outcome -> float
val total_joules : outcome -> float

exception Stagnation of string
(** Raised when the run exceeds its guards (no forward progress — e.g. a
    region too long for the capacitor, or harvest below the detector
    draw). *)

val run :
  ?max_instructions:int ->
  ?max_sim_s:float ->
  ?sim_budget_ns:float ->
  ?fault:Fault.t ->
  ?after_recovery:(now_ns:float -> unit) ->
  ?heartbeat:Sweep_obs.Heartbeat.t ->
  ?attrib:Sweep_obs.Attrib.t ->
  Sweep_machine.Machine_intf.packed ->
  power:power ->
  outcome
(** Executes until [Halt] (plus {!Sweep_machine.Machine_intf.drain}).
    Guards default to 500 M instructions and 600 simulated seconds.
    When {!Sweep_obs.Sink.on}, emits power/backup/restore/voltage events;
    when {!Sweep_obs.Metrics.enabled}, publishes the outcome (unlabelled)
    via {!publish_outcome}.

    [?sim_budget_ns] is a {e graceful} simulated-time ceiling: unlike
    the guards (which raise {!Stagnation}), reaching it stops the run
    cleanly with [completed = false] and partial totals — sweeptune's
    early-stop uses it to cut dominated cells.  The check is one float
    compare per loop iteration, so the budget is honoured to within
    one instruction (or one power cycle).

    [?heartbeat] attaches per-run liveness beats: the hot loops pay a
    compare + subtract per instruction and call
    {!Sweep_obs.Heartbeat.fire} every [every] instructions, emitting
    {!Sweep_obs.Event.Heartbeat} (instructions, reboots, NVM writes;
    simulated time as the timestamp) and invoking the observer — the
    executor's live-status hook.  Allocation-free when beats don't
    fire; the fired path is amortized far below the [test alloc]
    gate's threshold.

    [?attrib] arms per-PC attribution: the cycle loops charge each
    instruction's time, energy, NVM line-writes, cache misses and
    persist stalls to the PC that executed it, and the epoch scheme in
    {!Sweep_obs.Attrib} splits work into forward progress vs.
    re-executed-after-crash.  The loops always run the accumulation
    stores (indexing a one-slot buffer when no profiler is attached),
    so arming costs no extra branch and the path stays allocation-free
    — [test alloc] runs with attribution armed.  Crash paths emit an
    {!Sweep_obs.Event.Reexec} counter sample (discarded instructions
    per outage) whenever a sink is on, profiler or not.

    [?fault] injects one adversarial power failure at the plan's crash
    point (plus its nested re-crashes), on top of whatever the voltage
    model does: the machine's [on_power_failure]/[on_reboot] paths run
    exactly as for a real death, a JIT design first banks the backup
    its detector would have banked, and a [Fault_inject] event is
    emitted.  Under [Unlimited] power the off period is instantaneous.
    Event-triggered plans require a sequential run.

    [?after_recovery] is invoked after {e every} completed recovery
    (injected or voltage-driven) with the machine in its
    just-recovered state — the differential checker's observation
    hook. *)

val publish_outcome : ?labels:(string * string) list -> outcome -> unit
(** Accumulate an outcome's counters ([driver.*]) into the global
    {!Sweep_obs.Metrics} registry.  No-op when metrics are disabled. *)
