(** Intermittent-execution driver.

    Runs a machine either with unlimited power (the Fig. 5 setting) or
    against a capacitor charged by a power trace.  The driver owns the
    voltage state machine:

    - JIT designs back up when the voltage crosses their backup threshold
      (after the detector's propagation delay), then power down; a backup
      only commits if the energy left above Vmin covers its cost.
    - Every design dies at Vmin (volatile state lost) and reboots at its
      restore threshold after the restore propagation delay, paying its
      recovery cost.
    - NvMR ([continues_after_backup]) keeps executing after a backup
      until actual death, re-arming its backup trigger after recharge.
    - The detector's quiescent draw is charged continuously, on and off —
      a deliberate part of the energy story (§2.2). *)

type power =
  | Unlimited
  | Harvested of {
      trace : Sweep_energy.Power_trace.t;
      capacitor_farads : float;
      v_max : float;  (** Table 1: 3.5 *)
      v_min : float;  (** Table 1: 2.8 *)
    }

val harvested :
  ?v_max:float -> ?v_min:float -> trace:Sweep_energy.Power_trace.t ->
  farads:float -> unit -> power

type outcome = {
  completed : bool;       (** reached [Halt] within the guards *)
  on_ns : float;          (** time spent executing (incl. stalls) *)
  off_ns : float;         (** time spent dead/charging *)
  outages : int;          (** power-down events (backup stops + deaths) *)
  deaths : int;           (** hard deaths at Vmin only *)
  backups : int;
  failed_backups : int;   (** backups that did not fit in the energy left *)
  compute_joules : float; (** instruction + memory energy *)
  backup_joules : float;
  restore_joules : float;
  quiescent_joules : float;
  instructions : int;
}

val total_ns : outcome -> float
val total_joules : outcome -> float

exception Stagnation of string
(** Raised when the run exceeds its guards (no forward progress — e.g. a
    region too long for the capacitor, or harvest below the detector
    draw). *)

val run :
  ?max_instructions:int ->
  ?max_sim_s:float ->
  Sweep_machine.Machine_intf.packed ->
  power:power ->
  outcome
(** Executes until [Halt] (plus {!Sweep_machine.Machine_intf.drain}).
    Guards default to 500 M instructions and 600 simulated seconds.
    When {!Sweep_obs.Sink.on}, emits power/backup/restore/voltage events;
    when {!Sweep_obs.Metrics.enabled}, publishes the outcome (unlabelled)
    via {!publish_outcome}. *)

val publish_outcome : ?labels:(string * string) list -> outcome -> unit
(** Accumulate an outcome's counters ([driver.*]) into the global
    {!Sweep_obs.Metrics} registry.  No-op when metrics are disabled. *)
