(* Injectable fault plans: adversarial power failures at a chosen
   execution point, independent of what the voltage model would do.
   One plan describes one crash (optionally followed by immediate
   nested re-crashes exercising recovery-of-recovery). *)

type trigger =
  | At_instruction of int
  | At_event of { tag : string; nth : int }

type t = { trigger : trigger; nested : int }

let at_instruction ?(nested = 0) n =
  if n < 1 then invalid_arg "Fault.at_instruction";
  { trigger = At_instruction n; nested = max 0 nested }

let at_event ?(nested = 0) ?(nth = 1) tag =
  if nth < 1 then invalid_arg "Fault.at_event";
  { trigger = At_event { tag; nth }; nested = max 0 nested }

let trigger_kind = function
  | At_instruction _ -> "instr"
  | At_event _ -> "event"

let describe t =
  let base =
    match t.trigger with
    | At_instruction n -> Printf.sprintf "instr %d" n
    | At_event { tag; nth } -> Printf.sprintf "event %s #%d" tag nth
  in
  if t.nested > 0 then Printf.sprintf "%s +%d nested" base t.nested else base
