(** Serialisation of per-PC attribution profiles.

    Bridges a run's {!Sweep_obs.Attrib} counters and the program's
    label map ({!Sweep_isa.Decoded}) into two deterministic formats:

    - a schema-versioned JSON table ([sweepsim --attrib out.json],
      read back by [sweeptrace profile] via
      {!Sweep_analyze.Profile_view});
    - Brendan Gregg collapsed stacks ([func;label+off;op weight]) for
      flamegraph.pl / speedscope / inferno.

    Output contains no wall-clock or host data, and rows are emitted in
    PC order, so the same job profiles byte-identically at any [-j]. *)

val schema_version : int
(** Bumped on any breaking change to the JSON layout (currently 1). *)

type row = {
  pc : int;
  op : string;  (** mnemonic, e.g. ["store"], ["br.lt"] *)
  label : string;  (** nearest enclosing label *)
  label_off : int;  (** offset from that label *)
  func : string;  (** enclosing source function *)
  count : int;
  forward : int;  (** count - reexec: instructions that stuck *)
  reexec : int;
  crashes : int;
  ns : float;
  stall_ns : float;
  joules : float;
  backup_joules : float;
  restore_joules : float;
  ckpt_ns : float;
  nvm_writes : int;
  ckpt_nvm_writes : int;
  cache_misses : int;
}

type t = {
  design : string;
  bench : string;
  scale : float;
  key : string;
  totals : Sweep_obs.Attrib.totals;
  rows : row list;  (** PC order; only PCs with activity *)
}

val make :
  ?design:string ->
  ?bench:string ->
  ?scale:float ->
  ?key:string ->
  Sweep_isa.Program.t ->
  Sweep_obs.Attrib.t ->
  t
(** Raises [Invalid_argument] if the counters are disabled or sized for
    a different program. *)

val of_result :
  ?bench:string -> ?scale:float -> ?key:string -> Harness.result ->
  t option
(** [None] when the run was not started with [~attrib:true]. *)

val to_json : t -> string
val to_folded : t -> string
val write_json : t -> path:string -> unit
val write_folded : t -> path:string -> unit
