open Sweep_lang.Ast

(* Counters are threaded per-invocation (no module-level state) so
   concurrent compilations in different domains stay independent and
   every compilation mints the same fresh names regardless of what ran
   before it. *)
type ctx = { counter : int ref; fresh_counter : int ref }

let rec stores_in_stmts stmts = List.fold_left (fun a s -> a + stores_in_stmt s) 0 stmts

and stores_in_stmt = function
  | Store _ | Set_global _ -> 1
  | Assign _ | Call_stmt _ | Return _ -> 0
  | If (_, t, e) -> max (stores_in_stmts t) (stores_in_stmts e)
  | While (_, b) | For (_, _, _, b) -> stores_in_stmts b

let rec size_of_stmts stmts = List.fold_left (fun a s -> a + size_of_stmt s) 0 stmts

and size_of_stmt = function
  | Assign _ | Set_global _ | Store _ | Call_stmt _ | Return _ -> 1
  | If (_, t, e) -> 1 + size_of_stmts t + size_of_stmts e
  | While (_, b) | For (_, _, _, b) -> 2 + size_of_stmts b

let rec assigns_var v stmts = List.exists (assigns_var_stmt v) stmts

and assigns_var_stmt v = function
  | Assign (x, _) -> x = v
  | For (x, _, _, b) -> x = v || assigns_var v b
  | If (_, t, e) -> assigns_var v t || assigns_var v e
  | While (_, b) -> assigns_var v b
  | Set_global _ | Store _ | Call_stmt _ | Return _ -> false

let rec has_return stmts = List.exists has_return_stmt stmts

and has_return_stmt = function
  | Return _ -> true
  | If (_, t, e) -> has_return t || has_return e
  | While (_, b) | For (_, _, _, b) -> has_return b
  | Assign _ | Set_global _ | Store _ | Call_stmt _ -> false

let pick_factor ~threshold ~max_factor body =
  let stores = stores_in_stmts body in
  let size = size_of_stmts body in
  if size > 20 || has_return body then 1
  else if stores = 0 then
    (* Store-free loops get no header boundary, but a long-running one
       still receives a forward-progress split (EH cap) that then fires
       every iteration; unrolling hard dilutes that boundary. *)
    if size <= 10 then 2 * max_factor else max_factor
  else begin
    let budget = max 1 (threshold / 2) in
    let by_stores = budget / max 1 stores in
    min max_factor (max 1 by_stores)
  end

let rec transform ctx ~threshold ~max_factor stmts =
  List.map (transform_stmt ctx ~threshold ~max_factor) stmts

and transform_stmt ctx ~threshold ~max_factor stmt =
  let recurse = transform ctx ~threshold ~max_factor in
  match stmt with
  | For (v, lo, hi, body) ->
    let body = recurse body in
    let u = pick_factor ~threshold ~max_factor body in
    if u < 2 || assigns_var v body then For (v, lo, hi, body)
    else begin
      incr ctx.counter;
      incr ctx.fresh_counter;
      let hi_name = Printf.sprintf "__uh%d" !(ctx.fresh_counter) in
      let lo_name = Printf.sprintf "__ul%d" !(ctx.fresh_counter) in
      let step = body @ [ Assign (v, Binop (Add, Var v, Int 1)) ] in
      let unrolled_body = List.concat (List.init u (fun _ -> step)) in
      let main_loop =
        While
          ( Binop (Le, Binop (Add, Var v, Int (u - 1)), Binop (Sub, Var hi_name, Int 1)),
            unrolled_body )
      in
      let remainder = While (Binop (Lt, Var v, Var hi_name), step) in
      (* Wrap in an If so the sequence is a single statement.  [lo] and
         [hi] are evaluated in the same order as the original For, before
         the loop variable changes. *)
      If
        ( Int 1,
          [
            Assign (lo_name, lo);
            Assign (hi_name, hi);
            Assign (v, Var lo_name);
            main_loop;
            remainder;
          ],
          [] )
    end
  | While (c, body) -> While (c, recurse body)
  | If (c, t, e) -> If (c, recurse t, recurse e)
  | Assign _ | Set_global _ | Store _ | Call_stmt _ | Return _ -> stmt

let program_counted ~threshold ~max_factor (prog : program) =
  let ctx = { counter = ref 0; fresh_counter = ref 0 } in
  let funcs =
    List.map
      (fun f -> { f with body = transform ctx ~threshold ~max_factor f.body })
      prog.funcs
  in
  ({ prog with funcs }, !(ctx.counter))

let program ~threshold ~max_factor prog =
  fst (program_counted ~threshold ~max_factor prog)
