(** End-to-end compilation driver.

    Modes:
    - [Plain]   — no region machinery; what NVP / WT / NVSRAM / NvMR run
                  (their crash consistency is hardware JIT checkpointing).
    - [Sweep]   — region boundaries + live-out/PC checkpoint stores
                  (SweepCache, §3.1/§4.1).
    - [Replay]  — the same region partition, instrumented with a clwb per
                  store and a fence per boundary (ReplayCache, §2.2). *)

type mode = Plain | Sweep | Replay

type options = {
  mode : mode;
  store_threshold : int;  (** persist-buffer size; paper default 64 *)
  instr_cap : int;
      (** EH-model region-length cap; defaults to
          {!Sweep_energy.Eh_model.region_instr_cap} for the paper's
          470 nF configuration *)
  unroll : bool;          (** loop unrolling for region enlargement *)
  max_unroll : int;       (** unroll-factor cap; default 4 *)
  inline : bool;
      (** small-function inlining (paper §5 future work); off by default
          to match the evaluated system, on for the ablation *)
}

val default_options : options
(** [Sweep] mode with the paper's defaults. *)

val options : ?mode:mode -> ?store_threshold:int -> ?instr_cap:int ->
  ?unroll:bool -> ?max_unroll:int -> ?inline:bool -> unit -> options

val options_for :
  ?mode:mode -> ?inline:bool -> farads:float -> store_threshold:int ->
  max_unroll:int -> unit -> options
(** Options for one point of the design space: [instr_cap] is recomputed
    from the EH model for the given capacitor, so a swept capacitor axis
    keeps regions executable on one charge (a fixed 470 nF cap would
    livelock small capacitors and under-fill large ones).  [max_unroll]
    of 1 disables unrolling. *)

type compile_stats = {
  boundaries : int;
  ckpt_stores : int;
  clwbs : int;
  spills : int;
  unrolled_loops : int;
  inlined_calls : int;
  static_instrs : int;
  static_stores : int;
  max_region_stores : int;
}

type compiled = {
  program : Sweep_isa.Program.t;
  stats : compile_stats;
  globals : (string * int * int) list;
      (** (name, base byte address, words) of every source global, for
          checking final memory against the reference interpreter. *)
}

val compile : ?options:options -> Sweep_lang.Ast.program -> compiled
