(** Small-function inlining (paper §5).

    The paper leaves "small function inlining" as future work for
    enlarging regions: every call costs a function-entry and a
    function-exit boundary, so benchmarks with hot helpers (pegwit's
    field arithmetic, rijndael's round helpers) fragment into many tiny
    regions.  This pass inlines small, single-exit callees at
    [Assign]-from-call and [Call_stmt] sites, with locals renamed apart.

    A function is inlinable when its body is at most [max_size]
    statements, contains no [Return] except optionally as the last
    top-level statement, and (transitively) no recursion — guaranteed by
    {!Sweep_lang.Ast.validate}. *)

val program :
  ?max_size:int -> ?rounds:int -> Sweep_lang.Ast.program -> Sweep_lang.Ast.program
(** [program p] returns a semantically identical program with eligible
    call sites expanded.  [max_size] defaults to 16 statements; [rounds]
    (default 3) bounds call-chain inlining depth.  Uninlinable calls are
    left untouched. *)

val program_counted :
  ?max_size:int ->
  ?rounds:int ->
  Sweep_lang.Ast.program ->
  Sweep_lang.Ast.program * int
(** Like {!program}, also returning the number of call sites expanded.
    All state is local to the invocation, so concurrent compilations in
    different domains are independent and deterministic. *)
