open Sweep_lang.Ast

(* All inlining state is local to one [program] invocation so concurrent
   compilations (the parallel experiment executor runs one per domain)
   cannot interleave counter bumps — a shared counter would let two call
   sites in different domains mint colliding rename prefixes. *)
type ctx = {
  env : (string, func) Hashtbl.t;
  counter : int ref;       (* call sites expanded, for compile stats *)
  site_counter : int ref;  (* per-site rename prefix *)
}

let rec size_of_stmts stmts = List.fold_left (fun a s -> a + size_of_stmt s) 0 stmts

and size_of_stmt = function
  | Assign _ | Set_global _ | Store _ | Call_stmt _ | Return _ -> 1
  | If (_, t, e) -> 1 + size_of_stmts t + size_of_stmts e
  | While (_, b) | For (_, _, _, b) -> 2 + size_of_stmts b

(* Returns appearing anywhere except as the final top-level statement
   make a callee uninlinable (they would need control-flow surgery). *)
let rec has_inner_return stmts =
  match stmts with
  | [] -> false
  | [ Return _ ] -> false
  | s :: rest -> stmt_contains_return s || has_inner_return rest

and stmt_contains_return = function
  | Return _ -> true
  | If (_, t, e) -> has_inner_return' t || has_inner_return' e
  | While (_, b) | For (_, _, _, b) -> has_inner_return' b
  | Assign _ | Set_global _ | Store _ | Call_stmt _ -> false

and has_inner_return' stmts = List.exists stmt_contains_return stmts

let inlinable ~max_size (f : func) =
  f.fname <> "main"
  && size_of_stmts f.body <= max_size
  && not (has_inner_return f.body)

(* Rename the callee's locals (params included) apart from the caller's. *)
let rec rename_stmt ctx table = function
  | Assign (v, e) -> Assign (rename_var ctx table v, rename_expr ctx table e)
  | Set_global (g, e) -> Set_global (g, rename_expr ctx table e)
  | Store (a, idx, v) ->
    Store (a, rename_expr ctx table idx, rename_expr ctx table v)
  | If (c, t, e) ->
    If (rename_expr ctx table c, List.map (rename_stmt ctx table) t,
        List.map (rename_stmt ctx table) e)
  | While (c, b) ->
    While (rename_expr ctx table c, List.map (rename_stmt ctx table) b)
  | For (v, lo, hi, b) ->
    For (rename_var ctx table v, rename_expr ctx table lo,
         rename_expr ctx table hi, List.map (rename_stmt ctx table) b)
  | Call_stmt (f, args) -> Call_stmt (f, List.map (rename_expr ctx table) args)
  | Return e -> Return (Option.map (rename_expr ctx table) e)

and rename_expr ctx table = function
  | Int n -> Int n
  | Var v -> Var (rename_var ctx table v)
  | Global g -> Global g
  | Load (a, idx) -> Load (a, rename_expr ctx table idx)
  | Binop (op, a, b) -> Binop (op, rename_expr ctx table a, rename_expr ctx table b)
  | Call (f, args) -> Call (f, List.map (rename_expr ctx table) args)

and rename_var ctx table v =
  match Hashtbl.find_opt table v with
  | Some v' -> v'
  | None ->
    let v' = Printf.sprintf "__i%d_%s" !(ctx.site_counter) v in
    Hashtbl.replace table v v';
    v'

(* Expand one call: bind arguments to renamed parameters, splice the
   renamed body, and turn a trailing [Return e] into an assignment to
   [result] (when requested). *)
let expand ctx (callee : func) args ~result =
  incr ctx.counter;
  incr ctx.site_counter;
  let table = Hashtbl.create 8 in
  let binds =
    List.map2
      (fun p arg -> Assign (rename_var ctx table p, arg))
      callee.params args
  in
  let body = List.map (rename_stmt ctx table) callee.body in
  let rec rewrite_tail acc = function
    | [ Return e ] ->
      let tail =
        match (result, e) with
        | Some x, Some e -> [ Assign (x, e) ]
        | Some x, None -> [ Assign (x, Int 0) ]
        | None, _ -> []
      in
      List.rev_append acc tail
    | [] -> (
      match result with
      | Some x -> List.rev (Assign (x, Int 0) :: acc)
      | None -> List.rev acc)
    | s :: rest -> rewrite_tail (s :: acc) rest
  in
  binds @ rewrite_tail [] body

let rec transform_stmts ctx stmts = List.concat_map (transform_stmt ctx) stmts

and transform_stmt ctx stmt =
  match stmt with
  | Assign (x, Call (f, args))
    when Hashtbl.mem ctx.env f
         && List.for_all (fun a -> not (expr_has_call a)) args ->
    expand ctx (Hashtbl.find ctx.env f) args ~result:(Some x)
  | Call_stmt (f, args)
    when Hashtbl.mem ctx.env f
         && List.for_all (fun a -> not (expr_has_call a)) args ->
    expand ctx (Hashtbl.find ctx.env f) args ~result:None
  | Set_global (g, Call (f, args))
    when Hashtbl.mem ctx.env f
         && List.for_all (fun a -> not (expr_has_call a)) args ->
    let tmp = Printf.sprintf "__ir%d" (!(ctx.site_counter) + 1) in
    expand ctx (Hashtbl.find ctx.env f) args ~result:(Some tmp)
    @ [ Set_global (g, Var tmp) ]
  | If (c, t, e) -> [ If (c, transform_stmts ctx t, transform_stmts ctx e) ]
  | While (c, b) -> [ While (c, transform_stmts ctx b) ]
  | For (v, lo, hi, b) -> [ For (v, lo, hi, transform_stmts ctx b) ]
  | Assign _ | Set_global _ | Store _ | Call_stmt _ | Return _ -> [ stmt ]

and expr_has_call = function
  | Int _ | Var _ | Global _ -> false
  | Load (_, e) -> expr_has_call e
  | Binop (_, a, b) -> expr_has_call a || expr_has_call b
  | Call _ -> true

let one_round ctx ~max_size (prog : program) =
  Hashtbl.reset ctx.env;
  List.iter
    (fun f -> if inlinable ~max_size f then Hashtbl.replace ctx.env f.fname f)
    prog.funcs;
  let funcs =
    List.map (fun f -> { f with body = transform_stmts ctx f.body }) prog.funcs
  in
  { prog with funcs }

let program_counted ?(max_size = 16) ?(rounds = 3) prog =
  let ctx = { env = Hashtbl.create 8; counter = ref 0; site_counter = ref 0 } in
  let rec go n prog =
    if n = 0 then prog
    else begin
      let before = !(ctx.counter) in
      let prog' = one_round ctx ~max_size prog in
      if !(ctx.counter) = before then prog' else go (n - 1) prog'
    end
  in
  let result = go rounds prog in
  validate result;
  (result, !(ctx.counter))

let program ?max_size ?rounds prog =
  fst (program_counted ?max_size ?rounds prog)
