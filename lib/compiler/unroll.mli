(** AST-level loop unrolling (paper §4.1, Fig. 4).

    Small [For] loops produce tiny regions when a boundary sits at the
    loop header; unrolling the body enlarges the region.  A loop is
    unrolled by factor [u] when its body does not reassign the loop
    variable, is small, and [u × body-stores] stays within half the store
    threshold — mirroring the paper's example of doubling a 5-store body
    under a threshold of 10. *)

val program :
  threshold:int -> max_factor:int -> Sweep_lang.Ast.program -> Sweep_lang.Ast.program
(** Returns a semantically identical program with eligible loops
    unrolled.  [max_factor] caps the unroll factor (paper uses small
    factors; default pipeline passes 4). *)

val program_counted :
  threshold:int ->
  max_factor:int ->
  Sweep_lang.Ast.program ->
  Sweep_lang.Ast.program * int
(** Like {!program}, also returning the number of loops unrolled (for
    compile statistics).  All state is local to the invocation, so
    concurrent compilations in different domains are independent and
    deterministic. *)
