(** Region formation and register checkpointing (paper §3.1, §4.1).

    Boundaries ([Region_end] instructions) are placed:
    - at every function entry and before every return (entry/exit points);
    - immediately before and after every call site;
    - at the header of every loop whose body contains a store or a call
      (store-free loops are exempt, paper footnote 6);
    - wherever the running store count along any CFG path would exceed the
      store threshold, or the running instruction count would exceed the
      EH-model cap (forward progress, §4.1 "Forward Progress").

    The store threshold handed to the path scan reserves room for the
    checkpoint stores of the ending boundary (≤ 16 registers + 1 PC
    save), which resolves the paper's circular dependence between
    partitioning and checkpointing in one pass; a verification pass
    re-counts with checkpoints included and asserts the persist-buffer
    invariant.

    In [`Sweep] mode every boundary gets live-out checkpoint stores into
    the register-slot array plus a PC save targeting the label just after
    the boundary.  In [`Replay] mode, boundaries instead get a [Fence],
    and every store is followed by a [Clwb] of its line (ReplayCache,
    §2.2). *)

type mode = [ `Sweep | `Replay ]

type stats = {
  boundaries : int;       (** number of [Region_end] sites *)
  ckpt_stores : int;      (** checkpoint stores inserted (incl. PC saves) *)
  clwbs : int;            (** clwb instructions inserted (Replay mode) *)
  max_region_stores : int;(** largest path store count incl. checkpoints *)
}

val ckpt_reserve : int
(** Store slots the path scan reserves for a boundary's checkpoint
    (16 registers + PC save + slack).  [run] requires
    [threshold > ckpt_reserve]; design-space tooling uses this to reject
    infeasible store caps before scheduling a simulation. *)

val run :
  layout:Sweep_isa.Layout.t ->
  threshold:int ->
  instr_cap:int ->
  mode:mode ->
  Mcfg.func ->
  stats
(** Mutates the function in place.  Raises [Failure] if the final
    verification finds a path exceeding the threshold. *)
