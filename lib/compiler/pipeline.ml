type mode = Plain | Sweep | Replay

type options = {
  mode : mode;
  store_threshold : int;
  instr_cap : int;
  unroll : bool;
  max_unroll : int;
  inline : bool;
}

(* The forward-progress cap comes from the EH model: a region (plus its
   recovery re-execution) must fit one capacitor charge. *)
let default_instr_cap =
  Sweep_energy.Eh_model.region_instr_cap ~store_threshold:64 ()

let default_options =
  { mode = Sweep; store_threshold = 64; instr_cap = default_instr_cap;
    unroll = true; max_unroll = 4; inline = false }

let options ?(mode = Sweep) ?(store_threshold = 64)
    ?(instr_cap = default_instr_cap) ?(unroll = true) ?(max_unroll = 4)
    ?(inline = false) () =
  { mode; store_threshold; instr_cap; unroll; max_unroll; inline }

let options_for ?(mode = Sweep) ?(inline = false) ~farads ~store_threshold
    ~max_unroll () =
  {
    mode;
    store_threshold;
    instr_cap = Sweep_energy.Eh_model.region_instr_cap ~farads ~store_threshold ();
    unroll = max_unroll > 1;
    max_unroll;
    inline;
  }

type compile_stats = {
  boundaries : int;
  ckpt_stores : int;
  clwbs : int;
  spills : int;
  unrolled_loops : int;
  inlined_calls : int;
  static_instrs : int;
  static_stores : int;
  max_region_stores : int;
}

type compiled = {
  program : Sweep_isa.Program.t;
  stats : compile_stats;
  globals : (string * int * int) list;
}

let compile ?(options = default_options) ast =
  let ast, inlined =
    if options.inline then Inline.program_counted ast else (ast, 0)
  in
  let ast, unrolled =
    if options.unroll then
      Unroll.program_counted ~threshold:options.store_threshold
        ~max_factor:options.max_unroll ast
    else (ast, 0)
  in
  let frame = Frame.create () in
  let tac_funcs = Lower.program frame ast in
  let main = "main" in
  let results = List.map (Regalloc.run frame ~main) tac_funcs in
  let mfuncs = List.map (fun r -> r.Regalloc.mfunc) results in
  let spills = List.fold_left (fun a r -> a + r.Regalloc.spills) 0 results in
  (* The final layout is only known after spill slots are allocated, but
     checkpoint-slot addresses are fixed constants, so the region pass can
     use a provisional layout. *)
  let layout = Sweep_isa.Layout.make ~data_limit:(Frame.data_limit frame) in
  let region_stats =
    match options.mode with
    | Plain -> []
    | Sweep ->
      List.map
        (Regions.run ~layout ~threshold:options.store_threshold
           ~instr_cap:options.instr_cap ~mode:`Sweep)
        mfuncs
    | Replay ->
      List.map
        (Regions.run ~layout ~threshold:options.store_threshold
           ~instr_cap:options.instr_cap ~mode:`Replay)
        mfuncs
  in
  let program = Emit.program frame ~main mfuncs in
  let sum f = List.fold_left (fun a s -> a + f s) 0 region_stats in
  let maxi f = List.fold_left (fun a s -> max a (f s)) 0 region_stats in
  let stats =
    {
      boundaries = sum (fun s -> s.Regions.boundaries);
      ckpt_stores = sum (fun s -> s.Regions.ckpt_stores);
      clwbs = sum (fun s -> s.Regions.clwbs);
      spills;
      unrolled_loops = unrolled;
      inlined_calls = inlined;
      static_instrs = Sweep_isa.Program.static_instruction_count program;
      static_stores = Sweep_isa.Program.static_store_count program;
      max_region_stores = maxi (fun s -> s.Regions.max_region_stores);
    }
  in
  { program; stats; globals = Frame.global_names frame }
