(** NVM-resident persist buffer (paper §3.2, §4.5).

    A FIFO of cacheline-sized redo entries.  It may hold multiple entries
    for the same line (multiple evictions); searches return the youngest
    match (footnote 7) and the drain to NVM applies entries oldest-first
    so the younger overwrites the older (footnote 4).

    The buffer is nonvolatile: its contents survive power failure.  The
    empty-bit of §4.4 is exactly {!is_empty}. *)

type t

exception Overflow
(** Raised when a push exceeds capacity — the compiler's store-threshold
    invariant guarantees this never happens; tests rely on the
    exception. *)

val create : capacity:int -> t

val capacity : t -> int
val count : t -> int
val is_empty : t -> bool

val push : t -> base:int -> data:int array -> unit
(** Append a line image (data is copied). *)

val search : t -> int -> (int array * int) option
(** [search t base] returns the *youngest* entry for the line, together
    with the number of entries scanned to find it (sequential-search cost
    model).  [None] scans everything. *)

val entries_oldest_first : t -> (int * int array) list

val truncate_to_oldest : t -> keep:int -> unit
(** Drop all but the oldest [keep] entries.  Fault injection only:
    models a stuck [phase1Complete] bit claiming a cut-short flush
    completed — the dropped tail is data that never physically reached
    the buffer. *)

val clear : t -> unit

val peak : t -> int
(** High-water mark of occupancy since creation. *)
