(** NVM-resident persist buffer (paper §3.2, §4.5).

    A FIFO of cacheline-sized redo entries.  It may hold multiple entries
    for the same line (multiple evictions); searches return the youngest
    match (footnote 7) and the drain to NVM applies entries oldest-first
    so the younger overwrites the older (footnote 4).

    The buffer is nonvolatile: its contents survive power failure.  The
    empty-bit of §4.4 is exactly {!is_empty}. *)

type t

exception Overflow
(** Raised when a push exceeds capacity — the compiler's store-threshold
    invariant guarantees this never happens; tests rely on the
    exception. *)

val create : capacity:int -> t

val capacity : t -> int
val count : t -> int
val is_empty : t -> bool

val push : t -> base:int -> data:int array -> unit
(** Append a line image (data is copied). *)

val push_from : t -> base:int -> src:int array -> src_pos:int -> unit
(** Like {!push} but blits 16 words from [src] at [src_pos] — the
    eviction path pushes straight out of the cache's contiguous data
    array without an intermediate copy. *)

val search : t -> int -> (int array * int) option
(** [search t base] returns a copy of the *youngest* entry for the
    line, together with the number of entries scanned to find it
    (sequential-search cost model).  [None] scans everything. *)

val search_into : t -> int -> dst:int array -> dst_pos:int -> int
(** Allocation-free {!search}: blits the youngest match into [dst] at
    [dst_pos] and returns the scanned count (>= 1), or returns 0 when
    the line is absent ([dst] untouched). *)

val entries_oldest_first : t -> (int * int array) list
(** Allocates; tests and fault injection only — the drain path uses the
    slot accessors below. *)

val base_at : t -> int -> int
(** Base address of the [i]-th entry, oldest-first. *)

val data : t -> int array
(** The backing word store; entry [i] occupies 16 words at
    [data_pos t i].  Read-only by convention. *)

val data_pos : t -> int -> int

val truncate_to_oldest : t -> keep:int -> unit
(** Drop all but the oldest [keep] entries.  Fault injection only:
    models a stuck [phase1Complete] bit claiming a cut-short flush
    completed — the dropped tail is data that never physically reached
    the buffer. *)

val clear : t -> unit

val peak : t -> int
(** High-water mark of occupancy since creation. *)
