(* Array-backed so [mark] — hit on every clean->dirty transition in the
   cycle loop — never allocates in steady state.  Dedup is a linear scan:
   the compiler's store-threshold invariant bounds the table by the
   persist-buffer capacity, so the scan is short; the architectural
   table is a hardware bit-vector anyway, so no cost is modelled.  The
   backing array grows geometrically and is kept across [clear], so
   after warm-up the table is allocation-free. *)
type t = {
  mutable slots : int array;
  mutable count : int;
}

let create () = { slots = Array.make 64 0; count = 0 }

let rec scan slots n base i =
  if i >= n then -1
  else if Array.unsafe_get slots i = base then i
  else scan slots n base (i + 1)

let mark t base =
  if scan t.slots t.count base 0 < 0 then begin
    if t.count = Array.length t.slots then begin
      let bigger = Array.make (2 * t.count) 0 in
      Array.blit t.slots 0 bigger 0 t.count;
      t.slots <- bigger
    end;
    t.slots.(t.count) <- base;
    t.count <- t.count + 1
  end

let count t = t.count
let get t i = t.slots.(i)
let bases t = Array.to_list (Array.sub t.slots 0 t.count)
let clear t = t.count <- 0
