module Metrics = Sweep_obs.Metrics
module Layout = Sweep_isa.Layout

(* Struct-of-arrays FIFO: entry [i] (oldest-first) is [bases.(i)] plus
   16 words at [data.(i*16)].  Capacity is fixed at creation, so pushes
   copy into preallocated storage and the hot path never allocates. *)
type t = {
  capacity : int;
  bases : int array;
  data : int array; (* capacity * words_per_line *)
  mutable count : int;
  mutable peak : int;
}

exception Overflow

(* Registry instruments are registered once at module init and stay
   valid across Metrics.reset; updates only happen when metrics are
   enabled, so the default cost is one branch per push. *)
let m_pushes = Metrics.counter "pbuf.pushes"
let m_overflows = Metrics.counter "pbuf.overflows"
let m_searches = Metrics.counter "pbuf.searches"
let m_peak = Metrics.gauge "pbuf.peak"

let create ~capacity =
  if capacity <= 0 then invalid_arg "Persist_buffer.create";
  {
    capacity;
    bases = Array.make capacity 0;
    data = Array.make (capacity * Layout.words_per_line) 0;
    count = 0;
    peak = 0;
  }

let capacity t = t.capacity
let count t = t.count
let is_empty t = t.count = 0

let push_from t ~base ~src ~src_pos =
  if t.count >= t.capacity then begin
    if Metrics.enabled () then Metrics.inc m_overflows;
    raise Overflow
  end;
  t.bases.(t.count) <- base;
  Array.blit src src_pos t.data (t.count * Layout.words_per_line)
    Layout.words_per_line;
  t.count <- t.count + 1;
  if t.count > t.peak then t.peak <- t.count;
  if Metrics.enabled () then begin
    Metrics.inc m_pushes;
    Metrics.set_max m_peak (float_of_int t.peak)
  end

let push t ~base ~data =
  assert (Array.length data = Layout.words_per_line);
  push_from t ~base ~src:data ~src_pos:0

(* Youngest match = highest index; scanned counts newest-first probes
   (the newest entry costs 1).  Top-level recursion: a local [let rec]
   would allocate a closure on every miss-path search. *)
let rec scan_down bases base i =
  if i < 0 then -1
  else if Array.unsafe_get bases i = base then i
  else scan_down bases base (i - 1)

let search_index t base = scan_down t.bases base (t.count - 1)

let search t base =
  if Metrics.enabled () then Metrics.inc m_searches;
  match search_index t base with
  | -1 -> None
  | i ->
    Some
      ( Array.sub t.data (i * Layout.words_per_line) Layout.words_per_line,
        t.count - i )

let search_into t base ~dst ~dst_pos =
  if Metrics.enabled () then Metrics.inc m_searches;
  match search_index t base with
  | -1 -> 0
  | i ->
    Array.blit t.data (i * Layout.words_per_line) dst dst_pos
      Layout.words_per_line;
    t.count - i

(* Slot accessors, oldest-first: the drain-to-NVM path blits each entry
   straight out of [data] without materialising lists or copies. *)
let base_at t i = t.bases.(i)
let data t = t.data
let data_pos _t i = i * Layout.words_per_line

let entries_oldest_first t =
  List.init t.count (fun i ->
      ( t.bases.(i),
        Array.sub t.data (i * Layout.words_per_line) Layout.words_per_line ))

(* Fault injection only: keep the oldest [keep] entries, drop the
   youngest.  Models buffer contents that never physically made it in
   (stuck-phase1Complete truncation). *)
let truncate_to_oldest t ~keep =
  let keep = max 0 (min keep t.count) in
  if keep < t.count then t.count <- keep

let clear t = t.count <- 0
let peak t = t.peak
