module Metrics = Sweep_obs.Metrics

type t = {
  capacity : int;
  mutable newest_first : (int * int array) list;
  mutable count : int;
  mutable peak : int;
}

exception Overflow

(* Registry instruments are registered once at module init and stay
   valid across Metrics.reset; updates only happen when metrics are
   enabled, so the default cost is one branch per push. *)
let m_pushes = Metrics.counter "pbuf.pushes"
let m_overflows = Metrics.counter "pbuf.overflows"
let m_searches = Metrics.counter "pbuf.searches"
let m_peak = Metrics.gauge "pbuf.peak"

let create ~capacity =
  if capacity <= 0 then invalid_arg "Persist_buffer.create";
  { capacity; newest_first = []; count = 0; peak = 0 }

let capacity t = t.capacity
let count t = t.count
let is_empty t = t.count = 0

let push t ~base ~data =
  if t.count >= t.capacity then begin
    if Metrics.enabled () then Metrics.inc m_overflows;
    raise Overflow
  end;
  t.newest_first <- (base, Array.copy data) :: t.newest_first;
  t.count <- t.count + 1;
  if t.count > t.peak then t.peak <- t.count;
  if Metrics.enabled () then begin
    Metrics.inc m_pushes;
    Metrics.set_max m_peak (float_of_int t.peak)
  end

let search t base =
  if Metrics.enabled () then Metrics.inc m_searches;
  let rec scan n = function
    | [] -> None
    | (b, data) :: rest ->
      if b = base then Some (data, n + 1) else scan (n + 1) rest
  in
  scan 0 t.newest_first

let entries_oldest_first t = List.rev t.newest_first

(* Fault injection only: keep the oldest [keep] entries, drop the
   youngest.  Models buffer contents that never physically made it in
   (stuck-phase1Complete truncation). *)
let truncate_to_oldest t ~keep =
  let keep = max 0 (min keep t.count) in
  if keep < t.count then begin
    t.newest_first <- List.rev (List.filteri (fun i _ -> i < keep)
                                  (List.rev t.newest_first));
    t.count <- keep
  end

let clear t =
  t.newest_first <- [];
  t.count <- 0

let peak t = t.peak
