(** Write-back-instructive table (paper §4.6).

    A small volatile SRAM bit table — one bit per cacheline — recording
    which lines the *current region* dirtied, so the region-end flush
    reads the table instead of scanning the whole cache (and cannot
    accidentally flush the next region's freshly dirtied lines).
    SweepCache keeps one table per persist buffer; the machine swaps
    tables at each boundary.

    Being SRAM, the table is lost on power failure — harmless, because
    the interrupted region rolls back anyway. *)

type t

val create : unit -> t
val mark : t -> int -> unit
(** Record a dirtied line by its base address. *)

val bases : t -> int list
(** Dirty line bases, in marking order.  Allocates; tests only. *)

val count : t -> int

val get : t -> int -> int
(** [get t i] is the [i]-th marked base (marking order) — the
    allocation-free iteration used by the region-end flush. *)

val clear : t -> unit
