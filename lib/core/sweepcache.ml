module Cfg = Sweep_machine.Config
module Cost = Sweep_machine.Cost
module Cpu = Sweep_machine.Cpu
module Exec = Sweep_machine.Exec
module Acc = Sweep_machine.Exec.Acc
module Mstats = Sweep_machine.Mstats
module Nvm = Sweep_mem.Nvm
module Cache = Sweep_mem.Cache
module E = Sweep_energy.Energy_config
module Layout = Sweep_isa.Layout
module Sink = Sweep_obs.Sink
module Ev = Sweep_obs.Event

let name = "SweepCache"

(* All-float (flat): phase deadlines are rewritten at every region
   boundary, and a mutable float field in the mixed [buf] record would
   be boxed on each write. *)
type buf_times = {
  mutable p1_end : float;
  mutable p2_end : float;
  mutable fill_start : float;   (* when this buffer last became Filling *)
}

type buf_state =
  | Idle        (* free for the next region *)
  | Filling     (* owned by the executing region; taking write-backs *)
  | Phase1      (* region ended; dirty-line flush (s-phase1) in flight *)
  | Phase2      (* buffer sealed; drain to NVM (s-phase2) in flight *)

type buf = {
  pb : Persist_buffer.t;
  mutable state : buf_state;
  mutable seq : int;              (* region sequence number; -1 when idle *)
  bt : buf_times;
  pc : int array;                 (* line bases to mark clean at p1_end *)
  mutable pc_n : int;
}

(* All-float scratch record (flat representation, so field writes never
   allocate): the hot-path helpers below communicate times and costs
   through these fields instead of float arguments and returns, which
   the non-flambda compiler boxes at every call boundary. *)
type scr = {
  mutable clock : float;     (* [sync_at] target time *)
  mutable ev_ns : float;     (* [evict_for]: eviction cost *)
  mutable ev_joules : float;
  mutable ev_now : float;    (* [evict_for]: possibly-stalled clock *)
  mutable f_ns : float;      (* [consult]: line-fill cost *)
  mutable f_joules : float;
  mutable dma_free : float;  (* single DMA channel availability *)
  mutable dma_next : float;
      (* Earliest pending phase deadline across all buffers — [sync_at]'s
         fast-path bound.  Always <= the true earliest event (a
         conservative hint): sites that change buffer states or phase
         times drop it to -inf, forcing one slow pass that recomputes
         the exact minimum (+inf when nothing is in flight). *)
}

type t = {
  cfg : Cfg.t;
  prog : Sweep_isa.Program.t;
  dec : Sweep_isa.Decoded.t;
  cpu : Cpu.t;
  nvm : Nvm.t;
  cache : Cache.t;
  stats : Mstats.t;
  acc : Acc.t;
  scr : scr;
  mutable ops : Exec.mem_ops;
  detector : Sweep_energy.Detector.t;
  bufs : buf array;
  mutable active : int;
  mutable region_seq : int;
  wbi : Wbi_table.t;              (* current region's dirty lines *)
  mutable miss_fill_sum : int;    (* Σ buffer occupancy at load misses *)
  mutable miss_fill_n : int;
}

let cpu t = t.cpu
let nvm t = t.nvm
let cache t = Some t.cache
let mstats t = t.stats
let acc t = t.acc
let detector t = t.detector
let halted t = t.cpu.Cpu.halted

let e t = t.cfg.Cfg.energy

(* Apply a sealed buffer's entries to their NVM home locations,
   oldest-first so younger duplicates win (footnote 4). *)
let apply_entries t buf =
  let pb = buf.pb in
  for k = 0 to Persist_buffer.count pb - 1 do
    Nvm.write_line_from t.nvm (Persist_buffer.base_at pb k)
      ~src:(Persist_buffer.data pb) ~src_pos:(Persist_buffer.data_pos pb k)
  done;
  Persist_buffer.clear pb

(* Mark a finished flush's lines clean; they stay resident (§4.2: the
   flushed data remain in the cache with dirty bits reset). *)
let clean_flushed t buf =
  for k = 0 to buf.pc_n - 1 do
    let base = buf.pc.(k) in
    let li = Cache.find t.cache base in
    if
      li <> Cache.no_line
      && Cache.dirty t.cache li
      && Cache.dirty_region t.cache li = buf.seq
    then Cache.clear_dirty t.cache li
  done;
  buf.pc_n <- 0

(* Advance the background DMA engine: complete any phases whose
   deadline has passed.  [sync_at] reads its target time from the
   scratch record — it sits behind every load/store, so no float may
   cross the call and no closure may be allocated here. *)
let sync_at t =
  let now = t.scr.clock in
  (* Fast path: nothing in flight completes before [dma_next], and the
     vast majority of accesses land between phase deadlines. *)
  if now >= t.scr.dma_next then begin
    let bufs = t.bufs in
    for i = 0 to Array.length bufs - 1 do
      let buf = Array.unsafe_get bufs i in
      if buf.state = Phase1 && buf.bt.p1_end <= now then begin
        clean_flushed t buf;
        buf.state <- Phase2
      end;
      if buf.state = Phase2 && buf.bt.p2_end <= now then begin
        apply_entries t buf;
        buf.state <- Idle;
        buf.seq <- -1
      end
    done;
    (* Recompute the exact earliest pending deadline (accumulated in the
       flat scratch field — a [ref] here would allocate per slow pass,
       which region-end frequency would turn into per-instruction
       garbage). *)
    t.scr.dma_next <- infinity;
    for i = 0 to Array.length bufs - 1 do
      let buf = Array.unsafe_get bufs i in
      match buf.state with
      | Phase1 ->
        if buf.bt.p1_end < t.scr.dma_next then t.scr.dma_next <- buf.bt.p1_end
      | Phase2 ->
        if buf.bt.p2_end < t.scr.dma_next then t.scr.dma_next <- buf.bt.p2_end
      | Idle | Filling -> ()
    done
  end

(* Cold-path convenience (crash, drain, recovery). *)
let sync t now =
  t.scr.clock <- now;
  sync_at t

(* Hot-path variant: the clock comes from the accumulator. *)
let sync_clock t =
  t.scr.clock <- t.acc.Acc.now;
  sync_at t

let active_buf t = t.bufs.(t.active)

(* Index of the buffer (if any) that still owns a given prior region;
   -1 when none.  Top-level recursion, immediate result: the option
   version allocated on every cross-region store and eviction. *)
let rec buf_idx_from bufs seq i =
  if i >= Array.length bufs then -1
  else if (Array.unsafe_get bufs i).seq = seq then i
  else buf_idx_from bufs seq (i + 1)

let buf_idx_of_seq t seq = buf_idx_from t.bufs seq 0

let mark_dirty t li =
  let buf = active_buf t in
  (* A dirty line here must belong to the current region: stores to a
     prior region's dirty lines stall until the flush cleans them. *)
  assert ((not (Cache.dirty t.cache li)) || Cache.dirty_region t.cache li = buf.seq);
  if not (Cache.dirty t.cache li) then begin
    Cache.set_dirty t.cache li ~region:buf.seq;
    Wbi_table.mark t.wbi (Cache.line_addr t.cache li)
  end

(* Region boundary (§3.2): seal the active buffer — flush the region's
   dirty lines into it and schedule both persistence phases on the DMA
   engine — then hand execution to the other buffer, stalling only if it
   has not finished its own s-phase2 (structural hazard, §3.3). *)
let region_end t =
  let now = t.acc.Acc.now in
  sync_clock t;
  let cur = active_buf t in
  (* Flush the region's dirty lines (WBI marking order) into the buffer,
     recording each base so the s-phase1 completion can clear its dirty
     bit. *)
  cur.pc_n <- 0;
  for k = 0 to Wbi_table.count t.wbi - 1 do
    let base = Wbi_table.get t.wbi k in
    let li = Cache.find t.cache base in
    if
      li <> Cache.no_line
      && Cache.dirty t.cache li
      && Cache.dirty_region t.cache li = cur.seq
    then begin
      Persist_buffer.push_from cur.pb ~base ~src:(Cache.data t.cache)
        ~src_pos:(Cache.data_pos t.cache li);
      cur.pc.(cur.pc_n) <- base;
      cur.pc_n <- cur.pc_n + 1
    end
  done;
  Wbi_table.clear t.wbi;
  let peak = Persist_buffer.peak cur.pb in
  if peak > t.stats.Mstats.buffer_peak then t.stats.Mstats.buffer_peak <- peak;
  let flush_n = cur.pc_n in
  Nvm.add_external_writes t.nvm ~events:flush_n
    ~bytes:(flush_n * Layout.line_bytes);
  let total = Persist_buffer.count cur.pb in
  let dma_start = if now >= t.scr.dma_free then now else t.scr.dma_free in
  let p1_end = dma_start +. (float_of_int flush_n *. (e t).E.dma_line_ns) in
  let p2_end = p1_end +. (float_of_int total *. (e t).E.dma_line_ns) in
  cur.state <- Phase1;
  cur.bt.p1_end <- p1_end;
  cur.bt.p2_end <- p2_end;
  t.scr.dma_next <- Float.neg_infinity;
  t.scr.dma_free <- p2_end;
  t.stats.Mstats.f.Mstats.persistence_ns <- t.stats.Mstats.f.Mstats.persistence_ns +. (p2_end -. now);
  (* Background-persistence energy is charged now; its time is carried by
     the completion timestamps. *)
  let background_joules =
    float_of_int (flush_n + total) *. (e t).E.e_dma_line
  in
  (* Hand over to the next buffer. *)
  let next_idx = (t.active + 1) mod Array.length t.bufs in
  let next = t.bufs.(next_idx) in
  let stall_ns =
    if next.state = Idle then 0.0
    else begin
      let target = if now >= next.bt.p2_end then now else next.bt.p2_end in
      let s = target -. now in
      t.scr.clock <- target;
      sync_at t;
      s
    end
  in
  t.stats.Mstats.f.Mstats.wait_ns <- t.stats.Mstats.f.Mstats.wait_ns +. stall_ns;
  assert (next.state = Idle);
  if Sink.on () then begin
    let cur_idx = t.active in
    Sink.emit ~ns:now (Ev.Region_end { seq = cur.seq; buf = cur_idx });
    Sink.emit ~ns:now
      (Ev.Buf_phase
         {
           buf = cur_idx;
           seq = cur.seq;
           phase = Ev.Fill;
           start_ns = cur.bt.fill_start;
           end_ns = now;
         });
    Sink.emit ~ns:now
      (Ev.Buf_phase
         {
           buf = cur_idx;
           seq = cur.seq;
           phase = Ev.Flush;
           start_ns = dma_start;
           end_ns = p1_end;
         });
    Sink.emit ~ns:now
      (Ev.Buf_phase
         {
           buf = cur_idx;
           seq = cur.seq;
           phase = Ev.Drain;
           start_ns = p1_end;
           end_ns = p2_end;
         });
    if stall_ns > 0.0 then
      Sink.emit ~ns:now (Ev.Buf_wait { buf = next_idx; ns = stall_ns });
    Sink.emit ~ns:(now +. stall_ns)
      (Ev.Region_begin { seq = t.region_seq + 1; buf = next_idx })
  end;
  t.region_seq <- t.region_seq + 1;
  next.state <- Filling;
  next.seq <- t.region_seq;
  next.bt.fill_start <- now +. stall_ns;
  t.active <- next_idx;
  (* Acc.charge, inlined by hand: the call is not inlined by the
     non-flambda compiler, so computed float arguments would be boxed. *)
  let a = t.acc in
  a.Acc.ns <- a.Acc.ns +. stall_ns;
  a.Acc.joules <- a.Acc.joules +. background_joules

(* Make room for a fill: handle the victim line.  Prior-region dirty
   victims wait for their flush (then leave cleanly); current-region
   dirty victims are written back into the active persist buffer
   (t-phase1).  Returns the chosen victim way (the single set scan
   serves both eviction and install); the eviction cost and the
   possibly-stalled clock land in [t.scr]. *)
let evict_for t addr =
  let now = t.acc.Acc.now in
  let cache = t.cache in
  let vi = Cache.victim cache addr in
  t.scr.ev_ns <- 0.0;
  t.scr.ev_joules <- 0.0;
  t.scr.ev_now <- now;
  if Cache.valid cache vi && Cache.dirty cache vi then begin
    if Cache.dirty_region cache vi <> (active_buf t).seq then begin
      let bi = buf_idx_of_seq t (Cache.dirty_region cache vi) in
      if
        bi >= 0
        &&
        let st = t.bufs.(bi).state in
        st = Phase1 || st = Filling
      then begin
        (* Filling cannot happen for a prior seq; Phase1 means the flush
           is still in flight — stall until it completes (§4.3). *)
        let prior = t.bufs.(bi) in
        let target = if now >= prior.bt.p1_end then now else prior.bt.p1_end in
        t.scr.clock <- target;
        sync_at t;
        let stall = target -. now in
        t.scr.ev_ns <- stall;
        t.scr.ev_now <- now +. stall
      end
      else begin
        (* Flush already completed; sync must have cleaned it. *)
        t.scr.clock <- now;
        sync_at t
      end
    end
    else begin
      Persist_buffer.push_from (active_buf t).pb
        ~base:(Cache.line_addr cache vi) ~src:(Cache.data cache)
        ~src_pos:(Cache.data_pos cache vi);
      if Sink.on () then
        Sink.emit ~ns:now
          (Ev.Cache_writeback { base = Cache.line_addr cache vi });
      (* The buffer is NVM-resident: this write-back is an NVM write. *)
      Nvm.add_external_writes t.nvm ~events:1 ~bytes:Layout.line_bytes;
      let peak = Persist_buffer.peak (active_buf t).pb in
      if peak > t.stats.Mstats.buffer_peak then
        t.stats.Mstats.buffer_peak <- peak;
      t.scr.ev_ns <- (e t).E.nvm_write_ns;
      t.scr.ev_joules <- (e t).E.e_nvm_line_write
    end
  end;
  vi

(* Consult order (§4.4): the active (filling) buffer first, then the
   others newest-region-first — decreasing seq, ties in array order,
   exactly the stable sort the list-based implementation produced. *)
let rec best_unvisited bufs visited i best best_seq =
  if i >= Array.length bufs then best
  else begin
    let seq = (Array.unsafe_get bufs i).seq in
    if visited land (1 lsl i) = 0 && (best < 0 || seq > best_seq) then
      best_unvisited bufs visited (i + 1) i seq
    else best_unvisited bufs visited (i + 1) best best_seq
  end

let next_consult_buf t visited =
  if visited land (1 lsl t.active) = 0 then t.active
  else best_unvisited t.bufs visited 0 (-1) min_int

(* Probe the persist buffers for a missed line (honouring the empty-bit
   policy), falling back to the NVM home location.  The matched image is
   blitted straight into the cache data slot at [dst_pos]; fill costs
   accumulate left-to-right into [t.scr.f_ns]/[t.scr.f_joules].  Every
   argument is immediate, so the whole walk allocates nothing. *)
let rec consult t base ~dst_pos ~searched ~scanned ~visited =
  let bi = next_consult_buf t visited in
  if bi < 0 then begin
    (if searched then begin
       t.stats.Mstats.buffer_searches <- t.stats.Mstats.buffer_searches + 1;
       if Sink.on () then
         Sink.emit ~ns:t.scr.ev_now
           (Ev.Buffer_search { scanned; hit = false })
     end
     else begin
       t.stats.Mstats.buffer_bypasses <- t.stats.Mstats.buffer_bypasses + 1;
       if Sink.on () then Sink.emit ~ns:t.scr.ev_now Ev.Buffer_bypass
     end);
    Nvm.read_line_into t.nvm base ~dst:(Cache.data t.cache) ~dst_pos;
    t.scr.f_ns <- t.scr.f_ns +. (e t).E.nvm_read_ns;
    t.scr.f_joules <- t.scr.f_joules +. (e t).E.e_nvm_read
  end
  else begin
    let visited = visited lor (1 lsl bi) in
    let buf = t.bufs.(bi) in
    let searchable =
      match t.cfg.Cfg.search with
      | Cfg.Nvm_search -> true
      | Cfg.Empty_bit -> not (Persist_buffer.is_empty buf.pb)
    in
    if not searchable then consult t base ~dst_pos ~searched ~scanned ~visited
    else begin
      (* Even an unsuccessful sequential probe of an empty buffer costs
         one slot check in Nvm_search mode. *)
      let scanned_hit =
        Persist_buffer.search_into buf.pb base ~dst:(Cache.data t.cache)
          ~dst_pos
      in
      if scanned_hit > 0 then begin
        t.stats.Mstats.buffer_searches <- t.stats.Mstats.buffer_searches + 1;
        t.stats.Mstats.buffer_hits <- t.stats.Mstats.buffer_hits + 1;
        if Sink.on () then
          Sink.emit ~ns:t.scr.ev_now
            (Ev.Buffer_search { scanned = scanned + scanned_hit; hit = true });
        t.scr.f_ns <-
          t.scr.f_ns +. (float_of_int scanned_hit *. (e t).E.buffer_search_ns);
        t.scr.f_joules <-
          t.scr.f_joules
          +. (float_of_int scanned_hit *. (e t).E.e_buffer_search)
      end
      else begin
        let sc = max 1 (Persist_buffer.count buf.pb) in
        t.scr.f_ns <- t.scr.f_ns +. (float_of_int sc *. (e t).E.buffer_search_ns);
        t.scr.f_joules <-
          t.scr.f_joules +. (float_of_int sc *. (e t).E.e_buffer_search);
        consult t base ~dst_pos ~searched:true ~scanned:(scanned + sc) ~visited
      end
    end
  end

(* Fetch a line image for a miss straight into way [vi]'s data slot,
   consulting the persist buffers before NVM (§4.4). *)
let fetch_into t vi base =
  for i = 0 to Array.length t.bufs - 1 do
    t.miss_fill_sum <- t.miss_fill_sum + Persist_buffer.count t.bufs.(i).pb
  done;
  t.miss_fill_n <- t.miss_fill_n + 1;
  t.scr.f_ns <- 0.0;
  t.scr.f_joules <- 0.0;
  consult t base ~dst_pos:(Cache.data_pos t.cache vi) ~searched:false
    ~scanned:0 ~visited:0

let make_ops t =
  let e = e t in
  let hit_ns = float_of_int e.E.cache_hit_cycles *. E.cycle_ns e
  and e_hit = e.E.e_cache_access in
  {
    Exec.load =
      (fun addr ->
        sync_clock t;
        let now = t.acc.Acc.now in
        let li = Cache.find t.cache addr in
        if li <> Cache.no_line then begin
          Cache.record_hit t.cache;
          Cache.touch t.cache li;
          Acc.charge t.acc ~ns:hit_ns ~joules:e_hit;
          Cache.read_word t.cache li addr
        end
        else begin
          Cache.record_miss t.cache;
          if Sink.on () then
            Sink.emit ~ns:now (Ev.Cache_miss { addr; write = false });
          let vi = evict_for t addr in
          let base = Layout.line_base addr in
          Cache.install_victim t.cache vi addr;
          fetch_into t vi base;
          let a = t.acc in
          a.Acc.ns <- a.Acc.ns +. (t.scr.ev_ns +. t.scr.f_ns +. hit_ns);
          a.Acc.joules <-
            a.Acc.joules +. (t.scr.ev_joules +. t.scr.f_joules +. e_hit);
          Cache.read_word t.cache vi addr
        end);
    store =
      (fun addr value ->
        sync_clock t;
        let now = t.acc.Acc.now in
        let li = Cache.find t.cache addr in
        if li <> Cache.no_line then begin
          Cache.record_hit t.cache;
          let waw_ns =
            if
              Cache.dirty t.cache li
              && Cache.dirty_region t.cache li <> (active_buf t).seq
            then begin
              (* §4.3: the line belongs to a prior region still in
                 s-phase1. *)
              let bi = buf_idx_of_seq t (Cache.dirty_region t.cache li) in
              if bi >= 0 && t.bufs.(bi).state = Phase1 then begin
                let prior = t.bufs.(bi) in
                let target =
                  if now >= prior.bt.p1_end then now else prior.bt.p1_end
                in
                t.scr.clock <- target;
                sync_at t;
                let s = target -. now in
                t.stats.Mstats.f.Mstats.waw_stall_ns <-
                  t.stats.Mstats.f.Mstats.waw_stall_ns +. s;
                if Sink.on () then
                  Sink.emit ~ns:now
                    (Ev.Waw_stall
                       { seq = Cache.dirty_region t.cache li; ns = s });
                s
              end
              else begin
                t.scr.clock <- now;
                sync_at t;
                0.0
              end
            end
            else 0.0
          in
          Cache.touch t.cache li;
          Cache.write_word t.cache li addr value;
          mark_dirty t li;
          let a = t.acc in
          a.Acc.ns <- a.Acc.ns +. (waw_ns +. hit_ns);
          a.Acc.joules <- a.Acc.joules +. e_hit
        end
        else begin
          Cache.record_miss t.cache;
          if Sink.on () then
            Sink.emit ~ns:now (Ev.Cache_miss { addr; write = true });
          let vi = evict_for t addr in
          let base = Layout.line_base addr in
          Cache.install_victim t.cache vi addr;
          fetch_into t vi base;
          Cache.write_word t.cache vi addr value;
          mark_dirty t vi;
          let a = t.acc in
          a.Acc.ns <- a.Acc.ns +. (t.scr.ev_ns +. t.scr.f_ns +. hit_ns);
          a.Acc.joules <-
            a.Acc.joules +. (t.scr.ev_joules +. t.scr.f_joules +. e_hit)
        end);
    clwb = (fun _ -> ());
    fence = (fun () -> ());
    region_end = (fun () -> region_end t);
  }

let create cfg prog =
  let nvm = Nvm.create () in
  Sweep_machine.Loader.load nvm prog;
  let bufs =
    Array.init (max 1 cfg.Cfg.buffer_count) (fun _ ->
        {
          pb = Persist_buffer.create ~capacity:cfg.Cfg.buffer_entries;
          state = Idle;
          seq = -1;
          bt = { p1_end = 0.0; p2_end = 0.0; fill_start = 0.0 };
          pc = Array.make (max 1 cfg.Cfg.buffer_entries) 0;
          pc_n = 0;
        })
  in
  bufs.(0).state <- Filling;
  bufs.(0).seq <- 1;
  if Sink.on () then Sink.emit ~ns:0.0 (Ev.Region_begin { seq = 1; buf = 0 });
  let detector =
    match cfg.Cfg.detector_override with
    | Some d -> d
    | None -> Sweep_energy.Detector.sweep ~v_restore:3.3
  in
  let t =
    {
      cfg;
      prog;
      dec = Sweep_isa.Decoded.compile prog;
      cpu = Cpu.create ~entry:prog.entry;
      nvm;
      cache = Cache.create ~size_bytes:cfg.Cfg.cache_size_bytes ~assoc:cfg.Cfg.cache_assoc;
      stats = Mstats.create ();
      acc = (let a = Acc.create () in Acc.set_rates a cfg.Cfg.energy; a);
      scr =
        {
          clock = 0.0;
          ev_ns = 0.0;
          ev_joules = 0.0;
          ev_now = 0.0;
          f_ns = 0.0;
          f_joules = 0.0;
          dma_free = 0.0;
          dma_next = Float.neg_infinity;
        };
      ops = Exec.null_ops;
      detector;
      bufs;
      active = 0;
      region_seq = 1;
      wbi = Wbi_table.create ();
      miss_fill_sum = 0;
      miss_fill_n = 0;
    }
  in
  t.ops <- make_ops t;
  t

let step t =
  if t.cfg.Cfg.reference_interp then
    Exec.step_reference t.cpu t.prog t.stats t.ops t.acc
  else Exec.step t.cpu t.dec t.stats t.ops t.acc

let jit_backup_cost _ = None
let commit_jit_backup _ ~now_ns:_ = ()
let continues_after_backup = false

module FM = Sweep_machine.Fault_model

(* Fault model: a power failure cuts the in-flight s-phase2 DMA
   mid-line.  Entries already past the DMA engine land whole; the line
   in flight lands as a word prefix (Nvm.write_line_torn).  Recovery's
   idempotent re-drive rewrites every line whole, healing the tear —
   the differential checker proves exactly that.  Checker-only: writes
   extra NVM traffic, so it is gated on the torn_dma knob. *)
let tear_inflight_dma t ~now_ns =
  Array.iter
    (fun buf ->
      if buf.state = Phase2 then begin
        let entries = Persist_buffer.entries_oldest_first buf.pb in
        let n = List.length entries in
        if n > 0 then begin
          let k =
            let progress = (now_ns -. buf.bt.p1_end) /. (e t).E.dma_line_ns in
            max 0 (min (n - 1) (int_of_float (floor progress)))
          in
          List.iteri
            (fun i (base, data) ->
              if i < k then Nvm.write_line t.nvm base data
              else if i = k then begin
                (* Deterministic but varied tear point in [1, 15]. *)
                let words =
                  1 + ((buf.seq * 31) + (k * 7)) mod (Layout.words_per_line - 1)
                in
                Nvm.write_line_torn t.nvm base data ~words;
                if Sink.on () then
                  Sink.emit ~ns:now_ns (Ev.Fault_torn { base; words })
              end)
            entries
        end
      end)
    t.bufs

(* Mutation: a stuck-at-1 phase1Complete bit means recovery will
   re-drive a buffer whose flush was cut short.  The functional model's
   buffer already holds the whole dirty set (pushed eagerly at
   region_end), so make the physics real: truncate it to the eviction
   entries plus the prefix the DMA actually flushed before the cut. *)
let truncate_cut_flush t ~now_ns =
  Array.iter
    (fun buf ->
      if buf.state = Phase1 then begin
        let flush_n = buf.pc_n in
        if flush_n > 0 then begin
          let dma_line = (e t).E.dma_line_ns in
          let dma_start = buf.bt.p1_end -. (float_of_int flush_n *. dma_line) in
          let flushed_so_far =
            let f = (now_ns -. dma_start) /. dma_line in
            max 0 (min flush_n (int_of_float (floor f)))
          in
          let keep = Persist_buffer.count buf.pb - flush_n + flushed_so_far in
          Persist_buffer.truncate_to_oldest buf.pb ~keep
        end
      end)
    t.bufs

let on_power_failure t ~now_ns =
  sync t now_ns;
  let fm = t.cfg.Cfg.faults in
  if fm.FM.torn_dma then tear_inflight_dma t ~now_ns;
  if fm.FM.stuck_phase1 then truncate_cut_flush t ~now_ns;
  (* Close the interrupted region's span: it will re-execute under a new
     sequence number after reboot. *)
  if Sink.on () then
    Sink.emit ~ns:now_ns
      (Ev.Region_end { seq = (active_buf t).seq; buf = t.active });
  Cache.invalidate_all t.cache;
  Wbi_table.clear t.wbi;
  Cpu.reset t.cpu ~entry:t.prog.entry;
  Mstats.reset_region_counters t.stats;
  t.scr.dma_next <- Float.neg_infinity

(* Recovery protocol (§4.2): examine buffers in region order.
   - s-phase1 incomplete (state Filling/Phase1): (0,0) — discard.
   - s-phase1 complete, s-phase2 not (state Phase2): (1,0) — re-drive
     s-phase2 (idempotent redo).
   - both complete: nothing left in the buffer.
   Then reload the checkpointed registers and PC from NVM. *)
let on_reboot t ~now_ns =
  let fm = t.cfg.Cfg.faults in
  let ordered =
    Array.to_list t.bufs
    |> List.filter (fun b -> b.state <> Idle)
    |> List.sort (fun a b -> compare a.seq b.seq)
  in
  let index_of buf =
    let idx = ref 0 in
    Array.iteri (fun i b -> if b == buf then idx := i) t.bufs;
    !idx
  in
  let discarding = ref false in
  let redo_cost = ref Cost.zero in
  List.iter
    (fun buf ->
      (* What recovery *believes* about the phase-complete bits; a stuck
         bit makes it believe a phase finished that did not. *)
      let phase1_done =
        buf.state = Phase2 || fm.FM.stuck_phase1
      in
      let phase2_done = phase1_done && fm.FM.stuck_phase2 in
      if Sink.on () && fm.FM.stuck_phase1 && buf.state <> Phase2 then
        Sink.emit ~ns:now_ns
          (Ev.Fault_stuck { bit = 1; buf = index_of buf; seq = buf.seq });
      if Sink.on () && fm.FM.stuck_phase2 && phase1_done then
        Sink.emit ~ns:now_ns
          (Ev.Fault_stuck { bit = 2; buf = index_of buf; seq = buf.seq });
      (if phase1_done && phase2_done then
         (* Believed fully drained: nothing to redo — the entries are
            dropped on the floor (this is the mutation detecting a
            silent-green checker). *)
         Persist_buffer.clear buf.pb
       else if phase1_done && not !discarding then begin
         let n = Persist_buffer.count buf.pb in
         if Sink.on () then
           Sink.emit ~ns:now_ns
             (Ev.Mark
                {
                  name = Printf.sprintf "redo seq %d (%d lines)" buf.seq n;
                  cat = Sweep_obs.Event.Buffer;
                });
         apply_entries t buf;
         redo_cost :=
           Cost.(
             !redo_cost
             ++ make
                  ~ns:(float_of_int n *. (e t).E.dma_line_ns)
                  ~joules:(float_of_int n *. (e t).E.e_dma_line))
       end
       else begin
         discarding := true;
         if Sink.on () && Persist_buffer.count buf.pb > 0 then
           Sink.emit ~ns:now_ns
             (Ev.Mark
                {
                  name =
                    Printf.sprintf "discard seq %d (%d lines)" buf.seq
                      (Persist_buffer.count buf.pb);
                  cat = Sweep_obs.Event.Buffer;
                });
         Persist_buffer.clear buf.pb
       end);
      buf.state <- Idle;
      buf.seq <- -1;
      buf.pc_n <- 0)
    ordered;
  t.scr.dma_free <- now_ns;
  t.scr.dma_next <- Float.neg_infinity;
  (* Restore the architectural state from the checkpoint array. *)
  if fm.FM.skip_restore then begin
    (* Mutation: reboot "forgets" the checkpoint reload and restarts
       from program entry over the persisted NVM state. *)
    if Sink.on () then
      Sink.emit ~ns:now_ns
        (Ev.Mark { name = "mutation: skip restore"; cat = Ev.Fault })
  end
  else begin
    let layout = t.prog.layout in
    for r = 0 to Sweep_isa.Reg.count - 1 do
      t.cpu.Cpu.regs.(r) <- Nvm.read_word t.nvm (Layout.reg_slot layout r)
    done;
    t.cpu.Cpu.pc <- Nvm.read_word t.nvm layout.ckpt_pc
  end;
  t.cpu.Cpu.halted <- false;
  let reads = float_of_int (Sweep_isa.Reg.count + 1) in
  let restore_cost =
    Cost.make ~ns:(reads *. (e t).E.nvm_read_ns)
      ~joules:(reads *. (e t).E.e_nvm_read)
  in
  let total = Cost.(!redo_cost ++ restore_cost) in
  t.stats.Mstats.restore_events <- t.stats.Mstats.restore_events + 1;
  t.stats.Mstats.f.Mstats.restore_joules <- t.stats.Mstats.f.Mstats.restore_joules +. total.Cost.joules;
  (* Execution resumes in a fresh region on buffer 0. *)
  t.region_seq <- t.region_seq + 1;
  t.bufs.(0).state <- Filling;
  t.bufs.(0).seq <- t.region_seq;
  t.bufs.(0).bt.fill_start <- now_ns +. total.Cost.ns;
  t.active <- 0;
  if Sink.on () then
    Sink.emit ~ns:(now_ns +. total.Cost.ns)
      (Ev.Region_begin { seq = t.region_seq; buf = 0 });
  total

let drain t ~now_ns =
  if Sink.on () then
    Sink.emit ~ns:now_ns
      (Ev.Region_end { seq = (active_buf t).seq; buf = t.active });
  let finish = if now_ns >= t.scr.dma_free then now_ns else t.scr.dma_free in
  sync t finish;
  Cost.make ~ns:(finish -. now_ns) ~joules:0.0

let buffer_peak t = t.stats.Mstats.buffer_peak

let avg_buffer_fill_at_miss t =
  if t.miss_fill_n = 0 then 0.0
  else float_of_int t.miss_fill_sum /. float_of_int t.miss_fill_n

type t_alias = t

let pack instance =
  let m =
    (module struct
      type t = t_alias

      let name = name
      let create = create
      let cpu = cpu
      let nvm = nvm
      let cache = cache
      let mstats = mstats
      let acc = acc
      let detector = detector
      let step = step
      let halted = halted
      let jit_backup_cost = jit_backup_cost
      let commit_jit_backup = commit_jit_backup
      let continues_after_backup = continues_after_backup
      let on_power_failure = on_power_failure
      let on_reboot = on_reboot
      let drain = drain
    end : Sweep_machine.Machine_intf.S
      with type t = t_alias)
  in
  Sweep_machine.Machine_intf.Packed (m, instance)

let packed cfg prog = pack (create cfg prog)
