module Cfg = Sweep_machine.Config
module Cost = Sweep_machine.Cost
module Cpu = Sweep_machine.Cpu
module Exec = Sweep_machine.Exec
module Mstats = Sweep_machine.Mstats
module Nvm = Sweep_mem.Nvm
module Cache = Sweep_mem.Cache
module E = Sweep_energy.Energy_config
module Layout = Sweep_isa.Layout
module Sink = Sweep_obs.Sink
module Ev = Sweep_obs.Event

let name = "SweepCache"

type buf_state =
  | Idle        (* free for the next region *)
  | Filling     (* owned by the executing region; taking write-backs *)
  | Phase1      (* region ended; dirty-line flush (s-phase1) in flight *)
  | Phase2      (* buffer sealed; drain to NVM (s-phase2) in flight *)

type buf = {
  pb : Persist_buffer.t;
  mutable state : buf_state;
  mutable seq : int;              (* region sequence number; -1 when idle *)
  mutable p1_end : float;
  mutable p2_end : float;
  mutable pending_clean : int list;  (* line bases to mark clean at p1_end *)
  mutable fill_start : float;     (* when this buffer last became Filling *)
}

type t = {
  cfg : Cfg.t;
  prog : Sweep_isa.Program.t;
  cpu : Cpu.t;
  nvm : Nvm.t;
  cache : Cache.t;
  stats : Mstats.t;
  detector : Sweep_energy.Detector.t;
  bufs : buf array;
  mutable active : int;
  mutable region_seq : int;
  mutable dma_free : float;       (* single DMA channel availability *)
  wbi : Wbi_table.t;              (* current region's dirty lines *)
  mutable miss_fill_sum : int;    (* Σ buffer occupancy at load misses *)
  mutable miss_fill_n : int;
}

let create cfg prog =
  let nvm = Nvm.create () in
  Sweep_machine.Loader.load nvm prog;
  let bufs =
    Array.init (max 1 cfg.Cfg.buffer_count) (fun _ ->
        {
          pb = Persist_buffer.create ~capacity:cfg.Cfg.buffer_entries;
          state = Idle;
          seq = -1;
          p1_end = 0.0;
          p2_end = 0.0;
          pending_clean = [];
          fill_start = 0.0;
        })
  in
  bufs.(0).state <- Filling;
  bufs.(0).seq <- 1;
  if Sink.on () then Sink.emit ~ns:0.0 (Ev.Region_begin { seq = 1; buf = 0 });
  let detector =
    match cfg.Cfg.detector_override with
    | Some d -> d
    | None -> Sweep_energy.Detector.sweep ~v_restore:3.3
  in
  {
    cfg;
    prog;
    cpu = Cpu.create ~entry:prog.entry;
    nvm;
    cache = Cache.create ~size_bytes:cfg.Cfg.cache_size_bytes ~assoc:cfg.Cfg.cache_assoc;
    stats = Mstats.create ();
    detector;
    bufs;
    active = 0;
    region_seq = 1;
    dma_free = 0.0;
    wbi = Wbi_table.create ();
    miss_fill_sum = 0;
    miss_fill_n = 0;
  }

let cpu t = t.cpu
let nvm t = t.nvm
let cache t = Some t.cache
let mstats t = t.stats
let detector t = t.detector
let halted t = t.cpu.Cpu.halted

let e t = t.cfg.Cfg.energy

(* Apply a sealed buffer's entries to their NVM home locations,
   oldest-first so younger duplicates win (footnote 4). *)
let apply_entries t buf =
  List.iter
    (fun (base, data) -> Nvm.write_line t.nvm base data)
    (Persist_buffer.entries_oldest_first buf.pb);
  Persist_buffer.clear buf.pb

(* Mark a finished flush's lines clean; they stay resident (§4.2: the
   flushed data remain in the cache with dirty bits reset). *)
let clean_flushed t buf =
  List.iter
    (fun base ->
      match Cache.find t.cache base with
      | Some line when line.Cache.dirty && line.Cache.dirty_region = buf.seq ->
        line.Cache.dirty <- false;
        line.Cache.dirty_region <- -1
      | Some _ | None -> ())
    buf.pending_clean;
  buf.pending_clean <- []

(* Advance the background DMA engine to [now]: complete any phases whose
   deadline has passed. *)
let sync t now =
  Array.iter
    (fun buf ->
      if buf.state = Phase1 && buf.p1_end <= now then begin
        clean_flushed t buf;
        buf.state <- Phase2
      end;
      if buf.state = Phase2 && buf.p2_end <= now then begin
        apply_entries t buf;
        buf.state <- Idle;
        buf.seq <- -1
      end)
    t.bufs

let active_buf t = t.bufs.(t.active)

(* The buffer (if any) that still owns a given prior region. *)
let buf_of_seq t seq =
  let found = ref None in
  Array.iter (fun b -> if b.seq = seq then found := Some b) t.bufs;
  !found

(* Stall until a prior region's s-phase1 completes (WAW, §4.3, and dirty
   evictions of prior-region lines).  Returns stall cost. *)
let stall_until_phase1 t buf now =
  let target = max now buf.p1_end in
  let stall_ns = target -. now in
  sync t target;
  (* Stall-time power is charged uniformly by the executor. *)
  Cost.make ~ns:stall_ns ~joules:0.0

(* Fetch a line image for a miss: consult the persist buffers before NVM
   (§4.4), honouring the empty-bit policy.  Returns data and cost. *)
let fetch_line t base now =
  let cfg = t.cfg in
  let searchable buf =
    match cfg.Cfg.search with
    | Cfg.Nvm_search -> true
    | Cfg.Empty_bit -> not (Persist_buffer.is_empty buf.pb)
  in
  (* Newest data first: the active (filling) buffer, then the other(s) in
     decreasing seq order. *)
  let order =
    let others =
      Array.to_list t.bufs
      |> List.filter (fun b -> b != active_buf t)
      |> List.sort (fun a b -> compare b.seq a.seq)
    in
    active_buf t :: others
  in
  let fill_now =
    Array.fold_left (fun acc b -> acc + Persist_buffer.count b.pb) 0 t.bufs
  in
  t.miss_fill_sum <- t.miss_fill_sum + fill_now;
  t.miss_fill_n <- t.miss_fill_n + 1;
  let search_cost scanned =
    Cost.make
      ~ns:(float_of_int scanned *. (e t).E.buffer_search_ns)
      ~joules:(float_of_int scanned *. (e t).E.e_buffer_search)
  in
  let rec consult searched_any scanned_acc cost = function
    | [] ->
      if searched_any then begin
        t.stats.Mstats.buffer_searches <- t.stats.Mstats.buffer_searches + 1;
        if Sink.on () then
          Sink.emit ~ns:now
            (Ev.Buffer_search { scanned = scanned_acc; hit = false })
      end
      else begin
        t.stats.Mstats.buffer_bypasses <- t.stats.Mstats.buffer_bypasses + 1;
        if Sink.on () then Sink.emit ~ns:now Ev.Buffer_bypass
      end;
      let data = Nvm.read_line t.nvm base in
      let nvm_cost =
        Cost.make ~ns:(e t).E.nvm_read_ns ~joules:(e t).E.e_nvm_read
      in
      (data, Cost.(cost ++ nvm_cost))
    | buf :: rest ->
      if not (searchable buf) then consult searched_any scanned_acc cost rest
      else begin
        (* Even an unsuccessful sequential probe of an empty buffer costs
           one slot check in Nvm_search mode. *)
        match Persist_buffer.search buf.pb base with
        | Some (data, scanned) ->
          t.stats.Mstats.buffer_searches <- t.stats.Mstats.buffer_searches + 1;
          t.stats.Mstats.buffer_hits <- t.stats.Mstats.buffer_hits + 1;
          if Sink.on () then
            Sink.emit ~ns:now
              (Ev.Buffer_search { scanned = scanned_acc + scanned; hit = true });
          (Array.copy data, Cost.(cost ++ search_cost scanned))
        | None ->
          let scanned = max 1 (Persist_buffer.count buf.pb) in
          consult true (scanned_acc + scanned)
            Cost.(cost ++ search_cost scanned)
            rest
      end
  in
  consult false 0 Cost.zero order

(* Make room for a fill: handle the victim line.  Prior-region dirty
   victims wait for their flush (then leave cleanly); current-region
   dirty victims are written back into the active persist buffer
   (t-phase1). *)
let evict_for t addr now =
  let victim = Cache.victim t.cache addr in
  if victim.Cache.valid && victim.Cache.dirty then begin
    if victim.Cache.dirty_region <> (active_buf t).seq then begin
      match buf_of_seq t victim.Cache.dirty_region with
      | Some prior when prior.state = Phase1 || prior.state = Filling ->
        (* Filling cannot happen for a prior seq; Phase1 means the flush
           is still in flight. *)
        let c = stall_until_phase1 t prior now in
        (c, now +. c.Cost.ns)
      | Some _ | None ->
        (* Flush already completed; sync must have cleaned it. *)
        sync t now;
        (Cost.zero, now)
    end
    else begin
      Persist_buffer.push (active_buf t).pb ~base:victim.Cache.base
        ~data:victim.Cache.data;
      if Sink.on () then
        Sink.emit ~ns:now (Ev.Cache_writeback { base = victim.Cache.base });
      (* The buffer is NVM-resident: this write-back is an NVM write. *)
      Nvm.add_external_writes t.nvm ~events:1 ~bytes:Layout.line_bytes;
      let peak = Persist_buffer.peak (active_buf t).pb in
      if peak > t.stats.Mstats.buffer_peak then
        t.stats.Mstats.buffer_peak <- peak;
      ( Cost.make ~ns:(e t).E.nvm_write_ns ~joules:(e t).E.e_nvm_line_write,
        now )
    end
  end
  else (Cost.zero, now)

let cache_hit_cost t =
  Cost.make
    ~ns:(float_of_int (e t).E.cache_hit_cycles *. E.cycle_ns (e t))
    ~joules:(e t).E.e_cache_access

let load t addr now =
  sync t now;
  match Cache.find t.cache addr with
  | Some line ->
    Cache.record_hit t.cache;
    Cache.touch t.cache line;
    (Cache.read_word line addr, cache_hit_cost t)
  | None ->
    Cache.record_miss t.cache;
    if Sink.on () then Sink.emit ~ns:now (Ev.Cache_miss { addr; write = false });
    let evict_cost, now = evict_for t addr now in
    let base = Layout.line_base addr in
    let data, fetch_cost = fetch_line t base now in
    let line = Cache.install t.cache addr data in
    (Cache.read_word line addr, Cost.(evict_cost ++ fetch_cost ++ cache_hit_cost t))

let mark_dirty t line =
  let buf = active_buf t in
  (* A dirty line here must belong to the current region: stores to a
     prior region's dirty lines stall until the flush cleans them. *)
  assert ((not line.Cache.dirty) || line.Cache.dirty_region = buf.seq);
  if not line.Cache.dirty then begin
    line.Cache.dirty <- true;
    line.Cache.dirty_region <- buf.seq;
    Wbi_table.mark t.wbi line.Cache.base
  end

let store t addr value now =
  sync t now;
  match Cache.find t.cache addr with
  | Some line ->
    Cache.record_hit t.cache;
    let waw_cost =
      if line.Cache.dirty && line.Cache.dirty_region <> (active_buf t).seq
      then begin
        (* §4.3: the line belongs to a prior region still in s-phase1. *)
        match buf_of_seq t line.Cache.dirty_region with
        | Some prior when prior.state = Phase1 ->
          let c = stall_until_phase1 t prior now in
          t.stats.Mstats.waw_stall_ns <- t.stats.Mstats.waw_stall_ns +. c.Cost.ns;
          if Sink.on () then
            Sink.emit ~ns:now
              (Ev.Waw_stall { seq = line.Cache.dirty_region; ns = c.Cost.ns });
          c
        | Some _ | None ->
          sync t now;
          Cost.zero
      end
      else Cost.zero
    in
    Cache.touch t.cache line;
    Cache.write_word line addr value;
    mark_dirty t line;
    Cost.(waw_cost ++ cache_hit_cost t)
  | None ->
    Cache.record_miss t.cache;
    if Sink.on () then Sink.emit ~ns:now (Ev.Cache_miss { addr; write = true });
    let evict_cost, now = evict_for t addr now in
    let base = Layout.line_base addr in
    let data, fetch_cost = fetch_line t base now in
    let line = Cache.install t.cache addr data in
    Cache.write_word line addr value;
    mark_dirty t line;
    Cost.(evict_cost ++ fetch_cost ++ cache_hit_cost t)

(* Region boundary (§3.2): seal the active buffer — flush the region's
   dirty lines into it and schedule both persistence phases on the DMA
   engine — then hand execution to the other buffer, stalling only if it
   has not finished its own s-phase2 (structural hazard, §3.3). *)
let region_end t now =
  sync t now;
  let cur = active_buf t in
  let flush_bases = Wbi_table.bases t.wbi in
  Wbi_table.clear t.wbi;
  let flushed =
    List.filter_map
      (fun base ->
        match Cache.find t.cache base with
        | Some line when line.Cache.dirty && line.Cache.dirty_region = cur.seq ->
          Persist_buffer.push cur.pb ~base ~data:line.Cache.data;
          Some base
        | Some _ | None -> None)
      flush_bases
  in
  let peak = Persist_buffer.peak cur.pb in
  if peak > t.stats.Mstats.buffer_peak then t.stats.Mstats.buffer_peak <- peak;
  let flush_n = List.length flushed in
  Nvm.add_external_writes t.nvm ~events:flush_n
    ~bytes:(flush_n * Layout.line_bytes);
  let total = Persist_buffer.count cur.pb in
  let dma_start = max now t.dma_free in
  let p1_end = dma_start +. (float_of_int flush_n *. (e t).E.dma_line_ns) in
  let p2_end = p1_end +. (float_of_int total *. (e t).E.dma_line_ns) in
  cur.state <- Phase1;
  cur.p1_end <- p1_end;
  cur.p2_end <- p2_end;
  cur.pending_clean <- flushed;
  t.dma_free <- p2_end;
  t.stats.Mstats.persistence_ns <- t.stats.Mstats.persistence_ns +. (p2_end -. now);
  (* Background-persistence energy is charged now; its time is carried by
     the completion timestamps. *)
  let background_joules =
    float_of_int (flush_n + total) *. (e t).E.e_dma_line
  in
  (* Hand over to the next buffer. *)
  let next_idx = (t.active + 1) mod Array.length t.bufs in
  let next = t.bufs.(next_idx) in
  let stall_ns =
    if next.state = Idle then 0.0
    else begin
      let target = max now next.p2_end in
      let s = target -. now in
      sync t target;
      s
    end
  in
  t.stats.Mstats.wait_ns <- t.stats.Mstats.wait_ns +. stall_ns;
  assert (next.state = Idle);
  if Sink.on () then begin
    let cur_idx = t.active in
    Sink.emit ~ns:now (Ev.Region_end { seq = cur.seq; buf = cur_idx });
    Sink.emit ~ns:now
      (Ev.Buf_phase
         {
           buf = cur_idx;
           seq = cur.seq;
           phase = Ev.Fill;
           start_ns = cur.fill_start;
           end_ns = now;
         });
    Sink.emit ~ns:now
      (Ev.Buf_phase
         {
           buf = cur_idx;
           seq = cur.seq;
           phase = Ev.Flush;
           start_ns = dma_start;
           end_ns = p1_end;
         });
    Sink.emit ~ns:now
      (Ev.Buf_phase
         {
           buf = cur_idx;
           seq = cur.seq;
           phase = Ev.Drain;
           start_ns = p1_end;
           end_ns = p2_end;
         });
    if stall_ns > 0.0 then
      Sink.emit ~ns:now (Ev.Buf_wait { buf = next_idx; ns = stall_ns });
    Sink.emit ~ns:(now +. stall_ns)
      (Ev.Region_begin { seq = t.region_seq + 1; buf = next_idx })
  end;
  t.region_seq <- t.region_seq + 1;
  next.state <- Filling;
  next.seq <- t.region_seq;
  next.fill_start <- now +. stall_ns;
  t.active <- next_idx;
  Cost.make ~ns:stall_ns ~joules:background_joules

let mem_ops t =
  {
    Exec.load = (fun addr now -> load t addr now);
    store = (fun addr value now -> store t addr value now);
    clwb = (fun _ _ -> Cost.zero);
    fence = (fun _ -> Cost.zero);
    region_end = (fun now -> region_end t now);
  }

let step t ~now_ns =
  Exec.step t.cfg t.cpu t.prog t.stats (mem_ops t) ~now_ns

let jit_backup_cost _ = None
let commit_jit_backup _ ~now_ns:_ = ()
let continues_after_backup = false

module FM = Sweep_machine.Fault_model

(* Fault model: a power failure cuts the in-flight s-phase2 DMA
   mid-line.  Entries already past the DMA engine land whole; the line
   in flight lands as a word prefix (Nvm.write_line_torn).  Recovery's
   idempotent re-drive rewrites every line whole, healing the tear —
   the differential checker proves exactly that.  Checker-only: writes
   extra NVM traffic, so it is gated on the torn_dma knob. *)
let tear_inflight_dma t ~now_ns =
  Array.iter
    (fun buf ->
      if buf.state = Phase2 then begin
        let entries = Persist_buffer.entries_oldest_first buf.pb in
        let n = List.length entries in
        if n > 0 then begin
          let k =
            let progress = (now_ns -. buf.p1_end) /. (e t).E.dma_line_ns in
            max 0 (min (n - 1) (int_of_float (floor progress)))
          in
          List.iteri
            (fun i (base, data) ->
              if i < k then Nvm.write_line t.nvm base data
              else if i = k then begin
                (* Deterministic but varied tear point in [1, 15]. *)
                let words =
                  1 + ((buf.seq * 31) + (k * 7)) mod (Layout.words_per_line - 1)
                in
                Nvm.write_line_torn t.nvm base data ~words;
                if Sink.on () then
                  Sink.emit ~ns:now_ns (Ev.Fault_torn { base; words })
              end)
            entries
        end
      end)
    t.bufs

(* Mutation: a stuck-at-1 phase1Complete bit means recovery will
   re-drive a buffer whose flush was cut short.  The functional model's
   buffer already holds the whole dirty set (pushed eagerly at
   region_end), so make the physics real: truncate it to the eviction
   entries plus the prefix the DMA actually flushed before the cut. *)
let truncate_cut_flush t ~now_ns =
  Array.iter
    (fun buf ->
      if buf.state = Phase1 then begin
        let flush_n = List.length buf.pending_clean in
        if flush_n > 0 then begin
          let dma_line = (e t).E.dma_line_ns in
          let dma_start = buf.p1_end -. (float_of_int flush_n *. dma_line) in
          let flushed_so_far =
            let f = (now_ns -. dma_start) /. dma_line in
            max 0 (min flush_n (int_of_float (floor f)))
          in
          let keep = Persist_buffer.count buf.pb - flush_n + flushed_so_far in
          Persist_buffer.truncate_to_oldest buf.pb ~keep
        end
      end)
    t.bufs

let on_power_failure t ~now_ns =
  sync t now_ns;
  let fm = t.cfg.Cfg.faults in
  if fm.FM.torn_dma then tear_inflight_dma t ~now_ns;
  if fm.FM.stuck_phase1 then truncate_cut_flush t ~now_ns;
  (* Close the interrupted region's span: it will re-execute under a new
     sequence number after reboot. *)
  if Sink.on () then
    Sink.emit ~ns:now_ns
      (Ev.Region_end { seq = (active_buf t).seq; buf = t.active });
  Cache.invalidate_all t.cache;
  Wbi_table.clear t.wbi;
  Cpu.reset t.cpu ~entry:t.prog.entry;
  Mstats.reset_region_counters t.stats

(* Recovery protocol (§4.2): examine buffers in region order.
   - s-phase1 incomplete (state Filling/Phase1): (0,0) — discard.
   - s-phase1 complete, s-phase2 not (state Phase2): (1,0) — re-drive
     s-phase2 (idempotent redo).
   - both complete: nothing left in the buffer.
   Then reload the checkpointed registers and PC from NVM. *)
let on_reboot t ~now_ns =
  let fm = t.cfg.Cfg.faults in
  let ordered =
    Array.to_list t.bufs
    |> List.filter (fun b -> b.state <> Idle)
    |> List.sort (fun a b -> compare a.seq b.seq)
  in
  let index_of buf =
    let idx = ref 0 in
    Array.iteri (fun i b -> if b == buf then idx := i) t.bufs;
    !idx
  in
  let discarding = ref false in
  let redo_cost = ref Cost.zero in
  List.iter
    (fun buf ->
      (* What recovery *believes* about the phase-complete bits; a stuck
         bit makes it believe a phase finished that did not. *)
      let phase1_done =
        buf.state = Phase2 || fm.FM.stuck_phase1
      in
      let phase2_done = phase1_done && fm.FM.stuck_phase2 in
      if Sink.on () && fm.FM.stuck_phase1 && buf.state <> Phase2 then
        Sink.emit ~ns:now_ns
          (Ev.Fault_stuck { bit = 1; buf = index_of buf; seq = buf.seq });
      if Sink.on () && fm.FM.stuck_phase2 && phase1_done then
        Sink.emit ~ns:now_ns
          (Ev.Fault_stuck { bit = 2; buf = index_of buf; seq = buf.seq });
      (if phase1_done && phase2_done then
         (* Believed fully drained: nothing to redo — the entries are
            dropped on the floor (this is the mutation detecting a
            silent-green checker). *)
         Persist_buffer.clear buf.pb
       else if phase1_done && not !discarding then begin
         let n = Persist_buffer.count buf.pb in
         if Sink.on () then
           Sink.emit ~ns:now_ns
             (Ev.Mark
                {
                  name = Printf.sprintf "redo seq %d (%d lines)" buf.seq n;
                  cat = Sweep_obs.Event.Buffer;
                });
         apply_entries t buf;
         redo_cost :=
           Cost.(
             !redo_cost
             ++ make
                  ~ns:(float_of_int n *. (e t).E.dma_line_ns)
                  ~joules:(float_of_int n *. (e t).E.e_dma_line))
       end
       else begin
         discarding := true;
         if Sink.on () && Persist_buffer.count buf.pb > 0 then
           Sink.emit ~ns:now_ns
             (Ev.Mark
                {
                  name =
                    Printf.sprintf "discard seq %d (%d lines)" buf.seq
                      (Persist_buffer.count buf.pb);
                  cat = Sweep_obs.Event.Buffer;
                });
         Persist_buffer.clear buf.pb
       end);
      buf.state <- Idle;
      buf.seq <- -1;
      buf.pending_clean <- [])
    ordered;
  t.dma_free <- now_ns;
  (* Restore the architectural state from the checkpoint array. *)
  if fm.FM.skip_restore then begin
    (* Mutation: reboot "forgets" the checkpoint reload and restarts
       from program entry over the persisted NVM state. *)
    if Sink.on () then
      Sink.emit ~ns:now_ns
        (Ev.Mark { name = "mutation: skip restore"; cat = Ev.Fault })
  end
  else begin
    let layout = t.prog.layout in
    for r = 0 to Sweep_isa.Reg.count - 1 do
      t.cpu.Cpu.regs.(r) <- Nvm.read_word t.nvm (Layout.reg_slot layout r)
    done;
    t.cpu.Cpu.pc <- Nvm.read_word t.nvm layout.ckpt_pc
  end;
  t.cpu.Cpu.halted <- false;
  let reads = float_of_int (Sweep_isa.Reg.count + 1) in
  let restore_cost =
    Cost.make ~ns:(reads *. (e t).E.nvm_read_ns)
      ~joules:(reads *. (e t).E.e_nvm_read)
  in
  let total = Cost.(!redo_cost ++ restore_cost) in
  t.stats.Mstats.restore_events <- t.stats.Mstats.restore_events + 1;
  t.stats.Mstats.restore_joules <- t.stats.Mstats.restore_joules +. total.Cost.joules;
  (* Execution resumes in a fresh region on buffer 0. *)
  t.region_seq <- t.region_seq + 1;
  t.bufs.(0).state <- Filling;
  t.bufs.(0).seq <- t.region_seq;
  t.bufs.(0).fill_start <- now_ns +. total.Cost.ns;
  t.active <- 0;
  if Sink.on () then
    Sink.emit ~ns:(now_ns +. total.Cost.ns)
      (Ev.Region_begin { seq = t.region_seq; buf = 0 });
  total

let drain t ~now_ns =
  if Sink.on () then
    Sink.emit ~ns:now_ns
      (Ev.Region_end { seq = (active_buf t).seq; buf = t.active });
  let finish = max now_ns t.dma_free in
  sync t finish;
  Cost.make ~ns:(finish -. now_ns) ~joules:0.0

let buffer_peak t = t.stats.Mstats.buffer_peak

let avg_buffer_fill_at_miss t =
  if t.miss_fill_n = 0 then 0.0
  else float_of_int t.miss_fill_sum /. float_of_int t.miss_fill_n

type t_alias = t

let pack instance =
  let m =
    (module struct
      type t = t_alias

      let name = name
      let create = create
      let cpu = cpu
      let nvm = nvm
      let cache = cache
      let mstats = mstats
      let detector = detector
      let step = step
      let halted = halted
      let jit_backup_cost = jit_backup_cost
      let commit_jit_backup = commit_jit_backup
      let continues_after_backup = continues_after_backup
      let on_power_failure = on_power_failure
      let on_reboot = on_reboot
      let drain = drain
    end : Sweep_machine.Machine_intf.S
      with type t = t_alias)
  in
  Sweep_machine.Machine_intf.Packed (m, instance)

let packed cfg prog = pack (create cfg prog)
