(* Seeded random program generation for the crash-sweep fuzzer.

   Mirrors the QCheck generators in test/gen.ml, but driven by
   [Sweep_util.Rng] so a failing program is reproducible from a single
   integer seed that can be reported, stored as a CI artifact and
   replayed.  Programs are total by construction: loop bounds are small
   constants, array indices are wrapped into bounds, locals are read
   only after assignment, and there is no recursion. *)

open Sweep_lang.Ast
module Rng = Sweep_util.Rng

let array_names = [ ("ga", 24); ("gb", 48) ]
let scalar_names = [ "gs"; "gt" ]
let pick rng l = List.nth l (Rng.int rng (List.length l))

(* Wrap an arbitrary expression into a valid index for [len]. *)
let bounded_index len e =
  Binop (Rem, Binop (And, e, Int 0x3FFFFFFF), Int len)

let gen_expr rng ~vars ~depth =
  let rec go depth =
    let leaf () =
      match Rng.int rng (if vars = [] then 4 else 6) with
      | 0 | 1 -> Int (Rng.int rng 201 - 100)
      | 2 | 3 -> Global (pick rng scalar_names)
      | _ -> Var (pick rng vars)
    in
    if depth <= 0 then leaf ()
    else
      match Rng.int rng 8 with
      | 0 | 1 | 2 -> leaf ()
      | 3 | 4 | 5 | 6 ->
        let op =
          pick rng
            [ Add; Sub; Mul; Div; Rem; And; Or; Xor; Shl; Shr;
              Lt; Le; Gt; Ge; Eq; Ne ]
        in
        let a = go (depth - 1) in
        let b = go (depth - 1) in
        (* Shifts wider than the word make values explode; clamp. *)
        (match op with
        | Shl | Shr -> Binop (op, a, Binop (And, b, Int 7))
        | _ -> Binop (op, a, b))
      | _ ->
        let name, len = pick rng array_names in
        Load (name, bounded_index len (go (depth - 1)))
  in
  go depth

(* [readable] includes loop variables; [assignable] excludes them so a
   generated body can never move an enclosing loop counter. *)
let gen_stmts rng ~budget =
  let fresh_var readable = Printf.sprintf "x%d" (List.length readable) in
  let rec go ~readable ~assignable budget =
    if budget <= 0 then []
    else
      let stmts, readable, assignable =
        match Rng.int rng 12 with
        | 0 | 1 | 2 | 3 ->
          let target =
            if assignable = [] || Rng.bool rng then fresh_var readable
            else pick rng assignable
          in
          let e = gen_expr rng ~vars:readable ~depth:3 in
          ( [ Assign (target, e) ],
            (if List.mem target readable then readable
             else target :: readable),
            if List.mem target assignable then assignable
            else target :: assignable )
        | 4 | 5 ->
          let name, len = pick rng array_names in
          let idx = gen_expr rng ~vars:readable ~depth:2 in
          let value = gen_expr rng ~vars:readable ~depth:3 in
          ([ Store (name, bounded_index len idx, value) ], readable, assignable)
        | 6 ->
          let s = pick rng scalar_names in
          let e = gen_expr rng ~vars:readable ~depth:3 in
          ([ Set_global (s, e) ], readable, assignable)
        | 7 | 8 ->
          let c = gen_expr rng ~vars:readable ~depth:2 in
          let t = go ~readable ~assignable (budget / 3) in
          let e = go ~readable ~assignable (budget / 3) in
          ([ If (c, t, e) ], readable, assignable)
        | 9 | 10 ->
          let loop_var = fresh_var readable in
          let n = 1 + Rng.int rng 9 in
          let body =
            go ~readable:(loop_var :: readable) ~assignable (budget / 3)
          in
          ([ For (loop_var, Int 0, Int n, body) ], readable, assignable)
        | _ ->
          let a = gen_expr rng ~vars:readable ~depth:2 in
          let b = gen_expr rng ~vars:readable ~depth:2 in
          ([ Call_stmt ("helper", [ a; b ]) ], readable, assignable)
      in
      stmts @ go ~readable ~assignable (budget - 1)
  in
  go ~readable:[] ~assignable:[] budget

(* A helper function exercising params, a loop and a return value. *)
let helper_fun =
  {
    fname = "helper";
    params = [ "p"; "q" ];
    body =
      [
        Assign ("acc", Var "p");
        For
          ( "k",
            Int 0,
            Binop (And, Var "q", Int 7),
            [
              Assign
                ( "acc",
                  Binop (Add, Var "acc", Load ("ga", bounded_index 24 (Var "k")))
                );
              Store ("gb", bounded_index 48 (Var "acc"), Var "k");
            ] );
        Set_global ("gs", Binop (Xor, Global "gs", Var "acc"));
        Return (Some (Var "acc"));
      ];
  }

let assemble ~seed body =
  let init name len =
    Array (name, len, Array.init len (fun k -> ((k * 37) + seed) land 0xFFFF))
  in
  let main_body =
    body
    @ [
        Assign ("r", Call ("helper", [ Global "gs"; Int 5 ]));
        Set_global ("gt", Binop (Add, Global "gt", Var "r"));
        Return None;
      ]
  in
  {
    globals =
      [ init "ga" 24; init "gb" 48; Scalar ("gs", seed land 0xFF); Scalar ("gt", 1) ];
    funcs = [ helper_fun; { fname = "main"; params = []; body = main_body } ];
  }

let generate ~seed =
  let rng = Rng.create seed in
  let budget = 6 + Rng.int rng 10 in
  let p = assemble ~seed (gen_stmts rng ~budget) in
  validate p;
  p

(* Shrinking: repeatedly drop top-level statements of [main]'s generated
   prefix while the predicate [still_failing] holds, until no single
   removal keeps it failing.  The three trailing statements added by
   [assemble] (helper call + accumulate + return) are kept so the
   program stays well-formed. *)
let shrink ~still_failing p =
  let split_main p =
    match List.partition (fun f -> f.fname = "main") p.funcs with
    | [ m ], rest -> (m, rest)
    | _ -> invalid_arg "Progen.shrink: no unique main"
  in
  let with_body p body =
    let m, rest = split_main p in
    let p' = { p with funcs = { m with body } :: rest } in
    match validate p' with () -> Some p' | exception Invalid _ -> None
  in
  let rec drop_one p =
    let m, _ = split_main p in
    let n = List.length m.body in
    (* Keep the 3-statement epilogue intact. *)
    let candidates =
      List.init (max 0 (n - 3)) (fun i ->
          with_body p (List.filteri (fun j _ -> j <> i) m.body))
    in
    let next =
      List.find_map
        (fun cand ->
          match cand with
          | Some p' when still_failing p' -> Some p'
          | _ -> None)
        candidates
    in
    match next with Some p' -> drop_one p' | None -> p
  in
  drop_one p

(* Render a program as readable pseudo-code for the CI artifact. *)
let render p =
  let b = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let op_name = function
    | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Rem -> "%"
    | And -> "&" | Or -> "|" | Xor -> "^" | Shl -> "<<" | Shr -> ">>"
    | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">=" | Eq -> "==" | Ne -> "!="
  in
  let rec expr = function
    | Int n -> string_of_int n
    | Var v -> v
    | Global g -> "$" ^ g
    | Load (a, i) -> Printf.sprintf "%s[%s]" a (expr i)
    | Binop (op, x, y) ->
      Printf.sprintf "(%s %s %s)" (expr x) (op_name op) (expr y)
    | Call (f, args) ->
      Printf.sprintf "%s(%s)" f (String.concat ", " (List.map expr args))
  in
  let rec stmt ind s =
    let p fmt = pf "%s" ind; pf fmt in
    match s with
    | Assign (v, e) -> p "%s = %s\n" v (expr e)
    | Set_global (g, e) -> p "$%s = %s\n" g (expr e)
    | Store (a, i, v) -> p "%s[%s] = %s\n" a (expr i) (expr v)
    | If (c, t, e) ->
      p "if %s {\n" (expr c);
      List.iter (stmt (ind ^ "  ")) t;
      if e <> [] then begin
        pf "%s} else {\n" ind;
        List.iter (stmt (ind ^ "  ")) e
      end;
      pf "%s}\n" ind
    | While (c, body) ->
      p "while %s {\n" (expr c);
      List.iter (stmt (ind ^ "  ")) body;
      pf "%s}\n" ind
    | For (v, lo, hi, body) ->
      p "for %s = %s .. %s {\n" v (expr lo) (expr hi);
      List.iter (stmt (ind ^ "  ")) body;
      pf "%s}\n" ind
    | Call_stmt (f, args) ->
      p "%s(%s)\n" f (String.concat ", " (List.map expr args))
    | Return None -> p "return\n"
    | Return (Some e) -> p "return %s\n" (expr e)
  in
  List.iter
    (function
      | Scalar (name, v) -> pf "global $%s = %d\n" name v
      | Array (name, len, init) ->
        pf "global %s[%d] = [%s ...]\n" name len
          (String.concat "; "
             (List.map string_of_int
                (Array.to_list (Array.sub init 0 (min 4 (Array.length init)))))))
    p.globals;
  List.iter
    (fun f ->
      pf "\nfn %s(%s) {\n" f.fname (String.concat ", " f.params);
      List.iter (stmt "  ") f.body;
      pf "}\n")
    p.funcs;
  Buffer.contents b
