(* Differential crash-consistency checker (§4.2 validation).

   The checker answers one question: after an adversarial power failure
   anywhere in a run — including inside a phase-2 flush, mid-phase-3
   DMA, or during recovery itself — does the machine recover to a state
   it could legitimately be in, and does the program still compute the
   right answer?

   It does so differentially, against two oracles:

   - A golden no-failure execution of the same compiled program.  For
     SweepCache a scout pass records every region boundary (by dynamic
     instruction index) and a snapshot pass captures the NVM image +
     checkpointed registers + PC at each boundary.  A crashed run's
     recovered state must equal one of those boundary states — §4.2's
     contract is exactly "recovery lands on the last phase1-complete
     region boundary".
   - The reference interpreter: the final globals of every crashed run
     (any design) must match {!Sweep_sim.Harness.check_against_interp},
     the end-to-end correctness bar.

   The two passes may disagree on *timing* (the snapshot pass drains
   buffers early) but never on *values*: execution is deterministic and
   never reads the clock, so the dynamic instruction stream, every
   stored value and every boundary's NVM image are timing-independent.
   That is what makes the cheap drain-at-boundary snapshot a sound
   oracle. *)

module H = Sweep_sim.Harness
module Driver = Sweep_sim.Driver
module Fault = Sweep_sim.Fault
module MI = Sweep_machine.Machine_intf
module Mstats = Sweep_machine.Mstats
module Config = Sweep_machine.Config
module FM = Sweep_machine.Fault_model
module Cost = Sweep_machine.Cost
module Cpu = Sweep_machine.Cpu
module Layout = Sweep_isa.Layout
module Nvm = Sweep_mem.Nvm
module Pipeline = Sweep_compiler.Pipeline
module Sink = Sweep_obs.Sink
module Ev = Sweep_obs.Event

(* ------------------------------------------------------------------ *)
(* State digests                                                       *)

(* A recovered machine is compared on the persistent state that §4.2
   promises to preserve: the data segment and the checkpoint line
   (registers + PC).  Volatile state (cache, buffers) is by definition
   lost at a crash and excluded. *)
let word_ceil addr = (addr + Layout.word_bytes - 1) / Layout.word_bytes * Layout.word_bytes

let digest ~(layout : Layout.t) nvm =
  let data =
    Nvm.image nvm ~lo:layout.Layout.data_base ~hi:(word_ceil layout.Layout.data_limit)
  in
  let ckpt =
    Nvm.image nvm ~lo:layout.Layout.ckpt_base
      ~hi:(layout.Layout.ckpt_base + Layout.line_bytes)
  in
  Digest.to_hex (Digest.bytes (Marshal.to_bytes (data, ckpt) []))

type boundary = { instr : int; pc : int; digest : string }

type oracle = {
  boundaries : boundary list;  (* ascending by [instr]; head = boundary 0 *)
  accept : (string, unit) Hashtbl.t;  (* read-only after construction *)
}

let accept_key ~pc ~digest = string_of_int pc ^ "|" ^ digest

(* ------------------------------------------------------------------ *)
(* Golden pass A: scout                                                *)

type scouted = {
  total_instructions : int;
  boundary_instrs : int list;  (* ascending; instruction index at which
                                  each region boundary completes *)
  flush_instrs : int list;  (* first instruction ending inside a phase-2
                               flush window — crash here lands mid-flush *)
  drain_instrs : int list;  (* same for phase-3 DMA windows *)
}

(* Steps the machine by hand (no driver, no failures), recording the
   dynamic instruction index of every region boundary via the
   [Mstats.regions] counter and mapping persistence-window midpoints
   (observed through a {!Sink.spy} on [Buf_phase] events) back to the
   first instruction whose completion time passes them.  Sequential
   only — the spy taps global sink state. *)
let scout ~config design compiled ~max_instructions =
  let m = H.machine ~config design compiled.Pipeline.program in
  let stats = MI.mstats m in
  let pending = ref [] in
  let flush_instrs = ref [] and drain_instrs = ref [] in
  let detach =
    Sink.spy (fun ~ns:_ ev ->
        match ev with
        | Ev.Buf_phase { phase = (Ev.Flush | Ev.Drain) as ph; start_ns; end_ns; _ }
          when end_ns > start_ns ->
          pending := (ph, 0.5 *. (start_ns +. end_ns)) :: !pending
        | _ -> ())
  in
  Fun.protect ~finally:detach @@ fun () ->
  let acc = MI.acc m in
  let now = ref 0.0 and n = ref 0 in
  let boundaries = ref [] in
  let last_regions = ref stats.Mstats.regions in
  while not (MI.halted m) do
    if !n >= max_instructions then
      raise (Driver.Stagnation "Check.scout: instruction guard exceeded");
    acc.Sweep_machine.Exec.Acc.now <- !now;
    MI.step m;
    now := !now +. acc.Sweep_machine.Exec.Acc.ns;
    incr n;
    if stats.Mstats.regions > !last_regions then begin
      last_regions := stats.Mstats.regions;
      boundaries := !n :: !boundaries
    end;
    match !pending with
    | [] -> ()
    | _ ->
      let fired, rest = List.partition (fun (_, mid) -> mid <= !now) !pending in
      pending := rest;
      List.iter
        (fun (ph, _) ->
          match ph with
          | Ev.Flush -> flush_instrs := !n :: !flush_instrs
          | _ -> drain_instrs := !n :: !drain_instrs)
        fired
  done;
  {
    total_instructions = !n;
    boundary_instrs = List.rev !boundaries;
    flush_instrs = List.rev !flush_instrs;
    drain_instrs = List.rev !drain_instrs;
  }

(* ------------------------------------------------------------------ *)
(* Golden pass B: boundary snapshots                                   *)

(* Re-executes from scratch and, at each boundary index from the scout,
   forces all in-flight persistence to complete ([MI.drain]) before
   digesting NVM.  Draining early only moves timing, never values (the
   buffered writes land on the same addresses either way), so the
   digest equals what a crashed run's completed recovery must
   reconstruct. *)
let snapshot_oracle ~config design compiled ~boundary_instrs =
  let m = H.machine ~config design compiled.Pipeline.program in
  let layout = compiled.Pipeline.program.Sweep_isa.Program.layout in
  let nvm = MI.nvm m in
  let acc = MI.acc m in
  let now = ref 0.0 and n = ref 0 in
  let snap instr =
    {
      instr;
      pc = Nvm.peek_word nvm layout.Layout.ckpt_pc;
      digest = digest ~layout nvm;
    }
  in
  let boundaries =
    snap 0
    :: List.map
         (fun target ->
           while !n < target && not (MI.halted m) do
             acc.Sweep_machine.Exec.Acc.now <- !now;
             MI.step m;
             now := !now +. acc.Sweep_machine.Exec.Acc.ns;
             incr n
           done;
           let c = MI.drain m ~now_ns:!now in
           now := !now +. c.Cost.ns;
           snap target)
         boundary_instrs
  in
  let accept = Hashtbl.create (List.length boundaries) in
  List.iter
    (fun b -> Hashtbl.replace accept (accept_key ~pc:b.pc ~digest:b.digest) ())
    boundaries;
  { boundaries; accept }

(* ------------------------------------------------------------------ *)
(* Crashed runs                                                        *)

type divergence = {
  design : string;
  bench : string;
  scale : float;
  point : string;  (** crash-point description, {!Fault.describe} *)
  stage : string;  (** ["golden"], ["recovery"], ["final"] or ["run"] *)
  message : string;
}

let pp_divergence d =
  Printf.sprintf "%s/%s@%g [%s] %s: %s" d.design d.bench d.scale d.point
    d.stage d.message

type point_outcome = { injected : int; divergences : divergence list }

type case = {
  design : H.design;
  bench : string;
  scale : float;
  config : Config.t;
  fm : FM.t;
  compiled : Pipeline.compiled;
  ast : Sweep_lang.Ast.program;
  oracle : oracle option;  (* Sweep only; baselines have no boundaries *)
  max_instructions : int;
}

(* One crashed run: inject [fault], let recovery do its thing, then
   verify (a) every completed recovery landed on an oracle boundary and
   (b) the final globals still match the reference interpreter. *)
let run_point case fault =
  let cfg = Config.with_faults case.config case.fm in
  let m = H.machine ~config:cfg case.design case.compiled.Pipeline.program in
  let layout = case.compiled.Pipeline.program.Sweep_isa.Program.layout in
  let divs = ref [] in
  let div stage message =
    divs :=
      {
        design = H.design_name case.design;
        bench = case.bench;
        scale = case.scale;
        point = Fault.describe fault;
        stage;
        message;
      }
      :: !divs
  in
  let after_recovery ~now_ns:_ =
    match case.oracle with
    | None -> ()
    | Some o ->
      let pc = (MI.cpu m).Cpu.pc in
      let dg = digest ~layout (MI.nvm m) in
      if not (Hashtbl.mem o.accept (accept_key ~pc ~digest:dg)) then
        div "recovery"
          (Printf.sprintf
             "recovered state (pc=%d digest=%s..) matches no golden region \
              boundary"
             pc
             (String.sub dg 0 12))
  in
  match
    Driver.run ~max_instructions:case.max_instructions ~fault ~after_recovery m
      ~power:Driver.Unlimited
  with
  | exception Driver.Stagnation msg ->
    div "run" ("stagnation: " ^ msg);
    { injected = 0; divergences = !divs }
  | outcome ->
    let r =
      {
        H.design = case.design;
        outcome;
        machine = m;
        compiled = case.compiled;
        attrib = None;
      }
    in
    (match H.check_against_interp r case.ast with
    | Ok () -> ()
    | Error msg -> div "final" msg);
    { injected = outcome.Driver.injected_faults; divergences = !divs }

(* ------------------------------------------------------------------ *)
(* Crash-point placement                                               *)

(* Evenly subsample [l] down to at most [k] elements. *)
let sample k l =
  let n = List.length l in
  if n <= k || k <= 0 then l
  else
    List.filteri (fun i _ -> i * k / n < (i + 1) * k / n) l

(* Crash points for one (design, bench) cell: a stride over the whole
   dynamic instruction stream, the exact halt instruction, plus (for
   SweepCache) points landing inside phase-2 flush and phase-3 DMA
   windows, with a sprinkling of nested re-crashes for
   crash-during-recovery coverage. *)
let plan_points ~scouted ~stride ~max_points ~nested_every ~phase_points =
  let total = scouted.total_instructions in
  let stride =
    if stride > 0 then stride else max 1 (total / max 1 max_points)
  in
  let rec strided acc i = if i > total then acc else strided (i :: acc) (i + stride) in
  let base = List.rev (strided [] 1) in
  let base = if List.mem total base then base else base @ [ total ] in
  let base = sample max_points base in
  let phased =
    if phase_points then
      sample 6 scouted.flush_instrs @ sample 6 scouted.drain_instrs
    else []
  in
  let points = List.sort_uniq compare (base @ phased) in
  List.mapi
    (fun i n ->
      let nested =
        if nested_every > 0 && i mod nested_every = nested_every - 1 then 1
        else 0
      in
      Fault.at_instruction ~nested n)
    points

(* ------------------------------------------------------------------ *)
(* Sweeps                                                              *)

type plan = {
  designs : H.design list;
  benches : (string * float) list;  (* (workload name, scale) *)
  max_points : int;  (* crash points per design x bench cell *)
  stride : int;  (* explicit stride; 0 = derive from [max_points] *)
  nested_every : int;  (* every k-th point re-crashes during recovery *)
  fm : FM.t;  (* fault model active in crashed runs *)
  phase_points : bool;  (* add flush-/drain-window points (Sweep) *)
  workers : int;
  max_instructions : int;
}

let default_plan =
  {
    designs = H.all_designs;
    benches =
      [
        ("sha", 0.08); ("sha", 0.16); ("sha", 0.3);
        ("dijkstra", 0.08); ("dijkstra", 0.16); ("dijkstra", 0.3);
        ("fft", 0.08); ("fft", 0.16); ("fft", 0.3);
      ];
    max_points = 24;
    stride = 0;
    nested_every = 5;
    fm = { FM.none with FM.torn_dma = true };
    phase_points = true;
    workers = 1;
    max_instructions = 50_000_000;
  }

type report = {
  cells : int;  (* (design, bench) combinations checked *)
  points : int;  (* crashed runs executed *)
  crashes : int;  (* faults actually injected (incl. nested) *)
  skipped : int;  (* points whose trigger never fired *)
  oracle_boundaries : int;
  divergences : divergence list;
}

let empty_report =
  {
    cells = 0;
    points = 0;
    crashes = 0;
    skipped = 0;
    oracle_boundaries = 0;
    divergences = [];
  }

let merge a b =
  {
    cells = a.cells + b.cells;
    points = a.points + b.points;
    crashes = a.crashes + b.crashes;
    skipped = a.skipped + b.skipped;
    oracle_boundaries = a.oracle_boundaries + b.oracle_boundaries;
    divergences = a.divergences @ b.divergences;
  }

let ok r = r.divergences = []

(* Check one compiled program on one design: golden passes (sequential —
   the scout's spy taps global sink state), then the crash points in
   parallel via {!Sweep_exp.Executor.map} (instruction-triggered faults
   only, so workers never touch the sink). *)
let check_cell ?(config = Config.default) ?(guard = 50_000_000) ~fm ~bench
    ~scale ~max_points ~stride ~nested_every ~phase_points ~workers design ast =
  let compiled = H.compile design ast in
  let divergence stage message =
    {
      design = H.design_name design;
      bench;
      scale;
      point = "-";
      stage;
      message;
    }
  in
  match scout ~config design compiled ~max_instructions:guard with
  | exception Driver.Stagnation msg ->
    { empty_report with cells = 1; divergences = [ divergence "golden" msg ] }
  | scouted ->
    let oracle =
      match design with
      | H.Sweep ->
        Some
          (snapshot_oracle ~config design compiled
             ~boundary_instrs:scouted.boundary_instrs)
      | _ -> None
    in
    (* A golden run with a broken oracle would vacuously accept; make
       sure the no-failure execution itself matches the interpreter
       before trusting it. *)
    let golden_divs =
      let r =
        H.run ~config design ~power:Driver.Unlimited
          ~max_instructions:guard ast
      in
      match H.check_against_interp r ast with
      | Ok () -> []
      | Error msg -> [ divergence "golden" msg ]
    in
    let case =
      {
        design;
        bench;
        scale;
        config;
        fm;
        compiled;
        ast;
        oracle;
        max_instructions =
          (* re-execution after recovery inflates the dynamic count *)
          (scouted.total_instructions * 4) + 100_000;
      }
    in
    let points =
      plan_points ~scouted ~stride ~max_points ~nested_every ~phase_points
    in
    let outcomes =
      if workers > 1 then
        Sweep_exp.Executor.map ~workers (run_point case) points
      else List.map (run_point case) points
    in
    let crashes = List.fold_left (fun acc o -> acc + o.injected) 0 outcomes in
    let skipped =
      List.length (List.filter (fun o -> o.injected = 0) outcomes)
    in
    {
      cells = 1;
      points = List.length points;
      crashes;
      skipped;
      oracle_boundaries =
        (match oracle with Some o -> List.length o.boundaries | None -> 0);
      divergences =
        golden_divs
        @ List.concat_map (fun (o : point_outcome) -> o.divergences) outcomes;
    }

(* Targeted variant: run exactly the given fault plans against one
   program (tests aiming at specific flush/drain/nested crash points). *)
let check_points ?(config = Config.default) ?(guard = 50_000_000)
    ?(fm = FM.none) ?(bench = "adhoc") ?(scale = 1.0) design ast faults =
  let compiled = H.compile design ast in
  let scouted = scout ~config design compiled ~max_instructions:guard in
  let oracle =
    match design with
    | H.Sweep ->
      Some
        (snapshot_oracle ~config design compiled
           ~boundary_instrs:scouted.boundary_instrs)
    | _ -> None
  in
  let case =
    {
      design;
      bench;
      scale;
      config;
      fm;
      compiled;
      ast;
      oracle;
      max_instructions = (scouted.total_instructions * 4) + 100_000;
    }
  in
  let outcomes = List.map (run_point case) faults in
  {
    cells = 1;
    points = List.length faults;
    crashes =
      List.fold_left (fun acc (o : point_outcome) -> acc + o.injected) 0
        outcomes;
    skipped =
      List.length
        (List.filter (fun (o : point_outcome) -> o.injected = 0) outcomes);
    oracle_boundaries =
      (match oracle with Some o -> List.length o.boundaries | None -> 0);
    divergences =
      List.concat_map (fun (o : point_outcome) -> o.divergences) outcomes;
  }

let ast_of_bench ~bench ~scale =
  Sweep_workloads.Workload.program ~scale
    (Sweep_workloads.Registry.find bench)

let run_plan ?(progress = fun (_ : string) -> ()) plan =
  List.fold_left
    (fun acc (bench, scale) ->
      let ast = ast_of_bench ~bench ~scale in
      List.fold_left
        (fun acc design ->
          progress
            (Printf.sprintf "%-8s %s@%g" (H.design_name design) bench scale);
          let r =
            check_cell ~guard:plan.max_instructions ~fm:plan.fm ~bench ~scale
              ~max_points:plan.max_points ~stride:plan.stride
              ~nested_every:plan.nested_every ~phase_points:plan.phase_points
              ~workers:plan.workers design ast
          in
          merge acc r)
        acc plan.designs)
    empty_report plan.benches

(* Fuzzing entry point: check one generated program (Sweep + NVSRAM by
   default — the two interesting recovery disciplines) and report. *)
let check_program ?(designs = [ H.Sweep; H.Nvsram ]) ?(fm = FM.none)
    ?(max_points = 12) ?(nested_every = 4) ast =
  List.fold_left
    (fun acc design ->
      merge acc
        (check_cell ~fm ~bench:"fuzz" ~scale:1.0 ~max_points ~stride:0
           ~nested_every ~phase_points:true ~workers:1 design ast))
    empty_report designs
