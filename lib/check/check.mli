(** Differential crash-consistency checker.

    Validates the §4.2 recovery argument mechanically: a golden
    no-failure execution provides two oracles — the NVM image +
    checkpointed registers + PC at every region boundary (SweepCache),
    and the reference interpreter's final globals (every design) — and
    every crashed run, with faults injected at chosen instructions
    (inside phase-2 flushes, mid-phase-3 DMA, nested during recovery),
    must converge back to them.

    Golden passes are sequential (the scout taps the event stream via
    {!Sweep_obs.Sink.spy}); crash points use instruction-triggered
    faults only and may run in parallel. *)

type boundary = { instr : int; pc : int; digest : string }

type oracle = {
  boundaries : boundary list;
  accept : (string, unit) Hashtbl.t;
}

val digest : layout:Sweep_isa.Layout.t -> Sweep_mem.Nvm.t -> string
(** MD5 over the data segment plus the checkpoint line — the
    persistent state recovery must reconstruct. *)

type scouted = {
  total_instructions : int;
  boundary_instrs : int list;
  flush_instrs : int list;
  drain_instrs : int list;
}

val scout :
  config:Sweep_machine.Config.t ->
  Sweep_sim.Harness.design ->
  Sweep_compiler.Pipeline.compiled ->
  max_instructions:int ->
  scouted
(** Golden pass A: dynamic instruction count, region-boundary
    instruction indices, and instructions landing inside persistence
    windows.  Sequential only.  Raises {!Sweep_sim.Driver.Stagnation}
    past the guard. *)

val snapshot_oracle :
  config:Sweep_machine.Config.t ->
  Sweep_sim.Harness.design ->
  Sweep_compiler.Pipeline.compiled ->
  boundary_instrs:int list ->
  oracle
(** Golden pass B: re-executes, drains at each boundary, digests. *)

type divergence = {
  design : string;
  bench : string;
  scale : float;
  point : string;
  stage : string;
  message : string;
}

val pp_divergence : divergence -> string

type plan = {
  designs : Sweep_sim.Harness.design list;
  benches : (string * float) list;
  max_points : int;
  stride : int;
  nested_every : int;
  fm : Sweep_machine.Fault_model.t;
  phase_points : bool;
  workers : int;
  max_instructions : int;
}

val default_plan : plan
(** The 9-job matrix (sha/dijkstra/fft at three scales), all designs,
    ~24 strided points per cell plus phase-window and nested points,
    torn-DMA on. *)

type report = {
  cells : int;
  points : int;
  crashes : int;
  skipped : int;
  oracle_boundaries : int;
  divergences : divergence list;
}

val empty_report : report
val merge : report -> report -> report
val ok : report -> bool

val ast_of_bench : bench:string -> scale:float -> Sweep_lang.Ast.program
(** Raises [Not_found] for an unknown workload name. *)

val check_points :
  ?config:Sweep_machine.Config.t ->
  ?guard:int ->
  ?fm:Sweep_machine.Fault_model.t ->
  ?bench:string ->
  ?scale:float ->
  Sweep_sim.Harness.design ->
  Sweep_lang.Ast.program ->
  Sweep_sim.Fault.t list ->
  report
(** Run exactly the given fault plans (tests targeting specific
    flush/drain/nested crash points).  Sequential. *)

val check_cell :
  ?config:Sweep_machine.Config.t ->
  ?guard:int ->
  fm:Sweep_machine.Fault_model.t ->
  bench:string ->
  scale:float ->
  max_points:int ->
  stride:int ->
  nested_every:int ->
  phase_points:bool ->
  workers:int ->
  Sweep_sim.Harness.design ->
  Sweep_lang.Ast.program ->
  report
(** Golden passes + crash sweep for one (design, program) cell. *)

val run_plan : ?progress:(string -> unit) -> plan -> report

val check_program :
  ?designs:Sweep_sim.Harness.design list ->
  ?fm:Sweep_machine.Fault_model.t ->
  ?max_points:int ->
  ?nested_every:int ->
  Sweep_lang.Ast.program ->
  report
(** Fuzzer entry point: one generated program, Sweep + NVSRAM by
    default, sequential. *)
