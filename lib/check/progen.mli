(** Seeded random program generation + shrinking for the crash-sweep
    fuzzer ([sweepcheck fuzz]).

    Same shape as the QCheck generators in [test/gen.ml] (total by
    construction: constant loop bounds, wrapped array indices, no
    recursion), but driven by {!Sweep_util.Rng} so any failing case is
    reproducible from its integer seed alone. *)

val generate : seed:int -> Sweep_lang.Ast.program
(** Deterministic: same seed, same program.  The result passes
    {!Sweep_lang.Ast.validate}. *)

val shrink :
  still_failing:(Sweep_lang.Ast.program -> bool) ->
  Sweep_lang.Ast.program ->
  Sweep_lang.Ast.program
(** Greedily removes top-level statements from [main] (keeping the
    fixed epilogue) while [still_failing] stays [true]; returns a
    1-minimal failing program. *)

val render : Sweep_lang.Ast.program -> string
(** Readable pseudo-code, for shrunk-case CI artifacts. *)
