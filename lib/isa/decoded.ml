(* Programs are compiled once into packed parallel int arrays so the
   cycle loop dispatches on a flat opcode instead of matching variant
   constructors.  Binop/cond sub-operations are fused into the opcode
   (one jump table in the executor, no second tag read); operands live
   in three parallel arrays [x]/[y]/[z] whose meaning is per-opcode.

   The numbering is shared with [Sweep_machine.Exec]'s dispatch loop —
   keep the two in sync (the differential suite in test/t_equiv.ml
   cross-checks the decoded path against the variant interpreter over
   the full workload registry, so a drift cannot land silently). *)

(* Fused ranges: 0-9 Bin, 10-19 Bini (binop order: Add Sub Mul Div Rem
   And Or Xor Shl Shr); 20-25 Set, 26-31 Br (cond order: Eq Ne Lt Le Gt
   Ge). *)
let op_bin = 0
let op_bini = 10
let op_set = 20
let op_br = 26
let op_movi = 32
let op_movl = 33
let op_mov = 34
let op_load = 35
let op_load_abs = 36
let op_store = 37
let op_store_abs = 38
let op_jmp = 39
let op_jmp_reg = 40
let op_call = 41
let op_clwb = 42
let op_clwb_abs = 43
let op_fence = 44
let op_region_end = 45
let op_nop = 46
let op_halt = 47

let binop_code = function
  | Instr.Add -> 0
  | Instr.Sub -> 1
  | Instr.Mul -> 2
  | Instr.Div -> 3
  | Instr.Rem -> 4
  | Instr.And -> 5
  | Instr.Or -> 6
  | Instr.Xor -> 7
  | Instr.Shl -> 8
  | Instr.Shr -> 9

let cond_code = function
  | Instr.Eq -> 0
  | Instr.Ne -> 1
  | Instr.Lt -> 2
  | Instr.Le -> 3
  | Instr.Gt -> 4
  | Instr.Ge -> 5

type t = {
  len : int;
  op : int array;
  x : int array;
  y : int array;
  z : int array;
  label_idx : int array;
  label_off : int array;
  func_idx : int array;
  label_names : string array;
  func_names : string array;
}

let length t = t.len

let binop_names =
  [| "add"; "sub"; "mul"; "div"; "rem"; "and"; "or"; "xor"; "shl"; "shr" |]

let cond_names = [| "eq"; "ne"; "lt"; "le"; "gt"; "ge" |]

let op_name o =
  if o >= op_bin && o < op_bin + 10 then binop_names.(o - op_bin)
  else if o >= op_bini && o < op_bini + 10 then binop_names.(o - op_bini) ^ "i"
  else if o >= op_set && o < op_set + 6 then "set." ^ cond_names.(o - op_set)
  else if o >= op_br && o < op_br + 6 then "br." ^ cond_names.(o - op_br)
  else if o = op_movi then "movi"
  else if o = op_movl then "movl"
  else if o = op_mov then "mov"
  else if o = op_load then "load"
  else if o = op_load_abs then "load_abs"
  else if o = op_store then "store"
  else if o = op_store_abs then "store_abs"
  else if o = op_jmp then "jmp"
  else if o = op_jmp_reg then "jmp_reg"
  else if o = op_call then "call"
  else if o = op_clwb then "clwb"
  else if o = op_clwb_abs then "clwb_abs"
  else if o = op_fence then "fence"
  else if o = op_region_end then "region_end"
  else if o = op_nop then "nop"
  else if o = op_halt then "halt"
  else Printf.sprintf "op%d" o

let pc_label t pc = t.label_names.(t.label_idx.(pc))
let pc_label_off t pc = t.label_off.(pc)
let pc_func t pc = t.func_names.(t.func_idx.(pc))
let pc_op_name t pc = op_name t.op.(pc)

(* Map each PC to the nearest enclosing label / source function: sweep
   the program once, advancing through the anchor PCs in ascending
   order.  Index 0 is the synthetic "<top>" region for PCs before the
   first anchor; ties at the same PC resolve to the last-listed
   anchor. *)
let sweep_anchors ~len anchors =
  (* anchors : (name, pc) list, any order *)
  let sorted =
    List.stable_sort (fun (_, a) (_, b) -> compare a b) anchors
  in
  let names = Array.of_list ("<top>" :: List.map fst sorted) in
  let pcs = Array.of_list (0 :: List.map snd sorted) in
  let n = Array.length pcs in
  let idx = Array.make (max len 1) 0 in
  let off = Array.make (max len 1) 0 in
  let j = ref 0 in
  for pc = 0 to len - 1 do
    while !j + 1 < n && pcs.(!j + 1) <= pc do
      incr j
    done;
    idx.(pc) <- !j;
    off.(pc) <- pc - pcs.(!j)
  done;
  (idx, off, names)

(* Operand layout per opcode (unused slots stay 0):
     Bin/Bini/Set   x=rd  y=ra  z=rb/imm
     Br             x=ra  y=rb  z=target
     Movi/Movl      x=rd        z=imm/index
     Mov            x=rd  y=rs
     Load/Store     x=rd/rv  y=rs  z=offset
     Load_abs/Store_abs  x=rd/rv  z=addr
     Jmp/Call       z=target
     Jmp_reg        x=r
     Clwb           x=rs  z=offset
     Clwb_abs       z=addr *)
let compile (prog : Program.t) =
  let code = prog.Program.code in
  let len = Array.length code in
  let op = Array.make len op_nop in
  let x = Array.make len 0 in
  let y = Array.make len 0 in
  let z = Array.make len 0 in
  let reg i r =
    if r < 0 || r >= Reg.count then
      invalid_arg
        (Printf.sprintf "Decoded.compile: instr %d: bad register r%d" i r);
    r
  in
  let target i t =
    if t < 0 || t >= len then
      invalid_arg
        (Printf.sprintf "Decoded.compile: instr %d: bad target %d" i t);
    t
  in
  Array.iteri
    (fun i ins ->
      let set o a b c =
        op.(i) <- o;
        x.(i) <- a;
        y.(i) <- b;
        z.(i) <- c
      in
      match ins with
      | Instr.Movi (rd, n) -> set op_movi (reg i rd) 0 n
      | Instr.Movl (rd, idx) -> set op_movl (reg i rd) 0 idx
      | Instr.Mov (rd, rs) -> set op_mov (reg i rd) (reg i rs) 0
      | Instr.Bin (o, rd, a, b) ->
        set (op_bin + binop_code o) (reg i rd) (reg i a) (reg i b)
      | Instr.Bini (o, rd, a, n) ->
        set (op_bini + binop_code o) (reg i rd) (reg i a) n
      | Instr.Set (c, rd, a, b) ->
        set (op_set + cond_code c) (reg i rd) (reg i a) (reg i b)
      | Instr.Load (rd, rs, off) -> set op_load (reg i rd) (reg i rs) off
      | Instr.Load_abs (rd, addr) -> set op_load_abs (reg i rd) 0 addr
      | Instr.Store (rv, rs, off) -> set op_store (reg i rv) (reg i rs) off
      | Instr.Store_abs (rv, addr) -> set op_store_abs (reg i rv) 0 addr
      | Instr.Br (c, a, b, tgt) ->
        set (op_br + cond_code c) (reg i a) (reg i b) (target i tgt)
      | Instr.Jmp tgt -> set op_jmp 0 0 (target i tgt)
      | Instr.Jmp_reg r -> set op_jmp_reg (reg i r) 0 0
      | Instr.Call tgt -> set op_call 0 0 (target i tgt)
      | Instr.Clwb (rs, off) -> set op_clwb (reg i rs) 0 off
      | Instr.Clwb_abs addr -> set op_clwb_abs 0 0 addr
      | Instr.Fence -> set op_fence 0 0 0
      | Instr.Region_end -> set op_region_end 0 0 0
      | Instr.Nop -> set op_nop 0 0 0
      | Instr.Halt -> set op_halt 0 0 0)
    code;
  let label_idx, label_off, label_names =
    sweep_anchors ~len prog.Program.labels
  in
  let func_anchors =
    List.filter_map
      (fun (name, lbl) ->
        match List.assoc_opt lbl prog.Program.labels with
        | Some pc -> Some (name, pc)
        | None -> None)
      prog.Program.meta.Program.functions
  in
  let func_idx, _, func_names = sweep_anchors ~len func_anchors in
  { len; op; x; y; z; label_idx; label_off; func_idx; label_names; func_names }
