(** Flat decoded representation of a {!Program}: one compile pass turns
    the variant instruction array into packed parallel int arrays
    (opcode + three operand slots) so the simulator's cycle loop reads
    flat ints instead of matching constructors.

    Binop and condition sub-operations are fused into the opcode: codes
    [op_bin+k] / [op_bini+k] use binop code [k] (Add Sub Mul Div Rem And
    Or Xor Shl Shr), [op_set+k] / [op_br+k] use condition code [k] (Eq
    Ne Lt Le Gt Ge).  The numbering is mirrored by the dispatch loop in
    [Sweep_machine.Exec]; the differential suite pins the two
    together. *)

type t = private {
  len : int;
  op : int array;   (** fused opcode, one of the [op_*] codes *)
  x : int array;    (** rd / rv / first source register *)
  y : int array;    (** rs / second source register *)
  z : int array;    (** immediate / offset / branch target / address *)
  label_idx : int array;
      (** per-PC index into [label_names]: nearest enclosing label *)
  label_off : int array;  (** per-PC offset from that label's PC *)
  func_idx : int array;
      (** per-PC index into [func_names]: enclosing source function *)
  label_names : string array;  (** index 0 is the synthetic ["<top>"] *)
  func_names : string array;   (** index 0 is the synthetic ["<top>"] *)
}

val compile : Program.t -> t
(** Validates every register index and branch target (so the executor
    may trust the operand arrays); raises [Invalid_argument] on a
    malformed program. *)

val length : t -> int

val op_bin : int
val op_bini : int
val op_set : int
val op_br : int
val op_movi : int
val op_movl : int
val op_mov : int
val op_load : int
val op_load_abs : int
val op_store : int
val op_store_abs : int
val op_jmp : int
val op_jmp_reg : int
val op_call : int
val op_clwb : int
val op_clwb_abs : int
val op_fence : int
val op_region_end : int
val op_nop : int
val op_halt : int

val binop_code : Instr.binop -> int
val cond_code : Instr.cond -> int

val op_name : int -> string
(** Mnemonic for a fused opcode (e.g. ["addi"], ["br.lt"],
    ["region_end"]); unknown codes render as ["op<n>"]. *)

val pc_label : t -> int -> string
(** Nearest label at or before this PC (["<top>"] before the first). *)

val pc_label_off : t -> int -> int
(** Instruction offset of this PC from its [pc_label] anchor. *)

val pc_func : t -> int -> string
(** Enclosing source function per [Program.meta.functions]
    (["<top>"] before the first function entry). *)

val pc_op_name : t -> int -> string
(** [op_name] of the instruction at this PC. *)
