type t = {
  name : string;
  title : string;
  heavy : bool;
  jobs : unit -> Jobs.t list;
  render : unit -> unit;
}

let all =
  [
    { name = "tab1"; title = "Table 1: simulation configuration";
      heavy = false; jobs = Exp_tab1.jobs; render = Exp_tab1.run };
    { name = "fig5"; title = "Fig 5: speedups, no power failure";
      heavy = false; jobs = Exp_fig5.jobs; render = Exp_fig5.run };
    { name = "fig6"; title = "Fig 6: speedups, RFHome trace";
      heavy = false; jobs = Exp_outage.jobs_rfhome;
      render = Exp_outage.run_rfhome };
    { name = "fig7"; title = "Fig 7: speedups, RFOffice trace";
      heavy = false; jobs = Exp_outage.jobs_rfoffice;
      render = Exp_outage.run_rfoffice };
    { name = "tab2"; title = "Table 2: power outages vs capacitor";
      heavy = true; jobs = Exp_capacitor.jobs_table2;
      render = Exp_capacitor.run_table2 };
    { name = "fig8"; title = "Fig 8: speedups vs cache size";
      heavy = true; jobs = Exp_cache_size.jobs; render = Exp_cache_size.run };
    { name = "fig9"; title = "Fig 9: speedups vs capacitor size";
      heavy = true; jobs = Exp_capacitor.jobs_fig9;
      render = Exp_capacitor.run_fig9 };
    { name = "fig10"; title = "Fig 10: speedups vs power trace";
      heavy = false; jobs = Exp_traces.jobs; render = Exp_traces.run };
    { name = "fig11"; title = "Fig 11: propagation-delay sensitivity";
      heavy = true; jobs = Exp_propagation.jobs; render = Exp_propagation.run };
    { name = "fig12"; title = "Fig 12: region size / store count CDFs";
      heavy = false; jobs = Exp_regions.jobs_fig12;
      render = Exp_regions.run_fig12 };
    { name = "threshold"; title = "S6.4: store-threshold sensitivity";
      heavy = true; jobs = Exp_regions.jobs_threshold;
      render = Exp_regions.run_threshold };
    { name = "par"; title = "S6.3/S4.4: parallelism efficiency, empty-bit";
      heavy = false; jobs = Exp_parallelism.jobs;
      render = Exp_parallelism.run };
    { name = "icount"; title = "S6.5: instruction counts";
      heavy = false; jobs = Exp_instcount.jobs; render = Exp_instcount.run };
    { name = "fig13"; title = "S6.6/Fig 13: energy breakdown";
      heavy = false; jobs = Exp_energy.jobs; render = Exp_energy.run };
    { name = "fig14"; title = "Fig 14: SweepCache vs NvMR";
      heavy = true; jobs = Exp_nvmr.jobs; render = Exp_nvmr.run };
    { name = "fig15"; title = "Fig 15: cache miss rates";
      heavy = false; jobs = Exp_missrate.jobs; render = Exp_missrate.run };
    { name = "fig16"; title = "Fig 16: NVM writes";
      heavy = false; jobs = Exp_nvmwrites.jobs; render = Exp_nvmwrites.run };
    { name = "hwcost"; title = "S6.9: hardware costs";
      heavy = false; jobs = Exp_hwcost.jobs; render = Exp_hwcost.run };
    { name = "ablation"; title = "Extensions: dual-buffer, Vmin, degradation, unroll";
      heavy = true; jobs = Exp_ablation.jobs; render = Exp_ablation.run };
  ]

let find name = List.find_opt (fun e -> e.name = name) all

let plan experiments =
  Jobs.dedup (List.concat_map (fun e -> e.jobs ()) experiments)

let keys experiments =
  List.map (fun j -> (j.Jobs.exp, Jobs.key j)) (plan experiments)

let render e =
  Results.set_current_experiment e.name;
  (* A render can hit a job that failed in the batch phase and recompute
     it sequentially, re-raising the original error; keep the remaining
     experiments alive and log it as a structured failure. *)
  try e.render ()
  with exn ->
    let backtrace = Printexc.get_backtrace () in
    let error = Printexc.to_string exn in
    Results.record_failure ~key:("render:" ^ e.name) ~error ~backtrace;
    Printf.eprintf "experiment %s failed: %s\n%!" e.name error

let run_many ?config experiments =
  Executor.execute ?config (plan experiments);
  List.iter render experiments

let run ?config e = run_many ?config [ e ]

let run_all ?config ?(include_heavy = true) () =
  run_many ?config (List.filter (fun e -> include_heavy || not e.heavy) all)
