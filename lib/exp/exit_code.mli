(** Exit codes shared by [sweepexp] and [sweeptune] (see README "Exit
    codes"): scripts and CI branch on these, so they are API. *)

val clean : int
(** [0] — everything ran, nothing failed. *)

val job_failures : int
(** [1] — run completed but at least one job failed or was
    quarantined as a poison job. *)

val degraded : int
(** [2] — the supervisor exhausted its respawn budget and finished the
    sweep on surviving workers (or quarantined the remainder). *)

val interrupted : int
(** [3] — the run was cut short ([sweeptune --kill-after] fault
    injection). *)

val usage : int
(** [64] — command-line usage error ([EX_USAGE]). *)

val of_run : degraded:bool -> failures:int -> int
(** Verdict for a completed run: degraded outranks job failures
    outranks clean.  (Interruption never reaches this — it exits on
    its own path.) *)
