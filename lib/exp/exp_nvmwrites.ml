(* Fig. 16: NVM write transactions normalised to NVSRAM's, across power
   traces (470 nF). *)
module H = Sweep_sim.Harness
module C = Exp_common
module Trace = Sweep_energy.Power_trace
module Table = Sweep_util.Table

let settings =
  [
    C.setting H.Replay;
    C.setting H.Nvsram;
    C.setting H.Nvsram_e;
    C.sweep_empty_bit;
  ]

let trace_kinds = [ Trace.Rf_office; Trace.Rf_home; Trace.Solar; Trace.Thermal ]

let jobs () =
  Jobs.matrix ~exp:"fig16"
    ~powers:(List.map Jobs.harvested trace_kinds)
    settings C.subset_names

let run () =
  Printf.printf
    "== Fig. 16 — NVM writes normalised to NVSRAM, across traces (470 nF, subset) ==\n";
  let t = Table.create ("trace" :: List.map (fun s -> s.C.label) settings) in
  List.iter
    (fun kind ->
      let power = C.power (C.trace_of kind) in
      let writes s =
        Sweep_util.Stats.mean
          (List.map
             (fun b -> float_of_int (C.run s ~power b).C.nvm_writes)
             C.subset_names)
      in
      let base = writes (C.setting H.Nvsram) in
      Table.add_float_row t (Trace.kind_name kind)
        (List.map (fun s -> writes s /. base) settings))
    trace_kinds;
  Table.print t;
  print_newline ()
