(* Ablations beyond the paper's headline results (DESIGN.md §13):
   - dual buffering vs a single persist buffer (§3.3's claim);
   - empty-bit vs always-search (already in Figs. 5–7; summarised here);
   - SweepCache with Vmin lowered to 1.8 V (paper footnote 1);
   - capacitor degradation: JIT thresholds raised 20% / 40% of the
     headroom (paper §2.2: 1.4x / 2.5x slowdowns);
   - loop unrolling disabled (region-enlargement contribution, §4.1);
   - small-function inlining enabled (the paper's §5 future work). *)
module H = Sweep_sim.Harness
module C = Exp_common
module Config = Sweep_machine.Config
module Detector = Sweep_energy.Detector
module Pipeline = Sweep_compiler.Pipeline
module Driver = Sweep_sim.Driver
module Trace = Sweep_energy.Power_trace
module Table = Sweep_util.Table

let geo_speed ?(power = Sweep_sim.Driver.Unlimited) s =
  C.geomean (List.map (C.speedup s ~power) C.subset_names)

let buffer_setting count =
  C.setting
    ~label:(Printf.sprintf "sweep/%db" count)
    ~config:{ Config.default with buffer_count = count }
    H.Sweep

let vmin_deep = C.setting ~label:"sweep/vmin1.8" H.Sweep

let degradation_setting (label, bump) =
  let det = Detector.jit ~v_backup:(3.2 +. bump) ~v_restore:(3.4 +. bump) in
  C.setting
    ~label:(Printf.sprintf "nvsram+%s" label)
    ~config:(Config.with_detector Config.default det)
    H.Nvsram

(* Bumps keep the restore threshold under Vmax = 3.5. *)
let degradation_bumps = [ ("+20%", 0.04); ("+40%", 0.08) ]

let unroll_setting (label, unroll) =
  C.setting ~label ~options:(Pipeline.options ~unroll ()) H.Sweep

let unroll_variants = [ ("unroll on", true); ("unroll off", false) ]

let inline_setting (label, inline) =
  C.setting ~label ~options:(Pipeline.options ~inline ()) H.Sweep

let inline_variants = [ ("inline off", false); ("inline on", true) ]

(* Call-heavy benchmarks gain the most from inlining: every call costs
   entry/exit boundaries. *)
let inline_benches = [ "pegwitenc"; "rijndaelenc"; "basicmath"; "jpegenc"; "sha" ]

let jobs () =
  let rf = Jobs.harvested Trace.Rf_office in
  (* buffers + unroll studies: unlimited power over the subset *)
  Jobs.matrix ~exp:"ablation"
    (C.setting H.Nvp
     :: (List.map buffer_setting [ 1; 2 ]
        @ List.map unroll_setting unroll_variants))
    C.subset_names
  (* vmin + degradation studies: RFOffice at 470 nF *)
  @ Jobs.matrix ~exp:"ablation" ~powers:[ rf ]
      (C.setting H.Nvp :: C.sweep_empty_bit :: C.setting H.Nvsram
       :: List.map degradation_setting degradation_bumps)
      C.subset_names
  @ Jobs.matrix ~exp:"ablation"
      ~powers:[ Jobs.harvested ~v_min:1.8 Trace.Rf_office ]
      [ vmin_deep ] C.subset_names
  (* inlining study: its own benchmark set *)
  @ Jobs.matrix ~exp:"ablation"
      (C.setting H.Nvp :: List.map inline_setting inline_variants)
      inline_benches

let run_buffers () =
  Printf.printf "== Ablation — dual buffering (§3.3) ==\n";
  let t =
    Table.create [ "buffers"; "geomean speedup (no outage)"; "eff %" ]
  in
  List.iter
    (fun count ->
      let s = buffer_setting count in
      let effs =
        List.map
          (fun b ->
            Sweep_machine.Mstats.parallelism_efficiency
              (C.run s ~power:Sweep_sim.Driver.Unlimited b).C.mstats)
          C.subset_names
      in
      Table.add_float_row t (string_of_int count)
        [ geo_speed s; Sweep_util.Stats.mean effs ])
    [ 1; 2 ];
  Table.print t;
  print_newline ()

let run_vmin () =
  Printf.printf "== Ablation — SweepCache with Vmin = 1.8 V (footnote 1) ==\n";
  let t = Table.create [ "setting"; "geomean speedup (RFOffice)" ] in
  let trace = C.rf_office () in
  let std = C.sweep_empty_bit in
  let deep = vmin_deep in
  Table.add_float_row t "Vmin 2.8"
    [
      C.geomean
        (List.map (C.speedup std ~power:(C.power trace)) C.subset_names);
    ];
  let deep_power = Driver.harvested ~v_min:1.8 ~trace ~farads:470e-9 () in
  let nvp_power = C.power trace in
  Table.add_float_row t "Vmin 1.8"
    [
      C.geomean
        (List.map
           (fun b ->
             C.nvp_time ~power:nvp_power b
             /. Driver.total_ns (C.run deep ~power:deep_power b).C.outcome)
           C.subset_names);
    ];
  Table.print t;
  print_newline ()

let run_degradation () =
  Printf.printf
    "== Ablation — capacitor degradation: JIT thresholds raised (§2.2) ==\n";
  let trace = C.rf_office () in
  let power = C.power trace in
  let t =
    Table.create
      [ "threshold margin"; "NVSRAM slowdown vs nominal"; "avg outages" ]
  in
  let nominal =
    Sweep_util.Stats.mean
      (List.map
         (fun b ->
           Driver.total_ns (C.run (C.setting H.Nvsram) ~power b).C.outcome)
         C.subset_names)
  in
  let nominal_outages =
    Sweep_util.Stats.mean
      (List.map
         (fun b ->
           float_of_int (C.run (C.setting H.Nvsram) ~power b).C.outcome.Driver.outages)
         C.subset_names)
  in
  Table.add_float_row t "nominal" [ 1.0; nominal_outages ];
  List.iter
    (fun ((label, _) as bump) ->
      let s = degradation_setting bump in
      let slowed =
        Sweep_util.Stats.mean
          (List.map
             (fun b -> Driver.total_ns (C.run s ~power b).C.outcome)
             C.subset_names)
      in
      let outages =
        Sweep_util.Stats.mean
          (List.map
             (fun b ->
               float_of_int (C.run s ~power b).C.outcome.Driver.outages)
             C.subset_names)
      in
      Table.add_float_row t label [ slowed /. nominal; outages ])
    degradation_bumps;
  Table.print t;
  print_newline ()

let run_unroll () =
  Printf.printf "== Ablation — loop unrolling off (§4.1 region enlargement) ==\n";
  let t =
    Table.create [ "setting"; "geomean speedup (no outage)"; "avg region size" ]
  in
  List.iter
    (fun ((label, _) as variant) ->
      let s = unroll_setting variant in
      let sizes =
        List.map
          (fun b ->
            Exp_regions.avg
              (C.run s ~power:Sweep_sim.Driver.Unlimited b).C.mstats
                .Sweep_machine.Mstats.region_size_hist)
          C.subset_names
      in
      Table.add_float_row t label
        [ geo_speed s; Sweep_util.Stats.mean sizes ])
    unroll_variants;
  Table.print t;
  print_newline ()

let run_inline () =
  Printf.printf
    "== Extension — small-function inlining on (§5 future work) ==\n";
  let t =
    Table.create
      [ "setting"; "geomean speedup (no outage)"; "dynamic regions" ]
  in
  let benches = inline_benches in
  List.iter
    (fun ((label, _) as variant) ->
      let s = inline_setting variant in
      let regions =
        List.map
          (fun b ->
            float_of_int
              (C.run s ~power:Sweep_sim.Driver.Unlimited b).C.mstats
                .Sweep_machine.Mstats.regions)
          benches
      in
      Table.add_float_row t label
        [
          C.geomean
            (List.map (C.speedup s ~power:Sweep_sim.Driver.Unlimited) benches);
          Sweep_util.Stats.mean regions;
        ])
    inline_variants;
  Table.print t;
  print_newline ()

let run () =
  run_buffers ();
  run_vmin ();
  run_degradation ();
  run_unroll ();
  run_inline ()
