(* Fig. 12: CDFs of dynamic region size (instructions) and stores per
   region, plus the §6.4 store-threshold study (average store counts and
   speedup across thresholds 32/64/128/256). *)
module H = Sweep_sim.Harness
module C = Exp_common
module Mstats = Sweep_machine.Mstats
module Pipeline = Sweep_compiler.Pipeline
module Table = Sweep_util.Table

let thresholds = [ 32; 64; 128; 256 ]

let threshold_setting threshold =
  let options = Pipeline.options ~store_threshold:threshold () in
  let config =
    { Sweep_machine.Config.default with buffer_entries = threshold }
  in
  C.setting ~label:(Printf.sprintf "sweep@%d" threshold) ~config ~options
    H.Sweep

let jobs_fig12 () =
  Jobs.matrix ~exp:"fig12" [ C.sweep_empty_bit ] C.all_names

let jobs_threshold () =
  Jobs.matrix ~exp:"threshold"
    (C.setting H.Nvp :: List.map threshold_setting thresholds)
    C.subset_names

let merged_histograms () =
  let size_acc = Array.make 513 0 in
  let store_acc = Array.make 129 0 in
  List.iter
    (fun bench ->
      let r = C.run C.sweep_empty_bit ~power:Sweep_sim.Driver.Unlimited bench in
      let st = r.C.mstats in
      Array.iteri (fun idx c -> size_acc.(idx) <- size_acc.(idx) + c)
        st.Mstats.region_size_hist;
      Array.iteri (fun idx c -> store_acc.(idx) <- store_acc.(idx) + c)
        st.Mstats.region_store_hist)
    C.all_names;
  (size_acc, store_acc)

let avg hist =
  let n = ref 0 and s = ref 0 in
  Array.iteri
    (fun value count ->
      n := !n + count;
      s := !s + (value * count))
    hist;
  if !n = 0 then 0.0 else float_of_int !s /. float_of_int !n

let print_cdf title hist =
  Printf.printf "%s (avg %.2f)\n" title (avg hist);
  let t = Table.create [ "value"; "cum.%" ] in
  let points = Mstats.hist_cdf hist in
  (* Subsample to ~16 rows. *)
  let n = List.length points in
  let keep = max 1 (n / 16) in
  List.iteri
    (fun idx (value, pct) ->
      if idx mod keep = 0 || idx = n - 1 then
        Table.add_row t [ string_of_int value; Table.float_cell pct ])
    points;
  Table.print t;
  print_newline ()

let run_fig12 () =
  Printf.printf "== Fig. 12 — dynamic region statistics (all benchmarks, threshold 64) ==\n";
  let size_hist, store_hist = merged_histograms () in
  print_cdf "(a) region size CDF, #instructions" size_hist;
  print_cdf "(b) stores per region CDF" store_hist

let run_threshold () =
  Printf.printf
    "== §6.4 — store-threshold sensitivity (subset, no outages) ==\n";
  let t =
    Table.create
      [ "threshold"; "avg stores/region"; "avg region size"; "geomean speedup" ]
  in
  List.iter
    (fun threshold ->
      let s = threshold_setting threshold in
      let stores = ref [] and sizes = ref [] and speeds = ref [] in
      List.iter
        (fun bench ->
          let r = C.run s ~power:Sweep_sim.Driver.Unlimited bench in
          let st = r.C.mstats in
          stores := avg st.Mstats.region_store_hist :: !stores;
          sizes := avg st.Mstats.region_size_hist :: !sizes;
          speeds := C.speedup s ~power:Sweep_sim.Driver.Unlimited bench :: !speeds)
        C.subset_names;
      Table.add_float_row t (string_of_int threshold)
        [
          Sweep_util.Stats.mean !stores;
          Sweep_util.Stats.mean !sizes;
          C.geomean !speeds;
        ])
    thresholds;
  Table.print t;
  print_newline ()
