(** Registry of all paper-reproduction experiments.

    Every experiment is split into a declarative phase — [jobs] lists
    the workload × design × environment matrix it needs — and a [render]
    phase that prints its table(s) from the {!Results} store.  Running
    an experiment (or several) first batch-executes the deduplicated
    union of their jobs on the {!Executor} pool, then renders
    sequentially, so the output is byte-identical at any [-j]. *)

type t = {
  name : string;            (** CLI id, e.g. "fig5" *)
  title : string;           (** what it regenerates *)
  heavy : bool;             (** multi-minute sweeps (excluded from "quick") *)
  jobs : unit -> Jobs.t list;
      (** the simulations the table(s) need (may be empty) *)
  render : unit -> unit;
      (** prints the table(s) to stdout, reading {!Results}; computes
          lazily through {!Exp_common.run} for anything not
          pre-executed *)
}

val all : t list

val find : string -> t option

val plan : t list -> Jobs.t list
(** Deduplicated union of the experiments' job matrices — e.g. Fig 6
    and Table 2 share their NVP runs. *)

val keys : t list -> (string * string) list
(** [(owning experiment, canonical job key)] for every planned job, in
    plan order — what [sweepexp --list] prints, and what sweeptune's
    dry-run planner uses to show which evaluations a search would
    schedule without running any. *)

val run : ?config:Executor.config -> t -> unit
(** Execute the experiment's jobs (at {!Executor.workers}), then
    render.  [config] attaches per-run telemetry (see
    {!Executor.config}). *)

val run_many : ?config:Executor.config -> t list -> unit
(** Batch-execute the union of the given experiments' jobs, then render
    each in order. *)

val run_all : ?config:Executor.config -> ?include_heavy:bool -> unit -> unit
(** Run every experiment in DESIGN.md order. *)
