(* §6.6 / Fig. 13: total energy consumption normalised to NVP, and the
   backup/restore energy breakdown normalised to NVP's total.  RFOffice,
   470 nF, full benchmark set via the subset runs. *)
module H = Sweep_sim.Harness
module C = Exp_common
module Driver = Sweep_sim.Driver
module Trace = Sweep_energy.Power_trace
module Table = Sweep_util.Table

let settings =
  [
    C.setting H.Replay;
    C.setting H.Nvsram;
    C.setting H.Nvmr;
    C.sweep_empty_bit;
  ]

let jobs () =
  Jobs.matrix ~exp:"fig13"
    ~powers:[ Jobs.harvested Trace.Rf_office ]
    (C.setting H.Nvp :: settings)
    C.subset_names

let run () =
  Printf.printf
    "== §6.6 / Fig. 13 — energy, normalised to NVP (RFOffice, 470 nF, subset) ==\n";
  let power = C.power (C.rf_office ()) in
  let t =
    Table.create
      [ "design"; "total %"; "backup %"; "restore %"; "backup+restore %" ]
  in
  let nvp_total =
    Sweep_util.Stats.mean
      (List.map
         (fun b ->
           Driver.total_joules (C.run (C.setting H.Nvp) ~power b).C.outcome)
         C.subset_names)
  in
  List.iter
    (fun s ->
      let mean f =
        Sweep_util.Stats.mean
          (List.map (fun b -> f (C.run s ~power b).C.outcome) C.subset_names)
      in
      let total = mean Driver.total_joules in
      let backup = mean (fun o -> o.Driver.backup_joules) in
      let restore = mean (fun o -> o.Driver.restore_joules) in
      Table.add_float_row t s.C.label
        [
          100.0 *. total /. nvp_total;
          100.0 *. backup /. nvp_total;
          100.0 *. restore /. nvp_total;
          100.0 *. (backup +. restore) /. nvp_total;
        ])
    settings;
  Table.print t;
  print_newline ()
