(* JSONL pipe protocol between the supervisor and its worker processes.

   One frame per line, each a flat JSON object tagged by a ["frame"]
   field.  Job specs and result summaries travel as hex-encoded
   [Marshal] payloads inside JSON strings: both types are plain data
   (records, variants, strings, numbers — verified where they are
   defined), and supervisor and worker are the same binary, so the
   marshal format is identical on both ends by construction.

   The decoder is deliberately forgiving: a line that does not parse as
   a frame yields [None] and the supervisor skips it (a worker killed
   mid-write leaves a torn final line; the fsync'd results JSONL — not
   this pipe — is the durability surface).  The parser handles exactly
   the flat scalar objects the encoder produces; it is not a general
   JSON reader. *)

type to_worker =
  | Init of { heartbeat_every : int; attrib_dir : string option }
  | Job of { key : string; spec : Jobs.t; sim_budget_ns : float option }
  | Quit

type from_worker =
  | Beat of {
      key : string;
      instructions : int;
      sim_ns : float;
      reboots : int;
      nvm_writes : int;
      beats : int;
    }
  | Done of { key : string; elapsed_s : float; summary : Results.summary }
  | Failed of { key : string; error : string; backtrace : string }

(* {2 Hex codec} *)

let to_hex s =
  let n = String.length s in
  let b = Bytes.create (2 * n) in
  let digit d = "0123456789abcdef".[d] in
  for i = 0 to n - 1 do
    let c = Char.code s.[i] in
    Bytes.set b (2 * i) (digit (c lsr 4));
    Bytes.set b ((2 * i) + 1) (digit (c land 0xf))
  done;
  Bytes.unsafe_to_string b

exception Bad

let of_hex s =
  let n = String.length s in
  if n land 1 <> 0 then raise Bad;
  let digit c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | _ -> raise Bad
  in
  String.init (n / 2) (fun i ->
      Char.chr ((digit s.[2 * i] lsl 4) lor digit s.[(2 * i) + 1]))

(* {2 Flat-object JSON parsing} *)

type jv = S of string | N of float | B of bool | Null

let parse_jstring s i =
  (* s.[i] = '"'; returns (decoded, index past closing quote) *)
  let b = Buffer.create 32 in
  let n = String.length s in
  let rec go i =
    if i >= n then raise Bad
    else
      match s.[i] with
      | '"' -> i + 1
      | '\\' ->
        if i + 1 >= n then raise Bad;
        (match s.[i + 1] with
        | '"' -> Buffer.add_char b '"'; go (i + 2)
        | '\\' -> Buffer.add_char b '\\'; go (i + 2)
        | '/' -> Buffer.add_char b '/'; go (i + 2)
        | 'n' -> Buffer.add_char b '\n'; go (i + 2)
        | 't' -> Buffer.add_char b '\t'; go (i + 2)
        | 'r' -> Buffer.add_char b '\r'; go (i + 2)
        | 'b' -> Buffer.add_char b '\b'; go (i + 2)
        | 'f' -> Buffer.add_char b '\012'; go (i + 2)
        | 'u' ->
          if i + 5 >= n then raise Bad;
          let code = int_of_string ("0x" ^ String.sub s (i + 2) 4) in
          (* The encoder only \u-escapes control bytes (< 0x20);
             anything wider would need UTF-8 re-encoding we never
             produce. *)
          if code > 0xff then raise Bad;
          Buffer.add_char b (Char.chr code);
          go (i + 6)
        | _ -> raise Bad)
      | c -> Buffer.add_char b c; go (i + 1)
  and finish j = (Buffer.contents b, j) in
  finish (go (i + 1))

let parse_obj line =
  let n = String.length line in
  let rec skip_ws i =
    if i < n && (line.[i] = ' ' || line.[i] = '\t') then skip_ws (i + 1) else i
  in
  let expect c i =
    let i = skip_ws i in
    if i < n && line.[i] = c then i + 1 else raise Bad
  in
  let parse_value i =
    let i = skip_ws i in
    if i >= n then raise Bad
    else
      match line.[i] with
      | '"' ->
        let s, j = parse_jstring line i in
        (S s, j)
      | 't' when i + 4 <= n && String.sub line i 4 = "true" -> (B true, i + 4)
      | 'f' when i + 5 <= n && String.sub line i 5 = "false" ->
        (B false, i + 5)
      | 'n' when i + 4 <= n && String.sub line i 4 = "null" -> (Null, i + 4)
      | '-' | '0' .. '9' ->
        let j = ref i in
        while
          !j < n
          && (match line.[!j] with
             | '-' | '+' | '.' | 'e' | 'E' | '0' .. '9' -> true
             | _ -> false)
        do
          incr j
        done;
        (N (float_of_string (String.sub line i (!j - i))), !j)
      | _ -> raise Bad
  in
  try
    let i = expect '{' 0 in
    let i = skip_ws i in
    if i < n && line.[i] = '}' then Some []
    else
      let rec fields acc i =
        let i = skip_ws i in
        if i >= n || line.[i] <> '"' then raise Bad;
        let name, i = parse_jstring line i in
        let i = expect ':' i in
        let v, i = parse_value i in
        let i = skip_ws i in
        if i < n && line.[i] = ',' then fields ((name, v) :: acc) (i + 1)
        else
          let i = expect '}' i in
          let i = skip_ws i in
          if i <> n then raise Bad else List.rev ((name, v) :: acc)
      in
      Some (fields [] i)
  with Bad | Failure _ | Invalid_argument _ -> None

let str fields name =
  match List.assoc_opt name fields with Some (S s) -> s | _ -> raise Bad

let num fields name =
  match List.assoc_opt name fields with Some (N x) -> x | _ -> raise Bad

let int_f fields name = int_of_float (num fields name)

(* {2 Frames} *)

let js = Sweep_obs.Event.json_string

let line_of_to_worker = function
  | Init { heartbeat_every; attrib_dir } ->
    Printf.sprintf "{\"frame\":\"init\",\"heartbeat_every\":%d,\"attrib_dir\":%s}"
      heartbeat_every
      (match attrib_dir with None -> "null" | Some d -> js d)
  | Job { key; spec; sim_budget_ns } ->
    Printf.sprintf "{\"frame\":\"job\",\"key\":%s,\"spec\":\"%s\",\"sim_budget_ns\":%s}"
      (js key)
      (to_hex (Marshal.to_string (spec : Jobs.t) []))
      (match sim_budget_ns with
      | None -> "null"
      | Some b -> Printf.sprintf "%.17g" b)
  | Quit -> "{\"frame\":\"quit\"}"

let line_of_from_worker = function
  | Beat { key; instructions; sim_ns; reboots; nvm_writes; beats } ->
    Printf.sprintf
      "{\"frame\":\"beat\",\"key\":%s,\"instructions\":%d,\"sim_ns\":%.17g,\
       \"reboots\":%d,\"nvm_writes\":%d,\"beats\":%d}"
      (js key) instructions sim_ns reboots nvm_writes beats
  | Done { key; elapsed_s; summary } ->
    Printf.sprintf
      "{\"frame\":\"done\",\"key\":%s,\"elapsed_s\":%.17g,\"summary\":\"%s\"}"
      (js key) elapsed_s
      (to_hex (Marshal.to_string (summary : Results.summary) []))
  | Failed { key; error; backtrace } ->
    Printf.sprintf
      "{\"frame\":\"failed\",\"key\":%s,\"error\":%s,\"backtrace\":%s}"
      (js key) (js error) (js backtrace)

let to_worker_of_line line =
  match parse_obj line with
  | None -> None
  | Some fields -> (
    try
      match str fields "frame" with
      | "init" ->
        let attrib_dir =
          match List.assoc_opt "attrib_dir" fields with
          | Some (S s) -> Some s
          | Some Null | None -> None
          | _ -> raise Bad
        in
        Some (Init { heartbeat_every = int_f fields "heartbeat_every"; attrib_dir })
      | "job" ->
        let spec = (Marshal.from_string (of_hex (str fields "spec")) 0 : Jobs.t) in
        let sim_budget_ns =
          match List.assoc_opt "sim_budget_ns" fields with
          | Some (N x) -> Some x
          | Some Null | None -> None
          | _ -> raise Bad
        in
        Some (Job { key = str fields "key"; spec; sim_budget_ns })
      | "quit" -> Some Quit
      | _ -> None
    with Bad | Failure _ -> None)

let from_worker_of_line line =
  match parse_obj line with
  | None -> None
  | Some fields -> (
    try
      match str fields "frame" with
      | "beat" ->
        Some
          (Beat
             {
               key = str fields "key";
               instructions = int_f fields "instructions";
               sim_ns = num fields "sim_ns";
               reboots = int_f fields "reboots";
               nvm_writes = int_f fields "nvm_writes";
               beats = int_f fields "beats";
             })
      | "done" ->
        let summary =
          (Marshal.from_string (of_hex (str fields "summary")) 0
            : Results.summary)
        in
        Some (Done { key = str fields "key"; elapsed_s = num fields "elapsed_s"; summary })
      | "failed" ->
        Some
          (Failed
             {
               key = str fields "key";
               error = str fields "error";
               backtrace = str fields "backtrace";
             })
      | _ -> None
    with Bad | Failure _ -> None)
