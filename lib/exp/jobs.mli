(** Declarative job descriptions for the experiment stack.

    A job is a pure description of one simulation — (setting, power
    spec, benchmark, scale) plus the experiment that declared it — with
    a canonical key matching {!Exp_common.run_key}.  Experiment modules
    declare their workload × design × environment matrices as job lists;
    {!Executor} deduplicates and evaluates them on a domain pool, and
    the render phase then reads every summary from {!Results} without
    launching a single simulation. *)

type power_spec =
  | Unlimited
  | Harvested of {
      kind : Sweep_energy.Power_trace.kind;
      farads : float;
      v_max : float;
      v_min : float;
    }
(** Power environment by value rather than by trace instance, so a job
    list can be built, keyed and deduplicated without materialising any
    60-second trace. *)

val unlimited : power_spec

val harvested :
  ?farads:float ->
  ?v_max:float ->
  ?v_min:float ->
  Sweep_energy.Power_trace.kind ->
  power_spec
(** Defaults (470 nF, 3.5 V / 2.8 V) match {!Exp_common.power} and
    {!Sweep_sim.Driver.harvested}, so declarative jobs and render-time
    power values share keys. *)

val power_id : power_spec -> string
(** Equals {!Exp_common.power_key} of {!to_power} of the spec. *)

val to_power : power_spec -> Sweep_sim.Driver.power
(** Materialises the trace through {!Exp_common.trace_of} (memoised,
    mutex-guarded). *)

type t = {
  exp : string;    (** experiment id owning the JSONL line, e.g. "fig5" *)
  setting : Exp_common.setting;
  power : power_spec;
  bench : string;
  scale : float;
}

val job :
  exp:string -> ?scale:float -> Exp_common.setting -> power:power_spec ->
  string -> t

val key : t -> string
(** Canonical key — identical to the {!Exp_common.run_key} the render
    phase computes for the same (setting, power, bench, scale). *)

val matrix :
  exp:string ->
  ?scale:float ->
  ?powers:power_spec list ->
  Exp_common.setting list ->
  string list ->
  t list
(** Cross product powers × settings × benches (powers default to
    [[Unlimited]]). *)

val dedup : t list -> t list
(** Drop jobs whose key already appeared earlier in the list (first
    occurrence wins — its [exp] tag owns the JSONL line). *)
