(** Declarative job descriptions for the experiment stack.

    A job is a pure description of one simulation — (setting, power
    spec, benchmark, scale) plus the experiment that declared it — with
    a canonical key matching {!Exp_common.run_key}.  Experiment modules
    declare their workload × design × environment matrices as job lists;
    {!Executor} deduplicates and evaluates them on a domain pool, and
    the render phase then reads every summary from {!Results} without
    launching a single simulation. *)

type power_spec =
  | Unlimited
  | Harvested of {
      kind : Sweep_energy.Power_trace.kind;
      farads : float;
      v_max : float;
      v_min : float;
    }
  | Jittered of {
      kind : Sweep_energy.Power_trace.kind;
      farads : float;
      v_max : float;
      v_min : float;
      shift_steps : int;  (** right-rotation in 100 µs grid steps *)
      amp_permille : int;  (** amplitude scale ×1/1000 (1000 = unity) *)
      drop_bp : int;  (** per-sample blackout odds in basis points *)
      drop_seed : int;  (** seed of the dropout mask *)
    }
(** Power environment by value rather than by trace instance, so a job
    list can be built, keyed and deduplicated without materialising any
    60-second trace.  [Jittered] is a per-device perturbation of a
    shared base trace (fleet simulation): all four jitter parameters
    are integers so the canonical key renders them exactly — key-equal
    specs always simulate identically. *)

val unlimited : power_spec

val harvested :
  ?farads:float ->
  ?v_max:float ->
  ?v_min:float ->
  Sweep_energy.Power_trace.kind ->
  power_spec
(** Defaults (470 nF, 3.5 V / 2.8 V) match {!Exp_common.power} and
    {!Sweep_sim.Driver.harvested}, so declarative jobs and render-time
    power values share keys. *)

val jittered :
  ?farads:float ->
  ?v_max:float ->
  ?v_min:float ->
  shift_steps:int ->
  amp_permille:int ->
  drop_bp:int ->
  drop_seed:int ->
  Sweep_energy.Power_trace.kind ->
  power_spec
(** Same defaults as {!harvested}.  Raises [Invalid_argument] on a
    negative shift or amplitude, or [drop_bp] outside [0, 10000]. *)

val jitter_tag :
  shift_steps:int -> amp_permille:int -> drop_bp:int -> drop_seed:int ->
  string
(** The trace tag a [Jittered] spec stamps on its transformed trace
    (rendered as [ts%d.am%d.dp%d.ds%d]) — the link between {!power_id}
    and {!Exp_common.power_key}. *)

val apply_jitter :
  Sweep_energy.Power_trace.t ->
  shift_steps:int ->
  amp_permille:int ->
  drop_bp:int ->
  drop_seed:int ->
  Sweep_energy.Power_trace.t
(** The canonical jitter pipeline — {!Sweep_energy.Power_trace.time_shift},
    then [scale], then [drop_samples], then tagging with {!jitter_tag}.
    Exposed so sweepsim's replay flags reproduce a fleet device's trace
    bit-for-bit. *)

val power_id : power_spec -> string
(** Equals {!Exp_common.power_key} of {!to_power} of the spec. *)

val to_power : power_spec -> Sweep_sim.Driver.power
(** Materialises the trace through {!Exp_common.trace_of} (memoised,
    mutex-guarded).  A [Jittered] spec transforms a fresh copy of the
    memoised base trace — per-device copies are transient, never
    cached. *)

val prewarm : power_spec -> unit
(** Materialise just the shared base trace (executor parent, before
    spawning domains) without building any per-device jittered copy. *)

type t = {
  exp : string;    (** experiment id owning the JSONL line, e.g. "fig5" *)
  setting : Exp_common.setting;
  power : power_spec;
  bench : string;
  scale : float;
}

val job :
  exp:string -> ?scale:float -> Exp_common.setting -> power:power_spec ->
  string -> t

val key : t -> string
(** Canonical key — identical to the {!Exp_common.run_key} the render
    phase computes for the same (setting, power, bench, scale). *)

val matrix :
  exp:string ->
  ?scale:float ->
  ?powers:power_spec list ->
  Exp_common.setting list ->
  string list ->
  t list
(** Cross product powers × settings × benches (powers default to
    [[Unlimited]]). *)

val dedup : t list -> t list
(** Drop jobs whose key already appeared earlier in the list (first
    occurrence wins — its [exp] tag owns the JSONL line). *)
