(* Persistent content-addressed result cache.

   One file per cached summary under the cache directory, named by the
   MD5 of (canonical job key, config digest) so a key collision across
   configs is impossible by construction.  The on-disk layout is a
   single ASCII header line

     {"schema_version":N,"payload_bytes":B,"payload_md5":"<hex>"}

   followed by exactly B bytes of [Marshal]-ed {!entry}.  The header is
   what makes the cache corruption-safe: a reader accepts an entry only
   when the byte count is exact (no trailing garbage, no truncation)
   and the payload MD5 matches (no bit flips), and the unmarshalled
   entry must echo the key and digest it was looked up under.  Any
   mismatch is a warned miss — the offending file is unlinked and the
   job re-simulated — never a trusted result.

   Writes go through a pid-unique temp file and [Unix.rename], so a
   concurrent reader (another sweep process sharing the directory) sees
   either the old complete entry or the new complete entry, never a
   torn one.

   Eviction is LRU by mtime: a hit bumps the entry's mtime to "now",
   and after every store the directory is trimmed oldest-first until it
   fits [max_bytes] (name-ordered tiebreak for determinism). *)

let schema_version = 1

type entry = {
  e_key : string;
  e_digest : string;
  e_elapsed_s : float;
  e_summary : Results.summary;
}

type stats = { hits : int; misses : int; evictions : int; corrupt : int }

type t = {
  dir : string;
  max_bytes : int;
  lock : Mutex.t;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable corrupt : int;
}

let m_hits = Sweep_obs.Metrics.counter "exp.rcache_hits"
let m_misses = Sweep_obs.Metrics.counter "exp.rcache_misses"
let m_evictions = Sweep_obs.Metrics.counter "exp.rcache_evictions"
let m_corrupt = Sweep_obs.Metrics.counter "exp.rcache_corrupt"

let default_max_bytes = 256 * 1024 * 1024

let rec mkdir_p dir =
  if dir <> "" && dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let create ?(max_bytes = default_max_bytes) dir =
  mkdir_p dir;
  {
    dir;
    max_bytes = max max_bytes 0;
    lock = Mutex.create ();
    hits = 0;
    misses = 0;
    evictions = 0;
    corrupt = 0;
  }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let stats t =
  with_lock t (fun () ->
      {
        hits = t.hits;
        misses = t.misses;
        evictions = t.evictions;
        corrupt = t.corrupt;
      })

(* Identity of everything that affects a summary but is not in the job
   key: the full setting (design, machine config, compiler options —
   the label rides along harmlessly), plus the marshal format and
   compiler version so an OCaml upgrade can never deserialise stale
   bytes into the wrong layout. *)
let config_digest (setting : Exp_common.setting) =
  Digest.to_hex
    (Digest.string
       (Marshal.to_string (schema_version, Sys.ocaml_version, setting) []))

let entry_suffix = ".rce"

let path_of t ~key ~digest =
  Filename.concat t.dir
    (Digest.to_hex (Digest.string (key ^ "\x00" ^ digest)) ^ entry_suffix)

let warn_corrupt t path what =
  t.corrupt <- t.corrupt + 1;
  if Sweep_obs.Metrics.enabled () then Sweep_obs.Metrics.inc m_corrupt;
  Printf.eprintf "warning: result cache: dropping corrupt entry %s (%s)\n%!"
    (Filename.basename path) what;
  try Sys.remove path with Sys_error _ -> ()

(* Read and fully verify one entry file.  Returns [None] (after
   warning and unlinking) on any structural defect. *)
let read_entry t path ~key ~digest =
  match open_in_bin path with
  | exception Sys_error _ -> None (* plain miss: no entry *)
  | ic ->
    let verdict =
      Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
      match input_line ic with
      | exception End_of_file -> Error "empty file"
      | header -> (
        match
          Scanf.sscanf header
            "{\"schema_version\":%d,\"payload_bytes\":%d,\"payload_md5\":%S}"
            (fun v b m -> (v, b, m))
        with
        | exception Scanf.Scan_failure _ -> Error "unparsable header"
        | exception End_of_file -> Error "unparsable header"
        | exception Failure _ -> Error "unparsable header"
        | v, _, _ when v <> schema_version ->
          Error (Printf.sprintf "schema_version %d" v)
        | _, bytes, _ when bytes <= 0 -> Error "bad payload size"
        | _, bytes, md5 -> (
          let payload = Bytes.create bytes in
          match really_input ic payload 0 bytes with
          | exception End_of_file -> Error "truncated payload"
          | () -> (
            match input_char ic with
            | exception End_of_file -> Error "truncated payload"
            | c when c <> '\n' -> Error "trailing bytes"
            | _ when pos_in ic <> in_channel_length ic ->
              Error "trailing bytes"
            | _ ->
              if Digest.to_hex (Digest.bytes payload) <> md5 then
                Error "checksum mismatch"
              else (
                match (Marshal.from_bytes payload 0 : entry) with
                | exception _ -> Error "undecodable payload"
                | e ->
                  if e.e_key <> key || e.e_digest <> digest then
                    Error "key/digest mismatch"
                  else Ok e))))
    in
    (match verdict with
    | Ok e -> Some e
    | Error what ->
      warn_corrupt t path what;
      None)

let find t ~key ~digest =
  with_lock t @@ fun () ->
  let path = path_of t ~key ~digest in
  match read_entry t path ~key ~digest with
  | Some e ->
    t.hits <- t.hits + 1;
    if Sweep_obs.Metrics.enabled () then Sweep_obs.Metrics.inc m_hits;
    (* LRU touch: a served entry is the freshest one. *)
    (try Unix.utimes path 0.0 0.0 with Unix.Unix_error _ -> ());
    Some (e.e_summary, e.e_elapsed_s)
  | None ->
    t.misses <- t.misses + 1;
    if Sweep_obs.Metrics.enabled () then Sweep_obs.Metrics.inc m_misses;
    None

(* One stat pass over the directory: (mtime, name, size) per entry
   file, sorted oldest-first with a name-ordered tiebreak so concurrent
   same-second stores evict deterministically. *)
let scan_locked t =
  Sys.readdir t.dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f entry_suffix)
  |> List.filter_map (fun f ->
         let p = Filename.concat t.dir f in
         match Unix.stat p with
         | exception Unix.Unix_error _ -> None
         | st when st.Unix.st_kind = Unix.S_REG ->
           Some (st.Unix.st_mtime, f, st.Unix.st_size)
         | _ -> None)
  |> List.sort compare

(* Trim the directory to [max_bytes]: select the whole LRU victim set
   from the single scan, then unlink it as a batch — no per-iteration
   re-stat, and the eviction counter moves once.  Called with the lock
   held, after a store. *)
let evict_locked t =
  let entries = scan_locked t in
  let total = List.fold_left (fun acc (_, _, sz) -> acc + sz) 0 entries in
  let rec victims acc excess = function
    | _ when excess <= 0 -> List.rev acc
    | [] -> List.rev acc
    | (_, f, sz) :: rest -> victims (f :: acc) (excess - sz) rest
  in
  match victims [] (total - t.max_bytes) entries with
  | [] -> ()
  | batch ->
    List.iter
      (fun f ->
        try Sys.remove (Filename.concat t.dir f) with Sys_error _ -> ())
      batch;
    t.evictions <- t.evictions + List.length batch;
    if Sweep_obs.Metrics.enabled () then
      Sweep_obs.Metrics.add m_evictions (List.length batch)

let disk_stats t =
  with_lock t @@ fun () ->
  let entries = scan_locked t in
  ( List.length entries,
    List.fold_left (fun acc (_, _, sz) -> acc + sz) 0 entries )

let purge t =
  with_lock t @@ fun () ->
  let entries = scan_locked t in
  List.iter
    (fun (_, f, _) ->
      try Sys.remove (Filename.concat t.dir f) with Sys_error _ -> ())
    entries;
  ( List.length entries,
    List.fold_left (fun acc (_, _, sz) -> acc + sz) 0 entries )

let store t ~key ~digest ~elapsed_s summary =
  with_lock t @@ fun () ->
  let payload =
    Marshal.to_bytes
      { e_key = key; e_digest = digest; e_elapsed_s = elapsed_s;
        e_summary = summary }
      []
  in
  let header =
    Printf.sprintf "{\"schema_version\":%d,\"payload_bytes\":%d,\
                    \"payload_md5\":%S}\n"
      schema_version (Bytes.length payload)
      (Digest.to_hex (Digest.bytes payload))
  in
  let path = path_of t ~key ~digest in
  let tmp =
    Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ()) (Hashtbl.hash key)
  in
  (try
     let oc = open_out_bin tmp in
     Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () ->
         output_string oc header;
         output_bytes oc payload;
         output_char oc '\n';
         flush oc;
         try Unix.fsync (Unix.descr_of_out_channel oc)
         with Unix.Unix_error _ -> ());
     Unix.rename tmp path
   with Sys_error _ | Unix.Unix_error _ ->
     (try Sys.remove tmp with Sys_error _ -> ()));
  evict_locked t
