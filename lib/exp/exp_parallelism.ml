(* §6.3 region-level parallelism efficiency and §4.4 empty-bit search
   statistics (bypass rate, average buffer occupancy at misses). *)
module H = Sweep_sim.Harness
module C = Exp_common
module Mstats = Sweep_machine.Mstats
module Sweepcache = Sweepcache_core.Sweepcache
module Trace = Sweep_energy.Power_trace
module Table = Sweep_util.Table

(* The §4.4 avg-fill column drives a concrete SweepCache instance and is
   computed at render time; everything else reads the results store. *)
let jobs () =
  Jobs.matrix ~exp:"par"
    ~powers:[ Jobs.unlimited; Jobs.harvested Trace.Rf_office ]
    [ C.sweep_empty_bit ] C.all_names

let efficiency bench ~power =
  Mstats.parallelism_efficiency (C.run C.sweep_empty_bit ~power bench).C.mstats

(* Average persist-buffer occupancy seen by load misses needs the
   concrete SweepCache instance, so drive one directly. *)
let avg_fill bench =
  let w = Sweep_workloads.Registry.find bench in
  let ast = Sweep_workloads.Workload.program w in
  let compiled = H.compile H.Sweep ast in
  let instance =
    Sweepcache.create Sweep_machine.Config.default
      compiled.Sweep_compiler.Pipeline.program
  in
  ignore
    (Sweep_sim.Driver.run (Sweepcache.pack instance)
       ~power:Sweep_sim.Driver.Unlimited);
  Sweepcache.avg_buffer_fill_at_miss instance

let run () =
  Printf.printf "== §6.3 — region-level parallelism efficiency ==\n";
  let power_rf = C.power (C.rf_office ()) in
  let t = Table.create [ "benchmark"; "eff% (no outage)"; "eff% (RFOffice)" ] in
  let no_out = ref [] and out = ref [] in
  List.iter
    (fun bench ->
      let e1 = efficiency bench ~power:Sweep_sim.Driver.Unlimited in
      let e2 = efficiency bench ~power:power_rf in
      no_out := e1 :: !no_out;
      out := e2 :: !out;
      Table.add_float_row t bench [ e1; e2 ])
    C.all_names;
  Table.add_float_row t "average"
    [ Sweep_util.Stats.mean !no_out; Sweep_util.Stats.mean !out ];
  Table.print t;
  print_newline ();
  Printf.printf "== §4.4 — empty-bit buffer-search statistics (no outage) ==\n";
  let t =
    Table.create
      [ "benchmark"; "searches"; "bypasses"; "bypass%"; "buffer hits";
        "avg fill@miss" ]
  in
  let tot_s = ref 0 and tot_b = ref 0 in
  List.iter
    (fun bench ->
      let r = C.run C.sweep_empty_bit ~power:Sweep_sim.Driver.Unlimited bench in
      let st = r.C.mstats in
      let searches = st.Mstats.buffer_searches in
      let bypasses = st.Mstats.buffer_bypasses in
      tot_s := !tot_s + searches;
      tot_b := !tot_b + bypasses;
      let pct =
        if searches + bypasses = 0 then 100.0
        else 100.0 *. float_of_int bypasses /. float_of_int (searches + bypasses)
      in
      Table.add_row t
        [
          bench;
          string_of_int searches;
          string_of_int bypasses;
          Table.float_cell pct;
          string_of_int st.Mstats.buffer_hits;
          Printf.sprintf "%.5f" (avg_fill bench);
        ])
    C.all_names;
  let pct =
    if !tot_s + !tot_b = 0 then 100.0
    else 100.0 *. float_of_int !tot_b /. float_of_int (!tot_s + !tot_b)
  in
  Table.add_row t
    [ "total"; string_of_int !tot_s; string_of_int !tot_b; Table.float_cell pct ];
  Table.print t;
  print_newline ()
