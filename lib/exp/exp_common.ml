module H = Sweep_sim.Harness
module Driver = Sweep_sim.Driver
module Trace = Sweep_energy.Power_trace
module Config = Sweep_machine.Config
module Pipeline = Sweep_compiler.Pipeline

type setting = {
  design : H.design;
  label : string;
  config : Config.t;
  options : Pipeline.options;
}

let setting ?label ?(config = Config.default)
    ?(options = Pipeline.default_options) design =
  let label = Option.value label ~default:(H.design_name design) in
  { design; label; config; options }

let sweep_nvm_search =
  setting ~label:"Sweep/NVMsearch"
    ~config:(Config.with_search Config.default Config.Nvm_search)
    H.Sweep

let sweep_empty_bit = setting ~label:"Sweep/EmptyBit" H.Sweep

let fig5_settings =
  [ setting H.Replay; setting H.Nvsram; sweep_nvm_search; sweep_empty_bit ]

(* Traces are memoised behind a mutex: [Trace.t] is immutable once
   built, so sharing one instance across domains is safe; the lock only
   guards the table itself.  The executor pre-materialises every trace a
   job list needs before spawning workers, so workers normally hit the
   table read-only. *)
let trace_lock = Mutex.create ()
let trace_cache : (Trace.kind, Trace.t) Hashtbl.t = Hashtbl.create 4

let trace_of kind =
  Mutex.lock trace_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock trace_lock)
    (fun () ->
      match Hashtbl.find_opt trace_cache kind with
      | Some t -> t
      | None ->
        let t = Trace.make kind in
        Hashtbl.replace trace_cache kind t;
        t)

let rf_office () = trace_of Trace.Rf_office
let rf_home () = trace_of Trace.Rf_home

let power ?(farads = 470e-9) trace = Driver.harvested ~trace ~farads ()

let all_names =
  List.map (fun w -> w.Sweep_workloads.Workload.name) Sweep_workloads.Registry.all

let subset_names =
  [
    "adpcmdec"; "gsmdec"; "jpegenc"; "sha"; "susans"; "dijkstra"; "fft";
    "typeset"; "blowfishenc"; "rijndaelenc";
  ]

let power_key = function
  | Driver.Unlimited -> "unlimited"
  | Driver.Harvested { trace; capacitor_farads; v_max; v_min } ->
    (* A transformed trace carries a tag (see Power_trace.with_tag);
       folding it into the kind segment keeps differently-jittered
       copies of one base trace from aliasing in the results store. *)
    let kind =
      match Trace.tag trace with
      | None -> Trace.kind_name (Trace.kind trace)
      | Some tag -> Trace.kind_name (Trace.kind trace) ^ "~" ^ tag
    in
    Printf.sprintf "%s/%g/%g/%g" kind capacitor_farads v_max v_min

let key_of ~label ~design ~power ~bench ~scale =
  Printf.sprintf "%s|%s|%s|%s|%g" label design power bench scale

let run_key ?(scale = 1.0) s ~power bench =
  key_of ~label:s.label ~design:(H.design_name s.design)
    ~power:(power_key power) ~bench ~scale

type summary = Results.summary = {
  outcome : Driver.outcome;
  mstats : Sweep_machine.Mstats.t;
  miss_rate : float;
  nvm_writes : int;
}

(* Profile filenames embed the canonical run key, sanitised for the
   filesystem ('|' and '/' become '_').  Keys are unique per job and
   the substitution is injective enough in practice (keys never
   contain '_'-ambiguous collisions within one matrix). *)
let sanitize_key key =
  String.map (fun c -> match c with '|' | '/' | ' ' -> '_' | c -> c) key

let compute ?(scale = 1.0) ?sim_budget_ns ?heartbeat ?attrib_dir s ~power
    bench =
  let w = Sweep_workloads.Registry.find bench in
  let ast = Sweep_workloads.Workload.program ~scale w in
  let r =
    H.run ~config:s.config ~options:s.options ?sim_budget_ns ?heartbeat
      ~attrib:(attrib_dir <> None) s.design ~power ast
  in
  if Sweep_obs.Metrics.enabled () then
    Sweep_machine.Mstats.publish
      ~labels:[ ("design", H.design_name s.design); ("bench", bench) ]
      (H.mstats r);
  (match attrib_dir with
  | None -> ()
  | Some dir ->
    (* One JSON + one collapsed-stack file per job, named by the
       sanitised canonical key.  The profile is a pure function of the
       job (no timestamps, PC-ordered rows), so any worker writing it
       produces identical bytes — safe at any -j. *)
    let key = run_key ~scale s ~power bench in
    (match Sweep_sim.Profile.of_result ~bench ~scale ~key r with
    | None -> ()
    | Some p ->
      (try Unix.mkdir dir 0o755
       with Unix.Unix_error ((Unix.EEXIST | Unix.EISDIR), _, _) -> ());
      let base = Filename.concat dir (sanitize_key key) in
      Sweep_sim.Profile.write_json p ~path:(base ^ ".attrib.json");
      Sweep_sim.Profile.write_folded p ~path:(base ^ ".folded")));
  {
    outcome = r.H.outcome;
    mstats = H.mstats r;
    miss_rate = H.cache_miss_rate r;
    nvm_writes = H.nvm_writes r;
  }

let run ?(scale = 1.0) s ~power bench =
  let key = run_key ~scale s ~power bench in
  match Results.find key with
  | Some r -> r
  | None ->
    let t0 = Unix.gettimeofday () in
    let summary = compute ~scale s ~power bench in
    let elapsed_s = Unix.gettimeofday () -. t0 in
    let stored = Results.add ~key summary in
    if stored == summary then
      Results.emit
        ~exp:(Results.current_experiment ())
        ~key
        ~design:(H.design_name s.design)
        ~label:s.label ~power:(power_key power) ~bench ~scale ~elapsed_s
        summary;
    stored

let total r = Driver.total_ns r.outcome

let nvp_time ?scale ~power bench = total (run ?scale (setting H.Nvp) ~power bench)

let speedup ?scale s ~power bench =
  nvp_time ?scale ~power bench /. total (run ?scale s ~power bench)

let geomean = Sweep_util.Stats.geomean
