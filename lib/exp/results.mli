(** Structured results store for the experiment stack.

    Every simulation the harness executes — whether through the parallel
    {!Executor} or the sequential render-time path in
    {!Exp_common.run} — lands here, keyed by the job's canonical key
    (see {!Jobs.key}).  The store is a mutex-guarded hashtable, safe to
    populate from multiple domains; insertion keeps the first value so
    repeated lookups return the same physical summary.

    Alongside the in-memory store, an optional JSONL sink appends one
    machine-readable line per executed job to
    [<dir>/<experiment>.jsonl], giving the repo a perf trajectory that
    scripts can consume without scraping ASCII tables. *)

type summary = {
  outcome : Sweep_sim.Driver.outcome;
  mstats : Sweep_machine.Mstats.t;
  miss_rate : float;
  nvm_writes : int;
}
(** What the experiments keep from a run.  The full machine (with its
    16 MB NVM image) is dropped immediately — hundreds of cached runs
    would otherwise exhaust memory. *)

val find : string -> summary option

val add : key:string -> summary -> summary
(** [add ~key s] inserts [s] unless the key is already present and
    returns the stored summary (the existing one on a duplicate). *)

val mem : string -> bool
val size : unit -> int

val clear : unit -> unit
(** Empty the store and the failure log (tests; long-lived sessions
    re-sweeping). *)

type failure = { key : string; error : string; backtrace : string }
(** A job or render that raised instead of producing a summary. *)

val record_failure : key:string -> error:string -> backtrace:string -> unit
(** Thread-safe; called by the executor's workers so one failing job
    (e.g. {!Sweep_sim.Driver.Stagnation}) is a structured result, not a
    pool-tearing exception. *)

val failures : unit -> failure list
(** In recording order. *)

val snapshot : unit -> (string * summary) list
(** All entries, sorted by key — the determinism tests compare the
    snapshots of a [-j 1] and a [-j 4] execution. *)

(** {2 JSONL sink} *)

val set_dir : string option -> unit
(** [set_dir (Some dir)] enables the sink; [None] (the default)
    disables it. *)

val dir : unit -> string option

val set_current_experiment : string -> unit
(** Names the experiment whose render phase is running, so summaries
    computed lazily at render time are attributed to the right file. *)

val current_experiment : unit -> string

val schema_version : int
(** Version tag stamped into every line ([schema_version] field).
    Bumped whenever the layout changes; see README "Results schema". *)

val iso8601 : float -> string
(** UTC ISO-8601 rendering of a Unix epoch ([2026-08-05T12:00:00Z]). *)

type direction = [ `Lower_better | `Higher_better | `Info ]
(** How a change in a numeric field should be judged.  [`Info] fields
    are informational only and never gate a regression verdict. *)

val numeric_fields : (string * direction) list
(** Every numeric field {!json_line} emits, with its direction — the
    schema accessor [sweeptrace diff] consumes; kept next to
    {!json_line} so a layout change updates both. *)

val derived_fields : (string * direction) list
(** Series derived from the raw fields ([total_ns], [total_joules]). *)

val direction : string -> direction
(** Direction of a raw or derived field ([`Info] for unknown names). *)

val json_line :
  ?ts:float ->
  exp:string ->
  key:string ->
  design:string ->
  label:string ->
  power:string ->
  bench:string ->
  scale:float ->
  elapsed_s:float ->
  summary ->
  string
(** The line {!emit} writes; [ts] (default now) is the emission time.
    Exposed for the schema tests. *)

val emit :
  exp:string ->
  key:string ->
  design:string ->
  label:string ->
  power:string ->
  bench:string ->
  scale:float ->
  elapsed_s:float ->
  summary ->
  unit
(** Append one JSON line for an executed job (no-op when the sink is
    disabled).  Lines are whole-line atomic across domains. *)
