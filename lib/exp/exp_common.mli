(** Shared machinery for the paper-reproduction experiments.

    Each experiment module regenerates one table or figure of the paper's
    evaluation (see DESIGN.md's per-experiment index) by running workload
    × design × environment matrices through {!Sweep_sim.Harness} and
    printing rows with {!Sweep_util.Table}. *)

type setting = {
  design : Sweep_sim.Harness.design;
  label : string;                      (** column label *)
  config : Sweep_machine.Config.t;
  options : Sweep_compiler.Pipeline.options;
}

val setting :
  ?label:string ->
  ?config:Sweep_machine.Config.t ->
  ?options:Sweep_compiler.Pipeline.options ->
  Sweep_sim.Harness.design ->
  setting

val sweep_nvm_search : setting
(** SweepCache with always-sequential buffer search (§4.4). *)

val sweep_empty_bit : setting
(** SweepCache with the empty-bit bypass — the paper's default. *)

val fig5_settings : setting list
(** ReplayCache, NVSRAM, SweepCache/NVM-search, SweepCache/empty-bit —
    the Fig. 5–7 comparison set (NVP is the implicit baseline). *)

val rf_office : unit -> Sweep_energy.Power_trace.t
val rf_home : unit -> Sweep_energy.Power_trace.t
val trace_of : Sweep_energy.Power_trace.kind -> Sweep_energy.Power_trace.t
(** Traces are memoised (behind a mutex — safe to call from worker
    domains) — every experiment sees identical power. *)

val power : ?farads:float -> Sweep_energy.Power_trace.t -> Sweep_sim.Driver.power
(** Harvested power with the paper's default 470 nF capacitor. *)

val all_names : string list
(** The 26 benchmark names, paper order. *)

val subset_names : string list
(** A 10-benchmark subset spanning the suite's behaviours, used by the
    multi-dimensional sweeps (capacitor/cache-size/propagation) to keep
    the harness runtime sane; printed in each affected table's header. *)

val power_key : Sweep_sim.Driver.power -> string
(** Canonical identity of a power environment (trace kind, capacitor,
    thresholds) — the power component of {!run_key}. *)

val key_of :
  label:string ->
  design:string ->
  power:string ->
  bench:string ->
  scale:float ->
  string
(** The canonical job key: ["label|design|power|bench|scale"].  {!Jobs}
    builds the same string from a declarative job description, so
    pre-executed jobs are found by the render-time {!run} calls. *)

val run_key :
  ?scale:float -> setting -> power:Sweep_sim.Driver.power -> string -> string

type summary = Results.summary = {
  outcome : Sweep_sim.Driver.outcome;
  mstats : Sweep_machine.Mstats.t;
  miss_rate : float;
  nvm_writes : int;
}
(** What the experiments keep from a run (see {!Results.summary}). *)

val compute :
  ?scale:float ->
  ?sim_budget_ns:float ->
  ?heartbeat:Sweep_obs.Heartbeat.t ->
  ?attrib_dir:string ->
  setting ->
  power:Sweep_sim.Driver.power ->
  string ->
  summary
(** Run one benchmark under one setting, bypassing the results store —
    the pure function the executor's worker domains evaluate.
    [?sim_budget_ns] (graceful partial stop with
    [outcome.completed = false]) and [?heartbeat] flow through to
    {!Sweep_sim.Driver.run}.  [?attrib_dir] arms per-PC attribution
    and writes [<dir>/<sanitised run_key>.attrib.json] plus a
    [.folded] collapsed-stack file — byte-identical at any [-j]
    because the profile is a pure function of the job. *)

val run :
  ?scale:float ->
  setting ->
  power:Sweep_sim.Driver.power ->
  string ->
  summary
(** Like {!compute} but memoised through {!Results} on {!run_key}, so
    that e.g. Fig. 6 and Table 2 share NVP runs, and so that tables
    render from summaries the parallel executor already computed. *)

val nvp_time : ?scale:float -> power:Sweep_sim.Driver.power -> string -> float
(** Total (on+off) ns of the NVP baseline for the benchmark. *)

val speedup :
  ?scale:float -> setting -> power:Sweep_sim.Driver.power -> string -> float
(** NVP total time / setting total time. *)

val geomean : float list -> float
