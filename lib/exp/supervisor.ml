(* Supervised multi-process execution: the parent half.

   [run] shards a pending job list across N worker processes (the
   binary re-exec'd with {!Worker.argv_flag}), routing each job to a
   slot by a stable hash of its canonical key, and then supervises:

   - liveness: workers stream {!Wire.Beat} frames (the PR 7 heartbeat
     observer, forwarded over the pipe); a busy worker whose last
     activity is older than [worker_timeout_s] is SIGKILLed, and every
     exit — crash, kill, OOM — is reaped with [waitpid].
   - retry: a job in flight on a dead worker is requeued at the front
     of its slot (attempt + 1) until [retries] extra attempts are
     spent, after which it is quarantined as a structured
     {!Results.failure} — a poison job never sinks the run.
   - respawn: dead slots with work left respawn under seeded
     exponential backoff + jitter ({!backoff_delay_s} is a pure
     function of (seed, slot, attempt), so schedules are reproducible
     across runs and worker counts).  A pool-lifetime [respawn_budget]
     bounds the churn; when it runs out the slot retires, its queue
     reroutes to surviving slots, and the run finishes degraded
     (distinct exit code, {!stats}.degraded).

   The parent owns every stateful concern — results store, JSONL
   emission, result cache, status file, metrics, trace events — so
   supervised and in-process execution produce byte-identical outputs:
   workers only compute.  The pool persists across [run] calls (one
   sweeptune search = many execute batches) and is torn down by
   {!shutdown} or by process exit (workers see EOF on stdin and leave).

   Jobs that fail *deterministically* (the worker reports
   {!Wire.Failed}) are not retried: they would fail identically, and
   the in-process path does not retry them either — the retry loop
   exists for infrastructure deaths, not simulation errors. *)

module Sink = Sweep_obs.Sink
module Ev = Sweep_obs.Event
module Metrics = Sweep_obs.Metrics
module Hb = Sweep_obs.Heartbeat
module Flight = Sweep_obs.Flight
module Om = Sweep_obs.Openmetrics
module Rng = Sweep_util.Rng

type policy = {
  workers : int;
  retries : int;
  worker_timeout_s : float;
  respawn_budget : int;
  backoff_base_s : float;
  backoff_max_s : float;
  seed : int;
  chaos_kill_after : int option;
}

let policy ?(retries = 2) ?(worker_timeout_s = 60.0) ?(respawn_budget = 8)
    ?(backoff_base_s = 0.05) ?(backoff_max_s = 2.0) ?(seed = 42)
    ?chaos_kill_after ~workers () =
  {
    workers = max 1 workers;
    retries = max 0 retries;
    worker_timeout_s;
    respawn_budget = max 0 respawn_budget;
    backoff_base_s = Float.max 0.0 backoff_base_s;
    backoff_max_s = Float.max 0.0 backoff_max_s;
    seed;
    chaos_kill_after;
  }

(* Deterministic backoff: delay before respawn [nth] of [slot] (0-based).
   Exponential in [nth], capped, with up to +50% jitter drawn from an
   RNG keyed by (seed, slot, nth) alone — independent of scheduling
   order, worker count and wall clock, hence testable as a pure
   schedule. *)
let backoff_delay_s p ~slot ~nth =
  let base = Float.min p.backoff_max_s (p.backoff_base_s *. (2.0 ** float_of_int nth)) in
  let r = Rng.create ((p.seed * 1_000_003) + (slot * 8191) + nth) in
  base *. (1.0 +. (0.5 *. Rng.float r 1.0))

type stats = {
  mutable spawns : int;
  mutable deaths : int;
  mutable job_retries : int;
  mutable quarantined : int;
  mutable cache_hits : int;  (* accounted by Executor at batch start *)
  mutable degraded : bool;
}

let the_stats =
  {
    spawns = 0;
    deaths = 0;
    job_retries = 0;
    quarantined = 0;
    cache_hits = 0;
    degraded = false;
  }

let stats () =
  {
    spawns = the_stats.spawns;
    deaths = the_stats.deaths;
    job_retries = the_stats.job_retries;
    quarantined = the_stats.quarantined;
    cache_hits = the_stats.cache_hits;
    degraded = the_stats.degraded;
  }

let reset_stats () =
  the_stats.spawns <- 0;
  the_stats.deaths <- 0;
  the_stats.job_retries <- 0;
  the_stats.quarantined <- 0;
  the_stats.cache_hits <- 0;
  the_stats.degraded <- false

let note_cache_hits n = the_stats.cache_hits <- the_stats.cache_hits + n

let m_spawns = Metrics.counter "exp.worker_spawns"
let m_deaths = Metrics.counter "exp.worker_deaths"
let m_retries = Metrics.counter "exp.job_retries"
let m_quarantined = Metrics.counter "exp.jobs_quarantined"
let m_jobs_run = Metrics.counter "exp.jobs_run"
let m_jobs_failed = Metrics.counter "exp.jobs_failed"

let m_job_elapsed =
  Metrics.histogram "exp.job_elapsed_s"
    ~buckets:[| 0.01; 0.05; 0.1; 0.5; 1.0; 5.0; 10.0; 60.0 |]

(* Stable routing hash (FNV-1a, masked to 30 bits): must not depend on
   process randomisation or OCaml version details, so results route
   identically in every run. *)
let route_hash key =
  let h = ref 0x811c9dc5 in
  String.iter
    (fun c -> h := (!h lxor Char.code c) * 0x01000193 land 0x3fffffff)
    key;
  !h

type slot = {
  id : int;
  mutable pid : int;
  mutable to_w : out_channel option;  (* worker stdin *)
  mutable from_w : Unix.file_descr option;  (* worker stdout *)
  rbuf : Buffer.t;
  mutable queue : (Jobs.t * int) list;  (* (job, attempt), front first *)
  mutable inflight : (Jobs.t * int) option;
  mutable last_activity : float;
  mutable respawns : int;  (* respawns completed for this slot *)
  mutable respawn_at : float;  (* backoff deadline when dead *)
  mutable kill_reason : string option;  (* set before a deliberate kill *)
  mutable retired : bool;  (* respawn budget exhausted: permanently dead *)
}

type pool = {
  policy : policy;
  slots : slot array;
  mutable respawns_used : int;
  chaos_rng : Rng.t;
  mutable chaos_done : int;  (* Done frames seen (chaos trigger) *)
  mutable chaos_fired : bool;
}

let current : pool option ref = ref None

let alive s = s.pid > 0

let close_slot_io s =
  (match s.to_w with
  | Some oc -> (try close_out_noerr oc with _ -> ())
  | None -> ());
  s.to_w <- None;
  (match s.from_w with
  | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
  | None -> ());
  s.from_w <- None;
  Buffer.clear s.rbuf

let epoch_s = Unix.gettimeofday ()
let wall_ns () = (Unix.gettimeofday () -. epoch_s) *. 1.0e9

let send_frame s frame =
  match s.to_w with
  | None -> false
  | Some oc -> (
    try
      output_string oc (Wire.line_of_to_worker frame);
      output_char oc '\n';
      flush oc;
      true
    with Sys_error _ -> false)

let spawn ~heartbeat_every ~attrib_dir s =
  let r_in, w_in = Unix.pipe () in
  let r_out, w_out = Unix.pipe () in
  Unix.set_close_on_exec w_in;
  Unix.set_close_on_exec r_out;
  let exe = Sys.executable_name in
  let pid =
    Unix.create_process exe [| exe; Worker.argv_flag |] r_in w_out Unix.stderr
  in
  Unix.close r_in;
  Unix.close w_out;
  s.pid <- pid;
  s.to_w <- Some (Unix.out_channel_of_descr w_in);
  s.from_w <- Some r_out;
  Buffer.clear s.rbuf;
  s.last_activity <- Unix.gettimeofday ();
  s.kill_reason <- None;
  the_stats.spawns <- the_stats.spawns + 1;
  if Metrics.enabled () then Metrics.inc m_spawns;
  if Sink.on () then
    Sink.emit ~ns:(wall_ns ()) (Ev.Worker_spawn { worker = s.id; pid });
  ignore (send_frame s (Wire.Init { heartbeat_every; attrib_dir }))

(* Reroute a retired slot's queue over the slots still in play,
   deterministically by key hash over the sorted survivor ids. *)
let reroute pool s =
  let survivors =
    Array.to_list pool.slots
    |> List.filter (fun x -> (not x.retired) && x.id <> s.id)
  in
  match survivors with
  | [] -> () (* nothing to reroute to; the drain loop quarantines *)
  | survivors ->
    let arr = Array.of_list survivors in
    List.iter
      (fun (job, attempt) ->
        let target =
          arr.(route_hash (Jobs.key job) mod Array.length arr)
        in
        target.queue <- target.queue @ [ (job, attempt) ])
      s.queue;
    s.queue <- []

(* {2 The run loop} *)

type run_ctx = {
  pool : pool;
  progress : bool;
  status : Status.t option;
  flight : Flight.t option;
  export : Om.exporter option;
  rcache : Rcache.t option;
  budget : Jobs.t -> float option;
  mutable remaining : int;
  total : int;
  mutable finished : int;
}

let note_progress ctx key elapsed_s =
  ctx.finished <- ctx.finished + 1;
  if ctx.progress then
    Printf.eprintf "[%d/%d] %s (%.2fs)\n%!" ctx.finished ctx.total key
      elapsed_s

let job_failed ctx ~key ~error ~backtrace =
  Results.record_failure ~key ~error ~backtrace;
  if Sink.on () then Sink.emit ~ns:(wall_ns ()) (Ev.Job_failed { key; error });
  (match ctx.flight with
  | Some fl ->
    let path = Flight.dump fl ~key ~error ~backtrace in
    if ctx.progress then Printf.eprintf "postmortem: %s\n%!" path
  | None -> ());
  if Metrics.enabled () then Metrics.inc m_jobs_failed;
  Option.iter
    (fun st -> Status.job_finished st ~key ~ok:false ~elapsed_s:0.0 ~sim_ns:0.0)
    ctx.status;
  Option.iter Om.tick ctx.export;
  ctx.remaining <- ctx.remaining - 1;
  note_progress ctx (key ^ " FAILED: " ^ error) 0.0

let quarantine ctx ~key ~error =
  the_stats.quarantined <- the_stats.quarantined + 1;
  if Metrics.enabled () then Metrics.inc m_quarantined;
  job_failed ctx ~key ~error ~backtrace:""

let job_done ctx (job : Jobs.t) ~elapsed_s summary =
  let key = Jobs.key job in
  if Sink.on () then
    Sink.emit ~ns:(wall_ns ()) (Ev.Job_done { key; elapsed_s });
  if Metrics.enabled () then begin
    Metrics.inc m_jobs_run;
    Metrics.observe m_job_elapsed elapsed_s
  end;
  Option.iter
    (fun st ->
      Status.job_finished st ~key ~ok:true ~elapsed_s
        ~sim_ns:(Sweep_sim.Driver.total_ns summary.Results.outcome))
    ctx.status;
  Option.iter Om.tick ctx.export;
  note_progress ctx key elapsed_s;
  let stored = Results.add ~key summary in
  if stored == summary then begin
    Results.emit ~exp:job.Jobs.exp ~key
      ~design:
        (Sweep_sim.Harness.design_name job.Jobs.setting.Exp_common.design)
      ~label:job.Jobs.setting.Exp_common.label
      ~power:(Jobs.power_id job.Jobs.power)
      ~bench:job.Jobs.bench ~scale:job.Jobs.scale ~elapsed_s summary;
    match ctx.rcache with
    | Some rc ->
      Rcache.store rc ~key
        ~digest:(Rcache.config_digest job.Jobs.setting)
        ~elapsed_s summary
    | None -> ()
  end;
  ctx.remaining <- ctx.remaining - 1

let dispatch ctx s =
  match s.queue with
  | (job, attempt) :: rest when alive s && s.inflight = None ->
    s.queue <- rest;
    let key = Jobs.key job in
    if Sink.on () then Sink.emit ~ns:(wall_ns ()) (Ev.Job_start { key });
    Option.iter (fun st -> Status.job_started st ~key) ctx.status;
    s.inflight <- Some (job, attempt);
    s.last_activity <- Unix.gettimeofday ();
    if
      not
        (send_frame s
           (Wire.Job { key; spec = job; sim_budget_ns = ctx.budget job }))
    then begin
      (* The pipe is already broken: undo and let the reaper retry. *)
      s.inflight <- None;
      s.queue <- (job, attempt) :: s.queue;
      Option.iter (fun st -> Status.job_retried st ~key) ctx.status
    end
  | _ -> ()

let handle_frame ctx s = function
  | Wire.Beat { key; instructions; sim_ns; reboots; nvm_writes; beats } ->
    s.last_activity <- Unix.gettimeofday ();
    Option.iter
      (fun st ->
        Status.beat_counts st ~key ~instructions ~sim_ns ~reboots ~nvm_writes
          ~beats)
      ctx.status;
    Option.iter Om.tick ctx.export
  | Wire.Done { key; elapsed_s; summary } -> (
    s.last_activity <- Unix.gettimeofday ();
    match s.inflight with
    | Some (job, _) when Jobs.key job = key ->
      s.inflight <- None;
      job_done ctx job ~elapsed_s summary;
      ctx.pool.chaos_done <- ctx.pool.chaos_done + 1
    | _ -> () (* stale frame from a superseded dispatch: drop *))
  | Wire.Failed { key; error; backtrace } -> (
    s.last_activity <- Unix.gettimeofday ();
    match s.inflight with
    | Some (job, _) when Jobs.key job = key ->
      s.inflight <- None;
      job_failed ctx ~key ~error ~backtrace
    | _ -> ())

let drain_slot_buffer ctx s =
  (* Split complete lines off the slot's read buffer. *)
  let data = Buffer.contents s.rbuf in
  Buffer.clear s.rbuf;
  let rec go start =
    match String.index_from_opt data start '\n' with
    | None ->
      Buffer.add_substring s.rbuf data start (String.length data - start)
    | Some nl ->
      let line = String.sub data start (nl - start) in
      (match Wire.from_worker_of_line line with
      | Some f -> handle_frame ctx s f
      | None -> () (* torn/garbled line: skip *));
      go (nl + 1)
  in
  go 0

let retire ctx s =
  s.retired <- true;
  the_stats.degraded <- true;
  if ctx.progress then
    Printf.eprintf "worker %d: respawn budget exhausted, retiring slot\n%!"
      s.id;
  reroute ctx.pool s

let handle_death ctx s ~reason =
  let p = ctx.pool.policy in
  the_stats.deaths <- the_stats.deaths + 1;
  if Metrics.enabled () then Metrics.inc m_deaths;
  if Sink.on () then
    Sink.emit ~ns:(wall_ns ())
      (Ev.Worker_dead { worker = s.id; pid = s.pid; reason });
  if ctx.progress then
    Printf.eprintf "worker %d (pid %d) died: %s\n%!" s.id s.pid reason;
  close_slot_io s;
  s.pid <- 0;
  (match s.inflight with
  | Some (job, attempt) ->
    s.inflight <- None;
    let key = Jobs.key job in
    if attempt > p.retries then
      quarantine ctx ~key
        ~error:
          (Printf.sprintf "worker died (%s) on attempt %d of %d" reason
             attempt (p.retries + 1))
    else begin
      the_stats.job_retries <- the_stats.job_retries + 1;
      if Metrics.enabled () then Metrics.inc m_retries;
      if Sink.on () then
        Sink.emit ~ns:(wall_ns ()) (Ev.Job_retry { key; attempt });
      Option.iter (fun st -> Status.job_retried st ~key) ctx.status;
      s.queue <- (job, attempt + 1) :: s.queue
    end
  | None -> ());
  if s.queue <> [] then begin
    if ctx.pool.respawns_used >= p.respawn_budget then retire ctx s
    else
      s.respawn_at <-
        Unix.gettimeofday () +. backoff_delay_s p ~slot:s.id ~nth:s.respawns
  end

let reap ctx =
  Array.iter
    (fun s ->
      if alive s then
        match Unix.waitpid [ Unix.WNOHANG ] s.pid with
        | 0, _ -> ()
        | _, st ->
          let reason =
            match s.kill_reason with
            | Some r -> r
            | None -> (
              match st with
              | Unix.WEXITED n -> Printf.sprintf "exit %d" n
              | Unix.WSIGNALED n -> Printf.sprintf "signal %d" n
              | Unix.WSTOPPED n -> Printf.sprintf "stopped %d" n)
          in
          handle_death ctx s ~reason
        | exception Unix.Unix_error (Unix.ECHILD, _, _) ->
          handle_death ctx s ~reason:"lost (ECHILD)")
    ctx.pool.slots

let check_timeouts ctx =
  let p = ctx.pool.policy in
  if p.worker_timeout_s > 0.0 then
    let now = Unix.gettimeofday () in
    Array.iter
      (fun s ->
        if
          alive s && s.inflight <> None && s.kill_reason = None
          && now -. s.last_activity > p.worker_timeout_s
        then begin
          s.kill_reason <-
            Some
              (Printf.sprintf "heartbeat timeout (%.1fs silent)"
                 (now -. s.last_activity));
          try Unix.kill s.pid Sys.sigkill with Unix.Unix_error _ -> ()
        end)
      ctx.pool.slots

let check_chaos ctx =
  let pool = ctx.pool in
  match pool.policy.chaos_kill_after with
  | Some n when (not pool.chaos_fired) && pool.chaos_done >= n ->
    (* Prefer a busy victim so the kill actually exercises the retry
       path; chooser is seeded, so the victim is reproducible. *)
    let busy =
      Array.to_list pool.slots
      |> List.filter (fun s -> alive s && s.inflight <> None)
    in
    let candidates =
      if busy <> [] then busy
      else Array.to_list pool.slots |> List.filter alive
    in
    if candidates <> [] then begin
      pool.chaos_fired <- true;
      let arr = Array.of_list candidates in
      let victim = arr.(Rng.int pool.chaos_rng (Array.length arr)) in
      if ctx.progress then
        Printf.eprintf "chaos: SIGKILL worker %d (pid %d)\n%!" victim.id
          victim.pid;
      victim.kill_reason <- Some "chaos kill";
      try Unix.kill victim.pid Sys.sigkill with Unix.Unix_error _ -> ()
    end
  | _ -> ()

let check_respawns ctx ~heartbeat_every ~attrib_dir =
  let pool = ctx.pool in
  let p = pool.policy in
  let now = Unix.gettimeofday () in
  Array.iter
    (fun s ->
      if (not (alive s)) && (not s.retired) && s.queue <> [] then
        if now >= s.respawn_at then begin
          if pool.respawns_used >= p.respawn_budget then retire ctx s
          else begin
            pool.respawns_used <- pool.respawns_used + 1;
            s.respawns <- s.respawns + 1;
            spawn ~heartbeat_every ~attrib_dir s
          end
        end)
    ctx.pool.slots

(* When every slot has retired, nothing will ever run the queued jobs:
   drain them into quarantine so the run still terminates with
   structured failures. *)
let drain_if_stranded ctx =
  if Array.for_all (fun s -> s.retired) ctx.pool.slots then
    Array.iter
      (fun s ->
        List.iter
          (fun (job, _) ->
            quarantine ctx ~key:(Jobs.key job)
              ~error:"no workers left (respawn budget exhausted)")
          s.queue;
        s.queue <- [])
      ctx.pool.slots

let select_tick ctx =
  let fds =
    Array.to_list ctx.pool.slots
    |> List.filter_map (fun s -> if alive s then s.from_w else None)
  in
  let ready =
    if fds = [] then []
    else
      match Unix.select fds [] [] 0.05 with
      | r, _, _ -> r
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> []
  in
  let buf = Bytes.create 8192 in
  List.iter
    (fun fd ->
      match
        Array.to_list ctx.pool.slots
        |> List.find_opt (fun s -> s.from_w = Some fd)
      with
      | None -> ()
      | Some s -> (
        match Unix.read fd buf 0 (Bytes.length buf) with
        | 0 ->
          (* EOF: the worker closed stdout; death is confirmed (and
             the in-flight job handled) by the reaper. *)
          (try Unix.close fd with Unix.Unix_error _ -> ());
          s.from_w <- None
        | n ->
          Buffer.add_subbytes s.rbuf buf 0 n;
          drain_slot_buffer ctx s
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EINTR), _, _) -> ()
        | exception Unix.Unix_error _ ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          s.from_w <- None))
    ready

let shutdown () =
  match !current with
  | None -> ()
  | Some pool ->
    current := None;
    Array.iter
      (fun s ->
        if alive s then ignore (send_frame s Wire.Quit);
        close_slot_io s)
      pool.slots;
    (* Give workers a moment to exit on Quit/EOF, then force. *)
    let deadline = Unix.gettimeofday () +. 2.0 in
    Array.iter
      (fun s ->
        if alive s then begin
          let rec wait () =
            match Unix.waitpid [ Unix.WNOHANG ] s.pid with
            | 0, _ ->
              if Unix.gettimeofday () < deadline then begin
                ignore (Unix.select [] [] [] 0.02);
                wait ()
              end
              else begin
                (try Unix.kill s.pid Sys.sigkill with Unix.Unix_error _ -> ());
                ignore (try Unix.waitpid [] s.pid with Unix.Unix_error _ -> (0, Unix.WEXITED 0))
              end
            | _ -> ()
            | exception Unix.Unix_error _ -> ()
          in
          wait ();
          s.pid <- 0
        end)
      pool.slots

let fresh_pool p =
  {
    policy = p;
    slots =
      Array.init p.workers (fun id ->
          {
            id;
            pid = 0;
            to_w = None;
            from_w = None;
            rbuf = Buffer.create 256;
            queue = [];
            inflight = None;
            last_activity = 0.0;
            respawns = 0;
            respawn_at = 0.0;
            kill_reason = None;
            retired = false;
          });
    respawns_used = 0;
    chaos_rng = Rng.create (p.seed lxor 0x5eed);
    chaos_done = 0;
    chaos_fired = false;
  }

let obtain_pool p =
  match !current with
  | Some pool when pool.policy = p -> pool
  | Some _ ->
    shutdown ();
    let pool = fresh_pool p in
    current := Some pool;
    pool
  | None ->
    let pool = fresh_pool p in
    current := Some pool;
    pool

let run ~policy:p ?(progress = false) ?(heartbeat_every = 0) ?status ?flight
    ?export ?attrib_dir ?rcache ?(budget = fun _ -> None) pending =
  (* A dead worker must surface as a reaped pid, never a SIGPIPE. *)
  (try ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore)
   with Invalid_argument _ -> ());
  (* Liveness needs a signal: force heartbeats on when a timeout is
     armed but the caller didn't ask for beats. *)
  let heartbeat_every =
    if p.worker_timeout_s > 0.0 && heartbeat_every <= 0 then Hb.default_every
    else heartbeat_every
  in
  let pool = obtain_pool p in
  let ctx =
    {
      pool;
      progress;
      status;
      flight;
      export;
      rcache;
      budget;
      remaining = List.length pending;
      total = List.length pending;
      finished = 0;
    }
  in
  (* Route: stable hash over non-retired slots (sorted by id — the
     array order), so a re-run distributes identically. *)
  let routable =
    Array.to_list pool.slots |> List.filter (fun s -> not s.retired)
  in
  (match routable with
  | [] ->
    List.iter
      (fun job ->
        quarantine ctx ~key:(Jobs.key job)
          ~error:"no workers left (respawn budget exhausted)")
      pending
  | routable ->
    let arr = Array.of_list routable in
    List.iter
      (fun job ->
        let s = arr.(route_hash (Jobs.key job) mod Array.length arr) in
        s.queue <- s.queue @ [ (job, 1) ])
      pending;
    (* (Re)spawn every slot that has work and no live process;
       re-send Init to survivors so per-run config is fresh. *)
    Array.iter
      (fun s ->
        if s.retired then ()
        else if alive s then
          ignore (send_frame s (Wire.Init { heartbeat_every; attrib_dir }))
        else if s.queue <> [] then spawn ~heartbeat_every ~attrib_dir s)
      pool.slots;
    while ctx.remaining > 0 do
      Array.iter (fun s -> dispatch ctx s) pool.slots;
      select_tick ctx;
      reap ctx;
      check_timeouts ctx;
      check_chaos ctx;
      check_respawns ctx ~heartbeat_every ~attrib_dir;
      drain_if_stranded ctx
    done)
