(** Persistent content-addressed result cache.

    Maps (canonical job key, config digest) to a {!Results.summary} on
    disk, so repeated sweeps hit instead of re-simulate.  Entries are
    checksummed and written atomically (temp file + rename); a
    truncated, bit-flipped or otherwise undecodable entry is detected,
    warned about, unlinked and treated as a miss — never served.  The
    directory is bounded: stores trigger LRU eviction (by mtime, hits
    refresh it) down to [max_bytes].

    All operations are mutex-guarded, so one cache value can be shared
    by every domain of the executor pool. *)

type t

type stats = { hits : int; misses : int; evictions : int; corrupt : int }

val schema_version : int
(** On-disk format version; part of every entry header and of
    {!config_digest}, so format changes invalidate cleanly. *)

val default_max_bytes : int
(** 256 MiB. *)

val create : ?max_bytes:int -> string -> t
(** [create dir] opens (creating directories as needed) a cache rooted
    at [dir]. *)

val config_digest : Exp_common.setting -> string
(** Digest of everything that affects a result but is not in the job
    key: the setting's design, machine config and compiler options,
    plus the cache format and OCaml version.  Two settings with equal
    keys but different configs can never alias. *)

val find : t -> key:string -> digest:string -> (Results.summary * float) option
(** Cached [(summary, elapsed_s)] for the job, or [None] on miss (which
    includes corrupt entries, after warning + unlink).  A hit refreshes
    the entry's LRU position. *)

val store :
  t -> key:string -> digest:string -> elapsed_s:float ->
  Results.summary -> unit
(** Persist one result (atomic; errors are swallowed — the cache is an
    accelerator, never a correctness dependency), then evict
    oldest-first until the directory fits [max_bytes]. *)

val stats : t -> stats
(** Counters since {!create} (also published to the metrics registry as
    [exp.rcache_hits] / [_misses] / [_evictions] / [_corrupt]). *)

val disk_stats : t -> int * int
(** [(entries, bytes)] currently on disk — one stat pass, no
    mutation.  What [sweepexp cache stats] prints. *)

val purge : t -> int * int
(** Delete every entry, returning [(entries, bytes)] removed.  Entries
    mid-write by a concurrent process survive (their temp files are
    invisible to the scan); the cache directory itself remains. *)
