(* Live status aggregation: heartbeats and job transitions from worker
   domains fold into one mutex-guarded structure, periodically rendered
   to an atomically-renamed status.json for `watch`/dashboards.

   All wall-clock derived fields (ETA, instr/s) are estimates; the file
   is ephemeral operational telemetry, not a determinism surface — the
   byte-identical outputs are the results store and the journal. *)

module Hb = Sweep_obs.Heartbeat
module Ev = Sweep_obs.Event

let schema_version = 2
let rollup_schema_version = 3

type cohort = {
  mutable c_total : int;  (* declared population; 0 until declared *)
  mutable c_started : int;  (* running + done + failed *)
  mutable c_done : int;
  mutable c_failed : int;
}

type job = {
  key : string;
  started_s : float;
  mutable instructions : int;
  mutable sim_ns : float;
  mutable reboots : int;
  mutable nvm_writes : int;
  mutable beats : int;
}

type t = {
  path : string;
  interval_s : float;
  workers : int;
  created_s : float;
  lock : Mutex.t;
  running : (string, job) Hashtbl.t;
  (* Cohort rollup mode (fleet runs): [rollup] maps a job key to its
     cohort, per-cohort counters replace unbounded per-job detail, and
     the running array is capped at [max_running] — status.json stays
     O(cohorts + cap) instead of O(devices). *)
  rollup : (string -> string) option;
  max_running : int;
  cohorts : (string, cohort) Hashtbl.t;
  mutable cohort_order : string list; (* reversed declaration order *)
  mutable total : int;
  mutable started : int;
  mutable done_ : int;
  mutable failed : int;
  mutable retried : int;  (* requeued attempts; not part of the total sum *)
  mutable elapsed_done_s : float;  (* wall time summed over finished jobs *)
  mutable sim_done_ns : float;  (* simulated time summed over ok jobs *)
  mutable ok : int;
  mutable last_write_s : float;
}

let create ~path ?(interval_s = 0.5) ?rollup ?(max_running = 16) ~workers () =
  {
    path;
    interval_s;
    workers = max 1 workers;
    created_s = Unix.gettimeofday ();
    lock = Mutex.create ();
    running = Hashtbl.create 16;
    rollup;
    max_running = max 0 max_running;
    cohorts = Hashtbl.create 8;
    cohort_order = [];
    total = 0;
    started = 0;
    done_ = 0;
    failed = 0;
    retried = 0;
    elapsed_done_s = 0.0;
    sim_done_ns = 0.0;
    ok = 0;
    last_write_s = neg_infinity;
  }

let js = Ev.json_string

(* Cohort table access (lock held).  Undeclared cohorts appear on first
   use with total 0 — their queued count renders as 0 until declared. *)
let cohort_locked t name =
  match Hashtbl.find_opt t.cohorts name with
  | Some c -> c
  | None ->
    let c = { c_total = 0; c_started = 0; c_done = 0; c_failed = 0 } in
    Hashtbl.replace t.cohorts name c;
    t.cohort_order <- name :: t.cohort_order;
    c

let on_cohort_locked t key f =
  match t.rollup with
  | None -> ()
  | Some cohort_of -> f (cohort_locked t (cohort_of key))

let render_locked t ~now =
  let b = Buffer.create 512 in
  let queued = max 0 (t.total - t.started) in
  let mean_elapsed =
    if t.done_ + t.failed > 0 then
      t.elapsed_done_s /. float_of_int (t.done_ + t.failed)
    else 0.0
  in
  let mean_sim_ns =
    if t.ok > 0 then t.sim_done_ns /. float_of_int t.ok else 0.0
  in
  let running = Hashtbl.fold (fun _ j acc -> j :: acc) t.running [] in
  let running = List.sort (fun a b -> compare a.key b.key) running in
  let running_elapsed =
    List.fold_left (fun acc j -> acc +. (now -. j.started_s)) 0.0 running
  in
  (* Remaining wall-work estimate from the mean finished-job time,
     credited with the time already sunk into running jobs, spread
     over the pool. *)
  let eta_s =
    if t.done_ + t.failed = 0 then None
    else
      let left = queued + List.length running in
      let work = (float_of_int left *. mean_elapsed) -. running_elapsed in
      Some (Float.max 0.0 (work /. float_of_int t.workers))
  in
  let pct_done =
    if t.total = 0 then 100.0
    else float_of_int (t.done_ + t.failed) *. 100.0 /. float_of_int t.total
  in
  let version =
    if t.rollup = None then schema_version else rollup_schema_version
  in
  Buffer.add_string b
    (Printf.sprintf
       "{\"schema_version\":%d,\"ts_s\":%.3f,\"elapsed_s\":%.3f,\"workers\":%d,"
       version now (now -. t.created_s) t.workers);
  Buffer.add_string b
    (Printf.sprintf
       "\"jobs\":{\"total\":%d,\"queued\":%d,\"running\":%d,\"done\":%d,\"failed\":%d,\"retried\":%d,\"pct_done\":%.2f},"
       t.total queued (List.length running) t.done_ t.failed t.retried
       pct_done);
  (match eta_s with
  | Some e -> Buffer.add_string b (Printf.sprintf "\"eta_s\":%.1f," e)
  | None -> Buffer.add_string b "\"eta_s\":null,");
  let total_ips =
    List.fold_left
      (fun acc j ->
        let dt = now -. j.started_s in
        if dt > 0.0 then acc +. (float_of_int j.instructions /. dt) else acc)
      0.0 running
  in
  Buffer.add_string b
    (Printf.sprintf "\"throughput\":{\"instr_per_s\":%.0f}," total_ips);
  (* Rollup mode: one bounded record per cohort (declared order, then
     first-seen), and the per-job array below is capped. *)
  let running =
    if t.rollup = None then running
    else begin
      let order = List.rev t.cohort_order in
      Buffer.add_string b "\"cohorts\":[";
      List.iteri
        (fun i name ->
          let c = Hashtbl.find t.cohorts name in
          if i > 0 then Buffer.add_char b ',';
          let c_running = max 0 (c.c_started - c.c_done - c.c_failed) in
          Buffer.add_string b
            (Printf.sprintf
               "{\"cohort\":%s,\"total\":%d,\"queued\":%d,\"running\":%d,\
                \"done\":%d,\"failed\":%d}"
               (js name) c.c_total
               (max 0 (c.c_total - c.c_started))
               c_running c.c_done c.c_failed))
        order;
      Buffer.add_string b "],";
      let shown = min (List.length running) t.max_running in
      Buffer.add_string b (Printf.sprintf "\"running_shown\":%d," shown);
      List.filteri (fun i _ -> i < shown) running
    end
  in
  Buffer.add_string b "\"running\":[";
  List.iteri
    (fun i j ->
      if i > 0 then Buffer.add_char b ',';
      let dt = now -. j.started_s in
      let ips = if dt > 0.0 then float_of_int j.instructions /. dt else 0.0 in
      (* % complete is an estimate against the mean simulated time of
         the jobs finished so far — capped below 100 because a slow
         cell can legitimately exceed the mean. *)
      let progress =
        if mean_sim_ns > 0.0 && j.sim_ns > 0.0 then
          Printf.sprintf "%.3f" (Float.min 0.99 (j.sim_ns /. mean_sim_ns))
        else "null"
      in
      Buffer.add_string b
        (Printf.sprintf
           "{\"job\":%s,\"elapsed_s\":%.3f,\"beats\":%d,\"instructions\":%d,\"sim_ns\":%.17g,\"reboots\":%d,\"nvm_writes\":%d,\"instr_per_s\":%.0f,\"est_progress\":%s}"
           (js j.key) dt j.beats j.instructions j.sim_ns j.reboots
           j.nvm_writes ips progress))
    running;
  Buffer.add_string b "]}";
  Buffer.contents b

(* Atomic publication: scrape-side readers either see the previous
   snapshot or this one, never a torn write. *)
let write_locked t ~now =
  t.last_write_s <- now;
  let line = render_locked t ~now in
  let tmp = t.path ^ ".tmp" in
  let oc = open_out tmp in
  output_string oc line;
  output_char oc '\n';
  close_out oc;
  Sys.rename tmp t.path

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let write t =
  with_lock t (fun () -> write_locked t ~now:(Unix.gettimeofday ()))

let maybe_write_locked t =
  let now = Unix.gettimeofday () in
  if now -. t.last_write_s >= t.interval_s then write_locked t ~now

let add_total t n = with_lock t (fun () -> t.total <- t.total + n)

let declare_cohort t ~name ~total =
  with_lock t (fun () ->
      let c = cohort_locked t name in
      c.c_total <- c.c_total + total)

let job_started t ~key =
  with_lock t (fun () ->
      let now = Unix.gettimeofday () in
      t.started <- t.started + 1;
      on_cohort_locked t key (fun c -> c.c_started <- c.c_started + 1);
      Hashtbl.replace t.running key
        {
          key;
          started_s = now;
          instructions = 0;
          sim_ns = 0.0;
          reboots = 0;
          nvm_writes = 0;
          beats = 0;
        };
      maybe_write_locked t)

let beat_counts t ~key ~instructions ~sim_ns ~reboots ~nvm_writes ~beats =
  with_lock t (fun () ->
      (match Hashtbl.find_opt t.running key with
      | Some j ->
        j.instructions <- instructions;
        j.sim_ns <- sim_ns;
        j.reboots <- reboots;
        j.nvm_writes <- nvm_writes;
        j.beats <- beats
      | None -> ());
      maybe_write_locked t)

let beat t ~key (hb : Hb.t) =
  beat_counts t ~key ~instructions:hb.Hb.instructions ~sim_ns:(Hb.sim_ns hb)
    ~reboots:hb.Hb.reboots ~nvm_writes:hb.Hb.nvm_writes ~beats:(Hb.beats hb)

(* A retried job leaves the running set and returns to the queue: undo
   its [started] increment so queued+running+done+failed still sums to
   total, and count the failed attempt separately. *)
let job_retried t ~key =
  with_lock t (fun () ->
      if Hashtbl.mem t.running key then begin
        Hashtbl.remove t.running key;
        t.started <- t.started - 1;
        t.retried <- t.retried + 1;
        on_cohort_locked t key (fun c -> c.c_started <- c.c_started - 1)
      end;
      maybe_write_locked t)

let job_finished t ~key ~ok ~elapsed_s ~sim_ns =
  with_lock t (fun () ->
      Hashtbl.remove t.running key;
      if ok then begin
        t.done_ <- t.done_ + 1;
        t.ok <- t.ok + 1;
        t.sim_done_ns <- t.sim_done_ns +. sim_ns;
        on_cohort_locked t key (fun c -> c.c_done <- c.c_done + 1)
      end
      else begin
        t.failed <- t.failed + 1;
        on_cohort_locked t key (fun c -> c.c_failed <- c.c_failed + 1)
      end;
      t.elapsed_done_s <- t.elapsed_done_s +. elapsed_s;
      maybe_write_locked t)
